// F2 — rounds vs. density m/n on low-diameter random graphs.
//
// Paper claim reproduced: the log log_{m/n} n term — denser graphs finish in
// fewer phases/rounds because the per-phase progress factor b = (m/n')^{Ω(1)}
// grows with density. For m = n^{1+Ω(1)} the bound collapses to O(log d).
#include <cmath>

#include "bench_support.hpp"
#include "util/bitutil.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 8192, "vertex count"));
  const int reps = static_cast<int>(cli.get_int("reps", 3, "seeds per cell"));
  cli.finish();

  header("F2: rounds vs density",
         "claim: the log log_{m/n} n term — phases/rounds shrink as m/n "
         "grows; log-diameter part is constant here (G(n,m) has d = O(log n))");

  util::TextTable table({"m/n", "loglog_{m/n} n", "thm1-phases",
                         "thm1-expand-rounds", "faster-cc-rounds",
                         "vanilla-phases"});
  std::vector<double> loglog, phases;
  for (std::uint64_t density : {2ULL, 4ULL, 8ULL, 16ULL, 32ULL, 64ULL}) {
    graph::EdgeList el = graph::make_gnm(n, density * n, 1234 + density);
    double ll = util::loglog_density(n, el.edges.size());
    RunOutcome t1 = run_algorithm(el, Algorithm::kTheorem1, 5, reps);
    RunOutcome t3 = run_algorithm(el, Algorithm::kFasterCC, 5, reps);
    RunOutcome v = run_algorithm(el, Algorithm::kVanilla, 5, reps);
    if (!t1.correct || !t3.correct || !v.correct)
      std::printf("!! WRONG ANSWER at density %llu\n",
                  static_cast<unsigned long long>(density));
    table.row()
        .add_int(static_cast<long long>(density))
        .add_double(ll, 2)
        .add_int(static_cast<long long>(t1.stats.phases))
        .add_int(static_cast<long long>(t1.stats.expand_rounds))
        .add_int(static_cast<long long>(t3.rounds))
        .add_int(static_cast<long long>(v.stats.phases));
    loglog.push_back(ll);
    phases.push_back(static_cast<double>(t1.stats.phases));
  }
  table.print();

  // Shape check: phases should be monotone-ish nonincreasing in density.
  bool monotone = true;
  for (std::size_t i = 1; i < phases.size(); ++i)
    if (phases[i] > phases[i - 1] + 1.0) monotone = false;
  std::printf("\nshape check: thm1 phases nonincreasing in density "
              "(+1 slack): %s\n",
              monotone ? "PASS" : "INCONCLUSIVE");
  util::print_series("thm1 phases vs loglog_{m/n} n", loglog, phases,
                     "loglog", "phases");
  return 0;
}
