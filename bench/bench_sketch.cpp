// bench_sketch — error-vs-space curves for the approximate tier, reported
// into the canonical logcc-bench-v1 bench.json.
//
//   $ ./bench_sketch --generate=rmat:200000 [--reps=3] [--seed=1]
//                    [--json=bench_sketch.json]
//
// One materialized ground truth (exact distinct edges, exact component
// labels and sizes) is swept against the sketches at increasing space:
// HyperLogLog precisions {8,10,12,14} over the edge stream and over the
// component labels, count-min widths {2^10..2^16} over the label
// multiplicities. Each rep re-seeds the *sketch* (the graph is fixed), so
// the reps sample the estimator's own error distribution.
//
// bench.json cells (all under the one "runs" array the gate reads):
//   hll-edges-p<P>      : distinct-edge cardinality at precision P
//   hll-components-p<P> : component-count cardinality at precision P
//   cms-sizes-w<W>      : component-size frequency table at width W
// Every cell carries "rel_error" and "bytes" next to "seconds";
// scripts/bench_compare.py gates these cells on rel_error at fixed space
// (mean across reps, --error-floor), not on seconds — sketch build time is
// noise, the accuracy-per-byte curve is the contract.
#include <algorithm>
#include <cinttypes>
#include <span>

#include "bench_support.hpp"
#include "sketch/count_min.hpp"
#include "sketch/hyperloglog.hpp"
#include "util/parallel.hpp"

namespace {

using namespace logcc;

struct Cell {
  std::string algorithm;
  int rep = 0;
  double seconds = 0.0;
  double estimate = 0.0;
  double exact = 0.0;
  double rel_error = 0.0;
  std::uint64_t bytes = 0;
};

/// Canonical undirected key, the StreamStats convention: (lo << 32) | hi.
std::uint64_t edge_key(graph::VertexId u, graph::VertexId v) {
  const graph::VertexId lo = u < v ? u : v;
  const graph::VertexId hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const std::string generate = cli.get_string(
      "generate", "rmat:200000", "family:n[:seed] graph to sketch");
  const int reps = static_cast<int>(
      cli.get_int("reps", 3, "sketch re-seedings per cell"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "base sketch seed"));
  const std::string json_path = cli.get_string(
      "json", "", "write the logcc-bench-v1 document here ('-' = stdout)");
  cli.finish();

  if (reps < 1) {
    std::fprintf(stderr, "bench_sketch: --reps must be >= 1\n");
    return 2;
  }
  std::string family;
  std::uint64_t n = 0;
  std::uint64_t gseed = 1;
  if (!graph::parse_generator_spec(generate, family, n, gseed)) {
    std::fprintf(stderr, "bench_sketch: bad --generate spec '%s'\n",
                 generate.c_str());
    return 2;
  }

  // Ground truth, computed once: canonical edge keys (distinct count), and
  // canonical min-id component labels (distinct count + multiplicities).
  const graph::EdgeList el = graph::make_family(family, n, gseed);
  std::vector<std::uint64_t> keys(el.edges.size());
  util::parallel_for(0, el.edges.size(), [&](std::size_t i) {
    keys[i] = edge_key(el.edges[i].u, el.edges[i].v);
  });
  std::vector<std::uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  const auto exact_distinct = static_cast<double>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  auto r = connected_components(graph::ArcsInput::from_edges(el),
                                Algorithm::kFasterCC, {});
  const std::vector<graph::VertexId> labels = r.labels();
  const auto exact_components = static_cast<double>(r.num_components());
  std::vector<std::uint64_t> exact_size(el.n, 0);
  for (graph::VertexId l : labels) ++exact_size[l];

  header("sketch: error vs space",
         "HLL cardinality and count-min frequency error as a function of "
         "sketch bytes, against one exact ground truth");
  std::printf("graph %s: n=%" PRIu64 " edges=%zu distinct=%.0f "
              "components=%.0f, %d reps (backend=%s)\n\n",
              generate.c_str(), el.n, el.edges.size(), exact_distinct,
              exact_components, reps, util::parallel_backend_name());

  std::vector<Cell> cells;
  const std::span<const std::uint64_t> key_span(keys);
  const std::span<const graph::VertexId> label_span(labels);

  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t s = seed + 7919ULL * static_cast<std::uint64_t>(rep);
    for (int p : {8, 10, 12, 14}) {
      {
        util::Timer t;
        sketch::HyperLogLog hll(p, s);
        hll.add_parallel(key_span);
        Cell c;
        c.algorithm = "hll-edges-p" + std::to_string(p);
        c.rep = rep;
        c.seconds = t.seconds();
        c.estimate = hll.estimate();
        c.exact = exact_distinct;
        c.rel_error = std::abs(c.estimate - c.exact) / c.exact;
        c.bytes = hll.serialize().size();
        cells.push_back(std::move(c));
      }
      {
        util::Timer t;
        sketch::HyperLogLog hll(p, s);
        hll.add_parallel(label_span);
        Cell c;
        c.algorithm = "hll-components-p" + std::to_string(p);
        c.rep = rep;
        c.seconds = t.seconds();
        c.estimate = hll.estimate();
        c.exact = exact_components;
        c.rel_error = std::abs(c.estimate - c.exact) / c.exact;
        c.bytes = hll.serialize().size();
        cells.push_back(std::move(c));
      }
    }
    for (int w : {1 << 10, 1 << 12, 1 << 14, 1 << 16}) {
      util::Timer t;
      sketch::CountMinSketch cms(4, static_cast<std::uint32_t>(w), s,
                                 sketch::CmsUpdate::kStandard);
      cms.add_parallel(label_span);
      // The count-min error metric: mean overestimate across the true
      // components, normalized by stream mass N (the quantity epsilon*N
      // bounds). Overestimate-only, so no abs() — a negative value would be
      // a bug, and the accuracy tests assert exactly that.
      double over = 0.0;
      std::uint64_t roots = 0;
      for (graph::VertexId v = 0; v < el.n; ++v) {
        if (exact_size[v] == 0) continue;
        ++roots;
        over += static_cast<double>(cms.estimate(v) - exact_size[v]);
      }
      Cell c;
      c.algorithm = "cms-sizes-w" + std::to_string(w);
      c.rep = rep;
      c.seconds = t.seconds();
      c.estimate = over / static_cast<double>(roots);  // mean overestimate
      c.exact = static_cast<double>(cms.total());
      c.rel_error = c.estimate / static_cast<double>(cms.total());
      c.bytes = cms.serialize().size();
      cells.push_back(std::move(c));
    }
  }

  std::printf("%-20s %3s %12s %12s %10s %10s\n", "cell", "rep", "estimate",
              "exact", "rel-err", "bytes");
  for (const Cell& c : cells)
    std::printf("%-20s %3d %12.1f %12.1f %9.5f%% %10" PRIu64 "\n",
                c.algorithm.c_str(), c.rep, c.estimate, c.exact,
                100.0 * c.rel_error, c.bytes);

  if (!json_path.empty()) {
    std::FILE* out =
        json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "bench_sketch: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"logcc-bench-v1\",\n"
                 "  \"driver\": \"bench_sketch\",\n"
                 "  \"runtime\": {\"backend\": \"%s\", \"grain\": %zu},\n"
                 "  \"dataset\": {\"name\": \"%s\", \"source\": \"generator\", "
                 "\"n\": %" PRIu64 ", \"edges\": %zu, \"distinct\": %.0f, "
                 "\"components\": %.0f},\n"
                 "  \"sketch\": {\"reps\": %d, \"seed\": %" PRIu64 "},\n"
                 "  \"runs\": [\n",
                 util::parallel_backend_name(), util::parallel_grain(),
                 json_escape(generate).c_str(), el.n, el.edges.size(),
                 exact_distinct, exact_components, reps, seed);
    const int hw = util::hardware_parallelism();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(out,
                   "    {\"algorithm\": \"%s\", \"threads\": %d, \"rep\": %d"
                   ", \"seconds\": %.6f, \"estimate\": %.3f, \"exact\": %.3f"
                   ", \"rel_error\": %.8f, \"bytes\": %" PRIu64 "}%s\n",
                   json_escape(c.algorithm).c_str(), hw, c.rep, c.seconds,
                   c.estimate, c.exact, c.rel_error, c.bytes,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout) std::fclose(out);
    if (json_path != "-")
      std::printf("\nwrote %s (logcc-bench-v1, %zu cells)\n",
                  json_path.c_str(), cells.size());
  }
  return 0;
}
