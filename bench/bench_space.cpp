// T2 — processors/space vs m (Lemma 3.10 / D.13).
//
// Paper claim reproduced: total block space allocated over all rounds and
// peak space in use are O(m) w.g.p. We report both normalised by m across a
// size sweep; the claim holds if the ratios stay bounded (no growth with n).
#include "bench_support.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 2, "seeds per cell"));
  cli.finish();

  header("T2: space / m across sizes",
         "claim (Lemma 3.10/D.13): peak and total block space are O(m); the "
         "normalised columns must not grow with n");

  util::TextTable table({"workload", "n", "m", "thm3 peak/m", "thm3 total/m",
                         "thm1 peak/m", "max ratio trend"});
  double prev_ratio = 0.0;
  bool bounded = true;
  for (std::uint64_t n : {2048ULL, 8192ULL, 32768ULL}) {
    for (std::uint64_t density : {2ULL, 8ULL}) {
      graph::EdgeList el = graph::make_gnm(n, density * n, 7 * n + density);
      const double m = static_cast<double>(el.edges.size());
      RunOutcome t3 = run_algorithm(el, Algorithm::kFasterCC, 3, reps);
      RunOutcome t1 = run_algorithm(el, Algorithm::kTheorem1, 3, reps);
      double peak3 = static_cast<double>(t3.stats.peak_space_words) / m;
      double tot3 = static_cast<double>(t3.stats.total_block_words) / m;
      double peak1 = static_cast<double>(t1.stats.peak_space_words) / m;
      double ratio = std::max(peak3, tot3);
      table.row()
          .add("gnm d=" + std::to_string(density))
          .add_int(static_cast<long long>(n))
          .add_int(static_cast<long long>(el.edges.size()))
          .add_double(peak3, 2)
          .add_double(tot3, 2)
          .add_double(peak1, 2)
          .add_double(ratio, 2);
      // Bounded: ratios should not systematically grow with n (allow 2x
      // noise between consecutive sizes).
      if (prev_ratio > 0 && ratio > 4 * prev_ratio) bounded = false;
      prev_ratio = ratio;
    }
  }
  // Grid (high diameter) for contrast.
  {
    graph::EdgeList el = graph::make_grid(64, 512);
    const double m = static_cast<double>(el.edges.size());
    RunOutcome t3 = run_algorithm(el, Algorithm::kFasterCC, 3, reps);
    table.row()
        .add("grid64x512")
        .add_int(static_cast<long long>(el.n))
        .add_int(static_cast<long long>(el.edges.size()))
        .add_double(static_cast<double>(t3.stats.peak_space_words) / m, 2)
        .add_double(static_cast<double>(t3.stats.total_block_words) / m, 2)
        .add("-")
        .add("-");
  }
  table.print();
  std::printf("\nshape check: space/m bounded across sizes: %s\n",
              bounded ? "PASS" : "INCONCLUSIVE");
  return 0;
}
