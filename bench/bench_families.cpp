// T1 — wall-clock and progress rounds, algorithm × graph family.
//
// Paper claim reproduced: "our hashing-based approach ... should be
// preferable in practice" — the paper's algorithms stay within a reasonable
// factor of the classical O(log n) PRAM baselines everywhere and win on
// round counts for small-diameter graphs; sequential BFS/union-find anchor
// the absolute scale.
#include "bench_support.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 4096, "vertex count"));
  const int reps = static_cast<int>(cli.get_int("reps", 2, "seeds per cell"));
  const std::vector<Workload> workloads =
      resolve_workloads(cli, n, graph::family_names());
  cli.finish();

  header("T1: algorithm x family (median seconds | progress rounds)",
         "claim: the paper's algorithms are competitive across families; "
         "round counts beat O(log n) baselines on low-diameter graphs");

  const std::vector<Algorithm> algs = {
      Algorithm::kFasterCC,  Algorithm::kTheorem1,   Algorithm::kVanilla,
      Algorithm::kShiloachVishkin, Algorithm::kAwerbuchShiloach,
      Algorithm::kLiuTarjan, Algorithm::kLabelProp,  Algorithm::kUnionFind,
      Algorithm::kBFS};

  std::vector<std::string> cols{"family"};
  for (Algorithm a : algs) cols.push_back(to_string(a));
  util::TextTable table(cols);

  bool all_correct = true;
  for (const Workload& w : workloads) {
    table.row().add(w.name);
    for (Algorithm alg : algs) {
      RunOutcome r = run_algorithm(w.input, alg, 3, reps);
      all_correct = all_correct && r.correct;
      char cell[64];
      std::snprintf(cell, sizeof cell, "%.1fms|%llu", r.seconds * 1e3,
                    static_cast<unsigned long long>(r.rounds));
      table.add(cell);
    }
  }
  table.print();
  std::printf("\nall answers matched the BFS oracle: %s\n",
              all_correct ? "PASS" : "FAIL");
  return 0;
}
