// P1 — PRAM simulator fidelity.
//
// Claims checked: (a) Shiloach–Vishkin on the step simulator takes Θ(log n)
// steps with O((n+m) log n) work; (b) the computed partition is identical
// under ARBITRARY (any seed), PRIORITY and the combining policies — i.e. the
// algorithms genuinely tolerate arbitrary write resolution, the property the
// paper's model grants for free.
#include "bench_support.hpp"
#include "pram/sv_on_pram.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;
  using pram::WritePolicy;

  util::Cli cli(argc, argv);
  cli.finish();

  header("P1: PRAM simulator fidelity (SV on the step machine)",
         "claims: steps ~ Theta(log n); partition independent of the write "
         "resolution policy and seed");

  util::TextTable table({"workload", "n", "policy", "iterations", "steps",
                         "work", "conflicts"});
  std::vector<double> log_n, steps;
  bool policies_agree = true;
  for (std::uint64_t n : {256ULL, 1024ULL, 4096ULL}) {
    for (int kind = 0; kind < 2; ++kind) {
      graph::EdgeList el =
          kind == 0 ? graph::make_path(n) : graph::make_gnm(n, 3 * n, n);
      const char* wname = kind == 0 ? "path" : "gnm3";
      auto arb = pram::shiloach_vishkin_on_pram(el, WritePolicy::kArbitrary, 1);
      auto arb2 =
          pram::shiloach_vishkin_on_pram(el, WritePolicy::kArbitrary, 999);
      auto pri = pram::shiloach_vishkin_on_pram(el, WritePolicy::kPriority, 1);
      policies_agree = policies_agree &&
                       graph::same_partition(arb.labels, pri.labels) &&
                       graph::same_partition(arb.labels, arb2.labels);
      for (const auto* r : {&arb, &pri}) {
        table.row()
            .add(wname)
            .add_int(static_cast<long long>(n))
            .add(r == &arb ? "arbitrary" : "priority")
            .add_int(static_cast<long long>(r->iterations))
            .add_int(static_cast<long long>(r->ledger.steps))
            .add_int(static_cast<long long>(r->ledger.work))
            .add_int(static_cast<long long>(r->ledger.conflicts));
      }
      if (kind == 0) {
        log_n.push_back(std::log2(static_cast<double>(n)));
        steps.push_back(static_cast<double>(arb.ledger.steps));
      }
    }
  }
  table.print();

  auto fit = util::linear_fit(log_n, steps);
  std::printf("\nfit: SV steps ~ %.1f * log2(n) + %.1f (r^2 = %.3f) on "
              "paths\n",
              fit.slope, fit.intercept, fit.r2);
  std::printf("shape check: policy/seed independence of the partition: %s\n",
              policies_agree ? "PASS" : "FAIL");
  return 0;
}
