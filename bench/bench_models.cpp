// C1 — model comparison: the same task on MPC vs PRAM.
//
// The paper's thesis: the MPC algorithms of [ASS+18]/[BDE+19] lean on O(1)-
// round sorting/prefix sums; logcc shows the power is unnecessary — a plain
// ARBITRARY CRCW PRAM matches the round complexity using hashing. This bench
// puts the implementations side by side:
//
//   * MPC log-diameter CC (Andoni-style, O(1)-round primitives charged by
//     the engine);
//   * the PRAM Theorem-3 algorithm (rounds = EXPAND-MAXLINK iterations);
//   * MPC Vanilla (Reif in the MPC model) and PRAM Vanilla as the Θ(log n)
//     anchors.
//
// Expected shape: Thm-3 PRAM rounds track the MPC algorithm's phase·log d
// structure (within constants) while both sit far below the Θ(log n)
// vanillas on low-diameter inputs; and the PRAM needs no sort at all.
#include "bench_support.hpp"
#include "mpc/mpc_cc.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 8192, "vertex count"));
  cli.finish();

  header("C1: MPC vs PRAM on the same workloads",
         "claim: the PRAM algorithm matches the MPC round structure without "
         "sorting/prefix sums (the paper's headline)");

  struct W {
    std::string name;
    graph::EdgeList el;
  };
  std::vector<W> ws;
  ws.push_back({"star", graph::make_star(n)});
  ws.push_back({"gnm m=4n", graph::make_gnm(n, 4 * n, 5)});
  ws.push_back({"rmat", graph::make_rmat(13, 8 * n, 6)});
  ws.push_back({"grid", graph::make_grid(64, n / 64)});
  ws.push_back({"path", graph::make_path(n)});

  util::TextTable table({"workload", "mpc-logd phases", "mpc-logd expand",
                         "mpc-logd rounds", "pram-thm3 ml-rounds",
                         "mpc-vanilla phases", "pram-vanilla phases"});
  bool all_correct = true;
  for (const W& w : ws) {
    auto oracle = graph::bfs_components(graph::Graph::from_edges(w.el));
    auto mpc_fast = mpc::mpc_log_diameter_cc(w.el, 3);
    auto mpc_van = mpc::mpc_vanilla_cc(w.el, 3);
    Options no_prepare;
    no_prepare.faster.prepare_max_phases = 0;
    auto pram_fast =
        run_algorithm(w.el, Algorithm::kFasterCC, 3, 2, no_prepare);
    auto pram_van = run_algorithm(w.el, Algorithm::kVanilla, 3, 2);

    all_correct = all_correct && pram_fast.correct && pram_van.correct &&
                  graph::same_partition(oracle, mpc_fast.labels) &&
                  graph::same_partition(oracle, mpc_van.labels);

    table.row()
        .add(w.name)
        .add_int(static_cast<long long>(mpc_fast.phases))
        .add_int(static_cast<long long>(mpc_fast.expand_steps))
        .add_int(static_cast<long long>(mpc_fast.ledger.rounds))
        .add_int(static_cast<long long>(pram_fast.stats.rounds))
        .add_int(static_cast<long long>(mpc_van.phases))
        .add_int(static_cast<long long>(pram_van.stats.phases));
  }
  table.print();
  std::printf("\nall answers matched the BFS oracle: %s\n",
              all_correct ? "PASS" : "FAIL");
  std::printf("note: 'mpc-logd rounds' charges 1 round per O(1)-round "
              "primitive (sort/dedup/map); the PRAM column uses no such "
              "primitives at all.\n");
  return 0;
}
