// F3 — maximum level reached vs. the Lemma 3.19/D.23 bound.
//
// Paper claim reproduced: levels never exceed L = O(max{2, log log_{m/n} n})
// w.g.p. Under the practical policy the analogue of L is the saturation
// level (budget cap reached) plus a small constant for collision-forced
// raises; the measured max level must track it, not n.
#include "bench_support.hpp"
#include "core/budget.hpp"
#include "util/bitutil.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3, "seeds per cell"));
  cli.finish();

  header("F3: max level vs the Lemma 3.19/D.23 bound",
         "claim: levels stay O(log log n)-like (saturation level + O(1)), "
         "independent of n growth");

  util::TextTable table({"n", "m/n", "saturation L", "measured max level",
                         "level raises", "within L + slack"});
  bool ok = true;
  for (std::uint64_t n : {1024ULL, 4096ULL, 16384ULL, 65536ULL}) {
    for (std::uint64_t density : {2ULL, 8ULL}) {
      graph::EdgeList el = graph::make_gnm(n, density * n, n + density);
      const auto in = graph::ArcsInput::from_edges(el);
      core::ParamPolicy policy = core::ParamPolicy::practical(2 * n, el.edges.size());
      std::uint32_t max_level = 0;
      std::uint64_t raises = 0;
      for (int rep = 0; rep < reps; ++rep) {
        Options opt;
        opt.seed = 1000 + rep;
        auto r = connected_components(in, Algorithm::kFasterCC, opt);
        max_level = std::max(max_level, r.stats.max_level);
        raises += r.stats.level_raises;
      }
      std::uint32_t bound = policy.saturation_level() + 12;
      bool within = max_level <= bound;
      ok = ok && within;
      table.row()
          .add_int(static_cast<long long>(n))
          .add_int(static_cast<long long>(density))
          .add_int(policy.saturation_level())
          .add_int(max_level)
          .add_int(static_cast<long long>(raises / reps))
          .add(within ? "yes" : "NO");
    }
  }
  table.print();
  std::printf("\nshape check: all measured levels within bound: %s\n",
              ok ? "PASS" : "FAIL");
  return 0;
}
