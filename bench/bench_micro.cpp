// M1 — building-block micro benchmarks (google-benchmark).
//
// Covers the primitives every round of the paper's algorithms is built
// from: pairwise-independent hashing, table inserts, SHORTCUT, ALTER,
// approximate compaction, arc dedup. Useful for spotting constant-factor
// regressions; the asymptotic claims live in the F/T benches.
#include <benchmark/benchmark.h>

#include <atomic>

#include "core/building_blocks.hpp"
#include "core/round_arena.hpp"
#include "core/table_slab.hpp"
#include "core/compact.hpp"
#include "core/expand.hpp"
#include "core/expand_maxlink.hpp"
#include "core/hash_table.hpp"
#include "core/labels.hpp"
#include "core/vote.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "util/arena.hpp"
#include "util/hashing.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace {

using namespace logcc;

// Ambient runtime configuration, captured lazily on first use (function-
// local statics, NOT namespace-scope initializers: those would race the
// cross-TU dynamic initialization of parallel.cpp's own globals). Guards
// force the capture in their constructors, before mutating anything.
int default_threads() {
  static const int threads = util::hardware_parallelism();
  return threads;
}
util::ParallelBackend default_backend() {
  static const util::ParallelBackend backend = util::parallel_backend();
  return backend;
}

/// Applies the benchmark's thread-count argument (range(1)) for its run.
struct ThreadGuard {
  explicit ThreadGuard(int threads) {
    default_threads();  // pin the ambient value before changing it
    util::set_parallelism(threads);
  }
  ~ThreadGuard() { util::set_parallelism(default_threads()); }
};

/// Pins a dispatch backend for one benchmark run (pool vs OpenMP vs serial
/// comparisons).
struct BackendGuard {
  explicit BackendGuard(util::ParallelBackend b) {
    default_threads();  // capture both ambients before the backend switch
    default_backend();
    util::set_parallel_backend(b);
  }
  ~BackendGuard() { util::set_parallel_backend(default_backend()); }
};

void BM_PairwiseHash(benchmark::State& state) {
  auto h = util::PairwiseHash::from_seed(42);
  std::uint64_t x = 0, acc = 0;
  for (auto _ : state) {
    acc ^= h(++x, 1024);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_PairwiseHash);

void BM_TableInsert(benchmark::State& state) {
  const std::uint32_t cap = static_cast<std::uint32_t>(state.range(0));
  auto h = util::PairwiseHash::from_seed(7);
  core::VertexTable t(cap);
  std::uint32_t v = 0;
  for (auto _ : state) {
    if (v % cap == 0) t.reset(cap);
    t.insert_at(static_cast<std::uint32_t>(h(v, cap)), v);
    ++v;
  }
  benchmark::DoNotOptimize(t.count());
}
BENCHMARK(BM_TableInsert)->Arg(64)->Arg(4096);

void BM_VertexTableReset(benchmark::State& state) {
  // Arg 0: reset at the SAME capacity — a generation-stamp bump, O(1) in
  // the table size. Arg 1: alternating capacities — the full re-assign
  // path every call. The gap is the win of the epoch reset.
  const std::uint32_t cap = 1 << 16;
  const bool alternate = state.range(0) != 0;
  core::VertexTable t(cap);
  std::uint32_t flip = 0;
  for (auto _ : state) {
    t.reset(alternate && (++flip & 1) ? cap + 1 : cap);
    benchmark::DoNotOptimize(t.capacity());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VertexTableReset)->Arg(0)->Arg(1);

void BM_TableSlabFillThreaded(benchmark::State& state) {
  // Bucketized table fill: one epoch-bump reset of the whole slab plus the
  // hashed-insert write pattern of an EXPAND seeding pass. Memory-bound —
  // bytes/sec is the number to watch across thread counts.
  const std::uint32_t num = static_cast<std::uint32_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  constexpr std::uint32_t kCap = 8;
  auto h = util::PairwiseHash::from_seed(11);
  core::TableSlab slab;
  for (auto _ : state) {
    slab.reset_uniform(num, kCap);
    util::parallel_for(0, num, [&](std::size_t t) {
      const auto t32 = static_cast<std::uint32_t>(t);
      for (std::uint32_t j = 0; j < 4; ++j) {
        const auto w = static_cast<graph::VertexId>(util::mix64(t, j) %
                                                    (8ull * num));
        slab.insert_at(t32, static_cast<std::uint32_t>(h(w, kCap)), w);
      }
    });
    benchmark::DoNotOptimize(slab.slab_words());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(slab.slab_words() * sizeof(std::uint64_t)));
}
BENCHMARK(BM_TableSlabFillThreaded)
    ->Args({1 << 17, 1})
    ->Args({1 << 17, 8})
    ->UseRealTime();

void BM_Shortcut(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  core::ParentForest base(n);
  for (graph::VertexId v = 1; v < n; ++v) base.set_parent(v, v - 1);
  for (auto _ : state) {
    core::ParentForest f = base;
    f.shortcut();
    benchmark::DoNotOptimize(f.parent(static_cast<graph::VertexId>(n - 1)));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Shortcut)->Arg(1 << 12)->Arg(1 << 16);

void BM_Flatten(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  core::ParentForest base(n);
  for (graph::VertexId v = 1; v < n; ++v) base.set_parent(v, v - 1);
  for (auto _ : state) {
    core::ParentForest f = base;
    f.flatten();
    benchmark::DoNotOptimize(f.parent(static_cast<graph::VertexId>(n - 1)));
  }
}
BENCHMARK(BM_Flatten)->Arg(1 << 12);

void BM_Alter(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  auto el = graph::make_gnm(n, 4 * n, 3);
  auto arcs = core::arcs_from_edges(el);
  core::ParentForest f(n);
  for (graph::VertexId v = 0; v < n; ++v) f.set_parent(v, v / 2);
  for (auto _ : state) {
    auto copy = arcs;
    core::alter(copy, f);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * arcs.size());
}
BENCHMARK(BM_Alter)->Arg(1 << 12);

void BM_DedupArcs(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  auto el = graph::make_gnm(n, 4 * n, 5);
  const auto half = core::arcs_from_edges(el);
  auto arcs = half;
  arcs.insert(arcs.end(), half.begin(), half.end());  // force duplicates
  for (auto _ : state) {
    auto copy = arcs;
    core::dedup_arcs(copy);
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(BM_DedupArcs)->Arg(1 << 12);

// ---- Threaded variants of the phase-loop hot path. Args are {n, threads};
// items/sec makes the speedup visible in the bench JSON (compare the same n
// across thread counts).

void BM_AlterThreaded(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  auto el = graph::make_gnm(n, 4 * n, 3);
  auto arcs = core::arcs_from_edges(el);
  core::ParentForest f(n);
  for (graph::VertexId v = 0; v < n; ++v) f.set_parent(v, v / 2);
  for (auto _ : state) {
    core::alter(arcs, f);
    benchmark::DoNotOptimize(arcs.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(arcs.size()));
}
BENCHMARK(BM_AlterThreaded)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->Args({1 << 20, 8})
    ->UseRealTime();

void BM_ShortcutThreaded(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  core::ParentForest f(n);
  for (graph::VertexId v = 1; v < n; ++v) f.set_parent(v, v / 2);
  // Steady state after ~log n calls: every later iteration is one full
  // synchronous pass over n pointers (the phase-loop cost being measured).
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.shortcut());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  // One pointer read + one write per vertex (memory-bound).
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          2 * sizeof(graph::VertexId));
}
BENCHMARK(BM_ShortcutThreaded)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->Args({1 << 20, 8})
    ->UseRealTime();

void BM_DedupArcsThreaded(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  auto el = graph::make_gnm(n, 2 * n, 5);
  const auto half = core::arcs_from_edges(el);
  auto arcs = half;
  arcs.insert(arcs.end(), half.begin(), half.end());  // force duplicates
  for (auto _ : state) {
    auto copy = arcs;
    core::dedup_arcs(copy);
    benchmark::DoNotOptimize(copy.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(arcs.size()));
  // Scatter + in-bucket radix passes + pack all stream the arc array
  // (memory-bound).
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(arcs.size()) *
                          sizeof(core::Arc));
}
BENCHMARK(BM_DedupArcsThreaded)
    ->Args({1 << 19, 1})
    ->Args({1 << 19, 4})
    ->Args({1 << 19, 8})
    ->UseRealTime();

void BM_CollectOngoingThreaded(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  auto el = graph::make_gnm(n, 4 * n, 7);
  auto arcs = core::arcs_from_edges(el);
  core::ParentForest f(n);
  std::vector<std::uint64_t> scratch;
  for (auto _ : state) {
    auto ongoing = core::collect_ongoing(f, arcs, scratch);
    benchmark::DoNotOptimize(ongoing.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(arcs.size()));
}
BENCHMARK(BM_CollectOngoingThreaded)
    ->Args({1 << 19, 1})
    ->Args({1 << 19, 4})
    ->Args({1 << 19, 8})
    ->UseRealTime();

void BM_GroupByThreaded(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  const std::size_t num_keys = n / 4;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> items(n);
  for (std::size_t i = 0; i < n; ++i)
    items[i] = {static_cast<std::uint32_t>(util::mix64(5, i) % num_keys),
                static_cast<std::uint32_t>(i)};
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (auto _ : state) {
    auto off = util::parallel_group_by(
        items, out, num_keys, [](const auto& p) { return p.first; });
    benchmark::DoNotOptimize(off.back());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  // Partition pass + in-bucket counting-sort scatter: each item moves
  // twice (memory-bound).
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          2 * sizeof(items[0]));
}
BENCHMARK(BM_GroupByThreaded)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->Args({1 << 20, 8})
    ->UseRealTime();

void BM_ExpandRunThreaded(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  auto el = graph::make_gnm(n, 3 * n, 9);
  auto arcs = core::arcs_from_edges(el);
  core::drop_loops(arcs);
  std::vector<graph::VertexId> ongoing(n);
  for (graph::VertexId v = 0; v < n; ++v) ongoing[v] = v;
  core::ExpandParams p;
  p.block_count = 4 * n + 7;
  p.table_capacity = 8;
  p.seed = 42;
  p.max_rounds = 16;
  core::ExpandScratch scratch;
  for (auto _ : state) {
    core::RunStats stats;
    core::ExpandEngine engine(n, ongoing, arcs, p, stats, &scratch);
    engine.run();
    benchmark::DoNotOptimize(engine.rounds());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(arcs.size()));
}
BENCHMARK(BM_ExpandRunThreaded)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 16, 8})
    ->UseRealTime();

void BM_VoteThreaded(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  auto el = graph::make_gnm(n, 3 * n, 15);
  auto arcs = core::arcs_from_edges(el);
  core::drop_loops(arcs);
  std::vector<graph::VertexId> ongoing(n);
  for (graph::VertexId v = 0; v < n; ++v) ongoing[v] = v;
  core::ExpandParams p;
  p.block_count = 4 * n + 7;
  p.table_capacity = 8;
  p.seed = 42;
  p.max_rounds = 16;
  core::RunStats stats;
  core::ExpandEngine engine(n, ongoing, arcs, p, stats);
  engine.run();
  core::VoteParams vp;
  vp.dormant_leader_prob = 0.3;
  vp.seed = 3;
  for (auto _ : state) {
    core::RunStats s;
    auto leader = core::vote(engine, vp, s);
    benchmark::DoNotOptimize(leader.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_VoteThreaded)
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 4})
    ->Args({1 << 18, 8})
    ->UseRealTime();

void BM_MaxlinkRoundThreaded(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  auto el = graph::make_gnm(n, 3 * n, 21);
  auto arcs = core::arcs_from_edges(el);
  std::vector<std::uint8_t> exists(n, 1);
  auto policy = core::ParamPolicy::practical(n, el.edges.size());
  for (auto _ : state) {
    state.PauseTiming();
    core::RunStats stats;
    core::ExpandMaxlink engine(n, arcs, exists, policy, 17, stats);
    state.ResumeTiming();
    engine.round();
    benchmark::DoNotOptimize(engine.rounds_run());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(arcs.size()));
}
BENCHMARK(BM_MaxlinkRoundThreaded)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 16, 8})
    ->UseRealTime();

void BM_PrefixSumThreaded(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  std::vector<std::uint64_t> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = util::mix64(1, i) & 0xff;
  for (auto _ : state) {
    auto copy = base;
    benchmark::DoNotOptimize(util::parallel_prefix_sum(copy));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  // In-place exclusive scan: one read + one write per word (memory-bound).
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          2 * sizeof(std::uint64_t));
}
BENCHMARK(BM_PrefixSumThreaded)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->UseRealTime();

// ---- Parallel-runtime microbenchmarks: per-dispatch latency of each
// backend (the overhead every PRAM step of every round pays) and the
// round-scratch arena. Args are {n, threads}.

template <util::ParallelBackend kBackend>
void BM_DispatchLatency(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  BackendGuard backend(kBackend);
  ThreadGuard guard(static_cast<int>(state.range(1)));
  // Near-empty body: the measurement is the fork/join (OpenMP) vs
  // wake/park (pool) cost per parallel_for, amortized per dispatch.
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    util::parallel_for(0, n, [&](std::size_t i) {
      if (i == 0) sink.fetch_add(1, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchLatency<util::ParallelBackend::kPool>)
    ->Args({util::kSerialGrain, 4})
    ->Args({util::kSerialGrain, 8})
    ->Args({1 << 16, 8})
    ->UseRealTime();
#ifdef LOGCC_HAVE_OPENMP
BENCHMARK(BM_DispatchLatency<util::ParallelBackend::kOpenMP>)
    ->Args({util::kSerialGrain, 4})
    ->Args({util::kSerialGrain, 8})
    ->Args({1 << 16, 8})
    ->UseRealTime();
#endif

template <util::ParallelBackend kBackend>
void BM_DispatchBlocks(benchmark::State& state) {
  BackendGuard backend(kBackend);
  ThreadGuard guard(static_cast<int>(state.range(1)));
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    util::parallel_for_blocks(blocks, [&](std::size_t b) {
      if (b == 0) sink.fetch_add(1, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchBlocks<util::ParallelBackend::kPool>)
    ->Args({64, 8})
    ->UseRealTime();
#ifdef LOGCC_HAVE_OPENMP
BENCHMARK(BM_DispatchBlocks<util::ParallelBackend::kOpenMP>)
    ->Args({64, 8})
    ->UseRealTime();
#endif

void BM_ArenaAllocReset(benchmark::State& state) {
  // One simulated round: the scratch-request mix of a mid-size phase
  // (partials, counting grid, pack staging), then reset. Steady state is
  // pure pointer bumps — compare against BM_RoundScratchHeap.
  util::MonotonicArena arena;
  for (auto _ : state) {
    auto partials = arena.alloc<std::uint64_t>(256);
    auto grid = arena.alloc_zero<std::uint64_t>(256 * 64);
    auto staging = arena.alloc<std::uint64_t>(1 << 15);
    benchmark::DoNotOptimize(partials.data());
    benchmark::DoNotOptimize(grid.data());
    benchmark::DoNotOptimize(staging.data());
    arena.reset();
  }
}
BENCHMARK(BM_ArenaAllocReset);

void BM_RoundScratchHeap(benchmark::State& state) {
  // The same request mix served by the heap (what every round paid before
  // the arena).
  for (auto _ : state) {
    std::vector<std::uint64_t> partials(256);
    std::vector<std::uint64_t> grid(256 * 64, 0);
    std::vector<std::uint64_t> staging(1 << 15);
    benchmark::DoNotOptimize(partials.data());
    benchmark::DoNotOptimize(grid.data());
    benchmark::DoNotOptimize(staging.data());
  }
}
BENCHMARK(BM_RoundScratchHeap);

void BM_PackThreadedArena(benchmark::State& state) {
  // parallel_pack with the round arena active: steady-state rounds stage
  // through retained arena bytes instead of a fresh vector.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadGuard guard(static_cast<int>(state.range(1)));
  core::RoundArena arena;
  core::RoundArena::Scope scope(arena);
  std::vector<std::uint64_t> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = util::mix64(2, i);
  std::vector<std::uint64_t> work;
  for (auto _ : state) {
    util::scratch_arena_round_reset();
    work = base;
    util::parallel_pack(work, [](std::uint64_t x) { return (x & 3) != 0; });
    benchmark::DoNotOptimize(work.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  // Flag scan + staged compaction copy (memory-bound).
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          2 * sizeof(std::uint64_t));
}
BENCHMARK(BM_PackThreadedArena)
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 8})
    ->UseRealTime();

void BM_ApproximateCompaction(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::uint8_t> flags(n, 0);
  util::Xoshiro256 rng(9);
  for (std::uint64_t i = 0; i < n; ++i) flags[i] = rng.bernoulli(0.3);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto slots = core::approximate_compaction_vec(flags, ++seed);
    benchmark::DoNotOptimize(slots.has_value());
  }
}
BENCHMARK(BM_ApproximateCompaction)->Arg(1 << 12)->Arg(1 << 16);

void BM_BfsOracle(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  auto el = graph::make_gnm(n, 4 * n, 11);
  auto g = graph::Graph::from_edges(el);
  for (auto _ : state) {
    auto labels = graph::bfs_components(g);
    benchmark::DoNotOptimize(labels.data());
  }
}
BENCHMARK(BM_BfsOracle)->Arg(1 << 14);

}  // namespace
