// cc_bench — the unified benchmark driver and the canonical source of the
// repo's perf trajectory (`bench.json`, schema "logcc-bench-v1").
//
//   $ ./cc_bench --generate=grid:5300000 --binary-cache=grid.bin \
//                --algorithms=vanilla,theorem1,faster-cc,sv \
//                --threads=1,2,8 --json=bench.json
//
// One invocation: resolve a dataset (text/binary file, or a generator family
// streamed to a binary CSR file and mmap-loaded back — the paper-scale
// path), run every requested algorithm under every thread count, and emit
// one JSON document with per-run timings, round counts, component counts,
// and a determinism verdict (identical components and label hash across
// thread counts — the thread-count-invariance contract, enforced here on
// real workloads, not just unit-test sizes).
//
// Exit status: 0 iff every run passed its checks (determinism across the
// sweep, plus the union-find certificate unless --no-verify).
#include <cinttypes>
#include <cstring>
#include <map>

#include "bench_support.hpp"
#include "util/parallel.hpp"

namespace {

using namespace logcc;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// FNV-1a over the label vector: a cheap fingerprint that must be identical
// across thread counts for the determinism verdict.
std::uint64_t labels_fingerprint(const std::vector<graph::VertexId>& labels) {
  std::uint64_t h = 1469598103934665603ULL;
  for (graph::VertexId v : labels) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunRecord {
  std::string algorithm;
  int threads = 0;            // requested
  int threads_effective = 0;  // what the backend actually honoured
  int rep = 0;
  double seconds = 0.0;
  std::uint64_t components = 0;
  std::uint64_t labels_hash = 0;
  bool verified = true;  // union-find certificate (when enabled)
  core::RunStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const std::string generate = cli.get_string(
      "generate", "", "family:n[:seed] — generator shorthand for --dataset");
  const std::string binary_cache = cli.get_string(
      "binary-cache", "",
      "with --generate: stream the family to this binary CSR file, then "
      "mmap-load it (exercises the large-graph I/O path)");
  const std::string algorithms_arg = cli.get_string(
      "algorithms", "vanilla,theorem1,faster-cc,sv",
      "comma list of algorithm names (see cc_tool --help for the set)");
  const std::string threads_arg =
      cli.get_string("threads", "1,2,8", "comma list of thread counts");
  const int reps =
      static_cast<int>(cli.get_int("reps", 1, "repetitions per cell"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "base random seed"));
  const std::string json_path = cli.get_string(
      "json", "", "write the logcc-bench-v1 document here ('-' = stdout)");
  const bool no_verify = cli.get_flag(
      "no-verify", "skip the O(m a(n)) union-find certificate per run");
  const std::string dataset = cli.get_string(
      "dataset", "",
      "graph file (text or LOGCCSR1 binary) or gen:family:n[:seed]");
  const std::string populate_arg = cli.get_string(
      "populate", "none",
      "mmap page population for binary datasets: none|willneed|populate "
      "(recorded in bench.json)");
  const std::string backend_arg = cli.get_string(
      "backend", "",
      "parallel dispatch backend: pool|omp|serial (default: the process "
      "default, LOGCC_BACKEND)");
  cli.finish();

  util::MmapPopulate populate = util::MmapPopulate::kNone;
  if (populate_arg == "willneed") {
    populate = util::MmapPopulate::kWillNeed;
  } else if (populate_arg == "populate") {
    populate = util::MmapPopulate::kPopulate;
  } else if (populate_arg != "none") {
    std::fprintf(stderr, "cc_bench: bad --populate '%s'\n",
                 populate_arg.c_str());
    return 2;
  }
  if (!backend_arg.empty()) {
    if (backend_arg == "pool") {
      util::set_parallel_backend(util::ParallelBackend::kPool);
    } else if (backend_arg == "omp") {
      util::set_parallel_backend(util::ParallelBackend::kOpenMP);
    } else if (backend_arg == "serial") {
      util::set_parallel_backend(util::ParallelBackend::kSerial);
    } else {
      std::fprintf(stderr, "cc_bench: bad --backend '%s'\n",
                   backend_arg.c_str());
      return 2;
    }
  }

  // Validate the sweep flags BEFORE the (potentially minutes-long) dataset
  // streaming/loading: a typo must fail in milliseconds, not after the
  // 10^8-edge graph is on disk.
  const std::vector<std::string> algorithms = split_csv(algorithms_arg);
  for (const std::string& name : algorithms) {
    bool known = false;
    for (Algorithm a : all_algorithms()) known = known || name == to_string(a);
    if (!known) {
      std::fprintf(stderr, "cc_bench: unknown algorithm '%s'\n", name.c_str());
      return 2;
    }
  }
  std::vector<int> threads;
  for (const std::string& t : split_csv(threads_arg)) {
    // Strict parse: a typo'd entry must not silently record runs under a
    // wrong thread count in the canonical bench.json.
    char* end = nullptr;
    const long v = std::strtol(t.c_str(), &end, 10);
    if (end != t.c_str() + t.size() || v < 1 || v > 4096) {
      std::fprintf(stderr, "cc_bench: bad thread count '%s'\n", t.c_str());
      return 2;
    }
    threads.push_back(static_cast<int>(v));
  }
  if (algorithms.empty() || threads.empty()) {
    std::fprintf(stderr,
                 "cc_bench: need at least one algorithm and thread count\n");
    return 2;
  }

  // Zero-copy resolution: binary (mmap) datasets stay in CSR form and the
  // algorithms ingest them directly — materialize_seconds must read 0 for
  // binary input (the CI bench smoke enforces it), so load→first-round
  // latency in this report is honest.
  graph::DatasetHandle handle;
  std::string dataset_name;  // overrides info().name for --generate runs
  double stream_seconds = 0.0;
  std::string error;
  if (!generate.empty() && !binary_cache.empty()) {
    // The paper-scale path: stream the generator to disk (O(n) memory, no
    // in-memory edge list), then load it back through the mmap loader.
    std::string family;
    std::uint64_t n = 0;
    std::uint64_t gseed = 1;
    if (!graph::parse_generator_spec(generate, family, n, gseed)) {
      std::fprintf(stderr, "cc_bench: bad --generate spec '%s'\n",
                   generate.c_str());
      return 2;
    }
    util::Timer t;
    if (!graph::stream_family_to_binary(family, n, gseed, binary_cache,
                                        &error)) {
      std::fprintf(stderr, "cc_bench: streaming '%s' failed: %s\n",
                   generate.c_str(), error.c_str());
      return 2;
    }
    stream_seconds = t.seconds();
    if (!graph::load_dataset_zero_copy(binary_cache, handle, &error,
                                       populate)) {
      std::fprintf(stderr, "cc_bench: %s\n", error.c_str());
      return 2;
    }
    dataset_name = generate;
  } else {
    std::string spec = !generate.empty() ? "gen:" + generate
                       : !dataset.empty() ? dataset
                                          : "gen:gnm2:65536";
    if (!graph::load_dataset_zero_copy(spec, handle, &error, populate)) {
      std::fprintf(stderr, "cc_bench: %s\n", error.c_str());
      return 2;
    }
    dataset_name = handle.info().name;
  }
  const graph::ArcsInput& input = handle.input();
  // Live reference, not a snapshot: materialize_seconds must reflect any
  // later handle.edges() call when the JSON is emitted, or the CI
  // zero-copy gate could never catch a materialization regression.
  const graph::DatasetInfo& info = handle.info();

  std::printf("dataset %s (%s): n=%" PRIu64 " edges=%" PRIu64
              " load=%.2fs materialize=%.2fs populate=%s%s\n",
              dataset_name.c_str(), info.source.c_str(), input.num_vertices(),
              input.num_edges(), info.load_seconds, info.materialize_seconds,
              util::to_string(info.populate),
              input.csr_backed() ? " (csr-native, zero-copy)" : "");
  std::printf("runtime: backend=%s grain=%zu\n", util::parallel_backend_name(),
              util::parallel_grain());
  if (stream_seconds > 0)
    std::printf("streamed to %s in %.2fs (%" PRIu64 " file bytes, mmap)\n",
                binary_cache.c_str(), stream_seconds, info.file_bytes);

  const int max_threads = util::hardware_parallelism();
  std::vector<RunRecord> runs;
  for (int t : threads) {
    util::set_parallelism(t);
    // Serial builds ignore set_parallelism; record what actually ran so the
    // perf trajectory never contains fabricated thread-scaling rows.
    const int effective = util::hardware_parallelism();
    if (effective != t)
      std::fprintf(stderr,
                   "cc_bench: warning: requested %d threads, backend runs "
                   "%d (serial build?)\n",
                   t, effective);
    for (const std::string& alg_name : algorithms) {
      const Algorithm alg = algorithm_from_string(alg_name);
      for (int rep = 0; rep < reps; ++rep) {
        Options opt;
        opt.seed = seed + 7919ULL * static_cast<std::uint64_t>(rep);
        auto r = connected_components(input, alg, opt);
        RunRecord rec;
        rec.algorithm = alg_name;
        rec.threads = t;
        rec.threads_effective = effective;
        rec.rep = rep;
        rec.seconds = r.seconds;
        rec.components = r.num_components();
        rec.labels_hash = labels_fingerprint(r.labels());
        rec.stats = r.stats;
        if (!no_verify) rec.verified = verify_components(input, r.index);
        runs.push_back(rec);
        std::printf("  %-10s t=%d rep=%d: %.3fs components=%" PRIu64
                    " rounds=%" PRIu64 " phases=%" PRIu64 "%s\n",
                    alg_name.c_str(), t, rep, rec.seconds, rec.components,
                    rec.stats.rounds, rec.stats.phases,
                    rec.verified ? "" : "  VERIFY-FAIL");
      }
    }
  }
  util::set_parallelism(max_threads);

  // Determinism verdict: for each (algorithm, rep), every thread count must
  // produce the same component count and label fingerprint.
  bool deterministic = true;
  bool all_verified = true;
  std::map<std::pair<std::string, int>, std::pair<std::uint64_t, std::uint64_t>>
      first_seen;
  for (const RunRecord& r : runs) {
    all_verified = all_verified && r.verified;
    const auto key = std::make_pair(r.algorithm, r.rep);
    const auto val = std::make_pair(r.components, r.labels_hash);
    auto [it, inserted] = first_seen.emplace(key, val);
    if (!inserted && it->second != val) {
      deterministic = false;
      std::fprintf(stderr,
                   "cc_bench: %s rep %d differs across thread counts\n",
                   r.algorithm.c_str(), r.rep);
    }
  }
  std::printf("thread-count determinism: %s   certificates: %s\n",
              deterministic ? "PASS" : "FAIL",
              no_verify ? "skipped" : (all_verified ? "PASS" : "FAIL"));

  if (!json_path.empty()) {
    std::FILE* out =
        json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cc_bench: cannot write '%s'\n", json_path.c_str());
      return 2;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"logcc-bench-v1\",\n"
                 "  \"driver\": \"cc_bench\",\n"
                 "  \"runtime\": {\"backend\": \"%s\", \"grain\": %zu},\n"
                 "  \"dataset\": {\"name\": \"%s\", \"source\": \"%s\", "
                 "\"n\": %" PRIu64 ", \"edges\": %" PRIu64
                 ", \"file_bytes\": %" PRIu64
                 ", \"load_seconds\": %.6f, \"materialize_seconds\": %.6f"
                 ", \"stream_seconds\": %.6f, \"csr_native\": %s"
                 ", \"populate\": \"%s\"},\n"
                 "  \"sweep\": {\"threads\": [",
                 util::parallel_backend_name(), util::parallel_grain(),
                 json_escape(dataset_name).c_str(),
                 json_escape(info.source).c_str(), input.num_vertices(),
                 input.num_edges(), info.file_bytes, info.load_seconds,
                 info.materialize_seconds, stream_seconds,
                 input.csr_backed() ? "true" : "false",
                 util::to_string(info.populate));
    for (std::size_t i = 0; i < threads.size(); ++i)
      std::fprintf(out, "%s%d", i ? ", " : "", threads[i]);
    std::fprintf(out,
                 "], \"reps\": %d, \"seed\": %" PRIu64
                 ", \"hardware_parallelism\": %d},\n"
                 "  \"deterministic\": %s,\n"
                 "  \"verified\": %s,\n"
                 "  \"runs\": [\n",
                 reps, seed, max_threads, deterministic ? "true" : "false",
                 no_verify ? "null" : (all_verified ? "true" : "false"));
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunRecord& r = runs[i];
      std::fprintf(
          out,
          "    {\"algorithm\": \"%s\", \"threads\": %d, "
          "\"threads_effective\": %d, \"rep\": %d, "
          "\"seconds\": %.6f, \"components\": %" PRIu64
          ", \"labels_hash\": \"%016" PRIx64 "\", \"verified\": %s, "
          "\"rounds\": %" PRIu64 ", \"phases\": %" PRIu64
          ", \"prepare_phases\": %" PRIu64 ", \"expand_rounds\": %" PRIu64
          ", \"max_level\": %u, \"peak_space_words\": %" PRIu64 "}%s\n",
          json_escape(r.algorithm).c_str(), r.threads, r.threads_effective,
          r.rep, r.seconds,
          r.components, r.labels_hash,
          no_verify ? "null" : (r.verified ? "true" : "false"),
          r.stats.rounds, r.stats.phases, r.stats.prepare_phases,
          r.stats.expand_rounds, r.stats.max_level, r.stats.peak_space_words,
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout) std::fclose(out);
    if (json_path != "-")
      std::printf("wrote %s (logcc-bench-v1, %zu runs)\n", json_path.c_str(),
                  runs.size());
  }

  return (deterministic && (no_verify || all_verified)) ? 0 : 1;
}
