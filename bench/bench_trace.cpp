// T5 — per-round convergence traces of EXPAND-MAXLINK.
//
// The textual analogue of a convergence figure: for each round of the
// Theorem-3 loop, the number of live roots, roots still incident to an
// edge, accumulated added edges, hash collisions and level raises. Shapes
// checked against the analysis:
//   * active roots shrink at least geometrically once budgets saturate
//     (the double-exponential progress of §1.2);
//   * the maximum level plateaus at the saturation level (Lemma 3.19);
//   * collisions die out as tables outgrow their load.
#include "bench_support.hpp"
#include "core/compact.hpp"
#include "core/expand_maxlink.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 16384, "vertex count"));
  cli.finish();

  header("T5: EXPAND-MAXLINK per-round convergence traces",
         "claim: geometric active-root decay, level plateau (Lemma 3.19), "
         "vanishing collisions");

  struct W {
    const char* name;
    graph::EdgeList el;
  };
  std::vector<W> ws;
  ws.push_back({"path", graph::make_path(n)});
  ws.push_back({"gnm m=4n", graph::make_gnm(n, 4 * n, 9)});

  for (const W& w : ws) {
    core::RunStats stats;
    auto arcs = core::arcs_from_edges(w.el);
    std::vector<std::uint8_t> exists(w.el.n, 1);
    core::ParamPolicy policy = core::ParamPolicy::practical(
        w.el.n, std::max<std::uint64_t>(w.el.edges.size(), 1));
    core::ExpandMaxlink engine(w.el.n, arcs, exists, policy, 17, stats);
    engine.enable_trace();
    bool done = false;
    for (int r = 0; r < 200 && !done; ++r) done = engine.round();

    std::printf("\nworkload: %s (n=%llu) — %s after %llu rounds\n", w.name,
                static_cast<unsigned long long>(w.el.n),
                done ? "break condition reached" : "round cap hit",
                static_cast<unsigned long long>(engine.rounds_run()));
    util::TextTable table({"round", "roots", "active", "added-edges",
                           "collisions", "raises", "max-level"});
    std::vector<double> active_series;
    for (const core::RoundTrace& t : engine.trace()) {
      table.row()
          .add_int(static_cast<long long>(t.round))
          .add_int(static_cast<long long>(t.roots))
          .add_int(static_cast<long long>(t.active_roots))
          .add_int(static_cast<long long>(t.added_edges))
          .add_int(static_cast<long long>(t.collisions))
          .add_int(static_cast<long long>(t.raises))
          .add_int(t.max_level);
      active_series.push_back(static_cast<double>(t.active_roots));
    }
    table.print();
    std::printf("active-root decay: [%s]\n",
                util::sparkline(active_series).c_str());
    bool decays = active_series.empty() ||
                  active_series.back() <= active_series.front() / 4 ||
                  active_series.back() == 0;
    std::printf("shape check: active roots decayed: %s\n",
                decays ? "PASS" : "INCONCLUSIVE");
  }
  return 0;
}
