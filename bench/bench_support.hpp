// Shared helpers for the experiment binaries: algorithm running with oracle
// checks, dataset/workload resolution (file, binary, or generator spec), and
// small formatting utilities. Every bench main goes through these instead of
// rolling its own setup, so `--dataset` works uniformly across the suite.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/bfs_cc.hpp"
#include "core/connectivity.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace logcc::bench {

/// A named input graph plus provenance (how it was loaded). Zero-copy: the
/// shared handle owns the backing storage (mmap for binary datasets, the
/// edge vector otherwise) and `input` views it — binary datasets are never
/// re-materialized unless a bench explicitly asks for indexed edges via
/// el(). The handle must stay alive as long as `input` is used (it is,
/// because Workload holds it).
struct Workload {
  std::string name;
  std::shared_ptr<graph::DatasetHandle> handle;
  graph::ArcsInput input;

  /// Live provenance record (not a copy: el() below updates
  /// materialize_seconds in place).
  const graph::DatasetInfo& info() const { return handle->info(); }

  /// Indexed edge storage, materialized (and cached) on demand; the
  /// conversion time lands in info().materialize_seconds, kept separate
  /// from both load and algorithm time.
  const graph::EdgeList& el() const { return handle->edges(); }
};

/// Uniform workload resolution for bench mains. Declares `--dataset` on the
/// CLI: when passed (a text/binary file path or a `gen:family:n[:seed]`
/// spec — anything graph::load_dataset accepts) it overrides the default
/// family sweep with that single input; otherwise each name in `families`
/// is generated at `default_n` vertices. Exits with a message on unreadable
/// datasets, so every bench fails loudly and identically.
inline Workload resolve_one_workload(const std::string& program,
                                     const std::string& spec) {
  Workload w;
  w.handle = std::make_shared<graph::DatasetHandle>();
  std::string error;
  if (!graph::load_dataset_zero_copy(spec, *w.handle, &error)) {
    std::fprintf(stderr, "%s: %s\n", program.c_str(), error.c_str());
    std::exit(2);
  }
  w.input = w.handle->input();
  w.name = w.handle->info().name;
  return w;
}

inline std::vector<Workload> resolve_workloads(
    util::Cli& cli, std::uint64_t default_n,
    const std::vector<std::string>& families, std::uint64_t seed = 99) {
  const std::string dataset = cli.get_string(
      "dataset", "",
      "graph file (text or LOGCCSR1 binary) or gen:family:n[:seed]; "
      "overrides the built-in family sweep");
  std::vector<Workload> out;
  if (!dataset.empty()) {
    out.push_back(resolve_one_workload(cli.program(), dataset));
    return out;
  }
  for (const std::string& family : families) {
    Workload w = resolve_one_workload(
        cli.program(), "gen:" + family + ":" + std::to_string(default_n) +
                           ":" + std::to_string(seed));
    w.name = family;
    out.push_back(std::move(w));
  }
  return out;
}

/// Minimal JSON string escaping for the bench.json emitters (quotes,
/// backslashes, control bytes — dataset names and error strings only ever
/// need this much).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// "Progress rounds" — the quantity each theorem bounds: EXPAND-MAXLINK
/// rounds for Theorem 3, phases for the phase-structured algorithms, rounds
/// for the classical baselines.
inline std::uint64_t progress_rounds(const ComponentsResult& r) {
  return r.stats.rounds + r.stats.phases + r.stats.prepare_phases;
}

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t rounds = 0;
  bool correct = false;
  core::RunStats stats;
};

/// Runs an algorithm, checks against the oracle, and averages over `reps`
/// seeds (rounds are averaged, seconds take the median-of-reps minimum).
/// `base` carries algorithm-specific overrides (seed is replaced per rep).
/// The ArcsInput overload runs CSR-backed datasets zero-copy (the oracle
/// BFS too); the EdgeList overload forwards.
inline RunOutcome run_algorithm(const graph::ArcsInput& in, Algorithm alg,
                                std::uint64_t base_seed = 1, int reps = 3,
                                const Options& base = {}) {
  RunOutcome out;
  auto oracle = baselines::bfs_cc(in).labels;
  util::Accumulator secs, rounds;
  out.correct = true;
  for (int rep = 0; rep < reps; ++rep) {
    Options opt = base;
    opt.seed = base_seed + 7919ULL * static_cast<std::uint64_t>(rep);
    auto r = connected_components(in, alg, opt);
    secs.add(r.seconds);
    rounds.add(static_cast<double>(progress_rounds(r)));
    out.correct = out.correct && graph::same_partition(oracle, r.labels());
    out.stats = r.stats;
  }
  out.seconds = util::percentile(secs.values(), 50.0);
  out.rounds = static_cast<std::uint64_t>(rounds.summary().mean + 0.5);
  return out;
}

inline RunOutcome run_algorithm(const graph::EdgeList& el, Algorithm alg,
                                std::uint64_t base_seed = 1, int reps = 3,
                                const Options& base = {}) {
  return run_algorithm(graph::ArcsInput::from_edges(el), alg, base_seed, reps,
                       base);
}

inline void header(const char* id, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", id, claim);
}

}  // namespace logcc::bench
