// Shared helpers for the experiment binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace logcc::bench {

/// "Progress rounds" — the quantity each theorem bounds: EXPAND-MAXLINK
/// rounds for Theorem 3, phases for the phase-structured algorithms, rounds
/// for the classical baselines.
inline std::uint64_t progress_rounds(const ComponentsResult& r) {
  return r.stats.rounds + r.stats.phases + r.stats.prepare_phases;
}

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t rounds = 0;
  bool correct = false;
  core::RunStats stats;
};

/// Runs an algorithm, checks against the oracle, and averages over `reps`
/// seeds (rounds are averaged, seconds take the median-of-reps minimum).
/// `base` carries algorithm-specific overrides (seed is replaced per rep).
inline RunOutcome run_algorithm(const graph::EdgeList& el, Algorithm alg,
                                std::uint64_t base_seed = 1, int reps = 3,
                                const Options& base = {}) {
  RunOutcome out;
  auto oracle = graph::bfs_components(graph::Graph::from_edges(el));
  util::Accumulator secs, rounds;
  out.correct = true;
  for (int rep = 0; rep < reps; ++rep) {
    Options opt = base;
    opt.seed = base_seed + 7919ULL * static_cast<std::uint64_t>(rep);
    auto r = connected_components(el, alg, opt);
    secs.add(r.seconds);
    rounds.add(static_cast<double>(progress_rounds(r)));
    out.correct = out.correct && graph::same_partition(oracle, r.labels);
    out.stats = r.stats;
  }
  out.seconds = util::percentile(secs.values(), 50.0);
  out.rounds = static_cast<std::uint64_t>(rounds.summary().mean + 0.5);
  return out;
}

inline void header(const char* id, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", id, claim);
}

}  // namespace logcc::bench
