// bench_serving — the serving-layer benchmark: batch-apply throughput and
// query latency under concurrent readers, reported into the canonical
// logcc-bench-v1 bench.json.
//
//   $ ./bench_serving --generate=gnm2:200000 --batch-edges=2000 \
//                     --query-threads=4 [--verify-every=0] [--reps=3] \
//                     [--json=bench_serving.json]
//
// The writer replays the generator edge stream batch by batch while
// `query-threads` reader threads hammer connected(u, v) on random vertex
// pairs against whatever snapshot epoch is current, timing every query.
// Per rep the engine is rebuilt from scratch (same stream), so min-of-reps
// stays meaningful for the regression gate.
//
// bench.json cells (all under the one "runs" array the gate reads):
//   serve-batch-apply : seconds = total apply_batch time for the stream
//   serve-query-p50   : seconds = median single-query latency
//   serve-query-p99   : seconds = 99th-percentile single-query latency
// The latency cells sit far below the default 5 ms noise floor;
// scripts/bench_compare.py applies --latency-min-seconds to them instead
// (cells matching p50/p99/latency in the algorithm name).
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "bench_support.hpp"
#include "graph/binary_io.hpp"
#include "serve/connectivity_engine.hpp"
#include "util/cli.hpp"
#include "util/hashing.hpp"
#include "util/parallel.hpp"

namespace {

using namespace logcc;

struct RepOutcome {
  double apply_seconds = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t components = 0;
  std::uint64_t epochs = 0;
  bool verified = true;
};

RepOutcome replay(const graph::EdgeList& el, std::uint64_t batch_edges,
                  int query_threads, std::uint64_t verify_every,
                  std::uint64_t seed, const std::string& durable_dir,
                  serve::WalOptions wal) {
  serve::EngineOptions opts;
  opts.verify_every = verify_every;
  opts.seed = seed;
  std::unique_ptr<serve::ConnectivityEngine> owned;
  if (!durable_dir.empty()) {
    // Fresh durable state per rep: each rep measures the same stream with
    // WAL appends on the apply path, not the recovery of the previous rep.
    std::remove((durable_dir + "/edges.wal").c_str());
    std::remove((durable_dir + "/index.ckpt").c_str());
    opts.durability.dir = durable_dir;
    opts.durability.wal = wal;
    const util::Status rs =
        serve::ConnectivityEngine::recover(durable_dir, el.n, opts, &owned);
    if (!rs.is_ok()) {
      std::fprintf(stderr, "bench_serving: cannot open durable dir: %s\n",
                   rs.to_string().c_str());
      std::exit(2);
    }
  } else {
    owned = std::make_unique<serve::ConnectivityEngine>(el.n, opts);
  }
  serve::ConnectivityEngine& engine = *owned;

  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(query_threads));
  std::vector<std::thread> readers;
  for (int t = 0; t < query_threads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<double>& lat = latencies[static_cast<std::size_t>(t)];
      std::uint64_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto u = static_cast<graph::VertexId>(
            util::mix64(seed + 1 + static_cast<std::uint64_t>(t), i, 0) %
            el.n);
        const auto v = static_cast<graph::VertexId>(
            util::mix64(seed + 1 + static_cast<std::uint64_t>(t), i, 1) %
            el.n);
        util::Timer q;
        const bool conn = engine.connected(u, v);
        lat.push_back(q.seconds());
        // Keep the answer observable so the query is never optimized out.
        i += 1 + static_cast<std::uint64_t>(conn);
      }
    });
  }

  RepOutcome out;
  std::span<const graph::Edge> all(el.edges);
  for (std::size_t off = 0; off < all.size(); off += batch_edges) {
    const auto batch = all.subspan(
        off, std::min<std::size_t>(batch_edges, all.size() - off));
    const auto res = engine.apply_batch(batch);
    out.apply_seconds += res.seconds;
    out.verified = out.verified && res.verified;
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  std::vector<double> lat;
  for (auto& per_thread : latencies)
    lat.insert(lat.end(), per_thread.begin(), per_thread.end());
  out.queries = lat.size();
  out.p50 = util::percentile(lat, 50.0);
  out.p99 = util::percentile(lat, 99.0);
  out.components = engine.component_count();
  out.epochs = engine.epoch();
  out.verified = out.verified && engine.verify_and_rebuild();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const std::string generate = cli.get_string(
      "generate", "gnm2:200000", "family:n[:seed] edge stream to replay");
  const std::uint64_t batch_edges = static_cast<std::uint64_t>(
      cli.get_int("batch-edges", 2000, "edges per batch"));
  const int query_threads = static_cast<int>(
      cli.get_int("query-threads", 4, "concurrent reader threads"));
  const std::uint64_t verify_every = static_cast<std::uint64_t>(cli.get_int(
      "verify-every", 0, "rebuild/verify cadence in batches (0 = end only)"));
  const int reps =
      static_cast<int>(cli.get_int("reps", 3, "stream replays (fresh engine)"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "random seed"));
  const std::string json_path = cli.get_string(
      "json", "", "write the logcc-bench-v1 document here ('-' = stdout)");
  const std::string durable_dir = cli.get_string(
      "durable-dir", "",
      "measure with a write-ahead log in this directory (cells gain a "
      "'-wal' suffix; empty = no durability)");
  const std::string fsync_name = cli.get_string(
      "fsync", "none", "WAL fsync policy when durable: none | batch | every-n");
  cli.finish();

  if (batch_edges == 0 || query_threads < 0 || reps < 1) {
    std::fprintf(stderr, "bench_serving: bad sweep parameters\n");
    return 2;
  }
  serve::WalOptions wal;
  if (!serve::wal_fsync_from_string(fsync_name, &wal.fsync)) {
    std::fprintf(stderr, "bench_serving: bad --fsync policy '%s'\n",
                 fsync_name.c_str());
    return 2;
  }
  std::string family;
  std::uint64_t n = 0;
  std::uint64_t gseed = 1;
  if (!graph::parse_generator_spec(generate, family, n, gseed)) {
    std::fprintf(stderr, "bench_serving: bad --generate spec '%s'\n",
                 generate.c_str());
    return 2;
  }
  const graph::EdgeList el = graph::make_family(family, n, gseed);
  const std::uint64_t batches =
      (el.edges.size() + batch_edges - 1) / batch_edges;

  header("serving: batch-apply throughput + query latency under readers",
         "one writer replays the stream in batches; reader threads time "
         "connected(u,v) against the epoch-swapped snapshot");

  std::printf("stream %s: n=%" PRIu64 " edges=%zu, %" PRIu64
              " batches of %" PRIu64 ", %d query threads, %d reps "
              "(backend=%s%s%s)\n\n",
              generate.c_str(), el.n, el.edges.size(), batches, batch_edges,
              query_threads, reps, util::parallel_backend_name(),
              durable_dir.empty() ? "" : ", wal fsync=",
              durable_dir.empty() ? "" : fsync_name.c_str());

  std::vector<RepOutcome> outcomes;
  bool all_verified = true;
  for (int rep = 0; rep < reps; ++rep) {
    auto out = replay(el, batch_edges, query_threads, verify_every,
                      seed + 7919ULL * static_cast<std::uint64_t>(rep),
                      durable_dir, wal);
    all_verified = all_verified && out.verified;
    std::printf("  rep %d: apply %.3fs (%.0f edges/s)  queries %" PRIu64
                " (p50 %.1fus p99 %.1fus)  components %" PRIu64
                "  epochs %" PRIu64 "%s\n",
                rep, out.apply_seconds,
                out.apply_seconds > 0
                    ? static_cast<double>(el.edges.size()) / out.apply_seconds
                    : 0.0,
                out.queries, out.p50 * 1e6, out.p99 * 1e6, out.components,
                out.epochs, out.verified ? "" : "  VERIFY-FAIL");
    outcomes.push_back(out);
  }

  std::printf("\nincremental-vs-recompute certificates: %s\n",
              all_verified ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* out =
        json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "bench_serving: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"logcc-bench-v1\",\n"
                 "  \"driver\": \"bench_serving\",\n"
                 "  \"runtime\": {\"backend\": \"%s\", \"grain\": %zu},\n"
                 "  \"dataset\": {\"name\": \"%s\", \"source\": \"generator\", "
                 "\"n\": %" PRIu64 ", \"edges\": %zu},\n"
                 "  \"serving\": {\"batch_edges\": %" PRIu64
                 ", \"batches\": %" PRIu64 ", \"query_threads\": %d"
                 ", \"verify_every\": %" PRIu64 ", \"reps\": %d"
                 ", \"seed\": %" PRIu64 ", \"durable\": %s"
                 ", \"wal_fsync\": \"%s\"},\n"
                 "  \"verified\": %s,\n"
                 "  \"runs\": [\n",
                 util::parallel_backend_name(), util::parallel_grain(),
                 json_escape(generate).c_str(), el.n, el.edges.size(),
                 batch_edges, batches, query_threads, verify_every, reps, seed,
                 durable_dir.empty() ? "false" : "true",
                 durable_dir.empty() ? "" : fsync_name.c_str(),
                 all_verified ? "true" : "false");
    const int hw = util::hardware_parallelism();
    // Durable runs report under distinct cell names: the gate then compares
    // wal-on against wal-on (and the plain cells stay comparable across
    // commits that add durability).
    const char* cell_suffix = durable_dir.empty() ? "" : "-wal";
    for (std::size_t rep = 0; rep < outcomes.size(); ++rep) {
      const RepOutcome& o = outcomes[rep];
      const char* sep = rep + 1 < outcomes.size() ? "," : "";
      std::fprintf(out,
                   "    {\"algorithm\": \"serve-batch-apply%s\", \"threads\": "
                   "%d, \"rep\": %zu, \"seconds\": %.6f, \"components\": "
                   "%" PRIu64 ", \"epochs\": %" PRIu64 ", \"verified\": %s},\n"
                   "    {\"algorithm\": \"serve-query-p50%s\", \"threads\": %d"
                   ", \"rep\": %zu, \"seconds\": %.9f, \"queries\": %" PRIu64
                   "},\n"
                   "    {\"algorithm\": \"serve-query-p99%s\", \"threads\": %d"
                   ", \"rep\": %zu, \"seconds\": %.9f, \"queries\": %" PRIu64
                   "}%s\n",
                   cell_suffix, hw, rep, o.apply_seconds, o.components,
                   o.epochs, o.verified ? "true" : "false", cell_suffix,
                   query_threads, rep, o.p50, o.queries, cell_suffix,
                   query_threads, rep, o.p99, o.queries, sep);
    }
    std::fprintf(out, "  ]\n}\n");
    if (out != stdout) std::fclose(out);
    if (json_path != "-")
      std::printf("wrote %s (logcc-bench-v1, %zu reps)\n", json_path.c_str(),
                  outcomes.size());
  }

  return all_verified ? 0 : 1;
}
