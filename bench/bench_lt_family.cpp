// B1 — the Liu–Tarjan simple-algorithm family (§2.2's framework source):
// round counts of all 12 connect/shortcut/alter combinations across graph
// families. Expected shape (LT'19): extended-connect ≤ parent-connect ≤
// direct-connect rounds; full shortcutting never hurts; ALTER helps the
// sparse high-diameter families.
#include "bench_support.hpp"
#include "baselines/lt_family.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;
  using namespace logcc::baselines;

  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 4096, "vertex count"));
  const std::vector<Workload> workloads = resolve_workloads(
      cli, n, {"path", "grid", "tree", "gnm2", "rmat", "caterpillar"},
      /*seed=*/13);
  cli.finish();

  header("B1: Liu–Tarjan family round counts",
         "claim (LT'19): E <= P <= D rounds; F-shortcut never hurts; the "
         "paper's framework baselines");

  std::vector<std::string> cols{"variant"};
  for (const auto& w : workloads) cols.push_back(w.name);
  util::TextTable table(cols);

  bool all_correct = true;
  for (const LtVariant& v : lt_all_variants()) {
    table.row().add(v.name());
    for (const Workload& w : workloads) {
      // The LT-variant lab (baselines/lt_family) still takes an EdgeList;
      // the oracle runs zero-copy off the input.
      auto r = liu_tarjan_variant(w.el(), v);
      auto oracle = baselines::bfs_cc(w.input).labels;
      all_correct = all_correct && graph::same_partition(oracle, r.labels);
      table.add_int(static_cast<long long>(r.rounds));
    }
  }
  table.print();
  std::printf("\nall answers matched the BFS oracle: %s\n",
              all_correct ? "PASS" : "FAIL");
  return 0;
}
