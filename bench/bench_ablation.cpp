// A1 — ablations of the Theorem-3 design choices (DESIGN.md §3, §1.2.2 of
// the paper):
//   * MAXLINK iterations: the paper uses exactly 2 (Lemma 3.21's two-hop
//     argument); 1 should degrade round counts, 3 should buy ~nothing;
//   * budget growth exponent: 1.01 (paper) vs 1.5 (practical) vs 2.0 —
//     slower growth means more levels before saturation;
//   * level-raise exponent: larger exponents raise less often, slowing the
//     desynchronisation of dense clusters;
//   * table shape: |H(v)| = sqrt(b) (paper) vs b (practical) — smaller
//     tables collide more, forcing more levels.
#include "bench_support.hpp"
#include "core/budget.hpp"
#include "core/faster_cc.hpp"
#include "util/cli.hpp"

namespace {

using namespace logcc;
using namespace logcc::bench;

struct Variant {
  std::string name;
  core::ParamPolicy policy;
};

struct Row {
  std::string name;
  double rounds = 0;
  double max_level = 0;
  int finishers = 0;
  bool correct = true;
};

Row run_variant(const graph::EdgeList& el, const Variant& v, int reps) {
  Row row;
  row.name = v.name;
  auto oracle = graph::bfs_components(graph::Graph::from_edges(el));
  for (int rep = 0; rep < reps; ++rep) {
    core::FasterCcParams p;
    p.seed = 31 + rep * 1009;
    p.policy_override = v.policy;
    auto r = core::faster_cc(el, p);
    row.rounds += static_cast<double>(r.stats.rounds) / reps;
    row.max_level =
        std::max(row.max_level, static_cast<double>(r.stats.max_level));
    row.finishers += r.stats.finisher_used;
    row.correct =
        row.correct && graph::same_partition(oracle, graph::canonical_labels(r.labels));
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 4096, "vertex count"));
  const int reps = static_cast<int>(cli.get_int("reps", 3, "seeds per cell"));
  cli.finish();

  header("A1: ablations of Theorem-3 design choices",
         "claim: 2 MAXLINK iterations are load-bearing; budget growth / "
         "raise exponent / table shape trade rounds vs levels exactly as "
         "the analysis predicts");

  struct Workload {
    const char* name;
    graph::EdgeList el;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"path4096", graph::make_path(n)});
  workloads.push_back({"gnm m=4n", graph::make_gnm(n, 4 * n, 77)});

  for (const Workload& w : workloads) {
    const std::uint64_t m = std::max<std::uint64_t>(w.el.edges.size(), 1);
    core::ParamPolicy base = core::ParamPolicy::practical(2 * w.el.n, m);

    std::vector<Variant> variants;
    {
      char label[128];
      std::snprintf(label, sizeof label,
                    "baseline (maxlink x2, growth %.2f, raise %.2f/b^%.2f, "
                    "full table)",
                    base.growth, base.raise_coeff, base.raise_exponent);
      variants.push_back({label, base});
    }
    {
      core::ParamPolicy p = base;
      p.maxlink_iterations = 1;
      variants.push_back({"maxlink x1", p});
    }
    {
      core::ParamPolicy p = base;
      p.maxlink_iterations = 3;
      variants.push_back({"maxlink x3", p});
    }
    {
      core::ParamPolicy p = base;
      p.growth = 1.1;
      variants.push_back({"budget growth 1.1", p});
    }
    {
      core::ParamPolicy p = base;
      p.growth = 2.0;
      variants.push_back({"budget growth 2.0", p});
    }
    {
      core::ParamPolicy p = base;
      p.raise_exponent = 0.6;
      variants.push_back({"raise exponent 0.6", p});
    }
    {
      core::ParamPolicy p = base;
      p.raise_exponent = 0.1;
      variants.push_back({"raise exponent 0.1", p});
    }
    {
      core::ParamPolicy p = base;
      p.table_is_sqrt = true;
      variants.push_back({"sqrt tables (paper shape)", p});
    }

    std::printf("\nworkload: %s (n=%llu, m=%llu)\n", w.name,
                static_cast<unsigned long long>(w.el.n),
                static_cast<unsigned long long>(m));
    util::TextTable table(
        {"variant", "mean rounds", "max level", "finisher", "correct"});
    for (const Variant& v : variants) {
      Row row = run_variant(w.el, v, reps);
      table.row()
          .add(row.name)
          .add_double(row.rounds, 1)
          .add_double(row.max_level, 0)
          .add_int(row.finishers)
          .add(row.correct ? "yes" : "NO");
    }
    table.print();
  }
  return 0;
}
