// F1 — rounds vs. component diameter at (approximately) fixed n and m.
//
// Paper claims reproduced (shape, not constants):
//   * Theorem 3 (faster-cc): rounds ~ O(log d + log log n) — logarithmic in
//     d, nearly flat otherwise;
//   * Theorem 1: phases ~ O(log log n), but each phase pays O(log d) inner
//     expand rounds, so total PRAM steps ~ log d · log log n;
//   * Vanilla / Shiloach–Vishkin: Θ(log n) independent of d — flat lines
//     above the Thm-3 curve for small d, crossing under it nowhere.
//
// Workload: rows × cols grids with n = rows·cols fixed and aspect ratio
// swept (d = rows + cols − 2 varies over two orders of magnitude), plus a
// star (d = 2) and a path (d = n − 1) as the extremes.
#include <cinttypes>

#include "bench_support.hpp"
#include "util/cli.hpp"

namespace {

using namespace logcc;
using namespace logcc::bench;

struct DiamWorkload {
  std::string name;
  graph::EdgeList el;
  std::uint64_t diameter;
};

std::vector<DiamWorkload> workloads(std::uint64_t n) {
  std::vector<DiamWorkload> out;
  out.push_back({"star", graph::make_star(n), 2});
  for (std::uint64_t rows : {256ULL, 64ULL, 16ULL, 4ULL}) {
    std::uint64_t cols = n / rows;
    out.push_back({"grid" + std::to_string(rows) + "x" + std::to_string(cols),
                   graph::make_grid(rows, cols), rows + cols - 2});
  }
  out.push_back({"path", graph::make_path(n), n - 1});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::uint64_t n = static_cast<std::uint64_t>(
      cli.get_int("n", 65536, "vertices per workload"));
  const int reps = static_cast<int>(cli.get_int("reps", 3, "seeds per cell"));
  cli.finish();

  // For faster-cc, expose the EXPAND-MAXLINK loop to the full input
  // diameter: a PREPARE contraction would divide every d by the same factor
  // and compress the x-axis.
  Options no_prepare;
  no_prepare.faster.prepare_max_phases = 0;

  header("F1: rounds vs diameter",
         "claim: Thm-3 rounds ~ log d (+ log log n); Thm-1 total steps ~ "
         "log d * log log n; Vanilla/SV ~ log n independent of d");

  const std::vector<Algorithm> algs = {
      Algorithm::kFasterCC, Algorithm::kTheorem1, Algorithm::kVanilla,
      Algorithm::kShiloachVishkin};

  util::TextTable table({"workload", "diameter", "log2(d)", "thm3-ml-rounds",
                         "thm3-prep", "thm1-phases", "thm1-expand-rounds",
                         "vanilla", "sv"});
  std::vector<double> log_d, thm3_rounds;
  for (const DiamWorkload& w : workloads(n)) {
    table.row().add(w.name).add_int(static_cast<long long>(w.diameter));
    table.add_double(std::log2(static_cast<double>(w.diameter)), 2);
    for (Algorithm alg : algs) {
      RunOutcome r = run_algorithm(
          w.el, alg, 17, reps,
          alg == Algorithm::kFasterCC ? no_prepare : Options{});
      if (!r.correct) std::printf("!! WRONG ANSWER: %s\n", to_string(alg));
      if (alg == Algorithm::kFasterCC) {
        // The log-d-sensitive term is the EXPAND-MAXLINK loop; COMPACT's
        // densification (prepare) is the additive log log term.
        log_d.push_back(std::log2(static_cast<double>(w.diameter)));
        thm3_rounds.push_back(static_cast<double>(r.stats.rounds));
        table.add_int(static_cast<long long>(r.stats.rounds));
        table.add_int(static_cast<long long>(r.stats.prepare_phases));
      } else if (alg == Algorithm::kTheorem1) {
        table.add_int(static_cast<long long>(r.stats.phases));
        table.add_int(static_cast<long long>(r.stats.expand_rounds));
      } else {
        table.add_int(static_cast<long long>(r.rounds));
      }
    }
  }
  table.print();

  // The bound is O(log d + log log n): an additive floor (break-detection
  // tail + the log log term) dominates small d, so fit the slope on the
  // large-d points and check the floor separately.
  std::vector<double> hi_x, hi_y;
  for (std::size_t i = 0; i < log_d.size(); ++i) {
    if (log_d[i] >= 8.0) {
      hi_x.push_back(log_d[i]);
      hi_y.push_back(thm3_rounds[i]);
    }
  }
  auto fit = util::linear_fit(hi_x, hi_y);
  std::printf(
      "\nfit (log2 d >= 8): faster-cc rounds ~ %.2f * log2(d) + %.2f  "
      "(r^2 = %.3f)\n",
      fit.slope, fit.intercept, fit.r2);
  bool monotone = true;
  for (std::size_t i = 1; i < thm3_rounds.size(); ++i)
    if (thm3_rounds[i] + 1.0 < thm3_rounds[i - 1]) monotone = false;
  bool spread = thm3_rounds.back() >= thm3_rounds.front() + 3.0;
  std::printf("shape check: positive slope (%.2f), monotone rounds (%s), "
              "path >= star + 3 (%s): %s\n",
              fit.slope, monotone ? "yes" : "no", spread ? "yes" : "no",
              fit.slope > 0.2 && monotone && spread ? "PASS"
                                                    : "INCONCLUSIVE");
  util::print_series("faster-cc rounds vs log2(d)", log_d, thm3_rounds,
                     "log2(d)", "rounds");
  return 0;
}
