// T4 — success probability ("with good probability").
//
// Paper claim reproduced: the randomized drivers meet their round budgets
// with probability 1 − 1/poly(·). Operationally: across many seeds, the
// guaranteed-convergent finisher should essentially never fire and the
// answer is always correct (correctness is unconditional by construction;
// the finisher rate is the measured failure probability of the randomized
// part).
#include "bench_support.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const int seeds = static_cast<int>(cli.get_int("seeds", 60, "seed count"));
  cli.finish();

  header("T4: success probability across seeds",
         "claim: round budgets met w.g.p. — finisher-rate ~ 0, correctness "
         "always (finisher firing is the observable 'bad event')");

  util::TextTable table({"workload", "algorithm", "seeds", "wrong answers",
                         "finisher fired", "mean rounds", "max rounds"});
  struct Cell {
    const char* name;
    graph::EdgeList el;
  };
  std::vector<Cell> cells;
  cells.push_back({"gnm n=2048 m=6144", graph::make_gnm(2048, 6144, 1)});
  cells.push_back({"path n=2048", graph::make_path(2048)});
  cells.push_back({"rmat 2^11", graph::make_rmat(11, 16384, 2)});

  bool any_wrong = false;
  for (const Cell& cell : cells) {
    auto oracle =
        graph::bfs_components(graph::Graph::from_edges(cell.el));
    const auto in = graph::ArcsInput::from_edges(cell.el);
    for (Algorithm alg : {Algorithm::kFasterCC, Algorithm::kTheorem1,
                          Algorithm::kVanilla}) {
      int wrong = 0, finisher = 0;
      util::Accumulator rounds;
      for (int s = 1; s <= seeds; ++s) {
        Options opt;
        opt.seed = static_cast<std::uint64_t>(s) * 2654435761ULL + 17;
        auto r = connected_components(in, alg, opt);
        wrong += !graph::same_partition(oracle, r.labels());
        finisher += r.stats.finisher_used;
        rounds.add(static_cast<double>(progress_rounds(r)));
      }
      any_wrong = any_wrong || wrong > 0;
      auto s = rounds.summary();
      table.row()
          .add(cell.name)
          .add(to_string(alg))
          .add_int(seeds)
          .add_int(wrong)
          .add_int(finisher)
          .add_double(s.mean, 1)
          .add_double(s.max, 0);
    }
  }
  table.print();
  std::printf("\nshape check: zero wrong answers: %s\n",
              any_wrong ? "FAIL" : "PASS");
  return 0;
}
