// T3 — spanning forest (Theorem 2) vs connected components (Theorem 1) and
// the Vanilla-SF baseline.
//
// Paper claim reproduced: Theorem 2 has the same asymptotic cost as
// Theorem 1 — phase counts track each other across families — and always
// emits a valid spanning forest of input edges.
#include "bench_support.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 4096, "vertex count"));
  const std::vector<Workload> workloads = resolve_workloads(
      cli, n,
      {"star", "grid", "tree", "gnm2", "gnm8", "rmat", "caterpillar",
       "lollipop"},
      /*seed=*/55);
  cli.finish();

  header("T3: spanning forest vs connected components",
         "claim (Thm 2): SF costs track CC costs (same asymptotics); every "
         "output is a valid spanning forest");

  util::TextTable table({"family", "thm2-phases", "thm1-phases", "thm2-ms",
                         "vanilla-sf-ms", "forest-valid"});
  bool all_valid = true;
  for (const Workload& w : workloads) {
    Options opt;
    opt.seed = 5;
    // The runs are zero-copy; forest validation needs indexed edges, so the
    // canonical list is materialized once afterwards (never on the timed
    // path).
    auto sf = spanning_forest(w.input, SfAlgorithm::kTheorem2, opt);
    auto vsf = spanning_forest(w.input, SfAlgorithm::kVanillaSF, opt);
    auto cc = connected_components(w.input, Algorithm::kTheorem1, opt);

    const graph::EdgeList& el = w.el();
    auto check = graph::validate_spanning_forest(el, sf.forest_edges);
    auto vcheck = graph::validate_spanning_forest(el, vsf.forest_edges);
    bool valid = check.ok && vcheck.ok;
    all_valid = all_valid && valid;

    table.row()
        .add(w.name)
        .add_int(static_cast<long long>(sf.stats.phases))
        .add_int(static_cast<long long>(cc.stats.phases))
        .add_double(sf.seconds * 1e3, 1)
        .add_double(vsf.seconds * 1e3, 1)
        .add(valid ? "yes" : "NO");
  }
  table.print();
  std::printf("\nshape check: all forests valid: %s\n",
              all_valid ? "PASS" : "FAIL");
  return 0;
}
