// bench_mpc — sharded MPC executor: shard-count sweep.
//
//   $ ./bench/bench_mpc [--n=16384] [--shards=1,2,4,8] [--json=bench_mpc.json]
//
// The claim under test: the sharded executor's semantics are a property of
// the graph, not the partitioning. For every workload the sweep checks that
// labels are identical across shard counts (and match the union-find
// canonical min-id labels), and that the charged round count — supersteps
// and the engine ledger — is invariant too. What DOES scale with shards is
// the cross-shard message volume, which the table and JSON report.
//
// Exit status is nonzero on any label or round-count mismatch, so CI can
// run this as a smoke gate and archive the JSON artifact.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/wide_cc.hpp"
#include "mpc/sharded.hpp"
#include "util/cli.hpp"

namespace {

std::vector<std::uint32_t> parse_shards(const std::string& spec) {
  std::vector<std::uint32_t> out;
  std::uint32_t cur = 0;
  bool have = false;
  for (char c : spec) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint32_t>(c - '0');
      have = true;
    } else if (have) {
      out.push_back(cur);
      cur = 0;
      have = false;
    }
  }
  if (have) out.push_back(cur);
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logcc;
  using namespace logcc::bench;

  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 16384, "vertex count"));
  const std::string shard_spec = cli.get_string(
      "shards", "1,2,4,8", "comma-separated shard counts to sweep");
  const std::string json_path = cli.get_string(
      "json", "", "write the sweep document here ('-' = stdout)");
  cli.finish();
  const std::vector<std::uint32_t> shard_counts = parse_shards(shard_spec);

  header("MPC sharded executor: shard-count sweep",
         "claim: labels and charged rounds are shard-count invariant; only "
         "cross-shard message volume scales");

  struct W {
    std::string name;
    graph::EdgeList el;
  };
  std::vector<W> ws;
  ws.push_back({"path", graph::make_path(n)});
  ws.push_back({"gnm m=4n", graph::make_gnm(n, 4 * n, 5)});
  ws.push_back({"rmat", graph::make_rmat(13, 8 * n, 6)});
  ws.push_back({"grid", graph::make_grid(64, n / 64)});
  ws.push_back({"star", graph::make_star(n)});

  struct Row {
    std::string workload;
    std::uint32_t shards;
    std::uint64_t rounds;
    std::uint64_t ledger_rounds;
    std::uint64_t messages;
    double seconds;
    bool ok;
  };
  std::vector<Row> rows;
  bool all_ok = true;

  util::TextTable table({"workload", "shards", "supersteps", "ledger rounds",
                         "cross-shard msgs", "time ms", "labels"});
  for (const W& w : ws) {
    // Canonical min-id oracle via the wide union-find.
    std::vector<graph::Edge64> wide(w.el.edges.size());
    for (std::size_t i = 0; i < wide.size(); ++i)
      wide[i] = {w.el.edges[i].u, w.el.edges[i].v};
    const auto oracle = core::wide_union_find_cc(
        graph::ArcsInput64::from_edges(w.el.n, wide));

    std::uint64_t base_rounds = 0, base_ledger = 0;
    for (std::size_t si = 0; si < shard_counts.size(); ++si) {
      mpc::ShardedMpcOptions opt;
      opt.shards = shard_counts[si];
      util::Timer timer;
      const auto r = mpc::sharded_mpc_cc(w.el, opt);
      const double seconds = timer.seconds();

      if (si == 0) {
        base_rounds = r.rounds;
        base_ledger = r.ledger.rounds;
      }
      const bool ok = r.labels == oracle.labels && r.rounds == base_rounds &&
                      r.ledger.rounds == base_ledger;
      all_ok = all_ok && ok;
      rows.push_back({w.name, r.shards_used, r.rounds, r.ledger.rounds,
                      r.cross_shard_messages, seconds, ok});
      table.row()
          .add(w.name)
          .add_int(static_cast<long long>(r.shards_used))
          .add_int(static_cast<long long>(r.rounds))
          .add_int(static_cast<long long>(r.ledger.rounds))
          .add_int(static_cast<long long>(r.cross_shard_messages))
          .add_double(seconds * 1e3, 1)
          .add(ok ? "match" : "MISMATCH");
    }
  }
  table.print();
  std::printf("\nlabels + charged rounds invariant across shard counts: %s\n",
              all_ok ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f =
        json_path == "-" ? stdout : std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_mpc: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n  \"schema\": \"logcc-bench-mpc-v1\",\n");
    std::fprintf(f, "  \"n\": %llu,\n  \"pass\": %s,\n  \"sweep\": [\n",
                 static_cast<unsigned long long>(n), all_ok ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"workload\": \"%s\", \"shards\": %u, "
                   "\"supersteps\": %llu, \"ledger_rounds\": %llu, "
                   "\"cross_shard_messages\": %llu, \"seconds\": %.6f, "
                   "\"labels_match\": %s}%s\n",
                   json_escape(r.workload).c_str(), r.shards,
                   static_cast<unsigned long long>(r.rounds),
                   static_cast<unsigned long long>(r.ledger_rounds),
                   static_cast<unsigned long long>(r.messages), r.seconds,
                   r.ok ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (f != stdout) std::fclose(f);
  }
  return all_ok ? 0 : 1;
}
