// Statistical verification of the approximate tier's error guarantees.
// Everything here is a seed sweep: >= 50 deterministic sketch seeds per
// (family, size) configuration, and the claimed bound is checked both
// per seed (with generous sigma slack, printing the seed on failure so a
// bad constant is immediately reproducible) and in aggregate (mean /
// RMS / fraction-within, where the slack can be tight). The sweeps are
// counter-based mix64 all the way down, so the suite is bit-deterministic:
// it can never flake, only genuinely break when the estimators change.
//
//   HyperLogLog  relative error vs the 1.04/sqrt(m) standard error, across
//                precisions and true cardinalities (both the bias-corrected
//                and the linear-counting regime).
//   CountMin     estimate >= truth ALWAYS (hard invariant, both update
//                modes), and the (epsilon, delta) overestimate bound:
//                excess > epsilon * N for at most ~delta of the keys.
//   Components   the HLL-over-labels component-count estimate that
//                cc_tool --sketch and SketchedView report, on real label
//                arrays from multi-component graph families.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "sketch/count_min.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/stream_stats.hpp"
#include "test_support.hpp"
#include "util/random.hpp"

namespace {

using namespace logcc;
using sketch::CmsUpdate;
using sketch::CountMinSketch;
using sketch::HyperLogLog;

constexpr int kSeeds = 50;

struct ErrorStats {
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  int within_2sigma = 0;
  int count = 0;

  void record(double rel_error, double sigma) {
    sum_abs += std::abs(rel_error);
    sum_sq += rel_error * rel_error;
    if (std::abs(rel_error) <= 2.0 * sigma) ++within_2sigma;
    ++count;
  }
  double mean_abs() const { return sum_abs / count; }
  double rms() const { return std::sqrt(sum_sq / count); }
  double frac_within_2sigma() const {
    return static_cast<double>(within_2sigma) / count;
  }
};

// ------------------------------------------------- HLL cardinality error ---

TEST(SketchAccuracy, HllRelativeErrorWithinStandardErrorBound) {
  // 50 sketch seeds per (precision, cardinality) cell. Per-seed bound: 5
  // sigma (a normal tail beyond 5 sigma over 450 draws is ~1e-4 expected
  // events; with fixed seeds the check is deterministic anyway — the slack
  // is against estimator bias, not luck). Aggregate bounds are tight: for
  // |N(0, sigma)| the mean is ~0.8 sigma and the RMS is sigma; 1.2 / 1.4
  // catch a mis-sized constant while tolerating small-sample wobble.
  for (int precision : {8, 10, 12}) {
    for (std::uint64_t cardinality : {500u, 5000u, 50000u}) {
      const double sigma = 1.04 / std::sqrt(std::ldexp(1.0, precision));
      ErrorStats agg;
      for (int s = 1; s <= kSeeds; ++s) {
        HyperLogLog hll(precision, static_cast<std::uint64_t>(s));
        // Distinct items: (seed << 20) + i stays injective for N < 2^20
        // and i < 2^20; the sketch's own mix64 provides the distribution.
        for (std::uint64_t i = 0; i < cardinality; ++i)
          hll.add((static_cast<std::uint64_t>(s) << 20) + i);
        const double rel =
            (hll.estimate() - static_cast<double>(cardinality)) /
            static_cast<double>(cardinality);
        EXPECT_LE(std::abs(rel), 5.0 * sigma)
            << "seed=" << s << " precision=" << precision
            << " cardinality=" << cardinality
            << " estimate=" << hll.estimate();
        agg.record(rel, sigma);
      }
      EXPECT_LE(agg.mean_abs(), 1.2 * sigma)
          << "precision=" << precision << " cardinality=" << cardinality;
      EXPECT_LE(agg.rms(), 1.4 * sigma)
          << "precision=" << precision << " cardinality=" << cardinality;
      EXPECT_GE(agg.frac_within_2sigma(), 0.85)
          << "precision=" << precision << " cardinality=" << cardinality;
    }
  }
}

TEST(SketchAccuracy, HllStandardErrorAccessorMatchesTheory) {
  for (int p : {4, 8, 12, 16}) {
    HyperLogLog hll(p, 1);
    EXPECT_NEAR(hll.standard_error(), 1.04 / std::sqrt(std::ldexp(1.0, p)),
                1e-12);
  }
}

// -------------------------------------------- count-min frequency error ---

/// A deterministic skewed stream: 20k draws over ~1k distinct keys, with
/// key popularity following the mix64 draw squared (a crude zipf stand-in:
/// a few hot keys, a long tail).
std::vector<std::uint64_t> skewed_stream(std::uint64_t seed) {
  std::vector<std::uint64_t> keys;
  keys.reserve(20000);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const double u = static_cast<double>(util::mix64(seed, i) >> 11) *
                     0x1.0p-53;  // uniform in [0, 1)
    keys.push_back(static_cast<std::uint64_t>(u * u * 1000.0));
  }
  return keys;
}

TEST(SketchAccuracy, CountMinOverestimateOnlyAndEpsilonBound) {
  for (CmsUpdate mode : {CmsUpdate::kStandard, CmsUpdate::kConservative}) {
    std::uint64_t violations = 0;
    std::uint64_t checks = 0;
    for (int s = 1; s <= kSeeds; ++s) {
      const auto stream = skewed_stream(static_cast<std::uint64_t>(s) * 977);
      std::map<std::uint64_t, std::uint64_t> truth;
      for (std::uint64_t k : stream) ++truth[k];
      CountMinSketch cms(4, 2048, static_cast<std::uint64_t>(s), mode);
      for (std::uint64_t k : stream) cms.add(k);
      const double bound =
          cms.epsilon() * static_cast<double>(cms.total());
      for (const auto& [k, count] : truth) {
        const std::uint64_t est = cms.estimate(k);
        // The hard invariant: count-min never undershoots, either mode.
        ASSERT_GE(est, count) << "seed=" << s << " key=" << k
                              << " mode=" << static_cast<int>(mode);
        ++checks;
        if (static_cast<double>(est - count) > bound) ++violations;
      }
    }
    // Per key the bound fails with probability <= delta = e^-4 ~ 1.8%; the
    // pairwise row hashes are not fully independent, so allow 2x headroom.
    const double rate =
        static_cast<double>(violations) / static_cast<double>(checks);
    EXPECT_LE(rate, 2.0 * std::exp(-4.0))
        << "mode=" << static_cast<int>(mode) << " violations=" << violations
        << "/" << checks;
  }
}

TEST(SketchAccuracy, CountMinErrorShrinksWithWidth) {
  // Mean overestimate must decrease (weakly) as width doubles — the space
  // axis of bench_sketch's error-vs-space curve, pinned as a monotone law
  // averaged over seeds.
  double last = 1e18;
  for (std::uint32_t width : {256u, 1024u, 4096u}) {
    double total_over = 0.0;
    std::uint64_t keys_seen = 0;
    for (int s = 1; s <= kSeeds; ++s) {
      const auto stream = skewed_stream(static_cast<std::uint64_t>(s) * 131);
      std::map<std::uint64_t, std::uint64_t> truth;
      for (std::uint64_t k : stream) ++truth[k];
      CountMinSketch cms(4, width, static_cast<std::uint64_t>(s));
      for (std::uint64_t k : stream) cms.add(k);
      for (const auto& [k, count] : truth) {
        total_over += static_cast<double>(cms.estimate(k) - count);
        ++keys_seen;
      }
    }
    const double mean_over = total_over / static_cast<double>(keys_seen);
    EXPECT_LT(mean_over, last) << "width=" << width;
    last = mean_over;
  }
}

// ----------------------------------- component-count estimate on graphs ---

TEST(SketchAccuracy, ComponentCountEstimateOnMultiComponentFamilies) {
  // Real label arrays with many components: a path forest (6 * 800 paths)
  // and a sparse gnm (n >> m leaves ~n - m components). The graph is fixed
  // per family; the 50 seeds sweep the sketch, exactly like a SketchedView
  // epoch would under different engine seeds.
  struct Family {
    const char* name;
    graph::EdgeList el;
  };
  const Family families[] = {
      {"path-forest", graph::make_path_forest(800, 6)},
      {"sparse-gnm", graph::make_gnm(20000, 6000, 3)},
  };
  for (const auto& family : families) {
    auto r = connected_components(graph::ArcsInput::from_edges(family.el),
                                  Algorithm::kFasterCC, {});
    const auto exact = static_cast<double>(r.num_components());
    const std::vector<graph::VertexId> labels = r.labels();
    const int precision = 12;
    const double sigma = 1.04 / std::sqrt(std::ldexp(1.0, precision));
    ErrorStats agg;
    for (int s = 1; s <= kSeeds; ++s) {
      HyperLogLog hll(precision, static_cast<std::uint64_t>(s));
      for (graph::VertexId l : labels) hll.add(l);
      const double rel = (hll.estimate() - exact) / exact;
      EXPECT_LE(std::abs(rel), 5.0 * sigma)
          << family.name << " seed=" << s << " exact=" << exact
          << " estimate=" << hll.estimate();
      agg.record(rel, sigma);
    }
    EXPECT_LE(agg.mean_abs(), 1.2 * sigma) << family.name;
    EXPECT_GE(agg.frac_within_2sigma(), 0.85) << family.name;
  }
}

TEST(SketchAccuracy, StreamStatsSummaryBoundsOnZoo) {
  // The error bars StreamSummary reports must be the honest a-priori ones,
  // and its exact fields exact: swept across the zoo with default options.
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    sketch::StreamStats stats(el.n);
    for (const auto& e : el.edges) stats.add_edge(e.u, e.v);
    const auto summary = stats.finish();
    EXPECT_NEAR(summary.hll_standard_error, 1.04 / 64.0, 1e-12) << name;
    // Zoo graphs are tiny relative to m = 2^12: linear counting holds and
    // the estimates land within a few percent even at 5 sigma slack.
    const double slack = 5.0 * summary.hll_standard_error;
    const auto exact = static_cast<double>(summary.exact_components);
    EXPECT_NEAR(summary.approx_components, exact, exact * slack + 1.0)
        << name;
  }
}

}  // namespace
