#include "core/faster_cc.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc::core {
namespace {

using logcc::testing::matches_oracle;

TEST(FasterCc, Zoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = faster_cc(el);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << name;
  }
}

TEST(FasterCc, SeedsAgreeOnPartition) {
  auto el = graph::make_gnm(400, 1200, 19);
  FasterCcParams p;
  p.seed = 1;
  auto a = faster_cc(el, p);
  p.seed = 5555;
  auto b = faster_cc(el, p);
  EXPECT_TRUE(graph::same_partition(a.labels, b.labels));
}

TEST(FasterCc, RoundsGrowWithLogDiameterNotN) {
  // The headline claim, at test scale: doubling n at fixed structure
  // (star: d = 2) keeps rounds flat, while rounds grow ~log d on paths.
  FasterCcParams p;
  p.prepare_target_density = 1.0;  // isolate the Thm-3 loop from PREPARE
  auto star_small = faster_cc(graph::make_star(512), p);
  auto star_big = faster_cc(graph::make_star(8192), p);
  EXPECT_LE(star_big.stats.rounds, star_small.stats.rounds + 6);

  auto path_short = faster_cc(graph::make_path(64), p);
  auto path_long = faster_cc(graph::make_path(4096), p);
  EXPECT_GT(path_long.stats.rounds, path_short.stats.rounds);
  // log2(4096)=12: rounds should stay within a small multiple.
  EXPECT_LE(path_long.stats.rounds, 80u);
}

TEST(FasterCc, PostprocessMergesEqualLevelRoots) {
  // A graph with many same-level roots at break time (complete graph
  // collapses to diameter 1 instantly) must still end with one component.
  auto el = graph::make_complete(32);
  auto r = faster_cc(el);
  EXPECT_EQ(graph::count_components(graph::canonical_labels(r.labels)), 1u);
}

TEST(FasterCc, PaperPolicyCorrect) {
  FasterCcParams p;
  p.policy = ParamPolicy::Kind::kPaper;
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = faster_cc(el, p);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << name;
  }
}

TEST(FasterCc, TinyRoundBudgetFallsBackCorrectly) {
  FasterCcParams p;
  p.max_rounds = 1;
  auto el = graph::make_path(500);
  auto r = faster_cc(el, p);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(FasterCc, MultiComponentMixedDiameters) {
  auto el = graph::disjoint_union(
      {graph::make_path(300), graph::make_complete(24),
       graph::make_gnm(200, 800, 3), graph::make_star(100)});
  auto r = faster_cc(el);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(FasterCc, EdgelessAndTiny) {
  graph::EdgeList empty;
  empty.n = 3;
  auto r = faster_cc(empty);
  EXPECT_EQ(graph::count_components(r.labels), 3u);

  graph::EdgeList one;
  one.n = 1;
  auto r1 = faster_cc(one);
  EXPECT_EQ(r1.labels.size(), 1u);
}

TEST(FasterCc, PreparePhasesReportedSeparately) {
  // A sparse path triggers COMPACT's PREPARE; the densification phases go
  // into prepare_phases, never into the theorem-loop counters.
  auto el = graph::make_path(2000);
  auto r = faster_cc(el);
  EXPECT_TRUE(r.stats.prepare_used);
  EXPECT_GT(r.stats.prepare_phases, 0u);
  EXPECT_GT(r.stats.rounds, 0u);
  // Auto budget is Θ(log log n), not Θ(log n): must stay small.
  EXPECT_LE(r.stats.prepare_phases, 24u);
}

TEST(FasterCc, NoPrepareWhenDisabled) {
  FasterCcParams p;
  p.prepare_max_phases = 0;
  auto el = graph::make_path(500);
  auto r = faster_cc(el, p);
  EXPECT_EQ(r.stats.prepare_phases, 0u);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(FasterCc, PolicyOverrideHonored) {
  auto el = graph::make_gnm(200, 600, 3);
  FasterCcParams p;
  core::ParamPolicy pol = core::ParamPolicy::practical(el.n, el.edges.size());
  pol.maxlink_iterations = 1;
  pol.growth = 2.0;
  p.policy_override = pol;
  auto r = faster_cc(el, p);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(FasterCc, SpaceLedgerLinearInM) {
  for (std::uint64_t n : {1000ULL, 4000ULL}) {
    auto el = graph::make_gnm(n, 4 * n, 7);
    auto r = faster_cc(el);
    EXPECT_LE(r.stats.peak_space_words, 96 * el.edges.size()) << n;
  }
}

TEST(FasterCc, FinisherRareAcrossSeeds) {
  auto el = graph::make_gnm(300, 900, 2);
  int finishers = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    FasterCcParams p;
    p.seed = seed;
    auto r = faster_cc(el, p);
    finishers += r.stats.finisher_used;
    EXPECT_TRUE(matches_oracle(el, r.labels)) << "seed " << seed;
  }
  EXPECT_LE(finishers, 1);
}

}  // namespace
}  // namespace logcc::core
