#include "util/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace logcc::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, IndexSeparatesStreams) {
  EXPECT_NE(mix64(7, 0), mix64(7, 1));
  EXPECT_NE(mix64(7, 0), mix64(8, 0));
  EXPECT_EQ(mix64(7, 3), mix64(7, 3));
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(9), b(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> count(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++count[rng.below(kBuckets)];
  for (int c : count) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 50000.0, 0.25, 0.02);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, NoShortCycle) {
  Xoshiro256 rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace logcc::util
