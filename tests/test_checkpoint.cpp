// serve/checkpoint — the LOGCCKP1 atomic checkpoint (PR 10): round trips,
// checksum/size/canonicity validation, and the tmp+rename atomicity
// contract under injected faults (a crashed writer never damages the
// previous checkpoint).
#include "serve/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/failpoint.hpp"
#include "util/status.hpp"

namespace logcc {
namespace {

using serve::CheckpointState;
using util::Status;
using util::StatusCode;

namespace fp = util::failpoint;

class Checkpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "logcc_ckpt_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ckpt";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    fp::disarm_all();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  /// Canonical min-id labels for {0,1,2} {3,4} {5}: two non-trivial
  /// components plus a singleton.
  static CheckpointState sample_state() {
    CheckpointState s;
    s.n = 6;
    s.epoch = 9;
    s.batches = 4;
    s.wal_offset = 128;
    s.num_components = 3;
    s.labels = {0, 0, 0, 3, 3, 5};
    return s;
  }

  static bool exists(const std::string& p) {
    struct stat st;
    return ::stat(p.c_str(), &st) == 0;
  }

  /// Flips one byte at `offset` in path_.
  void corrupt_byte(long offset) {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }

  std::string path_;
};

TEST_F(Checkpoint, RoundTripsAllFields) {
  const CheckpointState in = sample_state();
  ASSERT_TRUE(serve::write_checkpoint(path_, in).is_ok());
  EXPECT_FALSE(exists(path_ + ".tmp")) << "the tmp file must not survive";
  CheckpointState out;
  ASSERT_TRUE(serve::read_checkpoint(path_, &out).is_ok());
  EXPECT_EQ(out.n, in.n);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.batches, in.batches);
  EXPECT_EQ(out.wal_offset, in.wal_offset);
  EXPECT_EQ(out.num_components, in.num_components);
  EXPECT_EQ(out.labels, in.labels);
}

TEST_F(Checkpoint, EmptyUniverseRoundTrips) {
  CheckpointState in;  // n = 0, no labels — a pre-first-batch checkpoint
  ASSERT_TRUE(serve::write_checkpoint(path_, in).is_ok());
  CheckpointState out;
  ASSERT_TRUE(serve::read_checkpoint(path_, &out).is_ok());
  EXPECT_EQ(out.n, 0u);
  EXPECT_TRUE(out.labels.empty());
}

TEST_F(Checkpoint, MissingFileIsNotFound) {
  CheckpointState out;
  EXPECT_EQ(serve::read_checkpoint(path_, &out).code(),
            StatusCode::kNotFound);
}

TEST_F(Checkpoint, RewriteReplacesAtomically) {
  ASSERT_TRUE(serve::write_checkpoint(path_, sample_state()).is_ok());
  CheckpointState next = sample_state();
  next.epoch = 10;
  next.batches = 5;
  next.wal_offset = 256;
  next.num_components = 2;
  next.labels = {0, 0, 0, 3, 3, 3};
  ASSERT_TRUE(serve::write_checkpoint(path_, next).is_ok());
  CheckpointState out;
  ASSERT_TRUE(serve::read_checkpoint(path_, &out).is_ok());
  EXPECT_EQ(out.epoch, 10u);
  EXPECT_EQ(out.labels, next.labels);
}

TEST_F(Checkpoint, HeaderCorruptionIsDetected) {
  ASSERT_TRUE(serve::write_checkpoint(path_, sample_state()).is_ok());
  corrupt_byte(24);  // the epoch field, covered by header_crc
  CheckpointState out;
  EXPECT_EQ(serve::read_checkpoint(path_, &out).code(),
            StatusCode::kCorruption);
}

TEST_F(Checkpoint, PayloadCorruptionIsDetected) {
  ASSERT_TRUE(serve::write_checkpoint(path_, sample_state()).is_ok());
  corrupt_byte(64 + 4);  // second label
  CheckpointState out;
  EXPECT_EQ(serve::read_checkpoint(path_, &out).code(),
            StatusCode::kCorruption);
}

TEST_F(Checkpoint, BadMagicIsCorruption) {
  ASSERT_TRUE(serve::write_checkpoint(path_, sample_state()).is_ok());
  corrupt_byte(0);
  CheckpointState out;
  EXPECT_EQ(serve::read_checkpoint(path_, &out).code(),
            StatusCode::kCorruption);
}

TEST_F(Checkpoint, TruncatedPayloadIsCorruption) {
  ASSERT_TRUE(serve::write_checkpoint(path_, sample_state()).is_ok());
  ASSERT_EQ(::truncate(path_.c_str(), 64 + 8), 0);  // 2 of 6 labels left
  CheckpointState out;
  EXPECT_EQ(serve::read_checkpoint(path_, &out).code(),
            StatusCode::kCorruption);
}

TEST_F(Checkpoint, FileShorterThanHeaderIsCorruption) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("LOGCCKP1", f);  // right magic, nothing else
  std::fclose(f);
  CheckpointState out;
  EXPECT_EQ(serve::read_checkpoint(path_, &out).code(),
            StatusCode::kCorruption);
}

TEST_F(Checkpoint, TrailingGarbageIsCorruption) {
  ASSERT_TRUE(serve::write_checkpoint(path_, sample_state()).is_ok());
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("junk", f);
  std::fclose(f);
  CheckpointState out;
  EXPECT_EQ(serve::read_checkpoint(path_, &out).code(),
            StatusCode::kCorruption)
      << "the file size must match the header exactly";
}

TEST_F(Checkpoint, NonCanonicalLabelsAreRejected) {
  // labels[1] = 2 > 1 violates labels[v] <= v: checksums pass (the bytes
  // were written honestly) but the state is not a canonical forest, so a
  // recovery built on it would break the min-id contract.
  CheckpointState bad = sample_state();
  bad.labels = {0, 2, 2, 3, 3, 5};
  ASSERT_TRUE(serve::write_checkpoint(path_, bad).is_ok());
  CheckpointState out;
  EXPECT_EQ(serve::read_checkpoint(path_, &out).code(),
            StatusCode::kCorruption);
  // Non-idempotent labels (labels[labels[v]] != labels[v]) likewise.
  CheckpointState chain = sample_state();
  chain.labels = {0, 0, 1, 3, 3, 5};  // 2 -> 1 -> 0: not flat
  ASSERT_TRUE(serve::write_checkpoint(path_, chain).is_ok());
  EXPECT_EQ(serve::read_checkpoint(path_, &out).code(),
            StatusCode::kCorruption);
}

TEST_F(Checkpoint, InjectedWriteFailureLeavesPreviousCheckpointIntact) {
  ASSERT_TRUE(serve::write_checkpoint(path_, sample_state()).is_ok());
  CheckpointState next = sample_state();
  next.epoch = 11;

  for (const char* site :
       {"checkpoint_open", "checkpoint_write", "checkpoint_sync",
        "checkpoint_before_rename"}) {
    fp::arm(site, fp::Action::kError);
    const Status s = serve::write_checkpoint(path_, next);
    fp::disarm_all();
    EXPECT_FALSE(s.is_ok()) << site;
    EXPECT_FALSE(exists(path_ + ".tmp"))
        << site << ": a failed write must clean up its tmp file";
    CheckpointState out;
    ASSERT_TRUE(serve::read_checkpoint(path_, &out).is_ok()) << site;
    EXPECT_EQ(out.epoch, 9u)
        << site << ": the previous checkpoint must be untouched";
  }
}

TEST_F(Checkpoint, InjectedDirSyncFailureStillLeavesValidFile) {
  // checkpoint_after_rename fails the *directory* fsync: the rename already
  // happened, so the new checkpoint is in place (its durability is merely
  // not guaranteed yet) and the caller sees the error.
  ASSERT_TRUE(serve::write_checkpoint(path_, sample_state()).is_ok());
  CheckpointState next = sample_state();
  next.epoch = 12;
  fp::arm("checkpoint_after_rename", fp::Action::kError);
  const Status s = serve::write_checkpoint(path_, next);
  fp::disarm_all();
  EXPECT_FALSE(s.is_ok());
  CheckpointState out;
  ASSERT_TRUE(serve::read_checkpoint(path_, &out).is_ok());
  EXPECT_EQ(out.epoch, 12u);
}

}  // namespace
}  // namespace logcc
