// util::failpoint — the fault-injection registry behind the durability
// layer's kill-at-every-failpoint recovery suite (PR 10): catalog
// enforcement, arming semantics (error/once/delay, skip budgets), the
// LOGCC_FAILPOINT fast path, and the LOGCC_FAILPOINT= env spec parser.
#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/timer.hpp"

namespace logcc {
namespace {

namespace fp = util::failpoint;

class Failpoint : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }
};

TEST_F(Failpoint, CatalogListsEveryLayer) {
  const auto names = fp::catalog();
  ASSERT_FALSE(names.empty());
  auto has = [&](const std::string& want) {
    for (const char* name : names)
      if (want == name) return true;
    return false;
  };
  // One representative per instrumented layer; the full list lives in
  // failpoint.cpp and docs/ARCHITECTURE.md.
  EXPECT_TRUE(has("mmap_open_read"));
  EXPECT_TRUE(has("wal_append_write"));
  EXPECT_TRUE(has("checkpoint_before_rename"));
  EXPECT_TRUE(has("engine_after_wal_append"));
  EXPECT_TRUE(has("thread_pool_dispatch"));
}

TEST_F(Failpoint, EveryCatalogNameIsArmable) {
  for (const char* name : fp::catalog()) {
    fp::arm(name, fp::Action::kError);
    EXPECT_TRUE(fp::is_armed(name)) << name;
    fp::disarm(name);
    EXPECT_FALSE(fp::is_armed(name)) << name;
  }
  EXPECT_EQ(fp::g_armed_count.load(), 0);
}

TEST_F(Failpoint, DisarmedSitesNeverFire) {
  EXPECT_EQ(fp::g_armed_count.load(), 0);
  EXPECT_FALSE(LOGCC_FAILPOINT("wal_append_write"));
  EXPECT_FALSE(LOGCC_FAILPOINT("checkpoint_open"));
}

TEST_F(Failpoint, ErrorActionFiresEveryHit) {
  fp::arm("wal_fsync", fp::Action::kError);
  EXPECT_TRUE(LOGCC_FAILPOINT("wal_fsync"));
  EXPECT_TRUE(LOGCC_FAILPOINT("wal_fsync"));
  EXPECT_EQ(fp::hits("wal_fsync"), 2u);
  // Arming one site never leaks into another.
  EXPECT_FALSE(LOGCC_FAILPOINT("wal_open"));
}

TEST_F(Failpoint, OnceActionFiresThenDisarms) {
  fp::arm("wal_append_write", fp::Action::kOnce);
  EXPECT_TRUE(LOGCC_FAILPOINT("wal_append_write"));
  EXPECT_FALSE(fp::is_armed("wal_append_write"))
      << "once must disarm after the first firing";
  EXPECT_FALSE(LOGCC_FAILPOINT("wal_append_write"));
  EXPECT_EQ(fp::g_armed_count.load(), 0);
}

TEST_F(Failpoint, SkipBudgetDelaysTheAction) {
  fp::arm("checkpoint_write", fp::Action::kError, /*skip_hits=*/2);
  EXPECT_FALSE(LOGCC_FAILPOINT("checkpoint_write"));  // hit 1: skipped
  EXPECT_FALSE(LOGCC_FAILPOINT("checkpoint_write"));  // hit 2: skipped
  EXPECT_TRUE(LOGCC_FAILPOINT("checkpoint_write"));   // hit 3: fires
  EXPECT_TRUE(LOGCC_FAILPOINT("checkpoint_write"));
  EXPECT_EQ(fp::hits("checkpoint_write"), 4u);
}

TEST_F(Failpoint, DelayActionSleepsButNeverFails) {
  fp::arm("thread_pool_dispatch", fp::Action::kDelay, /*skip_hits=*/0,
          /*delay_ms=*/20);
  util::Timer timer;
  EXPECT_FALSE(LOGCC_FAILPOINT("thread_pool_dispatch"))
      << "delay must not take the error path";
  EXPECT_GE(timer.seconds(), 0.015);
}

TEST_F(Failpoint, RearmResetsHitCount) {
  fp::arm("wal_open", fp::Action::kError, /*skip_hits=*/0);
  (void)LOGCC_FAILPOINT("wal_open");
  EXPECT_EQ(fp::hits("wal_open"), 1u);
  fp::arm("wal_open", fp::Action::kError, /*skip_hits=*/0);
  EXPECT_EQ(fp::hits("wal_open"), 0u);
  EXPECT_EQ(fp::g_armed_count.load(), 1) << "re-arming must not double-count";
}

TEST_F(Failpoint, SpecParserAcceptsTheDocumentedForms) {
  std::string error;
  EXPECT_TRUE(fp::arm_from_spec("wal_fsync:error", &error)) << error;
  EXPECT_TRUE(fp::is_armed("wal_fsync"));
  EXPECT_TRUE(fp::arm_from_spec("wal_open:once,checkpoint_open:crash", &error))
      << error;
  EXPECT_TRUE(fp::is_armed("wal_open"));
  EXPECT_TRUE(fp::is_armed("checkpoint_open"));
  EXPECT_TRUE(fp::arm_from_spec("thread_pool_dispatch:delay:5", &error))
      << error;
  EXPECT_TRUE(
      fp::arm_from_spec("engine_after_wal_append:crash:skip=3", &error))
      << error;
  EXPECT_TRUE(fp::arm_from_spec("wal_append_write:delay:7:skip=2", &error))
      << error;
}

TEST_F(Failpoint, SpecParserRejectsMalformedEntries) {
  std::string error;
  EXPECT_FALSE(fp::arm_from_spec("not_a_site:error", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fp::arm_from_spec("wal_open", &error)) << "missing action";
  EXPECT_FALSE(fp::arm_from_spec("wal_open:explode", &error));
  EXPECT_FALSE(fp::arm_from_spec("wal_open:delay", &error))
      << "delay needs :MS";
  EXPECT_FALSE(fp::arm_from_spec("wal_open:error:bogus", &error));
  EXPECT_FALSE(fp::arm_from_spec("wal_open:error:skip=1:extra", &error));
}

TEST_F(Failpoint, SkipFieldFromSpecMatchesProgrammaticArm) {
  std::string error;
  ASSERT_TRUE(fp::arm_from_spec("wal_fsync:error:skip=1", &error)) << error;
  EXPECT_FALSE(LOGCC_FAILPOINT("wal_fsync"));
  EXPECT_TRUE(LOGCC_FAILPOINT("wal_fsync"));
}

}  // namespace
}  // namespace logcc
