// ConnectivityEngine: the incremental serving layer (PR 7).
//
// The load-bearing claim: after EVERY batch, the engine's published
// ComponentIndex is *bit-identical* (labels, sizes, count) to a full
// batch-algorithm recompute over the accumulated edges — for every
// backend (pool / omp / serial) and thread count (1/2/4/8). Both sides
// are canonical min-id snapshots, so the comparison is exact equality,
// not merely same-partition.
//
// On top of that: epoch-swap reader semantics (queries never see a
// half-merged state; old snapshots stay valid), the rebuild/verify
// cadence, and a concurrent reader/writer scenario the TSan CI job
// race-checks.
#include "serve/connectivity_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc {
namespace {

using graph::Edge;
using graph::VertexId;
using logcc::testing::BackendInvariance;
using logcc::testing::ThreadInvariance;
using serve::ConnectivityEngine;
using serve::EngineOptions;

std::vector<std::span<const Edge>> batches_of(const graph::EdgeList& el,
                                              std::size_t batch_size) {
  std::vector<std::span<const Edge>> out;
  std::span<const Edge> all(el.edges);
  for (std::size_t off = 0; off < all.size(); off += batch_size)
    out.push_back(all.subspan(off, std::min(batch_size, all.size() - off)));
  return out;
}

core::ComponentIndex recompute(std::uint64_t n, std::span<const Edge> edges,
                               Algorithm alg = Algorithm::kFasterCC) {
  return connected_components(graph::ArcsInput::from_edges(n, edges), alg)
      .index;
}

TEST(Serve, SingletonsBeforeFirstBatch) {
  ConnectivityEngine engine(5);
  EXPECT_EQ(engine.component_count(), 5u);
  EXPECT_EQ(engine.epoch(), 1u);
  EXPECT_FALSE(engine.connected(0, 4));
  EXPECT_TRUE(engine.connected(2, 2));
  EXPECT_EQ(engine.component_of(3), 3u);
  EXPECT_EQ(engine.component_size(3), 1u);
}

TEST(Serve, IncrementalMatchesRecomputeAfterEveryBatch) {
  const auto el = graph::make_gnm(500, 1500, 17);
  ConnectivityEngine engine(el.n);
  std::uint64_t applied = 0, total_merges = 0;
  for (auto batch : batches_of(el, 97)) {
    auto res = engine.apply_batch(batch);
    applied += batch.size();
    total_merges += res.merges;
    EXPECT_EQ(res.edges, batch.size());
    EXPECT_FALSE(res.verify_ran);
    const auto full =
        recompute(el.n, std::span<const Edge>(el.edges).first(applied));
    ASSERT_TRUE(*engine.snapshot() == full)
        << "incremental snapshot diverges after batch " << res.batch;
  }
  EXPECT_EQ(engine.num_edges(), el.edges.size());
  // Merge accounting: components lost across all batches = n - final count.
  EXPECT_EQ(total_merges, el.n - engine.component_count());
}

TEST(Serve, QueriesAgreeWithOracle) {
  const auto el =
      graph::disjoint_union({graph::make_path(6), graph::make_cycle(5)});
  ConnectivityEngine engine(el.n);
  engine.apply_batch(el.edges);
  EXPECT_EQ(engine.component_count(), 2u);
  EXPECT_TRUE(engine.connected(0, 5));
  EXPECT_FALSE(engine.connected(0, 6));
  EXPECT_EQ(engine.component_of(8), 6u);
  EXPECT_EQ(engine.component_size(0), 6u);
  EXPECT_EQ(engine.component_size(10), 5u);
}

TEST(Serve, ToleratesSelfLoopsDuplicatesAndEmptyBatches) {
  ConnectivityEngine engine(4);
  std::vector<Edge> weird{{0, 0}, {1, 2}, {2, 1}, {1, 2}, {3, 3}};
  auto r1 = engine.apply_batch(weird);
  EXPECT_EQ(r1.merges, 1u);
  EXPECT_EQ(engine.component_count(), 3u);
  // An empty batch is a no-op epoch (steady-state fixpoint probe: 0 rounds).
  auto r2 = engine.apply_batch({});
  EXPECT_EQ(r2.rounds, 0u);
  EXPECT_EQ(r2.merges, 0u);
  // Re-inserting internal edges merges nothing and costs zero rounds.
  auto r3 = engine.apply_batch(std::vector<Edge>{{1, 2}, {2, 2}});
  EXPECT_EQ(r3.rounds, 0u);
  EXPECT_EQ(engine.component_count(), 3u);
  EXPECT_TRUE(*engine.snapshot() ==
              recompute(4, engine.edges().edges()));
}

TEST(ServeDeath, RejectsOutOfRangeEndpoints) {
  ConnectivityEngine engine(3);
  EXPECT_DEATH(engine.apply_batch(std::vector<Edge>{{0, 3}}),
               "endpoint out of range");
}

TEST(Serve, EpochAdvancesPerBatchAndOldSnapshotsSurvive) {
  ConnectivityEngine engine(4);
  auto before = engine.snapshot();
  engine.apply_batch(std::vector<Edge>{{0, 1}});
  engine.apply_batch(std::vector<Edge>{{2, 3}});
  EXPECT_EQ(engine.epoch(), 3u);  // initial publish + 2 batches
  // The pre-merge snapshot still answers from its own epoch.
  EXPECT_EQ(before->num_components(), 4u);
  EXPECT_FALSE(before->connected(0, 1));
  EXPECT_TRUE(engine.snapshot()->connected(0, 1));
}

TEST(Serve, VerifyCadenceRunsAndPasses) {
  const auto el = graph::make_gnm(300, 900, 5);
  EngineOptions opts;
  opts.verify_every = 3;
  ConnectivityEngine engine(el.n, opts);
  std::uint64_t verified_epochs = 0;
  for (auto batch : batches_of(el, 50)) {
    auto res = engine.apply_batch(batch);
    EXPECT_EQ(res.verify_ran, res.batch % 3 == 0);
    if (res.verify_ran) {
      ++verified_epochs;
      EXPECT_TRUE(res.verified) << "batch " << res.batch;
    }
  }
  EXPECT_GE(verified_epochs, 5u);
}

TEST(Serve, VerifyAndRebuildAgreesForEveryRebuildAlgorithm) {
  const auto el = graph::make_rmat(8, 1024, 9);
  for (Algorithm alg : all_algorithms()) {
    EngineOptions opts;
    opts.rebuild_algorithm = alg;
    ConnectivityEngine engine(el.n, opts);
    for (auto batch : batches_of(el, 200)) engine.apply_batch(batch);
    const std::uint64_t epoch_before = engine.epoch();
    EXPECT_TRUE(engine.verify_and_rebuild()) << to_string(alg);
    EXPECT_EQ(engine.epoch(), epoch_before + 1) << to_string(alg);
    EXPECT_TRUE(verify_components(engine.edges().input(), *engine.snapshot()))
        << to_string(alg);
  }
}

TEST(Serve, PublishForestAttachesFlatForest) {
  EngineOptions opts;
  opts.publish_forest = true;
  ConnectivityEngine engine(5, opts);
  engine.apply_batch(std::vector<Edge>{{0, 1}, {3, 4}});
  auto s = engine.snapshot();
  ASSERT_TRUE(s->has_forest());
  EXPECT_EQ(s->forest(), s->labels());  // the engine's forest is flat
  engine.verify_and_rebuild();
  EXPECT_TRUE(engine.snapshot()->has_forest());
}

// The determinism contract, extended to the serving layer: for a given
// batch sequence, every (backend, thread count) pair must publish
// bit-identical snapshots after every batch — and each of them must equal
// the full recompute on the accumulated prefix.
TEST_F(BackendInvariance, ServeSnapshotsBitIdenticalAcrossBackendsAndThreads) {
  const auto el = graph::make_gnm(400, 1200, 29);
  const auto batches = batches_of(el, 64);

  // Reference run (serial @1) with per-batch recompute cross-check.
  std::vector<core::ComponentIndex> reference;
  {
    util::set_parallel_backend(util::ParallelBackend::kSerial);
    util::set_parallelism(1);
    ConnectivityEngine engine(el.n);
    std::uint64_t applied = 0;
    for (auto batch : batches) {
      engine.apply_batch(batch);
      applied += batch.size();
      reference.push_back(*engine.snapshot());
      ASSERT_TRUE(reference.back() ==
                  recompute(el.n,
                            std::span<const Edge>(el.edges).first(applied)));
    }
  }

  for (util::ParallelBackend backend :
       {util::ParallelBackend::kPool, util::ParallelBackend::kOpenMP,
        util::ParallelBackend::kSerial}) {
    util::set_parallel_backend(backend);
    for (int threads : {1, 2, 4, 8}) {
      util::set_parallelism(threads);
      ConnectivityEngine engine(el.n);
      for (std::size_t b = 0; b < batches.size(); ++b) {
        auto res = engine.apply_batch(batches[b]);
        ASSERT_TRUE(*engine.snapshot() == reference[b])
            << util::parallel_backend_name() << " @ " << threads
            << " batch " << res.batch;
      }
    }
  }
}

// Round counts are part of the bit-identity contract too (the hook is
// order-invariant min-combining, so convergence takes the same number of
// rounds everywhere).
TEST_F(ThreadInvariance, ServeRoundCountsThreadInvariant) {
  const auto el = graph::make_rmat(9, 2048, 3);
  const auto batches = batches_of(el, 128);
  std::vector<std::uint64_t> reference;
  for (int threads : {1, 2, 4, 8}) {
    util::set_parallelism(threads);
    ConnectivityEngine engine(el.n);
    std::vector<std::uint64_t> rounds;
    for (auto batch : batches) rounds.push_back(engine.apply_batch(batch).rounds);
    if (reference.empty())
      reference = rounds;
    else
      ASSERT_EQ(rounds, reference) << "threads=" << threads;
  }
}

// Concurrent readers against a live writer: the scenario the TSan job
// instruments. Readers must always see a fully-published epoch — labels in
// range, component count between 1 and n, monotonically non-increasing as
// the insert-only writer merges — and never block or crash.
TEST(Serve, ConcurrentReadersSeeOnlyPublishedEpochs) {
  const auto el = graph::make_gnm(2000, 6000, 41);
  ConnectivityEngine engine(el.n);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> query_count{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t last_count = el.n;
      std::uint64_t q = 0;
      VertexId v = static_cast<VertexId>(t);
      // Keep querying until the writer is done AND a floor of iterations
      // ran, so a fast writer can't finish before any query lands.
      while (!done.load(std::memory_order_acquire) || q < 100) {
        auto s = engine.snapshot();
        ASSERT_EQ(s->num_vertices(), el.n);
        const std::uint64_t count = s->num_components();
        ASSERT_GE(count, 1u);
        ASSERT_LE(count, last_count);  // insert-only: never splits
        last_count = count;
        const VertexId label = s->component_of(v);
        ASSERT_LE(label, v);
        ASSERT_TRUE(s->connected(v, label));
        ASSERT_GE(s->component_size(v), 1u);
        v = (v + 13) % static_cast<VertexId>(el.n);
        ++q;
      }
      query_count.fetch_add(q, std::memory_order_relaxed);
    });
  }
  for (auto batch : batches_of(el, 250)) engine.apply_batch(batch);
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_GT(query_count.load(), 0u);
  EXPECT_TRUE(*engine.snapshot() == recompute(el.n, engine.edges().edges()));
}

}  // namespace
}  // namespace logcc
