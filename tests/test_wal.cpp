// serve/wal — the LOGCCWAL1 write-ahead edge log (PR 10): CRC32C reference
// vectors, record round trips, torn-tail detection/truncation, corruption
// handling, fsync policies, and transient-failure retry through the
// wal_append_write failpoint.
#include "serve/wal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"
#include "util/status.hpp"

namespace logcc {
namespace {

using graph::Edge;
using serve::WalOptions;
using serve::WalScan;
using serve::WalWriter;
using util::Status;
using util::StatusCode;

namespace fp = util::failpoint;

// ---------------------------------------------------------------- crc32c ---

TEST(Crc32c, Rfc3720ReferenceVectors) {
  // RFC 3720 appendix B.4 — the iSCSI CRC32C test vectors. Matching them
  // means any standard tool can validate a WAL written here.
  std::uint8_t zeros[32] = {};
  EXPECT_EQ(util::crc32c(zeros, sizeof zeros), 0x8A9136AAu);
  std::uint8_t ones[32];
  for (auto& b : ones) b = 0xFF;
  EXPECT_EQ(util::crc32c(ones, sizeof ones), 0x62A8AB43u);
  std::uint8_t ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(util::crc32c(ascending, sizeof ascending), 0x46DD794Eu);
  std::uint8_t descending[32];
  for (int i = 0; i < 32; ++i)
    descending[i] = static_cast<std::uint8_t>(31 - i);
  EXPECT_EQ(util::crc32c(descending, sizeof descending), 0x113FDB5Cu);
  const char* nums = "123456789";
  EXPECT_EQ(util::crc32c(nums, 9), 0xE3069283u);
}

TEST(Crc32c, SeedChainsIncrementalComputation) {
  const char* data = "write-ahead logging";
  const std::size_t n = 19;
  const std::uint32_t whole = util::crc32c(data, n);
  for (std::size_t split = 0; split <= n; ++split) {
    const std::uint32_t first = util::crc32c(data, split);
    EXPECT_EQ(util::crc32c(data + split, n - split, first), whole)
        << "split at " << split;
  }
  EXPECT_EQ(util::crc32c(data, 0), 0u);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::uint8_t buf[64];
  for (int i = 0; i < 64; ++i) buf[i] = static_cast<std::uint8_t>(i * 7);
  const std::uint32_t clean = util::crc32c(buf, sizeof buf);
  for (int byte = 0; byte < 64; byte += 9) {
    buf[byte] ^= 0x10;
    EXPECT_NE(util::crc32c(buf, sizeof buf), clean) << "flip at " << byte;
    buf[byte] ^= 0x10;
  }
}

// ------------------------------------------------------------------- wal ---

class Wal : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "logcc_wal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    fp::disarm_all();
    std::remove(path_.c_str());
  }

  static std::vector<Edge> batch(std::initializer_list<std::pair<int, int>> e) {
    std::vector<Edge> out;
    for (auto [u, v] : e)
      out.push_back(Edge{static_cast<graph::VertexId>(u),
                         static_cast<graph::VertexId>(v)});
    return out;
  }

  /// Replays path_ and returns every batch flattened, asserting scan
  /// consistency along the way.
  std::vector<std::vector<Edge>> replay_all(WalScan* scan = nullptr) {
    std::vector<std::vector<Edge>> batches;
    std::uint64_t last_offset = 0;
    const Status s = serve::wal_replay(
        path_,
        [&](std::uint64_t offset, std::span<const Edge> edges) {
          EXPECT_GT(offset, last_offset) << "record offsets must increase";
          last_offset = offset;
          batches.emplace_back(edges.begin(), edges.end());
        },
        scan);
    EXPECT_TRUE(s.is_ok()) << s.to_string();
    return batches;
  }

  std::string path_;
};

TEST_F(Wal, FsyncPolicyNamesRoundTrip) {
  for (auto policy :
       {serve::WalFsync::kNone, serve::WalFsync::kBatch,
        serve::WalFsync::kEveryN}) {
    serve::WalFsync parsed;
    ASSERT_TRUE(serve::wal_fsync_from_string(to_string(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  serve::WalFsync parsed;
  EXPECT_FALSE(serve::wal_fsync_from_string("sometimes", &parsed));
}

TEST_F(Wal, EveryNRequiresPositiveN) {
  WalOptions opt;
  opt.fsync = serve::WalFsync::kEveryN;
  opt.every_n = 0;
  WalWriter w;
  EXPECT_EQ(WalWriter::create(path_, 10, opt, &w).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(Wal, RoundTripsBatches) {
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(path_, 100, WalOptions{}, &w).is_ok());
  const auto b1 = batch({{0, 1}, {2, 3}});
  const auto b2 = batch({{4, 5}});
  const auto b3 = batch({});  // empty batches are legal records
  ASSERT_TRUE(w.append(b1).is_ok());
  ASSERT_TRUE(w.append(b2).is_ok());
  ASSERT_TRUE(w.append(b3).is_ok());
  EXPECT_EQ(w.records(), 3u);
  w.close();

  WalScan scan;
  const auto batches = replay_all(&scan);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], b1);
  EXPECT_EQ(batches[1], b2);
  EXPECT_TRUE(batches[2].empty());
  EXPECT_EQ(scan.n, 100u);
  EXPECT_EQ(scan.records, 3u);
  EXPECT_EQ(scan.edges, 3u);
  EXPECT_EQ(scan.torn_bytes, 0u);
}

TEST_F(Wal, MissingFileIsNotFoundForReplayButFreshForAppend) {
  EXPECT_EQ(serve::wal_replay(path_, nullptr, nullptr).code(),
            StatusCode::kNotFound);
  WalWriter w;
  ASSERT_TRUE(
      WalWriter::open_for_append(path_, 42, WalOptions{}, &w).is_ok());
  EXPECT_EQ(w.records(), 0u);
  ASSERT_TRUE(w.append(batch({{1, 2}})).is_ok());
  w.close();
  WalScan scan;
  replay_all(&scan);
  EXPECT_EQ(scan.n, 42u);
  EXPECT_EQ(scan.records, 1u);
}

TEST_F(Wal, OpenForAppendResumesAtTheEnd) {
  {
    WalWriter w;
    ASSERT_TRUE(WalWriter::create(path_, 50, WalOptions{}, &w).is_ok());
    ASSERT_TRUE(w.append(batch({{0, 1}})).is_ok());
  }
  {
    WalWriter w;
    WalScan scan;
    ASSERT_TRUE(
        WalWriter::open_for_append(path_, 50, WalOptions{}, &w, &scan)
            .is_ok());
    EXPECT_EQ(scan.records, 1u);
    EXPECT_EQ(w.records(), 1u);
    ASSERT_TRUE(w.append(batch({{2, 3}, {4, 5}})).is_ok());
  }
  const auto batches = replay_all();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1], batch({{2, 3}, {4, 5}}));
}

TEST_F(Wal, OpenForAppendRejectsUniverseMismatch) {
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(path_, 50, WalOptions{}, &w).is_ok());
  w.close();
  WalWriter reopened;
  EXPECT_EQ(
      WalWriter::open_for_append(path_, 51, WalOptions{}, &reopened).code(),
      StatusCode::kCorruption);
}

TEST_F(Wal, TornTailIsDetectedAndTruncated) {
  std::uint64_t valid_end = 0;
  {
    WalWriter w;
    ASSERT_TRUE(WalWriter::create(path_, 50, WalOptions{}, &w).is_ok());
    ASSERT_TRUE(w.append(batch({{0, 1}})).is_ok());
    ASSERT_TRUE(w.append(batch({{2, 3}})).is_ok());
    valid_end = w.offset();
  }
  // Simulate a crash mid-append: a record header promising more payload
  // than the file holds.
  {
    std::FILE* fp = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(fp, nullptr);
    const std::uint32_t torn[2] = {64, 0xDEADBEEF};  // 64 payload bytes, none
    ASSERT_EQ(std::fwrite(torn, 1, sizeof torn, fp), sizeof torn);
    std::fclose(fp);
  }
  WalScan scan;
  const auto batches = replay_all(&scan);
  EXPECT_EQ(batches.size(), 2u) << "the torn record must not replay";
  EXPECT_EQ(scan.valid_bytes, valid_end);
  EXPECT_EQ(scan.torn_bytes, 8u);

  // open_for_append drops the tail: the next replay sees a clean file.
  WalWriter w;
  WalScan open_scan;
  ASSERT_TRUE(WalWriter::open_for_append(path_, 50, WalOptions{}, &w,
                                         &open_scan)
                  .is_ok());
  EXPECT_EQ(open_scan.torn_bytes, 8u);
  EXPECT_EQ(w.offset(), valid_end);
  ASSERT_TRUE(w.append(batch({{4, 5}})).is_ok());
  w.close();
  WalScan after;
  EXPECT_EQ(replay_all(&after).size(), 3u);
  EXPECT_EQ(after.torn_bytes, 0u);
}

TEST_F(Wal, CorruptPayloadStopsReplayAtTheCrcBoundary) {
  {
    WalWriter w;
    ASSERT_TRUE(WalWriter::create(path_, 50, WalOptions{}, &w).is_ok());
    ASSERT_TRUE(w.append(batch({{0, 1}})).is_ok());
    ASSERT_TRUE(w.append(batch({{2, 3}})).is_ok());
  }
  // Flip one payload byte of the second record (file layout: 32B header,
  // then per record 8B header + 8B edge payload).
  {
    std::FILE* fp = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(std::fseek(fp, 32 + 16 + 8 + 2, SEEK_SET), 0);
    const int c = std::fgetc(fp);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(fp, -1, SEEK_CUR), 0);
    std::fputc(c ^ 0x01, fp);
    std::fclose(fp);
  }
  WalScan scan;
  const auto batches = replay_all(&scan);
  ASSERT_EQ(batches.size(), 1u) << "replay must stop at the corrupt record";
  EXPECT_EQ(batches[0], batch({{0, 1}}));
  EXPECT_GT(scan.torn_bytes, 0u);
}

TEST_F(Wal, OutOfUniverseEndpointInvalidatesTheRecord) {
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(path_, 5, WalOptions{}, &w).is_ok());
  ASSERT_TRUE(w.append(batch({{0, 1}})).is_ok());
  // The writer does not validate endpoints (the engine does, before
  // appending); a CRC-clean record with ids outside [0, n) must still be
  // rejected by replay — it cannot be fed to EdgeLog::append.
  ASSERT_TRUE(w.append(batch({{7, 1}})).is_ok());
  w.close();
  const auto batches = replay_all();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], batch({{0, 1}}));
}

TEST_F(Wal, BadHeaderIsCorruption) {
  {
    std::FILE* fp = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    const char junk[40] = "definitely not a WAL header, promise";
    ASSERT_EQ(std::fwrite(junk, 1, sizeof junk, fp), sizeof junk);
    std::fclose(fp);
  }
  EXPECT_EQ(serve::wal_replay(path_, nullptr, nullptr).code(),
            StatusCode::kCorruption);
  // Shorter than the 32-byte header: also corruption, not I/O failure.
  {
    std::FILE* fp = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fputc('L', fp);
    std::fclose(fp);
  }
  EXPECT_EQ(serve::wal_replay(path_, nullptr, nullptr).code(),
            StatusCode::kCorruption);
}

TEST_F(Wal, TransientAppendFailureHealsThroughRetry) {
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(path_, 50, WalOptions{}, &w).is_ok());
  // "once" => the first pwrite attempt leaves a torn half-record and
  // returns a transient error; retry_with_backoff re-runs it at the same
  // offset and succeeds.
  fp::arm("wal_append_write", fp::Action::kOnce);
  ASSERT_TRUE(w.append(batch({{0, 1}, {2, 3}})).is_ok());
  EXPECT_FALSE(fp::is_armed("wal_append_write")) << "once must have fired";
  ASSERT_TRUE(w.append(batch({{4, 5}})).is_ok());
  w.close();
  WalScan scan;
  const auto batches = replay_all(&scan);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0], batch({{0, 1}, {2, 3}}));
  EXPECT_EQ(scan.torn_bytes, 0u) << "the retried record must not leave a tear";
}

TEST_F(Wal, PersistentAppendFailureRewindsTheFile) {
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(path_, 50, WalOptions{}, &w).is_ok());
  ASSERT_TRUE(w.append(batch({{0, 1}})).is_ok());
  const std::uint64_t before = w.offset();
  fp::arm("wal_append_write", fp::Action::kError);
  const Status s = w.append(batch({{2, 3}}));
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(w.offset(), before) << "a failed append must not advance";
  fp::disarm_all();
  // The writer rewound the tear; the valid prefix is intact and appendable.
  ASSERT_TRUE(w.append(batch({{4, 5}})).is_ok());
  w.close();
  const auto batches = replay_all();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1], batch({{4, 5}}));
}

TEST_F(Wal, InjectedFsyncFailureSurfacesAsIoError) {
  WalOptions opt;
  opt.fsync = serve::WalFsync::kBatch;
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(path_, 50, opt, &w).is_ok());
  fp::arm("wal_fsync", fp::Action::kError);
  EXPECT_EQ(w.append(batch({{0, 1}})).code(), StatusCode::kIoError);
  fp::disarm_all();
  // The record itself was written; only its durability barrier failed.
  w.close();
  EXPECT_EQ(replay_all().size(), 1u);
}

TEST_F(Wal, EveryNPolicySyncsOnSchedule) {
  WalOptions opt;
  opt.fsync = serve::WalFsync::kEveryN;
  opt.every_n = 3;
  WalWriter w;
  ASSERT_TRUE(WalWriter::create(path_, 50, opt, &w).is_ok());
  // Arm the fsync failpoint: appends 1 and 2 must not sync (no error),
  // append 3 crosses every_n and hits the injected fsync failure.
  fp::arm("wal_fsync", fp::Action::kError);
  EXPECT_TRUE(w.append(batch({{0, 1}})).is_ok());
  EXPECT_TRUE(w.append(batch({{1, 2}})).is_ok());
  EXPECT_EQ(w.append(batch({{2, 3}})).code(), StatusCode::kIoError);
  fp::disarm_all();
  EXPECT_TRUE(w.sync().is_ok());
}

}  // namespace
}  // namespace logcc
