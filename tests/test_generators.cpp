#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/graph_algos.hpp"

namespace logcc::graph {
namespace {

std::uint64_t components_of(const EdgeList& el) {
  return count_components(bfs_components(Graph::from_edges(el)));
}

TEST(Generators, PathShape) {
  EdgeList el = make_path(10);
  EXPECT_EQ(el.n, 10u);
  EXPECT_EQ(el.edges.size(), 9u);
  EXPECT_EQ(components_of(el), 1u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 9u);
}

TEST(Generators, CycleShape) {
  EdgeList el = make_cycle(11);
  EXPECT_EQ(el.edges.size(), 11u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 5u);
}

TEST(Generators, StarShape) {
  EdgeList el = make_star(33);
  EXPECT_EQ(el.edges.size(), 32u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 2u);
}

TEST(Generators, CompleteShape) {
  EdgeList el = make_complete(10);
  EXPECT_EQ(el.edges.size(), 45u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 1u);
}

TEST(Generators, GridShape) {
  EdgeList el = make_grid(4, 6);
  EXPECT_EQ(el.n, 24u);
  EXPECT_EQ(el.edges.size(), 4u * 5 + 3u * 6);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 8u);  // 3 + 5
}

TEST(Generators, BinaryTreeShape) {
  EdgeList el = make_binary_tree(15);
  EXPECT_EQ(el.edges.size(), 14u);
  EXPECT_EQ(components_of(el), 1u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 6u);
}

TEST(Generators, HypercubeShape) {
  EdgeList el = make_hypercube(5);
  EXPECT_EQ(el.n, 32u);
  EXPECT_EQ(el.edges.size(), 32u * 5 / 2);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 5u);
}

TEST(Generators, GnmCountsAndDeterminism) {
  EdgeList a = make_gnm(100, 300, 5);
  EXPECT_EQ(a.n, 100u);
  EXPECT_EQ(a.edges.size(), 300u);
  EdgeList b = make_gnm(100, 300, 5);
  EXPECT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i)
    EXPECT_EQ(a.edges[i], b.edges[i]);
  EdgeList c = make_gnm(100, 300, 6);
  bool differs = false;
  for (std::size_t i = 0; i < a.edges.size() && !differs; ++i)
    differs = !(a.edges[i] == c.edges[i]);
  EXPECT_TRUE(differs);
}

TEST(Generators, GnmSimpleGraph) {
  EdgeList el = make_gnm(50, 200, 9);
  EdgeList copy = el;
  copy.canonicalize();
  EXPECT_EQ(copy.edges.size(), el.edges.size());  // no dups, no loops
}

TEST(Generators, RandomRegularConnected) {
  EdgeList el = make_random_regular(64, 4, 3, /*connected=*/true);
  EXPECT_EQ(components_of(el), 1u);
}

TEST(Generators, RmatSkewedDegrees) {
  EdgeList el = make_rmat(8, 2048, 11);
  Graph g = Graph::from_edges(el);
  std::uint64_t max_deg = 0;
  std::uint64_t nonzero = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
    nonzero += g.degree(v) > 0;
  }
  // Skew: the max degree should dwarf the average degree.
  EXPECT_GT(max_deg, 4 * (2 * g.num_edges() / std::max<std::uint64_t>(nonzero, 1)));
}

TEST(Generators, PreferentialConnected) {
  EdgeList el = make_preferential(200, 3, 17);
  EXPECT_EQ(el.n, 200u);
  EXPECT_EQ(components_of(el), 1u);
}

TEST(Generators, CaterpillarShape) {
  EdgeList el = make_caterpillar(10, 2);
  EXPECT_EQ(el.n, 30u);
  EXPECT_EQ(el.edges.size(), 9u + 20u);
  EXPECT_EQ(components_of(el), 1u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 11u);
}

TEST(Generators, LollipopShape) {
  EdgeList el = make_lollipop(8, 20);
  EXPECT_EQ(el.n, 28u);
  EXPECT_EQ(components_of(el), 1u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 21u);
}

TEST(Generators, DisjointUnionRelabels) {
  EdgeList el = disjoint_union({make_path(3), make_path(4)});
  EXPECT_EQ(el.n, 7u);
  EXPECT_EQ(el.edges.size(), 2u + 3u);
  EXPECT_EQ(components_of(el), 2u);
}

TEST(Generators, PathForestComponents) {
  EdgeList el = make_path_forest(5, 10);
  EXPECT_EQ(components_of(el), 5u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 10u);
}

TEST(Generators, FamilyRegistryAllBuild) {
  for (const std::string& name : family_names()) {
    EdgeList el = make_family(name, 256, 3);
    EXPECT_GT(el.n, 0u) << name;
    Graph g = Graph::from_edges(el);
    EXPECT_EQ(g.num_vertices(), el.n) << name;
  }
}

TEST(GeneratorsDeath, UnknownFamilyAborts) {
  EXPECT_DEATH(make_family("no-such-family", 10, 1), "unknown graph family");
}

}  // namespace
}  // namespace logcc::graph
