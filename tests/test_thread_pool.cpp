// The persistent pool runtime: lifecycle (lazy start, shutdown/restart,
// resize), dispatch correctness, reentrancy, exception propagation, and the
// scan-primitive thread-invariance sweep under the pool backend at
// 1/2/4/8 lanes.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/building_blocks.hpp"
#include "test_support.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::util {
namespace {

using logcc::testing::BackendInvariance;

TEST_F(BackendInvariance, PoolCoversRangeExactlyOnce) {
  set_parallel_backend(ParallelBackend::kPool);
  set_parallelism(4);
  constexpr std::size_t n = 200000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST_F(BackendInvariance, PoolHonoursOffsetRangesAndBlocks) {
  set_parallel_backend(ParallelBackend::kPool);
  set_parallelism(4);
  std::vector<std::atomic<int>> hits(3 * kSerialGrain);
  parallel_for(kSerialGrain, 3 * kSerialGrain,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), i >= kSerialGrain ? 1 : 0) << i;

  std::vector<std::atomic<int>> blocks(64);
  parallel_for_blocks(64, [&](std::size_t b) { blocks[b].fetch_add(1); });
  for (std::size_t b = 0; b < 64; ++b) ASSERT_EQ(blocks[b].load(), 1) << b;
}

TEST_F(BackendInvariance, ShutdownRestartsLazily) {
  set_parallel_backend(ParallelBackend::kPool);
  set_parallelism(4);
  ThreadPool& pool = ThreadPool::instance();
  std::atomic<std::uint64_t> sum{0};
  parallel_for(0, kSerialGrain * 4, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  const std::uint64_t starts_before = pool.starts();
  EXPECT_GE(starts_before, 1u);
  pool.shutdown();
  // Next dispatch restarts the workers transparently.
  std::atomic<std::uint64_t> sum2{0};
  parallel_for(0, kSerialGrain * 4, [&](std::size_t i) {
    sum2.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), sum2.load());
  EXPECT_GT(pool.starts(), starts_before);
}

TEST_F(BackendInvariance, ResizeTakesEffect) {
  set_parallel_backend(ParallelBackend::kPool);
  set_parallelism(2);
  EXPECT_EQ(hardware_parallelism(), 2);
  EXPECT_EQ(ThreadPool::instance().lanes(), 2);
  set_parallelism(8);
  EXPECT_EQ(hardware_parallelism(), 8);
  std::atomic<int> count{0};
  parallel_for(0, kSerialGrain * 2, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), static_cast<int>(kSerialGrain * 2));
}

TEST_F(BackendInvariance, ReentrantDispatchRunsInlineWithoutDeadlock) {
  set_parallel_backend(ParallelBackend::kPool);
  set_parallelism(4);
  // Pin a small grain so the outer loop really fans out over multiple
  // chunks (the calibrated default may exceed the loop size).
  const std::size_t old_grain = parallel_grain();
  set_parallel_grain(64);
  const std::size_t outer = kSerialGrain + 16;
  const std::size_t inner = kSerialGrain + 16;
  std::atomic<std::uint64_t> count{0};
  parallel_for(0, outer, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    parallel_for(0, inner, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), static_cast<std::uint64_t>(outer) * inner);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  set_parallel_grain(old_grain);
}

TEST_F(BackendInvariance, ExceptionPropagatesAndPoolStaysUsable) {
  set_parallel_backend(ParallelBackend::kPool);
  set_parallelism(4);
  const std::size_t n = kSerialGrain * 4;
  EXPECT_THROW(
      parallel_for(0, n,
                   [&](std::size_t i) {
                     if (i == n / 2) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must be fully drained and reusable after the rethrow.
  std::atomic<std::uint64_t> sum{0};
  parallel_for(0, n, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST_F(BackendInvariance, SerialBackendReportsOneThread) {
  set_parallel_backend(ParallelBackend::kSerial);
  EXPECT_EQ(hardware_parallelism(), 1);
  EXPECT_STREQ(parallel_backend_name(), "serial");
  // Serial dispatch preserves order (observable: no interleaving).
  std::vector<std::size_t> order;
  parallel_for(0, 2 * kSerialGrain,
               [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 2 * kSerialGrain);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

// ---- Thread-invariance sweep of the scan primitives under the pool
// backend: 1/2/4/8 lanes must produce bit-identical results (the
// determinism contract, re-pinned on the new runtime).

struct ScanResults {
  std::uint64_t reduce = 0;
  std::vector<std::uint64_t> prefix;
  std::vector<std::uint64_t> filtered;
  std::vector<std::uint64_t> packed;
  std::vector<std::uint64_t> histogram;
  std::vector<std::uint64_t> partitioned;
  std::vector<std::size_t> partition_offsets;
  std::vector<std::uint64_t> grouped;
  std::vector<std::size_t> group_offsets;
  std::vector<core::Arc> deduped;

  bool operator==(const ScanResults&) const = default;
};

ScanResults run_all_primitives() {
  const std::size_t n = 16 * kSerialGrain;
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = mix64(3, i) & 0xffff;

  ScanResults r;
  r.reduce = parallel_reduce(
      std::size_t{0}, n, std::uint64_t{0}, [&](std::size_t i) { return v[i]; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  r.prefix = v;
  parallel_prefix_sum(r.prefix);
  r.filtered = parallel_filter(v, [](std::uint64_t x) { return x % 3 == 0; });
  r.packed = v;
  parallel_pack(r.packed, [](std::uint64_t x) { return x % 5 != 0; });
  r.histogram = parallel_histogram(n, 64, [&](std::size_t i) {
    return static_cast<std::size_t>(v[i] % 64);
  });
  r.partition_offsets = parallel_bucket_partition(
      v, r.partitioned, 32,
      [](std::uint64_t x) { return static_cast<std::size_t>(x % 32); });
  r.group_offsets = parallel_group_by(
      v, r.grouped, 1 << 16,
      [](std::uint64_t x) { return static_cast<std::size_t>(x); });
  // dedup_arcs composes partition + emit + pack over the Arc type.
  std::vector<core::Arc> arcs(n);
  for (std::size_t i = 0; i < n; ++i) {
    arcs[i] = {static_cast<graph::VertexId>(mix64(5, i) % 997),
               static_cast<graph::VertexId>(mix64(6, i) % 997),
               static_cast<std::uint32_t>(i)};
  }
  r.deduped = arcs;
  core::dedup_arcs(r.deduped);
  return r;
}

TEST_F(BackendInvariance, ScanPrimitivesBitIdenticalAcrossPoolLanes) {
  set_parallel_backend(ParallelBackend::kPool);
  set_parallelism(1);
  const ScanResults one = run_all_primitives();
  for (int lanes : {2, 4, 8}) {
    set_parallelism(lanes);
    EXPECT_EQ(run_all_primitives(), one) << "lanes=" << lanes;
  }
}

TEST_F(BackendInvariance, ScanPrimitivesAgreeAcrossBackends) {
  set_parallelism(4);
  set_parallel_backend(ParallelBackend::kSerial);
  const ScanResults serial = run_all_primitives();
  set_parallel_backend(ParallelBackend::kPool);
  EXPECT_EQ(run_all_primitives(), serial) << "pool";
#ifdef LOGCC_HAVE_OPENMP
  set_parallel_backend(ParallelBackend::kOpenMP);
  EXPECT_EQ(run_all_primitives(), serial) << "omp";
#endif
}

}  // namespace
}  // namespace logcc::util
