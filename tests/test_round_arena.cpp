// RoundArena / MonotonicArena: bump-allocation and LIFO rewind semantics,
// reset consolidation, and the headline property — steady-state rounds of
// an arena-backed round loop perform ZERO heap allocations (asserted with a
// global operator-new counter).
#include "core/round_arena.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/building_blocks.hpp"
#include "core/expand.hpp"
#include "core/vanilla.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/arena.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

// ---- Global operator-new counter. Replacing the global allocation
// functions is the one supported way to observe every heap allocation the
// process makes (vectors, gtest internals, pool startup — everything);
// tests below difference the counter around precisely-matched work.
namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace logcc::core {
namespace {

using logcc::testing::BackendInvariance;

TEST(MonotonicArena, BumpAllocAndReset) {
  util::MonotonicArena arena(/*first_block_bytes=*/1024);
  auto a = arena.alloc<std::uint64_t>(16);
  auto b = arena.alloc_zero<std::uint32_t>(8);
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(b.size(), 8u);
  for (std::uint32_t x : b) EXPECT_EQ(x, 0u);
  a[0] = 42;  // distinct storage
  EXPECT_EQ(b[0], 0u);
  const std::uint64_t blocks_before = arena.block_allocations();
  arena.reset();
  // Same request sequence after reset: no new blocks.
  auto a2 = arena.alloc<std::uint64_t>(16);
  auto b2 = arena.alloc<std::uint32_t>(8);
  EXPECT_EQ(a2.data(), a.data());
  EXPECT_EQ(static_cast<void*>(b2.data()), static_cast<void*>(b.data()));
  EXPECT_EQ(arena.block_allocations(), blocks_before);
  EXPECT_EQ(arena.resets(), 1u);
}

TEST(MonotonicArena, GrowthConsolidatesOnReset) {
  util::MonotonicArena arena(/*first_block_bytes=*/256);
  // Force multi-block growth.
  arena.alloc<std::uint8_t>(200);
  arena.alloc<std::uint8_t>(4096);
  arena.alloc<std::uint8_t>(20000);
  EXPECT_GE(arena.block_allocations(), 3u);
  arena.reset();
  const std::uint64_t after_consolidation = arena.block_allocations();
  // The same sequence now fits the consolidated block: allocation-free,
  // round after round.
  for (int round = 0; round < 10; ++round) {
    arena.alloc<std::uint8_t>(200);
    arena.alloc<std::uint8_t>(4096);
    arena.alloc<std::uint8_t>(20000);
    arena.reset();
  }
  EXPECT_EQ(arena.block_allocations(), after_consolidation);
  EXPECT_GE(arena.high_water(), 200u + 4096u + 20000u);
}

TEST(MonotonicArena, LifoRewindReusesBytes) {
  util::MonotonicArena arena(1 << 16);
  util::ScratchArenaScope scope(&arena);
  const void* first;
  {
    util::ScratchBuffer<std::uint64_t> buf(100);
    first = buf.data();
  }
  {
    // The previous buffer rewound on destruction: same bytes again.
    util::ScratchBuffer<std::uint64_t> buf(100);
    EXPECT_EQ(buf.data(), first);
  }
}

TEST(MonotonicArena, ScratchBufferFallsBackToHeapWithoutScope) {
  ASSERT_EQ(util::active_scratch_arena(), nullptr);
  util::ScratchBuffer<std::uint64_t> buf(32, /*zeroed=*/true);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0u);
}

TEST(RoundArena, ScopeInstallsOutermostWins) {
  RoundArena outer;
  ASSERT_EQ(util::active_scratch_arena(), nullptr);
  {
    RoundArena::Scope outer_scope(outer);
    EXPECT_TRUE(outer_scope.installed());
    EXPECT_EQ(util::active_scratch_arena(), &outer.arena());
    RoundArena inner;
    {
      RoundArena::Scope inner_scope(inner);
      EXPECT_FALSE(inner_scope.installed());
      // The outer arena stays active: one arena per run, not per layer.
      EXPECT_EQ(util::active_scratch_arena(), &outer.arena());
    }
    EXPECT_EQ(util::active_scratch_arena(), &outer.arena());
  }
  EXPECT_EQ(util::active_scratch_arena(), nullptr);
}

// ---- The zero-allocation property. Two identical Vanilla runs on the same
// graph, one stopped after 3 warm-up phases and one run to completion: if
// every steady-state phase (4, 5, ...) allocates nothing, both runs make
// exactly the same number of operator-new calls — the long run's extra
// phases are free. The graph is large enough (arcs >= 4*kSerialGrain) that
// every parallel path engages: blocked vote/mark/link, arena-staged pack,
// bucketed dedup, fused shortcut.
TEST_F(BackendInvariance, VanillaSteadyStatePhasesAllocateNothing) {
  util::set_parallel_backend(util::ParallelBackend::kPool);
  util::set_parallelism(4);
  const auto el = graph::make_path(40000);

  auto run_phases_counting = [&](std::uint64_t max_phases,
                                 RunStats& stats) -> std::uint64_t {
    // Everything inside the window is identical across calls up to
    // max_phases — same graph, same seed, same backend, pool already warm.
    const std::uint64_t before = g_new_calls.load();
    RoundArena arena;
    RoundArena::Scope scope(arena);
    ParentForest forest(el.n);
    std::vector<Arc> arcs = arcs_from_edges(el);
    drop_loops(arcs);
    VanillaOptions opt;
    opt.seed = 7;
    opt.max_phases = max_phases;
    vanilla_phases(forest, arcs, opt, stats);
    return g_new_calls.load() - before;
  };

  // Warm the pool (worker startup allocates) and every lane's arena (the
  // per-lane arenas of util/arena.hpp grow to their high-water demand on
  // first touch) outside the counted windows. Work stealing decides which
  // lane sees the peak chunk, so a single warm-up run may leave a lane
  // cold — run full passes until the allocation count stabilizes.
  RunStats warm_stats;
  std::uint64_t prev_allocs = run_phases_counting(0, warm_stats);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t cur = run_phases_counting(0, warm_stats);
    if (cur == prev_allocs) break;
    prev_allocs = cur;
  }

  RunStats full_stats;
  const std::uint64_t full_allocs = run_phases_counting(0, full_stats);
  RunStats short_stats;
  const std::uint64_t short_allocs = run_phases_counting(3, short_stats);

  ASSERT_GT(full_stats.phases, 6u) << "graph too easy to exercise steady state";
  ASSERT_EQ(short_stats.phases, 3u);
  EXPECT_EQ(full_allocs, short_allocs)
      << "phases 4.." << full_stats.phases
      << " allocated: steady-state rounds must be allocation-free";
}

// The bucketized table fills: EXPAND with a persistent ExpandScratch keeps
// its whole table slab (and every round's doubling snapshot) in retained
// memory — once warm, a full engine run performs a *stable* number of
// allocations (the engine's own member vectors), and the slab itself never
// allocates again: same-shape resets are epoch bumps.
TEST_F(BackendInvariance, ExpandSlabFillsAreAllocationFreeWhenWarm) {
  util::set_parallel_backend(util::ParallelBackend::kPool);
  util::set_parallelism(4);
  const std::uint64_t n = 1 << 14;
  auto el = graph::make_gnm(n, 3 * n, 9);
  auto arcs = arcs_from_edges(el);
  drop_loops(arcs);
  std::vector<graph::VertexId> ongoing(n);
  for (graph::VertexId v = 0; v < n; ++v) ongoing[v] = v;
  ExpandParams p;
  p.block_count = 4 * n + 7;
  p.table_capacity = 8;
  p.seed = 42;
  p.max_rounds = 16;

  RoundArena arena;
  RoundArena::Scope scope(arena);
  ExpandScratch scratch;
  auto run_counting = [&]() -> std::uint64_t {
    util::scratch_arena_round_reset();
    const std::uint64_t before = g_new_calls.load();
    RunStats stats;
    ExpandEngine engine(n, ongoing, arcs, p, stats, &scratch);
    engine.run();
    return g_new_calls.load() - before;
  };

  // Warm until flat (pool workers, lane arenas, slab, round arena).
  std::uint64_t prev = run_counting();
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t cur = run_counting();
    if (cur == prev) break;
    prev = cur;
  }
  const std::uint64_t slab_allocs = scratch.tables.slab_allocations();
  const std::uint64_t a = run_counting();
  const std::uint64_t b = run_counting();
  EXPECT_EQ(a, b) << "warm EXPAND runs must have a stable allocation count";
  EXPECT_EQ(scratch.tables.slab_allocations(), slab_allocs)
      << "same-shape slab resets must be epoch bumps, not reallocations";
}

// Same property through the public driver (arena installed by
// connected_components): repeated runs on a warm process stay flat.
TEST_F(BackendInvariance, ArenaReuseAcrossKernelsIsStable) {
  util::set_parallel_backend(util::ParallelBackend::kPool);
  util::set_parallelism(2);
  RoundArena arena;
  RoundArena::Scope scope(arena);
  std::vector<std::uint64_t> data(8 * util::kSerialGrain);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = util::mix64(1, i) & 0xff;

  auto round = [&] {
    util::scratch_arena_round_reset();
    auto copy = data;  // hoisted-capacity stand-in (allocates; outside count)
    util::parallel_prefix_sum(copy);
    util::parallel_pack(copy, [](std::uint64_t x) { return (x & 1) == 0; });
    return copy.size();
  };
  // Two warm-up rounds: round one grows the arena, the reset at the top of
  // round two consolidates the growth into one block.
  const std::size_t r0 = round();
  EXPECT_EQ(round(), r0);
  const std::uint64_t blocks_after_warmup = arena.heap_block_allocations();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(round(), r0);
  // The arena reached its high-water mark in round one and never grew
  // again.
  EXPECT_EQ(arena.heap_block_allocations(), blocks_after_warmup);
  EXPECT_GT(arena.high_water_bytes(), 0u);
}

}  // namespace
}  // namespace logcc::core
