// Sketch-vs-exact differential harness: the same ~230-graph corpus as
// tests/test_differential_cc.cpp (every generator family x sizes x seeds,
// the structural zoo, a seeded G(n, m) sweep), each graph run through BOTH
// tiers:
//
//   exact    — the batch connected_components() path (whose correctness the
//              cc differential suite already pins against union-find), and
//   approx   — the one-pass sketch::StreamStats consuming the edge list as
//              a stream, plus serve::SketchedView built from the exact
//              ComponentIndex.
//
// What must hold on every graph:
//   * StreamStats labels are BITWISE the exact canonical labels (the
//     streaming union-find is exact; only edge-mass answers are sketched);
//   * the component-count HLL lands within its a-priori error bound;
//   * the size count-min never undershoots any component's true size and
//     overshoots by more than epsilon * n on at most a delta-ish fraction;
//   * cross-path bit-identity: StreamStats::finish and SketchedView::build
//     derive their label sketches from the same sub-seed streams, so given
//     the same labels + options their registers/counters are identical —
//     the streaming tier and the serving tier can never drift apart;
//   * a ConnectivityEngine fed the same edges batch-wise publishes a
//     SketchedView whose estimates agree with all of the above.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "serve/connectivity_engine.hpp"
#include "serve/sketched_view.hpp"
#include "sketch/stream_stats.hpp"
#include "test_support.hpp"
#include "util/random.hpp"

namespace logcc {
namespace {

struct Case {
  std::string name;
  graph::EdgeList el;
};

// The same corpus recipe as test_differential_cc.cpp: 12 families x 3
// sizes x 3 seeds + the zoo + 108 seeded G(n, m) draws.
std::vector<Case> corpus() {
  std::vector<Case> out;
  for (const std::string& family : graph::family_names()) {
    for (std::uint64_t n : {33ULL, 80ULL, 193ULL}) {
      for (std::uint64_t seed : {1ULL, 5ULL, 11ULL}) {
        Case c;
        c.name = family + ":" + std::to_string(n) + ":" + std::to_string(seed);
        c.el = graph::make_family(family, n, seed);
        out.push_back(std::move(c));
      }
    }
  }
  for (auto& [name, el] : logcc::testing::small_zoo())
    out.push_back({"zoo/" + name, el});
  for (std::uint64_t i = 0; i < 108; ++i) {
    const std::uint64_t n = 2 + util::mix64(0xD1FF, i, 0) % 180;
    const std::uint64_t m = util::mix64(0xD1FF, i, 1) % (3 * n);
    Case c;
    c.name = "gnm/" + std::to_string(n) + "x" + std::to_string(m) + "#" +
             std::to_string(i);
    c.el = graph::make_gnm(n, m, 977 + i);
    out.push_back(std::move(c));
  }
  return out;
}

TEST(DifferentialSketch, StreamingTierAgreesWithExactTierOnCorpus) {
  const auto cases = corpus();
  ASSERT_GE(cases.size(), 200u);
  for (const Case& c : cases) {
    // Exact tier.
    auto r = connected_components(graph::ArcsInput::from_edges(c.el),
                                  Algorithm::kFasterCC, {});
    auto index = std::make_shared<const core::ComponentIndex>(
        core::ComponentIndex::from_canonical_labels(r.labels()));

    // Approx tier, streaming path.
    sketch::StreamStats stats(c.el.n);
    for (const auto& e : c.el.edges) stats.add_edge(e.u, e.v);
    const auto summary = stats.finish();

    // The connectivity answers are exact and bitwise canonical.
    ASSERT_EQ(stats.labels(), index->labels()) << c.name;
    ASSERT_EQ(summary.exact_components, index->num_components()) << c.name;

    // The component-count estimate honours its error bar (5 sigma plus one
    // component of absolute slack for the tiny-count graphs).
    const auto exact = static_cast<double>(index->num_components());
    EXPECT_NEAR(summary.approx_components, exact,
                5.0 * summary.hll_standard_error * exact + 1.0)
        << c.name;

    // Size estimates: overestimate-only, bounded by epsilon * n.
    const auto& sizes = stats.size_cms();
    const double size_bound =
        sizes.epsilon() * static_cast<double>(sizes.total());
    std::uint64_t size_violations = 0;
    std::uint64_t roots = 0;
    for (graph::VertexId v = 0; v < c.el.n; ++v) {
      if (index->component_of(v) != v) continue;  // roots only
      ++roots;
      const std::uint64_t exact_size = index->component_size(v);
      const std::uint64_t est = sizes.estimate(v);
      ASSERT_GE(est, exact_size) << c.name << " root=" << v;
      if (static_cast<double>(est - exact_size) > size_bound)
        ++size_violations;
    }
    // delta = e^-depth per key; corpus graphs are small enough that even
    // one violation is ~2x the expectation, so threshold generously but
    // meaningfully: no more than 10% of roots (expected ~1.8%).
    EXPECT_LE(static_cast<double>(size_violations),
              0.1 * static_cast<double>(roots) + 1.0)
        << c.name;

    // Cross-path bit-identity with the serving tier: same labels + default
    // options => identical sketch state, streaming or snapshot built.
    const auto view = serve::SketchedView::build(index);
    ASSERT_EQ(stats.component_hll(), view.count_hll()) << c.name;
    ASSERT_EQ(stats.size_cms(), view.size_cms()) << c.name;
  }
}

TEST(DifferentialSketch, EngineSketchedViewMatchesStreamingTier) {
  // Feed a sample of corpus graphs batch-wise through a ConnectivityEngine
  // with the sketch tier enabled: the published view must be bit-identical
  // to the one built directly from its own snapshot, and its estimates
  // must agree with the streaming tier on the same edges.
  const auto cases = corpus();
  for (std::size_t i = 0; i < cases.size(); i += 23) {
    const Case& c = cases[i];
    serve::EngineOptions opts;
    opts.sketched_view = true;
    serve::ConnectivityEngine engine(c.el.n, opts);
    const std::span<const graph::Edge> all(c.el.edges);
    const std::size_t batch = all.size() / 3 + 1;
    for (std::size_t off = 0; off < all.size(); off += batch)
      engine.apply_batch(
          all.subspan(off, std::min(batch, all.size() - off)));

    const auto view = engine.sketched();
    ASSERT_NE(view, nullptr) << c.name;
    // Epoch consistency: the view pins the snapshot it was built from.
    ASSERT_EQ(view->index()->labels(), engine.snapshot()->labels()) << c.name;
    const auto rebuilt =
        serve::SketchedView::build(view->index(), opts.sketch_options);
    ASSERT_EQ(view->count_hll(), rebuilt.count_hll()) << c.name;
    ASSERT_EQ(view->size_cms(), rebuilt.size_cms()) << c.name;

    sketch::StreamStats stats(c.el.n);
    for (const auto& e : c.el.edges) stats.add_edge(e.u, e.v);
    stats.finish();
    ASSERT_EQ(stats.labels(), view->index()->labels()) << c.name;
    ASSERT_EQ(stats.component_hll(), view->count_hll()) << c.name;
    ASSERT_EQ(stats.size_cms(), view->size_cms()) << c.name;
    EXPECT_EQ(engine.approx_component_count(),
              view->approx_component_count())
        << c.name;
    if (c.el.n > 0)
      EXPECT_EQ(engine.approx_component_size(0),
                view->approx_component_size(0))
          << c.name;
  }
}

}  // namespace
}  // namespace logcc
