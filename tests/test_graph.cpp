#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace logcc::graph {
namespace {

TEST(EdgeList, CanonicalizeRemovesLoopsAndDuplicates) {
  EdgeList el;
  el.n = 4;
  el.add(0, 1);
  el.add(1, 0);  // duplicate reversed
  el.add(2, 2);  // loop
  el.add(1, 2);
  el.add(1, 2);  // duplicate
  el.canonicalize();
  EXPECT_EQ(el.edges.size(), 2u);
  for (const Edge& e : el.edges) {
    EXPECT_LE(e.u, e.v);
    EXPECT_NE(e.u, e.v);
  }
}

TEST(Graph, FromEdgesBasic) {
  EdgeList el;
  el.n = 4;
  el.add(0, 1);
  el.add(1, 2);
  Graph g = Graph::from_edges(el);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, NeighborsSorted) {
  EdgeList el;
  el.n = 5;
  el.add(2, 4);
  el.add(2, 0);
  el.add(2, 3);
  Graph g = Graph::from_edges(el);
  auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[2], 4u);
}

TEST(Graph, DedupOnBuild) {
  EdgeList el;
  el.n = 3;
  el.add(0, 1);
  el.add(1, 0);
  el.add(0, 0);
  Graph g = Graph::from_edges(el, /*dedup=*/true);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, KeepParallelWithoutDedup) {
  EdgeList el;
  el.n = 3;
  el.add(0, 1);
  el.add(0, 1);
  Graph g = Graph::from_edges(el, /*dedup=*/false);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, SelfLoopWithoutDedupCountsOnce) {
  EdgeList el;
  el.n = 2;
  el.add(1, 1);
  Graph g = Graph::from_edges(el, /*dedup=*/false);
  EXPECT_EQ(g.degree(1), 1u);  // one arc entry for the loop
}

TEST(Graph, ToEdgesRoundTrip) {
  EdgeList el;
  el.n = 6;
  el.add(0, 5);
  el.add(2, 3);
  el.add(1, 4);
  Graph g = Graph::from_edges(el);
  EdgeList back = g.to_edges();
  EXPECT_EQ(back.n, el.n);
  back.canonicalize();
  EdgeList expect = el;
  expect.canonicalize();
  EXPECT_EQ(back.edges.size(), expect.edges.size());
  for (std::size_t i = 0; i < back.edges.size(); ++i)
    EXPECT_EQ(back.edges[i], expect.edges[i]);
}

TEST(Graph, EmptyGraph) {
  EdgeList el;
  el.n = 0;
  Graph g = Graph::from_edges(el);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, IsolatedVertices) {
  EdgeList el;
  el.n = 10;
  el.add(0, 1);
  Graph g = Graph::from_edges(el);
  EXPECT_EQ(g.num_vertices(), 10u);
  for (VertexId v = 2; v < 10; ++v) EXPECT_EQ(g.degree(v), 0u);
}

}  // namespace
}  // namespace logcc::graph
