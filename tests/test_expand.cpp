#include "core/expand.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/labels.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"
#include "util/parallel.hpp"

namespace logcc::core {
namespace {

/// Expands a whole input graph with generous parameters (everything ongoing).
struct Harness {
  explicit Harness(const graph::EdgeList& el, ExpandParams p, RunStats* stats)
      : arcs(arcs_from_edges(el)), params(p) {
    drop_loops(arcs);
    for (std::uint64_t v = 0; v < el.n; ++v)
      ongoing.push_back(static_cast<VertexId>(v));
    engine = std::make_unique<ExpandEngine>(el.n, ongoing, arcs, params,
                                            stats ? *stats : local_stats);
    engine->run();
  }
  std::vector<Arc> arcs;
  std::vector<VertexId> ongoing;
  ExpandParams params;
  RunStats local_stats;
  std::unique_ptr<ExpandEngine> engine;
};

ExpandParams generous(std::uint64_t n) {
  ExpandParams p;
  p.block_count = 64 * n + 7;   // everyone owns a block w.h.p.
  p.table_capacity = static_cast<std::uint32_t>(16 * n + 3);  // no collisions
  p.seed = 12345;
  p.max_rounds = 32;
  return p;
}

TEST(Expand, LiveTableEqualsComponentBall) {
  // With no collisions and all blocks owned, every vertex stays live and
  // H(u) converges to u's entire component (Lemma B.7 at saturation).
  auto el = graph::make_path(17);
  Harness h(el, generous(el.n), nullptr);
  for (std::uint32_t s = 0; s < h.engine->num_slots(); ++s) {
    EXPECT_TRUE(h.engine->live_after(s));
    EXPECT_EQ(h.engine->table(s).count(), el.n) << "slot " << s;
  }
}

TEST(Expand, RadiusDoublesPerRound) {
  // On a path of length 2^k, reaching the whole component takes ~k rounds.
  auto el = graph::make_path(64);
  Harness h(el, generous(el.n), nullptr);
  EXPECT_LE(h.engine->rounds(), 10u);
  EXPECT_GE(h.engine->rounds(), 5u);  // needs ≥ log2(63) - 1 doublings
}

TEST(Expand, HistoryIsBallOfRadiusTwoToJ) {
  auto el = graph::make_path(33);
  ExpandParams p = generous(el.n);
  p.keep_history = true;
  Harness h(el, p, nullptr);
  graph::Graph g = graph::Graph::from_edges(el);
  // Check H_j(u) = B(u, 2^j) for a middle vertex while live (Lemma B.7).
  VertexId u = 16;
  std::uint32_t slot = h.engine->slot_of(u);
  for (std::uint32_t j = 0; j <= std::min(3u, h.engine->rounds()); ++j) {
    std::set<VertexId> expect;
    std::uint64_t radius = 1ULL << j;
    for (VertexId w = 0; w < el.n; ++w) {
      std::uint64_t dist = w > u ? w - u : u - w;
      if (dist <= radius) expect.insert(w);
    }
    auto items = h.engine->history(j, slot);
    std::set<VertexId> got(items.begin(), items.end());
    EXPECT_EQ(got, expect) << "round " << j;
  }
}

TEST(Expand, MultiComponentIsolation) {
  auto el = graph::disjoint_union({graph::make_path(8), graph::make_path(8)});
  Harness h(el, generous(el.n), nullptr);
  // Tables never leak across components.
  for (std::uint32_t s = 0; s < h.engine->num_slots(); ++s) {
    VertexId u = h.engine->vertex_of(s);
    h.engine->table(s).for_each([&](VertexId w) {
      EXPECT_EQ(w < 8, u < 8) << "component leak";
    });
  }
}

TEST(Expand, FullyDormantWithoutBlock) {
  auto el = graph::make_path(16);
  ExpandParams p = generous(el.n);
  p.block_count = 1;  // everyone hashes to the same block: nobody owns it
  Harness h(el, p, nullptr);
  for (std::uint32_t s = 0; s < h.engine->num_slots(); ++s) {
    EXPECT_TRUE(h.engine->fully_dormant(s));
    EXPECT_EQ(h.engine->dormant_round(s), 0u);
    EXPECT_EQ(h.engine->table(s).count(), 0u);
  }
}

TEST(Expand, TinyTablesCauseDormancyNotCrash) {
  auto el = graph::make_complete(16);  // degree 15 vs capacity 2
  ExpandParams p = generous(el.n);
  p.table_capacity = 2;
  RunStats stats;
  Harness h(el, p, &stats);
  std::uint32_t dormant = 0;
  for (std::uint32_t s = 0; s < h.engine->num_slots(); ++s)
    dormant += !h.engine->live_after(s);
  EXPECT_GT(dormant, 0u);
  EXPECT_GT(stats.hash_collisions, 0u);
}

TEST(Expand, DormantRoundMonotonicity) {
  // A vertex marked dormant in round j must have owned a block (else round
  // 0) and its dormant_round is fixed afterwards.
  auto el = graph::make_gnm(64, 160, 5);
  ExpandParams p = generous(el.n);
  p.table_capacity = 4;  // force some dormancy
  Harness h(el, p, nullptr);
  for (std::uint32_t s = 0; s < h.engine->num_slots(); ++s) {
    std::uint32_t dr = h.engine->dormant_round(s);
    if (dr == ExpandEngine::kNeverDormant) continue;
    EXPECT_LE(dr, h.engine->rounds());
    if (!h.engine->owns_block(s)) EXPECT_EQ(dr, 0u);
    // live_in_round consistency.
    if (h.engine->owns_block(s) && dr > 0)
      EXPECT_TRUE(h.engine->live_in_round(s, dr - 1));
    EXPECT_FALSE(h.engine->live_in_round(s, dr));
  }
}

TEST(Expand, SlotMappingBijective) {
  auto el = graph::make_cycle(20);
  Harness h(el, generous(el.n), nullptr);
  std::set<std::uint32_t> slots;
  for (VertexId v = 0; v < el.n; ++v) {
    std::uint32_t s = h.engine->slot_of(v);
    ASSERT_NE(s, ExpandEngine::kNoSlot);
    EXPECT_EQ(h.engine->vertex_of(s), v);
    EXPECT_TRUE(slots.insert(s).second);
  }
}

TEST(Expand, StatsAccumulateRounds) {
  auto el = graph::make_path(32);
  RunStats stats;
  Harness h(el, generous(el.n), &stats);
  EXPECT_EQ(stats.expand_rounds, h.engine->rounds());
  EXPECT_GT(stats.pram_steps, 0u);
}

TEST(ExpandDeath, HistoryRequiresFlag) {
  auto el = graph::make_path(4);
  Harness h(el, generous(el.n), nullptr);  // keep_history = false
  EXPECT_DEATH((void)h.engine->history(0, 0), "history");
}

TEST(Expand, HoistedScratchReusableAcrossEngines) {
  // Phase loops reuse one ExpandScratch across engines; the slot map must
  // come back all-kNoSlot after each engine dies, so a second engine over a
  // different ongoing set sees clean state.
  auto el = graph::make_gnm(256, 768, 3);
  ExpandParams p = generous(el.n);
  ExpandScratch scratch;
  RunStats stats;
  auto arcs = arcs_from_edges(el);
  drop_loops(arcs);
  std::vector<VertexId> evens, odds;
  for (VertexId v = 0; v < el.n; v += 2) evens.push_back(v);
  for (VertexId v = 1; v < el.n; v += 2) odds.push_back(v);
  {
    ExpandEngine e1(el.n, evens, arcs, p, stats, &scratch);
    e1.run();
    for (VertexId v : evens) EXPECT_EQ(e1.slot_of(v), v / 2);
  }
  ExpandEngine e2(el.n, odds, arcs, p, stats, &scratch);
  e2.run();
  for (VertexId v : odds) EXPECT_EQ(e2.slot_of(v), v / 2);
  for (VertexId v : evens) EXPECT_EQ(e2.slot_of(v), ExpandEngine::kNoSlot);
}

// ---- Determinism contract: tables, dormancy and stats are bit-identical
// for every thread count (mirrors tests/test_scan.cpp).

using logcc::testing::ThreadInvariance;

struct ExpandOutcome {
  std::vector<std::vector<VertexId>> cells;
  std::vector<std::uint32_t> dormant;
  std::vector<std::uint8_t> owns;
  std::uint32_t rounds = 0;
  std::uint64_t collisions = 0;
  friend bool operator==(const ExpandOutcome&, const ExpandOutcome&) = default;
};

ExpandOutcome run_expand(const graph::EdgeList& el, const ExpandParams& p,
                         int threads) {
  util::set_parallelism(threads);
  RunStats stats;
  Harness h(el, p, &stats);
  ExpandOutcome out;
  const std::uint32_t num = h.engine->num_slots();
  out.cells.resize(num);
  out.dormant.resize(num);
  out.owns.resize(num);
  for (std::uint32_t s = 0; s < num; ++s) {
    out.cells[s] = h.engine->table(s).cells();
    out.dormant[s] = h.engine->dormant_round(s);
    out.owns[s] = h.engine->owns_block(s) ? 1 : 0;
  }
  out.rounds = h.engine->rounds();
  out.collisions = stats.hash_collisions;
  return out;
}

TEST_F(ThreadInvariance, TablesAndDormancyIdentical) {
  // Large enough that every parallel path engages (occupancy partition,
  // segmented table fill, parallel doubling); tight tables force a live /
  // dormant mix so both vote branches downstream see invariant input.
  auto el = graph::make_gnm(20000, 60000, 31);
  ExpandParams p;
  p.block_count = 4 * el.n + 7;
  p.table_capacity = 8;
  p.seed = 99;
  p.max_rounds = 40;
  ExpandOutcome one = run_expand(el, p, 1);
  for (int threads : {2, 8}) {
    ExpandOutcome many = run_expand(el, p, threads);
    EXPECT_EQ(one, many) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace logcc::core
