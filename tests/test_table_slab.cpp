// TableSlab — the bucketized, cache-line-aligned backing store behind the
// EXPAND / EXPAND-MAXLINK per-vertex hash tables.
//
// Three layers of coverage:
//   1. the VertexTable unit cases (tests/test_hash_table.cpp) ported to a
//      one-table slab: the slab must expose exactly the same CRCW insert
//      semantics per cell;
//   2. a randomized differential test: 10k seeded fill sequences replayed
//      against both layouts, asserting bit-for-bit agreement on every
//      Insert outcome, count, collided flag, and final cell image — this
//      is the "collision semantics preserved" guarantee the determinism
//      contract rests on;
//   3. thread-invariance sweeps for the parallel in-bucket radix dedup
//      (core dedup_arcs and the LT ALTER path) at 1/2/4/8 lanes across the
//      pool / OpenMP / serial backends.
#include "core/table_slab.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/building_blocks.hpp"
#include "core/hash_table.hpp"
#include "baselines/lt_family.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/hashing.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace logcc::core {
namespace {

using logcc::testing::BackendInvariance;
using Insert = VertexTable::Insert;

// ---- 1. Ported VertexTable unit cases (single-table slab).

TEST(TableSlab, InsertNewAndPresent) {
  TableSlab s;
  s.reset_uniform(1, 4);
  EXPECT_EQ(s.insert_at(0, 2, 7), Insert::kNew);
  EXPECT_EQ(s.count(0), 1u);
  EXPECT_EQ(s.insert_at(0, 2, 7), Insert::kPresent);
  EXPECT_EQ(s.count(0), 1u);
  EXPECT_FALSE(s.collided(0));
}

TEST(TableSlab, CollisionDetected) {
  TableSlab s;
  s.reset_uniform(1, 4);
  s.insert_at(0, 1, 5);
  EXPECT_EQ(s.insert_at(0, 1, 6), Insert::kCollision);
  EXPECT_TRUE(s.collided(0));
  EXPECT_EQ(s.count(0), 1u);  // loser is not stored
}

TEST(TableSlab, CollisionKeepsFirstOccupant) {
  // CRCW semantics in our rendering: the first write wins, later different
  // writes are collisions; re-reading the cell shows the original value.
  TableSlab s;
  s.reset_uniform(1, 2);
  s.insert_at(0, 0, 9);
  s.insert_at(0, 0, 10);
  EXPECT_TRUE(s.contains_at(0, 0, 9));
  EXPECT_FALSE(s.contains_at(0, 0, 10));
}

TEST(TableSlab, ResetClearsEverything) {
  TableSlab s;
  s.reset_uniform(1, 2);
  s.insert_at(0, 0, 1);
  s.insert_at(0, 0, 2);  // collision
  s.reset_uniform(1, 8);
  EXPECT_EQ(s.capacity(0), 8u);
  EXPECT_EQ(s.count(0), 0u);
  EXPECT_FALSE(s.collided(0));
}

TEST(TableSlab, ItemsAndForEach) {
  TableSlab s;
  s.reset_uniform(1, 8);
  s.insert_at(0, 1, 11);
  s.insert_at(0, 5, 55);
  TableView view(&s, 0);
  auto items = view.items();
  ASSERT_EQ(items.size(), 2u);
  // Cell order, like VertexTable::items().
  EXPECT_EQ(items[0], 11u);
  EXPECT_EQ(items[1], 55u);
  std::uint32_t visits = 0;
  s.for_each(0, [&](graph::VertexId v) {
    EXPECT_TRUE(v == 11 || v == 55);
    ++visits;
  });
  EXPECT_EQ(visits, 2u);
}

TEST(TableSlab, ContainsAtBounds) {
  TableSlab s;
  s.reset_uniform(1, 2);
  EXPECT_FALSE(s.contains_at(0, 5, 1));  // out of range is just "no"
}

TEST(TableSlab, DedupByHashingMatchesPaperClaim) {
  // "Hashing naturally removes the duplicate neighbors": inserting the same
  // vertex many times through a hash function keeps one copy, no collision.
  TableSlab s;
  s.reset_uniform(1, 16);
  auto h = util::PairwiseHash::from_seed(3);
  for (int rep = 0; rep < 10; ++rep) {
    auto cell = static_cast<std::uint32_t>(h(42, s.capacity(0)));
    s.insert_at(0, cell, 42);
  }
  EXPECT_EQ(s.count(0), 1u);
  EXPECT_FALSE(s.collided(0));
}

// ---- Slab-specific behaviour the flat table never had.

TEST(TableSlab, EpochResetIsLogicallyEmptyWithoutRezero) {
  TableSlab s;
  s.reset_uniform(4, 8);
  for (std::uint32_t t = 0; t < 4; ++t) s.insert_at(t, 3, 100 + t);
  const std::uint64_t allocs = s.slab_allocations();
  s.reset_uniform(4, 8);  // same shape: epoch bump only
  EXPECT_EQ(s.slab_allocations(), allocs) << "same-shape reset must not grow";
  for (std::uint32_t t = 0; t < 4; ++t) {
    EXPECT_EQ(s.count(t), 0u);
    EXPECT_FALSE(s.contains_at(t, 3, 100 + t)) << "stale word leaked";
    std::uint32_t visits = 0;
    s.for_each(t, [&](graph::VertexId) { ++visits; });
    EXPECT_EQ(visits, 0u);
  }
  // The emptied table accepts the same fills again.
  EXPECT_EQ(s.insert_at(2, 3, 9), Insert::kNew);
  EXPECT_TRUE(s.contains_at(2, 3, 9));
}

TEST(TableSlab, VariableCapacitiesIncludingAbsentTables) {
  TableSlab s;
  const std::vector<std::uint32_t> caps = {4, 0, 16, 1, 0, 7};
  s.reset_variable(caps);
  ASSERT_EQ(s.num_tables(), caps.size());
  for (std::size_t t = 0; t < caps.size(); ++t) {
    EXPECT_EQ(s.capacity(static_cast<std::uint32_t>(t)), caps[t]);
    EXPECT_EQ(s.count(static_cast<std::uint32_t>(t)), 0u);
  }
  // Absent tables answer every query as empty.
  EXPECT_FALSE(s.contains_at(1, 0, 5));
  s.insert_at(2, 9, 77);
  s.insert_at(5, 6, 66);
  EXPECT_TRUE(s.contains_at(2, 9, 77));
  EXPECT_TRUE(s.contains_at(5, 6, 66));
  EXPECT_EQ(s.count(2), 1u);
  EXPECT_EQ(s.count(5), 1u);
}

TEST(TableSlab, SnapshotIteratesInCellOrder) {
  TableSlab s;
  s.reset_uniform(3, 8);
  s.insert_at(1, 6, 60);
  s.insert_at(1, 2, 20);
  s.insert_at(2, 0, 5);
  std::vector<std::uint64_t> snap;
  s.snapshot_into(snap);
  // Mutate the live table after the snapshot: the snapshot must not move.
  s.insert_at(1, 4, 40);
  std::vector<graph::VertexId> seen;
  s.for_each_in(snap, 1, [&](graph::VertexId v) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 20u);  // cell order
  EXPECT_EQ(seen[1], 60u);
  seen.clear();
  s.for_each_in(snap, 0, [&](graph::VertexId v) { seen.push_back(v); });
  EXPECT_TRUE(seen.empty());
}

// ---- 2. Randomized differential: slab vs flat table, bit for bit.
//
// 10k seeded fill sequences over mixed shapes. Every operation's outcome
// must agree between the layouts — Insert result, running count, collided
// flag — and the final cell images must be identical.

TEST(TableSlabDifferential, MatchesVertexTableOver10kSeededSequences) {
  constexpr int kSequences = 10000;
  for (int seq = 0; seq < kSequences; ++seq) {
    const std::uint64_t seed = util::mix64(0xd1f, seq);
    // Capacity 1..32 exercises sub-line power-of-two strides and multi-line
    // buckets alike.
    const auto cap =
        static_cast<std::uint32_t>(1 + util::mix64(seed, 1) % 32);
    const auto ops = static_cast<std::uint32_t>(1 + util::mix64(seed, 2) % 48);
    VertexTable flat(cap);
    TableSlab slab;
    slab.reset_uniform(1, cap);
    for (std::uint32_t i = 0; i < ops; ++i) {
      const auto cell =
          static_cast<std::uint32_t>(util::mix64(seed, 3 + 2 * i) % cap);
      // Small vertex range so kPresent and kCollision both occur often.
      const auto w = static_cast<graph::VertexId>(
          util::mix64(seed, 4 + 2 * i) % (cap + 3));
      ASSERT_EQ(slab.insert_at(0, cell, w), flat.insert_at(cell, w))
          << "seq " << seq << " op " << i;
      ASSERT_EQ(slab.count(0), flat.count()) << "seq " << seq << " op " << i;
      ASSERT_EQ(slab.collided(0), flat.collided())
          << "seq " << seq << " op " << i;
    }
    ASSERT_EQ(slab.cells(0), flat.cells()) << "seq " << seq;
    ASSERT_EQ(TableView(&slab, 0).items(), flat.items()) << "seq " << seq;
  }
}

// ---- VertexTable generation-stamp reset (the O(1) same-capacity path).

TEST(VertexTableEpochReset, SameCapacityResetEmptiesLogically) {
  VertexTable t(16);
  t.insert_at(3, 30);
  t.insert_at(3, 31);  // collision
  for (int gen = 0; gen < 100; ++gen) {
    t.reset(16);
    EXPECT_EQ(t.count(), 0u);
    EXPECT_FALSE(t.collided());
    EXPECT_FALSE(t.contains_at(3, 30)) << "stale cell after reset " << gen;
    EXPECT_TRUE(t.items().empty());
    EXPECT_EQ(t.insert_at(3, static_cast<graph::VertexId>(gen)), Insert::kNew);
    EXPECT_TRUE(t.contains_at(3, static_cast<graph::VertexId>(gen)));
  }
  t.reset(8);  // shrink: full re-stamp path
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.count(), 0u);
}

// ---- 3. Thread-invariance sweeps for the parallel in-bucket radix sort.
//
// dedup_arcs (core bucketed path) and the LT-family ALTER dedup both pick
// comparison vs radix per bucket by size alone; the sweeps assert the
// output is byte-identical at 1/2/4/8 lanes across every backend.

std::vector<Arc> make_dup_heavy_arcs(std::uint64_t n, std::uint64_t seed) {
  // 6n arcs over n vertices with forced duplicates and varied orig ids —
  // large enough for the bucketed path and for many buckets to cross
  // kRadixSortCutoff.
  auto el = graph::make_gnm(n, 2 * n, seed);
  auto half = arcs_from_edges(el);
  std::vector<Arc> arcs = half;
  arcs.insert(arcs.end(), half.rbegin(), half.rend());
  arcs.insert(arcs.end(), half.begin(), half.end());
  return arcs;
}

TEST_F(BackendInvariance, DedupRadixThreadInvariantAcrossBackends) {
  const auto base = make_dup_heavy_arcs(1 << 15, 11);
  auto reference = base;
  {
    util::set_parallel_backend(util::ParallelBackend::kSerial);
    dedup_arcs(reference);
  }
  ASSERT_FALSE(reference.empty());
  for (util::ParallelBackend backend :
       {util::ParallelBackend::kPool, util::ParallelBackend::kOpenMP,
        util::ParallelBackend::kSerial}) {
    util::set_parallel_backend(backend);
    for (int threads : {1, 2, 4, 8}) {
      util::set_parallelism(threads);
      auto arcs = base;
      dedup_arcs(arcs);
      ASSERT_EQ(arcs.size(), reference.size())
          << util::parallel_backend_name() << " @ " << threads;
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        ASSERT_EQ(arcs[i].u, reference[i].u)
            << util::parallel_backend_name() << " @ " << threads << " i=" << i;
        ASSERT_EQ(arcs[i].v, reference[i].v)
            << util::parallel_backend_name() << " @ " << threads << " i=" << i;
        ASSERT_EQ(arcs[i].orig, reference[i].orig)
            << util::parallel_backend_name() << " @ " << threads << " i=" << i;
      }
    }
  }
}

TEST_F(BackendInvariance, LtAlterDedupThreadInvariantAcrossBackends) {
  // A graph whose ALTER rounds produce edge lists above the bucketed-dedup
  // cutoff, so the radix path engages. Labels must be bit-identical for
  // every (backend, threads) pair.
  const auto el = graph::make_gnm(1 << 14, 1 << 16, 23);
  const baselines::LtVariant variant{baselines::LtConnect::kExtended,
                                     baselines::LtShortcut::kSingle, true};
  std::vector<graph::VertexId> reference;
  for (util::ParallelBackend backend :
       {util::ParallelBackend::kSerial, util::ParallelBackend::kPool,
        util::ParallelBackend::kOpenMP}) {
    util::set_parallel_backend(backend);
    for (int threads : {1, 2, 4, 8}) {
      util::set_parallelism(threads);
      auto result = baselines::liu_tarjan_variant(el, variant);
      if (reference.empty()) {
        reference = result.labels;
        ASSERT_TRUE(logcc::testing::matches_oracle(el, reference));
      } else {
        ASSERT_EQ(result.labels, reference)
            << util::parallel_backend_name() << " @ " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace logcc::core
