// Property sweep: every algorithm × every graph family × several sizes and
// seeds must induce exactly the oracle partition. This is the library's main
// correctness safety net (hundreds of cases via TEST_P).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/connectivity.hpp"
#include "graph/arcs_input.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc {
namespace {

using Param = std::tuple<std::string /*family*/, std::uint64_t /*n*/,
                         std::uint64_t /*seed*/, Algorithm>;

class CcProperty : public ::testing::TestWithParam<Param> {};

TEST_P(CcProperty, MatchesOracle) {
  const auto& [family, n, seed, algorithm] = GetParam();
  graph::EdgeList el = graph::make_family(family, n, seed);
  Options opt;
  opt.seed = seed * 7919 + 13;
  auto r = connected_components(graph::ArcsInput::from_edges(el), algorithm,
                                opt);
  EXPECT_TRUE(logcc::testing::matches_oracle(el, r.labels()))
      << family << " n=" << n << " seed=" << seed << " alg="
      << to_string(algorithm);
  EXPECT_EQ(r.num_components(),
            graph::count_components(logcc::testing::oracle_labels(el)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcProperty,
    ::testing::Combine(
        ::testing::Values("path", "cycle", "star", "grid", "tree", "gnm2",
                          "rmat", "caterpillar", "lollipop"),
        ::testing::Values<std::uint64_t>(33, 257),
        ::testing::Values<std::uint64_t>(1, 2, 3),
        ::testing::Values(Algorithm::kFasterCC, Algorithm::kTheorem1,
                          Algorithm::kVanilla, Algorithm::kShiloachVishkin,
                          Algorithm::kAwerbuchShiloach, Algorithm::kLabelProp,
                          Algorithm::kLiuTarjan, Algorithm::kUnionFind)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param);
      name += "_n" + std::to_string(std::get<1>(info.param));
      name += "_s" + std::to_string(std::get<2>(info.param));
      name += std::string("_") + to_string(std::get<3>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// Paper-policy sweep (smaller: paper constants degenerate but must stay
// correct).
class CcPaperPolicy : public ::testing::TestWithParam<std::string> {};

TEST_P(CcPaperPolicy, MatchesOracle) {
  graph::EdgeList el = graph::make_family(GetParam(), 128, 5);
  Options opt;
  opt.policy = core::ParamPolicy::Kind::kPaper;
  auto r = connected_components(graph::ArcsInput::from_edges(el),
                                Algorithm::kFasterCC, opt);
  EXPECT_TRUE(logcc::testing::matches_oracle(el, r.labels())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Families, CcPaperPolicy,
                         ::testing::Values("path", "star", "gnm2", "rmat",
                                           "grid"));

// CRCW-independence: the partition must not depend on the seed that drives
// every "arbitrary write wins" choice.
class CcSeedIndependence
    : public ::testing::TestWithParam<std::tuple<std::string, Algorithm>> {};

TEST_P(CcSeedIndependence, PartitionStableAcrossSeeds) {
  const auto& [family, algorithm] = GetParam();
  graph::EdgeList el = graph::make_family(family, 200, 4);
  const auto in = graph::ArcsInput::from_edges(el);
  Options opt;
  opt.seed = 1;
  auto ref = connected_components(in, algorithm, opt);
  for (std::uint64_t seed : {2ULL, 77ULL, 4099ULL}) {
    opt.seed = seed;
    auto r = connected_components(in, algorithm, opt);
    EXPECT_TRUE(graph::same_partition(ref.labels(), r.labels()))
        << family << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcSeedIndependence,
    ::testing::Combine(::testing::Values("path", "gnm2", "rmat"),
                       ::testing::Values(Algorithm::kFasterCC,
                                         Algorithm::kTheorem1,
                                         Algorithm::kVanilla)));

// CSR-native determinism: for EVERY algorithm, running over a CSR-backed
// ArcsInput must produce labels bit-identical to the EdgeList path on the
// same canonical edge order, under every thread count (1/2/4/8). This is
// the zero-copy contract — arcs_from_input(csr) is elementwise
// arcs_from_edges(edge_list_from_csr(csr)), so nothing downstream can
// diverge — pinned here as a label-fingerprint equality per thread count
// plus exact equality across thread counts.
class CsrNativeBitIdentity
    : public logcc::testing::ThreadInvariance,
      public ::testing::WithParamInterface<std::tuple<std::string, Algorithm>> {
};

TEST_P(CsrNativeBitIdentity, MatchesEdgeListPathAcrossThreadCounts) {
  const auto& [family, algorithm] = GetParam();
  const graph::EdgeList el = graph::make_family(family, 257, 9);
  const graph::Graph g = graph::Graph::from_edges(el, /*dedup=*/false);
  const graph::CsrView view = csr_view(g);
  const graph::ArcsInput csr_in = graph::ArcsInput::from_csr(view);
  const graph::EdgeList canon = graph::edge_list_from_csr(view);
  Options opt;
  opt.seed = 1303;

  std::vector<graph::VertexId> reference;
  for (int threads : {1, 2, 4, 8}) {
    util::set_parallelism(threads);
    const auto via_csr = connected_components(csr_in, algorithm, opt);
    const auto via_el = connected_components(canon, algorithm, opt);
    ASSERT_EQ(via_csr.labels(), via_el.labels())
        << family << " alg=" << to_string(algorithm) << " threads=" << threads
        << ": CSR-native labels diverge from the EdgeList path";
    if (reference.empty())
      reference = via_csr.labels();
    else
      ASSERT_EQ(via_csr.labels(), reference)
          << family << " alg=" << to_string(algorithm)
          << ": labels changed between thread counts (threads=" << threads
          << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CsrNativeBitIdentity,
    ::testing::Combine(
        ::testing::Values("path", "grid", "gnm2", "rmat", "lollipop"),
        ::testing::Values(Algorithm::kFasterCC, Algorithm::kTheorem1,
                          Algorithm::kVanilla, Algorithm::kShiloachVishkin,
                          Algorithm::kAwerbuchShiloach, Algorithm::kLabelProp,
                          Algorithm::kLiuTarjan, Algorithm::kUnionFind,
                          Algorithm::kBFS)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, Algorithm>>&
           info) {
      std::string name = std::get<0>(info.param);
      name += std::string("_") + to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace logcc
