#include "core/expand_maxlink.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"
#include "util/parallel.hpp"

namespace logcc::core {
namespace {

struct MlHarness {
  explicit MlHarness(const graph::EdgeList& el, std::uint64_t seed = 7) {
    arcs = arcs_from_edges(el);
    exists.assign(el.n, 1);
    policy = ParamPolicy::practical(el.n, std::max<std::uint64_t>(el.edges.size(), 1));
    engine = std::make_unique<ExpandMaxlink>(el.n, arcs, exists, policy, seed,
                                             stats);
  }
  std::vector<Arc> arcs;
  std::vector<std::uint8_t> exists;
  ParamPolicy policy;
  RunStats stats;
  std::unique_ptr<ExpandMaxlink> engine;
};

TEST(ExpandMaxlink, LevelInvariantHoldsEveryRound) {
  auto el = graph::make_gnm(128, 384, 5);
  MlHarness h(el);
  for (int r = 0; r < 20; ++r) {
    bool done = h.engine->round();
    EXPECT_TRUE(level_invariant_holds(h.engine->forest(), h.engine->levels()))
        << "round " << r;
    EXPECT_TRUE(h.engine->forest().acyclic()) << "round " << r;
    if (done) break;
  }
}

TEST(ExpandMaxlink, BreaksOnPathInLogDRounds) {
  auto el = graph::make_path(256);
  MlHarness h(el);
  std::uint64_t rounds = 0;
  bool done = false;
  while (!done && rounds < 200) {
    done = h.engine->round();
    ++rounds;
  }
  EXPECT_TRUE(done) << "EXPAND-MAXLINK never reached its break condition";
  // log2(255) = 8; allow a generous constant for level churn.
  EXPECT_LE(rounds, 64u);
}

TEST(ExpandMaxlink, BreakConditionImpliesDiameterOne) {
  auto el = graph::make_grid(8, 8);
  MlHarness h(el);
  bool done = false;
  for (int r = 0; r < 200 && !done; ++r) done = h.engine->round();
  ASSERT_TRUE(done);
  EXPECT_TRUE(h.engine->forest().all_flat());
  // Every remaining non-loop arc must connect two roots in the same
  // component at distance 1 — i.e. the remaining graph is a clique-ish
  // diameter-≤1 graph per component. Check: arcs only connect roots.
  for (const Arc& a : h.engine->remaining_arcs()) {
    EXPECT_TRUE(h.engine->forest().is_root(a.u));
    EXPECT_TRUE(h.engine->forest().is_root(a.v));
  }
}

TEST(ExpandMaxlink, PreservesComponentPartition) {
  auto el = graph::disjoint_union(
      {graph::make_path(40), graph::make_cycle(33), graph::make_star(21)});
  MlHarness h(el);
  bool done = false;
  for (int r = 0; r < 300 && !done; ++r) done = h.engine->round();
  ASSERT_TRUE(done);
  // No tree spans two components; every root's tree stays within one
  // original component.
  auto oracle = graph::bfs_components(graph::Graph::from_edges(el));
  auto labels = h.engine->forest().root_labels();
  for (std::uint64_t v = 0; v < el.n; ++v)
    for (std::uint64_t w = v + 1; w < el.n; ++w)
      if (labels[v] == labels[w]) EXPECT_EQ(oracle[v], oracle[w]);
}

TEST(ExpandMaxlink, LevelsStayBelowSaturationPlusSlack) {
  // Lemma 3.19 analogue: levels are bounded by the saturation level plus a
  // small constant (collision-forced raises at the cap).
  auto el = graph::make_gnm(256, 1024, 9);
  MlHarness h(el);
  bool done = false;
  for (int r = 0; r < 300 && !done; ++r) done = h.engine->round();
  std::uint32_t sat = h.policy.saturation_level();
  EXPECT_LE(h.stats.max_level, sat + 12);
}

TEST(ExpandMaxlink, BudgetsFollowLevels) {
  auto el = graph::make_gnm(128, 512, 3);
  MlHarness h(el);
  for (int r = 0; r < 10; ++r) {
    bool done = h.engine->round();
    const auto& levels = h.engine->levels();
    const auto& budgets = h.engine->budgets();
    for (std::uint64_t v = 0; v < el.n; ++v) {
      if (!h.engine->forest().is_root(static_cast<VertexId>(v))) continue;
      if (levels[v] == 0) continue;
      EXPECT_EQ(budgets[v], h.policy.budget_for_level(levels[v]))
          << "root " << v;
    }
    if (done) break;
  }
}

TEST(ExpandMaxlink, GhostVerticesUntouched) {
  auto el = graph::make_path(10);
  std::vector<Arc> arcs = arcs_from_edges(el);
  std::vector<std::uint8_t> exists(el.n, 1);
  exists[9] = 0;  // pretend 9 is a compaction ghost (and drop its arc)
  arcs.pop_back();
  ParamPolicy policy = ParamPolicy::practical(el.n, el.edges.size());
  RunStats stats;
  ExpandMaxlink engine(el.n, arcs, exists, policy, 3, stats);
  for (int r = 0; r < 50; ++r)
    if (engine.round()) break;
  EXPECT_EQ(engine.levels()[9], 0u);
  EXPECT_EQ(engine.budgets()[9], 0u);
  EXPECT_TRUE(engine.forest().is_root(9));
}

TEST(ExpandMaxlink, SpaceLedgerBounded) {
  auto el = graph::make_gnm(512, 2048, 13);
  MlHarness h(el);
  bool done = false;
  for (int r = 0; r < 300 && !done; ++r) done = h.engine->round();
  // O(m) with a practical constant: blocks + arcs + added edges.
  EXPECT_LE(h.stats.peak_space_words, 512 * el.edges.size());
}

TEST(ExpandMaxlink, TraceRecordsPerRoundAggregates) {
  auto el = graph::make_path(512);
  MlHarness h(el);
  h.engine->enable_trace();
  bool done = false;
  for (int r = 0; r < 100 && !done; ++r) done = h.engine->round();
  ASSERT_TRUE(done);
  const auto& trace = h.engine->trace();
  ASSERT_EQ(trace.size(), h.engine->rounds_run());
  // Rounds are numbered consecutively; roots never increase.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].round, i + 1);
    if (i > 0) EXPECT_LE(trace[i].roots, trace[i - 1].roots);
    EXPECT_LE(trace[i].active_roots, trace[i].roots);
  }
  // The break condition may leave distance-1 remnants (equal-level adjacent
  // roots whose raise coins all missed) — those go to the Theorem-1
  // postprocess — but the final trace row must agree with the engine's
  // remaining graph: active_roots counts exactly the roots that still have
  // a non-loop arc.
  std::set<VertexId> active_now;
  for (const Arc& a : h.engine->remaining_arcs()) {
    if (a.u == a.v) continue;
    active_now.insert(a.u);
    active_now.insert(a.v);
  }
  EXPECT_EQ(trace.back().active_roots, active_now.size());
  for (VertexId v : active_now)
    EXPECT_TRUE(h.engine->forest().is_root(v));
  EXPECT_GE(trace.front().raises + trace.front().collisions, 1u);
}

TEST(ExpandMaxlink, TraceOffByDefault) {
  auto el = graph::make_path(16);
  MlHarness h(el);
  h.engine->round();
  EXPECT_TRUE(h.engine->trace().empty());
}

TEST(ExpandMaxlink, RoundCounterAdvances) {
  auto el = graph::make_cycle(16);
  MlHarness h(el);
  h.engine->round();
  h.engine->round();
  EXPECT_EQ(h.engine->rounds_run(), 2u);
  EXPECT_EQ(h.stats.rounds, 2u);
}

// ---- Determinism contract: the whole round loop — forest, levels,
// budgets, remaining arcs and the stats ledger — is bit-identical for
// every thread count (mirrors tests/test_scan.cpp).

using logcc::testing::ThreadInvariance;

struct MlOutcome {
  std::vector<VertexId> parents;
  std::vector<std::uint32_t> levels;
  std::vector<std::uint64_t> budgets;
  std::vector<Arc> remaining;
  std::uint64_t rounds = 0;
  std::uint64_t collisions = 0;
  std::uint64_t raises = 0;
  friend bool operator==(const MlOutcome&, const MlOutcome&) = default;
};

MlOutcome run_maxlink(const graph::EdgeList& el, int threads) {
  util::set_parallelism(threads);
  MlHarness h(el, 5);
  bool done = false;
  for (int r = 0; r < 300 && !done; ++r) done = h.engine->round();
  EXPECT_TRUE(done);
  MlOutcome out;
  out.parents = h.engine->forest().raw();
  out.levels = h.engine->levels();
  out.budgets = h.engine->budgets();
  out.remaining = h.engine->remaining_arcs();
  out.rounds = h.engine->rounds_run();
  out.collisions = h.stats.hash_collisions;
  out.raises = h.stats.level_raises;
  return out;
}

TEST_F(ThreadInvariance, RoundLoopIdenticalAcrossThreads) {
  // Big enough that the packed fetch-max MAXLINK, the grouped table fills
  // and the bucketed dedup all take their parallel paths.
  auto el = graph::make_gnm(20000, 60000, 17);
  MlOutcome one = run_maxlink(el, 1);
  for (int threads : {2, 8}) {
    MlOutcome many = run_maxlink(el, threads);
    EXPECT_EQ(one, many) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace logcc::core
