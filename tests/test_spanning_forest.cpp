#include "core/spanning_forest.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc::core {
namespace {

void expect_valid_forest(const graph::EdgeList& el, const SfResult& r,
                         const std::string& name) {
  auto check = graph::validate_spanning_forest(el, r.forest_edges);
  EXPECT_TRUE(check.ok) << name << ": " << check.error;
}

TEST(Theorem2, Zoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = theorem2_sf(el);
    expect_valid_forest(el, r, name);
  }
}

TEST(Theorem2, ForestEdgeCountEqualsNMinusComponents) {
  auto el = graph::disjoint_union(
      {graph::make_gnm(100, 260, 4), graph::make_cycle(30),
       graph::make_star(20)});
  auto r = theorem2_sf(el);
  auto oracle = logcc::testing::oracle_labels(el);
  EXPECT_EQ(r.forest_edges.size(), el.n - graph::count_components(oracle));
}

TEST(Theorem2, ForestEdgesAreInputEdges) {
  auto el = graph::make_gnm(120, 400, 6);
  auto r = theorem2_sf(el);
  for (std::uint64_t idx : r.forest_edges) ASSERT_LT(idx, el.edges.size());
}

TEST(Theorem2, SeedsAllValid) {
  auto el = graph::make_gnm(150, 500, 8);
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL, 12345ULL}) {
    SpanningForestParams p;
    p.seed = seed;
    auto r = theorem2_sf(el, p);
    expect_valid_forest(el, r, "seed " + std::to_string(seed));
  }
}

TEST(Theorem2, DensePathMixture) {
  // Dense core + long tail: stresses both the leader election and the
  // β-layer linking along the tail.
  auto el = graph::make_lollipop(64, 200);
  auto r = theorem2_sf(el);
  expect_valid_forest(el, r, "lollipop");
  EXPECT_EQ(r.forest_edges.size(), el.n - 1);
}

TEST(Theorem2, SparseUsesForestPrepare) {
  auto el = graph::make_path(1500);
  auto r = theorem2_sf(el);
  EXPECT_TRUE(r.stats.prepare_used);
  expect_valid_forest(el, r, "path");
}

TEST(Theorem2, ForcedFinisherStillValid) {
  SpanningForestParams p;
  p.max_phases = 1;
  p.prepare_max_phases = 0;  // no help from FOREST-PREPARE either
  auto el = graph::make_grid(20, 20);
  auto r = theorem2_sf(el, p);
  EXPECT_TRUE(r.stats.finisher_used);
  expect_valid_forest(el, r, "grid under finisher");
}

TEST(Theorem2, PhaseCountTracksTheorem1) {
  // Same asymptotics as Theorem 1 (the paper's point): phases stay small on
  // a dense low-diameter graph.
  auto el = graph::make_gnm(256, 8192, 10);
  auto r = theorem2_sf(el);
  EXPECT_LE(r.stats.phases, 10u);
}

TEST(Theorem2, EdgelessGraph) {
  graph::EdgeList el;
  el.n = 9;
  auto r = theorem2_sf(el);
  EXPECT_TRUE(r.forest_edges.empty());
}

TEST(Theorem2, SingleEdge) {
  graph::EdgeList el;
  el.n = 2;
  el.add(0, 1);
  auto r = theorem2_sf(el);
  ASSERT_EQ(r.forest_edges.size(), 1u);
  EXPECT_EQ(r.forest_edges[0], 0u);
}

TEST(Theorem2, ParallelEdgesPickOne) {
  graph::EdgeList el;
  el.n = 2;
  el.add(0, 1);
  el.add(0, 1);
  el.add(1, 0);
  auto r = theorem2_sf(el);
  EXPECT_EQ(r.forest_edges.size(), 1u);
}

// ---- Determinism contract: the parallel TREE-LINK (fetch-min link choice,
// idempotent leader-neighbour marks) must pick the same forest edges for
// every thread count (mirrors tests/test_scan.cpp).

using logcc::testing::ThreadInvariance;

TEST_F(ThreadInvariance, ForestEdgesIdenticalAcrossThreads) {
  auto el = graph::make_gnm(20000, 60000, 41);
  util::set_parallelism(1);
  auto one = theorem2_sf(el);
  expect_valid_forest(el, one, "threads=1");
  for (int threads : {2, 8}) {
    util::set_parallelism(threads);
    auto many = theorem2_sf(el);
    EXPECT_EQ(one.forest_edges, many.forest_edges) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace logcc::core
