#include "core/compact.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"
#include "util/random.hpp"

namespace logcc::core {
namespace {

TEST(ApproxCompactionVec, InjectiveIntoTwoK) {
  std::vector<std::uint8_t> flags(100, 0);
  std::size_t k = 0;
  for (std::size_t i = 0; i < 100; i += 2) {
    flags[i] = 1;
    ++k;
  }
  auto slots = approximate_compaction_vec(flags, 5);
  ASSERT_TRUE(slots.has_value());
  std::set<std::uint32_t> used;
  for (std::size_t i = 0; i < 100; ++i) {
    if (flags[i]) {
      EXPECT_LT((*slots)[i], 2 * k);
      EXPECT_TRUE(used.insert((*slots)[i]).second);
    } else {
      EXPECT_EQ((*slots)[i], static_cast<std::uint32_t>(-1));
    }
  }
}

TEST(ApproxCompactionVec, AllFlagged) {
  std::vector<std::uint8_t> flags(257, 1);
  auto slots = approximate_compaction_vec(flags, 3);
  ASSERT_TRUE(slots.has_value());
  std::set<std::uint32_t> used(slots->begin(), slots->end());
  EXPECT_EQ(used.size(), 257u);
}

TEST(ApproxCompactionVec, EmptyFlags) {
  std::vector<std::uint8_t> flags(10, 0);
  auto slots = approximate_compaction_vec(flags, 1);
  ASSERT_TRUE(slots.has_value());
}

TEST(ApproxCompactionVec, ZeroRoundsFails) {
  std::vector<std::uint8_t> flags(4, 1);
  EXPECT_FALSE(approximate_compaction_vec(flags, 1, 0).has_value());
}

TEST(Compact, RenamesOngoingBijectively) {
  auto el = graph::make_gnm(200, 500, 9);
  CompactParams cp;
  cp.seed = 3;
  cp.target_density = 1.0;  // skip PREPARE: everything stays ongoing
  auto r = compact(el, cp);
  EXPECT_FALSE(r.stats.prepare_used);
  // Every vertex with an edge must be renamed, bijectively.
  std::set<std::uint32_t> cids;
  std::uint64_t renamed = 0;
  for (std::uint64_t v = 0; v < el.n; ++v) {
    if (r.renamed_of[v] == CompactResult::kInvalid) continue;
    ++renamed;
    EXPECT_TRUE(cids.insert(r.renamed_of[v]).second);
    EXPECT_EQ(r.orig_of[r.renamed_of[v]], v);
    EXPECT_TRUE(r.exists[r.renamed_of[v]]);
  }
  EXPECT_EQ(r.n_compact, 2 * renamed);
  // Arcs faithfully relabeled.
  EXPECT_EQ(r.arcs.size(), el.edges.size());
}

TEST(Compact, PrepareShrinksOngoing) {
  // A sparse path forces PREPARE; afterwards the compact graph must be
  // smaller than the input and preserve the component structure end to end.
  auto el = graph::make_path(512);
  CompactParams cp;
  cp.seed = 11;
  cp.target_density = 8.0;
  auto r = compact(el, cp);
  EXPECT_TRUE(r.stats.prepare_used);
  EXPECT_GT(r.stats.prepare_phases, 0u);
  EXPECT_EQ(r.stats.phases, 0u);  // densification is not theorem-loop work
  std::uint64_t ongoing = r.n_compact / 2;
  EXPECT_LT(ongoing, el.n / 4);  // 512/8 survivors at target density 8
  EXPECT_TRUE(r.outer.acyclic());
}

TEST(Compact, SolvedGraphYieldsEmptyCompact) {
  auto el = graph::make_star(64);  // Vanilla solves a star almost instantly
  CompactParams cp;
  cp.seed = 2;
  cp.target_density = 1e9;       // never reached ...
  cp.prepare_max_phases = 4096;  // ... so PREPARE runs to completion
  auto r = compact(el, cp);
  EXPECT_EQ(r.n_compact, 0u);
  // The outer forest alone already answers the query.
  r.outer.flatten();
  EXPECT_TRUE(logcc::testing::matches_oracle(el, r.outer.root_labels()));
}

TEST(Compact, ArcsConnectRenamedRoots) {
  auto el = graph::make_cycle(100);
  CompactParams cp;
  cp.seed = 4;
  cp.target_density = 4.0;
  auto r = compact(el, cp);
  for (const Arc& a : r.arcs) {
    ASSERT_LT(a.u, r.n_compact);
    ASSERT_LT(a.v, r.n_compact);
    EXPECT_TRUE(r.exists[a.u]);
    EXPECT_TRUE(r.exists[a.v]);
  }
}

TEST(ApproxCompactionVec, LargeInputInjectiveAndDeterministic) {
  // Crosses the parallel grain (>= 4096 items) so the fetch-min contention
  // and the claim pass run multi-threaded — this is the input class the
  // TSan CI job race-checks.
  std::vector<std::uint8_t> flags(40000, 0);
  for (std::size_t i = 0; i < flags.size(); ++i)
    flags[i] = util::mix64(3, i) % 3 != 0;
  auto a = approximate_compaction_vec(flags, 99);
  ASSERT_TRUE(a.has_value());
  std::set<std::uint32_t> used;
  std::uint64_t k = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (!flags[i]) {
      EXPECT_EQ((*a)[i], static_cast<std::uint32_t>(-1));
      continue;
    }
    ++k;
    EXPECT_TRUE(used.insert((*a)[i]).second) << "slot reused";
  }
  for (std::uint32_t s : used) EXPECT_LT(s, 2 * k);
}

// ---- Determinism contract: the fetch-min cell contention picks the same
// winners for every thread count (mirrors tests/test_scan.cpp).

using logcc::testing::ThreadInvariance;

TEST_F(ThreadInvariance, CompactionSlotsIdenticalAcrossThreads) {
  std::vector<std::uint8_t> flags(40000, 0);
  for (std::size_t i = 0; i < flags.size(); ++i)
    flags[i] = util::mix64(7, i) % 2;
  util::set_parallelism(1);
  auto one = approximate_compaction_vec(flags, 5);
  ASSERT_TRUE(one.has_value());
  for (int threads : {2, 8}) {
    util::set_parallelism(threads);
    auto many = approximate_compaction_vec(flags, 5);
    ASSERT_TRUE(many.has_value());
    EXPECT_EQ(*one, *many) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace logcc::core
