// util::Status — the durability layer's typed error model (PR 10): factory
// codes, the transient flag, printable form, and retry_with_backoff's
// retry-only-transient contract.
#include "util/status.hpp"

#include <gtest/gtest.h>

#include <string>

namespace logcc {
namespace {

using util::Status;
using util::StatusCode;

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_FALSE(s.transient());
  EXPECT_EQ(s.to_string(), "OK");
  EXPECT_TRUE(Status::ok().is_ok());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::io_error("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::failed_precondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::resource_exhausted("x").code(),
            StatusCode::kResourceExhausted);
  const Status s = Status::io_error("short write on 'edges.wal'");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.message(), "short write on 'edges.wal'");
  EXPECT_EQ(s.to_string(), "IO_ERROR: short write on 'edges.wal'");
}

TEST(Status, TransientFlagOnlyWhereRequested) {
  EXPECT_FALSE(Status::io_error("permanent").transient());
  EXPECT_TRUE(Status::io_error("EAGAIN-class", /*transient=*/true).transient());
  // Corruption is never transient: retrying a checksum mismatch cannot fix
  // the bytes on disk.
  EXPECT_FALSE(Status::corruption("bad crc").transient());
}

TEST(Status, CodeNamesAreStable) {
  // The names appear in CI logs and cc_serve stderr — they are contract.
  EXPECT_STREQ(util::to_string(StatusCode::kOk), "OK");
  EXPECT_STREQ(util::to_string(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(util::to_string(StatusCode::kCorruption), "CORRUPTION");
  EXPECT_STREQ(util::to_string(StatusCode::kNotFound), "NOT_FOUND");
}

TEST(Status, RetryStopsOnFirstSuccess) {
  int calls = 0;
  const Status s = util::retry_with_backoff(
      [&]() {
        ++calls;
        return calls < 3 ? Status::io_error("busy", /*transient=*/true)
                         : Status::ok();
      },
      /*attempts=*/5, std::chrono::milliseconds(0));
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(calls, 3);
}

TEST(Status, RetryNeverRetriesPermanentErrors) {
  int calls = 0;
  const Status s = util::retry_with_backoff(
      [&]() {
        ++calls;
        return Status::io_error("fsync failed");  // permanent
      },
      /*attempts=*/5, std::chrono::milliseconds(0));
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 1) << "a permanent error must be returned immediately";
}

TEST(Status, RetryExhaustsBudgetOnPersistentTransient) {
  int calls = 0;
  const Status s = util::retry_with_backoff(
      [&]() {
        ++calls;
        return Status::io_error("still busy", /*transient=*/true);
      },
      /*attempts=*/4, std::chrono::milliseconds(0));
  EXPECT_FALSE(s.is_ok());
  EXPECT_TRUE(s.transient());
  EXPECT_EQ(calls, 4);
}

}  // namespace
}  // namespace logcc
