#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace logcc::util {
namespace {

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()),
             const_cast<char**>(args.data()));
}

TEST(Cli, EqualsSyntax) {
  Cli cli = make_cli({"--n=100", "--name=foo"});
  EXPECT_EQ(cli.get_int("n", 1), 100);
  EXPECT_EQ(cli.get_string("name", "bar"), "foo");
}

TEST(Cli, SpaceSyntax) {
  Cli cli = make_cli({"--n", "250"});
  EXPECT_EQ(cli.get_int("n", 1), 250);
}

TEST(Cli, Defaults) {
  Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_EQ(cli.get_double("p", 0.5), 0.5);
  EXPECT_EQ(cli.get_string("s", "d"), "d");
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, BareFlag) {
  Cli cli = make_cli({"--verbose"});
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, FlagFalseValues) {
  Cli cli = make_cli({"--verbose=false"});
  EXPECT_FALSE(cli.get_flag("verbose"));
  Cli cli0 = make_cli({"--verbose=0"});
  EXPECT_FALSE(cli0.get_flag("verbose"));
}

TEST(Cli, DoubleParsing) {
  Cli cli = make_cli({"--p=0.125"});
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0), 0.125);
}

TEST(Cli, PositionalArguments) {
  Cli cli = make_cli({"--n=1", "input.txt", "more"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(CliDeath, UnknownOptionAborts) {
  EXPECT_EXIT(
      {
        Cli cli = make_cli({"--bogus=1"});
        (void)cli.get_int("n", 1);
        cli.finish();
      },
      ::testing::ExitedWithCode(2), "unknown option");
}

}  // namespace
}  // namespace logcc::util
