// Seeded cross-algorithm differential harness.
//
// Over a corpus of a few hundred graphs (every generator family x several
// sizes x seeds, the structural zoo, and a seeded random-G(n,m) sweep),
// every connected-components algorithm in the library must induce exactly
// the partition of the union-find oracle — through BOTH input paths:
//
//   * the EdgeList path (what the library always had), and
//   * the ArcsInput CSR path (PR 4's zero-copy ingestion: the same graph
//     re-expressed as sorted CSR adjacency, consumed without any
//     intermediate EdgeList).
//
// On top of partition equality, the harness pins the stronger bit-identity
// contract the CSR path is designed around: running any algorithm on a
// CSR-backed ArcsInput produces *bit-identical labels* to running the
// EdgeList path on that CSR's canonical edge order (edge_list_from_csr) —
// i.e. arcs_from_input is exactly arcs_from_edges-after-materialization,
// so zero-copy is a pure I/O optimization, never a semantic fork. A final
// case drives the real mmap loader (write_binary_csr -> load_dataset_zero_
// copy) to show file-backed views behave like in-memory ones.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/union_find.hpp"
#include "core/connectivity.hpp"
#include "core/faster_cc.hpp"
#include "core/vanilla.hpp"
#include "core/wide_cc.hpp"
#include "graph/arcs_input.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"
#include "util/random.hpp"

namespace logcc {
namespace {

// FNV-1a, the same fingerprint cc_bench uses for its determinism verdict.
std::uint64_t fingerprint(const std::vector<graph::VertexId>& labels) {
  std::uint64_t h = 1469598103934665603ULL;
  for (graph::VertexId v : labels) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Case {
  std::string name;
  graph::EdgeList el;
};

// ~230 graphs: 12 families x 3 sizes x 3 seeds (108) + 16 zoo graphs +
// 108 seeded random G(n, m) draws.
std::vector<Case> corpus() {
  std::vector<Case> out;
  for (const std::string& family : graph::family_names()) {
    for (std::uint64_t n : {33ULL, 80ULL, 193ULL}) {
      for (std::uint64_t seed : {1ULL, 5ULL, 11ULL}) {
        Case c;
        c.name = family + ":" + std::to_string(n) + ":" + std::to_string(seed);
        c.el = graph::make_family(family, n, seed);
        out.push_back(std::move(c));
      }
    }
  }
  for (auto& [name, el] : logcc::testing::small_zoo())
    out.push_back({"zoo/" + name, el});
  for (std::uint64_t i = 0; i < 108; ++i) {
    const std::uint64_t n = 2 + util::mix64(0xD1FF, i, 0) % 180;
    const std::uint64_t m = util::mix64(0xD1FF, i, 1) % (3 * n);
    Case c;
    c.name = "gnm/" + std::to_string(n) + "x" + std::to_string(m) + "#" +
             std::to_string(i);
    c.el = graph::make_gnm(n, m, 977 + i);
    out.push_back(std::move(c));
  }
  return out;
}

const std::vector<Algorithm>& cc_algorithms() { return all_algorithms(); }

class DifferentialCc : public ::testing::Test {};

TEST_F(DifferentialCc, EveryAlgorithmMatchesUnionFindOracleOnBothPaths) {
  const auto cases = corpus();
  ASSERT_GE(cases.size(), 200u);
  for (const Case& c : cases) {
    // Oracle: union-find, no code shared with the PRAM algorithms.
    const auto oracle = baselines::union_find_cc(c.el).labels;
    // CSR re-expression of the same graph (parallel edges / self-loops
    // preserved, exactly the on-disk conventions).
    const graph::Graph g = graph::Graph::from_edges(c.el, /*dedup=*/false);
    const graph::ArcsInput csr_in = graph::ArcsInput::from_csr(csr_view(g));
    ASSERT_EQ(csr_in.num_edges(), c.el.edges.size()) << c.name;

    for (Algorithm alg : cc_algorithms()) {
      Options opt;
      opt.seed = 1 + fingerprint(oracle) % 97;
      const auto via_el = connected_components(c.el, alg, opt);
      ASSERT_TRUE(graph::same_partition(oracle, via_el.labels()))
          << c.name << " alg=" << to_string(alg) << " (EdgeList path)";
      const auto via_csr = connected_components(csr_in, alg, opt);
      ASSERT_TRUE(graph::same_partition(oracle, via_csr.labels()))
          << c.name << " alg=" << to_string(alg) << " (ArcsInput CSR path)";
    }
  }
}

TEST_F(DifferentialCc, CsrPathIsBitIdenticalToCanonicalEdgeListPath) {
  // The CSR path must not merely agree up to partition: it must produce the
  // same bytes as materialize-then-run. A thinned corpus keeps this under a
  // second while still covering every family and the random sweep's tail.
  const auto cases = corpus();
  std::size_t covered = 0;
  for (std::size_t i = 0; i < cases.size(); i += 3) {
    const Case& c = cases[i];
    const graph::Graph g = graph::Graph::from_edges(c.el, /*dedup=*/false);
    const graph::CsrView view = csr_view(g);
    const graph::ArcsInput csr_in = graph::ArcsInput::from_csr(view);
    const graph::EdgeList canon = graph::edge_list_from_csr(view);
    for (Algorithm alg : cc_algorithms()) {
      Options opt;
      opt.seed = 42 + i;
      const auto a = connected_components(csr_in, alg, opt);
      const auto b = connected_components(canon, alg, opt);
      ASSERT_EQ(a.labels(), b.labels())
          << c.name << " alg=" << to_string(alg)
          << ": CSR-native labels diverge from the canonical EdgeList run";
      // ComponentIndex equality covers labels, sizes, and count at once.
      ASSERT_TRUE(a.index == b.index) << c.name << " alg=" << to_string(alg);
      ASSERT_EQ(fingerprint(a.labels()), fingerprint(b.labels()));
    }
    ++covered;
  }
  EXPECT_GE(covered, 60u);
}

TEST_F(DifferentialCc, SpanningForestAgreesAcrossPathsOnCanonicalOrder) {
  const auto cases = corpus();
  for (std::size_t i = 0; i < cases.size(); i += 7) {
    const Case& c = cases[i];
    const graph::Graph g = graph::Graph::from_edges(c.el, /*dedup=*/false);
    const graph::CsrView view = csr_view(g);
    const graph::ArcsInput csr_in = graph::ArcsInput::from_csr(view);
    const graph::EdgeList canon = graph::edge_list_from_csr(view);
    Options opt;
    opt.seed = 7 + i;
    for (SfAlgorithm alg : {SfAlgorithm::kTheorem2, SfAlgorithm::kVanillaSF}) {
      const auto a = spanning_forest(csr_in, alg, opt);
      const auto b = spanning_forest(canon, alg, opt);
      ASSERT_EQ(a.forest_edges, b.forest_edges)
          << c.name << ": forest edge indices diverge across input paths";
      const auto check = graph::validate_spanning_forest(canon, a.forest_edges);
      ASSERT_TRUE(check.ok) << c.name << ": " << check.error;
    }
  }
}

TEST_F(DifferentialCc, MmapLoadedFileMatchesInMemoryCsrBitForBit) {
  // End-to-end through the real loader: write a binary CSR file, mmap it
  // back zero-copy, and require the file-backed ArcsInput to reproduce the
  // in-memory CSR run exactly (which the previous test tied to the
  // EdgeList path).
  const std::string path =
      ::testing::TempDir() + "/differential_roundtrip.logccsr";
  for (std::uint64_t seed : {3ULL, 8ULL}) {
    graph::EdgeList el = graph::make_family("rmat", 150, seed);
    std::string error;
    ASSERT_TRUE(graph::write_binary_csr(path, el, &error)) << error;
    graph::DatasetHandle handle;
    ASSERT_TRUE(graph::load_dataset_zero_copy(path, handle, &error)) << error;
    ASSERT_TRUE(handle.input().csr_backed());
    EXPECT_EQ(handle.info().materialize_seconds, 0.0)
        << "zero-copy load must not materialize an EdgeList";

    const graph::Graph g = graph::Graph::from_edges(el, /*dedup=*/false);
    const graph::ArcsInput mem_in = graph::ArcsInput::from_csr(csr_view(g));
    for (Algorithm alg : cc_algorithms()) {
      Options opt;
      opt.seed = seed;
      const auto from_file = connected_components(handle.input(), alg, opt);
      const auto from_mem = connected_components(mem_in, alg, opt);
      ASSERT_EQ(from_file.labels(), from_mem.labels()) << to_string(alg);
      ASSERT_TRUE(verify_components(handle.input(), from_file.index));
    }
  }
  std::remove(path.c_str());
}

TEST_F(DifferentialCc, WidePathIsBitIdenticalToNarrowPathAcrossCorpus) {
  // The 64-bit execution path (core/wide_cc) promises more than partition
  // agreement: on every graph that fits both widths, wide labels equal the
  // narrow labels VALUE FOR VALUE — same coins, same tie-breaks, same dedup
  // survivor order. A thinned corpus keeps every family and the random
  // sweep's tail covered.
  const auto cases = corpus();
  std::size_t covered = 0;
  for (std::size_t i = 0; i < cases.size(); i += 3) {
    const Case& c = cases[i];
    graph::EdgeList64 wide_el;
    wide_el.n = c.el.n;
    for (const graph::Edge& e : c.el.edges) wide_el.add(e.u, e.v);
    const graph::ArcsInput64 wide_in =
        graph::ArcsInput64::from_edges(wide_el);
    const graph::ArcsInput narrow_in = graph::ArcsInput::from_edges(c.el);
    const std::uint64_t seed = 1 + util::mix64(0x51DE, i, 0) % 97;

    // Vanilla: the port keeps identical coins and MARK-EDGE tie-breaks.
    const auto wv = core::wide_vanilla_cc(wide_in, seed);
    const auto nv = core::vanilla_cc(narrow_in, seed);
    ASSERT_EQ(wv.labels.size(), nv.labels.size()) << c.name;
    for (std::size_t v = 0; v < nv.labels.size(); ++v)
      ASSERT_EQ(wv.labels[v], static_cast<graph::VertexId64>(nv.labels[v]))
          << c.name << " vanilla label diverges at v=" << v;
    ASSERT_EQ(wv.stats.phases, nv.stats.phases) << c.name;

    // Union-find: canonical min-id labels on both widths.
    const auto wu = core::wide_union_find_cc(wide_in);
    const auto nu = baselines::union_find_cc(c.el);
    for (std::size_t v = 0; v < nu.labels.size(); ++v)
      ASSERT_EQ(wu.labels[v], static_cast<graph::VertexId64>(nu.labels[v]))
          << c.name << " union-find label diverges at v=" << v;

    // faster-cc: the bridge's delegate branch runs the narrow core, so
    // labels are bit-identical by construction — pin it anyway.
    core::WideFasterOptions wopt;
    wopt.seed = seed;
    const auto wf = core::wide_faster_cc(wide_in, wopt);
    core::FasterCcParams params;
    params.seed = seed;
    const auto nf = core::faster_cc(narrow_in, params);
    for (std::size_t v = 0; v < nf.labels.size(); ++v)
      ASSERT_EQ(wf.labels[v], static_cast<graph::VertexId64>(nf.labels[v]))
          << c.name << " faster-cc label diverges at v=" << v;

    // Forced contract-then-delegate branch (narrow_threshold below the
    // input size): exact labels are allowed to differ, the partition and
    // canonical form are not.
    core::WideFasterOptions bridge;
    bridge.seed = seed;
    bridge.narrow_threshold = 4;
    auto wb = core::wide_faster_cc(wide_in, bridge);
    core::wide_canonicalize_labels(wb.labels);
    auto canon_oracle = wu.labels;  // already canonical min-id
    ASSERT_EQ(wb.labels, canon_oracle)
        << c.name << " bridge path broke the partition";
    ++covered;
  }
  EXPECT_GE(covered, 60u);
}

TEST_F(DifferentialCc, WideCsrPathMatchesWideEdgePathBitForBit) {
  // Wide CSR ingestion (what LOGCCSR2 mmap loads feed) against the wide
  // edge path — the same arcs_from_input identity the narrow harness pins.
  const auto cases = corpus();
  for (std::size_t i = 0; i < cases.size(); i += 7) {
    const Case& c = cases[i];
    graph::EdgeList64 wide_el;
    wide_el.n = c.el.n;
    for (const graph::Edge& e : c.el.edges) wide_el.add(e.u, e.v);
    const graph::Graph64 g =
        graph::Graph64::from_edges(wide_el, /*dedup=*/false);
    const graph::CsrView64 view = csr_view(g);
    const graph::ArcsInput64 csr_in = graph::ArcsInput64::from_csr(view);
    const graph::EdgeList64 canon = graph::edge_list_from_csr(view);
    const graph::ArcsInput64 canon_in =
        graph::ArcsInput64::from_edges(canon);
    const std::uint64_t seed = 42 + i;
    const auto a = core::wide_vanilla_cc(csr_in, seed);
    const auto b = core::wide_vanilla_cc(canon_in, seed);
    ASSERT_EQ(a.labels, b.labels)
        << c.name << ": wide CSR labels diverge from the canonical run";
  }
}

}  // namespace
}  // namespace logcc
