#include "pram/sv_on_pram.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc::pram {
namespace {

using logcc::testing::matches_oracle;

TEST(SvOnPram, Path) {
  auto el = graph::make_path(50);
  auto r = shiloach_vishkin_on_pram(el);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(SvOnPram, MultiComponent) {
  auto el = graph::disjoint_union(
      {graph::make_path(10), graph::make_cycle(12), graph::make_star(8)});
  auto r = shiloach_vishkin_on_pram(el);
  EXPECT_TRUE(matches_oracle(el, r.labels));
  EXPECT_EQ(graph::count_components(r.labels), 3u);
}

TEST(SvOnPram, LogIterations) {
  auto el = graph::make_path(512);
  auto r = shiloach_vishkin_on_pram(el);
  // Classical bound: O(log n) hook+shortcut iterations.
  EXPECT_LE(r.iterations, 6 * 9 + 8u);  // generous constant over log2(512)=9
  EXPECT_GE(r.iterations, 3u);
}

TEST(SvOnPram, ResultIndependentOfWritePolicy) {
  auto el = graph::make_gnm(120, 300, 21);
  auto arb = shiloach_vishkin_on_pram(el, WritePolicy::kArbitrary, 1);
  auto pri = shiloach_vishkin_on_pram(el, WritePolicy::kPriority, 1);
  EXPECT_TRUE(graph::same_partition(arb.labels, pri.labels));
}

TEST(SvOnPram, ResultIndependentOfArbitrarySeed) {
  auto el = graph::make_gnm(100, 220, 33);
  auto a = shiloach_vishkin_on_pram(el, WritePolicy::kArbitrary, 1);
  auto b = shiloach_vishkin_on_pram(el, WritePolicy::kArbitrary, 999);
  EXPECT_TRUE(graph::same_partition(a.labels, b.labels));
}

TEST(SvOnPram, LedgerPopulated) {
  auto el = graph::make_cycle(64);
  auto r = shiloach_vishkin_on_pram(el);
  EXPECT_GT(r.ledger.steps, 0u);
  EXPECT_GT(r.ledger.work, 0u);
  EXPECT_GT(r.ledger.writes, 0u);
}

TEST(SvOnPram, RegressionArbitrarySeed999NoCycle) {
  // Regression: with the buggy star detection (st(v) := st(D(v)) instead of
  // st(v) := st(v) AND st(D(v))), depth-2 vertices of non-star trees were
  // mis-classified as star members, their hooks created a parent cycle and
  // this exact configuration livelocked.
  auto el = graph::make_gnm(1024, 3072, 1024);
  auto r = shiloach_vishkin_on_pram(el, WritePolicy::kArbitrary, 999);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(SvOnPram, ManySeedsTerminate) {
  auto el = graph::make_gnm(512, 1536, 7);
  for (std::uint64_t seed : {1ULL, 2ULL, 99ULL, 999ULL, 31337ULL}) {
    auto r = shiloach_vishkin_on_pram(el, WritePolicy::kArbitrary, seed);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << seed;
  }
}

TEST(SvOnPram, Zoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = shiloach_vishkin_on_pram(el);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << name;
  }
}

}  // namespace
}  // namespace logcc::pram
