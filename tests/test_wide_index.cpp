// The 32-bit index wall: regression tests for the narrowing-overflow audit
// and the LOGCCSR2 (wide) format.
//
// Every "boundary" test here is pinned at or just past a uint32 edge
// (2^31, 2^32) and fails on the pre-audit code: degree arithmetic that
// wrapped in uint32, writers that silently truncated 64-bit counts into v1
// header fields, header validation that did size math before rejecting
// oversized counts, and generator streams whose intermediates wrapped.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/vanilla.hpp"
#include "core/wide_cc.hpp"
#include "graph/arcs_input.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace logcc {
namespace {

constexpr std::uint64_t kU32Max = std::numeric_limits<std::uint32_t>::max();

// ---------------------------------------------------------------- degree ---

TEST(WideIndex, CsrViewDegreeSurvivesPast2To32Arcs) {
  // Pre-fix, CsrView::degree returned uint32: a vertex whose arc range
  // crosses 2^32 wrapped (5G - 1G = 4G -> 0 in uint32). Only the offsets
  // array is read, so the boundary is cheap to synthesize.
  const std::uint64_t kOneG = 1ull << 30;
  const std::uint64_t kFiveG = 5ull << 30;
  std::vector<std::uint64_t> offsets = {0, kOneG, kFiveG, kFiveG + 7};

  graph::CsrView narrow;
  narrow.n = 3;
  narrow.offsets = offsets.data();
  EXPECT_EQ(narrow.degree(1), kFiveG - kOneG);  // wrapped to 0 pre-fix
  EXPECT_EQ(narrow.degree(2), 7u);

  graph::CsrView64 wide;
  wide.n = 3;
  wide.offsets = offsets.data();
  EXPECT_EQ(wide.degree(1), kFiveG - kOneG);
}

// ---------------------------------------------------------------- writer ---

TEST(WideIndex, NarrowWriterRejectsOversizedVertexCountBeforePassOne) {
  // n just past the v1 cap: must fail with an actionable LOGCCSR2 pointer
  // BEFORE the enumerator ever runs (pre-fix the count truncated into the
  // uint32 header field). The enumerator aborts the test if consulted.
  const std::string path = ::testing::TempDir() + "/wide_reject_n.logccsr";
  std::string error;
  bool enumerated = false;
  const bool ok = graph::write_binary_csr_streaming(
      path, kU32Max + 2,
      [&](const graph::EdgeSink&) { enumerated = true; }, &error,
      graph::BinaryCsrFormat::kNarrow);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(enumerated) << "oversized n must be rejected before pass 1";
  EXPECT_NE(error.find("LOGCCSR2"), std::string::npos)
      << "error must point at the wide format: " << error;
  std::ifstream probe(path, std::ios::binary);
  EXPECT_FALSE(probe.good()) << "no output file may be created";
  std::remove(path.c_str());
}


// ---------------------------------------------------------------- loader ---

/// Writes a 64-byte file that is ONLY a header (deliberately truncated
/// payload): if the count caps are checked after size math, the oversized
/// fields poison the expected-size computation first.
void write_header_only(const std::string& path, const char* magic,
                       std::uint32_t version, std::uint64_t n,
                       std::uint64_t num_arcs, std::uint64_t num_edges) {
  graph::BinaryCsrHeader h{};
  std::memcpy(h.magic, magic, sizeof(h.magic));
  h.version = version;
  h.endian = graph::kEndianTag;
  h.n = n;
  h.num_arcs = num_arcs;
  h.num_edges = num_edges;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.good());
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  ASSERT_TRUE(os.good());
}

TEST(WideIndex, V1HeaderWithOversizedCountsIsRejectedWithActionableError) {
  // The header fields are 64-bit on disk; v1 semantics cap them at uint32.
  // The cap must reject BEFORE any narrowing or size arithmetic, and the
  // message must say what to do about it.
  const std::string path = ::testing::TempDir() + "/wide_v1_overflow.logccsr";

  write_header_only(path, graph::kBinaryCsrMagic, graph::kBinaryCsrVersion,
                    /*n=*/kU32Max + 10, /*num_arcs=*/8, /*num_edges=*/4);
  graph::BinaryGraph bg;
  std::string error;
  EXPECT_FALSE(bg.open(path, &error));
  EXPECT_NE(error.find("LOGCCSR2"), std::string::npos)
      << "oversized n must point at the wide format: " << error;

  write_header_only(path, graph::kBinaryCsrMagic, graph::kBinaryCsrVersion,
                    /*n=*/100, /*num_arcs=*/8, /*num_edges=*/kU32Max + 10);
  error.clear();
  EXPECT_FALSE(bg.open(path, &error));
  EXPECT_NE(error.find("LOGCCSR2"), std::string::npos)
      << "oversized edge count must point at the wide format: " << error;
  std::remove(path.c_str());
}

TEST(WideIndex, V2HeaderSizeMathDoesNotOverflowOnHugeCounts) {
  // Adversarial v2 header: counts chosen so (n+1)*8 + arcs*8 wraps uint64
  // if computed naively. The loader must reject on size (the file is 64
  // bytes), never accept or crash.
  const std::string path = ::testing::TempDir() + "/wide_v2_huge.logccsr";
  const std::uint64_t huge = (1ull << 61);
  write_header_only(path, graph::kBinaryCsrMagicV2, graph::kBinaryCsrVersionV2,
                    /*n=*/huge, /*num_arcs=*/huge, /*num_edges=*/huge / 2);
  graph::BinaryGraph bg;
  std::string error;
  EXPECT_FALSE(bg.open(path, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// ----------------------------------------------------------- text reader ---

TEST(WideIndex, TextReaderRejectsIdsAtTheNarrowSentinel) {
  // Pre-fix the text parser cast uint64 ids straight to VertexId: an id of
  // 2^32 + 5 silently became 5. Now anything >= kInvalidVertex fails the
  // parse; the largest representable id still works.
  graph::EdgeList el;
  {
    std::istringstream is("0 4294967295\n");  // kInvalidVertex as endpoint
    EXPECT_FALSE(graph::read_edge_list(is, el));
  }
  {
    std::istringstream is("0 4294967296\n");  // 2^32: wrapped to 0 pre-fix
    EXPECT_FALSE(graph::read_edge_list(is, el));
  }
  {
    std::istringstream is("0 1\n0 4294967294\n");  // max legal id
    ASSERT_TRUE(graph::read_edge_list(is, el));
    EXPECT_EQ(el.n, 4294967295ull);
    ASSERT_EQ(el.edges.size(), 2u);
    EXPECT_EQ(el.edges[1].v, 4294967294u);
  }
}

// ------------------------------------------------- generator byte-match ---

TEST(WideIndex, StreamedFamiliesByteMatchMaterializedOutputThroughV2) {
  // The widened RNG-replay streams (rmat's counter-based replay above all)
  // must emit the exact edge sequence of the materializer — pinned by
  // writing both through the same LOGCCSR2 writer and comparing bytes.
  // (The v1 writer byte-match is covered by test_binary_io; this pins the
  // uint64 sink chain end to end.)
  auto file_bytes = [](const std::string& p) {
    std::ifstream is(p, std::ios::binary);
    EXPECT_TRUE(is.good());
    return std::string{std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>()};
  };
  for (const std::string family : {"rmat", "gnm2", "hypercube", "path"}) {
    const std::uint64_t n = 4096;
    const std::uint64_t seed = 77;
    const std::string streamed =
        ::testing::TempDir() + "/wide_stream_" + family + ".logccsr";
    const std::string materialized =
        ::testing::TempDir() + "/wide_mat_" + family + ".logccsr";

    std::string error;
    ASSERT_TRUE(graph::stream_family_to_binary(
        family, n, seed, streamed, &error, graph::BinaryCsrFormat::kWide))
        << family << ": " << error;

    const graph::EdgeList el = graph::make_family(family, n, seed);
    ASSERT_TRUE(graph::write_binary_csr_streaming(
        materialized, el.n,
        [&](const graph::EdgeSink& sink) {
          for (const graph::Edge& e : el.edges) sink(e.u, e.v);
        },
        &error, graph::BinaryCsrFormat::kWide))
        << family << ": " << error;

    EXPECT_EQ(file_bytes(streamed), file_bytes(materialized))
        << family << ": streamed and materialized LOGCCSR2 bytes diverge";
    std::remove(streamed.c_str());
    std::remove(materialized.c_str());
  }
}

TEST(WideIndex, StreamPathCapsExceedMaterializerCaps) {
  // The stream path's whole point is scales the materializer cannot reach:
  // its caps must sit strictly above. (The actual >2^32-arc emission is a
  // disk-scale exercise; the arithmetic it relies on is uint64 end-to-end,
  // which the byte-match test above pins at the shared code path.)
  const auto fs = graph::make_family_stream("hypercube", 1ull << 36, 1);
  EXPECT_EQ(fs.num_vertices, 1ull << 36);  // > uint32: wrapped pre-widening
  EXPECT_TRUE(fs.streams);
}

// ------------------------------------------------------- wide round trip ---

TEST(WideIndex, V2RoundTripRunsAllThreeWideAlgorithmsBitCompatibly) {
  // stream-write -> mmap zero-copy load -> deep validate -> run the three
  // retargeted algorithms; vanilla labels must equal the narrow run value
  // for value on the same graph.
  const std::string path = ::testing::TempDir() + "/wide_roundtrip.logccsr";
  std::string error;
  ASSERT_TRUE(graph::stream_family_to_binary(
      "rmat", 600, 9, path, &error, graph::BinaryCsrFormat::kWide))
      << error;

  graph::DatasetHandle handle;
  ASSERT_TRUE(graph::load_dataset_zero_copy(path, handle, &error)) << error;
  ASSERT_TRUE(handle.wide());
  const graph::ArcsInput64& wide_in = handle.input64();
  ASSERT_TRUE(wide_in.csr_backed());

  const auto wv = core::wide_vanilla_cc(wide_in, 5);
  const auto wu = core::wide_union_find_cc(wide_in);
  const auto wf = core::wide_faster_cc(wide_in, {.seed = 5});

  // Narrow reference: same file's graph, materialized.
  graph::EdgeList el;
  ASSERT_TRUE(graph::load_dataset(path, el, nullptr, &error)) << error;
  const auto nv = core::vanilla_cc(graph::ArcsInput::from_edges(el), 5);
  ASSERT_EQ(wv.labels.size(), nv.labels.size());
  for (std::size_t v = 0; v < nv.labels.size(); ++v)
    EXPECT_EQ(wv.labels[v], static_cast<graph::VertexId64>(nv.labels[v]));

  // All three agree up to canonical form.
  auto canon_v = wv.labels;
  auto canon_f = wf.labels;
  core::wide_canonicalize_labels(canon_v);
  core::wide_canonicalize_labels(canon_f);
  EXPECT_EQ(canon_v, wu.labels);
  EXPECT_EQ(canon_f, wu.labels);
  std::remove(path.c_str());
}

TEST(WideIndex, LoadDatasetDownconvertsFittingWideFiles) {
  // A LOGCCSR2 file whose graph fits uint32 materializes on the narrow
  // path (load_dataset) with the canonical edge order.
  const std::string path = ::testing::TempDir() + "/wide_fits.logccsr";
  graph::EdgeList el = graph::make_family("grid", 300, 1);
  graph::EdgeList64 wide_el;
  wide_el.n = el.n;
  for (const graph::Edge& e : el.edges) wide_el.add(e.u, e.v);
  std::string error;
  ASSERT_TRUE(graph::write_binary_csr(path, wide_el, &error)) << error;

  graph::EdgeList back;
  ASSERT_TRUE(graph::load_dataset(path, back, nullptr, &error)) << error;
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.edges.size(), el.edges.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace logcc
