// Sharded MPC executor: semantics are a property of the graph, never the
// partitioning. Labels must equal the canonical min-id oracle; supersteps
// AND the charged engine ledger must be identical across shard counts; only
// cross-shard message volume may (and must, on connected inputs) grow.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/wide_cc.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "mpc/sharded.hpp"
#include "test_support.hpp"

namespace logcc {
namespace {

std::vector<graph::VertexId64> oracle_labels(const graph::EdgeList& el) {
  std::vector<graph::Edge64> wide(el.edges.size());
  for (std::size_t i = 0; i < wide.size(); ++i)
    wide[i] = {el.edges[i].u, el.edges[i].v};
  return core::wide_union_find_cc(graph::ArcsInput64::from_edges(el.n, wide))
      .labels;
}

TEST(MpcSharded, MatchesCanonicalOracleAcrossFamilies) {
  for (const std::string& family : graph::family_names()) {
    const graph::EdgeList el = graph::make_family(family, 300, 7);
    const auto oracle = oracle_labels(el);
    mpc::ShardedMpcOptions opt;
    opt.shards = 4;
    const auto r = mpc::sharded_mpc_cc(el, opt);
    EXPECT_EQ(r.labels, oracle) << family;
    EXPECT_GT(r.ledger.rounds, 0u) << family;
  }
}

TEST(MpcSharded, LabelsAndChargedRoundsAreShardCountInvariant) {
  struct W {
    std::string name;
    graph::EdgeList el;
  };
  std::vector<W> ws;
  ws.push_back({"path", graph::make_path(700)});
  ws.push_back({"gnm", graph::make_gnm(512, 2048, 3)});
  ws.push_back({"rmat", graph::make_rmat(9, 2048, 5)});
  ws.push_back({"two-comp", graph::make_path_forest(2, 200)});
  ws.push_back({"empty-edges", graph::EdgeList{.n = 97, .edges = {}}});

  for (const W& w : ws) {
    const auto oracle = oracle_labels(w.el);
    std::vector<graph::VertexId64> base_labels;
    std::uint64_t base_rounds = 0, base_ledger = 0, base_calls = 0;
    std::uint64_t prev_messages = 0;
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      mpc::ShardedMpcOptions opt;
      opt.shards = shards;
      const auto r = mpc::sharded_mpc_cc(w.el, opt);
      EXPECT_EQ(r.labels, oracle) << w.name << " shards=" << shards;
      if (shards == 1) {
        base_labels = r.labels;
        base_rounds = r.rounds;
        base_ledger = r.ledger.rounds;
        base_calls = r.ledger.primitive_calls;
        EXPECT_EQ(r.cross_shard_messages, 0u) << w.name;
      } else {
        EXPECT_EQ(r.labels, base_labels) << w.name << " shards=" << shards;
        EXPECT_EQ(r.rounds, base_rounds)
            << w.name << " shards=" << shards << ": supersteps vary";
        EXPECT_EQ(r.ledger.rounds, base_ledger)
            << w.name << " shards=" << shards << ": charged rounds vary";
        EXPECT_EQ(r.ledger.primitive_calls, base_calls)
            << w.name << " shards=" << shards << ": primitive count varies";
        EXPECT_GE(r.cross_shard_messages, prev_messages)
            << w.name << " shards=" << shards;
      }
      prev_messages = r.cross_shard_messages;
    }
  }
}

TEST(MpcSharded, CsrBackedInputShardsZeroCopyThroughLogccsr2) {
  // End to end: stream a family to LOGCCSR2, mmap it, shard the CSR rows
  // in place, and match both the oracle and the edge-backed run.
  const std::string path = ::testing::TempDir() + "/sharded_csr.logccsr";
  std::string error;
  ASSERT_TRUE(graph::stream_family_to_binary(
      "grid", 400, 1, path, &error, graph::BinaryCsrFormat::kWide))
      << error;
  graph::DatasetHandle handle;
  ASSERT_TRUE(graph::load_dataset_zero_copy(path, handle, &error)) << error;
  ASSERT_TRUE(handle.wide());
  ASSERT_TRUE(handle.input64().csr_backed());

  const graph::EdgeList el = graph::make_family("grid", 400, 1);
  mpc::ShardedMpcOptions opt;
  opt.shards = 4;
  const auto from_csr = mpc::sharded_mpc_cc(handle.input64(), opt);
  const auto from_edges = mpc::sharded_mpc_cc(el, opt);
  EXPECT_EQ(from_csr.labels, from_edges.labels);
  EXPECT_EQ(from_csr.rounds, from_edges.rounds);
  EXPECT_EQ(from_csr.labels, oracle_labels(el));
  std::remove(path.c_str());
}

TEST(MpcSharded, DegenerateInputs) {
  {
    graph::EdgeList empty;
    empty.n = 0;
    const auto r = mpc::sharded_mpc_cc(empty);
    EXPECT_TRUE(r.labels.empty());
  }
  {
    graph::EdgeList single;
    single.n = 1;
    const auto r = mpc::sharded_mpc_cc(single);
    ASSERT_EQ(r.labels.size(), 1u);
    EXPECT_EQ(r.labels[0], 0u);
  }
  {
    // Self-loops and parallel edges.
    graph::EdgeList el;
    el.n = 4;
    el.add(0, 0);
    el.add(1, 2);
    el.add(2, 1);
    el.add(3, 3);
    mpc::ShardedMpcOptions opt;
    opt.shards = 8;  // more shards than meaningfully fit n=4: clamped
    const auto r = mpc::sharded_mpc_cc(el, opt);
    EXPECT_EQ(r.labels, oracle_labels(el));
    EXPECT_LE(r.shards_used, 4u);
  }
}

}  // namespace
}  // namespace logcc
