// Crash recovery (PR 10 tentpole): ConnectivityEngine::recover must produce
// a ComponentIndex bit-identical (labels + sizes + count) to an engine that
// never crashed, for EVERY registered failpoint. The kill-at-every-failpoint
// suites carry the `fault` ctest label and use threadsafe death tests: the
// child re-execs, rebuilds the durable directory, arms one crash failpoint,
// runs the workload, and either dies at the site (SIGKILL, our power-loss
// stand-in) or exits 0 when the workload never reaches that site; the
// parent then recovers from whatever the child left on disk.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "serve/connectivity_engine.hpp"
#include "util/failpoint.hpp"
#include "util/status.hpp"

namespace logcc {
namespace {

using serve::ConnectivityEngine;
using serve::EngineOptions;
using util::Status;
using util::StatusCode;

namespace fp = util::failpoint;

// n < the engine's serial grain: merges run on the calling thread, so death
// tests never fork a process that owns pool threads.
constexpr std::uint64_t kN = 512;
constexpr std::size_t kBatchEdges = 60;

/// The fixed workload every test replays: one gnm stream chunked into
/// batches. Deterministic, so "engine fed batches [0, k)" is a complete
/// description of an engine state.
std::vector<std::vector<graph::Edge>> workload() {
  const graph::EdgeList el = graph::make_gnm(kN, 1200, /*seed=*/42);
  std::vector<std::vector<graph::Edge>> batches;
  for (std::size_t at = 0; at < el.edges.size(); at += kBatchEdges) {
    const std::size_t end = std::min(at + kBatchEdges, el.edges.size());
    batches.emplace_back(el.edges.begin() + at, el.edges.begin() + end);
  }
  return batches;
}

EngineOptions durable_options(const std::string& dir) {
  EngineOptions opt;
  opt.durability.dir = dir;
  opt.durability.wal.fsync = serve::WalFsync::kBatch;
  opt.durability.checkpoint_every = 3;
  return opt;
}

/// Reference: a never-durable, never-crashed engine fed batches [0, k).
std::shared_ptr<const core::ComponentIndex> reference_index(std::size_t k) {
  static const auto batches = workload();
  ConnectivityEngine ref(kN);
  for (std::size_t i = 0; i < k; ++i) ref.apply_batch(batches[i]);
  return ref.snapshot();
}

std::string test_dir(const std::string& tag) {
  return ::testing::TempDir() + "logcc_recovery_" + tag;
}

void clean_dir(const std::string& dir) {
  std::remove((dir + "/edges.wal").c_str());
  std::remove((dir + "/index.ckpt").c_str());
  std::remove((dir + "/index.ckpt.tmp").c_str());
  ::rmdir(dir.c_str());
}

/// Recovers from `dir` and asserts the published index equals the reference
/// for however many batches made it to disk; optionally requires an exact
/// batch count. Returns the recovered batch count.
std::uint64_t expect_recovers_to_prefix(
    const std::string& dir, std::int64_t want_batches = -1,
    ConnectivityEngine::RecoveryInfo* info_out = nullptr) {
  std::unique_ptr<ConnectivityEngine> engine;
  ConnectivityEngine::RecoveryInfo info;
  const Status s =
      ConnectivityEngine::recover(dir, kN, durable_options(dir), &engine,
                                  &info);
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  if (!s.is_ok()) return 0;
  const std::uint64_t k = engine->num_batches();
  if (want_batches >= 0)
    EXPECT_EQ(k, static_cast<std::uint64_t>(want_batches));
  EXPECT_LE(k, workload().size());
  EXPECT_TRUE(*engine->snapshot() == *reference_index(k))
      << "recovered index differs from the uninterrupted engine at batch "
      << k;
  EXPECT_FALSE(engine->degraded());
  if (info_out) *info_out = info;
  return k;
}

/// Continues the recovered engine to the end of the workload and asserts it
/// converges to the uninterrupted final state (recovery is a resumable
/// position, not just a readable one).
void expect_continuation_converges(const std::string& dir) {
  std::unique_ptr<ConnectivityEngine> engine;
  ASSERT_TRUE(ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                          &engine, nullptr)
                  .is_ok());
  const auto batches = workload();
  for (std::size_t i = engine->num_batches(); i < batches.size(); ++i) {
    const auto res = engine->apply_batch(batches[i]);
    ASSERT_TRUE(res.applied) << res.durability.to_string();
  }
  EXPECT_TRUE(*engine->snapshot() == *reference_index(batches.size()));
  ASSERT_TRUE(engine->flush_durable().is_ok());
}

// ------------------------------------------------------------ happy path ---

class Recovery : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }
};

TEST_F(Recovery, DurableRunMatchesNonDurableRun) {
  const std::string dir = test_dir("durable_matches");
  clean_dir(dir);
  const auto batches = workload();
  std::unique_ptr<ConnectivityEngine> engine;
  ASSERT_TRUE(ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                          &engine, nullptr)
                  .is_ok());
  EXPECT_TRUE(engine->durable());
  for (const auto& b : batches) {
    const auto res = engine->apply_batch(b);
    ASSERT_TRUE(res.applied);
    ASSERT_TRUE(res.durability.is_ok()) << res.durability.to_string();
  }
  EXPECT_TRUE(*engine->snapshot() == *reference_index(batches.size()));
  EXPECT_GT(engine->wal_offset(), 0u);
}

TEST_F(Recovery, CleanShutdownRecoversFromCheckpointAlone) {
  const std::string dir = test_dir("clean_shutdown");
  clean_dir(dir);
  const auto batches = workload();
  {
    std::unique_ptr<ConnectivityEngine> engine;
    ASSERT_TRUE(ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                            &engine, nullptr)
                    .is_ok());
    for (const auto& b : batches) engine->apply_batch(b);
    ASSERT_TRUE(engine->flush_durable().is_ok());
  }
  ConnectivityEngine::RecoveryInfo info;
  expect_recovers_to_prefix(dir, static_cast<std::int64_t>(batches.size()),
                            &info);
  EXPECT_TRUE(info.used_checkpoint);
  EXPECT_EQ(info.replayed_records, 0u)
      << "a flush_durable checkpoint must cover the whole WAL";
  EXPECT_EQ(info.torn_bytes, 0u);
}

TEST_F(Recovery, RecoversFromWalAloneWithoutCheckpoint) {
  const std::string dir = test_dir("wal_only");
  clean_dir(dir);
  const auto batches = workload();
  EngineOptions opt = durable_options(dir);
  opt.durability.checkpoint_every = 0;  // no checkpoints at all
  {
    std::unique_ptr<ConnectivityEngine> engine;
    ASSERT_TRUE(
        ConnectivityEngine::recover(dir, kN, opt, &engine, nullptr).is_ok());
    for (const auto& b : batches) engine->apply_batch(b);
    // No flush: recovery has nothing but the WAL.
  }
  ConnectivityEngine::RecoveryInfo info;
  expect_recovers_to_prefix(dir, static_cast<std::int64_t>(batches.size()),
                            &info);
  EXPECT_FALSE(info.used_checkpoint);
  EXPECT_EQ(info.checkpoint_status.code(), StatusCode::kNotFound);
  EXPECT_EQ(info.replayed_records, batches.size());
}

TEST_F(Recovery, CheckpointCadencePlusWalSuffixReplay) {
  const std::string dir = test_dir("ckpt_suffix");
  clean_dir(dir);
  const auto batches = workload();
  {
    std::unique_ptr<ConnectivityEngine> engine;
    ASSERT_TRUE(ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                            &engine, nullptr)
                    .is_ok());
    for (const auto& b : batches) engine->apply_batch(b);
    // No flush: the last checkpoint sits at the cadence boundary and the
    // tail batches exist only in the WAL.
  }
  ConnectivityEngine::RecoveryInfo info;
  expect_recovers_to_prefix(dir, static_cast<std::int64_t>(batches.size()),
                            &info);
  EXPECT_TRUE(info.used_checkpoint);
  const std::uint64_t expected_ckpt =
      (batches.size() / 3) * 3;  // checkpoint_every = 3
  EXPECT_EQ(info.checkpoint_batches, expected_ckpt);
  EXPECT_EQ(info.replayed_records, batches.size() - expected_ckpt);
}

TEST_F(Recovery, CorruptCheckpointFallsBackToFullReplay) {
  const std::string dir = test_dir("bad_ckpt");
  clean_dir(dir);
  const auto batches = workload();
  {
    std::unique_ptr<ConnectivityEngine> engine;
    ASSERT_TRUE(ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                            &engine, nullptr)
                    .is_ok());
    for (const auto& b : batches) engine->apply_batch(b);
    ASSERT_TRUE(engine->flush_durable().is_ok());
  }
  {
    std::FILE* f = std::fopen((dir + "/index.ckpt").c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64 + 40, SEEK_SET), 0);  // inside the payload
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(c ^ 0x08, f);
    std::fclose(f);
  }
  ConnectivityEngine::RecoveryInfo info;
  expect_recovers_to_prefix(dir, static_cast<std::int64_t>(batches.size()),
                            &info);
  EXPECT_FALSE(info.used_checkpoint);
  EXPECT_EQ(info.checkpoint_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(info.replayed_records, batches.size())
      << "a corrupt checkpoint must not cost any durable batches";
}

TEST_F(Recovery, TornWalTailIsTruncatedNotFatal) {
  const std::string dir = test_dir("torn_tail");
  clean_dir(dir);
  const auto batches = workload();
  EngineOptions opt = durable_options(dir);
  opt.durability.checkpoint_every = 0;
  {
    std::unique_ptr<ConnectivityEngine> engine;
    ASSERT_TRUE(
        ConnectivityEngine::recover(dir, kN, opt, &engine, nullptr).is_ok());
    for (std::size_t i = 0; i + 1 < batches.size(); ++i)
      engine->apply_batch(batches[i]);
  }
  {  // a record header promising payload that never arrived
    std::FILE* f = std::fopen((dir + "/edges.wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint32_t torn[2] = {480, 0};
    ASSERT_EQ(std::fwrite(torn, 1, sizeof torn, f), sizeof torn);
    std::fclose(f);
  }
  ConnectivityEngine::RecoveryInfo info;
  expect_recovers_to_prefix(
      dir, static_cast<std::int64_t>(batches.size() - 1), &info);
  EXPECT_EQ(info.torn_bytes, 8u);
  // The truncated log accepts the dropped batch again and converges.
  expect_continuation_converges(dir);
}

TEST_F(Recovery, UniverseMismatchIsCorruption) {
  const std::string dir = test_dir("wrong_n");
  clean_dir(dir);
  {
    std::unique_ptr<ConnectivityEngine> engine;
    ASSERT_TRUE(ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                            &engine, nullptr)
                    .is_ok());
    engine->apply_batch(workload()[0]);
  }
  std::unique_ptr<ConnectivityEngine> engine;
  EXPECT_EQ(ConnectivityEngine::recover(dir, kN + 1, durable_options(dir),
                                        &engine, nullptr)
                .code(),
            StatusCode::kCorruption);
}

// -------------------------------------------------- typed error injection ---

TEST_F(Recovery, FailedWalAppendLeavesEngineUnchanged) {
  const std::string dir = test_dir("append_error");
  clean_dir(dir);
  const auto batches = workload();
  std::unique_ptr<ConnectivityEngine> engine;
  ASSERT_TRUE(ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                          &engine, nullptr)
                  .is_ok());
  engine->apply_batch(batches[0]);
  const auto before = engine->snapshot();
  const std::uint64_t epoch_before = engine->epoch();

  fp::arm("wal_append_write", fp::Action::kError);
  const auto res = engine->apply_batch(batches[1]);
  fp::disarm_all();
  EXPECT_FALSE(res.applied);
  EXPECT_EQ(res.durability.code(), StatusCode::kIoError);
  EXPECT_EQ(engine->num_batches(), 1u);
  EXPECT_EQ(engine->epoch(), epoch_before) << "no publish on a failed batch";
  EXPECT_TRUE(*engine->snapshot() == *before);

  // The same batch retries cleanly once the fault clears.
  const auto retry = engine->apply_batch(batches[1]);
  EXPECT_TRUE(retry.applied);
  EXPECT_TRUE(*engine->snapshot() == *reference_index(2));
}

TEST_F(Recovery, FailedCheckpointKeepsBatchApplied) {
  const std::string dir = test_dir("ckpt_error");
  clean_dir(dir);
  const auto batches = workload();
  std::unique_ptr<ConnectivityEngine> engine;
  ASSERT_TRUE(ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                          &engine, nullptr)
                  .is_ok());
  fp::arm("checkpoint_write", fp::Action::kError);
  bool saw_checkpoint_failure = false;
  for (std::size_t i = 0; i < 4; ++i) {  // cadence 3: batch 3 checkpoints
    const auto res = engine->apply_batch(batches[i]);
    EXPECT_TRUE(res.applied) << "a checkpoint failure must not drop a batch";
    if (!res.durability.is_ok()) saw_checkpoint_failure = true;
  }
  fp::disarm_all();
  EXPECT_TRUE(saw_checkpoint_failure);
  EXPECT_TRUE(*engine->snapshot() == *reference_index(4));
  engine.reset();
  // Without a checkpoint the WAL alone still recovers everything.
  expect_recovers_to_prefix(dir, 4);
}

TEST_F(Recovery, ErrorSweepAcrossWritePathSitesConverges) {
  // Arm each write-path site with a one-shot error in turn while feeding
  // the whole workload; whatever each injection knocks out, retrying the
  // batch and finishing the stream must converge to the reference.
  const auto batches = workload();
  for (const char* site :
       {"wal_append_write", "wal_fsync", "checkpoint_open",
        "checkpoint_write", "checkpoint_sync", "checkpoint_before_rename",
        "checkpoint_after_rename"}) {
    const std::string dir = test_dir(std::string("sweep_") + site);
    clean_dir(dir);
    std::unique_ptr<ConnectivityEngine> engine;
    ASSERT_TRUE(ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                            &engine, nullptr)
                    .is_ok())
        << site;
    fp::arm(site, fp::Action::kOnce);
    for (const auto& b : batches) {
      auto res = engine->apply_batch(b);
      if (!res.applied) res = engine->apply_batch(b);  // one retry
      ASSERT_TRUE(res.applied) << site;
    }
    fp::disarm_all();
    EXPECT_TRUE(*engine->snapshot() == *reference_index(batches.size()))
        << site;
    engine.reset();
    expect_recovers_to_prefix(dir,
                              static_cast<std::int64_t>(batches.size()));
  }
}

// ------------------------------------------------------------ degradation ---

TEST_F(Recovery, DegradedDurableEngineRecoversUndegraded) {
  const std::string dir = test_dir("degraded");
  clean_dir(dir);
  const auto batches = workload();
  EngineOptions opt = durable_options(dir);
  opt.max_resident_bytes = 1;  // trip immediately
  {
    std::unique_ptr<ConnectivityEngine> engine;
    ASSERT_TRUE(
        ConnectivityEngine::recover(dir, kN, opt, &engine, nullptr).is_ok());
    bool saw_degraded = false;
    for (const auto& b : batches) {
      const auto res = engine->apply_batch(b);
      ASSERT_TRUE(res.applied);
      saw_degraded |= res.degraded;
    }
    ASSERT_TRUE(saw_degraded);
    ASSERT_TRUE(engine->degraded());
    // Degraded queries carry the staleness flag ...
    serve::QueryInfo qi;
    (void)engine->connected(0, 1, &qi);
    EXPECT_TRUE(qi.degraded);
    // ... and the fresh approximate tier keeps serving.
    ASSERT_NE(engine->sketched(), nullptr);
    EXPECT_GT(engine->approx_component_count(), 0.0);
  }
  // The WAL kept the full history even though memory shed it: recovery
  // without the cap yields the exact, un-degraded final state.
  expect_recovers_to_prefix(dir, static_cast<std::int64_t>(batches.size()));
}

// ----------------------------------------------- kill at every failpoint ---

/// Exit predicate for the catalog sweeps: the child either reached the site
/// (kCrash raises SIGKILL — no atexit, no flush, the closest in-process
/// stand-in for power loss) or never executed it and exited 0.
bool killed_or_clean(int exit_status) {
  if (WIFSIGNALED(exit_status)) return WTERMSIG(exit_status) == SIGKILL;
  return WIFEXITED(exit_status) && WEXITSTATUS(exit_status) == 0;
}

class RecoveryDeath : public ::testing::Test {
 protected:
  void SetUp() override {
    // Threadsafe death tests re-exec the binary: the child never inherits
    // pool threads, and code before the EXPECT_EXIT statement re-runs
    // there, so all directory setup happens INSIDE the statement.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
  void TearDown() override { fp::disarm_all(); }
};

TEST_F(RecoveryDeath, KillAtEveryFailpointDuringApply) {
  const auto batches = workload();
  const auto catalog = fp::catalog();
  // Phase 1 (children): for every site, rebuild the directory, arm the
  // crash, feed the workload. Sites off the write path exit 0 with a fully
  // fed directory — still a valid recovery input.
  for (const char* site : catalog) {
    const std::string dir = test_dir(std::string("kill_") + site);
    EXPECT_EXIT(
        {
          clean_dir(dir);
          std::unique_ptr<ConnectivityEngine> engine;
          if (!ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                           &engine, nullptr)
                   .is_ok())
            ::exit(7);
          fp::arm(site, fp::Action::kCrash);
          for (const auto& b : batches)
            if (!engine->apply_batch(b).applied) ::exit(8);
          ::exit(0);
        },
        killed_or_clean, "")
        << site;
  }
  // Phase 2 (parent): every directory — wherever the kill landed — must
  // recover to the reference prefix and then resume to the full stream.
  for (const char* site : catalog) {
    const std::string dir = test_dir(std::string("kill_") + site);
    SCOPED_TRACE(site);
    expect_recovers_to_prefix(dir);
    expect_continuation_converges(dir);
  }
}

TEST_F(RecoveryDeath, KillAtEveryFailpointDuringRecovery) {
  const auto batches = workload();
  const auto catalog = fp::catalog();
  // Crash during recovery itself: the child first builds a complete
  // durable state cleanly, then arms the site and recovers again. Read-path
  // sites (mmap/checkpoint/wal_replay) die there; recovery must be
  // idempotent, so the parent's third recovery sees the full stream.
  for (const char* site : catalog) {
    const std::string dir = test_dir(std::string("rkill_") + site);
    EXPECT_EXIT(
        {
          clean_dir(dir);
          {
            std::unique_ptr<ConnectivityEngine> engine;
            if (!ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                             &engine, nullptr)
                     .is_ok())
              ::exit(7);
            for (const auto& b : batches)
              if (!engine->apply_batch(b).applied) ::exit(8);
            if (!engine->flush_durable().is_ok()) ::exit(9);
          }
          fp::arm(site, fp::Action::kCrash);
          std::unique_ptr<ConnectivityEngine> again;
          (void)ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                            &again, nullptr);
          ::exit(0);
        },
        killed_or_clean, "")
        << site;
  }
  for (const char* site : catalog) {
    const std::string dir = test_dir(std::string("rkill_") + site);
    SCOPED_TRACE(site);
    expect_recovers_to_prefix(dir, static_cast<std::int64_t>(batches.size()));
  }
}

TEST_F(RecoveryDeath, KillAfterWalAppendLosesNothing) {
  // The sharpest single case: die between the durable append and the
  // in-memory merge of batch 4. The WAL already owns the batch, so the
  // recovered engine must include it — write-ahead means the crash window
  // never loses an acknowledged write.
  const auto batches = workload();
  const std::string dir = test_dir("kill_after_append");
  EXPECT_EXIT(
      {
        clean_dir(dir);
        std::unique_ptr<ConnectivityEngine> engine;
        if (!ConnectivityEngine::recover(dir, kN, durable_options(dir),
                                         &engine, nullptr)
                 .is_ok())
          ::exit(7);
        fp::arm("engine_after_wal_append", fp::Action::kCrash,
                /*skip_hits=*/3);
        for (const auto& b : batches) (void)engine->apply_batch(b);
        ::exit(0);
      },
      ::testing::KilledBySignal(SIGKILL), "");
  // The appended-but-unmerged batch must survive the crash.
  expect_recovers_to_prefix(dir, 4);
  expect_continuation_converges(dir);
}

}  // namespace
}  // namespace logcc
