// Fuzz-style corpus for the LOGCCSR1/LOGCCSR2 binary loaders.
//
// A valid file is generated once, then a deterministic corpus of ~70
// mutants is derived from it: bit flips in the magic, version, endianness
// tag and count fields, bit flips across the offsets and adjacency arrays,
// truncations at every structural boundary, trailing garbage, and a few
// degenerate files. Every mutant must be *cleanly rejected* — by
// BinaryGraph::open + validate_csr, by load_dataset, and by
// load_dataset_zero_copy — never crash, never hand back a graph. (Under
// ASan/UBSan in CI this doubles as a memory-safety harness for the
// header/envelope/structure validators.)
//
// The corpus is seeded (util::mix64), so a failure names a reproducible
// entry. The base graph is simple (canonicalized), which makes every
// single-bit adjacency/offset mutation detectably inconsistent: a moved or
// rewritten arc always breaks sortedness, symmetry, or the header edge
// count.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace logcc {
namespace {

using graph::BinaryCsrHeader;

constexpr std::size_t kHeaderBytes = sizeof(BinaryCsrHeader);

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good());
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.good());
  os.write(reinterpret_cast<const char*>(b.data()),
           static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(os.good());
}

struct Mutant {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

class FuzzBinaryLoader : public ::testing::Test {
 protected:
  void SetUp() override {
    base_path_ = ::testing::TempDir() + "/fuzz_base.logccsr";
    mutant_path_ = ::testing::TempDir() + "/fuzz_mutant.logccsr";
    graph::EdgeList el = graph::make_gnm(97, 300, 0xF00D);
    el.canonicalize();  // simple graph: every 1-bit payload mutation detects
    std::string error;
    ASSERT_TRUE(graph::write_binary_csr(base_path_, el, &error)) << error;
    base_ = read_file(base_path_);
    ASSERT_GT(base_.size(), kHeaderBytes);
    std::memcpy(&header_, base_.data(), kHeaderBytes);
  }

  void TearDown() override {
    std::remove(base_path_.c_str());
    std::remove(mutant_path_.c_str());
  }

  Mutant flip(const std::string& name, std::size_t byte, unsigned bit) const {
    Mutant m{name + "@" + std::to_string(byte) + "." + std::to_string(bit),
             base_};
    m.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
    return m;
  }

  // One seeded bit flip inside [lo, hi).
  Mutant flip_in(const std::string& name, std::size_t lo, std::size_t hi,
                 std::uint64_t seed) const {
    const std::size_t byte = lo + util::mix64(0xBADF, seed, lo) % (hi - lo);
    const unsigned bit =
        static_cast<unsigned>(util::mix64(0xBADF, seed, hi) % 8);
    return flip(name, byte, bit);
  }

  std::vector<Mutant> corpus() const {
    std::vector<Mutant> out;
    const std::size_t offsets_lo = kHeaderBytes;
    const std::size_t offsets_hi =
        kHeaderBytes + (static_cast<std::size_t>(header_.n) + 1) * 8;
    const std::size_t adj_hi = base_.size();

    // Header fields. Every byte of the magic; seeded flips in version,
    // endian tag, n, num_arcs, num_edges (reserved bytes are skipped — the
    // loader ignores them by design).
    for (std::size_t b = 0; b < 8; ++b)
      out.push_back(flip("magic", b, static_cast<unsigned>(
                                         util::mix64(1, b, 0) % 8)));
    for (std::uint64_t s = 0; s < 3; ++s)
      out.push_back(flip_in("version", 8, 12, s));
    for (std::uint64_t s = 0; s < 3; ++s)
      out.push_back(flip_in("endian", 12, 16, s));
    for (std::uint64_t s = 0; s < 4; ++s)
      out.push_back(flip_in("field-n", 16, 24, s));
    for (std::uint64_t s = 0; s < 4; ++s)
      out.push_back(flip_in("field-arcs", 24, 32, s));
    for (std::uint64_t s = 0; s < 4; ++s)
      out.push_back(flip_in("field-edges", 32, 40, s));

    // Payload: offsets array and adjacency array, seeded positions.
    for (std::uint64_t s = 0; s < 12; ++s)
      out.push_back(flip_in("offsets", offsets_lo, offsets_hi, s));
    for (std::uint64_t s = 0; s < 12; ++s)
      out.push_back(flip_in("adjacency", offsets_hi, adj_hi, s));

    // Truncations at structural boundaries (and just off them).
    for (std::size_t cut : {std::size_t{0}, std::size_t{7}, kHeaderBytes / 2,
                            kHeaderBytes, offsets_hi - 3, offsets_hi,
                            adj_hi - 4, adj_hi - 1}) {
      Mutant m{"truncate@" + std::to_string(cut), base_};
      m.bytes.resize(cut);
      out.push_back(std::move(m));
    }
    // Trailing garbage (the size check is exact).
    for (std::size_t extra : {std::size_t{1}, std::size_t{8}}) {
      Mutant m{"append@" + std::to_string(extra), base_};
      m.bytes.insert(m.bytes.end(), extra, 0xAB);
      out.push_back(std::move(m));
    }
    return out;
  }

  std::string base_path_;
  std::string mutant_path_;
  std::vector<std::uint8_t> base_;
  BinaryCsrHeader header_{};
};

TEST_F(FuzzBinaryLoader, BaselineIsAcceptedAndCorpusIsLargeEnough) {
  graph::DatasetHandle handle;
  std::string error;
  ASSERT_TRUE(graph::load_dataset_zero_copy(base_path_, handle, &error))
      << error;
  EXPECT_TRUE(handle.input().csr_backed());
  EXPECT_GE(corpus().size(), 50u);
}

TEST_F(FuzzBinaryLoader, MultiplicityAsymmetricFileIsRejected) {
  // Crafted (not bit-flipped) attack on the validator: adj(0) = [1, 1, 1],
  // adj(1) = [0]. Sorted, in-range, membership-symmetric, and
  // (arcs 4 + loops 0) / 2 == 2 matches a header edge count of 2 — but the
  // canonical smaller-endpoint enumeration yields 3 edges, so anything
  // sized from the header (spanning-forest `in_forest[orig]` marks) would
  // be overrun. validate_csr must reject on multiplicity symmetry / the
  // canonical count, never hand the view out.
  std::vector<std::uint8_t> bytes;
  BinaryCsrHeader h{};
  std::memcpy(h.magic, graph::kBinaryCsrMagic, sizeof(h.magic));
  h.version = graph::kBinaryCsrVersion;
  h.endian = graph::kEndianTag;
  h.n = 2;
  h.num_arcs = 4;
  h.num_edges = 2;
  bytes.resize(kHeaderBytes);
  std::memcpy(bytes.data(), &h, kHeaderBytes);
  auto push_u64 = [&](std::uint64_t x) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&x);
    bytes.insert(bytes.end(), p, p + 8);
  };
  auto push_u32 = [&](std::uint32_t x) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&x);
    bytes.insert(bytes.end(), p, p + 4);
  };
  push_u64(0);  // offsets[0]
  push_u64(3);  // offsets[1]
  push_u64(4);  // offsets[2] == num_arcs
  for (std::uint32_t w : {1u, 1u, 1u, 0u}) push_u32(w);
  write_file(mutant_path_, bytes);

  graph::BinaryGraph bg;
  std::string error;
  ASSERT_TRUE(bg.open(mutant_path_, &error)) << error;  // envelope is fine
  EXPECT_FALSE(graph::validate_csr(bg.view(), &error));
  graph::DatasetHandle handle;
  EXPECT_FALSE(graph::load_dataset_zero_copy(mutant_path_, handle, &error));
  graph::EdgeList el;
  EXPECT_FALSE(graph::load_dataset(mutant_path_, el, nullptr, &error));
}

TEST_F(FuzzBinaryLoader, EveryMutantIsCleanlyRejectedByEveryLoadPath) {
  for (const Mutant& m : corpus()) {
    write_file(mutant_path_, m.bytes);

    // Raw open path: either the O(1) envelope rejects it, or the deep
    // validator must. A mutant passing both would mean corrupt bytes can
    // reach the algorithms.
    graph::BinaryGraph bg;
    std::string error;
    if (bg.open(mutant_path_, &error)) {
      EXPECT_FALSE(graph::validate_csr(bg.view(), &error))
          << m.name << ": corrupt file passed open + deep validation";
    } else {
      EXPECT_FALSE(error.empty()) << m.name;
    }

    // load_dataset (materializing) — a mutated magic demotes the file to
    // the text parser, which must also reject the binary junk.
    graph::EdgeList el;
    error.clear();
    EXPECT_FALSE(graph::load_dataset(mutant_path_, el, nullptr, &error))
        << m.name << ": load_dataset returned a graph from a corrupt file";
    EXPECT_FALSE(error.empty()) << m.name;

    // Zero-copy path.
    graph::DatasetHandle handle;
    error.clear();
    EXPECT_FALSE(graph::load_dataset_zero_copy(mutant_path_, handle, &error))
        << m.name
        << ": load_dataset_zero_copy returned a graph from a corrupt file";
  }
}

// ------------------------------------------------------- LOGCCSR2 corpus ---

/// Same harness over a LOGCCSR2 base file: the v2 loader must reject the
/// identical mutation classes (8-byte adjacency entries shift the payload
/// boundaries, and the magic/version coupling adds the chimera class).
class FuzzBinaryLoaderV2 : public ::testing::Test {
 protected:
  void SetUp() override {
    base_path_ = ::testing::TempDir() + "/fuzz_base_v2.logccsr";
    mutant_path_ = ::testing::TempDir() + "/fuzz_mutant_v2.logccsr";
    graph::EdgeList el = graph::make_gnm(97, 300, 0xF00D);
    el.canonicalize();
    graph::EdgeList64 wide;
    wide.n = el.n;
    for (const graph::Edge& e : el.edges) wide.add(e.u, e.v);
    std::string error;
    ASSERT_TRUE(graph::write_binary_csr(base_path_, wide, &error)) << error;
    base_ = read_file(base_path_);
    ASSERT_GT(base_.size(), kHeaderBytes);
    std::memcpy(&header_, base_.data(), kHeaderBytes);
    ASSERT_EQ(header_.version, graph::kBinaryCsrVersionV2);
  }

  void TearDown() override {
    std::remove(base_path_.c_str());
    std::remove(mutant_path_.c_str());
  }

  Mutant flip(const std::string& name, std::size_t byte, unsigned bit) const {
    Mutant m{name + "@" + std::to_string(byte) + "." + std::to_string(bit),
             base_};
    m.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
    return m;
  }

  Mutant flip_in(const std::string& name, std::size_t lo, std::size_t hi,
                 std::uint64_t seed) const {
    const std::size_t byte = lo + util::mix64(0xBEEF, seed, lo) % (hi - lo);
    const unsigned bit =
        static_cast<unsigned>(util::mix64(0xBEEF, seed, hi) % 8);
    return flip(name, byte, bit);
  }

  std::vector<Mutant> corpus() const {
    std::vector<Mutant> out;
    const std::size_t offsets_lo = kHeaderBytes;
    const std::size_t offsets_hi =
        kHeaderBytes + (static_cast<std::size_t>(header_.n) + 1) * 8;
    const std::size_t adj_hi = base_.size();  // 8-byte entries in v2

    // Every magic byte — byte 7 with bit 0 forced in, because that flip is
    // exactly the "LOGCCSR1 magic, version 2" chimera.
    for (std::size_t b = 0; b < 8; ++b)
      out.push_back(flip("magic", b, static_cast<unsigned>(
                                         util::mix64(2, b, 0) % 8)));
    out.push_back(flip("magic-v1-chimera", 7, 0));
    for (std::uint64_t s = 0; s < 3; ++s)
      out.push_back(flip_in("version", 8, 12, s));
    for (std::uint64_t s = 0; s < 3; ++s)
      out.push_back(flip_in("endian", 12, 16, s));
    for (std::uint64_t s = 0; s < 4; ++s)
      out.push_back(flip_in("field-n", 16, 24, s));
    for (std::uint64_t s = 0; s < 4; ++s)
      out.push_back(flip_in("field-arcs", 24, 32, s));
    for (std::uint64_t s = 0; s < 4; ++s)
      out.push_back(flip_in("field-edges", 32, 40, s));

    for (std::uint64_t s = 0; s < 12; ++s)
      out.push_back(flip_in("offsets", offsets_lo, offsets_hi, s));
    for (std::uint64_t s = 0; s < 12; ++s)
      out.push_back(flip_in("adjacency", offsets_hi, adj_hi, s));

    for (std::size_t cut : {std::size_t{0}, std::size_t{7}, kHeaderBytes / 2,
                            kHeaderBytes, offsets_hi - 3, offsets_hi,
                            adj_hi - 8, adj_hi - 1}) {
      Mutant m{"truncate@" + std::to_string(cut), base_};
      m.bytes.resize(cut);
      out.push_back(std::move(m));
    }
    for (std::size_t extra : {std::size_t{1}, std::size_t{8}}) {
      Mutant m{"append@" + std::to_string(extra), base_};
      m.bytes.insert(m.bytes.end(), extra, 0xAB);
      out.push_back(std::move(m));
    }
    return out;
  }

  std::string base_path_;
  std::string mutant_path_;
  std::vector<std::uint8_t> base_;
  BinaryCsrHeader header_{};
};

TEST_F(FuzzBinaryLoaderV2, BaselineIsAcceptedOnTheWidePath) {
  graph::DatasetHandle handle;
  std::string error;
  ASSERT_TRUE(graph::load_dataset_zero_copy(base_path_, handle, &error))
      << error;
  EXPECT_TRUE(handle.wide());
  EXPECT_TRUE(handle.input64().csr_backed());
  EXPECT_GE(corpus().size(), 50u);
}

TEST_F(FuzzBinaryLoaderV2, EveryMutantIsCleanlyRejectedByEveryLoadPath) {
  for (const Mutant& m : corpus()) {
    write_file(mutant_path_, m.bytes);

    graph::BinaryGraph bg;
    std::string error;
    if (bg.open(mutant_path_, &error)) {
      const bool deep_ok = bg.wide()
                               ? graph::validate_csr(bg.view64(), &error)
                               : graph::validate_csr(bg.view(), &error);
      EXPECT_FALSE(deep_ok)
          << m.name << ": corrupt file passed open + deep validation";
    } else {
      EXPECT_FALSE(error.empty()) << m.name;
    }

    graph::EdgeList el;
    error.clear();
    EXPECT_FALSE(graph::load_dataset(mutant_path_, el, nullptr, &error))
        << m.name << ": load_dataset returned a graph from a corrupt file";
    EXPECT_FALSE(error.empty()) << m.name;

    graph::DatasetHandle handle;
    error.clear();
    EXPECT_FALSE(graph::load_dataset_zero_copy(mutant_path_, handle, &error))
        << m.name
        << ": load_dataset_zero_copy returned a graph from a corrupt file";
  }
}

TEST_F(FuzzBinaryLoaderV2, ChimeraHeadersAreRejectedBeforeAnyPayloadRead) {
  // Crafted (not bit-flipped) chimeras: each magic paired with the other
  // format's version number. The magic IS the format — a mismatched
  // version field must fail the envelope check, whatever the payload.
  struct Chimera {
    const char* name;
    const char* magic;
    std::uint32_t version;
  };
  const Chimera cases[] = {
      {"v2-magic-v1-version", graph::kBinaryCsrMagicV2,
       graph::kBinaryCsrVersion},
      {"v1-magic-v2-version", graph::kBinaryCsrMagic,
       graph::kBinaryCsrVersionV2},
      {"v2-magic-version-0", graph::kBinaryCsrMagicV2, 0},
      {"v2-magic-version-3", graph::kBinaryCsrMagicV2, 3},
  };
  for (const Chimera& c : cases) {
    std::vector<std::uint8_t> bytes = base_;
    BinaryCsrHeader h = header_;
    std::memcpy(h.magic, c.magic, sizeof(h.magic));
    h.version = c.version;
    std::memcpy(bytes.data(), &h, kHeaderBytes);
    write_file(mutant_path_, bytes);

    graph::BinaryGraph bg;
    std::string error;
    EXPECT_FALSE(bg.open(mutant_path_, &error)) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
    graph::DatasetHandle handle;
    error.clear();
    EXPECT_FALSE(graph::load_dataset_zero_copy(mutant_path_, handle, &error))
        << c.name;
  }
}

TEST_F(FuzzBinaryLoaderV2, WideSentinelIdsAreRejected) {
  // kInvalidVertex64 may not appear as an id: patch the first adjacency
  // entry to the sentinel. (Structure stays sorted-compatible only by
  // luck; the point is the loader rejects on the sentinel, crash-free.)
  const std::size_t offsets_hi =
      kHeaderBytes + (static_cast<std::size_t>(header_.n) + 1) * 8;
  std::vector<std::uint8_t> bytes = base_;
  const std::uint64_t sentinel = graph::kInvalidVertex64;
  std::memcpy(bytes.data() + offsets_hi, &sentinel, 8);
  write_file(mutant_path_, bytes);

  graph::BinaryGraph bg;
  std::string error;
  if (bg.open(mutant_path_, &error)) {
    EXPECT_FALSE(graph::validate_csr(bg.view64(), &error));
  }
  graph::DatasetHandle handle;
  error.clear();
  EXPECT_FALSE(graph::load_dataset_zero_copy(mutant_path_, handle, &error));
}

}  // namespace
}  // namespace logcc
