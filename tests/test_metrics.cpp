#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace logcc::core {
namespace {

TEST(RunStats, DefaultsAreZero) {
  RunStats s;
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_EQ(s.phases, 0u);
  EXPECT_EQ(s.prepare_phases, 0u);
  EXPECT_EQ(s.pram_steps, 0u);
  EXPECT_EQ(s.max_level, 0u);
  EXPECT_FALSE(s.finisher_used);
  EXPECT_FALSE(s.prepare_used);
  EXPECT_TRUE(s.level_histogram.empty());
}

TEST(RunStats, BumpLevelHistogramGrows) {
  RunStats s;
  s.bump_level_histogram(3);
  ASSERT_EQ(s.level_histogram.size(), 4u);
  EXPECT_EQ(s.level_histogram[3], 1u);
  s.bump_level_histogram(3);
  s.bump_level_histogram(1);
  EXPECT_EQ(s.level_histogram[3], 2u);
  EXPECT_EQ(s.level_histogram[1], 1u);
  EXPECT_EQ(s.level_histogram[0], 0u);
}

TEST(RunStats, AbsorbSumsAndMaxes) {
  RunStats a, b;
  a.rounds = 1;
  a.prepare_phases = 2;
  a.peak_space_words = 100;
  a.total_block_words = 10;
  b.rounds = 3;
  b.prepare_phases = 4;
  b.peak_space_words = 50;
  b.total_block_words = 20;
  b.prepare_used = true;
  a.absorb(b);
  EXPECT_EQ(a.rounds, 4u);
  EXPECT_EQ(a.prepare_phases, 6u);
  EXPECT_EQ(a.peak_space_words, 100u);  // max, not sum
  EXPECT_EQ(a.total_block_words, 30u);  // sum
  EXPECT_TRUE(a.prepare_used);
  EXPECT_FALSE(a.finisher_used);
}

TEST(RunStats, AbsorbMergesHistograms) {
  RunStats a, b;
  a.level_histogram = {1, 2};
  b.level_histogram = {0, 5, 7};
  a.absorb(b);
  ASSERT_EQ(a.level_histogram.size(), 3u);
  EXPECT_EQ(a.level_histogram[0], 1u);
  EXPECT_EQ(a.level_histogram[1], 7u);
  EXPECT_EQ(a.level_histogram[2], 7u);
}

TEST(RunStats, AbsorbEmptyIsIdentity) {
  RunStats a;
  a.rounds = 5;
  a.max_level = 3;
  RunStats before = a;
  a.absorb(RunStats{});
  EXPECT_EQ(a.rounds, before.rounds);
  EXPECT_EQ(a.max_level, before.max_level);
}

}  // namespace
}  // namespace logcc::core
