#include "util/hashing.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/random.hpp"

namespace logcc::util {
namespace {

TEST(PairwiseHash, DefaultIsIdentityLike) {
  PairwiseHash h;  // a = 1, b = 0
  EXPECT_EQ(h.raw(5), 5u);
  EXPECT_EQ(h.raw(0), 0u);
}

TEST(PairwiseHash, RawStaysBelowPrime) {
  Xoshiro256 rng(3);
  for (int t = 0; t < 16; ++t) {
    PairwiseHash h = PairwiseHash::sample(rng);
    for (std::uint64_t x : std::initializer_list<std::uint64_t>{
             0, 1, 12345, PairwiseHash::kPrime - 1, ~0ULL}) {
      EXPECT_LT(h.raw(x), PairwiseHash::kPrime);
    }
  }
}

TEST(PairwiseHash, RangeReductionInRange) {
  PairwiseHash h = PairwiseHash::from_seed(42);
  for (std::uint64_t range : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (std::uint64_t x = 0; x < 500; ++x) EXPECT_LT(h(x, range), range);
  }
}

TEST(PairwiseHash, FromSeedDeterministic) {
  PairwiseHash a = PairwiseHash::from_seed(5, 1);
  PairwiseHash b = PairwiseHash::from_seed(5, 1);
  EXPECT_EQ(a.a(), b.a());
  EXPECT_EQ(a.b(), b.b());
  PairwiseHash c = PairwiseHash::from_seed(5, 2);
  EXPECT_TRUE(c.a() != a.a() || c.b() != a.b());
}

TEST(PairwiseHash, InjectiveBeforeRangeReduction) {
  // (a x + b) mod p is a bijection on [0, p) when a != 0.
  PairwiseHash h = PairwiseHash::from_seed(99);
  std::map<std::uint64_t, std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 4096; ++x) {
    auto [it, inserted] = seen.emplace(h.raw(x), x);
    EXPECT_TRUE(inserted) << "raw collision between " << x << " and "
                          << it->second;
  }
}

TEST(PairwiseHash, BucketsRoughlyBalanced) {
  PairwiseHash h = PairwiseHash::from_seed(1234);
  constexpr std::uint64_t kRange = 16;
  constexpr int kSamples = 64000;
  std::vector<int> count(kRange, 0);
  for (int x = 0; x < kSamples; ++x) ++count[h(x, kRange)];
  for (std::uint64_t bkt = 0; bkt < kRange; ++bkt) {
    EXPECT_GT(count[bkt], kSamples / kRange * 0.85);
    EXPECT_LT(count[bkt], kSamples / kRange * 1.15);
  }
}

TEST(PairwiseHash, PairwiseCollisionRateNearUniform) {
  // Empirical pairwise independence check: for random distinct x != y,
  // Pr[h(x) == h(y)] over functions should be ~ 1/range.
  constexpr std::uint64_t kRange = 64;
  int collisions = 0;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    PairwiseHash h = PairwiseHash::from_seed(777, t);
    collisions += h(2 * t + 1, kRange) == h(2 * t + 2, kRange);
  }
  double rate = static_cast<double>(collisions) / kTrials;
  EXPECT_NEAR(rate, 1.0 / kRange, 0.008);
}

TEST(ConstantHash, AlwaysSameCell) {
  ConstantHash h{3};
  for (std::uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h(x, 8), 3u);
  EXPECT_EQ(h(5, 2), 1u);  // value % range
}

}  // namespace
}  // namespace logcc::util
