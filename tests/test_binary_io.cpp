#include "graph/binary_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "graph/io.hpp"
#include "util/mmap_file.hpp"
#include "util/parallel.hpp"

namespace logcc::graph {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/logcc_binio_" + name;
}

std::vector<Edge> canonical_edges(EdgeList el) {
  for (auto& e : el.edges)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(el.edges.begin(), el.edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return el.edges;
}

std::vector<char> read_all(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_all(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------- round trip ---

TEST(BinaryIo, TextToBinaryRoundTripEqualsDirectLoad) {
  EdgeList el = make_gnm(500, 1500, 7);
  const std::string text = tmp_path("rt.txt");
  const std::string bin = tmp_path("rt.bin");
  ASSERT_TRUE(write_edge_list_file(text, el));
  std::string error;
  ASSERT_TRUE(convert_text_to_binary(text, bin, &error)) << error;

  EdgeList direct;
  ASSERT_TRUE(read_edge_list_file(text, direct));
  BinaryGraph bg;
  ASSERT_TRUE(bg.open(bin, &error)) << error;
  EXPECT_TRUE(validate_csr(bg.view(), &error)) << error;
  EdgeList loaded = edge_list_from_csr(bg.view());

  EXPECT_EQ(loaded.n, direct.n);
  EXPECT_EQ(canonical_edges(loaded), canonical_edges(direct));
  EXPECT_TRUE(same_partition(bfs_components(Graph::from_edges(direct)),
                             bfs_components(Graph::from_edges(loaded))));
}

TEST(BinaryIo, PreservesParallelEdgesAndSelfLoops) {
  EdgeList el;
  el.n = 5;
  el.add(0, 1);
  el.add(1, 0);  // parallel copy, reversed orientation
  el.add(2, 2);  // self-loop
  el.add(1, 3);
  const std::string bin = tmp_path("multi.bin");
  std::string error;
  ASSERT_TRUE(write_binary_csr(bin, el, &error)) << error;
  BinaryGraph bg;
  ASSERT_TRUE(bg.open(bin, &error)) << error;
  EXPECT_TRUE(validate_csr(bg.view(), &error)) << error;
  EXPECT_EQ(bg.view().num_edges(), 4u);
  EXPECT_EQ(bg.view().num_arcs(), 7u);  // 2*3 proper edges + 1 self-loop arc
  EdgeList loaded = edge_list_from_csr(bg.view());
  EXPECT_EQ(canonical_edges(loaded), canonical_edges(el));
}

TEST(BinaryIo, IsolatedVerticesSurvive) {
  EdgeList el;
  el.n = 10;  // vertices 3..9 isolated
  el.add(0, 1);
  el.add(1, 2);
  const std::string bin = tmp_path("iso.bin");
  std::string error;
  ASSERT_TRUE(write_binary_csr(bin, el, &error)) << error;
  BinaryGraph bg;
  ASSERT_TRUE(bg.open(bin, &error)) << error;
  EXPECT_EQ(bg.view().num_vertices(), 10u);
  EXPECT_EQ(bg.view().degree(7), 0u);
  EXPECT_EQ(edge_list_from_csr(bg.view()).n, 10u);
}

// ------------------------------------------------- streaming == in-memory ---

TEST(BinaryIo, StreamingWriterMatchesMaterializedWriter) {
  // Streaming families byte-match the materialized write (same canonical
  // CSR); fallback families (gnm2) go through the replay path and must
  // byte-match too.
  for (const std::string family :
       {"path", "star", "grid", "rmat", "lollipop", "gnm2"}) {
    SCOPED_TRACE(family);
    const std::uint64_t n = 300, seed = 11;
    FamilyStream fs = make_family_stream(family, n, seed);
    EdgeList el = make_family(family, n, seed);
    EXPECT_EQ(fs.num_vertices, el.n);

    const std::string a = tmp_path(family + "_stream.bin");
    const std::string b = tmp_path(family + "_mat.bin");
    std::string error;
    ASSERT_TRUE(stream_family_to_binary(family, n, seed, a, &error)) << error;
    ASSERT_TRUE(write_binary_csr(b, el, &error)) << error;
    EXPECT_EQ(read_all(a), read_all(b));
  }
}

TEST(BinaryIo, StreamingFamiliesReportStreams) {
  EXPECT_TRUE(make_family_stream("grid", 100, 1).streams);
  EXPECT_TRUE(make_family_stream("rmat", 100, 1).streams);
  EXPECT_TRUE(make_family_stream("path", 100, 1).streams);
  EXPECT_TRUE(make_family_stream("star", 100, 1).streams);
  EXPECT_FALSE(make_family_stream("gnm2", 100, 1).streams);
  EXPECT_FALSE(make_family_stream("pref", 100, 1).streams);
}

TEST(BinaryIo, StreamingWriterRemovesFileOnReplayMismatch) {
  const std::string bin = tmp_path("mismatch.bin");
  std::string error;
  int call = 0;
  EXPECT_FALSE(write_binary_csr_streaming(
      bin, 4,
      [&call](const EdgeSink& sink) {
        // Different sequence on the second pass: the writer must fail and
        // must not leave a half-written (but validly-headed) file behind.
        sink(0, 1);
        if (call++ > 0) sink(2, 3);
      },
      &error));
  EXPECT_NE(error.find("replay"), std::string::npos);
  EXPECT_FALSE(sniff_binary_csr(bin));
  BinaryGraph bg;
  EXPECT_FALSE(bg.open(bin));
}

TEST(BinaryIo, StreamingWriterRejectsOutOfRangeEndpoint) {
  const std::string bin = tmp_path("oob.bin");
  std::string error;
  EXPECT_FALSE(write_binary_csr_streaming(
      bin, 3,
      [](const EdgeSink& sink) {
        sink(0, 1);
        sink(1, 7);  // >= n
      },
      &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

// -------------------------------------------------------- header hardening ---

class BinaryIoHeader : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = tmp_path("hdr.bin");
    std::string error;
    ASSERT_TRUE(write_binary_csr(path_, make_grid(8, 8), &error)) << error;
    bytes_ = read_all(path_);
    ASSERT_GE(bytes_.size(), 64u);
  }
  // Rewrites the file with `bytes_` and expects open() to fail with `needle`
  // in the error message.
  void expect_rejected(const std::string& needle) {
    write_all(path_, bytes_);
    BinaryGraph bg;
    std::string error;
    EXPECT_FALSE(bg.open(path_, &error));
    EXPECT_NE(error.find(needle), std::string::npos) << "error was: " << error;
  }
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(BinaryIoHeader, AcceptsPristineFile) {
  BinaryGraph bg;
  std::string error;
  EXPECT_TRUE(bg.open(path_, &error)) << error;
  EXPECT_EQ(bg.view().num_vertices(), 64u);
  EXPECT_TRUE(validate_csr(bg.view(), &error)) << error;
}

TEST_F(BinaryIoHeader, RejectsBadMagic) {
  bytes_[0] = 'X';
  expect_rejected("magic");
}

TEST_F(BinaryIoHeader, RejectsForeignEndianness) {
  // A foreign-endian writer stores the same tag value with its bytes in the
  // opposite order, so this reader decodes the byteswapped tag. Simulate by
  // reversing the tag's on-disk bytes (offset 12: magic[8] + version u32).
  std::reverse(bytes_.begin() + 12, bytes_.begin() + 16);
  expect_rejected("endian");
}

TEST_F(BinaryIoHeader, RejectsCorruptEndianTag) {
  bytes_[12] = 0x42;
  expect_rejected("endian");
}

TEST_F(BinaryIoHeader, RejectsUnsupportedVersion) {
  bytes_[8] = 99;  // version u32 at offset 8 (little-endian low byte)
  expect_rejected("version");
}

TEST_F(BinaryIoHeader, RejectsTruncatedBody) {
  bytes_.resize(bytes_.size() - 10);
  expect_rejected("size mismatch");
}

TEST_F(BinaryIoHeader, RejectsTruncatedHeader) {
  bytes_.resize(32);
  expect_rejected("truncated");
}

TEST_F(BinaryIoHeader, RejectsTrailingGarbage) {
  bytes_.push_back(0);
  expect_rejected("size mismatch");
}

TEST_F(BinaryIoHeader, RejectsOverflowingSizeFields) {
  // n = 2^32 - 1 (the largest the loader tolerates) with num_arcs chosen so
  // the 64-bit expected-size computation would wrap to exactly this file's
  // 72 bytes. The 128-bit check must reject instead of reading out of
  // bounds.
  BinaryCsrHeader h{};
  std::memcpy(h.magic, kBinaryCsrMagic, sizeof(h.magic));
  h.version = kBinaryCsrVersion;
  h.endian = kEndianTag;
  h.n = 0xFFFFFFFFull;
  const std::uint64_t offsets_bytes = (h.n + 1) * 8;
  h.num_arcs = (0 - (64 + offsets_bytes + 8 - 72)) / 4;  // mod-2^64 wrap
  h.num_edges = 0;
  bytes_.assign(sizeof(h) + 8, 0);  // header + a single zero offsets entry
  std::memcpy(bytes_.data(), &h, sizeof(h));
  expect_rejected("size mismatch");
}

TEST_F(BinaryIoHeader, RejectsSentinelVertexCount) {
  // n = 2^32 would make id 0xFFFFFFFF (= kInvalidVertex) addressable; both
  // the loader and the writer must refuse.
  BinaryCsrHeader h{};
  std::memcpy(h.magic, kBinaryCsrMagic, sizeof(h.magic));
  h.version = kBinaryCsrVersion;
  h.endian = kEndianTag;
  h.n = std::uint64_t{1} << 32;
  bytes_.assign(sizeof(h), 0);
  std::memcpy(bytes_.data(), &h, sizeof(h));
  expect_rejected("32-bit id space");

  std::string error;
  EXPECT_FALSE(write_binary_csr_streaming(
      tmp_path("sentinel.bin"), std::uint64_t{1} << 32,
      [](const EdgeSink&) {}, &error));
  EXPECT_NE(error.find("32-bit id space"), std::string::npos);
}

TEST_F(BinaryIoHeader, LoadDatasetRejectsCorruptInteriorOffsets) {
  // Envelope stays intact (offsets[0] == 0, offsets[n] == num_arcs) but an
  // interior offset points far outside the arc array; load_dataset must
  // fail cleanly instead of reading out of bounds. Offset entry u=1 lives
  // at byte 64 + 8.
  std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(bytes_.data() + 64 + 8, &huge, sizeof(huge));
  write_all(path_, bytes_);
  BinaryGraph bg;
  std::string error;
  ASSERT_TRUE(bg.open(path_, &error)) << error;  // envelope-only check passes
  EXPECT_FALSE(validate_csr_structure(bg.view(), &error));
  EdgeList el;
  EXPECT_FALSE(load_dataset(path_, el, nullptr, &error));
  EXPECT_NE(error.find("corrupt"), std::string::npos);
}

TEST_F(BinaryIoHeader, ValidateCatchesCorruptAdjacency) {
  // Clobber one adjacency entry past the offsets array: symmetry breaks.
  const std::size_t adj_start = 64 + (64 + 1) * 8;
  ASSERT_LT(adj_start + 4, bytes_.size());
  bytes_[adj_start] = 63;
  bytes_[adj_start + 1] = 0;
  write_all(path_, bytes_);
  BinaryGraph bg;
  std::string error;
  ASSERT_TRUE(bg.open(path_, &error)) << error;  // envelope still fine
  EXPECT_FALSE(validate_csr(bg.view(), &error));
}

// ----------------------------------------------------------- view + loader ---

TEST(BinaryIo, CsrViewAccessors) {
  const std::string bin = tmp_path("view.bin");
  std::string error;
  ASSERT_TRUE(write_binary_csr(bin, make_grid(3, 3), &error)) << error;
  BinaryGraph bg;
  ASSERT_TRUE(bg.open(bin, &error)) << error;
  const CsrView& v = bg.view();
  EXPECT_EQ(v.num_vertices(), 9u);
  EXPECT_EQ(v.num_edges(), 12u);
  EXPECT_EQ(v.num_arcs(), 24u);
  EXPECT_EQ(v.degree(4), 4u);  // center of the 3x3 grid
  auto nb = v.neighbors(4);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(std::vector<VertexId>(nb.begin(), nb.end()),
            (std::vector<VertexId>{1, 3, 5, 7}));
}

TEST(BinaryIo, SniffDistinguishesBinaryFromText) {
  const std::string bin = tmp_path("sniff.bin");
  const std::string text = tmp_path("sniff.txt");
  std::string error;
  ASSERT_TRUE(write_binary_csr(bin, make_path(4), &error)) << error;
  ASSERT_TRUE(write_edge_list_file(text, make_path(4)));
  EXPECT_TRUE(sniff_binary_csr(bin));
  EXPECT_FALSE(sniff_binary_csr(text));
  EXPECT_FALSE(sniff_binary_csr(tmp_path("missing")));
}

TEST(BinaryIo, EdgeListFromCsrIsThreadCountInvariant) {
  const std::string bin = tmp_path("inv.bin");
  std::string error;
  ASSERT_TRUE(stream_family_to_binary("rmat", 2000, 3, bin, &error)) << error;
  BinaryGraph bg;
  ASSERT_TRUE(bg.open(bin, &error)) << error;
  const int before = util::hardware_parallelism();
  util::set_parallelism(1);
  EdgeList serial = edge_list_from_csr(bg.view());
  util::set_parallelism(8);
  EdgeList parallel = edge_list_from_csr(bg.view());
  util::set_parallelism(before);
  EXPECT_EQ(serial.n, parallel.n);
  EXPECT_EQ(serial.edges, parallel.edges);  // exact order, not just multiset
}

// ------------------------------------------------------------ load_dataset ---

TEST(LoadDataset, GeneratorSpec) {
  EdgeList el;
  DatasetInfo info;
  std::string error;
  ASSERT_TRUE(load_dataset("gen:path:50", el, &info, &error)) << error;
  EXPECT_EQ(el.n, 50u);
  EXPECT_EQ(el.edges.size(), 49u);
  EXPECT_EQ(info.source, "generator");
}

TEST(LoadDataset, ParseGeneratorSpec) {
  std::string family;
  std::uint64_t n = 0;
  std::uint64_t seed = 7;  // caller default, kept when spec omits the field
  ASSERT_TRUE(parse_generator_spec("grid:100", family, n, seed));
  EXPECT_EQ(family, "grid");
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(seed, 7u);
  ASSERT_TRUE(parse_generator_spec("rmat:50:42", family, n, seed));
  EXPECT_EQ(seed, 42u);
  EXPECT_FALSE(parse_generator_spec("path", family, n, seed));  // no ':'
  EXPECT_FALSE(parse_generator_spec("grid:bogus", family, n, seed));
  EXPECT_FALSE(parse_generator_spec("grid:0", family, n, seed));
  // Strict parse: trailing garbage must not silently truncate the number.
  EXPECT_FALSE(parse_generator_spec("grid:1e6", family, n, seed));
  EXPECT_FALSE(parse_generator_spec("grid:5,300,000", family, n, seed));
  EXPECT_FALSE(parse_generator_spec("grid:100:0x7", family, n, seed));
  EXPECT_FALSE(parse_generator_spec("grid:-5", family, n, seed));
}

TEST(LoadDataset, BadGeneratorSpecFails) {
  EdgeList el;
  std::string error;
  EXPECT_FALSE(load_dataset("gen:path", el, nullptr, &error));
  EXPECT_FALSE(load_dataset("gen:path:0", el, nullptr, &error));
}

TEST(LoadDataset, DispatchesOnMagic) {
  const std::string bin = tmp_path("ds.bin");
  const std::string text = tmp_path("ds.txt");
  std::string error;
  ASSERT_TRUE(write_binary_csr(bin, make_cycle(30), &error)) << error;
  ASSERT_TRUE(write_edge_list_file(text, make_cycle(30)));

  EdgeList from_bin, from_text;
  DatasetInfo bi, ti;
  ASSERT_TRUE(load_dataset(bin, from_bin, &bi, &error)) << error;
  ASSERT_TRUE(load_dataset(text, from_text, &ti, &error)) << error;
  EXPECT_TRUE(bi.source == "binary-mmap" || bi.source == "binary-copy");
  EXPECT_GT(bi.file_bytes, 0u);
  EXPECT_EQ(ti.source, "text");
  EXPECT_EQ(canonical_edges(from_bin), canonical_edges(from_text));
}

TEST(LoadDataset, MissingFileFails) {
  EdgeList el;
  std::string error;
  EXPECT_FALSE(load_dataset("/nonexistent/definitely/missing", el, nullptr,
                            &error));
}

// --------------------------------------------------------------- MmapFile ---

TEST(MmapFileTest, CreateWriteReadBack) {
  const std::string path = tmp_path("mmap.raw");
  std::string error;
  {
    auto f = util::MmapFile::create_rw(path, 128, &error);
    ASSERT_TRUE(f.valid()) << error;
    ASSERT_TRUE(f.writable());
    for (int i = 0; i < 128; ++i) f.mutable_data()[i] = static_cast<std::uint8_t>(i);
    EXPECT_TRUE(f.sync());
  }
  auto r = util::MmapFile::open_read(path, &error);
  ASSERT_TRUE(r.valid()) << error;
  EXPECT_EQ(r.size(), 128u);
  EXPECT_FALSE(r.writable());
  for (int i = 0; i < 128; ++i) EXPECT_EQ(r.data()[i], i);
}

TEST(MmapFileTest, MissingFileInvalid) {
  std::string error;
  auto f = util::MmapFile::open_read(tmp_path("nope"), &error);
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(error.empty());
}

TEST(MmapFileTest, MoveTransfersOwnership) {
  const std::string path = tmp_path("mv.raw");
  std::string error;
  auto f = util::MmapFile::create_rw(path, 16, &error);
  ASSERT_TRUE(f.valid()) << error;
  util::MmapFile g = std::move(f);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(f.valid());  // NOLINT(bugprone-use-after-move): post-move state is specified
}

}  // namespace
}  // namespace logcc::graph
