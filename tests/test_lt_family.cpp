#include "baselines/lt_family.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc::baselines {
namespace {

using logcc::testing::matches_oracle;

TEST(LtFamily, VariantNames) {
  LtVariant v;
  v.connect = LtConnect::kExtended;
  v.shortcut = LtShortcut::kFull;
  v.alter = false;
  EXPECT_EQ(v.name(), "E-F");
  v.connect = LtConnect::kDirect;
  v.shortcut = LtShortcut::kSingle;
  v.alter = true;
  EXPECT_EQ(v.name(), "D-S-A");
}

TEST(LtFamily, TenCorrectVariants) {
  auto all = lt_all_variants();
  EXPECT_EQ(all.size(), 10u);
  std::set<std::string> names;
  for (const auto& v : all) {
    names.insert(v.name());
    EXPECT_FALSE(v.connect == LtConnect::kDirect && !v.alter) << v.name();
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST(LtFamily, DirectWithoutAlterCanStall) {
  // LT'19 negative result: with direct-connect and no ALTER, a cross edge
  // between two non-roots never triggers a connect. Square: 2 adopts 0,
  // 3 adopts 1 in the same synchronous round; edge {2,3} then joins two
  // non-roots and the algorithm reaches a flat fixpoint with 2 components
  // instead of 1.
  graph::EdgeList el;
  el.n = 4;
  el.add(0, 2);
  el.add(1, 3);
  el.add(2, 3);
  for (const LtVariant& v : lt_incorrect_variants()) {
    auto r = liu_tarjan_variant(el, v);
    EXPECT_EQ(graph::count_components(r.labels), 2u)
        << v.name() << " unexpectedly solved the stall instance";
  }
  // Adding ALTER fixes it.
  LtVariant fixed{LtConnect::kDirect, LtShortcut::kSingle, true};
  auto r = liu_tarjan_variant(el, fixed);
  EXPECT_EQ(graph::count_components(r.labels), 1u);
}

TEST(LtFamily, AllVariantsCorrectOnZoo) {
  for (const auto& [gname, el] : logcc::testing::small_zoo()) {
    for (const LtVariant& v : lt_all_variants()) {
      auto r = liu_tarjan_variant(el, v);
      EXPECT_TRUE(matches_oracle(el, r.labels)) << v.name() << " on " << gname;
    }
  }
}

TEST(LtFamily, ExtendedBeatsParentBeatsDirectOnPaths) {
  auto el = graph::make_path(2048);
  LtVariant d{LtConnect::kDirect, LtShortcut::kSingle, true};
  LtVariant p{LtConnect::kParent, LtShortcut::kSingle, true};
  LtVariant e{LtConnect::kExtended, LtShortcut::kSingle, true};
  auto rd = liu_tarjan_variant(el, d);
  auto rp = liu_tarjan_variant(el, p);
  auto re = liu_tarjan_variant(el, e);
  EXPECT_LE(re.rounds, rp.rounds);
  EXPECT_LE(rp.rounds, rd.rounds);
}

TEST(LtFamily, FullShortcutWithinConstantFactor) {
  // "-F" rounds include every inner SHORTCUT step, so F trades fewer outer
  // iterations for flatten work; totals stay within a constant factor of
  // the "-S" variant.
  for (const char* family : {"path", "gnm2", "caterpillar"}) {
    auto el = graph::make_family(family, 512, 3);
    for (LtConnect c :
         {LtConnect::kDirect, LtConnect::kParent, LtConnect::kExtended}) {
      auto rs = liu_tarjan_variant(el, {c, LtShortcut::kSingle, true});
      auto rf = liu_tarjan_variant(el, {c, LtShortcut::kFull, true});
      EXPECT_LE(rf.rounds, 2 * rs.rounds + 16) << family;
      EXPECT_GE(rf.rounds, 1u) << family;
    }
  }
}

TEST(LtFamily, LogarithmicRoundsWithAlter) {
  auto el = graph::make_path(4096);
  LtVariant v{LtConnect::kParent, LtShortcut::kSingle, true};
  auto r = liu_tarjan_variant(el, v);
  // LT19: these variants are O(log^2 n) worst case, O(log n) in practice.
  EXPECT_LE(r.rounds, 150u);
}

TEST(LtFamily, MonotoneLabels) {
  // Labels never increase between rounds — verified indirectly: final
  // labels are minima of their components.
  auto el = graph::make_gnm(200, 500, 9);
  for (const LtVariant& v : lt_all_variants()) {
    auto r = liu_tarjan_variant(el, v);
    auto canon = graph::canonical_labels(r.labels);
    EXPECT_EQ(r.labels, canon) << v.name() << ": labels not min-canonical";
  }
}

TEST(LtFamily, HandlesLoopsAndParallelEdges) {
  graph::EdgeList el;
  el.n = 5;
  el.add(0, 0);
  el.add(1, 2);
  el.add(2, 1);
  el.add(3, 4);
  for (const LtVariant& v : lt_all_variants()) {
    auto r = liu_tarjan_variant(el, v);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << v.name();
  }
}

}  // namespace
}  // namespace logcc::baselines
