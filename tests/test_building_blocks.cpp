#include "core/building_blocks.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc::core {
namespace {

TEST(Arcs, FromEdgesKeepsOriginalIndex) {
  graph::EdgeList el;
  el.n = 4;
  el.add(0, 1);
  el.add(2, 3);
  auto arcs = arcs_from_edges(el);
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].orig, 0u);
  EXPECT_EQ(arcs[1].orig, 1u);
}

TEST(Alter, ReplacesEndpointsByParents) {
  graph::EdgeList el;
  el.n = 4;
  el.add(0, 1);
  el.add(1, 3);
  auto arcs = arcs_from_edges(el);
  ParentForest f(4);
  f.set_parent(1, 0);
  f.set_parent(3, 2);
  alter(arcs, f);
  EXPECT_EQ(arcs[0].u, 0u);
  EXPECT_EQ(arcs[0].v, 0u);  // loop now
  EXPECT_EQ(arcs[1].u, 0u);
  EXPECT_EQ(arcs[1].v, 2u);
  EXPECT_EQ(arcs[1].orig, 1u);  // orig preserved
}

TEST(DropLoops, RemovesOnlyLoops) {
  std::vector<Arc> arcs{{0, 0, 0}, {0, 1, 1}, {2, 2, 2}};
  EXPECT_EQ(drop_loops(arcs), 2u);
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_EQ(arcs[0].orig, 1u);
}

TEST(DedupArcs, MergesUndirectedDuplicates) {
  std::vector<Arc> arcs{{1, 0, 5}, {0, 1, 7}, {2, 3, 1}};
  dedup_arcs(arcs);
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].u, 0u);
  EXPECT_EQ(arcs[0].v, 1u);
}

TEST(HasNonloop, Detects) {
  std::vector<Arc> loops{{0, 0, 0}, {3, 3, 1}};
  EXPECT_FALSE(has_nonloop(loops));
  loops.push_back({0, 1, 2});
  EXPECT_TRUE(has_nonloop(loops));
  EXPECT_FALSE(has_nonloop({}));
}

TEST(DeterministicContract, SolvesZoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    ParentForest f(el.n);
    auto arcs = arcs_from_edges(el);
    RunStats stats;
    deterministic_contract(f, arcs, stats);
    f.flatten();
    EXPECT_TRUE(logcc::testing::matches_oracle(el, f.root_labels())) << name;
  }
}

TEST(DeterministicContract, LogRounds) {
  auto el = graph::make_path(1024);
  ParentForest f(el.n);
  auto arcs = arcs_from_edges(el);
  RunStats stats;
  std::uint64_t rounds = deterministic_contract(f, arcs, stats);
  EXPECT_LE(rounds, 2 * 10 + 4u);  // ~2 log2(1024)
}

TEST(DeterministicContract, ResumesFromPartialForest) {
  // Pre-link half the path, then contract the rest.
  auto el = graph::make_path(40);
  ParentForest f(el.n);
  for (VertexId v = 1; v < 20; ++v) f.set_parent(v, 0);
  auto arcs = arcs_from_edges(el);
  RunStats stats;
  deterministic_contract(f, arcs, stats);
  f.flatten();
  EXPECT_TRUE(logcc::testing::matches_oracle(el, f.root_labels()));
}

TEST(DeterministicContractSf, ProducesValidForest) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    ParentForest f(el.n);
    auto arcs = arcs_from_edges(el);
    std::vector<std::uint8_t> in_forest(el.edges.size(), 0);
    RunStats stats;
    deterministic_contract_sf(f, arcs, in_forest, stats);
    std::vector<std::uint64_t> edges;
    for (std::uint64_t i = 0; i < in_forest.size(); ++i)
      if (in_forest[i]) edges.push_back(i);
    auto check = graph::validate_spanning_forest(el, edges);
    EXPECT_TRUE(check.ok) << name << ": " << check.error;
  }
}

}  // namespace
}  // namespace logcc::core
