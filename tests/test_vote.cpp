#include "core/vote.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/parallel.hpp"

namespace logcc::core {
namespace {

struct VoteHarness {
  VoteHarness(const graph::EdgeList& el, ExpandParams p) {
    arcs = arcs_from_edges(el);
    drop_loops(arcs);
    for (std::uint64_t v = 0; v < el.n; ++v)
      ongoing.push_back(static_cast<VertexId>(v));
    engine = std::make_unique<ExpandEngine>(el.n, ongoing, arcs, p, stats);
    engine->run();
  }
  std::vector<Arc> arcs;
  std::vector<VertexId> ongoing;
  RunStats stats;
  std::unique_ptr<ExpandEngine> engine;
};

ExpandParams generous(std::uint64_t n) {
  ExpandParams p;
  p.block_count = 64 * n + 7;
  p.table_capacity = static_cast<std::uint32_t>(16 * n + 3);
  p.seed = 777;
  p.max_rounds = 32;
  return p;
}

TEST(Vote, LiveComponentsElectExactlyTheMinId) {
  auto el = graph::disjoint_union({graph::make_path(9), graph::make_cycle(7)});
  VoteHarness h(el, generous(el.n));
  VoteParams vp;
  vp.dormant_leader_prob = 0.5;
  vp.seed = 3;
  RunStats stats;
  auto leader = vote(*h.engine, vp, stats);
  // All vertices are live here; leaders must be vertex 0 (first path) and
  // vertex 9 (min of the cycle's id range), nothing else.
  for (std::uint32_t s = 0; s < h.engine->num_slots(); ++s) {
    VertexId v = h.engine->vertex_of(s);
    EXPECT_EQ(leader[s] == 1, v == 0 || v == 9) << "vertex " << v;
  }
}

TEST(Vote, DormantLeaderRateMatchesProbability) {
  // Make everyone fully dormant (no blocks): election is a pure Bernoulli.
  auto el = graph::make_path(4000);
  ExpandParams p = generous(el.n);
  p.block_count = 1;
  VoteHarness h(el, p);
  VoteParams vp;
  vp.dormant_leader_prob = 0.25;
  vp.seed = 99;
  RunStats stats;
  auto leader = vote(*h.engine, vp, stats);
  double rate =
      static_cast<double>(std::count(leader.begin(), leader.end(), 1)) /
      static_cast<double>(leader.size());
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(Vote, DormantZeroProbabilityElectsNobody) {
  auto el = graph::make_path(64);
  ExpandParams p = generous(el.n);
  p.block_count = 1;
  VoteHarness h(el, p);
  VoteParams vp;
  vp.dormant_leader_prob = 0.0;
  vp.seed = 5;
  RunStats stats;
  auto leader = vote(*h.engine, vp, stats);
  EXPECT_EQ(std::count(leader.begin(), leader.end(), 1), 0);
}

TEST(Vote, DeterministicForSeed) {
  auto el = graph::make_gnm(128, 256, 6);
  ExpandParams p = generous(el.n);
  p.table_capacity = 4;  // mix of live and dormant
  VoteHarness h(el, p);
  VoteParams vp;
  vp.dormant_leader_prob = 0.3;
  vp.seed = 42;
  RunStats s1, s2;
  EXPECT_EQ(vote(*h.engine, vp, s1), vote(*h.engine, vp, s2));
}

// ---- Determinism contract: the fused map + min vote pass yields the same
// leader vector for every thread count (mirrors tests/test_scan.cpp).

using logcc::testing::ThreadInvariance;

TEST_F(ThreadInvariance, LeaderVectorIdenticalAcrossThreads) {
  // Build the engine once (its own invariance is covered in
  // tests/test_expand.cpp), then sweep only the vote kernel. Tight tables
  // give a live / dormant mix so both branches run at scale.
  auto el = graph::make_gnm(20000, 60000, 13);
  ExpandParams p;
  p.block_count = 4 * el.n + 7;
  p.table_capacity = 8;
  p.seed = 1234;
  p.max_rounds = 40;
  VoteHarness h(el, p);
  VoteParams vp;
  vp.dormant_leader_prob = 0.3;
  vp.seed = 71;
  util::set_parallelism(1);
  RunStats s1;
  auto one = vote(*h.engine, vp, s1);
  for (int threads : {2, 8}) {
    util::set_parallelism(threads);
    RunStats sn;
    EXPECT_EQ(one, vote(*h.engine, vp, sn)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace logcc::core
