// ComponentIndex: the canonical result-snapshot type (PR 7). Pins the
// invariants every producer relies on — min-id canonical labels, root-
// indexed sizes, exact component count, optional forest consistency — and
// the snapshot-immutability contract the serving layer's epoch swap is
// built on.
#include "core/component_index.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"
#include "util/epoch.hpp"

namespace logcc {
namespace {

using core::ComponentIndex;
using graph::VertexId;

// Structural invariants every index must satisfy, regardless of producer.
void expect_invariants(const ComponentIndex& ix) {
  const auto& labels = ix.labels();
  const auto& sizes = ix.sizes();
  ASSERT_EQ(sizes.size(), labels.size());
  std::uint64_t roots = 0, covered = 0;
  for (std::uint64_t v = 0; v < labels.size(); ++v) {
    ASSERT_LE(labels[v], v) << "labels not min-id canonical at " << v;
    ASSERT_EQ(labels[labels[v]], labels[v]) << "label chain not flat at " << v;
    if (labels[v] == v) {
      ++roots;
      ASSERT_GT(sizes[v], 0u) << "root " << v << " has zero size";
      covered += sizes[v];
    } else {
      ASSERT_EQ(sizes[v], 0u) << "non-root " << v << " has a size entry";
    }
    ASSERT_EQ(ix.component_of(v), labels[v]);
    ASSERT_EQ(ix.component_size(v), sizes[labels[v]]);
  }
  EXPECT_EQ(roots, ix.num_components());
  EXPECT_EQ(covered, ix.num_vertices());
}

TEST(ComponentIndex, CanonicalizesArbitraryLabels) {
  // Same-partition labels in non-canonical form: {9,9,3,3,9} -> {0,0,2,2,0}.
  ComponentIndex ix = ComponentIndex::from_labels({9, 9, 3, 3, 9});
  EXPECT_EQ(ix.num_vertices(), 5u);
  EXPECT_EQ(ix.num_components(), 2u);
  EXPECT_EQ(ix.labels(), (std::vector<VertexId>{0, 0, 2, 2, 0}));
  EXPECT_EQ(ix.component_size(0), 3u);
  EXPECT_EQ(ix.component_size(3), 2u);
  expect_invariants(ix);
}

TEST(ComponentIndex, FromCanonicalAgreesWithFromLabels) {
  auto el = graph::make_gnm(300, 700, 3);
  auto oracle = logcc::testing::oracle_labels(el);  // already min-id
  ComponentIndex a = ComponentIndex::from_labels(oracle);
  ComponentIndex b = ComponentIndex::from_canonical_labels(oracle);
  EXPECT_TRUE(a == b);
  expect_invariants(a);
}

TEST(ComponentIndexDeath, FromCanonicalRejectsNonCanonicalLabels) {
  // Partition-valid but not min-id (label 1 for a class containing 0).
  EXPECT_DEATH((void)ComponentIndex::from_canonical_labels({1, 1, 1}),
               "not min-id canonical");
}

TEST(ComponentIndex, InvariantsAcrossZooAndAllAlgorithms) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    const auto in = graph::ArcsInput::from_edges(el);
    for (auto alg : all_algorithms()) {
      auto r = connected_components(in, alg);
      SCOPED_TRACE(name + std::string(" alg=") + to_string(alg));
      expect_invariants(r.index);
      EXPECT_EQ(
          r.index.num_components(),
          graph::count_components(logcc::testing::oracle_labels(el)));
    }
  }
}

TEST(ComponentIndex, EmptyAndSingleton) {
  ComponentIndex empty;
  EXPECT_EQ(empty.num_vertices(), 0u);
  EXPECT_EQ(empty.num_components(), 0u);
  ComponentIndex one = ComponentIndex::from_labels({0});
  EXPECT_EQ(one.num_components(), 1u);
  EXPECT_EQ(one.component_size(0), 1u);
}

TEST(ComponentIndex, EqualityCoversSizesAndCountButNotForest) {
  ComponentIndex a = ComponentIndex::from_labels({0, 0, 2, 2});
  ComponentIndex b = ComponentIndex::from_labels({0, 0, 2, 2});
  EXPECT_TRUE(a == b);
  // A forest is diagnostic metadata: attaching one must not break equality.
  b.attach_forest({0, 0, 2, 2});
  EXPECT_TRUE(b.has_forest());
  EXPECT_TRUE(a == b);
  ComponentIndex c = ComponentIndex::from_labels({0, 0, 0, 3});
  EXPECT_FALSE(a == c);
}

TEST(ComponentIndex, AttachForestAcceptsDeepChains) {
  // 0 <- 1 <- 2 <- 3: multi-hop parent chain whose root matches the label.
  ComponentIndex ix = ComponentIndex::from_labels({0, 0, 0, 0});
  ix.attach_forest({0, 0, 1, 2});
  ASSERT_TRUE(ix.has_forest());
  EXPECT_EQ(ix.forest(), (std::vector<VertexId>{0, 0, 1, 2}));
}

TEST(ComponentIndexDeath, AttachForestRejectsWrongRoots) {
  ComponentIndex ix = ComponentIndex::from_labels({0, 0, 2, 2});
  EXPECT_DEATH(ix.attach_forest({0, 0, 0, 0}), "roots disagree");
}

TEST(ComponentIndex, SnapshotImmutabilityAcrossEpochSwap) {
  // The serving-layer ownership rule: a reader holding a snapshot keeps a
  // consistent view no matter how many epochs the writer publishes after.
  util::EpochPtr<ComponentIndex> slot;
  slot.store(std::make_shared<const ComponentIndex>(
      ComponentIndex::from_labels({0, 0, 2, 2})));
  EXPECT_EQ(slot.epoch(), 1u);

  std::shared_ptr<const ComponentIndex> reader = slot.load();
  ASSERT_EQ(reader->num_components(), 2u);

  // Writer swaps in a merged epoch; the old snapshot must be untouched.
  slot.store(std::make_shared<const ComponentIndex>(
      ComponentIndex::from_labels({0, 0, 0, 0})));
  EXPECT_EQ(slot.epoch(), 2u);
  EXPECT_EQ(reader->num_components(), 2u);
  EXPECT_EQ(reader->component_of(2), 2u);
  EXPECT_EQ(slot.load()->num_components(), 1u);
  // The superseded epoch stays alive exactly as long as the reader does.
  EXPECT_EQ(reader.use_count(), 1);
}

}  // namespace
}  // namespace logcc
