#include "core/cc_theorem1.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc::core {
namespace {

using logcc::testing::matches_oracle;

TEST(Theorem1, Zoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = theorem1_cc(el);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << name;
  }
}

TEST(Theorem1, SeedsAgreeOnPartition) {
  auto el = graph::make_gnm(300, 900, 17);
  Theorem1Params p;
  p.seed = 1;
  auto a = theorem1_cc(el, p);
  p.seed = 31337;
  auto b = theorem1_cc(el, p);
  EXPECT_TRUE(graph::same_partition(a.labels, b.labels));
}

TEST(Theorem1, DenseGraphSkipsPrepare) {
  auto el = graph::make_gnm(400, 26000, 3);  // m/n = 65 >= 64 target
  auto r = theorem1_cc(el);
  EXPECT_FALSE(r.stats.prepare_used);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(Theorem1, SparseGraphUsesPrepare) {
  auto el = graph::make_path(2000);
  auto r = theorem1_cc(el);
  EXPECT_TRUE(r.stats.prepare_used);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(Theorem1, FewPhasesOnDenseLowDiameter) {
  // m/n' large from the start: log log progress means a handful of phases.
  auto el = graph::make_gnm(256, 16384, 5);
  auto r = theorem1_cc(el);
  EXPECT_LE(r.stats.phases, 8u);
  EXPECT_FALSE(r.stats.finisher_used);
}

TEST(Theorem1, ExpandRoundsTrackLogDiameter) {
  // Inner expand rounds grow with log d (per phase).
  Theorem1Params p;
  p.prepare_target_density = 1.0;  // no PREPARE: keep the path intact
  auto short_d = theorem1_cc(graph::make_gnm(512, 4096, 3), p);
  auto long_d = theorem1_cc(graph::make_path(512), p);
  EXPECT_TRUE(matches_oracle(graph::make_path(512), long_d.labels));
  EXPECT_GT(long_d.stats.expand_rounds, short_d.stats.expand_rounds);
}

TEST(Theorem1, NTildeRuleStillCorrect) {
  Theorem1Params p;
  p.exact_count = false;  // §B.5 update rule instead of combining count
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = theorem1_cc(el, p);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << name;
  }
}

TEST(Theorem1, PaperModeCorrectEvenIfDegenerate) {
  auto el = graph::make_gnm(128, 512, 9);
  auto p = Theorem1Params::paper(el.n, el.edges.size());
  p.seed = 2;
  auto r = theorem1_cc(el, p);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(Theorem1, ForcedFinisherStillCorrect) {
  Theorem1Params p;
  p.max_phases = 1;  // starve the randomized loop
  auto el = graph::make_path(300);
  auto r = theorem1_cc(el, p);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(Theorem1, SpaceLedgerLinearInM) {
  // Lemma 3.10 analogue: peak space stays within a constant factor of m.
  for (std::uint64_t n : {1000ULL, 4000ULL}) {
    auto el = graph::make_gnm(n, 8 * n, 7);
    auto r = theorem1_cc(el);
    EXPECT_LE(r.stats.peak_space_words, 64 * el.edges.size())
        << "n=" << n;
  }
}

TEST(Theorem1, StatsPopulated) {
  auto el = graph::make_gnm(200, 2000, 11);
  auto r = theorem1_cc(el);
  EXPECT_GT(r.stats.phases, 0u);
  EXPECT_GT(r.stats.pram_steps, 0u);
  EXPECT_GT(r.stats.peak_space_words, 0u);
}

TEST(Theorem1, HandlesEdgelessGraph) {
  graph::EdgeList el;
  el.n = 17;
  auto r = theorem1_cc(el);
  EXPECT_EQ(graph::count_components(r.labels), 17u);
  EXPECT_EQ(r.stats.phases, 0u);
}

}  // namespace
}  // namespace logcc::core
