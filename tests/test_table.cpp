#include "util/table.hpp"

#include <gtest/gtest.h>

namespace logcc::util {
namespace {

TEST(TextTable, BuildsRows) {
  TextTable t({"a", "b"});
  t.row().add("x").add_int(42);
  t.row().add_double(1.5, 1).add("y");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][1], "42");
  EXPECT_EQ(t.rows()[1][0], "1.5");
}

TEST(TextTable, PrintsAligned) {
  TextTable t({"name", "v"});
  t.row().add("long-name").add_int(1);
  t.row().add("s").add_int(22);
  char buf[4096];
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  t.print(f);
  std::fclose(f);
  std::string s(buf);
  // Header, rule, two rows.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Columns aligned: '22' appears right under '1' column start.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Sparkline, EmptyAndFlat) {
  EXPECT_EQ(sparkline({}), "");
  std::string flat = sparkline({1.0, 1.0, 1.0});
  EXPECT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat[0], flat[1]);
}

TEST(Sparkline, MonotoneRampIsNonDecreasing) {
  std::string s = sparkline({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  static const std::string kLevels = " .:-=+*#%@";
  for (std::size_t i = 1; i < s.size(); ++i)
    EXPECT_LE(kLevels.find(s[i - 1]), kLevels.find(s[i]));
  EXPECT_EQ(s.front(), ' ');
  EXPECT_EQ(s.back(), '@');
}

TEST(PrintSeries, EmitsAllPoints) {
  char buf[8192];
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  print_series("test", {1, 2, 4}, {10, 20, 40}, "x", "y", f);
  std::fclose(f);
  std::string s(buf);
  EXPECT_NE(s.find("series: test"), std::string::npos);
  EXPECT_NE(s.find("40.000"), std::string::npos);
  EXPECT_NE(s.find("trend:"), std::string::npos);
}

}  // namespace
}  // namespace logcc::util
