#include "util/bitutil.hpp"

#include <gtest/gtest.h>

namespace logcc::util {
namespace {

TEST(BitUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(~0ULL), 63u);
}

TEST(BitUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1ULL << 40), 40u);
  EXPECT_EQ(ceil_log2((1ULL << 40) + 1), 41u);
}

TEST(BitUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(BitUtil, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(BitUtil, LogBase) {
  EXPECT_NEAR(log_base(8, 2), 3.0, 1e-12);
  EXPECT_NEAR(log_base(81, 3), 4.0, 1e-12);
}

TEST(BitUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
}

TEST(BitUtil, LoglogDensityMonotoneInDensity) {
  // Denser graphs => smaller log log_{m/n} n.
  std::uint64_t n = 1 << 20;
  double sparse = loglog_density(n, 2 * n);
  double dense = loglog_density(n, 64 * n);
  EXPECT_GE(sparse, dense);
  EXPECT_GE(dense, 1.0);  // total function, floored at 1
}

TEST(BitUtil, LoglogDensityHandlesDegenerate) {
  EXPECT_GE(loglog_density(0, 0), 1.0);
  EXPECT_GE(loglog_density(1, 1), 1.0);
}

}  // namespace
}  // namespace logcc::util
