// Property sweep for spanning forests: validity (acyclic, spanning,
// input-edge subset) across families × seeds × both SF algorithms.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc {
namespace {

using Param = std::tuple<std::string, std::uint64_t /*seed*/, SfAlgorithm>;

class SfProperty : public ::testing::TestWithParam<Param> {};

TEST_P(SfProperty, ValidSpanningForest) {
  const auto& [family, seed, algorithm] = GetParam();
  graph::EdgeList el = graph::make_family(family, 200, seed);
  Options opt;
  opt.seed = seed + 101;
  auto r = spanning_forest(el, algorithm, opt);
  auto check = graph::validate_spanning_forest(el, r.forest_edges);
  EXPECT_TRUE(check.ok) << family << " seed=" << seed << ": " << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SfProperty,
    ::testing::Combine(
        ::testing::Values("path", "cycle", "star", "grid", "tree", "gnm2",
                          "gnm8", "rmat", "caterpillar", "lollipop"),
        ::testing::Values<std::uint64_t>(1, 2, 3, 4),
        ::testing::Values(SfAlgorithm::kTheorem2, SfAlgorithm::kVanillaSF)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param);
      name += "_s" + std::to_string(std::get<1>(info.param));
      name += std::get<2>(info.param) == SfAlgorithm::kTheorem2 ? "_thm2"
                                                                : "_vsf";
      return name;
    });

// The forest must connect exactly what the graph connects: contracting the
// forest edges yields the oracle partition.
class SfConnectivity : public ::testing::TestWithParam<std::string> {};

TEST_P(SfConnectivity, ForestInducesSamePartition) {
  graph::EdgeList el = graph::make_family(GetParam(), 300, 9);
  auto r = spanning_forest(el, SfAlgorithm::kTheorem2);
  graph::EdgeList forest;
  forest.n = el.n;
  for (std::uint64_t idx : r.forest_edges) forest.edges.push_back(el.edges[idx]);
  auto from_forest = logcc::testing::oracle_labels(forest);
  auto from_graph = logcc::testing::oracle_labels(el);
  EXPECT_TRUE(graph::same_partition(from_forest, from_graph)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Families, SfConnectivity,
                         ::testing::Values("path", "grid", "gnm2", "rmat",
                                           "lollipop", "caterpillar"));

}  // namespace
}  // namespace logcc
