#include "pram/primitives.hpp"

#include <gtest/gtest.h>

#include <set>

namespace logcc::pram {
namespace {

TEST(Broadcast, FillsRegion) {
  Machine m(10, WritePolicy::kArbitrary, 1);
  broadcast(m, 2, 5, 42);
  for (std::size_t i = 2; i < 7; ++i) EXPECT_EQ(m.peek(i), 42u);
  EXPECT_EQ(m.peek(0), 0u);
  EXPECT_EQ(m.peek(7), 0u);
}

TEST(PointerJump, FlattensChain) {
  constexpr std::size_t n = 16;
  Machine m(n, WritePolicy::kArbitrary, 1);
  // Chain: v -> v-1, root 0.
  for (std::size_t v = 0; v < n; ++v) m.poke(v, v == 0 ? 0 : v - 1);
  std::uint64_t jumps = pointer_jump(m, 0, n);
  for (std::size_t v = 0; v < n; ++v) EXPECT_EQ(m.peek(v), 0u);
  // Chain of length 15 flattens in ceil(log2 15) = 4 jumps + 1 fixpoint
  // check.
  EXPECT_LE(jumps, 5u);
  EXPECT_GE(jumps, 4u);
}

TEST(PointerJump, AlreadyFlatIsOneStep) {
  Machine m(8, WritePolicy::kArbitrary, 1);
  for (std::size_t v = 0; v < 8; ++v) m.poke(v, v < 4 ? 0 : 4);
  EXPECT_EQ(pointer_jump(m, 0, 8), 1u);
}

TEST(PointerJump, MultipleTrees) {
  Machine m(6, WritePolicy::kArbitrary, 1);
  // Two chains: 0<-1<-2 and 3<-4<-5.
  m.poke(0, 0);
  m.poke(1, 0);
  m.poke(2, 1);
  m.poke(3, 3);
  m.poke(4, 3);
  m.poke(5, 4);
  pointer_jump(m, 0, 6);
  EXPECT_EQ(m.peek(2), 0u);
  EXPECT_EQ(m.peek(5), 3u);
}

TEST(ApproximateCompaction, InjectiveWithinBound) {
  constexpr std::size_t n = 256;
  std::vector<bool> flags(n, false);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; i += 3) {
    flags[i] = true;
    ++k;
  }
  Machine m(2 * k, WritePolicy::kArbitrary, 9);
  auto slots = approximate_compaction(m, flags, 11);
  ASSERT_TRUE(slots.has_value());
  std::set<std::uint32_t> used;
  for (std::size_t i = 0; i < n; ++i) {
    if (flags[i]) {
      ASSERT_NE((*slots)[i], static_cast<std::uint32_t>(-1));
      EXPECT_LT((*slots)[i], 2 * k);
      EXPECT_TRUE(used.insert((*slots)[i]).second) << "slot reused";
    } else {
      EXPECT_EQ((*slots)[i], static_cast<std::uint32_t>(-1));
    }
  }
}

TEST(ApproximateCompaction, EmptyInput) {
  Machine m(4, WritePolicy::kArbitrary, 1);
  std::vector<bool> flags(10, false);
  auto slots = approximate_compaction(m, flags, 1);
  ASSERT_TRUE(slots.has_value());
}

TEST(ApproximateCompaction, SingleItem) {
  Machine m(2, WritePolicy::kArbitrary, 1);
  std::vector<bool> flags(5, false);
  flags[3] = true;
  auto slots = approximate_compaction(m, flags, 2);
  ASSERT_TRUE(slots.has_value());
  EXPECT_LT((*slots)[3], 2u);
}

TEST(ApproximateCompaction, FailsWithZeroRounds) {
  Machine m(8, WritePolicy::kArbitrary, 1);
  std::vector<bool> flags(4, true);  // k=4 => 8 target cells
  auto slots = approximate_compaction(m, flags, 3, /*max_rounds=*/0);
  EXPECT_FALSE(slots.has_value());
}

TEST(ApproximateCompactionDeath, TooSmallMachineAborts) {
  Machine m(4, WritePolicy::kArbitrary, 1);
  std::vector<bool> flags(4, true);  // needs 8 cells, machine has 4
  EXPECT_DEATH((void)approximate_compaction(m, flags, 3), "memory too small");
}

TEST(ApproximateCompaction, RestoresScratchMemory) {
  std::vector<bool> flags(8, true);
  Machine m(16, WritePolicy::kArbitrary, 2);
  for (std::size_t c = 0; c < 16; ++c) m.poke(c, 1000 + c);
  auto slots = approximate_compaction(m, flags, 3);
  ASSERT_TRUE(slots.has_value());
  for (std::size_t c = 0; c < 16; ++c) EXPECT_EQ(m.peek(c), 1000 + c);
}

TEST(PrefixSum, InclusiveSums) {
  constexpr std::size_t n = 9;
  Machine m(n, WritePolicy::kArbitrary, 1);
  for (std::size_t v = 0; v < n; ++v) m.poke(v, v + 1);
  auto sums = prefix_sum(m, 0, n);
  for (std::size_t v = 0; v < n; ++v)
    EXPECT_EQ(sums[v], (v + 1) * (v + 2) / 2);
}

TEST(PrefixSum, TakesLogSteps) {
  constexpr std::size_t n = 64;
  Machine m(n, WritePolicy::kArbitrary, 1);
  for (std::size_t v = 0; v < n; ++v) m.poke(v, 1);
  prefix_sum(m, 0, n);
  // Doubling: exactly ceil(log2 64) = 6 steps. The paper's point: this is
  // Θ(log n) on a PRAM, O(1) on an MPC.
  EXPECT_EQ(m.ledger().steps, 6u);
}

}  // namespace
}  // namespace logcc::pram
