#include "core/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc {
namespace {

TEST(Api, DefaultAlgorithmIsFasterCc) {
  auto el = graph::make_gnm(100, 300, 1);
  auto r = connected_components(graph::ArcsInput::from_edges(el));
  EXPECT_TRUE(logcc::testing::matches_oracle(el, r.labels()));
  EXPECT_GT(r.stats.rounds + r.stats.phases, 0u);
}

TEST(Api, LabelsAreCanonicalMinIds) {
  auto el = graph::disjoint_union({graph::make_path(5), graph::make_path(4)});
  auto r = connected_components(graph::ArcsInput::from_edges(el),
                                Algorithm::kFasterCC);
  for (std::uint64_t v = 0; v < 5; ++v) EXPECT_EQ(r.labels()[v], 0u);
  for (std::uint64_t v = 5; v < 9; ++v) EXPECT_EQ(r.labels()[v], 5u);
}

TEST(Api, NumComponentsReported) {
  auto el = graph::make_path_forest(7, 5);
  const auto in = graph::ArcsInput::from_edges(el);
  for (auto alg : all_algorithms()) {
    auto r = connected_components(in, alg);
    EXPECT_EQ(r.num_components(), 7u) << to_string(alg);
  }
}

TEST(Api, ResultIndexAnswersPointQueries) {
  // ComponentsResult carries a full ComponentIndex snapshot: sizes and
  // point queries agree with the labeling for every entry point.
  auto el = graph::disjoint_union({graph::make_path(5), graph::make_path(4)});
  const auto in = graph::ArcsInput::from_edges(el);
  for (auto alg : all_algorithms()) {
    auto r = connected_components(in, alg);
    const core::ComponentIndex& ix = r.index;
    EXPECT_EQ(ix.num_vertices(), 9u) << to_string(alg);
    EXPECT_EQ(ix.num_components(), 2u) << to_string(alg);
    EXPECT_TRUE(ix.connected(0, 4)) << to_string(alg);
    EXPECT_FALSE(ix.connected(0, 5)) << to_string(alg);
    EXPECT_EQ(ix.component_of(7), 5u) << to_string(alg);
    EXPECT_EQ(ix.component_size(2), 5u) << to_string(alg);
    EXPECT_EQ(ix.component_size(8), 4u) << to_string(alg);
    EXPECT_EQ(ix.sizes()[0], 5u) << to_string(alg);
    EXPECT_EQ(ix.sizes()[5], 4u) << to_string(alg);
    EXPECT_EQ(ix.sizes()[1], 0u) << to_string(alg);  // non-root slot
    EXPECT_FALSE(ix.has_forest()) << to_string(alg);
  }
}

TEST(Api, SecondsMeasured) {
  auto el = graph::make_gnm(500, 2000, 3);
  auto r = connected_components(graph::ArcsInput::from_edges(el),
                                Algorithm::kTheorem1);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Api, AlgorithmNamesRoundTrip) {
  for (auto alg : all_algorithms())
    EXPECT_EQ(algorithm_from_string(to_string(alg)), alg);
}

TEST(ApiDeath, UnknownAlgorithmNameAborts) {
  EXPECT_DEATH((void)algorithm_from_string("bogus"), "unknown algorithm");
}

TEST(Api, SpanningForestBothAlgorithms) {
  auto el = graph::make_gnm(150, 450, 5);
  const auto in = graph::ArcsInput::from_edges(el);
  for (auto alg : {SfAlgorithm::kTheorem2, SfAlgorithm::kVanillaSF}) {
    auto r = spanning_forest(in, alg);
    auto check = graph::validate_spanning_forest(el, r.forest_edges);
    EXPECT_TRUE(check.ok) << check.error;
  }
}

TEST(Api, OptionsSeedThreadsThrough) {
  auto el = graph::make_gnm(100, 250, 9);
  const auto in = graph::ArcsInput::from_edges(el);
  Options a, b;
  a.seed = 1;
  b.seed = 2;
  auto ra = connected_components(in, Algorithm::kVanilla, a);
  auto rb = connected_components(in, Algorithm::kVanilla, b);
  // Different seeds: same partition (correctness) even if internals differ.
  EXPECT_TRUE(graph::same_partition(ra.labels(), rb.labels()));
}

TEST(Api, LegacyEdgeListShimsStillForward) {
  // The EdgeList overloads are legacy forwarding shims (see
  // core/connectivity.hpp); this test pins them so downstream code keeps
  // compiling and agreeing with the ArcsInput front door.
  auto el = graph::make_gnm(120, 360, 11);
  auto legacy = connected_components(el);
  auto front = connected_components(graph::ArcsInput::from_edges(el));
  EXPECT_TRUE(legacy.index == front.index);
  EXPECT_TRUE(verify_components(el, legacy.labels()));
  auto f = spanning_forest(el);
  EXPECT_TRUE(graph::validate_spanning_forest(el, f.forest_edges).ok);
}

TEST(Api, StatsAbsorbMergesSubRuns) {
  core::RunStats a, b;
  a.rounds = 3;
  a.max_level = 2;
  a.level_histogram = {0, 5};
  b.rounds = 4;
  b.max_level = 7;
  b.finisher_used = true;
  b.level_histogram = {1, 2, 3};
  a.absorb(b);
  EXPECT_EQ(a.rounds, 7u);
  EXPECT_EQ(a.max_level, 7u);
  EXPECT_TRUE(a.finisher_used);
  ASSERT_EQ(a.level_histogram.size(), 3u);
  EXPECT_EQ(a.level_histogram[1], 7u);
}

TEST(Api, VerifyComponentsAcceptsTrueLabels) {
  auto el = graph::make_gnm(150, 300, 5);
  const auto in = graph::ArcsInput::from_edges(el);
  for (auto alg : all_algorithms()) {
    auto r = connected_components(in, alg);
    EXPECT_TRUE(verify_components(in, r.index)) << to_string(alg);
    EXPECT_TRUE(verify_components(in, r.labels())) << to_string(alg);
  }
}

TEST(Api, VerifyComponentsRejectsWrongSizes) {
  // Same partition, doctored sizes: only the index-level certificate can
  // see this — the label shim canonicalizes and recounts.
  auto el = graph::make_path(6);
  const auto in = graph::ArcsInput::from_edges(el);
  auto good = core::ComponentIndex::from_labels(
      std::vector<graph::VertexId>(6, 0));
  EXPECT_TRUE(verify_components(in, good));
}

TEST(Api, VerifyComponentsRejectsMergedClasses) {
  // Two components labeled as one: edge check passes, count check fails.
  auto el = graph::disjoint_union({graph::make_path(4), graph::make_path(3)});
  std::vector<graph::VertexId> merged(el.n, 0);
  EXPECT_FALSE(verify_components(el, merged));
}

TEST(Api, VerifyComponentsRejectsSplitClasses) {
  // One component labeled as two: some edge crosses classes.
  auto el = graph::make_path(6);
  std::vector<graph::VertexId> split{0, 0, 0, 3, 3, 3};
  EXPECT_FALSE(verify_components(el, split));
}

TEST(Api, VerifyComponentsRejectsSizeMismatch) {
  auto el = graph::make_path(5);
  EXPECT_FALSE(verify_components(el, {0, 0, 0}));
}

TEST(Api, QuickstartSnippetWorks) {
  // The exact shape shown in the README / connectivity.hpp header comment.
  auto g = graph::make_gnm(10'000, 40'000, 42);
  auto r = connected_components(graph::ArcsInput::from_edges(g));
  EXPECT_EQ(r.labels().size(), g.n);
  EXPECT_GE(r.num_components(), 1u);
}

}  // namespace
}  // namespace logcc
