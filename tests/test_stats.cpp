#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace logcc::util {
namespace {

TEST(Summarize, EmptyIsZeros) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue) {
  std::vector<double> xs{5.0};
  Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.median, 5.0);
}

TEST(Summarize, KnownSample) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_NEAR(s.median, 4.5, 1e-12);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_NEAR(percentile(xs, 25), 1.75, 1e-12);
}

TEST(Percentile, UnsortedInput) {
  std::vector<double> xs{9, 1, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x{1, 2, 3, 4}, y{3, 5, 7, 9};  // y = 2x + 1
  LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, ConstantX) {
  std::vector<double> x{2, 2, 2}, y{1, 2, 3};
  LinearFit f = linear_fit(x, y);
  EXPECT_EQ(f.slope, 0.0);
  EXPECT_NEAR(f.intercept, 2.0, 1e-12);
}

TEST(Log2Fit, RecoversLogRelationship) {
  // y = 3*log2(x) + 1
  std::vector<double> x, y;
  for (double v : {2.0, 4.0, 8.0, 16.0, 64.0, 256.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::log2(v) + 1.0);
  }
  LinearFit f = log2_fit(x, y);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Accumulator, CollectsAndSummarizes) {
  Accumulator acc;
  for (int i = 1; i <= 5; ++i) acc.add(i);
  EXPECT_EQ(acc.size(), 5u);
  EXPECT_DOUBLE_EQ(acc.summary().mean, 3.0);
}

}  // namespace
}  // namespace logcc::util
