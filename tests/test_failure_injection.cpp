// Failure injection: the randomized machinery must stay *correct* (never
// just fast) under adversarial parameters — zero leader probability, tiny
// tables, starved round budgets, capacity-1 hash ranges.
#include <gtest/gtest.h>

#include "core/connectivity.hpp"
#include "core/expand.hpp"
#include "core/faster_cc.hpp"
#include "core/vanilla.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc {
namespace {

using logcc::testing::matches_oracle;

TEST(FailureInjection, Theorem1WithHostileSizing) {
  // Tables of capacity 2 and a single block: everything goes dormant
  // immediately, every phase degenerates — the driver must still finish
  // correctly via its guards.
  core::Theorem1Params p;
  p.min_table_capacity = 2;
  p.table_exp = 0.0;   // capacity stuck at the minimum
  p.block_exp = 0.0;   // block size ~1
  p.max_phases = 4;
  auto el = graph::make_gnm(150, 400, 3);
  auto r = core::theorem1_cc(el, p);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(FailureInjection, Theorem1ZeroPhases) {
  core::Theorem1Params p;
  p.max_phases = 0;  // 0 means auto — force the explicit tiny budget instead
  p.max_phases = 1;
  p.prepare_max_phases = 0;
  auto el = graph::make_grid(15, 15);
  auto r = core::theorem1_cc(el, p);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(FailureInjection, FasterCcNoPrepareNoRounds) {
  core::FasterCcParams p;
  p.prepare_max_phases = 0;
  p.max_rounds = 1;
  auto el = graph::make_path(200);
  auto r = core::faster_cc(el, p);
  EXPECT_TRUE(matches_oracle(el, r.labels));
  EXPECT_TRUE(r.stats.finisher_used || r.stats.phases > 0);
}

TEST(FailureInjection, ExpandWithCapacityTwoTables) {
  // Everything collides; every vertex must end dormant-or-live with tables
  // in a consistent state, never out-of-bounds.
  auto el = graph::make_complete(24);
  core::ExpandParams p;
  p.block_count = 24 * 50;
  p.table_capacity = 2;
  p.seed = 1;
  p.max_rounds = 8;
  std::vector<graph::VertexId> ongoing;
  for (graph::VertexId v = 0; v < el.n; ++v) ongoing.push_back(v);
  auto arcs = core::arcs_from_edges(el);
  core::RunStats stats;
  core::ExpandEngine engine(el.n, ongoing, arcs, p, stats);
  engine.run();
  for (std::uint32_t s = 0; s < engine.num_slots(); ++s)
    EXPECT_LE(engine.table(s).count(), 2u);
  EXPECT_GT(stats.hash_collisions, 0u);
}

TEST(FailureInjection, VanillaUnluckySeedsStillTerminate) {
  // Any seed must terminate (the convergence guard would abort otherwise).
  auto el = graph::make_path(128);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto r = core::vanilla_cc(el, seed);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << seed;
  }
}

TEST(FailureInjection, SingleVertexAndEmptyGraphs) {
  for (auto alg : all_algorithms()) {
    graph::EdgeList empty;
    empty.n = 0;
    auto r0 = connected_components(graph::ArcsInput::from_edges(empty), alg);
    EXPECT_TRUE(r0.labels().empty()) << to_string(alg);
    EXPECT_EQ(r0.num_components(), 0u) << to_string(alg);

    graph::EdgeList one;
    one.n = 1;
    auto r1 = connected_components(graph::ArcsInput::from_edges(one), alg);
    ASSERT_EQ(r1.labels().size(), 1u) << to_string(alg);
    EXPECT_EQ(r1.num_components(), 1u) << to_string(alg);
  }
}

TEST(FailureInjection, AllSelfLoops) {
  graph::EdgeList el;
  el.n = 8;
  for (graph::VertexId v = 0; v < 8; ++v) el.add(v, v);
  const auto in = graph::ArcsInput::from_edges(el);
  for (auto alg : all_algorithms()) {
    auto r = connected_components(in, alg);
    EXPECT_EQ(r.num_components(), 8u) << to_string(alg);
  }
}

TEST(FailureInjection, HeavyParallelEdges) {
  graph::EdgeList el;
  el.n = 4;
  for (int rep = 0; rep < 50; ++rep) {
    el.add(0, 1);
    el.add(2, 3);
  }
  const auto in = graph::ArcsInput::from_edges(el);
  for (auto alg : all_algorithms()) {
    auto r = connected_components(in, alg);
    EXPECT_EQ(r.num_components(), 2u) << to_string(alg);
  }
}

TEST(FailureInjection, SfUnderHostileSizing) {
  core::SpanningForestParams p;
  p.min_table_capacity = 2;
  p.table_exp = 0.0;
  p.max_phases = 2;
  auto el = graph::make_gnm(120, 300, 5);
  auto r = core::theorem2_sf(el, p);
  auto check = graph::validate_spanning_forest(el, r.forest_edges);
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace logcc
