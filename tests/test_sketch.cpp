// Property suite for the approximate tier (src/sketch/): the sketch
// algebra (merge commutativity/associativity/idempotence, insert-order
// invariance, serialization round trips) and the determinism contract
// (add_parallel bit-identical to the serial loop across backends and
// thread counts). The statistical guarantees — error bounds over seed
// sweeps — live in tests/test_sketch_accuracy.cpp; the corpus-wide
// sketch-vs-exact cross-checks in tests/test_differential_sketch.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <vector>

#include "core/component_index.hpp"
#include "core/connectivity.hpp"
#include "serve/sketched_view.hpp"
#include "sketch/count_min.hpp"
#include "sketch/hyperloglog.hpp"
#include "sketch/stream_stats.hpp"
#include "test_support.hpp"
#include "util/random.hpp"

namespace {

using namespace logcc;
using logcc::testing::BackendInvariance;
using sketch::CmsUpdate;
using sketch::CountMinSketch;
using sketch::HyperLogLog;

/// Deterministic pseudo-random keys (counter-based, like everything else).
std::vector<std::uint64_t> make_keys(std::size_t count, std::uint64_t stream) {
  std::vector<std::uint64_t> keys(count);
  for (std::size_t i = 0; i < count; ++i)
    keys[i] = util::mix64(stream, i) % (count / 2 + 1);  // force duplicates
  return keys;
}

/// A deterministic permutation of `keys` (sort by mix64 of the index).
std::vector<std::uint64_t> shuffled(const std::vector<std::uint64_t>& keys,
                                    std::uint64_t salt) {
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return util::mix64(salt, a) < util::mix64(salt, b);
  });
  std::vector<std::uint64_t> out(keys.size());
  for (std::size_t i = 0; i < order.size(); ++i) out[i] = keys[order[i]];
  return out;
}

HyperLogLog hll_of(const std::vector<std::uint64_t>& keys, int p = 10,
                   std::uint64_t seed = 42) {
  HyperLogLog h(p, seed);
  for (std::uint64_t k : keys) h.add(k);
  return h;
}

CountMinSketch cms_of(const std::vector<std::uint64_t>& keys,
                      CmsUpdate mode = CmsUpdate::kStandard,
                      std::uint64_t seed = 42) {
  CountMinSketch c(4, 256, seed, mode);
  for (std::uint64_t k : keys) c.add(k);
  return c;
}

// ------------------------------------------------------------------ HLL ---

TEST(HyperLogLog, EmptyAndSmallCardinalities) {
  HyperLogLog empty;
  EXPECT_EQ(empty.precision(), 0);
  EXPECT_EQ(empty.estimate(), 0.0);

  HyperLogLog h(12, 1);
  EXPECT_EQ(h.estimate(), 0.0);
  // Linear counting makes tiny cardinalities near-exact at p=12.
  for (std::uint64_t k = 0; k < 100; ++k) h.add(k);
  EXPECT_NEAR(h.estimate(), 100.0, 2.0);
  // Duplicates do not move the estimate at all (pure register max).
  HyperLogLog before = h;
  for (std::uint64_t k = 0; k < 100; ++k) h.add(k);
  EXPECT_EQ(h, before);
}

TEST(HyperLogLog, MergeAlgebra) {
  const auto a = hll_of(make_keys(2000, 1));
  const auto b = hll_of(make_keys(3000, 2));
  const auto c = hll_of(make_keys(1000, 3));

  auto ab = a;
  ab.merge(b);
  auto ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);  // commutes, bit-identical registers

  auto ab_c = ab;
  ab_c.merge(c);
  auto bc = b;
  bc.merge(c);
  auto a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);  // associates

  auto aa = a;
  aa.merge(a);
  EXPECT_EQ(aa, a);  // idempotent
}

TEST(HyperLogLog, MergeEqualsUnionStream) {
  const auto keys_a = make_keys(2500, 7);
  const auto keys_b = make_keys(1500, 8);
  auto merged = hll_of(keys_a);
  merged.merge(hll_of(keys_b));
  auto both = keys_a;
  both.insert(both.end(), keys_b.begin(), keys_b.end());
  EXPECT_EQ(merged, hll_of(both));
}

TEST(HyperLogLog, InsertOrderInvariance) {
  const auto keys = make_keys(4000, 11);
  EXPECT_EQ(hll_of(keys), hll_of(shuffled(keys, 1)));
  EXPECT_EQ(hll_of(keys), hll_of(shuffled(keys, 2)));
}

TEST(HyperLogLog, SerializeRoundTripIsBitIdentical) {
  const auto h = hll_of(make_keys(5000, 13), 8, 99);
  const auto bytes = h.serialize();
  HyperLogLog back;
  ASSERT_TRUE(HyperLogLog::deserialize(bytes, &back));
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.serialize(), bytes);

  // Truncated and corrupted inputs are rejected, never aborted on.
  HyperLogLog sink;
  for (std::size_t cut : {std::size_t{0}, std::size_t{15}, bytes.size() - 1})
    EXPECT_FALSE(HyperLogLog::deserialize(
        std::span<const std::uint8_t>(bytes.data(), cut), &sink));
  auto bad = bytes;
  bad[0] = 200;  // precision far out of range
  EXPECT_FALSE(HyperLogLog::deserialize(bad, &sink));
  auto bad_rank = bytes;
  bad_rank[16] = 255;  // register above the max possible rank
  EXPECT_FALSE(HyperLogLog::deserialize(bad_rank, &sink));
  EXPECT_EQ(sink, HyperLogLog());  // failures leave the output untouched
}

// ------------------------------------------------------------ count-min ---

TEST(CountMin, StandardMergeAlgebra) {
  const auto a = cms_of(make_keys(2000, 21));
  const auto b = cms_of(make_keys(3000, 22));
  const auto c = cms_of(make_keys(1000, 23));

  auto ab = a;
  ab.merge(b);
  auto ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);

  auto ab_c = ab;
  ab_c.merge(c);
  auto bc = b;
  bc.merge(c);
  auto a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
}

TEST(CountMin, StandardMergeEqualsUnionStream) {
  const auto keys_a = make_keys(2000, 31);
  const auto keys_b = make_keys(1000, 32);
  auto merged = cms_of(keys_a);
  merged.merge(cms_of(keys_b));
  auto both = keys_a;
  both.insert(both.end(), keys_b.begin(), keys_b.end());
  EXPECT_EQ(merged, cms_of(both));
  EXPECT_EQ(merged.total(), both.size());
}

TEST(CountMin, StandardOrderInvariance) {
  const auto keys = make_keys(3000, 41);
  EXPECT_EQ(cms_of(keys), cms_of(shuffled(keys, 5)));
}

TEST(CountMin, OverestimateOnlyBothModes) {
  const auto keys = make_keys(4000, 51);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (std::uint64_t k : keys) ++truth[k];
  const auto standard = cms_of(keys, CmsUpdate::kStandard);
  const auto conservative = cms_of(keys, CmsUpdate::kConservative);
  for (const auto& [k, count] : truth) {
    EXPECT_GE(standard.estimate(k), count);
    EXPECT_GE(conservative.estimate(k), count);
    // Conservative update is pointwise at least as tight as standard.
    EXPECT_LE(conservative.estimate(k), standard.estimate(k));
  }
}

TEST(CountMin, WeightedAddMatchesRepeatedAdd) {
  CountMinSketch once(4, 128, 3);
  once.add(77, 13);
  CountMinSketch many(4, 128, 3);
  for (int i = 0; i < 13; ++i) many.add(77);
  EXPECT_EQ(once, many);
}

TEST(CountMin, GuaranteeParameters) {
  CountMinSketch c(4, 1u << 14, 1);
  EXPECT_NEAR(c.epsilon(), 2.71828 / 16384.0, 1e-7);
  EXPECT_NEAR(c.delta(), std::exp(-4.0), 1e-9);
}

TEST(CountMin, SerializeRoundTripIsBitIdentical) {
  for (CmsUpdate mode : {CmsUpdate::kStandard, CmsUpdate::kConservative}) {
    const auto c = cms_of(make_keys(2000, 61), mode, 17);
    const auto bytes = c.serialize();
    CountMinSketch back;
    ASSERT_TRUE(CountMinSketch::deserialize(bytes, &back));
    EXPECT_EQ(back, c);
    EXPECT_EQ(back.serialize(), bytes);

    CountMinSketch sink;
    for (std::size_t cut : {std::size_t{0}, std::size_t{39}, bytes.size() - 8})
      EXPECT_FALSE(CountMinSketch::deserialize(
          std::span<const std::uint8_t>(bytes.data(), cut), &sink));
    auto bad = bytes;
    bad[24] = 2;  // invalid update mode
    EXPECT_FALSE(CountMinSketch::deserialize(bad, &sink));
    EXPECT_EQ(sink, CountMinSketch());
  }
}

// ------------------------------------------- parallel determinism sweep ---

class SketchBackendInvariance : public BackendInvariance {};

TEST_F(SketchBackendInvariance, HllAddParallelMatchesSerialEverywhere) {
  const auto keys = make_keys(20000, 71);
  const auto reference = hll_of(keys, 12, 5);
  for (auto backend : {util::ParallelBackend::kPool,
                       util::ParallelBackend::kOpenMP,
                       util::ParallelBackend::kSerial}) {
    util::set_parallel_backend(backend);
    for (int threads : {1, 2, 4, 8}) {
      util::set_parallelism(threads);
      HyperLogLog h(12, 5);
      h.add_parallel(std::span<const std::uint64_t>(keys));
      EXPECT_EQ(h, reference)
          << "backend=" << util::parallel_backend_name()
          << " threads=" << threads;
    }
  }
}

TEST_F(SketchBackendInvariance, CmsAddParallelMatchesSerialEverywhere) {
  const auto keys = make_keys(20000, 81);
  const auto reference = cms_of(keys, CmsUpdate::kStandard, 5);
  for (auto backend : {util::ParallelBackend::kPool,
                       util::ParallelBackend::kOpenMP,
                       util::ParallelBackend::kSerial}) {
    util::set_parallel_backend(backend);
    for (int threads : {1, 2, 4, 8}) {
      util::set_parallelism(threads);
      CountMinSketch c(4, 256, 5);
      c.add_parallel(std::span<const std::uint64_t>(keys));
      EXPECT_EQ(c, reference)
          << "backend=" << util::parallel_backend_name()
          << " threads=" << threads;
    }
  }
}

TEST_F(SketchBackendInvariance, SketchedViewBuildIsBitIdentical) {
  // One multi-component label array, sketched under every backend and
  // thread count: registers and counters must never differ.
  const auto el = graph::make_gnm(4096, 2048, 3);
  auto r = connected_components(graph::ArcsInput::from_edges(el),
                                Algorithm::kFasterCC, {});
  auto index = std::make_shared<const core::ComponentIndex>(
      core::ComponentIndex::from_canonical_labels(r.labels()));

  const auto reference = serve::SketchedView::build(index);
  for (auto backend : {util::ParallelBackend::kPool,
                       util::ParallelBackend::kOpenMP,
                       util::ParallelBackend::kSerial}) {
    util::set_parallel_backend(backend);
    for (int threads : {1, 2, 4, 8}) {
      util::set_parallelism(threads);
      const auto view = serve::SketchedView::build(index);
      EXPECT_EQ(view.count_hll(), reference.count_hll())
          << "backend=" << util::parallel_backend_name()
          << " threads=" << threads;
      EXPECT_EQ(view.size_cms(), reference.size_cms())
          << "backend=" << util::parallel_backend_name()
          << " threads=" << threads;
    }
  }
}

TEST_F(SketchBackendInvariance, StreamStatsFinishIsBitIdentical) {
  // The stream is consumed sequentially by contract; finish() is the
  // parallel part (flatten + bulk sketch fills) and must be bit-identical
  // for every backend and thread count.
  const auto el = graph::make_rmat(9, 2048, 13);
  auto run = [&] {
    sketch::StreamStats stats(el.n);
    for (const auto& e : el.edges) stats.add_edge(e.u, e.v);
    return stats;
  };
  auto ref_stats = run();
  const auto ref_summary = ref_stats.finish();
  for (auto backend : {util::ParallelBackend::kPool,
                       util::ParallelBackend::kOpenMP,
                       util::ParallelBackend::kSerial}) {
    util::set_parallel_backend(backend);
    for (int threads : {1, 2, 4, 8}) {
      util::set_parallelism(threads);
      auto stats = run();
      const auto summary = stats.finish();
      EXPECT_EQ(stats.labels(), ref_stats.labels());
      EXPECT_EQ(stats.component_hll(), ref_stats.component_hll());
      EXPECT_EQ(stats.size_cms(), ref_stats.size_cms());
      EXPECT_EQ(summary.exact_components, ref_summary.exact_components);
      EXPECT_EQ(summary.approx_components, ref_summary.approx_components);
      ASSERT_EQ(summary.heavy.size(), ref_summary.heavy.size());
      for (std::size_t i = 0; i < summary.heavy.size(); ++i) {
        EXPECT_EQ(summary.heavy[i].root, ref_summary.heavy[i].root);
        EXPECT_EQ(summary.heavy[i].exact_size,
                  ref_summary.heavy[i].exact_size);
      }
    }
  }
}

// ---------------------------------------------------------- StreamStats ---

TEST(StreamStats, ExactConnectivityOnZoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    sketch::StreamStats stats(el.n);
    for (const auto& e : el.edges) stats.add_edge(e.u, e.v);
    const auto summary = stats.finish();
    EXPECT_TRUE(logcc::testing::matches_oracle(el, stats.labels())) << name;
    // Labels are canonical min-id, so they match the batch path bitwise.
    auto r = connected_components(graph::ArcsInput::from_edges(el),
                                  Algorithm::kFasterCC, {});
    EXPECT_EQ(stats.labels(), r.labels()) << name;
    EXPECT_EQ(summary.exact_components, r.num_components()) << name;
    EXPECT_EQ(summary.edges, el.edges.size()) << name;
  }
}

TEST(StreamStats, CountsLoopsAndDuplicates) {
  sketch::StreamStats stats(4);
  stats.add_edge(0, 1);
  stats.add_edge(1, 0);  // duplicate (reversed)
  stats.add_edge(2, 2);  // self-loop
  stats.add_edge(2, 3);
  const auto summary = stats.finish();
  EXPECT_EQ(summary.edges, 4u);
  EXPECT_EQ(summary.self_loops, 1u);
  EXPECT_EQ(summary.exact_components, 2u);
  // Tiny cardinalities sit in the linear-counting regime: near-exact.
  EXPECT_NEAR(summary.distinct_edges, 3.0, 0.1);     // {0-1, 2-2, 2-3}
  EXPECT_NEAR(summary.touched_vertices, 4.0, 0.1);   // all of them
  EXPECT_NEAR(summary.approx_components, 2.0, 0.1);
}

TEST(StreamStats, HeavyHittersFindTheHub) {
  // A star with mass on vertex 0 plus a far-away path: the hub's component
  // must top the heavy list with a sane mass estimate.
  const std::uint64_t n = 256;
  sketch::StreamStatsOptions opt;
  opt.heavy_hitters = 4;
  sketch::StreamStats stats(n, opt);
  for (graph::VertexId v = 1; v < 128; ++v) stats.add_edge(0, v);
  for (graph::VertexId v = 128; v + 1 < n; ++v) stats.add_edge(v, v + 1);
  const auto summary = stats.finish();
  ASSERT_FALSE(summary.heavy.empty());
  EXPECT_EQ(summary.heavy[0].root, 0u);
  EXPECT_EQ(summary.heavy[0].hot_vertex, 0u);
  EXPECT_EQ(summary.heavy[0].exact_size, 128u);
  EXPECT_GE(summary.heavy[0].endpoint_mass, 127u);  // overestimate-only
  EXPECT_GE(summary.heavy[0].approx_size, 128u);    // overestimate-only
  for (std::size_t i = 1; i < summary.heavy.size(); ++i)
    EXPECT_GE(summary.heavy[i - 1].endpoint_mass,
              summary.heavy[i].endpoint_mass);
}

TEST(StreamStats, DeterministicAcrossRuns) {
  const auto el = graph::make_gnm(512, 1024, 9);
  auto run = [&] {
    sketch::StreamStats stats(el.n);
    for (const auto& e : el.edges) stats.add_edge(e.u, e.v);
    return stats;
  };
  auto a = run();
  auto b = run();
  a.finish();
  b.finish();
  EXPECT_EQ(a.edge_hll(), b.edge_hll());
  EXPECT_EQ(a.vertex_hll(), b.vertex_hll());
  EXPECT_EQ(a.degree_cms(), b.degree_cms());
  EXPECT_EQ(a.component_hll(), b.component_hll());
  EXPECT_EQ(a.size_cms(), b.size_cms());
  EXPECT_EQ(a.labels(), b.labels());
}

}  // namespace
