#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/timer.hpp"

namespace logcc::util {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  constexpr std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndReversedRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallRangeRunsSerially) {
  // Below the grain the loop must run inline (observable: order preserved).
  std::vector<std::size_t> order;
  parallel_for(0, 16, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, OffsetRange) {
  std::vector<std::atomic<int>> hits(10);
  parallel_for(3, 7, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(hits[i].load(), (i >= 3 && i < 7) ? 1 : 0);
}

TEST(ParallelFor, SumMatchesSerial) {
  constexpr std::size_t n = 50000;
  std::vector<std::uint64_t> data(n);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<std::uint64_t> total{0};
  parallel_for(0, n, [&](std::size_t i) {
    total.fetch_add(data[i], std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), n * (n + 1) / 2);
}

TEST(HardwareParallelism, AtLeastOne) {
  EXPECT_GE(hardware_parallelism(), 1);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += i;
  double s = t.seconds();
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 60.0);
  EXPECT_NEAR(t.millis(), t.seconds() * 1e3, t.seconds() * 20);
  t.reset();
  EXPECT_LT(t.seconds(), s + 1.0);
}

}  // namespace
}  // namespace logcc::util
