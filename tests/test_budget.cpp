#include "core/budget.hpp"

#include <gtest/gtest.h>

namespace logcc::core {
namespace {

TEST(ParamPolicy, PracticalBasics) {
  ParamPolicy p = ParamPolicy::practical(1000, 4000);
  EXPECT_EQ(p.kind, ParamPolicy::Kind::kPractical);
  EXPECT_GE(p.b1, 4u);
  EXPECT_GT(p.budget_cap, 1000u);
  EXPECT_EQ(p.budget_for_level(0), 0u);
  EXPECT_EQ(p.budget_for_level(1), p.b1);
}

TEST(ParamPolicy, BudgetsGrowDoubleExponentially) {
  ParamPolicy p = ParamPolicy::practical(1 << 20, 1 << 23);
  // b_{l+1} = b_l^growth until the cap: log-budgets grow geometrically.
  std::uint64_t prev = p.budget_for_level(1);
  for (std::uint32_t l = 2; l <= p.saturation_level(); ++l) {
    std::uint64_t cur = p.budget_for_level(l);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_EQ(p.budget_for_level(p.saturation_level()), p.budget_cap);
}

TEST(ParamPolicy, BudgetMonotoneAndCapped) {
  ParamPolicy p = ParamPolicy::practical(100, 500);
  for (std::uint32_t l = 1; l < 60; ++l) {
    EXPECT_LE(p.budget_for_level(l), p.budget_cap);
    EXPECT_LE(p.budget_for_level(l), p.budget_for_level(l + 1));
  }
}

TEST(ParamPolicy, SaturationLevelIsLogLogLike) {
  // growth 1.5, b1 >= 4: levels to reach cap ~ log_{1.5}(log_4 cap) — tiny.
  ParamPolicy p = ParamPolicy::practical(1 << 22, 1 << 24);
  EXPECT_LE(p.saturation_level(), 16u);
  EXPECT_GE(p.saturation_level(), 2u);
}

TEST(ParamPolicy, RaiseProbabilityDecreasesWithBudget) {
  ParamPolicy p = ParamPolicy::practical(1 << 16, 1 << 18);
  double prev = 1.1;
  for (std::uint64_t b : {4ULL, 16ULL, 256ULL, 65536ULL}) {
    double prob = p.raise_probability(b);
    EXPECT_LE(prob, prev);
    EXPECT_GE(prob, 0.0);
    prev = prob;
  }
}

TEST(ParamPolicy, RaiseProbabilityPositiveEvenAtCap) {
  // The random raise must stay available at the cap: it is the only
  // mechanism that desynchronises equal-level saturated clusters
  // (Lemma 3.8/D.11). Break-condition reachability is handled by the driver
  // (only active roots flip the coin), not by zeroing the probability.
  ParamPolicy p = ParamPolicy::practical(1000, 2000);
  EXPECT_GT(p.raise_probability(p.budget_cap), 0.0);
  EXPECT_LT(p.raise_probability(p.budget_cap), 0.5);
  EXPECT_GT(p.raise_probability(p.b1), p.raise_probability(p.budget_cap));
}

TEST(ParamPolicy, TableCapacityModes) {
  ParamPolicy practical = ParamPolicy::practical(1000, 4000);
  EXPECT_EQ(practical.table_capacity(64), 64u);
  ParamPolicy paper = ParamPolicy::paper(1000, 4000);
  EXPECT_EQ(paper.table_capacity(64), 8u);  // sqrt(b)
  EXPECT_EQ(practical.table_capacity(0), 0u);
  EXPECT_GE(practical.table_capacity(1), 2u);  // floor
}

TEST(ParamPolicy, PaperModeSaturatesImmediatelyAtFeasibleN) {
  // log^200 n dwarfs any feasible m/n: b1 hits the cap, exactly as DESIGN.md
  // §5.2 documents.
  ParamPolicy p = ParamPolicy::paper(1 << 20, 1 << 22);
  EXPECT_EQ(p.b1, p.budget_cap);
  EXPECT_EQ(p.saturation_level(), 1u);
}

TEST(ParamPolicy, PaperGrowthConstant) {
  ParamPolicy p = ParamPolicy::paper(1 << 20, 1 << 22);
  EXPECT_DOUBLE_EQ(p.growth, 1.01);
  EXPECT_TRUE(p.table_is_sqrt);
}

}  // namespace
}  // namespace logcc::core
