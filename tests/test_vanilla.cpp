#include "core/vanilla.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc::core {
namespace {

using logcc::testing::matches_oracle;

TEST(Vanilla, Zoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = vanilla_cc(el, 5);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << name;
  }
}

TEST(Vanilla, DifferentSeedsSamePartition) {
  auto el = graph::make_gnm(150, 400, 8);
  auto a = vanilla_cc(el, 1);
  auto b = vanilla_cc(el, 424242);
  EXPECT_TRUE(graph::same_partition(a.labels, b.labels));
}

TEST(Vanilla, LogNPhases) {
  auto el = graph::make_path(2048);
  auto r = vanilla_cc(el, 3);
  // Reif: O(log n) phases w.h.p. log2(2048) = 11; allow 4x.
  EXPECT_LE(r.stats.phases, 44u);
  EXPECT_GE(r.stats.phases, 5u);
}

TEST(Vanilla, PhasesIndependentOfDiameterShape) {
  // Vanilla is Θ(log n) regardless of d — the contrast Theorem 3 beats.
  auto low_d = vanilla_cc(graph::make_star(4096), 7);
  auto high_d = vanilla_cc(graph::make_path(4096), 7);
  // Both in the same Θ(log n) ballpark (allow generous slack).
  EXPECT_LE(low_d.stats.phases * 6, high_d.stats.phases * 10 + 60);
  EXPECT_LE(high_d.stats.phases, 50u);
}

TEST(Vanilla, MaxPhasesRespected) {
  auto el = graph::make_path(512);
  ParentForest f(el.n);
  auto arcs = arcs_from_edges(el);
  RunStats stats;
  VanillaOptions opt;
  opt.seed = 3;
  opt.max_phases = 2;
  std::uint64_t ran = vanilla_phases(f, arcs, opt, stats);
  EXPECT_LE(ran, 2u);
  EXPECT_EQ(stats.phases, ran);
  EXPECT_TRUE(f.acyclic());
}

TEST(Vanilla, TreesFlatBetweenPhases) {
  auto el = graph::make_gnm(100, 240, 13);
  ParentForest f(el.n);
  auto arcs = arcs_from_edges(el);
  RunStats stats;
  VanillaOptions opt;
  opt.seed = 5;
  opt.max_phases = 1;
  for (int phase = 0; phase < 8; ++phase) {
    vanilla_phases(f, arcs, opt, stats);
    EXPECT_TRUE(f.all_flat()) << "phase " << phase;
    EXPECT_TRUE(f.acyclic());
  }
}

TEST(Vanilla, MonotoneNoSplit) {
  // Monotonicity (§2.1): partitions only coarsen over phases.
  auto el = graph::make_gnm(80, 200, 21);
  ParentForest f(el.n);
  auto arcs = arcs_from_edges(el);
  RunStats stats;
  VanillaOptions opt;
  opt.seed = 9;
  opt.max_phases = 1;
  std::vector<VertexId> prev = f.root_labels();
  for (int phase = 0; phase < 10; ++phase) {
    vanilla_phases(f, arcs, opt, stats);
    std::vector<VertexId> cur = f.root_labels();
    // Every pair together before must stay together.
    for (std::uint64_t v = 0; v < el.n; ++v)
      for (std::uint64_t w = v + 1; w < el.n; ++w)
        if (prev[v] == prev[w]) EXPECT_EQ(cur[v], cur[w]);
    prev = std::move(cur);
  }
}

TEST(VanillaSf, ForestValidOnZoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = vanilla_sf(el, 17);
    auto check = graph::validate_spanning_forest(el, r.forest_edges);
    EXPECT_TRUE(check.ok) << name << ": " << check.error;
  }
}

TEST(VanillaSf, ForestSizeMatchesComponents) {
  auto el = graph::disjoint_union(
      {graph::make_cycle(20), graph::make_gnm(50, 120, 3)});
  auto r = vanilla_sf(el, 23);
  auto oracle = logcc::testing::oracle_labels(el);
  EXPECT_EQ(r.forest_edges.size(), el.n - graph::count_components(oracle));
}

TEST(VanillaSf, MarksOnlyInputEdges) {
  auto el = graph::make_gnm(60, 150, 31);
  auto r = vanilla_sf(el, 29);
  for (std::uint64_t idx : r.forest_edges) EXPECT_LT(idx, el.edges.size());
}

}  // namespace
}  // namespace logcc::core
