#include "core/labels.hpp"

#include <gtest/gtest.h>

namespace logcc::core {
namespace {

TEST(ParentForest, StartsSelfLabeled) {
  ParentForest f(5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_TRUE(f.is_root(v));
    EXPECT_EQ(f.parent(v), v);
  }
  EXPECT_TRUE(f.all_flat());
  EXPECT_TRUE(f.acyclic());
}

TEST(ParentForest, ShortcutHalvesChain) {
  ParentForest f(8);
  for (VertexId v = 1; v < 8; ++v) f.set_parent(v, v - 1);
  EXPECT_FALSE(f.all_flat());
  EXPECT_TRUE(f.shortcut());
  // After one shortcut every vertex points at its grandparent.
  EXPECT_EQ(f.parent(7), 5u);
  EXPECT_EQ(f.parent(2), 0u);
}

TEST(ParentForest, FlattenMakesAllFlat) {
  ParentForest f(33);
  for (VertexId v = 1; v < 33; ++v) f.set_parent(v, v - 1);
  std::uint64_t steps = f.flatten();
  EXPECT_TRUE(f.all_flat());
  for (VertexId v = 0; v < 33; ++v) EXPECT_EQ(f.parent(v), 0u);
  EXPECT_LE(steps, 7u);  // ceil(log2 32) + 2
}

TEST(ParentForest, ShortcutIsSynchronous) {
  // p = [1 <- 2 <- 3]: synchronous shortcut must read old pointers.
  ParentForest f(4);
  f.set_parent(3, 2);
  f.set_parent(2, 1);
  f.set_parent(1, 0);
  f.shortcut();
  EXPECT_EQ(f.parent(3), 1u);  // old grandparent, not the new one
  EXPECT_EQ(f.parent(2), 0u);
  EXPECT_EQ(f.parent(1), 0u);
}

TEST(ParentForest, FindRoot) {
  ParentForest f(6);
  f.set_parent(5, 4);
  f.set_parent(4, 3);
  f.set_parent(3, 3);
  EXPECT_EQ(f.find_root(5), 3u);
  EXPECT_EQ(f.find_root(0), 0u);
}

TEST(ParentForest, RootLabels) {
  ParentForest f(5);
  f.set_parent(1, 0);
  f.set_parent(2, 1);
  f.set_parent(4, 3);
  auto labels = f.root_labels();
  EXPECT_EQ(labels, (std::vector<VertexId>{0, 0, 0, 3, 3}));
}

TEST(ParentForest, AcyclicDetectsCycle) {
  ParentForest f(4);
  f.set_parent(0, 1);
  f.set_parent(1, 0);  // 2-cycle
  EXPECT_FALSE(f.acyclic());
}

TEST(ParentForest, AcyclicAcceptsDeepTree) {
  ParentForest f(100);
  for (VertexId v = 1; v < 100; ++v) f.set_parent(v, v / 2);
  EXPECT_TRUE(f.acyclic());
}

TEST(ParentForest, AcyclicDetectsLongCycle) {
  ParentForest f(10);
  for (VertexId v = 0; v < 5; ++v) f.set_parent(v, (v + 1) % 5);
  EXPECT_FALSE(f.acyclic());
}

TEST(LevelInvariant, HoldsAndBreaks) {
  ParentForest f(4);
  std::vector<std::uint32_t> level{1, 2, 3, 1};
  f.set_parent(0, 1);
  f.set_parent(1, 2);
  EXPECT_TRUE(level_invariant_holds(f, level));
  level[0] = 2;  // now equal to parent's level: violation
  EXPECT_FALSE(level_invariant_holds(f, level));
}

TEST(ParentForestDeath, FindRootOnCycleAborts) {
  ParentForest f(3);
  f.set_parent(0, 1);
  f.set_parent(1, 0);
  EXPECT_DEATH((void)f.find_root(0), "cycle");
}

}  // namespace
}  // namespace logcc::core
