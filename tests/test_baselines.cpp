#include <gtest/gtest.h>

#include "baselines/awerbuch_shiloach.hpp"
#include "baselines/bfs_cc.hpp"
#include "baselines/label_propagation.hpp"
#include "baselines/shiloach_vishkin.hpp"
#include "baselines/union_find.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "test_support.hpp"

namespace logcc::baselines {
namespace {

using logcc::testing::matches_oracle;

using CcFn = BaselineResult (*)(const graph::EdgeList&);

struct Named {
  const char* name;
  CcFn fn;
};

const Named kAll[] = {
    {"shiloach-vishkin", shiloach_vishkin},
    {"awerbuch-shiloach", awerbuch_shiloach},
    {"label-propagation", label_propagation},
    {"liu-tarjan", liu_tarjan},
    {"union-find", union_find_cc},
    {"bfs", bfs_cc},
};

TEST(Baselines, AllCorrectOnZoo) {
  for (const auto& [gname, el] : logcc::testing::small_zoo()) {
    for (const Named& alg : kAll) {
      auto r = alg.fn(el);
      EXPECT_TRUE(matches_oracle(el, r.labels)) << alg.name << " on " << gname;
    }
  }
}

TEST(Baselines, AllAgreePairwise) {
  auto el = graph::make_gnm(200, 420, 77);
  auto ref = bfs_cc(el);
  for (const Named& alg : kAll) {
    auto r = alg.fn(el);
    EXPECT_TRUE(graph::same_partition(ref.labels, r.labels)) << alg.name;
  }
}

TEST(ShiloachVishkin, LogRounds) {
  auto r = shiloach_vishkin(graph::make_path(4096));
  EXPECT_LE(r.rounds, 30u);  // ~log2(4096)=12 with constant slack
  EXPECT_GE(r.rounds, 4u);
}

TEST(AwerbuchShiloach, LogRounds) {
  // Synchronous AS has a larger constant than SV (stars must re-form
  // between hooks); check the growth is logarithmic, not the constant.
  auto small = awerbuch_shiloach(graph::make_path(256));
  auto big = awerbuch_shiloach(graph::make_path(4096));
  EXPECT_GE(big.rounds, 4u);
  EXPECT_LE(big.rounds, 8 * 12 + 8u);
  // Growing n by 16x (log2: 8 -> 12) must scale rounds like the log ratio
  // (~1.5x, slack to 2.8x), ruling out polynomial growth (16x).
  EXPECT_LE(big.rounds * 10, small.rounds * 28);
}

TEST(LabelPropagation, ThetaDiameterRounds) {
  auto path = label_propagation(graph::make_path(200));
  // Min label spreads one hop per round: rounds ≈ d.
  EXPECT_GE(path.rounds, 150u);
  EXPECT_LE(path.rounds, 220u);
  auto star = label_propagation(graph::make_star(200));
  EXPECT_LE(star.rounds, 4u);
}

TEST(LiuTarjan, FasterThanLabelPropOnPaths) {
  auto lt = liu_tarjan(graph::make_path(512));
  auto lp = label_propagation(graph::make_path(512));
  EXPECT_LT(lt.rounds, lp.rounds / 4);
}

TEST(UnionFind, DisjointSetsBasics) {
  DisjointSets ds(6);
  EXPECT_EQ(ds.num_sets(), 6u);
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_FALSE(ds.unite(1, 0));
  EXPECT_TRUE(ds.unite(2, 3));
  EXPECT_TRUE(ds.unite(0, 3));
  EXPECT_EQ(ds.num_sets(), 3u);
  EXPECT_EQ(ds.find(1), ds.find(2));
  EXPECT_NE(ds.find(4), ds.find(5));
}

TEST(UnionFind, PathSplittingKeepsRootsStable) {
  DisjointSets ds(100);
  for (graph::VertexId v = 1; v < 100; ++v) ds.unite(v - 1, v);
  graph::VertexId root = ds.find(0);
  for (graph::VertexId v = 0; v < 100; ++v) EXPECT_EQ(ds.find(v), root);
  EXPECT_EQ(ds.num_sets(), 1u);
}

TEST(Baselines, DeterministicAlgorithmsAreDeterministic) {
  auto el = graph::make_gnm(100, 250, 31);
  for (const Named& alg : {kAll[0], kAll[1], kAll[2], kAll[4], kAll[5]}) {
    auto a = alg.fn(el);
    auto b = alg.fn(el);
    EXPECT_EQ(a.labels, b.labels) << alg.name;
    EXPECT_EQ(a.rounds, b.rounds) << alg.name;
  }
}

TEST(AwerbuchShiloach, StarDetectionRegressionSweep) {
  // Companion to SvOnPram.RegressionArbitrarySeed999NoCycle: the same
  // star-detection bug lived here. Dense-ish random graphs across seeds
  // exercise deep temporary trees whose mis-classification caused cycles.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto el = graph::make_gnm(400, 1600, seed * 101);
    auto r = awerbuch_shiloach(el);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << seed;
  }
}

TEST(Baselines, HandleParallelEdgesAndLoops) {
  graph::EdgeList el;
  el.n = 4;
  el.add(0, 1);
  el.add(1, 0);
  el.add(1, 1);
  el.add(2, 3);
  el.add(2, 3);
  for (const Named& alg : kAll) {
    auto r = alg.fn(el);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << alg.name;
  }
}

}  // namespace
}  // namespace logcc::baselines
