#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace logcc::graph {
namespace {

TEST(GraphIo, RoundTrip) {
  EdgeList el = make_gnm(40, 80, 2);
  std::stringstream ss;
  write_edge_list(ss, el);
  EdgeList back;
  ASSERT_TRUE(read_edge_list(ss, back));
  EXPECT_EQ(back.n, el.n);
  ASSERT_EQ(back.edges.size(), el.edges.size());
  for (std::size_t i = 0; i < el.edges.size(); ++i)
    EXPECT_EQ(back.edges[i], el.edges[i]);
}

TEST(GraphIo, CommentsSkipped) {
  std::stringstream ss("# comment\n% another\n4 2\n0 1\n2 3\n");
  EdgeList el;
  ASSERT_TRUE(read_edge_list(ss, el));
  EXPECT_EQ(el.n, 4u);
  EXPECT_EQ(el.edges.size(), 2u);
}

TEST(GraphIo, HeaderlessInputInfersN) {
  std::stringstream ss("0 1\n1 5\n2 3\n");
  EdgeList el;
  ASSERT_TRUE(read_edge_list(ss, el));
  EXPECT_EQ(el.n, 6u);  // max endpoint + 1
  EXPECT_EQ(el.edges.size(), 3u);
  EXPECT_EQ(el.edges[0], (Edge{0, 1}));
}

TEST(GraphIo, EmptyInputFails) {
  std::stringstream ss("");
  EdgeList el;
  EXPECT_FALSE(read_edge_list(ss, el));
}

TEST(GraphIo, MalformedLineFails) {
  std::stringstream ss("3 1\n0 not-a-number\n");
  EdgeList el;
  EXPECT_FALSE(read_edge_list(ss, el));
}

TEST(GraphIo, FileRoundTrip) {
  EdgeList el = make_path(12);
  std::string path = ::testing::TempDir() + "/logcc_io_test.txt";
  ASSERT_TRUE(write_edge_list_file(path, el));
  EdgeList back;
  ASSERT_TRUE(read_edge_list_file(path, back));
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.edges.size(), el.edges.size());
}

TEST(GraphIo, MissingFileFails) {
  EdgeList el;
  EXPECT_FALSE(read_edge_list_file("/nonexistent/definitely/missing", el));
}

}  // namespace
}  // namespace logcc::graph
