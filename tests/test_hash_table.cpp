#include "core/hash_table.hpp"

#include <gtest/gtest.h>

#include "util/hashing.hpp"

namespace logcc::core {
namespace {

TEST(VertexTable, InsertNewAndPresent) {
  VertexTable t(4);
  EXPECT_EQ(t.insert_at(2, 7), VertexTable::Insert::kNew);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_EQ(t.insert_at(2, 7), VertexTable::Insert::kPresent);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_FALSE(t.collided());
}

TEST(VertexTable, CollisionDetected) {
  VertexTable t(4);
  t.insert_at(1, 5);
  EXPECT_EQ(t.insert_at(1, 6), VertexTable::Insert::kCollision);
  EXPECT_TRUE(t.collided());
  EXPECT_EQ(t.count(), 1u);  // loser is not stored
}

TEST(VertexTable, CollisionKeepsFirstOccupant) {
  // CRCW semantics in our rendering: the first write wins, later different
  // writes are collisions; re-reading the cell shows the original value.
  VertexTable t(2);
  t.insert_at(0, 9);
  t.insert_at(0, 10);
  EXPECT_TRUE(t.contains_at(0, 9));
  EXPECT_FALSE(t.contains_at(0, 10));
}

TEST(VertexTable, ResetClearsEverything) {
  VertexTable t(2);
  t.insert_at(0, 1);
  t.insert_at(0, 2);  // collision
  t.reset(8);
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_FALSE(t.collided());
}

TEST(VertexTable, ItemsAndForEach) {
  VertexTable t(8);
  t.insert_at(1, 11);
  t.insert_at(5, 55);
  auto items = t.items();
  ASSERT_EQ(items.size(), 2u);
  std::uint32_t visits = 0;
  t.for_each([&](graph::VertexId v) {
    EXPECT_TRUE(v == 11 || v == 55);
    ++visits;
  });
  EXPECT_EQ(visits, 2u);
}

TEST(VertexTable, ContainsAtBounds) {
  VertexTable t(2);
  EXPECT_FALSE(t.contains_at(5, 1));  // out of range is just "no"
}

TEST(VertexTable, MarkCollidedManually) {
  VertexTable t(2);
  EXPECT_FALSE(t.collided());
  t.mark_collided();
  EXPECT_TRUE(t.collided());
}

TEST(VertexTable, DedupByHashingMatchesPaperClaim) {
  // "Hashing naturally removes the duplicate neighbors": inserting the same
  // vertex many times through a hash function keeps one copy, no collision.
  VertexTable t(16);
  auto h = util::PairwiseHash::from_seed(3);
  for (int rep = 0; rep < 10; ++rep) {
    auto cell = static_cast<std::uint32_t>(h(42, t.capacity()));
    t.insert_at(cell, 42);
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_FALSE(t.collided());
}

}  // namespace
}  // namespace logcc::core
