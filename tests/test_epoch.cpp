// util::EpochPtr under concurrent publish/read churn — the serve layer's
// snapshot-swap primitive (PR 10 satellite). One writer publishes
// generations as fast as it can while 8 reader threads load continuously;
// every loaded snapshot must be internally consistent (immutable once
// published), epochs must be monotonic, and dropped snapshots must be
// freed exactly once (shared_ptr accounting). The TSan CI job runs this
// suite with the pool backend to race-check the load/store pair.
#include "util/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace logcc {
namespace {

/// A snapshot whose fields must agree: value * 3 == triple, and the
/// guard must equal the value xored with the build-time constant. A torn
/// or mutated-after-publish snapshot breaks one of the equations.
struct Snapshot {
  std::uint64_t value;
  std::uint64_t triple;
  std::uint64_t guard;
  static constexpr std::uint64_t kGuardXor = 0x9E3779B97F4A7C15ull;
  explicit Snapshot(std::uint64_t v)
      : value(v), triple(3 * v), guard(v ^ kGuardXor) {}
  bool consistent() const {
    return triple == 3 * value && guard == (value ^ kGuardXor);
  }
};

TEST(EpochPtr, StartsNullAtEpochZero) {
  util::EpochPtr<Snapshot> p;
  EXPECT_EQ(p.load(), nullptr);
  EXPECT_EQ(p.epoch(), 0u);
}

TEST(EpochPtr, StoreBumpsEpochAndSwapsValue) {
  util::EpochPtr<Snapshot> p;
  p.store(std::make_shared<const Snapshot>(7));
  EXPECT_EQ(p.epoch(), 1u);
  EXPECT_EQ(p.load()->value, 7u);
  p.store(std::make_shared<const Snapshot>(8));
  EXPECT_EQ(p.epoch(), 2u);
  EXPECT_EQ(p.load()->value, 8u);
}

TEST(EpochPtr, OldSnapshotSurvivesWhileHeld) {
  util::EpochPtr<Snapshot> p;
  p.store(std::make_shared<const Snapshot>(1));
  const auto held = p.load();
  p.store(std::make_shared<const Snapshot>(2));
  EXPECT_EQ(held->value, 1u) << "a held epoch must keep its view";
  EXPECT_EQ(p.load()->value, 2u);
}

TEST(EpochPtr, ConcurrentPublishReadChurn) {
  constexpr int kReaders = 8;
  constexpr std::uint64_t kGenerations = 20000;

  util::EpochPtr<Snapshot> p;
  p.store(std::make_shared<const Snapshot>(0));
  std::atomic<bool> done{false};
  std::atomic<int> started{0};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> loads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      std::uint64_t my_loads = 0;
      std::uint64_t last_epoch = 0;
      std::uint64_t my_torn = 0;
      started.fetch_add(1, std::memory_order_release);
      while (!done.load(std::memory_order_acquire)) {
        // Epoch-then-load: the snapshot read must be at least as new as
        // the epoch observed before it (the counter bumps on store).
        const std::uint64_t e = p.epoch();
        const auto snap = p.load();
        if (snap == nullptr || !snap->consistent()) ++my_torn;
        if (e < last_epoch) ++my_torn;  // monotonicity violation
        last_epoch = e;
        ++my_loads;
      }
      torn.fetch_add(my_torn, std::memory_order_relaxed);
      loads.fetch_add(my_loads, std::memory_order_relaxed);
    });
  }

  // Publish/read churn needs actual overlap: 20k stores outrun thread
  // startup, so wait for every reader's first iteration before racing.
  while (started.load(std::memory_order_acquire) < kReaders) {
  }
  for (std::uint64_t g = 1; g <= kGenerations; ++g)
    p.store(std::make_shared<const Snapshot>(g));
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0u)
      << "a reader observed a torn, mutated, or epoch-regressed snapshot";
  EXPECT_GT(loads.load(), 0u);
  EXPECT_EQ(p.epoch(), kGenerations + 1);
  EXPECT_EQ(p.load()->value, kGenerations);
  EXPECT_TRUE(p.load()->consistent());
}

TEST(EpochPtr, ChurnWithHeldReferences) {
  // Readers that HOLD snapshots across many generations: the writer keeps
  // publishing, held epochs must stay alive and unchanged until released.
  util::EpochPtr<Snapshot> p;
  p.store(std::make_shared<const Snapshot>(0));
  std::atomic<bool> done{false};
  std::atomic<int> started{0};
  std::atomic<std::uint64_t> violations{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      started.fetch_add(1, std::memory_order_release);
      while (!done.load(std::memory_order_acquire)) {
        const auto held = p.load();
        const std::uint64_t v = held->value;
        // Spin a little while the writer races ahead, then re-check the
        // held snapshot did not change underneath us.
        for (int spin = 0; spin < 64; ++spin) {
          if (!held->consistent() || held->value != v) {
            violations.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  while (started.load(std::memory_order_acquire) < 8) {
  }
  for (std::uint64_t g = 1; g <= 5000; ++g)
    p.store(std::make_shared<const Snapshot>(g));
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0u);
}

}  // namespace
}  // namespace logcc
