#include "pram/machine.hpp"

#include <gtest/gtest.h>

#include <set>

namespace logcc::pram {
namespace {

TEST(Machine, ReadsSeePreStepSnapshot) {
  Machine m(4, WritePolicy::kArbitrary, 1);
  m.poke(0, 10);
  m.step(2, [&](std::size_t p) {
    if (p == 0) m.write(0, 99, p);
    // Processor 1 reads cell 0 during the same step: must see 10, not 99.
    if (p == 1) m.write(1, m.read(0), p);
  });
  EXPECT_EQ(m.peek(0), 99u);
  EXPECT_EQ(m.peek(1), 10u);
}

TEST(Machine, PriorityLowestProcWins) {
  Machine m(1, WritePolicy::kPriority, 1);
  m.step(8, [&](std::size_t p) { m.write(0, 100 + p, p); });
  EXPECT_EQ(m.peek(0), 100u);
}

TEST(Machine, CombineMin) {
  Machine m(1, WritePolicy::kCombineMin, 1);
  m.step(5, [&](std::size_t p) { m.write(0, 50 - p, p); });
  EXPECT_EQ(m.peek(0), 46u);
}

TEST(Machine, CombineSum) {
  Machine m(1, WritePolicy::kCombineSum, 1);
  m.step(5, [&](std::size_t p) { m.write(0, p + 1, p); });
  EXPECT_EQ(m.peek(0), 15u);
}

TEST(Machine, ArbitraryPicksAmongWriters) {
  Machine m(1, WritePolicy::kArbitrary, 7);
  m.step(8, [&](std::size_t p) { m.write(0, 100 + p, p); });
  Word w = m.peek(0);
  EXPECT_GE(w, 100u);
  EXPECT_LT(w, 108u);
}

TEST(Machine, ArbitrarySeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    Machine m(1, WritePolicy::kArbitrary, seed);
    m.step(8, [&](std::size_t p) { m.write(0, 100 + p, p); });
    return m.peek(0);
  };
  EXPECT_EQ(run(3), run(3));
}

TEST(Machine, ArbitrarySeedVariesWinner) {
  std::set<Word> winners;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Machine m(1, WritePolicy::kArbitrary, seed);
    m.step(8, [&](std::size_t p) { m.write(0, 100 + p, p); });
    winners.insert(m.peek(0));
  }
  EXPECT_GT(winners.size(), 1u) << "arbitrary policy never varied its winner";
}

TEST(Machine, ArbitraryIndependentOfExecutionOrder) {
  // The winner must not depend on the order the host executes processors:
  // run the same step with processors issuing writes in reverse order.
  Machine fwd(1, WritePolicy::kArbitrary, 5);
  fwd.step(8, [&](std::size_t p) { fwd.write(0, 100 + p, p); });
  Machine rev(1, WritePolicy::kArbitrary, 5);
  rev.step(8, [&](std::size_t p) {
    std::size_t q = 7 - p;
    rev.write(0, 100 + q, q);
  });
  EXPECT_EQ(fwd.peek(0), rev.peek(0));
}

TEST(Machine, LedgerCountsStepsWorkWritesConflicts) {
  Machine m(4, WritePolicy::kArbitrary, 1);
  m.step(4, [&](std::size_t p) { m.write(p % 2, p, p); });
  m.step(2, [&](std::size_t p) { m.write(2 + p, p, p); });
  const Ledger& l = m.ledger();
  EXPECT_EQ(l.steps, 2u);
  EXPECT_EQ(l.work, 6u);
  EXPECT_EQ(l.writes, 6u);
  EXPECT_EQ(l.conflicts, 2u);  // cells 0 and 1 in step 1
}

TEST(Machine, PokePeekOutOfBand) {
  Machine m(3, WritePolicy::kArbitrary, 1);
  m.poke(2, 77);
  EXPECT_EQ(m.peek(2), 77u);
  EXPECT_EQ(m.ledger().steps, 0u);
}

TEST(Machine, ToStringPolicies) {
  EXPECT_STREQ(to_string(WritePolicy::kArbitrary), "arbitrary");
  EXPECT_STREQ(to_string(WritePolicy::kPriority), "priority");
  EXPECT_STREQ(to_string(WritePolicy::kCombineMin), "combine-min");
  EXPECT_STREQ(to_string(WritePolicy::kCombineSum), "combine-sum");
}

}  // namespace
}  // namespace logcc::pram
