#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "mpc/engine.hpp"
#include "mpc/mpc_cc.hpp"
#include "test_support.hpp"

namespace logcc::mpc {
namespace {

using logcc::testing::matches_oracle;

TEST(MpcEngine, ChargesRoundsPerPrimitive) {
  MpcConfig cfg;
  cfg.n = 1024;
  MpcEngine engine(cfg);
  std::vector<int> xs{3, 1, 2};
  engine.sort(xs, std::less<int>());
  EXPECT_EQ(engine.ledger().rounds, 1u);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  engine.dedup(xs);
  engine.broadcast();
  EXPECT_EQ(engine.ledger().rounds, 3u);
  EXPECT_EQ(engine.ledger().primitive_calls, 3u);
}

TEST(MpcEngine, PrefixSumExclusive) {
  MpcConfig cfg;
  cfg.n = 16;
  MpcEngine engine(cfg);
  auto out = engine.prefix_sum({1, 2, 3, 4});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 1, 3, 6}));
  EXPECT_EQ(engine.ledger().rounds, 1u);
}

TEST(MpcEngine, MachineMemoryIsNPowEpsilon) {
  MpcConfig cfg;
  cfg.n = 1 << 20;
  cfg.epsilon = 0.5;
  MpcEngine engine(cfg);
  EXPECT_EQ(engine.machine_memory(), 1u << 10);
}

TEST(MpcEngine, CustomRoundPrice) {
  MpcConfig cfg;
  cfg.n = 64;
  cfg.rounds_per_primitive = 3;
  MpcEngine engine(cfg);
  engine.broadcast();
  EXPECT_EQ(engine.ledger().rounds, 3u);
}

TEST(MpcVanilla, Zoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = mpc_vanilla_cc(el, 5);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << name;
  }
}

TEST(MpcVanilla, LogNPhases) {
  auto r = mpc_vanilla_cc(graph::make_path(4096), 7);
  EXPECT_LE(r.phases, 50u);
  EXPECT_GE(r.phases, 6u);
}

TEST(MpcLogDiameter, Zoo) {
  for (const auto& [name, el] : logcc::testing::small_zoo()) {
    auto r = mpc_log_diameter_cc(el, 5);
    EXPECT_TRUE(matches_oracle(el, r.labels)) << name;
  }
}

TEST(MpcLogDiameter, SeedsAgree) {
  auto el = graph::make_gnm(300, 900, 3);
  auto a = mpc_log_diameter_cc(el, 1);
  auto b = mpc_log_diameter_cc(el, 999);
  EXPECT_TRUE(graph::same_partition(a.labels, b.labels));
}

TEST(MpcLogDiameter, FewerPhasesThanVanillaOnDenseGraphs) {
  // The double-exponential budget: log log phases vs vanilla's log n.
  auto el = graph::make_gnm(2048, 16384, 11);
  auto fast = mpc_log_diameter_cc(el, 3);
  auto vanilla = mpc_vanilla_cc(el, 3);
  EXPECT_LT(fast.phases, vanilla.phases);
  EXPECT_LE(fast.phases, 8u);
}

TEST(MpcLogDiameter, ExpandStepsTrackLogDiameter) {
  auto path = mpc_log_diameter_cc(graph::make_path(1024), 5);
  auto star = mpc_log_diameter_cc(graph::make_star(1024), 5);
  EXPECT_GT(path.expand_steps, star.expand_steps);
}

TEST(MpcLogDiameter, MixedComponents) {
  auto el = graph::disjoint_union({graph::make_path(100),
                                   graph::make_complete(16),
                                   graph::make_gnm(200, 600, 2)});
  auto r = mpc_log_diameter_cc(el, 9);
  EXPECT_TRUE(matches_oracle(el, r.labels));
}

TEST(MpcLogDiameter, RoundLedgerPopulated) {
  auto r = mpc_log_diameter_cc(graph::make_gnm(256, 1024, 1), 1);
  EXPECT_GT(r.ledger.rounds, 0u);
  EXPECT_GT(r.ledger.primitive_calls, 0u);
  EXPECT_GT(r.ledger.peak_words, 0u);
}

}  // namespace
}  // namespace logcc::mpc
