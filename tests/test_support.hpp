// Shared helpers for the logcc test suites.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_algos.hpp"
#include "util/parallel.hpp"

namespace logcc::testing {

/// Fixture for the determinism contract (README "Determinism contract"):
/// captures the ambient thread count and restores it after the test, so a
/// test can sweep util::set_parallelism(1 / 2 / 8) and assert bit-identical
/// results. hardware_parallelism() reflects whatever was last set, so the
/// original value must be captured before the test changes it.
class ThreadInvariance : public ::testing::Test {
 protected:
  void SetUp() override { original_threads_ = util::hardware_parallelism(); }
  void TearDown() override { util::set_parallelism(original_threads_); }

 private:
  int original_threads_ = 1;
};

/// ThreadInvariance plus backend save/restore: tests that pin a specific
/// dispatch backend (pool/omp/serial) sweep freely and leave the process
/// default untouched for later suites.
class BackendInvariance : public ThreadInvariance {
 protected:
  void SetUp() override {
    ThreadInvariance::SetUp();
    original_backend_ = util::parallel_backend();
  }
  void TearDown() override {
    util::set_parallel_backend(original_backend_);
    ThreadInvariance::TearDown();
  }

 private:
  util::ParallelBackend original_backend_ = util::ParallelBackend::kPool;
};

/// Oracle labels (min id per component) for an edge list.
inline std::vector<graph::VertexId> oracle_labels(const graph::EdgeList& el) {
  return graph::bfs_components(graph::Graph::from_edges(el));
}

/// Asserts `labels` induces exactly the oracle partition.
inline ::testing::AssertionResult matches_oracle(
    const graph::EdgeList& el, const std::vector<graph::VertexId>& labels) {
  if (labels.size() != el.n)
    return ::testing::AssertionFailure()
           << "label vector has size " << labels.size() << ", expected "
           << el.n;
  auto oracle = oracle_labels(el);
  if (!graph::same_partition(oracle, labels))
    return ::testing::AssertionFailure()
           << "labels do not match the BFS oracle partition";
  return ::testing::AssertionSuccess();
}

/// A small-but-varied collection of graphs exercising every structural
/// regime (empty, single edge, loops, high diameter, dense, skewed,
/// multi-component).
inline std::vector<std::pair<std::string, graph::EdgeList>> small_zoo(
    std::uint64_t seed = 7) {
  using namespace graph;
  std::vector<std::pair<std::string, EdgeList>> zoo;
  EdgeList empty;
  empty.n = 5;
  zoo.emplace_back("empty5", empty);
  EdgeList single;
  single.n = 2;
  single.add(0, 1);
  zoo.emplace_back("single-edge", single);
  EdgeList loops;
  loops.n = 3;
  loops.add(0, 0);
  loops.add(1, 2);
  zoo.emplace_back("self-loops", loops);
  zoo.emplace_back("path64", make_path(64));
  zoo.emplace_back("cycle65", make_cycle(65));
  zoo.emplace_back("star40", make_star(40));
  zoo.emplace_back("grid8x9", make_grid(8, 9));
  zoo.emplace_back("tree127", make_binary_tree(127));
  zoo.emplace_back("complete16", make_complete(16));
  zoo.emplace_back("hypercube6", make_hypercube(6));
  zoo.emplace_back("gnm", make_gnm(128, 384, seed));
  zoo.emplace_back("rmat", make_rmat(7, 512, seed));
  zoo.emplace_back("pref", make_preferential(96, 3, seed));
  zoo.emplace_back("caterpillar", make_caterpillar(24, 3));
  zoo.emplace_back("lollipop", make_lollipop(12, 40));
  zoo.emplace_back("path-forest", make_path_forest(6, 17));
  return zoo;
}

}  // namespace logcc::testing
