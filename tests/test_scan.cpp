#include "util/scan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "core/cc_theorem1.hpp"
#include "core/vanilla.hpp"
#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace logcc::util {
namespace {

// Sizes straddling every interesting regime: empty, single, just below /
// at / just above the serial grain, and big enough for many blocks.
std::vector<std::size_t> probe_sizes() {
  return {0,
          1,
          2,
          kSerialGrain - 1,
          kSerialGrain,
          kSerialGrain + 1,
          4 * kSerialGrain + 3,
          64 * kSerialGrain + 17};
}

std::vector<std::uint64_t> ramp(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = mix64(7, i) % 1000;
  return v;
}

TEST(PrefixSum, MatchesSerialReferenceAcrossGrainBoundaries) {
  for (std::size_t n : probe_sizes()) {
    auto v = ramp(n);
    std::vector<std::uint64_t> expect(n);
    std::uint64_t run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expect[i] = run;
      run += v[i];
    }
    auto got = v;
    std::uint64_t total = parallel_prefix_sum(got);
    EXPECT_EQ(total, run) << "n=" << n;
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(PrefixSum, EmptyAndSingle) {
  std::vector<std::uint32_t> empty;
  EXPECT_EQ(parallel_prefix_sum(empty), 0u);
  std::vector<std::uint32_t> one{41};
  EXPECT_EQ(parallel_prefix_sum(one), 41u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Pack, StableAndCountsRemoved) {
  for (std::size_t n : probe_sizes()) {
    auto v = ramp(n);
    auto keep = [](std::uint64_t x) { return x % 3 != 0; };
    std::vector<std::uint64_t> expect;
    for (auto x : v)
      if (keep(x)) expect.push_back(x);
    auto got = v;
    std::size_t removed = parallel_pack(got, keep);
    EXPECT_EQ(removed, n - expect.size()) << "n=" << n;
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(Pack, AllKeptAndNoneKept) {
  auto v = ramp(8 * kSerialGrain);
  auto all = v;
  EXPECT_EQ(parallel_pack(all, [](std::uint64_t) { return true; }), 0u);
  EXPECT_EQ(all, v);
  auto none = v;
  EXPECT_EQ(parallel_pack(none, [](std::uint64_t) { return false; }),
            v.size());
  EXPECT_TRUE(none.empty());
}

TEST(Filter, MatchesPack) {
  for (std::size_t n : probe_sizes()) {
    auto v = ramp(n);
    auto keep = [](std::uint64_t x) { return (x & 1) == 0; };
    auto packed = v;
    parallel_pack(packed, keep);
    EXPECT_EQ(parallel_filter(v, keep), packed) << "n=" << n;
  }
}

TEST(Reduce, SumAndMaxAcrossGrainBoundaries) {
  for (std::size_t n : probe_sizes()) {
    auto v = ramp(n);
    std::uint64_t expect_sum = std::accumulate(v.begin(), v.end(), 0ull);
    std::uint64_t got_sum = parallel_reduce(
        std::size_t{0}, n, std::uint64_t{0},
        [&](std::size_t i) { return v[i]; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(got_sum, expect_sum) << "n=" << n;
    std::uint64_t expect_max = 0;
    for (auto x : v) expect_max = std::max(expect_max, x);
    std::uint64_t got_max = parallel_reduce(
        std::size_t{0}, n, std::uint64_t{0},
        [&](std::size_t i) { return v[i]; },
        [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
    EXPECT_EQ(got_max, expect_max) << "n=" << n;
  }
}

TEST(Reduce, SubrangeOffsets) {
  auto v = ramp(10 * kSerialGrain);
  const std::size_t lo = kSerialGrain / 2, hi = 9 * kSerialGrain + 5;
  std::uint64_t expect = std::accumulate(v.begin() + lo, v.begin() + hi, 0ull);
  std::uint64_t got = parallel_reduce(
      lo, hi, std::uint64_t{0}, [&](std::size_t i) { return v[i]; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(got, expect);
}

TEST(AtomicMin, KeepsMinimum) {
  std::uint64_t slot = 100;
  atomic_min(slot, std::uint64_t{200});
  EXPECT_EQ(slot, 100u);
  atomic_min(slot, std::uint64_t{42});
  EXPECT_EQ(slot, 42u);
}

TEST(AtomicMax, KeepsMaximum) {
  std::uint64_t slot = 100;
  atomic_max(slot, std::uint64_t{42});
  EXPECT_EQ(slot, 100u);
  atomic_max(slot, std::uint64_t{200});
  EXPECT_EQ(slot, 200u);
}

TEST(Emit, MatchesSerialMultiEmitAcrossGrainBoundaries) {
  for (std::size_t n : probe_sizes()) {
    auto v = ramp(n);
    // Index i contributes i % 3 copies of v[i] + its index.
    auto count = [&](std::size_t i) -> std::size_t { return i % 3; };
    std::vector<std::uint64_t> expect;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t c = 0; c < count(i); ++c) expect.push_back(v[i] + c);
    std::vector<std::uint64_t> got;
    parallel_emit(n, got, count, [&](std::size_t i, std::uint64_t* dst) {
      for (std::size_t c = 0; c < count(i); ++c) dst[c] = v[i] + c;
    });
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(Histogram, MatchesSerialCounts) {
  for (std::size_t n : probe_sizes()) {
    auto v = ramp(n);
    const std::size_t bins = 17;
    std::vector<std::uint64_t> expect(bins, 0);
    for (auto x : v) ++expect[x % bins];
    auto got = parallel_histogram(n, bins,
                                  [&](std::size_t i) { return v[i] % bins; });
    EXPECT_EQ(got, expect) << "n=" << n;
  }
}

TEST(BucketPartition, StableWithinBucketsAndTightOffsets) {
  for (std::size_t n : probe_sizes()) {
    auto v = ramp(n);
    const std::size_t buckets = 8;
    auto bucket = [](std::uint64_t x) { return x % 8; };
    std::vector<std::uint64_t> out;
    auto off = parallel_bucket_partition(v, out, buckets, bucket);
    ASSERT_EQ(off.size(), buckets + 1);
    EXPECT_EQ(off.front(), 0u);
    EXPECT_EQ(off.back(), n);
    // Concatenating the per-bucket serial filters reproduces the output.
    std::vector<std::uint64_t> expect;
    for (std::size_t k = 0; k < buckets; ++k)
      for (auto x : v)
        if (bucket(x) == k) expect.push_back(x);
    EXPECT_EQ(out, expect) << "n=" << n;
  }
}

TEST(GroupBy, SortedStableSegments) {
  for (std::size_t n : probe_sizes()) {
    // (key, payload) pairs; payload is the input index, so stability is
    // directly visible.
    const std::size_t num_keys = 1000;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = {mix64(3, i) % num_keys, i};
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    auto off = parallel_group_by(v, out, num_keys,
                                 [](const auto& p) { return p.first; });
    auto expect = v;
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    EXPECT_EQ(out, expect) << "n=" << n;
    ASSERT_EQ(off.size(), num_keys + 1);
    EXPECT_EQ(off.back(), n);
    for (std::size_t k = 0; k < num_keys; ++k) {
      EXPECT_LE(off[k], off[k + 1]);
      for (std::size_t i = off[k]; i < off[k + 1]; ++i)
        EXPECT_EQ(out[i].first, k);
    }
  }
}

TEST(GroupBy, LargeKeySpaceTwoLevelPath) {
  // num_keys far above the coarse bucket count exercises the two-level
  // partition + in-bucket counting sort.
  const std::size_t n = 16 * kSerialGrain;
  const std::size_t num_keys = 1 << 20;
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = mix64(11, i) % num_keys;
  std::vector<std::uint64_t> out;
  auto off = parallel_group_by(v, out, num_keys,
                               [](std::uint64_t x) { return x; });
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(out, sorted);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(off[out[i]], i);
    EXPECT_GT(off[out[i] + 1], i);
  }
}

TEST(BlockCount, PureFunctionOfSize) {
  EXPECT_EQ(scan_block_count(0), 1u);
  EXPECT_EQ(scan_block_count(kSerialGrain - 1), 1u);
  EXPECT_GE(scan_block_count(16 * kSerialGrain), 2u);
  // Monotone-ish sanity and the cap.
  EXPECT_LE(scan_block_count(std::size_t{1} << 40), 256u);
}

// ---- The determinism contract the algorithm layer is built on: component
// labels must be bit-identical for every thread count. (The EXPAND/MAXLINK/
// vote kernels have their own invariance suites next to their unit tests.)

using logcc::testing::ThreadInvariance;

TEST_F(ThreadInvariance, VanillaLabelsIdentical) {
  // Large enough that every parallel path (vote, mark, pack, bucketed
  // dedup, shortcut) actually engages.
  auto el = graph::make_gnm(30000, 90000, 11);
  set_parallelism(1);
  auto one = core::vanilla_cc(el, 5);
  for (int threads : {2, 8}) {
    set_parallelism(threads);
    auto many = core::vanilla_cc(el, 5);
    EXPECT_EQ(one.labels, many.labels) << "threads=" << threads;
    EXPECT_EQ(one.stats.phases, many.stats.phases) << "threads=" << threads;
  }
}

TEST_F(ThreadInvariance, Theorem1LabelsIdentical) {
  auto el = graph::make_gnm(20000, 60000, 23);
  auto params = core::Theorem1Params::paper(el.n, el.edges.size());
  set_parallelism(1);
  auto one = core::theorem1_cc(el, params);
  for (int threads : {2, 8}) {
    set_parallelism(threads);
    auto many = core::theorem1_cc(el, params);
    EXPECT_EQ(one.labels, many.labels) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace logcc::util
