#include "graph/graph_algos.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace logcc::graph {
namespace {

TEST(BfsComponents, MinIdLabels) {
  EdgeList el;
  el.n = 6;
  el.add(3, 4);
  el.add(4, 5);
  el.add(0, 1);
  auto labels = bfs_components(Graph::from_edges(el));
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 2u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[4], 3u);
  EXPECT_EQ(labels[5], 3u);
  EXPECT_EQ(count_components(labels), 3u);
}

TEST(SamePartition, DetectsEquivalentRelabelings) {
  std::vector<VertexId> a{0, 0, 2, 2};
  std::vector<VertexId> b{1, 1, 3, 3};  // same partition, different reps
  std::vector<VertexId> c{0, 0, 0, 2};  // different partition
  EXPECT_TRUE(same_partition(a, b));
  EXPECT_FALSE(same_partition(a, c));
  EXPECT_FALSE(same_partition(a, {0, 0}));  // size mismatch
}

TEST(CanonicalLabels, MapsToMinId) {
  std::vector<VertexId> raw{7, 7, 9, 9, 7};
  auto canon = canonical_labels(raw);
  EXPECT_EQ(canon, (std::vector<VertexId>{0, 0, 2, 2, 0}));
}

TEST(Eccentricity, PathEndpoints) {
  Graph g = Graph::from_edges(make_path(10));
  EXPECT_EQ(eccentricity(g, 0), 9u);
  EXPECT_EQ(eccentricity(g, 5), 5u);
}

TEST(ExactDiameter, KnownGraphs) {
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(make_path(17))), 16u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(make_star(9))), 2u);
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(make_complete(8))), 1u);
}

TEST(ExactDiameter, MaxOverComponents) {
  EdgeList el = disjoint_union({make_path(5), make_path(12)});
  EXPECT_EQ(exact_max_diameter(Graph::from_edges(el)), 11u);
}

TEST(PseudoDiameter, ExactOnTrees) {
  EXPECT_EQ(pseudo_diameter(Graph::from_edges(make_path(33))), 32u);
  EXPECT_EQ(pseudo_diameter(Graph::from_edges(make_binary_tree(63))), 10u);
  EXPECT_EQ(pseudo_diameter(Graph::from_edges(make_caterpillar(10, 2))), 11u);
}

TEST(PseudoDiameter, LowerBoundsExact) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Graph g = Graph::from_edges(make_gnm(80, 160, seed));
    EXPECT_LE(pseudo_diameter(g), exact_max_diameter(g));
  }
}

TEST(PseudoDiameter, CoversAllComponents) {
  EdgeList el = disjoint_union({make_star(20), make_path(30)});
  EXPECT_EQ(pseudo_diameter(Graph::from_edges(el)), 29u);
}

TEST(ValidateForest, AcceptsPathForest) {
  EdgeList el = make_path(10);
  std::vector<std::uint64_t> all;
  for (std::uint64_t i = 0; i < el.edges.size(); ++i) all.push_back(i);
  EXPECT_TRUE(validate_spanning_forest(el, all).ok);
}

TEST(ValidateForest, RejectsCycle) {
  EdgeList el = make_cycle(5);
  std::vector<std::uint64_t> all;
  for (std::uint64_t i = 0; i < el.edges.size(); ++i) all.push_back(i);
  auto check = validate_spanning_forest(el, all);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("cycle"), std::string::npos);
}

TEST(ValidateForest, RejectsIncomplete) {
  EdgeList el = make_path(6);
  // Missing one edge: not spanning.
  auto check = validate_spanning_forest(el, {0, 1, 2, 3});
  EXPECT_FALSE(check.ok);
}

TEST(ValidateForest, RejectsOutOfRangeIndex) {
  EdgeList el = make_path(4);
  auto check = validate_spanning_forest(el, {0, 1, 99});
  EXPECT_FALSE(check.ok);
}

TEST(ValidateForest, MultiComponent) {
  EdgeList el = disjoint_union({make_path(4), make_path(3)});
  // 3 + 2 edges, all of them form the spanning forest.
  std::vector<std::uint64_t> all;
  for (std::uint64_t i = 0; i < el.edges.size(); ++i) all.push_back(i);
  EXPECT_TRUE(validate_spanning_forest(el, all).ok);
}

TEST(ComponentSizes, SortedDescending) {
  EdgeList el = disjoint_union({make_path(5), make_path(2), make_path(9)});
  auto sizes = component_sizes(bfs_components(Graph::from_edges(el)));
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 9u);
  EXPECT_EQ(sizes[1], 5u);
  EXPECT_EQ(sizes[2], 2u);
}

}  // namespace
}  // namespace logcc::graph
