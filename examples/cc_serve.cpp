// cc_serve: the serving-layer face of the library — replay an edge stream
// in batches against a live serve::ConnectivityEngine, answer point queries
// between batches, and cross-check the incremental state against a full
// recompute on the configured cadence.
//
//   $ ./examples/cc_serve --generate=gnm2:20000 --batch-edges=500 \
//                         --verify-every=8 [--algorithm=faster-cc] \
//                         [--queries=256] [--forest] [--seed=1]
//
// The CI serving smoke runs exactly this: a short stream with a tight
// verify cadence, exiting nonzero if ANY rebuild epoch disagrees with the
// incrementally maintained ComponentIndex (the exit contract mirrors
// cc_bench: 0 = every check passed).
#include <cinttypes>
#include <cstdio>

#include "core/connectivity.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "serve/connectivity_engine.hpp"
#include "util/cli.hpp"
#include "util/hashing.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace logcc;

  util::Cli cli(argc, argv);
  const std::string generate = cli.get_string(
      "generate", "gnm2:20000", "family:n[:seed] edge stream to replay");
  const std::uint64_t batch_edges = static_cast<std::uint64_t>(
      cli.get_int("batch-edges", 500, "edges per batch"));
  const std::uint64_t verify_every = static_cast<std::uint64_t>(cli.get_int(
      "verify-every", 8, "rebuild/verify cadence in batches (0 = end only)"));
  const std::string algorithm_name =
      cli.get_string("algorithm", "faster-cc",
                     "batch algorithm for the rebuild/verify epochs");
  const std::uint64_t queries = static_cast<std::uint64_t>(cli.get_int(
      "queries", 256, "point queries sampled against the snapshot per batch"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "random seed"));
  const bool forest =
      cli.get_flag("forest", "attach the parent forest to snapshots");
  cli.finish();

  std::string family;
  std::uint64_t n = 0;
  std::uint64_t gseed = 1;
  if (!graph::parse_generator_spec(generate, family, n, gseed)) {
    std::fprintf(stderr, "cc_serve: bad --generate spec '%s'\n",
                 generate.c_str());
    return 2;
  }
  const graph::EdgeList el = graph::make_family(family, n, gseed);
  if (batch_edges == 0) {
    std::fprintf(stderr, "cc_serve: --batch-edges must be positive\n");
    return 2;
  }

  serve::EngineOptions opts;
  opts.verify_every = verify_every;
  opts.rebuild_algorithm = algorithm_from_string(algorithm_name);
  opts.seed = seed;
  opts.publish_forest = forest;
  serve::ConnectivityEngine engine(el.n, opts);

  std::printf("cc_serve: stream %s (n=%" PRIu64 " edges=%zu) in batches of %"
              PRIu64 ", verify every %" PRIu64 " batches via %s\n",
              generate.c_str(), el.n, el.edges.size(), batch_edges,
              verify_every, to_string(opts.rebuild_algorithm));

  util::Timer total;
  std::uint64_t verify_epochs = 0, mismatches = 0, query_total = 0;
  double apply_seconds = 0.0;
  std::span<const graph::Edge> all(el.edges);
  for (std::size_t off = 0; off < all.size(); off += batch_edges) {
    const auto batch =
        all.subspan(off, std::min<std::size_t>(batch_edges, all.size() - off));
    const auto res = engine.apply_batch(batch);
    apply_seconds += res.seconds;
    if (res.verify_ran) {
      ++verify_epochs;
      if (!res.verified) {
        ++mismatches;
        std::fprintf(stderr,
                     "cc_serve: MISMATCH at batch %" PRIu64
                     ": incremental index != full recompute\n",
                     res.batch);
      }
    }
    // Reader traffic between batches: point queries against the published
    // snapshot, sanity-checked against the snapshot's own labeling.
    const auto snap = engine.snapshot();
    for (std::uint64_t q = 0; q < queries && el.n > 0; ++q) {
      const auto u = static_cast<graph::VertexId>(
          util::mix64(seed, res.batch, 2 * q) % el.n);
      const auto v = static_cast<graph::VertexId>(
          util::mix64(seed, res.batch, 2 * q + 1) % el.n);
      const bool conn = engine.connected(u, v);
      if (conn != (snap->component_of(u) == snap->component_of(v)) &&
          engine.num_batches() == res.batch) {
        std::fprintf(stderr, "cc_serve: inconsistent query answer\n");
        return 1;
      }
      ++query_total;
    }
  }

  // Final rebuild epoch: the stream's last word on incremental integrity.
  ++verify_epochs;
  if (!engine.verify_and_rebuild()) {
    ++mismatches;
    std::fprintf(stderr,
                 "cc_serve: MISMATCH at final rebuild: incremental index != "
                 "full recompute\n");
  }

  const double elapsed = total.seconds();
  std::printf("applied %" PRIu64 " batches (%" PRIu64 " edges) in %.3fs "
              "(%.0f edges/s apply), %" PRIu64 " queries, epoch %" PRIu64 "\n",
              engine.num_batches(), engine.num_edges(), apply_seconds,
              apply_seconds > 0
                  ? static_cast<double>(engine.num_edges()) / apply_seconds
                  : 0.0,
              query_total, engine.epoch());
  std::printf("components: %" PRIu64 "   |component(v0)|: %" PRIu64
              "   verify epochs: %" PRIu64 "/%" PRIu64 " ok   total %.3fs\n",
              engine.component_count(),
              engine.num_vertices() > 0 ? engine.component_size(0) : 0,
              verify_epochs - mismatches, verify_epochs, elapsed);
  std::printf("serving smoke: %s\n", mismatches == 0 ? "PASS" : "FAIL");
  return mismatches == 0 ? 0 : 1;
}
