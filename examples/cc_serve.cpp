// cc_serve: the serving-layer face of the library — replay an edge stream
// in batches against a live serve::ConnectivityEngine, answer point queries
// between batches, and cross-check the incremental state against a full
// recompute on the configured cadence.
//
//   $ ./examples/cc_serve --generate=gnm2:20000 --batch-edges=500 \
//                         --verify-every=8 [--algorithm=faster-cc] \
//                         [--queries=256] [--forest] [--seed=1]
//
// Crash-safe serving (docs/ARCHITECTURE.md "Durability & fault tolerance"):
//
//   $ ./examples/cc_serve ... --durable-dir=/var/lib/logcc \
//         [--fsync=none|batch|every-n] [--checkpoint-every=32] \
//         [--labels-out=labels.txt] [--crash-after=K]
//
// With --durable-dir the engine is built via ConnectivityEngine::recover:
// a prior run's WAL + checkpoint are replayed first, then the stream
// resumes at the first batch the durable state does not cover (same
// --generate/--batch-edges contract as the crashed run). --crash-after=K
// arms the engine_after_wal_append failpoint with a crash action so the
// process SIGKILLs itself mid-batch K+1 — the CI crash-recovery smoke
// kills, re-runs to recover, and diffs --labels-out against an
// uninterrupted replay. SIGTERM/SIGINT trigger a clean shutdown: the WAL
// is fsynced and a final checkpoint written before exiting.
//
// Exit codes: 0 = every check passed (or clean signal shutdown),
// 1 = serve/verify mismatch, 2 = usage error, 3 = recovery found the
// durable state inconsistent (corruption), 4 = I/O failure.
#include <cinttypes>
#include <csignal>
#include <cstdio>

#include "core/connectivity.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "serve/connectivity_engine.hpp"
#include "util/cli.hpp"
#include "util/failpoint.hpp"
#include "util/hashing.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int exit_code_for(const logcc::util::Status& s) {
  return s.code() == logcc::util::StatusCode::kCorruption ? 3 : 4;
}

bool write_labels(const std::string& path,
                  const logcc::core::ComponentIndex& index) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (!fp) return false;
  bool ok = true;
  for (std::uint64_t v = 0; ok && v < index.num_vertices(); ++v)
    ok = std::fprintf(fp, "%" PRIu64 "\n",
                      static_cast<std::uint64_t>(index.component_of(
                          static_cast<logcc::graph::VertexId>(v)))) > 0;
  return std::fclose(fp) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logcc;

  util::Cli cli(argc, argv);
  const std::string generate = cli.get_string(
      "generate", "gnm2:20000", "family:n[:seed] edge stream to replay");
  const std::uint64_t batch_edges = static_cast<std::uint64_t>(
      cli.get_int("batch-edges", 500, "edges per batch"));
  const std::uint64_t verify_every = static_cast<std::uint64_t>(cli.get_int(
      "verify-every", 8, "rebuild/verify cadence in batches (0 = end only)"));
  const std::string algorithm_name =
      cli.get_string("algorithm", "faster-cc",
                     "batch algorithm for the rebuild/verify epochs");
  const std::uint64_t queries = static_cast<std::uint64_t>(cli.get_int(
      "queries", 256, "point queries sampled against the snapshot per batch"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "random seed"));
  const bool forest =
      cli.get_flag("forest", "attach the parent forest to snapshots");
  const std::string durable_dir = cli.get_string(
      "durable-dir", "", "WAL + checkpoint directory (empty = not durable)");
  const std::string fsync_name = cli.get_string(
      "fsync", "batch", "WAL fsync policy: none | batch | every-n");
  const std::uint64_t checkpoint_every = static_cast<std::uint64_t>(cli.get_int(
      "checkpoint-every", 32, "checkpoint cadence in batches (0 = end only)"));
  const std::uint64_t max_resident_mb = static_cast<std::uint64_t>(cli.get_int(
      "max-resident-mb", 0,
      "resident-memory budget in MiB (0 = unlimited; crossing it degrades)"));
  const std::string labels_out = cli.get_string(
      "labels-out", "", "write the final component labels here (one per line)");
  const std::int64_t crash_after = cli.get_int(
      "crash-after", -1,
      "SIGKILL mid-batch after this many durable appends (fault testing)");
  cli.finish();

  std::string family;
  std::uint64_t n = 0;
  std::uint64_t gseed = 1;
  if (!graph::parse_generator_spec(generate, family, n, gseed)) {
    std::fprintf(stderr, "cc_serve: bad --generate spec '%s'\n",
                 generate.c_str());
    return 2;
  }
  const graph::EdgeList el = graph::make_family(family, n, gseed);
  if (batch_edges == 0) {
    std::fprintf(stderr, "cc_serve: --batch-edges must be positive\n");
    return 2;
  }

  serve::EngineOptions opts;
  opts.verify_every = verify_every;
  opts.rebuild_algorithm = algorithm_from_string(algorithm_name);
  opts.seed = seed;
  opts.publish_forest = forest;
  opts.max_resident_bytes = max_resident_mb << 20;
  if (!wal_fsync_from_string(fsync_name, &opts.durability.wal.fsync)) {
    std::fprintf(stderr, "cc_serve: bad --fsync policy '%s'\n",
                 fsync_name.c_str());
    return 2;
  }
  opts.durability.checkpoint_every = checkpoint_every;

  // Crash-after arms the post-WAL-append crash site with a hit budget: the
  // (K+1)th durable append SIGKILLs the process with the record on disk
  // but the merge unpublished — the exact torn state recovery must mend.
  if (crash_after >= 0) {
    if (durable_dir.empty()) {
      std::fprintf(stderr, "cc_serve: --crash-after needs --durable-dir\n");
      return 2;
    }
    util::failpoint::arm("engine_after_wal_append",
                         util::failpoint::Action::kCrash,
                         static_cast<std::uint64_t>(crash_after));
  }

  std::unique_ptr<serve::ConnectivityEngine> owned;
  serve::ConnectivityEngine* engine = nullptr;
  serve::ConnectivityEngine::RecoveryInfo recovery;
  if (!durable_dir.empty()) {
    opts.durability.dir = durable_dir;
    const util::Status rs = serve::ConnectivityEngine::recover(
        durable_dir, el.n, opts, &owned, &recovery);
    if (!rs.is_ok()) {
      std::fprintf(stderr, "cc_serve: recovery failed: %s\n",
                   rs.to_string().c_str());
      return exit_code_for(rs);
    }
    engine = owned.get();
    if (engine->num_batches() > 0 || recovery.torn_bytes > 0)
      std::printf("recovered %" PRIu64 " batches from %s (checkpoint: %s, "
                  "replayed %" PRIu64 " records, torn tail %" PRIu64 " B)\n",
                  engine->num_batches(), durable_dir.c_str(),
                  recovery.used_checkpoint ? "yes" : "no",
                  recovery.replayed_records, recovery.torn_bytes);
  } else {
    owned = std::make_unique<serve::ConnectivityEngine>(el.n, opts);
    engine = owned.get();
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  std::printf("cc_serve: stream %s (n=%" PRIu64 " edges=%zu) in batches of %"
              PRIu64 ", verify every %" PRIu64 " batches via %s%s\n",
              generate.c_str(), el.n, el.edges.size(), batch_edges,
              verify_every, to_string(opts.rebuild_algorithm),
              durable_dir.empty() ? "" : " [durable]");

  util::Timer total;
  std::uint64_t verify_epochs = 0, mismatches = 0, query_total = 0;
  double apply_seconds = 0.0;
  bool interrupted = false;
  std::span<const graph::Edge> all(el.edges);
  // Resume where the durable state left off: the recovered engine already
  // holds num_batches() full batches of this same stream.
  for (std::size_t off = engine->num_batches() * batch_edges; off < all.size();
       off += batch_edges) {
    if (g_stop) {
      interrupted = true;
      break;
    }
    const auto batch =
        all.subspan(off, std::min<std::size_t>(batch_edges, all.size() - off));
    const auto res = engine->apply_batch(batch);
    if (!res.applied) {
      std::fprintf(stderr, "cc_serve: batch %" PRIu64 " not applied: %s\n",
                   res.batch, res.durability.to_string().c_str());
      return exit_code_for(res.durability);
    }
    if (!res.durability.is_ok())
      std::fprintf(stderr, "cc_serve: durability warning at batch %" PRIu64
                           ": %s\n",
                   res.batch, res.durability.to_string().c_str());
    apply_seconds += res.seconds;
    if (res.verify_ran) {
      ++verify_epochs;
      if (!res.verified) {
        ++mismatches;
        std::fprintf(stderr,
                     "cc_serve: MISMATCH at batch %" PRIu64
                     ": incremental index != full recompute\n",
                     res.batch);
      }
    }
    // Reader traffic between batches: point queries against the published
    // snapshot, sanity-checked against the snapshot's own labeling.
    const auto snap = engine->snapshot();
    for (std::uint64_t q = 0; q < queries && el.n > 0; ++q) {
      const auto u = static_cast<graph::VertexId>(
          util::mix64(seed, res.batch, 2 * q) % el.n);
      const auto v = static_cast<graph::VertexId>(
          util::mix64(seed, res.batch, 2 * q + 1) % el.n);
      serve::QueryInfo info;
      const bool conn = engine->connected(u, v, &info);
      if (conn != (snap->component_of(u) == snap->component_of(v)) &&
          engine->num_batches() == res.batch && !info.degraded) {
        std::fprintf(stderr, "cc_serve: inconsistent query answer\n");
        return 1;
      }
      ++query_total;
    }
  }

  // Final rebuild epoch: the stream's last word on incremental integrity.
  // Unavailable in degraded mode (the edge log was shed to stay under the
  // memory budget) and pointless after an interrupt (partial stream).
  if (!interrupted && !engine->degraded()) {
    ++verify_epochs;
    if (!engine->verify_and_rebuild()) {
      ++mismatches;
      std::fprintf(stderr,
                   "cc_serve: MISMATCH at final rebuild: incremental index != "
                   "full recompute\n");
    }
  }

  // Clean shutdown: everything applied is made durable — WAL fsynced, one
  // final checkpoint — so the next run recovers instantly.
  if (engine->durable()) {
    const util::Status fs = engine->flush_durable();
    if (!fs.is_ok()) {
      std::fprintf(stderr, "cc_serve: final flush failed: %s\n",
                   fs.to_string().c_str());
      return exit_code_for(fs);
    }
  }

  if (!labels_out.empty() && !write_labels(labels_out, *engine->snapshot())) {
    std::fprintf(stderr, "cc_serve: cannot write --labels-out=%s\n",
                 labels_out.c_str());
    return 4;
  }

  const double elapsed = total.seconds();
  std::printf("applied %" PRIu64 " batches (%" PRIu64 " edges) in %.3fs "
              "(%.0f edges/s apply), %" PRIu64 " queries, epoch %" PRIu64
              "%s%s\n",
              engine->num_batches(), engine->num_edges(), apply_seconds,
              apply_seconds > 0
                  ? static_cast<double>(engine->num_edges()) / apply_seconds
                  : 0.0,
              query_total, engine->epoch(),
              engine->degraded() ? ", degraded" : "",
              interrupted ? ", interrupted" : "");
  std::printf("components: %" PRIu64 "   |component(v0)|: %" PRIu64
              "   verify epochs: %" PRIu64 "/%" PRIu64 " ok   total %.3fs\n",
              engine->component_count(),
              engine->num_vertices() > 0 ? engine->component_size(0) : 0,
              verify_epochs - mismatches, verify_epochs, elapsed);
  std::printf("serving smoke: %s\n", mismatches == 0 ? "PASS" : "FAIL");
  return mismatches == 0 ? 0 : 1;
}
