// Road-network scenario: grid graphs have Θ(√n) diameter — the regime where
// the log-d dependence is visible and the additive vs multiplicative
// log log n separation between Theorem 3 and Theorem 1 matters.
//
//   $ ./examples/road_grid [--rows=64] [--cols=512]
//
// Sweeps grid aspect ratios at fixed n and prints rounds as the diameter
// grows — the Theorem-3 column should track log2(d), the Vanilla column
// should stay ~flat at Θ(log n).
#include <cmath>
#include <cstdio>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logcc;

  util::Cli cli(argc, argv);
  const std::uint64_t n = static_cast<std::uint64_t>(
      cli.get_int("n", 32768, "total vertices (split across aspect ratios)"));
  cli.finish();

  std::printf("grid aspect sweep at n=%llu\n",
              static_cast<unsigned long long>(n));
  util::TextTable table({"grid", "diameter", "log2(d)", "faster-cc rounds",
                         "vanilla phases", "faster-cc ms", "bfs ms"});
  for (std::uint64_t rows : {181ULL, 64ULL, 16ULL, 4ULL, 1ULL}) {
    std::uint64_t cols =
        std::max<std::uint64_t>(2, n / std::max<std::uint64_t>(rows, 1));
    graph::EdgeList g = rows == 1 ? graph::make_path(cols)
                                  : graph::make_grid(rows, cols);
    std::uint64_t d = rows == 1 ? cols - 1 : rows + cols - 2;

    const auto in = graph::ArcsInput::from_edges(g);
    auto fast = connected_components(in, Algorithm::kFasterCC);
    auto vanilla = connected_components(in, Algorithm::kVanilla);
    auto bfs = connected_components(in, Algorithm::kBFS);

    char name[32];
    std::snprintf(name, sizeof name, "%llux%llu",
                  static_cast<unsigned long long>(rows),
                  static_cast<unsigned long long>(cols));
    table.row()
        .add(name)
        .add_int(static_cast<long long>(d))
        .add_double(std::log2(static_cast<double>(d)), 1)
        .add_int(static_cast<long long>(fast.stats.rounds))
        .add_int(static_cast<long long>(vanilla.stats.phases))
        .add_double(fast.seconds * 1e3, 1)
        .add_double(bfs.seconds * 1e3, 1);
  }
  table.print();
  std::printf("\nreading: faster-cc rounds grow with log2(d); vanilla is "
              "pinned at ~log2(n)=%.0f regardless.\n",
              std::log2(static_cast<double>(n)));
  return 0;
}
