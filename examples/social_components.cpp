// Social-network scenario: skewed-degree, low-diameter graphs — the workload
// class the paper's introduction motivates ("graphs of internet scale ...
// many graphs in applications have components of small diameter").
//
//   $ ./examples/social_components [--scale=14] [--edges-per-vertex=8]
//
// Generates an RMAT graph, computes components with the Theorem-3 algorithm,
// prints the component-size distribution, and compares round counts against
// the O(log n) classics — on low-diameter inputs the log-d algorithm should
// need fewer progress rounds than Θ(log n).
#include <cstdio>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logcc;

  util::Cli cli(argc, argv);
  const std::uint32_t scale = static_cast<std::uint32_t>(
      cli.get_int("scale", 14, "log2 of vertex count"));
  const std::uint64_t epv = static_cast<std::uint64_t>(
      cli.get_int("edges-per-vertex", 8, "average degree"));
  cli.finish();

  graph::EdgeList g = graph::make_rmat(scale, epv << scale, 7);
  std::printf("RMAT scale=%u: n=%llu m=%llu\n", scale,
              static_cast<unsigned long long>(g.n),
              static_cast<unsigned long long>(g.edges.size()));

  const auto in = graph::ArcsInput::from_edges(g);
  auto r = connected_components(in, Algorithm::kFasterCC);
  auto sizes = graph::component_sizes(r.labels());
  std::printf("\ncomponents: %llu; largest:",
              static_cast<unsigned long long>(r.num_components()));
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sizes.size()); ++i)
    std::printf(" %llu", static_cast<unsigned long long>(sizes[i]));
  std::printf("\ngiant component covers %.1f%% of vertices\n",
              100.0 * static_cast<double>(sizes.empty() ? 0 : sizes[0]) /
                  static_cast<double>(g.n));

  graph::Graph csr = graph::Graph::from_edges(g);
  std::printf("pseudo-diameter: %llu (low, as social graphs are)\n",
              static_cast<unsigned long long>(graph::pseudo_diameter(csr)));

  std::printf("\nalgorithm comparison (low-diameter regime):\n");
  util::TextTable table({"algorithm", "progress rounds", "ms", "components"});
  for (Algorithm alg :
       {Algorithm::kFasterCC, Algorithm::kTheorem1, Algorithm::kVanilla,
        Algorithm::kShiloachVishkin, Algorithm::kUnionFind}) {
    auto res = connected_components(in, alg);
    table.row()
        .add(to_string(alg))
        .add_int(static_cast<long long>(res.stats.rounds + res.stats.phases))
        .add_double(res.seconds * 1e3, 1)
        .add_int(static_cast<long long>(res.num_components()));
  }
  table.print();
  return 0;
}
