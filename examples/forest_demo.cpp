// Spanning forest demo (Theorem 2): extract a spanning forest, validate it,
// and use it — here to answer "which edges are redundant for connectivity"
// (e.g. network-overlay pruning).
//
//   $ ./examples/forest_demo [--n=20000]
#include <cstdio>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace logcc;

  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 20000, "vertex count"));
  cli.finish();

  // A multi-component mixture: a mesh, a hub-and-spoke, and random noise.
  graph::EdgeList g = graph::disjoint_union({
      graph::make_grid(40, n / 120),
      graph::make_star(n / 3),
      graph::make_gnm(n / 3, n, 21),
  });
  std::printf("input: n=%llu m=%llu\n", static_cast<unsigned long long>(g.n),
              static_cast<unsigned long long>(g.edges.size()));

  ForestResult f = spanning_forest(g, SfAlgorithm::kTheorem2);
  auto check = graph::validate_spanning_forest(g, f.forest_edges);
  std::printf("forest edges: %llu  valid: %s  (%.1f ms, %llu phases)\n",
              static_cast<unsigned long long>(f.forest_edges.size()),
              check.ok ? "yes" : check.error.c_str(), f.seconds * 1e3,
              static_cast<unsigned long long>(f.stats.phases));

  std::uint64_t redundant = g.edges.size() - f.forest_edges.size();
  std::printf("redundant-for-connectivity edges: %llu (%.1f%% of the graph "
              "could be pruned)\n",
              static_cast<unsigned long long>(redundant),
              100.0 * static_cast<double>(redundant) /
                  static_cast<double>(g.edges.size()));

  // Cross-check: contracting the forest reproduces the components.
  graph::EdgeList forest_only;
  forest_only.n = g.n;
  for (std::uint64_t idx : f.forest_edges)
    forest_only.edges.push_back(g.edges[idx]);
  auto from_forest =
      graph::bfs_components(graph::Graph::from_edges(forest_only));
  auto from_graph = graph::bfs_components(graph::Graph::from_edges(g));
  std::printf("forest preserves connectivity: %s\n",
              graph::same_partition(from_forest, from_graph) ? "yes" : "NO");
  return 0;
}
