// cc_tool: command-line connected components over edge-list files — the
// "downstream user" face of the library.
//
//   $ ./examples/cc_tool --input=graph.txt [--algorithm=faster-cc]
//                        [--output=labels.txt] [--forest=forest.txt]
//                        [--seed=1] [--stats]
//
// Input format: optional "n m" header, then one "u v" pair per line
// ('#'/'%' comments allowed). Output: one label per vertex (min vertex id of
// its component). With --forest, also writes the spanning-forest edges.
// With --generate=family:n[:seed] a built-in workload is used instead of a
// file.
#include <cstdio>
#include <fstream>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"

namespace {

bool parse_generate(const std::string& spec, logcc::graph::EdgeList& out) {
  auto c1 = spec.find(':');
  if (c1 == std::string::npos) return false;
  std::string family = spec.substr(0, c1);
  std::string rest = spec.substr(c1 + 1);
  std::uint64_t seed = 1;
  auto c2 = rest.find(':');
  if (c2 != std::string::npos) {
    seed = std::strtoull(rest.substr(c2 + 1).c_str(), nullptr, 10);
    rest = rest.substr(0, c2);
  }
  std::uint64_t n = std::strtoull(rest.c_str(), nullptr, 10);
  if (n == 0) return false;
  out = logcc::graph::make_family(family, n, seed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logcc;

  util::Cli cli(argc, argv);
  std::string input = cli.get_string("input", "", "edge-list file to read");
  std::string generate = cli.get_string(
      "generate", "", "family:n[:seed] built-in workload instead of a file");
  std::string algorithm_name = cli.get_string(
      "algorithm", "faster-cc",
      "faster-cc|theorem1|vanilla|sv|as|label-prop|liu-tarjan|union-find|bfs");
  std::string output = cli.get_string("output", "", "write labels here");
  std::string forest_path =
      cli.get_string("forest", "", "also write spanning-forest edges here");
  std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "random seed"));
  bool show_stats = cli.get_flag("stats", "print RunStats metrics");
  cli.finish();

  graph::EdgeList el;
  if (!generate.empty()) {
    if (!parse_generate(generate, el)) {
      std::fprintf(stderr, "cc_tool: bad --generate spec '%s'\n",
                   generate.c_str());
      return 2;
    }
  } else if (!input.empty()) {
    if (!graph::read_edge_list_file(input, el)) {
      std::fprintf(stderr, "cc_tool: cannot read '%s'\n", input.c_str());
      return 2;
    }
  } else {
    std::fprintf(stderr, "cc_tool: need --input or --generate (see --help)\n");
    return 2;
  }

  Options opt;
  opt.seed = seed;
  Algorithm alg = algorithm_from_string(algorithm_name);
  auto r = connected_components(el, alg, opt);

  std::printf("n=%llu m=%llu components=%llu algorithm=%s time=%.1fms\n",
              static_cast<unsigned long long>(el.n),
              static_cast<unsigned long long>(el.edges.size()),
              static_cast<unsigned long long>(r.num_components),
              to_string(alg), r.seconds * 1e3);
  if (show_stats) {
    std::printf("rounds=%llu phases=%llu prepare=%llu expand-rounds=%llu "
                "max-level=%u peak-space=%llu finisher=%s\n",
                static_cast<unsigned long long>(r.stats.rounds),
                static_cast<unsigned long long>(r.stats.phases),
                static_cast<unsigned long long>(r.stats.prepare_phases),
                static_cast<unsigned long long>(r.stats.expand_rounds),
                r.stats.max_level,
                static_cast<unsigned long long>(r.stats.peak_space_words),
                r.stats.finisher_used ? "yes" : "no");
  }

  if (!output.empty()) {
    std::ofstream os(output);
    if (!os) {
      std::fprintf(stderr, "cc_tool: cannot write '%s'\n", output.c_str());
      return 2;
    }
    for (graph::VertexId label : r.labels) os << label << '\n';
  }

  if (!forest_path.empty()) {
    auto f = spanning_forest(el, SfAlgorithm::kTheorem2, opt);
    auto check = graph::validate_spanning_forest(el, f.forest_edges);
    if (!check.ok) {
      std::fprintf(stderr, "cc_tool: forest validation failed: %s\n",
                   check.error.c_str());
      return 1;
    }
    std::ofstream os(forest_path);
    if (!os) {
      std::fprintf(stderr, "cc_tool: cannot write '%s'\n",
                   forest_path.c_str());
      return 2;
    }
    for (std::uint64_t idx : f.forest_edges)
      os << el.edges[idx].u << ' ' << el.edges[idx].v << '\n';
    std::printf("forest: %llu edges -> %s\n",
                static_cast<unsigned long long>(f.forest_edges.size()),
                forest_path.c_str());
  }
  return 0;
}
