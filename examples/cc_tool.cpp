// cc_tool: command-line connected components over graph files — the
// "downstream user" face of the library.
//
//   $ ./examples/cc_tool --input=graph.txt [--algorithm=faster-cc]
//                        [--output=labels.txt] [--forest=forest.txt]
//                        [--seed=1] [--stats]
//   $ ./examples/cc_tool --input=graph.txt --convert=graph.bin
//   $ ./examples/cc_tool --generate=grid:1000000 --convert=grid.bin
//   $ ./examples/cc_tool --generate=rmat:4000000 --sketch
//
// --input accepts a text edge list (optional "n m" header, one "u v" pair
// per line, '#'/'%' comments) or a LOGCCSR1/LOGCCSR2 binary CSR file — the
// format is sniffed from the magic bytes, and binary files are mmap-loaded
// (see docs/FILE_FORMATS.md). With --generate=family:n[:seed] a built-in
// workload is used instead of a file. LOGCCSR2 datasets run on the wide
// (64-bit) execution path: faster-cc, vanilla, and union-find.
//
// --convert writes the input graph as a binary CSR file and exits; generator
// families stream to disk without materializing the edge list, so this is
// the way to build paper-scale (10^7+ edge) datasets for cc_bench. Add
// --wide to emit LOGCCSR2 (required once n or the edge count exceeds
// uint32 — the LOGCCSR1 writer refuses such streams with a pointer here).
//
// --sketch switches to the one-pass approximate tier (src/sketch/): the
// generator edge stream is consumed by sketch::StreamStats — O(n) label
// state plus a few KB of fixed-seed sketches, never the O(m) edge list —
// and the report gives estimated distinct edges, touched vertices,
// component count, and heavy-hitter components, each with its a-priori
// error bar, next to the exact values the label array still provides.
// Generator streams only (a file input would already be materialized).
//
// Output: one label per vertex (min vertex id of its component). With
// --forest, also writes the spanning-forest edges.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <unordered_set>

#include "core/connectivity.hpp"
#include "core/wide_cc.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "graph/io.hpp"
#include "sketch/stream_stats.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

/// Peak resident set in bytes (VmHWM), 0 where /proc is unavailable — the
/// measured side of the sketch tier's memory claim.
std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
  }
#endif
  return 0;
}

int run_sketch_mode(const std::string& generate, std::uint64_t seed,
                    int precision, int depth, int width, int heavy) {
  using namespace logcc;

  std::string family;
  std::uint64_t n = 0;
  std::uint64_t gseed = 1;
  if (!graph::parse_generator_spec(generate, family, n, gseed)) {
    std::fprintf(stderr, "cc_tool: bad --generate spec '%s'\n",
                 generate.c_str());
    return 2;
  }
  const graph::FamilyStream fs = graph::make_family_stream(family, n, gseed);
  if (!fs.streams)
    std::fprintf(stderr,
                 "cc_tool: note: family '%s' cannot stream in O(1) state; "
                 "it materializes internally (memory savings void)\n",
                 family.c_str());

  sketch::StreamStatsOptions opt;
  opt.hll_precision = precision;
  opt.cms_depth = static_cast<std::uint32_t>(depth);
  opt.cms_width = static_cast<std::uint32_t>(width);
  opt.heavy_hitters = static_cast<std::uint32_t>(heavy);
  opt.seed = seed;

  util::Timer timer;
  sketch::StreamStats stats(fs.num_vertices, opt);
  // The stream sink is uint64 end-to-end; the sketch tier is 32-bit, and
  // every sketchable family fits (make_family_stream caps enforce it).
  fs.enumerate([&](std::uint64_t u, std::uint64_t v) {
    stats.add_edge(static_cast<graph::VertexId>(u),
                   static_cast<graph::VertexId>(v));
  });
  const sketch::StreamSummary s = stats.finish();
  const double seconds = timer.seconds();

  const double sigma = s.hll_standard_error;
  const double count_err =
      s.exact_components > 0
          ? (s.approx_components - static_cast<double>(s.exact_components)) /
                static_cast<double>(s.exact_components)
          : 0.0;
  std::printf("sketch mode: %s  n=%llu edges=%llu (loops %llu) in %.2fs\n",
              generate.c_str(),
              static_cast<unsigned long long>(s.num_vertices),
              static_cast<unsigned long long>(s.edges),
              static_cast<unsigned long long>(s.self_loops), seconds);
  std::printf("distinct edges   ~ %.0f  (±%.1f%% expected)\n",
              s.distinct_edges, 100.0 * sigma);
  std::printf("touched vertices ~ %.0f  (±%.1f%% expected)\n",
              s.touched_vertices, 100.0 * sigma);
  std::printf("components: exact=%llu  estimate=%.0f  "
              "(observed %+.2f%%, ±%.1f%% expected)\n",
              static_cast<unsigned long long>(s.exact_components),
              s.approx_components, 100.0 * count_err, 100.0 * sigma);
  std::printf("heavy components (top %zu by endpoint mass):\n",
              s.heavy.size());
  for (const auto& h : s.heavy)
    std::printf("  root=%u hot-vertex=%u mass~%llu size=%llu size~%llu\n",
                h.root, h.hot_vertex,
                static_cast<unsigned long long>(h.endpoint_mass),
                static_cast<unsigned long long>(h.exact_size),
                static_cast<unsigned long long>(h.approx_size));

  // The memory story, measured: what this process actually touched vs the
  // edge storage the exact path would have to materialize for this stream.
  const std::uint64_t exact_bytes = s.edges * sizeof(graph::Edge);
  const std::uint64_t rss = peak_rss_bytes();
  std::printf("memory: sketches %llu B + labels %llu B",
              static_cast<unsigned long long>(s.sketch_bytes),
              static_cast<unsigned long long>(s.state_bytes));
  if (rss > 0)
    std::printf(" (peak RSS %.1f MiB)",
                static_cast<double>(rss) / (1024.0 * 1024.0));
  std::printf("; exact edge storage would be %llu B (%.1fx the label "
              "array)\n",
              static_cast<unsigned long long>(exact_bytes),
              s.state_bytes > 0 ? static_cast<double>(exact_bytes) /
                                      static_cast<double>(s.state_bytes)
                                : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logcc;

  util::Cli cli(argc, argv);
  std::string input = cli.get_string(
      "input", "", "graph file to read (text edge list or LOGCCSR1 binary)");
  std::string generate = cli.get_string(
      "generate", "", "family:n[:seed] built-in workload instead of a file");
  std::string convert = cli.get_string(
      "convert", "",
      "write the input as a binary CSR file here and exit (generator "
      "families stream to disk in O(n) memory)");
  std::string algorithm_name = cli.get_string(
      "algorithm", "faster-cc",
      "faster-cc|theorem1|vanilla|sv|as|label-prop|liu-tarjan|union-find|bfs");
  std::string output = cli.get_string("output", "", "write labels here");
  std::string forest_path =
      cli.get_string("forest", "", "also write spanning-forest edges here");
  std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "random seed"));
  bool show_stats = cli.get_flag("stats", "print RunStats metrics");
  bool wide = cli.get_flag(
      "wide",
      "--convert writes LOGCCSR2 (64-bit ids/offsets) instead of LOGCCSR1");
  bool sketch_mode = cli.get_flag(
      "sketch",
      "one-pass approximate tier over a generator stream (needs --generate)");
  int sketch_precision = static_cast<int>(cli.get_int(
      "sketch-precision", 12, "HyperLogLog precision p (m=2^p registers)"));
  int sketch_depth = static_cast<int>(
      cli.get_int("sketch-depth", 4, "count-min rows (delta = e^-depth)"));
  int sketch_width = static_cast<int>(cli.get_int(
      "sketch-width", 1 << 14, "count-min columns (epsilon = e/width)"));
  int sketch_heavy = static_cast<int>(
      cli.get_int("sketch-heavy", 8, "heavy components to report"));
  cli.finish();

  if (input.empty() && generate.empty()) {
    std::fprintf(stderr, "cc_tool: need --input or --generate (see --help)\n");
    return 2;
  }

  if (sketch_mode) {
    if (generate.empty()) {
      std::fprintf(stderr,
                   "cc_tool: --sketch consumes a generator stream; give "
                   "--generate=family:n[:seed]\n");
      return 2;
    }
    return run_sketch_mode(generate, seed, sketch_precision, sketch_depth,
                           sketch_width, sketch_heavy);
  }

  if (!convert.empty()) {
    std::string error;
    util::Timer timer;
    bool ok;
    if (!generate.empty()) {
      // Parse family:n[:seed] and stream straight to disk. The generator
      // seed defaults to 1 when the spec omits it — the same rule as the
      // run path and cc_bench, so convert-then-run and run-directly always
      // see the same graph (--seed only seeds the algorithm).
      std::string family;
      std::uint64_t n = 0;
      std::uint64_t gseed = 1;
      if (!graph::parse_generator_spec(generate, family, n, gseed)) {
        std::fprintf(stderr, "cc_tool: bad --generate spec '%s'\n",
                     generate.c_str());
        return 2;
      }
      ok = graph::stream_family_to_binary(
          family, n, gseed, convert, &error,
          wide ? graph::BinaryCsrFormat::kWide
               : graph::BinaryCsrFormat::kNarrow);
    } else if (graph::sniff_binary_csr(input)) {
      std::fprintf(stderr, "cc_tool: '%s' is already binary\n", input.c_str());
      return 2;
    } else if (wide) {
      // Text ids always fit LOGCCSR1, but the wide container is still a
      // valid target (e.g. to exercise downstream LOGCCSR2 consumers).
      graph::EdgeList el;
      if (!graph::read_edge_list_file(input, el)) {
        std::fprintf(stderr, "cc_tool: cannot parse '%s'\n", input.c_str());
        return 2;
      }
      ok = graph::write_binary_csr_streaming(
          convert, el.n,
          [&](const graph::EdgeSink& sink) {
            for (const graph::Edge& e : el.edges) sink(e.u, e.v);
          },
          &error, graph::BinaryCsrFormat::kWide);
    } else {
      ok = graph::convert_text_to_binary(input, convert, &error);
    }
    if (!ok) {
      std::fprintf(stderr, "cc_tool: convert failed: %s\n", error.c_str());
      return 2;
    }
    // Re-open and deep-validate what was written before reporting success.
    graph::BinaryGraph bg;
    if (!bg.open(convert, &error) ||
        !(bg.wide() ? graph::validate_csr(bg.view64(), &error)
                    : graph::validate_csr(bg.view(), &error))) {
      std::fprintf(stderr, "cc_tool: converted file fails validation: %s\n",
                   error.c_str());
      return 1;
    }
    const std::uint64_t out_n =
        bg.wide() ? bg.view64().num_vertices() : bg.view().num_vertices();
    const std::uint64_t out_edges =
        bg.wide() ? bg.view64().num_edges() : bg.view().num_edges();
    const std::uint64_t out_arcs =
        bg.wide() ? bg.view64().num_arcs() : bg.view().num_arcs();
    std::printf("wrote %s: %s n=%llu edges=%llu arcs=%llu (%zu bytes, %s) "
                "in %.2fs\n",
                convert.c_str(), bg.wide() ? "LOGCCSR2" : "LOGCCSR1",
                static_cast<unsigned long long>(out_n),
                static_cast<unsigned long long>(out_edges),
                static_cast<unsigned long long>(out_arcs),
                bg.file_bytes(),
                bg.zero_copy() ? "validated via mmap" : "validated via copy",
                timer.seconds());
    return 0;
  }

  // Zero-copy load: binary inputs stay in their mmap'd CSR form and the
  // algorithms ingest them directly (no EdgeList materialization). The
  // handle owns the mmap and must outlive every use of `arcs`.
  graph::DatasetHandle handle;
  std::string error;
  const std::string spec = !generate.empty() ? "gen:" + generate : input;
  if (!graph::load_dataset_zero_copy(spec, handle, &error)) {
    std::fprintf(stderr, "cc_tool: %s\n", error.c_str());
    return 2;
  }
  const graph::DatasetInfo& info = handle.info();

  if (handle.wide()) {
    // LOGCCSR2 datasets run on the 64-bit execution path. The wide entry
    // points cover the three retargeted algorithms; everything else needs
    // the narrow path (and a narrow dataset).
    const graph::ArcsInput64& warcs = handle.input64();
    if (!forest_path.empty()) {
      std::fprintf(stderr,
                   "cc_tool: --forest is not available on the wide path\n");
      return 2;
    }
    util::Timer timer;
    core::WideCcResult wr;
    if (algorithm_name == "faster-cc") {
      core::WideFasterOptions wopt;
      wopt.seed = seed;
      wr = core::wide_faster_cc(warcs, wopt);
    } else if (algorithm_name == "vanilla") {
      wr = core::wide_vanilla_cc(warcs, seed);
    } else if (algorithm_name == "union-find") {
      wr = core::wide_union_find_cc(warcs);
    } else {
      std::fprintf(stderr,
                   "cc_tool: algorithm '%s' is not available on the wide "
                   "(LOGCCSR2) path; use faster-cc, vanilla, or union-find\n",
                   algorithm_name.c_str());
      return 2;
    }
    const double seconds = timer.seconds();
    // Same published form as the narrow path's ComponentIndex.
    core::wide_canonicalize_labels(wr.labels);
    std::unordered_set<graph::VertexId64> roots(wr.labels.begin(),
                                                wr.labels.end());
    const std::uint64_t components = roots.size();
    std::printf("n=%llu m=%llu components=%llu algorithm=%s time=%.1fms "
                "(loaded via %s in %.1fms, csr-native, wide)\n",
                static_cast<unsigned long long>(warcs.num_vertices()),
                static_cast<unsigned long long>(warcs.num_edges()),
                static_cast<unsigned long long>(components),
                algorithm_name.c_str(), seconds * 1e3, info.source.c_str(),
                info.load_seconds * 1e3);
    if (show_stats) {
      std::printf("phases=%llu pram-steps=%llu\n",
                  static_cast<unsigned long long>(wr.stats.phases),
                  static_cast<unsigned long long>(wr.stats.pram_steps));
    }
    if (!output.empty()) {
      std::ofstream os(output);
      if (!os) {
        std::fprintf(stderr, "cc_tool: cannot write '%s'\n", output.c_str());
        return 2;
      }
      for (graph::VertexId64 label : wr.labels) os << label << '\n';
    }
    return 0;
  }

  const graph::ArcsInput& arcs = handle.input();

  Options opt;
  opt.seed = seed;
  Algorithm alg = algorithm_from_string(algorithm_name);
  auto r = connected_components(arcs, alg, opt);

  std::printf("n=%llu m=%llu components=%llu algorithm=%s time=%.1fms "
              "(loaded via %s in %.1fms%s)\n",
              static_cast<unsigned long long>(arcs.num_vertices()),
              static_cast<unsigned long long>(arcs.num_edges()),
              static_cast<unsigned long long>(r.num_components()),
              to_string(alg), r.seconds * 1e3, info.source.c_str(),
              info.load_seconds * 1e3,
              arcs.csr_backed() ? ", csr-native" : "");
  if (show_stats) {
    std::printf("rounds=%llu phases=%llu prepare=%llu expand-rounds=%llu "
                "max-level=%u peak-space=%llu finisher=%s\n",
                static_cast<unsigned long long>(r.stats.rounds),
                static_cast<unsigned long long>(r.stats.phases),
                static_cast<unsigned long long>(r.stats.prepare_phases),
                static_cast<unsigned long long>(r.stats.expand_rounds),
                r.stats.max_level,
                static_cast<unsigned long long>(r.stats.peak_space_words),
                r.stats.finisher_used ? "yes" : "no");
  }

  if (!output.empty()) {
    std::ofstream os(output);
    if (!os) {
      std::fprintf(stderr, "cc_tool: cannot write '%s'\n", output.c_str());
      return 2;
    }
    for (graph::VertexId label : r.labels()) os << label << '\n';
  }

  if (!forest_path.empty()) {
    auto f = spanning_forest(arcs, SfAlgorithm::kTheorem2, opt);
    // Forest output needs indexed edge endpoints; materialize the canonical
    // edge list just for this step (the CC run above stayed zero-copy).
    const graph::EdgeList& el = handle.edges();
    auto check = graph::validate_spanning_forest(el, f.forest_edges);
    if (!check.ok) {
      std::fprintf(stderr, "cc_tool: forest validation failed: %s\n",
                   check.error.c_str());
      return 1;
    }
    std::ofstream os(forest_path);
    if (!os) {
      std::fprintf(stderr, "cc_tool: cannot write '%s'\n",
                   forest_path.c_str());
      return 2;
    }
    for (std::uint64_t idx : f.forest_edges)
      os << el.edges[idx].u << ' ' << el.edges[idx].v << '\n';
    std::printf("forest: %llu edges -> %s\n",
                static_cast<unsigned long long>(f.forest_edges.size()),
                forest_path.c_str());
  }
  return 0;
}
