// cc_tool: command-line connected components over graph files — the
// "downstream user" face of the library.
//
//   $ ./examples/cc_tool --input=graph.txt [--algorithm=faster-cc]
//                        [--output=labels.txt] [--forest=forest.txt]
//                        [--seed=1] [--stats]
//   $ ./examples/cc_tool --input=graph.txt --convert=graph.bin
//   $ ./examples/cc_tool --generate=grid:1000000 --convert=grid.bin
//
// --input accepts a text edge list (optional "n m" header, one "u v" pair
// per line, '#'/'%' comments) or a LOGCCSR1 binary CSR file — the format is
// sniffed from the magic bytes, and binary files are mmap-loaded (see
// docs/FILE_FORMATS.md). With --generate=family:n[:seed] a built-in
// workload is used instead of a file.
//
// --convert writes the input graph as a binary CSR file and exits; generator
// families stream to disk without materializing the edge list, so this is
// the way to build paper-scale (10^7+ edge) datasets for cc_bench.
//
// Output: one label per vertex (min vertex id of its component). With
// --forest, also writes the spanning-forest edges.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/connectivity.hpp"
#include "graph/binary_io.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace logcc;

  util::Cli cli(argc, argv);
  std::string input = cli.get_string(
      "input", "", "graph file to read (text edge list or LOGCCSR1 binary)");
  std::string generate = cli.get_string(
      "generate", "", "family:n[:seed] built-in workload instead of a file");
  std::string convert = cli.get_string(
      "convert", "",
      "write the input as a binary CSR file here and exit (generator "
      "families stream to disk in O(n) memory)");
  std::string algorithm_name = cli.get_string(
      "algorithm", "faster-cc",
      "faster-cc|theorem1|vanilla|sv|as|label-prop|liu-tarjan|union-find|bfs");
  std::string output = cli.get_string("output", "", "write labels here");
  std::string forest_path =
      cli.get_string("forest", "", "also write spanning-forest edges here");
  std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "random seed"));
  bool show_stats = cli.get_flag("stats", "print RunStats metrics");
  cli.finish();

  if (input.empty() && generate.empty()) {
    std::fprintf(stderr, "cc_tool: need --input or --generate (see --help)\n");
    return 2;
  }

  if (!convert.empty()) {
    std::string error;
    util::Timer timer;
    bool ok;
    if (!generate.empty()) {
      // Parse family:n[:seed] and stream straight to disk. The generator
      // seed defaults to 1 when the spec omits it — the same rule as the
      // run path and cc_bench, so convert-then-run and run-directly always
      // see the same graph (--seed only seeds the algorithm).
      std::string family;
      std::uint64_t n = 0;
      std::uint64_t gseed = 1;
      if (!graph::parse_generator_spec(generate, family, n, gseed)) {
        std::fprintf(stderr, "cc_tool: bad --generate spec '%s'\n",
                     generate.c_str());
        return 2;
      }
      ok = graph::stream_family_to_binary(family, n, gseed, convert, &error);
    } else if (graph::sniff_binary_csr(input)) {
      std::fprintf(stderr, "cc_tool: '%s' is already binary\n", input.c_str());
      return 2;
    } else {
      ok = graph::convert_text_to_binary(input, convert, &error);
    }
    if (!ok) {
      std::fprintf(stderr, "cc_tool: convert failed: %s\n", error.c_str());
      return 2;
    }
    // Re-open and deep-validate what was written before reporting success.
    graph::BinaryGraph bg;
    if (!bg.open(convert, &error) || !graph::validate_csr(bg.view(), &error)) {
      std::fprintf(stderr, "cc_tool: converted file fails validation: %s\n",
                   error.c_str());
      return 1;
    }
    std::printf("wrote %s: n=%llu edges=%llu arcs=%llu (%zu bytes, %s) "
                "in %.2fs\n",
                convert.c_str(),
                static_cast<unsigned long long>(bg.view().num_vertices()),
                static_cast<unsigned long long>(bg.view().num_edges()),
                static_cast<unsigned long long>(bg.view().num_arcs()),
                bg.file_bytes(),
                bg.zero_copy() ? "validated via mmap" : "validated via copy",
                timer.seconds());
    return 0;
  }

  // Zero-copy load: binary inputs stay in their mmap'd CSR form and the
  // algorithms ingest them directly (no EdgeList materialization). The
  // handle owns the mmap and must outlive every use of `arcs`.
  graph::DatasetHandle handle;
  std::string error;
  const std::string spec = !generate.empty() ? "gen:" + generate : input;
  if (!graph::load_dataset_zero_copy(spec, handle, &error)) {
    std::fprintf(stderr, "cc_tool: %s\n", error.c_str());
    return 2;
  }
  const graph::ArcsInput& arcs = handle.input();
  const graph::DatasetInfo& info = handle.info();

  Options opt;
  opt.seed = seed;
  Algorithm alg = algorithm_from_string(algorithm_name);
  auto r = connected_components(arcs, alg, opt);

  std::printf("n=%llu m=%llu components=%llu algorithm=%s time=%.1fms "
              "(loaded via %s in %.1fms%s)\n",
              static_cast<unsigned long long>(arcs.num_vertices()),
              static_cast<unsigned long long>(arcs.num_edges()),
              static_cast<unsigned long long>(r.num_components()),
              to_string(alg), r.seconds * 1e3, info.source.c_str(),
              info.load_seconds * 1e3,
              arcs.csr_backed() ? ", csr-native" : "");
  if (show_stats) {
    std::printf("rounds=%llu phases=%llu prepare=%llu expand-rounds=%llu "
                "max-level=%u peak-space=%llu finisher=%s\n",
                static_cast<unsigned long long>(r.stats.rounds),
                static_cast<unsigned long long>(r.stats.phases),
                static_cast<unsigned long long>(r.stats.prepare_phases),
                static_cast<unsigned long long>(r.stats.expand_rounds),
                r.stats.max_level,
                static_cast<unsigned long long>(r.stats.peak_space_words),
                r.stats.finisher_used ? "yes" : "no");
  }

  if (!output.empty()) {
    std::ofstream os(output);
    if (!os) {
      std::fprintf(stderr, "cc_tool: cannot write '%s'\n", output.c_str());
      return 2;
    }
    for (graph::VertexId label : r.labels()) os << label << '\n';
  }

  if (!forest_path.empty()) {
    auto f = spanning_forest(arcs, SfAlgorithm::kTheorem2, opt);
    // Forest output needs indexed edge endpoints; materialize the canonical
    // edge list just for this step (the CC run above stayed zero-copy).
    const graph::EdgeList& el = handle.edges();
    auto check = graph::validate_spanning_forest(el, f.forest_edges);
    if (!check.ok) {
      std::fprintf(stderr, "cc_tool: forest validation failed: %s\n",
                   check.error.c_str());
      return 1;
    }
    std::ofstream os(forest_path);
    if (!os) {
      std::fprintf(stderr, "cc_tool: cannot write '%s'\n",
                   forest_path.c_str());
      return 2;
    }
    for (std::uint64_t idx : f.forest_edges)
      os << el.edges[idx].u << ' ' << el.edges[idx].v << '\n';
    std::printf("forest: %llu edges -> %s\n",
                static_cast<unsigned long long>(f.forest_edges.size()),
                forest_path.c_str());
  }
  return 0;
}
