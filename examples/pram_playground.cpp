// PRAM playground: watch a classical algorithm execute on the step
// simulator, under every write-resolution policy, with full cost ledgers —
// the model the paper's theorems live in, made tangible.
//
//   $ ./examples/pram_playground [--n=512]
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"
#include "pram/primitives.hpp"
#include "pram/sv_on_pram.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logcc;
  using pram::WritePolicy;

  util::Cli cli(argc, argv);
  const std::uint64_t n =
      static_cast<std::uint64_t>(cli.get_int("n", 512, "vertex count"));
  cli.finish();

  graph::EdgeList g = graph::make_gnm(n, 3 * n, 5);

  std::printf("Shiloach–Vishkin on the CRCW step simulator, n=%llu m=%llu\n\n",
              static_cast<unsigned long long>(g.n),
              static_cast<unsigned long long>(g.edges.size()));
  util::TextTable table({"write policy", "iterations", "PRAM steps", "work",
                         "buffered writes", "write conflicts", "components"});
  for (WritePolicy policy :
       {WritePolicy::kArbitrary, WritePolicy::kPriority,
        WritePolicy::kCombineMin}) {
    auto r = pram::shiloach_vishkin_on_pram(g, policy, 1);
    table.row()
        .add(pram::to_string(policy))
        .add_int(static_cast<long long>(r.iterations))
        .add_int(static_cast<long long>(r.ledger.steps))
        .add_int(static_cast<long long>(r.ledger.work))
        .add_int(static_cast<long long>(r.ledger.writes))
        .add_int(static_cast<long long>(r.ledger.conflicts))
        .add_int(static_cast<long long>(graph::count_components(r.labels)));
  }
  table.print();

  // The primitive the paper *avoids*: prefix sums cost Θ(log n) steps on a
  // PRAM (O(1) on an MPC) — the gap the hashing-based design closes.
  pram::Machine m(n, WritePolicy::kArbitrary, 1);
  for (std::uint64_t v = 0; v < n; ++v) m.poke(v, 1);
  pram::prefix_sum(m, 0, n);
  std::printf("\nprefix-sum of %llu ones: %llu PRAM steps (Theta(log n)) — "
              "the paper's algorithms never pay this.\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m.ledger().steps));

  // Approximate compaction — the primitive the paper *does* use.
  std::vector<bool> flags(n, false);
  for (std::uint64_t v = 0; v < n; v += 3) flags[v] = true;
  pram::Machine m2(n, WritePolicy::kArbitrary, 2);
  auto slots = pram::approximate_compaction(m2, flags, 3);
  std::printf("approximate compaction of %llu items into 2k slots: %s in "
              "%llu steps.\n",
              static_cast<unsigned long long>((n + 2) / 3),
              slots ? "succeeded" : "FAILED",
              static_cast<unsigned long long>(m2.ledger().steps));
  return 0;
}
