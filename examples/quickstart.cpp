// Quickstart: the 30-second tour of the logcc public API.
//
//   $ ./examples/quickstart
//
// Builds a random graph, runs the paper's Theorem-3 algorithm, checks the
// answer against sequential BFS, and prints the cost metrics the paper's
// theorems bound.
#include <cstdio>

#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algos.hpp"

int main() {
  using namespace logcc;

  // 1. A graph: any EdgeList works — generators, file I/O, or build your own.
  graph::EdgeList g = graph::make_gnm(/*n=*/100'000, /*m=*/400'000,
                                      /*seed=*/42);

  // 2. Connected components with the O(log d + log log_{m/n} n) algorithm.
  // ArcsInput is the zero-copy front door (CSR datasets plug in the same
  // way); the result carries a ComponentIndex snapshot.
  ComponentsResult r =
      connected_components(graph::ArcsInput::from_edges(g));  // kFasterCC

  // 3. labels()[v] == labels()[w] iff v and w are connected; the index also
  // answers point queries directly.
  std::printf("n=%llu m=%llu components=%llu largest-component=%llu\n",
              static_cast<unsigned long long>(g.n),
              static_cast<unsigned long long>(g.edges.size()),
              static_cast<unsigned long long>(r.num_components()),
              static_cast<unsigned long long>(r.index.component_size(
                  r.index.component_of(0))));

  // 4. The metrics the paper's theorems are about.
  std::printf("EXPAND-MAXLINK rounds: %llu  (Thm 3: O(log d + log log n))\n",
              static_cast<unsigned long long>(r.stats.rounds));
  std::printf("postprocess phases:    %llu\n",
              static_cast<unsigned long long>(r.stats.phases));
  std::printf("peak space (words):    %llu  (Thm 3: O(m))\n",
              static_cast<unsigned long long>(r.stats.peak_space_words));
  std::printf("max level reached:     %u   (Lemma 3.19: O(log log n))\n",
              r.stats.max_level);
  std::printf("wall clock:            %.1f ms\n", r.seconds * 1e3);

  // 5. Sanity: agree with sequential BFS.
  auto oracle = graph::bfs_components(graph::Graph::from_edges(g));
  std::printf("matches BFS oracle:    %s\n",
              graph::same_partition(oracle, r.labels()) ? "yes" : "NO");

  // 6. A spanning forest of the same graph (Theorem 2).
  ForestResult f = spanning_forest(graph::ArcsInput::from_edges(g));
  std::printf("spanning forest edges: %llu (= n - #components: %s)\n",
              static_cast<unsigned long long>(f.forest_edges.size()),
              f.forest_edges.size() == g.n - r.num_components() ? "yes" : "NO");
  return 0;
}
