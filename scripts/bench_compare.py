#!/usr/bin/env python3
"""Compare a cc_bench bench.json against the committed baseline trajectory.

Regression gate for CI: for every (algorithm, threads) cell present in both
documents, take the minimum algorithm seconds across reps (min-of-N is the
standard low-noise estimator for a runner that can only get slower, never
faster, by interference) and fail when the new minimum exceeds the baseline
minimum by more than --threshold (default 25%).

Robustness choices, deliberate:
  - min across reps, not mean: tolerant of one noisy rep per cell (run
    cc_bench with --reps=3 or more so the min is meaningful);
  - cells below --min-seconds (default 5 ms) are reported but never fail:
    at that scale the gate would measure the runner, not the code;
  - latency cells — algorithm names containing "p50", "p99", or "latency"
    (bench_serving's serve-query-p50/p99) — use --latency-min-seconds
    (default 50 us) as their noise floor instead: single-query latencies
    sit far below any throughput cell, so the 5 ms floor would blind the
    gate to them entirely while scheduler jitter makes sub-floor deltas
    meaningless;
  - cells present on only one side warn instead of failing, so adding an
    algorithm or thread count to the sweep never breaks the gate;
  - --update rewrites the baseline from the new document (commit the result
    to move the trajectory).

Exit status:
  0 = no regression,
  1 = regression,
  2 = usage/parse error,
  3 = no regression AND at least one cell improved by more than the
      threshold — success with a notice. CI must treat 3 as success; it
      signals the committed baseline is stale and should be refreshed with
      --update so later regressions are measured against the faster code.

Usage:
  bench_compare.py NEW_JSON BASELINE_JSON [--threshold 0.25]
                   [--min-seconds 0.005] [--latency-min-seconds 0.00005]
                   [--update]
"""

import argparse
import json
import re
import shutil
import sys

LATENCY_CELL = re.compile(r"p50|p99|latency")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("schema") != "logcc-bench-v1":
        sys.exit(f"bench_compare: {path}: unexpected schema "
                 f"{doc.get('schema')!r} (want logcc-bench-v1)")
    return doc


def min_seconds_by_cell(doc):
    """{(algorithm, threads): min seconds across reps}."""
    cells = {}
    for run in doc.get("runs", []):
        key = (run["algorithm"], run["threads"])
        s = float(run["seconds"])
        if key not in cells or s < cells[key]:
            cells[key] = s
    return cells


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("new_json")
    ap.add_argument("baseline_json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fail when new_min > base_min * (1 + threshold)")
    ap.add_argument("--min-seconds", type=float, default=0.005,
                    help="cells faster than this never fail (noise floor)")
    ap.add_argument("--latency-min-seconds", type=float, default=0.00005,
                    help="noise floor for latency cells (algorithm matches "
                         "p50/p99/latency) instead of --min-seconds")
    ap.add_argument("--update", action="store_true",
                    help="copy NEW_JSON over BASELINE_JSON instead of comparing")
    args = ap.parse_args()

    if args.update:
        load(args.new_json)  # validate before overwriting the trajectory
        shutil.copyfile(args.new_json, args.baseline_json)
        print(f"bench_compare: baseline updated from {args.new_json}")
        return 0

    new_doc = load(args.new_json)
    base_doc = load(args.baseline_json)
    new_cells = min_seconds_by_cell(new_doc)
    base_cells = min_seconds_by_cell(base_doc)

    regressions = []
    improvements = []
    rows = []
    for key in sorted(new_cells):
        alg, threads = key
        new_min = new_cells[key]
        if key not in base_cells:
            rows.append((alg, threads, None, new_min, "new cell (no baseline)"))
            continue
        base_min = base_cells[key]
        ratio = new_min / base_min if base_min > 0 else float("inf")
        floor = (args.latency_min_seconds if LATENCY_CELL.search(alg)
                 else args.min_seconds)
        verdict = "ok"
        if new_min > base_min * (1.0 + args.threshold):
            if base_min < floor:
                verdict = "noise-floor (ignored)"
            else:
                verdict = "REGRESSION"
                regressions.append((alg, threads, base_min, new_min, ratio))
        elif new_min < base_min * (1.0 - args.threshold):
            if base_min < floor:
                verdict = "noise-floor (ignored)"
            else:
                verdict = "IMPROVED"
                improvements.append((alg, threads, base_min, new_min, ratio))
        rows.append((alg, threads, base_min, new_min, verdict))
    for key in sorted(set(base_cells) - set(new_cells)):
        print(f"bench_compare: warning: baseline cell {key} missing from "
              f"new run", file=sys.stderr)

    # Per-cell summary; speedup = baseline/new, so >1.00x is faster.
    print(f"{'algorithm':<12} {'threads':>7} {'baseline':>10} {'new':>10} "
          f"{'speedup':>8}  verdict")
    for alg, threads, base_min, new_min, verdict in rows:
        base_s = f"{base_min:.4f}s" if base_min is not None else "-"
        speedup = (f"{base_min / new_min:7.2f}x"
                   if base_min and new_min > 0 else "       -")
        print(f"{alg:<12} {threads:>7} {base_s:>10} {new_min:>9.4f}s "
              f"{speedup:>8}  {verdict}")

    if regressions:
        print(f"\nbench_compare: {len(regressions)} regression(s) over "
              f"{args.threshold:.0%} threshold:", file=sys.stderr)
        for alg, threads, base_min, new_min, ratio in regressions:
            print(f"  {alg} @ {threads}t: {base_min:.4f}s -> {new_min:.4f}s "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    if improvements:
        print(f"\nbench_compare: no regressions; {len(improvements)} cell(s) "
              f"improved by more than {args.threshold:.0%} — refresh the "
              f"baseline with --update")
        for alg, threads, base_min, new_min, ratio in improvements:
            print(f"  {alg} @ {threads}t: {base_min:.4f}s -> {new_min:.4f}s "
                  f"({base_min / new_min:.2f}x faster)")
        return 3
    print("\nbench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
