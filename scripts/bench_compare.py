#!/usr/bin/env python3
"""Compare a cc_bench bench.json against the committed baseline trajectory.

Regression gate for CI: for every (algorithm, threads) cell present in both
documents, take the minimum algorithm seconds across reps (min-of-N is the
standard low-noise estimator for a runner that can only get slower, never
faster, by interference) and fail when the new minimum exceeds the baseline
minimum by more than --threshold (default 25%).

Robustness choices, deliberate:
  - min across reps, not mean: tolerant of one noisy rep per cell (run
    cc_bench with --reps=3 or more so the min is meaningful);
  - cells below --min-seconds (default 5 ms) are reported but never fail:
    at that scale the gate would measure the runner, not the code;
  - latency cells — algorithm names containing "p50", "p99", or "latency"
    (bench_serving's serve-query-p50/p99) — use --latency-min-seconds
    (default 50 us) as their noise floor instead: single-query latencies
    sit far below any throughput cell, so the 5 ms floor would blind the
    gate to them entirely while scheduler jitter makes sub-floor deltas
    meaningless;
  - cells present on only one side warn instead of failing, so adding an
    algorithm or thread count to the sweep never breaks the gate;
  - error cells — runs carrying a "rel_error" field (bench_sketch's
    error-vs-space curves) — are gated on MEAN rel_error across reps at
    fixed space, not on seconds: sketch build time is noise, the
    accuracy-per-byte contract is what must not regress. Their noise floor
    is --error-floor (default 0.5% absolute relative error: below that,
    which hash landed where dominates). Reps re-seed the sketch, so the
    mean is the estimator's actual expected error, and it is bit-stable
    for a fixed seed set — a genuine change in the curve is a code change;
  - a cell that is an error cell on one side and a seconds cell on the
    other warns and is skipped (the bench changed meaning; refresh the
    baseline);
  - --update rewrites the baseline from the new document (commit the result
    to move the trajectory).

Exit status:
  0 = no regression,
  1 = regression,
  2 = usage/parse error,
  3 = no regression AND at least one cell improved by more than the
      threshold — success with a notice. CI must treat 3 as success; it
      signals the committed baseline is stale and should be refreshed with
      --update so later regressions are measured against the faster code.

Usage:
  bench_compare.py NEW_JSON BASELINE_JSON [--threshold 0.25]
                   [--min-seconds 0.005] [--latency-min-seconds 0.00005]
                   [--error-floor 0.005] [--update]
"""

import argparse
import json
import re
import shutil
import sys

LATENCY_CELL = re.compile(r"p50|p99|latency")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("schema") != "logcc-bench-v1":
        sys.exit(f"bench_compare: {path}: unexpected schema "
                 f"{doc.get('schema')!r} (want logcc-bench-v1)")
    return doc


def metric_by_cell(doc, path="bench.json"):
    """{(algorithm, threads): ("seconds", min across reps) or
    ("error", mean rel_error across reps)}.

    A cell is an error cell iff any of its runs carries "rel_error"; a cell
    mixing both kinds of run within one document is a malformed bench and
    exits 2. A run missing its key fields (a hand-edited baseline, a bench
    driver that emitted a partial row) warns and is skipped rather than
    blowing up the gate with a KeyError — the per-cell "missing on one
    side" warnings then report anything that disappeared.
    """
    samples = {}
    for i, run in enumerate(doc.get("runs", [])):
        if "algorithm" not in run or "threads" not in run:
            print(f"bench_compare: warning: {path}: run #{i} has no "
                  f"algorithm/threads; skipped", file=sys.stderr)
            continue
        key = (run["algorithm"], run["threads"])
        kind = "error" if "rel_error" in run else "seconds"
        field = "rel_error" if kind == "error" else "seconds"
        try:
            value = float(run[field])
        except (KeyError, TypeError, ValueError):
            print(f"bench_compare: warning: {path}: cell {key} run #{i} "
                  f"has no usable {field!r} field; skipped", file=sys.stderr)
            continue
        prev_kind, values = samples.setdefault(key, (kind, []))
        if prev_kind != kind:
            sys.exit(f"bench_compare: cell {key} mixes rel_error and "
                     f"seconds runs within one document")
        values.append(value)
    cells = {}
    for key, (kind, values) in samples.items():
        if kind == "error":
            cells[key] = (kind, sum(values) / len(values))
        else:
            cells[key] = (kind, min(values))
    return cells


def fmt(kind, value):
    if value is None:
        return "-"
    return f"{value:.3%}" if kind == "error" else f"{value:.4f}s"


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("new_json")
    ap.add_argument("baseline_json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fail when new_min > base_min * (1 + threshold)")
    ap.add_argument("--min-seconds", type=float, default=0.005,
                    help="cells faster than this never fail (noise floor)")
    ap.add_argument("--latency-min-seconds", type=float, default=0.00005,
                    help="noise floor for latency cells (algorithm matches "
                         "p50/p99/latency) instead of --min-seconds")
    ap.add_argument("--error-floor", type=float, default=0.005,
                    help="noise floor for error cells (runs carrying "
                         "rel_error): mean errors below this never fail")
    ap.add_argument("--update", action="store_true",
                    help="copy NEW_JSON over BASELINE_JSON instead of comparing")
    args = ap.parse_args()

    if args.update:
        load(args.new_json)  # validate before overwriting the trajectory
        shutil.copyfile(args.new_json, args.baseline_json)
        print(f"bench_compare: baseline updated from {args.new_json}")
        return 0

    new_doc = load(args.new_json)
    base_doc = load(args.baseline_json)
    new_cells = metric_by_cell(new_doc, args.new_json)
    base_cells = metric_by_cell(base_doc, args.baseline_json)

    regressions = []
    improvements = []
    rows = []
    for key in sorted(new_cells):
        alg, threads = key
        kind, new_val = new_cells[key]
        if key not in base_cells:
            rows.append((alg, threads, kind, None, new_val,
                         "new cell (no baseline)"))
            continue
        base_kind, base_val = base_cells[key]
        if base_kind != kind:
            print(f"bench_compare: warning: cell {key} is a {kind} cell in "
                  f"the new run but a {base_kind} cell in the baseline; "
                  f"skipped (refresh the baseline)", file=sys.stderr)
            rows.append((alg, threads, kind, base_val, new_val,
                         "kind mismatch (skipped)"))
            continue
        ratio = new_val / base_val if base_val > 0 else float("inf")
        if kind == "error":
            floor = args.error_floor
        elif LATENCY_CELL.search(alg):
            floor = args.latency_min_seconds
        else:
            floor = args.min_seconds
        verdict = "ok"
        if new_val > base_val * (1.0 + args.threshold):
            if base_val < floor:
                verdict = "noise-floor (ignored)"
            else:
                verdict = "REGRESSION"
                regressions.append((alg, threads, kind, base_val, new_val,
                                    ratio))
        elif new_val < base_val * (1.0 - args.threshold):
            if base_val < floor:
                verdict = "noise-floor (ignored)"
            else:
                verdict = "IMPROVED"
                improvements.append((alg, threads, kind, base_val, new_val,
                                     ratio))
        rows.append((alg, threads, kind, base_val, new_val, verdict))
    for key in sorted(set(base_cells) - set(new_cells)):
        print(f"bench_compare: warning: baseline cell {key} missing from "
              f"new run", file=sys.stderr)

    # Per-cell summary; ratio = baseline/new, so >1.00x is faster (seconds
    # cells) or more accurate (error cells).
    print(f"{'algorithm':<20} {'threads':>7} {'baseline':>10} {'new':>10} "
          f"{'ratio':>8}  verdict")
    for alg, threads, kind, base_val, new_val, verdict in rows:
        ratio = (f"{base_val / new_val:7.2f}x"
                 if base_val and new_val > 0 else "       -")
        print(f"{alg:<20} {threads:>7} {fmt(kind, base_val):>10} "
              f"{fmt(kind, new_val):>10} {ratio:>8}  {verdict}")

    if regressions:
        print(f"\nbench_compare: {len(regressions)} regression(s) over "
              f"{args.threshold:.0%} threshold:", file=sys.stderr)
        for alg, threads, kind, base_val, new_val, ratio in regressions:
            print(f"  {alg} @ {threads}t: {fmt(kind, base_val)} -> "
                  f"{fmt(kind, new_val)} ({ratio:.2f}x)", file=sys.stderr)
        return 1
    if improvements:
        print(f"\nbench_compare: no regressions; {len(improvements)} cell(s) "
              f"improved by more than {args.threshold:.0%} — refresh the "
              f"baseline with --update")
        for alg, threads, kind, base_val, new_val, ratio in improvements:
            print(f"  {alg} @ {threads}t: {fmt(kind, base_val)} -> "
                  f"{fmt(kind, new_val)} ({base_val / new_val:.2f}x better)")
        return 3
    print("\nbench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
