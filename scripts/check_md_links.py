#!/usr/bin/env python3
"""Checks relative markdown links (and their #anchors) in the given files.

Usage: check_md_links.py README.md docs/*.md

For every [text](target) link with a relative target:
  - the referenced file must exist (relative to the linking file);
  - if the target carries a #fragment, the referenced markdown file must
    contain a heading whose GitHub-style anchor matches.
External links (http/https/mailto) are not fetched — CI must not depend on
third-party uptime — but obviously malformed ones (empty target) fail.

Exit status: 0 when every link resolves, 1 otherwise (each failure printed
as file:line: message).
"""

import re
import sys
from pathlib import Path

# Targets may be empty ("[x]()") so the malformed-link branch can fire.
LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]*)\)")
IMAGE_RE = re.compile(r"!\[[^\]]*\]\(([^)\s]*)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_anchor(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, strip punctuation, spaces->dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    anchors = set()
    counts = {}
    in_code = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = HEADING_RE.match(line)
        if m:
            base = github_anchor(m.group(1))
            n = counts.get(base, 0)
            counts[base] = n + 1
            anchors.add(base if n == 0 else f"{base}-{n}")
    return anchors


def check_file(md: Path, repo_root: Path) -> list:
    failures = []
    in_code = False
    for lineno, line in enumerate(
        md.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for regex in (LINK_RE, IMAGE_RE):
            for m in regex.finditer(line):
                target = m.group(1)
                if not target:
                    failures.append((md, lineno, "empty link target"))
                    continue
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                    continue
                path_part, _, fragment = target.partition("#")
                if path_part:
                    dest = (md.parent / path_part).resolve()
                    try:
                        dest.relative_to(repo_root)
                    except ValueError:
                        failures.append(
                            (md, lineno, f"link escapes the repo: {target}")
                        )
                        continue
                    if not dest.exists():
                        failures.append(
                            (md, lineno, f"broken link: {target}")
                        )
                        continue
                else:
                    dest = md.resolve()
                if fragment and dest.suffix.lower() == ".md":
                    if fragment not in anchors_of(dest):
                        failures.append(
                            (md, lineno, f"missing anchor: {target}")
                        )
    return failures


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    repo_root = Path.cwd().resolve()
    failures = []
    checked = 0
    for arg in argv[1:]:
        md = Path(arg)
        if not md.exists():
            failures.append((md, 0, "file not found"))
            continue
        checked += 1
        failures.extend(check_file(md, repo_root))
    for md, lineno, msg in failures:
        print(f"{md}:{lineno}: {msg}")
    print(f"checked {checked} file(s), {len(failures)} problem(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
