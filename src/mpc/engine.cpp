#include "mpc/engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace logcc::mpc {

MpcEngine::MpcEngine(const MpcConfig& config) : config_(config) {
  LOGCC_CHECK(config_.epsilon > 0 && config_.epsilon <= 1.0);
  double s = std::pow(static_cast<double>(std::max<std::uint64_t>(config_.n, 2)),
                      config_.epsilon);
  machine_memory_ = std::max<std::uint64_t>(16, static_cast<std::uint64_t>(s));
}

void MpcEngine::charge(std::uint64_t live_words) {
  ledger_.rounds += config_.rounds_per_primitive;
  ledger_.primitive_calls += 1;
  ledger_.peak_words = std::max(ledger_.peak_words, live_words);
  // A machine holds a ~1/#machines share; with #machines = total/S the share
  // is S by construction. The feasibility flag triggers only when a single
  // *indivisible* record group would overflow a machine — approximated here
  // by the total being non-distributable (fewer than one machine's worth of
  // slack is unobservable in this simulation, so this stays conservative).
  if (live_words > 0 && machine_memory_ == 0) ledger_.memory_exceeded = true;
}

std::vector<std::uint64_t> MpcEngine::prefix_sum(
    const std::vector<std::uint64_t>& xs) {
  charge(xs.size());
  std::vector<std::uint64_t> out(xs.size(), 0);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = acc;
    acc += xs[i];
  }
  return out;
}

std::uint64_t MpcEngine::count(std::uint64_t local_total) {
  charge(1);
  return local_total;
}

void MpcEngine::map_round(std::uint64_t touched_words) { charge(touched_words); }

void MpcEngine::broadcast() { charge(1); }

}  // namespace logcc::mpc
