// MPC (massively parallel computing) round-complexity substrate.
//
// The paper's predecessors (Andoni et al. FOCS'18, Behnezhad et al. FOCS'19)
// run on the MPC model [BKS17]: machines with sublinear memory S = n^ε,
// unbounded local computation, synchronous communication rounds. The model's
// decisive extra power over a PRAM — the paper's whole motivation — is that
// *sorting, prefix sums, and dedup take O(1) rounds* there, while they cost
// Ω(log n / log log n) on a CRCW PRAM [BH89].
//
// This engine is a round-accounting simulation: algorithms are written
// against primitives (sort, dedup, reduce-by-key, join, broadcast, count),
// each primitive executes host-side and *charges the ledger the model's
// round price* (O(1), configurable). That reproduces exactly what the
// paper compares: round complexities, not wall-clock of a real cluster.
// Memory feasibility is tracked too: the engine records the peak total
// data volume and flags when a conceptual machine's share would exceed S.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace logcc::mpc {

struct MpcConfig {
  /// Memory per machine, as n^epsilon words (used for feasibility checks).
  double epsilon = 0.75;
  std::uint64_t n = 1;  // problem size the epsilon refers to
  /// Round price of each O(1)-round primitive (1 by default; the constants
  /// inside [GSZ11]-style sorting are folded into the claim "O(1)").
  std::uint32_t rounds_per_primitive = 1;
};

struct MpcLedger {
  std::uint64_t rounds = 0;            // communication rounds charged
  std::uint64_t primitive_calls = 0;   // number of primitive invocations
  std::uint64_t peak_words = 0;        // max total live data
  bool memory_exceeded = false;        // some machine's share would exceed S
};

class MpcEngine {
 public:
  explicit MpcEngine(const MpcConfig& config);

  /// O(1) rounds on an MPC (Theta(log n / log log n) on a CRCW PRAM): sort a
  /// distributed vector.
  template <typename T, typename Less>
  void sort(std::vector<T>& data, Less less) {
    charge(data.size() * sizeof(T) / 8);
    std::sort(data.begin(), data.end(), less);
  }

  /// O(1) rounds: dedup a sorted-able vector.
  template <typename T>
  void dedup(std::vector<T>& data) {
    charge(data.size() * sizeof(T) / 8);
    std::sort(data.begin(), data.end());
    data.erase(std::unique(data.begin(), data.end()), data.end());
  }

  /// O(1) rounds: exclusive prefix sums.
  std::vector<std::uint64_t> prefix_sum(const std::vector<std::uint64_t>& xs);

  /// O(1) rounds: total of a distributed counter (e.g. "how many ongoing
  /// vertices" — the quantity §B.5 works hard to avoid needing on a PRAM).
  std::uint64_t count(std::uint64_t local_total);

  /// One map round over distributed items (communication to regroup output).
  void map_round(std::uint64_t touched_words);

  /// O(1) rounds: broadcast a constant number of words to all machines.
  void broadcast();

  const MpcLedger& ledger() const { return ledger_; }
  const MpcConfig& config() const { return config_; }

  /// Words one machine may hold (S = n^epsilon).
  std::uint64_t machine_memory() const { return machine_memory_; }

 private:
  void charge(std::uint64_t live_words);

  MpcConfig config_;
  std::uint64_t machine_memory_;
  MpcLedger ledger_;
};

}  // namespace logcc::mpc
