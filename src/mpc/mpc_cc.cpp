#include "mpc/mpc_cc.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"
#include "util/random.hpp"

namespace logcc::mpc {

using graph::Edge;
using graph::VertexId;

namespace {

/// Relabels arcs by the (flat) parent map, drops loops, dedups. One ALTER =
/// a constant number of MPC primitives.
void alter_arcs(MpcEngine& engine, std::vector<Edge>& arcs,
                const std::vector<VertexId>& parent) {
  engine.map_round(arcs.size() * 2);
  for (Edge& e : arcs) {
    e.u = parent[e.u];
    e.v = parent[e.v];
  }
  std::erase_if(arcs, [](const Edge& e) { return e.u == e.v; });
  for (Edge& e : arcs)
    if (e.u > e.v) std::swap(e.u, e.v);
  engine.sort(arcs, [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
}

/// Flattens the (height ≤ 2) parent map produced by one contraction.
void flatten(MpcEngine& engine, std::vector<VertexId>& parent) {
  engine.map_round(parent.size());
  bool more = true;
  while (more) {
    more = false;
    for (std::size_t v = 0; v < parent.size(); ++v) {
      VertexId pp = parent[parent[v]];
      if (parent[v] != pp) {
        parent[v] = pp;
        more = true;
      }
    }
  }
}

std::vector<VertexId> final_labels(const std::vector<VertexId>& parent) {
  std::vector<VertexId> out(parent.size());
  for (std::size_t v = 0; v < parent.size(); ++v) {
    VertexId r = static_cast<VertexId>(v);
    std::uint64_t guard = 0;
    while (parent[r] != r) {
      r = parent[r];
      LOGCC_CHECK_MSG(++guard <= parent.size(), "cycle in MPC parent map");
    }
    out[v] = r;
  }
  return out;
}

/// Deterministic Boruvka fallback, each round a constant number of
/// primitives; guarantees termination regardless of coin flips.
void boruvka_finish(MpcEngine& engine, std::vector<Edge>& arcs,
                    std::vector<VertexId>& parent, std::uint64_t* phases) {
  while (!arcs.empty()) {
    ++*phases;
    engine.map_round(arcs.size());
    std::vector<VertexId> best(parent.size());
    for (std::size_t v = 0; v < parent.size(); ++v)
      best[v] = static_cast<VertexId>(v);
    for (const Edge& e : arcs) {
      best[e.u] = std::min(best[e.u], e.v);
      best[e.v] = std::min(best[e.v], e.u);
    }
    for (std::size_t v = 0; v < parent.size(); ++v)
      if (best[v] < parent[v] && parent[v] == static_cast<VertexId>(v))
        parent[v] = best[v];
    flatten(engine, parent);
    alter_arcs(engine, arcs, parent);
    LOGCC_CHECK_MSG(*phases < 1u << 20, "MPC Boruvka diverged");
  }
}

}  // namespace

MpcCcResult mpc_vanilla_cc(const graph::EdgeList& el, std::uint64_t seed,
                           const MpcConfig& config_in) {
  MpcConfig config = config_in;
  config.n = std::max<std::uint64_t>(el.n, 2);
  MpcEngine engine(config);
  util::Xoshiro256 rng(seed);

  const std::uint64_t n = el.n;
  std::vector<VertexId> parent(n);
  for (std::uint64_t v = 0; v < n; ++v) parent[v] = static_cast<VertexId>(v);
  std::vector<Edge> arcs = el.edges;
  alter_arcs(engine, arcs, parent);  // canonicalise

  MpcCcResult out;
  while (!arcs.empty()) {
    ++out.phases;
    // Leader coin flips + links: one map round.
    engine.map_round(n + arcs.size());
    std::vector<std::uint8_t> leader(n);
    for (std::uint64_t v = 0; v < n; ++v) leader[v] = rng.bernoulli(0.5);
    for (const Edge& e : arcs) {
      // Endpoints are roots (arcs are altered every phase).
      if (!leader[e.u] && leader[e.v]) parent[e.u] = e.v;
      if (!leader[e.v] && leader[e.u]) parent[e.v] = e.u;
    }
    flatten(engine, parent);
    alter_arcs(engine, arcs, parent);
    if (out.phases > 64 + 8 * 64) {  // paranoia; vanishing probability
      boruvka_finish(engine, arcs, parent, &out.phases);
    }
  }
  out.labels = final_labels(parent);
  out.ledger = engine.ledger();
  return out;
}

MpcCcResult mpc_log_diameter_cc(const graph::EdgeList& el, std::uint64_t seed,
                                const MpcConfig& config_in) {
  MpcConfig config = config_in;
  config.n = std::max<std::uint64_t>(el.n, 2);
  MpcEngine engine(config);
  util::Xoshiro256 rng(seed);

  const std::uint64_t n = el.n;
  const double log_n = std::log2(static_cast<double>(std::max<std::uint64_t>(n, 4)));
  std::vector<VertexId> parent(n);
  for (std::uint64_t v = 0; v < n; ++v) parent[v] = static_cast<VertexId>(v);
  std::vector<Edge> arcs = el.edges;
  alter_arcs(engine, arcs, parent);
  const std::uint64_t m0 = std::max<std::uint64_t>(arcs.size(), 1);

  MpcCcResult out;
  double budget = 2.0;

  while (!arcs.empty() && out.phases < 64) {
    ++out.phases;

    // Recompute the degree budget from the current density (the model's
    // space headroom): b = max(2, m / n'), squared each phase.
    std::vector<VertexId> active;
    {
      engine.map_round(arcs.size());
      active.reserve(arcs.size());
      for (const Edge& e : arcs) {
        active.push_back(e.u);
        active.push_back(e.v);
      }
      engine.dedup(active);
    }
    const double density =
        static_cast<double>(m0) / std::max<double>(1.0, active.size());
    budget = std::min(double{1 << 30},
                      std::max({budget * budget, density, 2.0}));
    const std::uint64_t b = static_cast<std::uint64_t>(budget);

    // EXPANSION (§A.1): square neighbour sets until every active vertex has
    // ≥ b neighbours or its whole component. Each squaring is a sorted join
    // + dedup + truncate-to-b: O(1) rounds; ≤ log d squarings.
    std::unordered_map<VertexId, std::vector<VertexId>> nbrs;
    nbrs.reserve(active.size() * 2);
    for (const Edge& e : arcs) {
      nbrs[e.u].push_back(e.v);
      nbrs[e.v].push_back(e.u);
    }
    std::vector<std::uint8_t> full(n, 0);  // neighbour set = whole component
    for (std::uint32_t step = 0; step < 64; ++step) {
      ++out.expand_steps;
      engine.map_round(arcs.size());
      engine.sort(arcs, [](const Edge& a, const Edge& c) {
        return a.u != c.u ? a.u < c.u : a.v < c.v;
      });
      bool all_done = true;
      std::unordered_map<VertexId, std::vector<VertexId>> next = nbrs;
      for (VertexId u : active) {
        auto& cur = nbrs[u];
        if (full[u] || cur.size() >= b) continue;
        auto& grow = next[u];
        for (VertexId v : cur) {
          const auto& nv = nbrs[v];
          grow.insert(grow.end(), nv.begin(), nv.end());
          if (grow.size() > 4 * b + 8) break;  // truncation keeps memory O(b)
        }
        std::sort(grow.begin(), grow.end());
        grow.erase(std::unique(grow.begin(), grow.end()), grow.end());
        std::erase(grow, u);
        if (grow.size() > b) grow.resize(b);  // keep the b smallest
        if (grow.size() == cur.size() && grow.size() < b) full[u] = 1;
        if (!full[u] && grow.size() < b) all_done = false;
      }
      nbrs.swap(next);
      if (all_done) break;
    }

    // VOTING + CONTRACTION: leaders with probability Θ(log n / b); full
    // vertices contract deterministically to their component minimum.
    engine.map_round(active.size());
    const double p_leader = std::min(1.0, 2.0 * log_n / static_cast<double>(b));
    std::vector<std::uint8_t> leader(n, 0);
    for (VertexId u : active) leader[u] = rng.bernoulli(p_leader);
    for (VertexId u : active) {
      const auto& nu = nbrs[u];
      if (full[u]) {
        VertexId mn = u;
        for (VertexId w : nu) mn = std::min(mn, w);
        parent[u] = mn;
        continue;
      }
      if (leader[u]) continue;
      // Only link to non-full leaders: a full leader contracts downward to
      // its component minimum this same round, and linking up at it could
      // close a 2-cycle. (It resolves next phase via the altered arcs.)
      VertexId target = graph::kInvalidVertex;
      for (VertexId w : nu)
        if (leader[w] && !full[w]) target = std::min(target, w);
      if (target != graph::kInvalidVertex) parent[u] = target;
    }
    flatten(engine, parent);
    alter_arcs(engine, arcs, parent);
  }

  if (!arcs.empty()) boruvka_finish(engine, arcs, parent, &out.phases);

  out.labels = final_labels(parent);
  out.ledger = engine.ledger();
  return out;
}

}  // namespace logcc::mpc
