// Sharded MPC executor: the first execution backend for the MPC layer that
// actually distributes the graph instead of simulating rounds over one flat
// edge vector.
//
// The vertex space [0, n) is cut into `shards` contiguous ranges; each shard
// owns its range's labels and the canonical smaller-endpoint arc slice for
// its vertices (for LOGCCSR1/LOGCCSR2 CSR-backed inputs that slice is a
// zero-copy window into the mapped adjacency — rows [lo, hi) of the CSR;
// edge-backed inputs are partitioned once at setup). Rounds execute on the
// existing thread-pool runtime (util::parallel_for over shards) as
// bulk-synchronous supersteps: shards write message batches into per-
// (source, destination) outboxes, a barrier flips outboxes to inboxes, and
// owners apply them. A shard never writes another shard's state — all
// cross-shard effects travel as messages, which is what makes the execution
// deterministic for every shard count and thread interleaving.
//
// The algorithm is synchronous min-label propagation with one pointer-jump
// per round (hook + jump): converges to the per-component minimum vertex id,
// the same canonical labels union_find_cc produces. Every round charges the
// SAME fixed primitive set to the MpcEngine ledger (scatter map, jump map,
// convergence count) with volumes in global n and m — so the charged round
// count is a property of the graph, invariant across 1/2/4/8 shards
// (tests/test_mpc_sharded.cpp pins this).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"
#include "mpc/engine.hpp"

namespace logcc::mpc {

struct ShardedMpcOptions {
  /// Number of vertex-range shards (clamped to [1, 1024] and to n).
  std::uint32_t shards = 4;
  /// Round-accounting configuration (config.n is overwritten with the
  /// input's vertex count).
  MpcConfig config{};
};

struct ShardedMpcResult {
  /// Per-component minimum vertex id — canonical, execution-independent.
  std::vector<graph::VertexId64> labels;
  MpcLedger ledger;
  /// Propagation supersteps executed (== rounds the loop ran; the ledger's
  /// `rounds` additionally reflects rounds_per_primitive and setup).
  std::uint64_t rounds = 0;
  /// Cross-shard messages batched over the whole run (0 when shards == 1;
  /// grows with shard count while labels and charged rounds stay fixed).
  std::uint64_t cross_shard_messages = 0;
  std::uint32_t shards_used = 0;
};

/// Runs sharded MPC connected components on the wide path. CSR-backed
/// inputs (load_dataset_zero_copy over LOGCCSR1/LOGCCSR2) shard without
/// copying the adjacency; edge-backed inputs are partitioned at setup.
ShardedMpcResult sharded_mpc_cc(const graph::ArcsInput64& in,
                                const ShardedMpcOptions& opt = {});

/// Narrow-EdgeList convenience shim (benches, family generators): widens
/// the edges and runs the wide executor.
ShardedMpcResult sharded_mpc_cc(const graph::EdgeList& el,
                                const ShardedMpcOptions& opt = {});

}  // namespace logcc::mpc
