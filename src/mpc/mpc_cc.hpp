// Connected components in the MPC model — the comparator the paper improves
// on. Two algorithms:
//
//  * mpc_vanilla_cc — Reif-style leader contraction with MPC primitives:
//    O(log n) rounds. The pre-[ASS+18] state of the art rendered in the
//    model.
//
//  * mpc_log_diameter_cc — the Andoni-et-al.-style double-exponential
//    scheme (§A.1 of the paper): maintain a degree budget b; EXPAND
//    neighbour sets by squaring (one O(1)-round sorted join per doubling,
//    so O(log d) rounds per phase) until every vertex has ≥ b neighbours
//    or its full component; sample leaders with probability Θ(log n / b);
//    contract; square the budget. O(log d · log log_{m/n} n) rounds, with
//    sort/dedup/counting all O(1) rounds — the very operations the PRAM
//    reproduction replaces with hashing.
//
// Both return exact components (validated against the oracle in tests); the
// ledger reports rounds, the quantity benches compare against the PRAM
// algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/engine.hpp"

namespace logcc::mpc {

struct MpcCcResult {
  std::vector<graph::VertexId> labels;
  MpcLedger ledger;
  std::uint64_t phases = 0;        // leader-contraction phases
  std::uint64_t expand_steps = 0;  // neighbourhood-squaring steps (log d each)
};

MpcCcResult mpc_vanilla_cc(const graph::EdgeList& el, std::uint64_t seed,
                           const MpcConfig& config = {});

MpcCcResult mpc_log_diameter_cc(const graph::EdgeList& el, std::uint64_t seed,
                                const MpcConfig& config = {});

}  // namespace logcc::mpc
