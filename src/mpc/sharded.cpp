#include "mpc/sharded.hpp"

#include <algorithm>
#include <atomic>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace logcc::mpc {

using graph::Edge64;
using graph::VertexId64;

namespace {

/// A label update travelling to the owner of `v`. Owners min-combine their
/// inbox, so delivery order never matters.
struct MinMsg {
  VertexId64 v;
  VertexId64 label;
};

/// One vertex-range shard. `lo`/`hi` delimit the owned range; the arc slice
/// is either rows [lo, hi) of the shared CSR (`csr` non-null — zero-copy
/// into the mapped file) or the owned `arcs` vector (edge-backed inputs,
/// partitioned once at setup). Outboxes are per-destination message
/// batches, rebuilt every superstep.
struct Shard {
  VertexId64 lo = 0;
  VertexId64 hi = 0;
  const graph::CsrView64* csr = nullptr;
  std::vector<Edge64> arcs;

  std::vector<std::vector<MinMsg>> outbox;   // [dst shard] label updates
  std::vector<std::vector<MinMsg>> reqbox;   // [dst shard] jump requests
  std::uint64_t changed = 0;                 // owned labels changed this round
  std::uint64_t sent_cross = 0;              // cross-shard messages sent

  template <typename Fn>
  void for_each_arc(Fn&& fn) const {
    if (csr != nullptr) {
      for (VertexId64 u = lo; u < hi; ++u)
        for (VertexId64 w : graph::csr_suffix(*csr, u)) fn(u, w);
      return;
    }
    for (const Edge64& e : arcs) fn(e.u, e.v);
  }
};

}  // namespace

ShardedMpcResult sharded_mpc_cc(const graph::ArcsInput64& in,
                                const ShardedMpcOptions& opt) {
  const std::uint64_t n = in.num_vertices();
  const std::uint64_t m = in.num_edges();
  const std::uint32_t shards = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      opt.shards, 1, std::min<std::uint64_t>(1024, std::max<std::uint64_t>(n, 1))));

  MpcConfig config = opt.config;
  config.n = std::max<std::uint64_t>(n, 2);
  MpcEngine engine(config);

  // Contiguous ranges: shard s owns [s*n/shards, (s+1)*n/shards).
  auto range_begin = [&](std::uint32_t s) -> VertexId64 {
    return static_cast<VertexId64>(
        (static_cast<unsigned __int128>(n) * s) / shards);
  };
  auto owner = [&](VertexId64 v) -> std::uint32_t {
    // Inverse of range_begin: candidate from the uniform split, then nudge
    // across the (at most one-off) floor boundaries.
    std::uint32_t s = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        shards - 1, (static_cast<unsigned __int128>(v) * shards) / std::max<std::uint64_t>(n, 1)));
    while (s + 1 < shards && v >= range_begin(s + 1)) ++s;
    while (s > 0 && v < range_begin(s)) --s;
    return s;
  };

  std::vector<Shard> shard(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shard[s].lo = range_begin(s);
    shard[s].hi = range_begin(s + 1);
    shard[s].outbox.resize(shards);
    shard[s].reqbox.resize(shards);
  }

  // --- Setup: distribute the graph. One map round (the initial shuffle
  // that routes every arc to the owner of its smaller endpoint).
  engine.map_round(2 * m);
  if (in.csr_backed()) {
    // The CSR rows [lo, hi) ARE the shard's slice; nothing to copy.
    for (std::uint32_t s = 0; s < shards; ++s) shard[s].csr = &in.csr();
  } else {
    in.for_each_edge([&](VertexId64 u, VertexId64 v, std::uint64_t) {
      if (u > v) std::swap(u, v);
      shard[owner(u)].arcs.push_back({u, v});
    });
  }

  std::vector<VertexId64> labels(n);
  util::parallel_for(0, n, [&](std::size_t v) {
    labels[v] = static_cast<VertexId64>(v);
  });

  ShardedMpcResult out;
  out.shards_used = shards;

  auto clear_outboxes = [&] {
    for (Shard& s : shard)
      for (auto& box : s.outbox) box.clear();
  };
  auto route = [&](Shard& src, std::uint32_t self, VertexId64 v,
                   VertexId64 label) {
    const std::uint32_t dst = owner(v);
    src.outbox[dst].push_back({v, label});
    if (dst != self) ++src.sent_cross;
  };
  // Owner applies every batch addressed to it, min-combining. Inboxes are
  // drained in source order, but min makes the result order-independent.
  auto apply_inboxes = [&] {
    util::parallel_for(0, shards, [&](std::size_t d) {
      Shard& dst = shard[d];
      for (std::uint32_t s = 0; s < shards; ++s) {
        for (const MinMsg& msg : shard[s].outbox[d]) {
          LOGCC_CHECK(msg.v >= dst.lo && msg.v < dst.hi);
          if (msg.label < labels[msg.v]) {
            labels[msg.v] = msg.label;
            ++dst.changed;
          }
        }
      }
    });
  };

  // --- Supersteps. Each round charges the identical primitive set with
  // global volumes — rounds in the ledger depend on the graph, never on the
  // shard count.
  std::uint64_t changed = 1;
  while (changed != 0) {
    ++out.rounds;
    for (Shard& s : shard) s.changed = 0;

    // HOOK: every shard scans its arc slice against the (stable) label
    // snapshot and sends the pair's min to both owners.
    engine.map_round(2 * m);
    clear_outboxes();
    util::parallel_for(0, shards, [&](std::size_t si) {
      Shard& s = shard[si];
      const std::uint32_t self = static_cast<std::uint32_t>(si);
      s.for_each_arc([&](VertexId64 u, VertexId64 v) {
        const VertexId64 lu = labels[u];
        const VertexId64 lv = labels[v];
        if (lu == lv) return;
        const VertexId64 mn = std::min(lu, lv);
        if (mn < lu) route(s, self, u, mn);
        if (mn < lv) route(s, self, v, mn);
      });
    });
    apply_inboxes();

    // JUMP: one pointer-jump as a two-wave round trip. Wave 1 — owner(v)
    // sends the request (v, t = labels[v]) to owner(t). Wave 2 — owner(t)
    // reads its own (stable) labels[t] and sends the response back to
    // owner(v) on the update fabric; the shared apply then min-combines.
    engine.map_round(n);  // requests
    util::parallel_for(0, shards, [&](std::size_t si) {
      Shard& s = shard[si];
      for (auto& box : s.reqbox) box.clear();
      const std::uint32_t self = static_cast<std::uint32_t>(si);
      for (VertexId64 v = s.lo; v < s.hi; ++v) {
        const VertexId64 t = labels[v];
        if (t == v) continue;
        const std::uint32_t dst = owner(t);
        s.reqbox[dst].push_back({v, t});
        if (dst != self) ++s.sent_cross;
      }
    });
    engine.map_round(n);  // responses
    clear_outboxes();
    util::parallel_for(0, shards, [&](std::size_t d) {
      Shard& responder = shard[d];
      const std::uint32_t self = static_cast<std::uint32_t>(d);
      for (std::uint32_t src = 0; src < shards; ++src) {
        for (const MinMsg& req : shard[src].reqbox[d]) {
          LOGCC_CHECK(req.label >= responder.lo && req.label < responder.hi);
          route(responder, self, req.v, labels[req.label]);
        }
      }
    });
    apply_inboxes();

    // CONVERGENCE: global changed count (one count primitive).
    std::uint64_t total = 0;
    for (const Shard& s : shard) total += s.changed;
    changed = engine.count(total);

    LOGCC_CHECK_MSG(out.rounds <= n + 64, "sharded MPC failed to converge");
  }

  for (const Shard& s : shard) out.cross_shard_messages += s.sent_cross;
  out.labels = std::move(labels);
  out.ledger = engine.ledger();
  return out;
}

ShardedMpcResult sharded_mpc_cc(const graph::EdgeList& el,
                                const ShardedMpcOptions& opt) {
  std::vector<Edge64> wide(el.edges.size());
  for (std::size_t i = 0; i < wide.size(); ++i)
    wide[i] = {el.edges[i].u, el.edges[i].v};
  return sharded_mpc_cc(graph::ArcsInput64::from_edges(el.n, wide), opt);
}

}  // namespace logcc::mpc
