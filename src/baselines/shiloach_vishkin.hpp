// Shiloach–Vishkin (1982) connected components — the classical O(log n)-time
// ARBITRARY CRCW PRAM algorithm the paper's introduction departs from.
//
// This is the fast "synchronous vector" rendering (see DESIGN.md §5.1); the
// step-faithful on-simulator version lives in pram/sv_on_pram.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"

namespace logcc::baselines {

struct BaselineResult {
  std::vector<graph::VertexId> labels;
  std::uint64_t rounds = 0;
};

/// Original-style Shiloach–Vishkin: shortcut, hook-smaller, stagnant hook
/// (via Q stamps), shortcut; O(log n) rounds. The ArcsInput overload sweeps
/// the edges straight off the backing storage every round (zero-copy for
/// CSR datasets); the EdgeList overload is a forwarding shim.
BaselineResult shiloach_vishkin(const graph::ArcsInput& in);
BaselineResult shiloach_vishkin(const graph::EdgeList& el);

}  // namespace logcc::baselines
