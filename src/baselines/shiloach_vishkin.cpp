#include "baselines/shiloach_vishkin.hpp"

#include "util/check.hpp"

namespace logcc::baselines {

using graph::VertexId;

// Synchronous rendering: every step reads the previous step's D (PRAM
// semantics). Sequential in-place updates would cascade along chains within
// one round (acting like path compression) and destroy the Θ(log n) round
// structure the benches measure.
BaselineResult shiloach_vishkin(const graph::ArcsInput& in) {
  const std::uint64_t n = in.num_vertices();
  std::vector<VertexId> d(n), next(n);
  std::vector<std::uint32_t> q(n, 0);
  for (std::uint64_t v = 0; v < n; ++v) d[v] = static_cast<VertexId>(v);

  BaselineResult out;
  bool changed = true;
  std::uint32_t iter = 0;
  while (changed) {
    changed = false;
    ++iter;
    ++out.rounds;

    // Step 1: one synchronous shortcut; stamp the new parent of every vertex
    // that moved (so any height-≥2 tree stamps its root via a grandchild).
    next = d;
    for (std::uint64_t v = 0; v < n; ++v) {
      VertexId dd = d[d[v]];
      if (d[v] != dd) {
        next[v] = dd;
        q[dd] = iter;
        changed = true;
      }
    }
    d.swap(next);

    // Step 2: vertices whose parent is a root hook that root onto a strictly
    // smaller neighbouring label (concurrent writes: last proposal wins —
    // the ARBITRARY resolution). Strictly decreasing labels => acyclic.
    next = d;
    in.for_each_edge([&](VertexId eu, VertexId ev, std::uint32_t) {
      for (int dir = 0; dir < 2; ++dir) {
        VertexId u = dir ? ev : eu;
        VertexId v = dir ? eu : ev;
        if (d[u] == d[d[u]] && d[v] < d[u]) {
          next[d[u]] = d[v];
          q[d[v]] = iter;
          changed = true;
        }
      }
    });
    d.swap(next);

    // Step 3: stagnant trees (untouched this iteration — necessarily stars)
    // hook onto any neighbouring tree. Two adjacent stagnant stars cannot
    // both exist (Step 2 would have fired), so no mutual hooking.
    next = d;
    in.for_each_edge([&](VertexId eu, VertexId ev, std::uint32_t) {
      for (int dir = 0; dir < 2; ++dir) {
        VertexId u = dir ? ev : eu;
        VertexId v = dir ? eu : ev;
        if (d[u] == d[d[u]] && q[d[u]] != iter && d[u] != d[v]) {
          next[d[u]] = d[v];
          changed = true;
        }
      }
    });
    d.swap(next);

    // Step 4: shortcut again.
    next = d;
    for (std::uint64_t v = 0; v < n; ++v) {
      VertexId dd = d[d[v]];
      if (d[v] != dd) {
        next[v] = dd;
        changed = true;
      }
    }
    d.swap(next);

    LOGCC_CHECK_MSG(out.rounds <= 4096, "SV failed to converge");
  }

  // Flatten completely so labels are root ids.
  for (std::uint64_t v = 0; v < n; ++v) {
    VertexId r = d[v];
    while (d[r] != r) r = d[r];
    d[v] = r;
  }
  out.labels = std::move(d);
  return out;
}

BaselineResult shiloach_vishkin(const graph::EdgeList& el) {
  return shiloach_vishkin(graph::ArcsInput::from_edges(el));
}

}  // namespace logcc::baselines
