// Sequential baselines: union-find with path splitting and union by rank
// (Tarjan & van Leeuwen 1984) — the practical sequential yardstick — and a
// reusable DisjointSets structure used by validators.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/shiloach_vishkin.hpp"
#include "graph/graph.hpp"

namespace logcc::baselines {

class DisjointSets {
 public:
  explicit DisjointSets(std::uint64_t n);

  graph::VertexId find(graph::VertexId v);
  /// Returns true if u and v were in different sets (i.e. a merge happened).
  bool unite(graph::VertexId u, graph::VertexId v);
  std::uint64_t num_sets() const { return num_sets_; }

 private:
  std::vector<graph::VertexId> parent_;
  std::vector<std::uint8_t> rank_;
  std::uint64_t num_sets_;
};

/// Connected components via union-find; labels are min vertex ids. The
/// ArcsInput overload streams edges straight off the backing storage
/// (zero-copy for CSR datasets); the EdgeList overload is a forwarding
/// shim.
BaselineResult union_find_cc(const graph::ArcsInput& in);
BaselineResult union_find_cc(const graph::EdgeList& el);

}  // namespace logcc::baselines
