// Simple concurrent labeling baselines:
//
//  * label_propagation — each round every vertex takes the minimum label in
//    its closed neighbourhood; converges in Theta(d) rounds. The
//    "practitioners implement much simpler algorithms" family from the
//    paper's introduction.
//  * liu_tarjan — Liu–Tarjan (SOSA'19) style {parent-link; shortcut; alter}
//    rounds over a shrinking edge list; O(log n) rounds, and the scheme
//    logcc reuses as its guaranteed-convergent finisher.
#pragma once

#include "baselines/shiloach_vishkin.hpp"

namespace logcc::baselines {

// ArcsInput overloads are the real entry points (zero-copy for CSR-backed
// datasets); the EdgeList overloads are forwarding shims.
BaselineResult label_propagation(const graph::ArcsInput& in);
BaselineResult label_propagation(const graph::EdgeList& el);

BaselineResult liu_tarjan(const graph::ArcsInput& in);
BaselineResult liu_tarjan(const graph::EdgeList& el);

}  // namespace logcc::baselines
