#include "baselines/bfs_cc.hpp"

#include "graph/graph_algos.hpp"

namespace logcc::baselines {

BaselineResult bfs_cc(const graph::EdgeList& el) {
  BaselineResult out;
  out.rounds = 1;
  out.labels = graph::bfs_components(graph::Graph::from_edges(el));
  return out;
}

}  // namespace logcc::baselines
