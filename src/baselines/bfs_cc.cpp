#include "baselines/bfs_cc.hpp"

#include "graph/graph_algos.hpp"

namespace logcc::baselines {

BaselineResult bfs_cc(const graph::ArcsInput& in) {
  BaselineResult out;
  out.rounds = 1;
  if (in.csr_backed()) {
    out.labels = graph::bfs_components(in.csr());
  } else {
    out.labels = graph::bfs_components(
        graph::Graph::from_edges(in.num_vertices(), in.edge_span()));
  }
  return out;
}

BaselineResult bfs_cc(const graph::EdgeList& el) {
  return bfs_cc(graph::ArcsInput::from_edges(el));
}

}  // namespace logcc::baselines
