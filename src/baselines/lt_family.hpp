// The Liu–Tarjan (SOSA'19) family of simple concurrent labeling algorithms —
// the framework §2.2 of the paper builds on. An algorithm is a per-round
// composition of:
//
//   connect ∈ { D  direct-connect:   root v adopts the smallest neighbour,
//               P  parent-connect:   v's *parent* adopts the smallest
//                                    neighbour parent,
//               E  extended-connect: like P but also offers the neighbour's
//                                    grandparent }
//   shortcut ∈ { S single SHORTCUT step, F flatten (repeat to fixpoint) }
//   optional A: ALTER the edge list to parents afterwards.
//
// All connects resolve concurrent writes by minimum (COMBINING-min CRCW —
// also a correct ARBITRARY-model outcome since min is one of the written
// values); labels only decrease, so every variant is monotone and
// terminates. Round counts vary: E+F converges fastest, D+S slowest — the
// lt-family bench quantifies this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/shiloach_vishkin.hpp"
#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"

namespace logcc::baselines {

enum class LtConnect { kDirect, kParent, kExtended };
enum class LtShortcut { kSingle, kFull };

struct LtVariant {
  LtConnect connect = LtConnect::kParent;
  LtShortcut shortcut = LtShortcut::kSingle;
  bool alter = true;

  std::string name() const;
};

/// The 10 *correct* variants, for sweeps. Direct-connect without ALTER is
/// excluded: a cross edge between two non-roots never triggers a connect, so
/// D-S / D-F can reach a flat fixpoint with unmerged components — one of
/// LT'19's negative results, demonstrated by
/// LtFamily.DirectWithoutAlterCanStall.
std::vector<LtVariant> lt_all_variants();

/// The two known-incomplete combinations (D without A), kept constructible
/// so the negative result stays testable.
std::vector<LtVariant> lt_incorrect_variants();

/// Runs one LT variant. The ArcsInput overload is the real entry point:
/// every connect/alter round sweeps the edges with a blocked parallel pass
/// (min-combining offers through atomic_min — order-independent, so labels,
/// per-round change flags, and hence round counts are bit-identical to the
/// historical serial sweep for every thread count). Variants without ALTER
/// sweep the input's own storage every round — zero-copy for CSR-backed
/// (mmap) datasets; variants with ALTER materialize their shrinking
/// working list on the first round. The EdgeList overload is a forwarding
/// shim.
BaselineResult liu_tarjan_variant(const graph::ArcsInput& in,
                                  const LtVariant& variant);
BaselineResult liu_tarjan_variant(const graph::EdgeList& el,
                                  const LtVariant& variant);

}  // namespace logcc::baselines
