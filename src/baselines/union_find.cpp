#include "baselines/union_find.hpp"

#include <algorithm>

namespace logcc::baselines {

using graph::VertexId;

DisjointSets::DisjointSets(std::uint64_t n)
    : parent_(n), rank_(n, 0), num_sets_(n) {
  for (std::uint64_t v = 0; v < n; ++v) parent_[v] = static_cast<VertexId>(v);
}

VertexId DisjointSets::find(VertexId v) {
  // Path splitting: every node on the find path points to its grandparent.
  while (parent_[v] != v) {
    VertexId next = parent_[v];
    parent_[v] = parent_[next];
    v = next;
  }
  return v;
}

bool DisjointSets::unite(VertexId u, VertexId v) {
  VertexId ru = find(u), rv = find(v);
  if (ru == rv) return false;
  if (rank_[ru] < rank_[rv]) std::swap(ru, rv);
  parent_[rv] = ru;
  if (rank_[ru] == rank_[rv]) ++rank_[ru];
  --num_sets_;
  return true;
}

BaselineResult union_find_cc(const graph::EdgeList& el) {
  DisjointSets ds(el.n);
  for (const auto& e : el.edges) ds.unite(e.u, e.v);

  BaselineResult out;
  out.rounds = 1;
  // Canonicalise to min-id labels.
  std::vector<VertexId> min_of(el.n);
  for (std::uint64_t v = 0; v < el.n; ++v)
    min_of[v] = static_cast<VertexId>(v);
  for (std::uint64_t v = 0; v < el.n; ++v) {
    VertexId r = ds.find(static_cast<VertexId>(v));
    min_of[r] = std::min(min_of[r], static_cast<VertexId>(v));
  }
  out.labels.resize(el.n);
  for (std::uint64_t v = 0; v < el.n; ++v)
    out.labels[v] = min_of[ds.find(static_cast<VertexId>(v))];
  return out;
}

}  // namespace logcc::baselines
