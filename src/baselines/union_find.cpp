#include "baselines/union_find.hpp"

#include <algorithm>

namespace logcc::baselines {

using graph::VertexId;

DisjointSets::DisjointSets(std::uint64_t n)
    : parent_(n), rank_(n, 0), num_sets_(n) {
  for (std::uint64_t v = 0; v < n; ++v) parent_[v] = static_cast<VertexId>(v);
}

VertexId DisjointSets::find(VertexId v) {
  // Path splitting: every node on the find path points to its grandparent.
  while (parent_[v] != v) {
    VertexId next = parent_[v];
    parent_[v] = parent_[next];
    v = next;
  }
  return v;
}

bool DisjointSets::unite(VertexId u, VertexId v) {
  VertexId ru = find(u), rv = find(v);
  if (ru == rv) return false;
  if (rank_[ru] < rank_[rv]) std::swap(ru, rv);
  parent_[rv] = ru;
  if (rank_[ru] == rank_[rv]) ++rank_[ru];
  --num_sets_;
  return true;
}

BaselineResult union_find_cc(const graph::ArcsInput& in) {
  const std::uint64_t n = in.num_vertices();
  DisjointSets ds(n);
  in.for_each_edge(
      [&](VertexId u, VertexId v, std::uint32_t) { ds.unite(u, v); });

  BaselineResult out;
  out.rounds = 1;
  // Canonicalise to min-id labels.
  std::vector<VertexId> min_of(n);
  for (std::uint64_t v = 0; v < n; ++v) min_of[v] = static_cast<VertexId>(v);
  for (std::uint64_t v = 0; v < n; ++v) {
    VertexId r = ds.find(static_cast<VertexId>(v));
    min_of[r] = std::min(min_of[r], static_cast<VertexId>(v));
  }
  out.labels.resize(n);
  for (std::uint64_t v = 0; v < n; ++v)
    out.labels[v] = min_of[ds.find(static_cast<VertexId>(v))];
  return out;
}

BaselineResult union_find_cc(const graph::EdgeList& el) {
  return union_find_cc(graph::ArcsInput::from_edges(el));
}

}  // namespace logcc::baselines
