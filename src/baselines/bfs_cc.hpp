// Sequential BFS connected components on an EdgeList — the linear-time
// sequential reference (`graph search [Tar72]` in the paper's introduction)
// and the oracle benches compare wall-clock against.
#pragma once

#include "baselines/shiloach_vishkin.hpp"
#include "graph/graph.hpp"

namespace logcc::baselines {

/// The ArcsInput overload runs BFS directly over CSR-backed inputs
/// (zero-copy); edge-backed inputs build the CSR adjacency first, exactly
/// as the EdgeList shim always did.
BaselineResult bfs_cc(const graph::ArcsInput& in);
BaselineResult bfs_cc(const graph::EdgeList& el);

}  // namespace logcc::baselines
