// Sequential BFS connected components on an EdgeList — the linear-time
// sequential reference (`graph search [Tar72]` in the paper's introduction)
// and the oracle benches compare wall-clock against.
#pragma once

#include "baselines/shiloach_vishkin.hpp"
#include "graph/graph.hpp"

namespace logcc::baselines {

BaselineResult bfs_cc(const graph::EdgeList& el);

}  // namespace logcc::baselines
