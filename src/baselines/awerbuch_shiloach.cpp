#include "baselines/awerbuch_shiloach.hpp"

#include "util/check.hpp"

namespace logcc::baselines {

using graph::VertexId;

namespace {

/// Star test: st[v] == true iff v's tree is a star. The classic 3-substep
/// CRCW routine, each substep synchronous.
void star_detect(const std::vector<VertexId>& d, std::vector<char>& st,
                 std::vector<char>& scratch) {
  const std::size_t n = d.size();
  st.assign(n, 1);
  for (std::size_t v = 0; v < n; ++v) {
    VertexId dd = d[d[v]];
    if (d[v] != dd) {
      st[v] = 0;
      st[dd] = 0;
    }
  }
  // st(v) := st(v) AND st(D(v)) — the AND keeps the own-flag a depth-2
  // vertex set in the previous substep (plain copy-from-parent would
  // overwrite it with the parent's stale value and mis-classify non-star
  // trees, enabling cycle-creating hooks).
  scratch.resize(n);
  for (std::size_t v = 0; v < n; ++v) scratch[v] = st[v] && st[d[v]];
  st.swap(scratch);
}

}  // namespace

// Synchronous rendering (see shiloach_vishkin.cpp for why).
BaselineResult awerbuch_shiloach(const graph::ArcsInput& in) {
  const std::uint64_t n = in.num_vertices();
  std::vector<VertexId> d(n), next(n);
  for (std::uint64_t v = 0; v < n; ++v) d[v] = static_cast<VertexId>(v);
  std::vector<char> st, scratch;

  BaselineResult out;
  bool changed = true;
  while (changed) {
    changed = false;
    ++out.rounds;

    // (1) star roots hook onto strictly smaller neighbour labels.
    star_detect(d, st, scratch);
    next = d;
    in.for_each_edge([&](VertexId eu, VertexId ev, std::uint32_t) {
      for (int dir = 0; dir < 2; ++dir) {
        VertexId u = dir ? ev : eu;
        VertexId v = dir ? eu : ev;
        if (st[u] && d[v] < d[u]) {
          next[d[u]] = d[v];
          changed = true;
        }
      }
    });
    d.swap(next);

    // (2) trees that are *still* stars hook onto any neighbouring tree.
    // After re-detection two adjacent stars cannot both remain (step 1
    // would have hooked the larger), so no mutual hooking.
    star_detect(d, st, scratch);
    next = d;
    in.for_each_edge([&](VertexId eu, VertexId ev, std::uint32_t) {
      for (int dir = 0; dir < 2; ++dir) {
        VertexId u = dir ? ev : eu;
        VertexId v = dir ? eu : ev;
        if (st[u] && d[v] != d[u]) {
          next[d[u]] = d[v];
          changed = true;
        }
      }
    });
    d.swap(next);

    // (3) shortcut.
    next = d;
    for (std::uint64_t v = 0; v < n; ++v) {
      VertexId dd = d[d[v]];
      if (d[v] != dd) {
        next[v] = dd;
        changed = true;
      }
    }
    d.swap(next);

    LOGCC_CHECK_MSG(out.rounds <= 4096, "AS failed to converge");
  }

  for (std::uint64_t v = 0; v < n; ++v) {
    VertexId r = d[v];
    while (d[r] != r) r = d[r];
    d[v] = r;
  }
  out.labels = std::move(d);
  return out;
}

BaselineResult awerbuch_shiloach(const graph::EdgeList& el) {
  return awerbuch_shiloach(graph::ArcsInput::from_edges(el));
}

}  // namespace logcc::baselines
