#include "baselines/label_propagation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace logcc::baselines {

using graph::Edge;
using graph::VertexId;

BaselineResult label_propagation(const graph::ArcsInput& in) {
  const std::uint64_t n = in.num_vertices();
  std::vector<VertexId> label(n), next(n);
  for (std::uint64_t v = 0; v < n; ++v) label[v] = static_cast<VertexId>(v);

  BaselineResult out;
  bool changed = true;
  while (changed) {
    changed = false;
    ++out.rounds;
    next = label;  // synchronous update: reads see the previous round
    in.for_each_edge([&](VertexId u, VertexId v, std::uint32_t) {
      next[u] = std::min(next[u], label[v]);
      next[v] = std::min(next[v], label[u]);
    });
    if (next != label) {
      changed = true;
      label.swap(next);
    }
  }
  out.labels = std::move(label);
  return out;
}

BaselineResult label_propagation(const graph::EdgeList& el) {
  return label_propagation(graph::ArcsInput::from_edges(el));
}

BaselineResult liu_tarjan(const graph::ArcsInput& in) {
  const std::uint64_t n = in.num_vertices();
  std::vector<VertexId> p(n);
  for (std::uint64_t v = 0; v < n; ++v) p[v] = static_cast<VertexId>(v);
  // The shrinking arc list is the algorithm's own working set (ALTER
  // rewrites it every round); seed it straight from the input — no
  // intermediate EdgeList for CSR-backed datasets.
  std::vector<Edge> edges;
  edges.reserve(in.num_edges());
  in.for_each_edge(
      [&](VertexId u, VertexId v, std::uint32_t) { edges.push_back({u, v}); });

  BaselineResult out;
  // Hoisted round buffers: steady-state rounds reuse capacity, never
  // allocate (the round-scratch rule of core/round_arena.hpp).
  std::vector<VertexId> target;
  std::vector<Edge> next;
  while (true) {
    ++out.rounds;
    bool linked = false;
    // Parent link (min-combining flavour): every vertex adopts the smallest
    // neighbouring parent label; monotone, cycle-free because links strictly
    // decrease labels.
    target = p;
    for (const auto& e : edges) {
      target[e.u] = std::min(target[e.u], p[e.v]);
      target[e.v] = std::min(target[e.v], p[e.u]);
    }
    for (std::uint64_t v = 0; v < n; ++v) {
      if (target[v] < p[p[v]]) {
        p[p[v]] = target[v];  // hook v's root downward
        linked = true;
      }
    }
    // Shortcut.
    for (std::uint64_t v = 0; v < n; ++v) p[v] = p[p[v]];
    // Alter: rewrite edges to parents, dropping loops.
    next.clear();
    next.reserve(edges.size());
    for (const auto& e : edges) {
      VertexId a = p[e.u], b = p[e.v];
      if (a != b) next.push_back({a, b});
    }
    edges.swap(next);
    if (edges.empty() && !linked) break;
    LOGCC_CHECK_MSG(out.rounds <= 4096, "liu_tarjan failed to converge");
  }

  for (std::uint64_t v = 0; v < n; ++v) {
    VertexId r = p[v];
    while (p[r] != r) r = p[r];
    p[v] = r;
  }
  BaselineResult res;
  res.rounds = out.rounds;
  res.labels = std::move(p);
  return res;
}

BaselineResult liu_tarjan(const graph::EdgeList& el) {
  return liu_tarjan(graph::ArcsInput::from_edges(el));
}

}  // namespace logcc::baselines
