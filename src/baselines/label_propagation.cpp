#include "baselines/label_propagation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace logcc::baselines {

using graph::Edge;
using graph::VertexId;

BaselineResult label_propagation(const graph::EdgeList& el) {
  const std::uint64_t n = el.n;
  std::vector<VertexId> label(n), next(n);
  for (std::uint64_t v = 0; v < n; ++v) label[v] = static_cast<VertexId>(v);

  BaselineResult out;
  bool changed = true;
  while (changed) {
    changed = false;
    ++out.rounds;
    next = label;  // synchronous update: reads see the previous round
    for (const auto& e : el.edges) {
      next[e.u] = std::min(next[e.u], label[e.v]);
      next[e.v] = std::min(next[e.v], label[e.u]);
    }
    if (next != label) {
      changed = true;
      label.swap(next);
    }
  }
  out.labels = std::move(label);
  return out;
}

BaselineResult liu_tarjan(const graph::EdgeList& el) {
  const std::uint64_t n = el.n;
  std::vector<VertexId> p(n);
  for (std::uint64_t v = 0; v < n; ++v) p[v] = static_cast<VertexId>(v);
  std::vector<Edge> edges = el.edges;

  BaselineResult out;
  while (true) {
    ++out.rounds;
    bool linked = false;
    // Parent link (min-combining flavour): every vertex adopts the smallest
    // neighbouring parent label; monotone, cycle-free because links strictly
    // decrease labels.
    std::vector<VertexId> target = p;
    for (const auto& e : edges) {
      target[e.u] = std::min(target[e.u], p[e.v]);
      target[e.v] = std::min(target[e.v], p[e.u]);
    }
    for (std::uint64_t v = 0; v < n; ++v) {
      if (target[v] < p[p[v]]) {
        p[p[v]] = target[v];  // hook v's root downward
        linked = true;
      }
    }
    // Shortcut.
    for (std::uint64_t v = 0; v < n; ++v) p[v] = p[p[v]];
    // Alter: rewrite edges to parents, dropping loops.
    std::vector<Edge> next;
    next.reserve(edges.size());
    for (const auto& e : edges) {
      VertexId a = p[e.u], b = p[e.v];
      if (a != b) next.push_back({a, b});
    }
    edges.swap(next);
    if (edges.empty() && !linked) break;
    LOGCC_CHECK_MSG(out.rounds <= 4096, "liu_tarjan failed to converge");
  }

  for (std::uint64_t v = 0; v < n; ++v) {
    VertexId r = p[v];
    while (p[r] != r) r = p[r];
    p[v] = r;
  }
  BaselineResult res;
  res.rounds = out.rounds;
  res.labels = std::move(p);
  return res;
}

}  // namespace logcc::baselines
