#include "baselines/lt_family.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/radix.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::baselines {

using graph::Edge;
using graph::VertexId;

std::string LtVariant::name() const {
  std::string s;
  switch (connect) {
    case LtConnect::kDirect: s += "D"; break;
    case LtConnect::kParent: s += "P"; break;
    case LtConnect::kExtended: s += "E"; break;
  }
  s += shortcut == LtShortcut::kSingle ? "-S" : "-F";
  if (alter) s += "-A";
  return s;
}

std::vector<LtVariant> lt_all_variants() {
  std::vector<LtVariant> out;
  for (LtConnect c :
       {LtConnect::kDirect, LtConnect::kParent, LtConnect::kExtended})
    for (LtShortcut s : {LtShortcut::kSingle, LtShortcut::kFull})
      for (bool a : {false, true}) {
        if (c == LtConnect::kDirect && !a) continue;  // see header
        out.push_back({c, s, a});
      }
  return out;
}

std::vector<LtVariant> lt_incorrect_variants() {
  return {{LtConnect::kDirect, LtShortcut::kSingle, false},
          {LtConnect::kDirect, LtShortcut::kFull, false}};
}

namespace {

/// One synchronous SHORTCUT step, fused with the change flag: next[v] =
/// p[p[v]] for every v, true iff anything moved. (The map runs exactly once
/// per index — parallel_reduce's single-pass contract.)
bool shortcut_step(std::vector<VertexId>& p, std::vector<VertexId>& next) {
  const std::uint64_t n = p.size();
  const bool moved = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), false,
      [&](std::size_t v) {
        const VertexId t = p[p[v]];
        next[v] = t;
        return t != p[v];
      },
      [](bool a, bool b) { return a || b; });
  p.swap(next);
  return moved;
}

/// Edge lists big enough that the bucketed dedup amortises its partition
/// passes. Chosen by size only — never by thread count — so a given input
/// always takes the same path (see scan.hpp on the determinism contract).
constexpr std::size_t kAlterDedupCutoff = 4 * util::kSerialGrain;

bool edge_less(const Edge& a, const Edge& b) {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

/// ALTER dedup. Small lists: serial sort + unique (the historical path).
/// Large lists: partition into buckets by mixed high bits of u (equal
/// edges share u, hence a bucket), radix-sort + unique each bucket on a
/// worker lane, pack survivors back. Output order is bucket-major —
/// different from the fully sorted serial path, but deterministic, and
/// every later round depends only on the edge *set*: connect offers are
/// min-combined (atomic_min), so labels are order-invariant. Staging is
/// arena scratch (round arena on the dispatcher, lane arenas on workers).
void dedup_edges(std::vector<Edge>& edges) {
  const std::size_t n = edges.size();
  if (n < kAlterDedupCutoff) {
    std::sort(edges.begin(), edges.end(), edge_less);
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return;
  }
  std::size_t buckets = 1;
  while (buckets < 256 && buckets * util::kSerialGrain < n) buckets <<= 1;
  const int shift = 64 - std::countr_zero(buckets);
  util::ScratchBuffer<Edge> scattered(n);
  util::ScratchBuffer<std::size_t> bucket_begin(buckets + 1);
  util::parallel_bucket_partition_into(
      edges.data(), n, scattered.data(), bucket_begin.span(), buckets,
      [shift](const Edge& e) {
        return static_cast<std::size_t>(util::mix64(e.u) >> shift);
      });
  util::ScratchBuffer<std::size_t> kept(buckets);
  util::parallel_for_blocks(buckets, [&](std::size_t k) {
    Edge* lo = scattered.data() + bucket_begin[k];
    const std::size_t len = bucket_begin[k + 1] - bucket_begin[k];
    if (len < util::kRadixSortCutoff) {
      std::sort(lo, lo + len, edge_less);
      kept[k] = static_cast<std::size_t>(std::unique(lo, lo + len) - lo);
    } else {
      util::radix_sort_key64(lo, len, [](const Edge& e) {
        return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
      });
      kept[k] = static_cast<std::size_t>(std::unique(lo, lo + len) - lo);
    }
  });
  // Pack surviving bucket prefixes back into the caller's vector.
  std::size_t total = 0;
  util::ScratchBuffer<std::size_t> out_begin(buckets);
  for (std::size_t k = 0; k < buckets; ++k) {
    out_begin[k] = total;
    total += kept[k];
  }
  edges.resize(total);
  util::parallel_for_blocks(buckets, [&](std::size_t k) {
    std::copy_n(scattered.data() + bucket_begin[k], kept[k],
                edges.data() + out_begin[k]);
  });
}

}  // namespace

BaselineResult liu_tarjan_variant(const graph::ArcsInput& in,
                                  const LtVariant& variant) {
  const std::uint64_t n = in.num_vertices();
  std::vector<VertexId> p(n), next(n);
  util::parallel_for(0, n,
                     [&](std::size_t v) { p[v] = static_cast<VertexId>(v); });

  // ALTER variants materialize a shrinking working list after round 1;
  // without ALTER every round sweeps the input's own storage (the CSR
  // adjacency of an mmap dataset, or the caller's edge span) — zero-copy.
  std::vector<Edge> edges, edges_next;
  bool use_working = false;

  // Blocked parallel sweep calling arc_fn(v, w) for both directions of
  // every non-loop edge of the current round's edge set.
  auto sweep = [&](auto&& arc_fn) {
    if (use_working) {
      util::parallel_for(0, edges.size(), [&](std::size_t i) {
        const Edge& e = edges[i];
        arc_fn(e.u, e.v);
        arc_fn(e.v, e.u);
      });
    } else if (in.csr_backed()) {
      const graph::CsrView& g = in.csr();
      util::parallel_for(0, n, [&](std::size_t u) {
        const VertexId v = static_cast<VertexId>(u);
        for (VertexId w : g.neighbors(v)) {
          if (w != v) arc_fn(v, w);  // each direction appears as its own arc
        }
      });
    } else {
      const auto es = in.edge_span();
      util::parallel_for(0, es.size(), [&](std::size_t i) {
        const Edge& e = es[i];
        if (e.u == e.v) return;
        arc_fn(e.u, e.v);
        arc_fn(e.v, e.u);
      });
    }
  };

  BaselineResult out;
  bool changed = true;
  while (changed) {
    changed = false;
    ++out.rounds;

    // Connect: min-combining offers (COMBINING-min CRCW) via atomic_min —
    // next[t] ends as min(p[t], every offer to t), exactly what the serial
    // sweep computed, for every thread count and sweep order.
    util::parallel_for(0, n, [&](std::size_t v) { next[v] = p[v]; });
    switch (variant.connect) {
      case LtConnect::kDirect:
        // Root v adopts its smallest neighbour.
        sweep([&](VertexId v, VertexId w) {
          if (p[v] == v) util::atomic_min(next[v], w);
        });
        break;
      case LtConnect::kParent:
        sweep([&](VertexId v, VertexId w) {
          util::atomic_min(next[p[v]], p[w]);
        });
        break;
      case LtConnect::kExtended:
        sweep([&](VertexId v, VertexId w) {
          util::atomic_min(next[p[v]], p[w]);
          util::atomic_min(next[p[v]], p[p[w]]);
          util::atomic_min(next[v], p[w]);
        });
        break;
    }
    changed = util::parallel_reduce(
        std::size_t{0}, static_cast<std::size_t>(n), false,
        [&](std::size_t v) { return next[v] != p[v]; },
        [](bool a, bool b) { return a || b; });
    p.swap(next);

    // Shortcut.
    if (variant.shortcut == LtShortcut::kSingle) {
      changed = shortcut_step(p, next) || changed;
    } else {
      // Full flatten. Every inner SHORTCUT step is a PRAM step; count each
      // beyond the first so "-F" rounds stay comparable to "-S" rounds
      // (otherwise flatten would hide Θ(log n) work inside one "round").
      bool more = true;
      bool first = true;
      while (more) {
        more = shortcut_step(p, next);
        changed = changed || more;
        if (!first && more) ++out.rounds;
        first = false;
      }
    }

    // Alter: blocked parallel emit of the surviving normalized edges, then
    // sort + unique — the resulting edge *set* (what every later round
    // depends on) matches the historical serial path exactly.
    if (variant.alter) {
      auto normalized = [&](VertexId a, VertexId b) -> Edge {
        return a <= b ? Edge{a, b} : Edge{b, a};
      };
      if (use_working) {
        util::parallel_emit<Edge>(
            edges.size(), edges_next,
            [&](std::size_t i) -> std::size_t {
              return p[edges[i].u] != p[edges[i].v] ? 1 : 0;
            },
            [&](std::size_t i, Edge* dst) {
              *dst = normalized(p[edges[i].u], p[edges[i].v]);
            });
      } else if (in.csr_backed()) {
        const graph::CsrView& g = in.csr();
        util::parallel_emit<Edge>(
            n, edges_next,
            [&](std::size_t u) -> std::size_t {
              std::size_t c = 0;
              for (VertexId w : graph::csr_suffix(g, static_cast<VertexId>(u)))
                c += p[static_cast<VertexId>(u)] != p[w] ? 1 : 0;
              return c;
            },
            [&](std::size_t u, Edge* dst) {
              for (VertexId w : graph::csr_suffix(g, static_cast<VertexId>(u)))
                if (p[static_cast<VertexId>(u)] != p[w])
                  *dst++ = normalized(p[static_cast<VertexId>(u)], p[w]);
            });
      } else {
        const auto es = in.edge_span();
        util::parallel_emit<Edge>(
            es.size(), edges_next,
            [&](std::size_t i) -> std::size_t {
              return p[es[i].u] != p[es[i].v] ? 1 : 0;
            },
            [&](std::size_t i, Edge* dst) {
              *dst = normalized(p[es[i].u], p[es[i].v]);
            });
      }
      edges.swap(edges_next);
      use_working = true;
      // Deduplicate to keep rounds O(m)-work (bucketed radix when large).
      dedup_edges(edges);
    }

    LOGCC_CHECK_MSG(out.rounds <= 1u << 20,
                    "LT variant failed to converge");
  }

  // Labels only decrease and connects always offer values within the
  // component, so the fixpoint is flat per component; flatten defensively.
  for (std::uint64_t v = 0; v < n; ++v) {
    VertexId r = p[v];
    std::uint64_t guard = 0;
    while (p[r] != r) {
      r = p[r];
      LOGCC_CHECK_MSG(++guard <= n, "cycle in LT parent forest");
    }
    p[v] = r;
  }
  out.labels = std::move(p);
  return out;
}

BaselineResult liu_tarjan_variant(const graph::EdgeList& el,
                                  const LtVariant& variant) {
  return liu_tarjan_variant(graph::ArcsInput::from_edges(el), variant);
}

}  // namespace logcc::baselines
