#include "baselines/lt_family.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace logcc::baselines {

using graph::Edge;
using graph::VertexId;

std::string LtVariant::name() const {
  std::string s;
  switch (connect) {
    case LtConnect::kDirect: s += "D"; break;
    case LtConnect::kParent: s += "P"; break;
    case LtConnect::kExtended: s += "E"; break;
  }
  s += shortcut == LtShortcut::kSingle ? "-S" : "-F";
  if (alter) s += "-A";
  return s;
}

std::vector<LtVariant> lt_all_variants() {
  std::vector<LtVariant> out;
  for (LtConnect c :
       {LtConnect::kDirect, LtConnect::kParent, LtConnect::kExtended})
    for (LtShortcut s : {LtShortcut::kSingle, LtShortcut::kFull})
      for (bool a : {false, true}) {
        if (c == LtConnect::kDirect && !a) continue;  // see header
        out.push_back({c, s, a});
      }
  return out;
}

std::vector<LtVariant> lt_incorrect_variants() {
  return {{LtConnect::kDirect, LtShortcut::kSingle, false},
          {LtConnect::kDirect, LtShortcut::kFull, false}};
}

BaselineResult liu_tarjan_variant(const graph::EdgeList& el,
                                  const LtVariant& variant) {
  const std::uint64_t n = el.n;
  std::vector<VertexId> p(n), next(n);
  for (std::uint64_t v = 0; v < n; ++v) p[v] = static_cast<VertexId>(v);
  std::vector<Edge> edges = el.edges;

  BaselineResult out;
  bool changed = true;
  while (changed) {
    changed = false;
    ++out.rounds;

    // Connect: proposals resolved by min (synchronous — reads see the
    // previous round's parents).
    next = p;
    auto offer = [&](VertexId target, VertexId label) {
      if (label < next[target]) {
        next[target] = label;
        changed = true;
      }
    };
    for (const Edge& e : edges) {
      if (e.u == e.v) continue;
      for (int dir = 0; dir < 2; ++dir) {
        VertexId v = dir ? e.v : e.u;
        VertexId w = dir ? e.u : e.v;
        switch (variant.connect) {
          case LtConnect::kDirect:
            // Root v adopts its smallest neighbour.
            if (p[v] == v) offer(v, w);
            break;
          case LtConnect::kParent:
            offer(p[v], p[w]);
            break;
          case LtConnect::kExtended:
            offer(p[v], p[w]);
            offer(p[v], p[p[w]]);
            offer(v, p[w]);
            break;
        }
      }
    }
    p.swap(next);

    // Shortcut.
    if (variant.shortcut == LtShortcut::kSingle) {
      next = p;
      for (std::uint64_t v = 0; v < n; ++v) {
        if (next[v] != p[p[v]]) {
          next[v] = p[p[v]];
          changed = true;
        }
      }
      p.swap(next);
    } else {
      // Full flatten. Every inner SHORTCUT step is a PRAM step; count each
      // beyond the first so "-F" rounds stay comparable to "-S" rounds
      // (otherwise flatten would hide Θ(log n) work inside one "round").
      bool more = true;
      bool first = true;
      while (more) {
        more = false;
        next = p;
        for (std::uint64_t v = 0; v < n; ++v) {
          if (next[v] != p[p[v]]) {
            next[v] = p[p[v]];
            more = true;
            changed = true;
          }
        }
        p.swap(next);
        if (!first && more) ++out.rounds;
        first = false;
      }
    }

    // Alter.
    if (variant.alter) {
      std::vector<Edge> altered;
      altered.reserve(edges.size());
      for (const Edge& e : edges) {
        VertexId a = p[e.u], b = p[e.v];
        if (a != b) altered.push_back({a, b});
      }
      edges.swap(altered);
      // Deduplicate to keep rounds O(m)-work.
      for (Edge& e : edges)
        if (e.u > e.v) std::swap(e.u, e.v);
      std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
      });
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }

    LOGCC_CHECK_MSG(out.rounds <= 1u << 20,
                    "LT variant failed to converge");
  }

  // Labels only decrease and connects always offer values within the
  // component, so the fixpoint is flat per component; flatten defensively.
  for (std::uint64_t v = 0; v < n; ++v) {
    VertexId r = p[v];
    std::uint64_t guard = 0;
    while (p[r] != r) {
      r = p[r];
      LOGCC_CHECK_MSG(++guard <= n, "cycle in LT parent forest");
    }
    p[v] = r;
  }
  out.labels = std::move(p);
  return out;
}

}  // namespace logcc::baselines
