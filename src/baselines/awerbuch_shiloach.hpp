// Awerbuch–Shiloach (1987): the star-based simplification of
// Shiloach–Vishkin; deterministic, O(log n) rounds, ARBITRARY CRCW.
#pragma once

#include "baselines/shiloach_vishkin.hpp"

namespace logcc::baselines {

// The ArcsInput overload is the real entry point (zero-copy for CSR-backed
// datasets); the EdgeList overload is a forwarding shim.
BaselineResult awerbuch_shiloach(const graph::ArcsInput& in);
BaselineResult awerbuch_shiloach(const graph::EdgeList& el);

}  // namespace logcc::baselines
