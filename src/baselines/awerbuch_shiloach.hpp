// Awerbuch–Shiloach (1987): the star-based simplification of
// Shiloach–Vishkin; deterministic, O(log n) rounds, ARBITRARY CRCW.
#pragma once

#include "baselines/shiloach_vishkin.hpp"

namespace logcc::baselines {

BaselineResult awerbuch_shiloach(const graph::EdgeList& el);

}  // namespace logcc::baselines
