// Step-synchronous CRCW PRAM simulator.
//
// Model (§1.1 of the paper): a set of processors with O(1) private memory and
// a large common memory; processors run synchronously; in one step a
// processor can read a cell, do O(1) local work, and write a cell; concurrent
// reads are free; concurrent writes to one cell are resolved by a policy:
//
//   * kArbitrary  — an arbitrary writer succeeds (the paper's main model).
//                   We realise "arbitrary" as a *seeded random* winner so
//                   that tests can re-run with many resolution orders and
//                   verify algorithms never depend on the choice.
//   * kPriority   — lowest processor id wins (PRIORITY CRCW, used by the
//                   paper's lower-bound discussion).
//   * kCombineMin / kCombineSum — COMBINING CRCW (§B's stronger model, used
//                   there to know n' exactly).
//
// Execution: Machine::step(p, fn) runs `fn(proc_id, ctx)` for proc_id in
// [0, p). Reads observe the memory as of the *start* of the step; writes are
// buffered and resolved when the step ends. This is the standard simulation
// discipline and makes the result independent of the order in which the host
// executes processor bodies.
//
// The ledger counts steps, work (processor activations), writes and write
// conflicts, so benches can report PRAM cost measures directly.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"

namespace logcc::pram {

using Word = std::uint64_t;

enum class WritePolicy { kArbitrary, kPriority, kCombineMin, kCombineSum };

const char* to_string(WritePolicy p);

struct Ledger {
  std::uint64_t steps = 0;
  std::uint64_t work = 0;        // sum over steps of processors activated
  std::uint64_t writes = 0;      // total buffered writes
  std::uint64_t conflicts = 0;   // cells written by >= 2 processors in a step
};

class Machine {
 public:
  Machine(std::size_t memory_words, WritePolicy policy, std::uint64_t seed);

  /// Read during a step: sees the pre-step snapshot.
  Word read(std::size_t addr) const {
    LOGCC_DCHECK(addr < memory_.size());
    return memory_[addr];
  }

  /// Buffered write; resolved against concurrent writers when the step ends.
  void write(std::size_t addr, Word value, std::uint64_t proc_id) {
    LOGCC_DCHECK(addr < memory_.size());
    pending_.push_back({addr, value, proc_id});
  }

  /// One synchronous step over `n_procs` processors.
  template <typename Fn>
  void step(std::size_t n_procs, Fn&& fn) {
    begin_step(n_procs);
    for (std::size_t p = 0; p < n_procs; ++p) fn(p);
    end_step();
  }

  /// Direct (out-of-band) memory access between steps — for loading inputs
  /// and reading results off the machine.
  Word peek(std::size_t addr) const { return memory_[addr]; }
  void poke(std::size_t addr, Word value) {
    LOGCC_CHECK(addr < memory_.size());
    memory_[addr] = value;
  }

  std::size_t memory_size() const { return memory_.size(); }
  const Ledger& ledger() const { return ledger_; }
  WritePolicy policy() const { return policy_; }

 private:
  struct PendingWrite {
    std::size_t addr;
    Word value;
    std::uint64_t proc;
  };

  void begin_step(std::size_t n_procs);
  void end_step();

  std::vector<Word> memory_;
  std::vector<PendingWrite> pending_;
  WritePolicy policy_;
  std::uint64_t seed_;
  Ledger ledger_;
};

}  // namespace logcc::pram
