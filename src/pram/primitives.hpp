// PRAM primitives built on the Machine, used both as substrate for the
// on-machine algorithms and as fidelity witnesses in tests/benches:
//
//  * broadcast            — O(1) on CRCW.
//  * pointer jumping      — flattens a parent forest in O(log n) steps
//                           (the SHORTCUT building block, §2.2).
//  * approximate compaction — Definition D.1 / [Goo91]: maps k distinguished
//                           elements one-to-one into an array of length 2k,
//                           O(log* n)-style randomized retry rounds.
//  * prefix sum           — on the COMBINING machine via doubling, O(log n);
//                           included because the paper contrasts its cost
//                           against O(1) on an MPC.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pram/machine.hpp"

namespace logcc::pram {

/// Writes `value` into every cell of [base, base+count) in one step using
/// `count` processors.
void broadcast(Machine& m, std::size_t base, std::size_t count, Word value);

/// Parent array lives at [base, base+n). Repeats p[v] = p[p[v]] until no
/// change; returns the number of jump steps (≤ ceil(log2 n) + 1).
std::uint64_t pointer_jump(Machine& m, std::size_t base, std::size_t n);

/// Approximate compaction (Definition D.1). `flags` marks the distinguished
/// elements of a length-n conceptual array; on success returns slot[i] in
/// [0, 2k) for each distinguished i, distinct across them. Fails (nullopt)
/// only if `max_rounds` retry rounds cannot place everything — with the
/// default rounds this has vanishing probability; tests also exercise the
/// failure path with adversarial parameters.
std::optional<std::vector<std::uint32_t>> approximate_compaction(
    Machine& m, const std::vector<bool>& flags, std::uint64_t seed,
    std::uint32_t max_rounds = 32);

/// Prefix sums of [base, base+n) computed by doubling; requires the
/// kCombineSum policy for the final gather but works on any policy since the
/// doubling writes are conflict-free. Returns inclusive prefix sums via
/// `out`, leaves machine memory restored.
std::vector<Word> prefix_sum(Machine& m, std::size_t base, std::size_t n);

}  // namespace logcc::pram
