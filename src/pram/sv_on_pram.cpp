#include "pram/sv_on_pram.hpp"

#include "pram/primitives.hpp"

namespace logcc::pram {

namespace {

// Memory layout: D (parents) at [0, n); star flags at [n, 2n).
// Edge endpoints live in the edge processors' private memory (each edge
// processor is identified with its arc), matching the model's O(1) private
// words per processor.

void star_detect(Machine& m, std::size_t n) {
  // st(v) := true
  m.step(n, [&](std::size_t v) { m.write(n + v, 1, v); });
  // if D(v) != D(D(v)): st(v) := false, st(D(D(v))) := false
  m.step(n, [&](std::size_t v) {
    Word d = m.read(v);
    Word dd = m.read(d);
    if (d != dd) {
      m.write(n + v, 0, v);
      m.write(n + dd, 0, v);
    }
  });
  // st(v) := st(v) AND st(D(v)). The AND matters: a depth-2 vertex already
  // flagged itself false in the previous substep, and its *parent's* flag is
  // only corrected in this substep — plain st(v) := st(D(v)) would overwrite
  // the own-flag with the parent's stale `true` and mis-classify non-star
  // trees, letting hooks fire from them and create parent cycles.
  m.step(n, [&](std::size_t v) {
    Word d = m.read(v);
    Word st = m.read(n + v) & m.read(n + d);
    m.write(n + v, st, v);
  });
}

}  // namespace

SvResult shiloach_vishkin_on_pram(const graph::EdgeList& el,
                                  WritePolicy policy, std::uint64_t seed) {
  const std::size_t n = el.n;
  Machine m(2 * n + 1, policy, seed);
  for (std::size_t v = 0; v < n; ++v) m.poke(v, v);

  // Arcs: both directions of each undirected edge.
  std::vector<graph::Edge> arcs;
  arcs.reserve(2 * el.edges.size());
  for (const auto& e : el.edges) {
    arcs.push_back({e.u, e.v});
    arcs.push_back({e.v, e.u});
  }

  SvResult out;
  bool changed = true;
  while (changed) {
    ++out.iterations;
    std::vector<Word> before(n);
    for (std::size_t v = 0; v < n; ++v) before[v] = m.peek(v);

    // (1) conditional hooking: star roots hook onto smaller-labeled
    // neighbours.
    star_detect(m, n);
    m.step(arcs.size(), [&](std::size_t p) {
      const auto& a = arcs[p];
      Word du = m.read(a.u);
      Word dv = m.read(a.v);
      Word st_u = m.read(n + a.u);
      if (st_u && dv < du) m.write(du, dv, p);
    });

    // (2) stagnant-star hooking: stars untouched by (1) hook onto any
    // neighbouring tree (at most one endpoint's tree can still be a star,
    // so no mutual hooking can create a cycle).
    star_detect(m, n);
    m.step(arcs.size(), [&](std::size_t p) {
      const auto& a = arcs[p];
      Word du = m.read(a.u);
      Word dv = m.read(a.v);
      Word st_u = m.read(n + a.u);
      if (st_u && dv != du) m.write(du, dv, p);
    });

    // (3) shortcut.
    m.step(n, [&](std::size_t v) {
      Word d = m.read(v);
      Word dd = m.read(d);
      if (d != dd) m.write(v, dd, v);
    });

    changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (m.peek(v) != before[v]) {
        changed = true;
        break;
      }
    }
  }

  // Final flatten so every label is a root id.
  pointer_jump(m, 0, n);

  out.labels.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    out.labels[v] = static_cast<graph::VertexId>(m.peek(v));
  out.ledger = m.ledger();
  return out;
}

}  // namespace pram
