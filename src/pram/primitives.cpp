#include "pram/primitives.hpp"

#include <algorithm>

#include "util/hashing.hpp"

namespace logcc::pram {

void broadcast(Machine& m, std::size_t base, std::size_t count, Word value) {
  m.step(count, [&](std::size_t p) { m.write(base + p, value, p); });
}

std::uint64_t pointer_jump(Machine& m, std::size_t base, std::size_t n) {
  std::uint64_t jumps = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Snapshot for host-side convergence detection (a real PRAM uses a flag
    // cell; the step structure and count are identical).
    std::vector<Word> before(n);
    for (std::size_t v = 0; v < n; ++v) before[v] = m.peek(base + v);
    m.step(n, [&](std::size_t v) {
      Word p = m.read(base + v);
      Word pp = m.read(base + p);
      if (p != pp) m.write(base + v, pp, v);
    });
    ++jumps;
    for (std::size_t v = 0; v < n; ++v) {
      if (m.peek(base + v) != before[v]) {
        changed = true;
        break;
      }
    }
  }
  return jumps;
}

std::optional<std::vector<std::uint32_t>> approximate_compaction(
    Machine& m, const std::vector<bool>& flags, std::uint64_t seed,
    std::uint32_t max_rounds) {
  const std::size_t n = flags.size();
  std::vector<std::uint32_t> items;
  for (std::size_t i = 0; i < n; ++i)
    if (flags[i]) items.push_back(static_cast<std::uint32_t>(i));
  const std::size_t k = items.size();
  std::vector<std::uint32_t> slot(n, static_cast<std::uint32_t>(-1));
  if (k == 0) return slot;
  const std::size_t cells = 2 * k;
  LOGCC_CHECK_MSG(m.memory_size() >= cells,
                  "machine memory too small for compaction target");

  // Save the scratch region so the primitive is non-destructive.
  std::vector<Word> saved(cells);
  for (std::size_t c = 0; c < cells; ++c) saved[c] = m.peek(c);

  constexpr Word kEmpty = static_cast<Word>(-1);
  std::vector<bool> claimed(cells, false);
  std::vector<std::uint32_t> unplaced = items;
  for (std::uint32_t round = 0; round < max_rounds && !unplaced.empty();
       ++round) {
    auto h = util::PairwiseHash::from_seed(seed, round);
    // Clear unclaimed cells (1 step), then contend (1 step): each unplaced
    // element writes its id into a random cell; ARBITRARY resolution picks
    // the surviving writer; each element then re-reads to learn if it won.
    m.step(cells, [&](std::size_t c) {
      if (!claimed[c]) m.write(c, kEmpty, c);
    });
    m.step(unplaced.size(), [&](std::size_t p) {
      std::size_t c = h(unplaced[p], cells);
      if (!claimed[c]) m.write(c, unplaced[p], p);
    });
    std::vector<std::uint32_t> still;
    for (std::uint32_t id : unplaced) {
      std::size_t c = h(id, cells);
      if (!claimed[c] && m.peek(c) == id) {
        slot[id] = static_cast<std::uint32_t>(c);
        claimed[c] = true;
      } else {
        still.push_back(id);
      }
    }
    unplaced.swap(still);
  }

  for (std::size_t c = 0; c < cells; ++c) m.poke(c, saved[c]);
  if (!unplaced.empty()) return std::nullopt;
  return slot;
}

std::vector<Word> prefix_sum(Machine& m, std::size_t base, std::size_t n) {
  // Hillis–Steele doubling: O(log n) steps, conflict-free writes. The paper's
  // point stands: even on a CRCW PRAM this costs Theta(log n) steps, whereas
  // an MPC gets it in O(1) rounds — which is exactly why logcc avoids prefix
  // sums in its algorithms.
  for (std::size_t d = 1; d < std::max<std::size_t>(n, 1); d <<= 1) {
    m.step(n, [&](std::size_t v) {
      if (v >= d) {
        Word sum = m.read(base + v) + m.read(base + v - d);
        m.write(base + v, sum, v);
      }
    });
  }
  std::vector<Word> out(n);
  for (std::size_t v = 0; v < n; ++v) out[v] = m.peek(base + v);
  return out;
}

}  // namespace logcc::pram
