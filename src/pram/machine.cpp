#include "pram/machine.hpp"

#include <algorithm>

namespace logcc::pram {

const char* to_string(WritePolicy p) {
  switch (p) {
    case WritePolicy::kArbitrary: return "arbitrary";
    case WritePolicy::kPriority: return "priority";
    case WritePolicy::kCombineMin: return "combine-min";
    case WritePolicy::kCombineSum: return "combine-sum";
  }
  return "?";
}

Machine::Machine(std::size_t memory_words, WritePolicy policy,
                 std::uint64_t seed)
    : memory_(memory_words, 0), policy_(policy), seed_(seed) {}

void Machine::begin_step(std::size_t n_procs) {
  pending_.clear();
  ledger_.steps += 1;
  ledger_.work += n_procs;
}

void Machine::end_step() {
  if (pending_.empty()) return;
  ledger_.writes += pending_.size();
  // Group concurrent writes per cell; the sort key mirrors the resolution
  // policy so the winner (or combination) is found in one pass.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const PendingWrite& a, const PendingWrite& b) {
                     return a.addr < b.addr;
                   });
  const std::uint64_t step_salt =
      util::mix64(seed_, ledger_.steps);
  std::size_t i = 0;
  while (i < pending_.size()) {
    std::size_t j = i;
    while (j < pending_.size() && pending_[j].addr == pending_[i].addr) ++j;
    const std::size_t addr = pending_[i].addr;
    if (j - i > 1) ledger_.conflicts += 1;
    switch (policy_) {
      case WritePolicy::kArbitrary: {
        // Seeded random winner: every (seed, step, cell) picks an
        // order-independent champion among the contending processors.
        std::size_t win = i;
        std::uint64_t best = 0;
        for (std::size_t k = i; k < j; ++k) {
          std::uint64_t ticket =
              util::mix64(step_salt ^ addr, pending_[k].proc);
          if (k == i || ticket > best) {
            best = ticket;
            win = k;
          }
        }
        memory_[addr] = pending_[win].value;
        break;
      }
      case WritePolicy::kPriority: {
        std::size_t win = i;
        for (std::size_t k = i + 1; k < j; ++k)
          if (pending_[k].proc < pending_[win].proc) win = k;
        memory_[addr] = pending_[win].value;
        break;
      }
      case WritePolicy::kCombineMin: {
        Word m = pending_[i].value;
        for (std::size_t k = i + 1; k < j; ++k)
          m = std::min(m, pending_[k].value);
        memory_[addr] = m;
        break;
      }
      case WritePolicy::kCombineSum: {
        Word s = 0;
        for (std::size_t k = i; k < j; ++k) s += pending_[k].value;
        memory_[addr] = s;
        break;
      }
    }
    i = j;
  }
  pending_.clear();
}

}  // namespace logcc::pram
