// Shiloach–Vishkin / Awerbuch–Shiloach connected components executed *on* the
// Machine simulator, one PRAM step at a time.
//
// This is the fidelity witness for the substrate: it demonstrates that the
// simulator's CRCW semantics support the classical O(log n)-step algorithm,
// that its answer is independent of the write-resolution policy, and it lets
// benches report exact step/work ledgers for the baseline the paper's
// introduction starts from.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "pram/machine.hpp"

namespace logcc::pram {

struct SvResult {
  std::vector<graph::VertexId> labels;  // root id per vertex
  std::uint64_t iterations = 0;         // hook+shortcut iterations
  Ledger ledger;                        // machine cost ledger
};

/// Runs Awerbuch–Shiloach (the simplified Shiloach–Vishkin) on a fresh
/// Machine with the given write policy and seed.
SvResult shiloach_vishkin_on_pram(const graph::EdgeList& el,
                                  WritePolicy policy = WritePolicy::kArbitrary,
                                  std::uint64_t seed = 1);

}  // namespace logcc::pram
