#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace logcc::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() >= 2) {
    double ss = 0.0;
    for (double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  s.median = percentile(xs, 50.0);
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  LOGCC_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  LOGCC_CHECK(x.size() == y.size());
  LOGCC_CHECK(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  LinearFit f;
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    f.slope = 0.0;
    f.intercept = sy / n;
  } else {
    f.slope = (n * sxy - sx * sy) / denom;
    f.intercept = (sy - f.slope * sx) / n;
  }
  double ybar = sy / n, ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double pred = f.slope * x[i] + f.intercept;
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
    ss_res += (y[i] - pred) * (y[i] - pred);
  }
  f.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

LinearFit log2_fit(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    LOGCC_CHECK(x[i] > 0.0);
    lx[i] = std::log2(x[i]);
  }
  return linear_fit(lx, y);
}

Summary Accumulator::summary() const { return summarize(xs_); }

}  // namespace logcc::util
