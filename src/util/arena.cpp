#include "util/arena.hpp"

namespace logcc::util {

namespace {
thread_local MonotonicArena* tl_active_arena = nullptr;
}  // namespace

MonotonicArena* active_scratch_arena() { return tl_active_arena; }

ScratchArenaScope::ScratchArenaScope(MonotonicArena* arena)
    : previous_(tl_active_arena) {
  tl_active_arena = arena;
}

ScratchArenaScope::~ScratchArenaScope() { tl_active_arena = previous_; }

void scratch_arena_round_reset() {
  if (tl_active_arena) tl_active_arena->reset();
}

namespace {
// One arena per worker thread, created on the worker itself so its blocks
// are first-touched (hence NUMA-resident) where they are used. The first
// block is sized to cover a chunk's whole scratch stack (in-bucket sort
// staging + counting grids) outright: lane growth events are rare, and a
// prewarmed lane is allocation-free from its first dispatch.
MonotonicArena& lane_arena() {
  thread_local MonotonicArena arena(/*first_block_bytes=*/std::size_t{1}
                                    << 20);
  return arena;
}
}  // namespace

void prewarm_worker_arena() {
  // Force the first block into existence at thread startup — outside any
  // measured steady-state window, and regardless of when (or whether) work
  // stealing first routes a scratch-using chunk to this lane.
  MonotonicArena& a = lane_arena();
  a.alloc<std::byte>(1);
  a.reset();
}

WorkerArenaScope::WorkerArenaScope() : installed_(tl_active_arena == nullptr) {
  if (installed_) tl_active_arena = &lane_arena();
}

WorkerArenaScope::~WorkerArenaScope() {
  if (installed_) {
    // All lane scratch is dead (LIFO); rewind and consolidate so the
    // steady state is one retained allocation-free block per lane.
    tl_active_arena->reset();
    tl_active_arena = nullptr;
  }
}

}  // namespace logcc::util
