#include "util/arena.hpp"

namespace logcc::util {

namespace {
thread_local MonotonicArena* tl_active_arena = nullptr;
}  // namespace

MonotonicArena* active_scratch_arena() { return tl_active_arena; }

ScratchArenaScope::ScratchArenaScope(MonotonicArena* arena)
    : previous_(tl_active_arena) {
  tl_active_arena = arena;
}

ScratchArenaScope::~ScratchArenaScope() { tl_active_arena = previous_; }

void scratch_arena_round_reset() {
  if (tl_active_arena) tl_active_arena->reset();
}

}  // namespace logcc::util
