// Stable LSD radix sort on 64-bit keys — the in-bucket sort behind the
// parallel dedup paths (core/building_blocks.cpp, baselines/lt_family.cpp).
//
// The dedup kernels partition records into buckets (by mixed high bits of
// the smaller endpoint) and sort each bucket independently on a worker
// lane. Those per-bucket sorts were comparison sorts; for the packed
// (u << 32 | v) keys the buckets actually hold, a counting radix does the
// same reordering in a handful of streaming passes:
//
//   - ONE counting pass builds all eight digit histograms at once;
//   - digit passes whose histogram is a single bin (all keys share that
//     byte — the common case: keys span ~2 log2(n) bits, so most of the
//     eight bytes are constant) are skipped outright;
//   - the remaining passes scatter between the caller's buffer and a
//     same-size scratch buffer (ScratchBuffer: round-arena backed on the
//     dispatching thread, lane-arena backed on pool/OMP workers — no heap
//     in steady state either way).
//
// The sort is deterministic and stable by construction: output depends
// only on the input sequence, never on thread count or timing. Callers
// below kRadixSortCutoff should keep using std::sort — the histogram setup
// does not amortise on tiny buckets. Both paths must (and do, for the
// dedup callers: they canonicalise equal-key runs afterwards) produce the
// same final contents, so the per-bucket size cutoff — a pure function of
// the input — cannot break thread-count invariance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "util/arena.hpp"

namespace logcc::util {

/// Below this many records a comparison sort wins; callers use it to pick
/// the path per bucket (a pure function of bucket size — deterministic).
inline constexpr std::size_t kRadixSortCutoff = 256;

/// Sorts data[0..n) by ascending key(record) (a std::uint64_t). Stable.
/// Scratch comes from the active arena (heap fallback off-arena).
template <typename T, typename KeyFn>
void radix_sort_key64(T* data, std::size_t n, KeyFn&& key) {
  if (n < 2) return;
  constexpr int kPasses = 8;  // 8-bit digits over a 64-bit key
  std::size_t hist[kPasses][256] = {};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = key(data[i]);
    for (int d = 0; d < kPasses; ++d) ++hist[d][(k >> (8 * d)) & 0xff];
  }
  ScratchBuffer<T> tmp(n);
  T* src = data;
  T* dst = tmp.data();
  for (int d = 0; d < kPasses; ++d) {
    // Constant digit (all keys share this byte): nothing to move.
    if (hist[d][(key(src[0]) >> (8 * d)) & 0xff] == n) continue;
    std::size_t cur[256];
    std::size_t run = 0;
    for (int b = 0; b < 256; ++b) {
      cur[b] = run;
      run += hist[d][b];
    }
    for (std::size_t i = 0; i < n; ++i)
      dst[cur[(key(src[i]) >> (8 * d)) & 0xff]++] = src[i];
    T* t = src;
    src = dst;
    dst = t;
  }
  if (src != data) std::memcpy(data, src, n * sizeof(T));
}

}  // namespace logcc::util
