#include "util/failpoint.hpp"

#include <csignal>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace logcc::util::failpoint {

namespace {

// The catalog: every LOGCC_FAILPOINT site in the tree, by layer. arm()
// rejects names outside this list, so the kill-at-every-failpoint recovery
// suite (tests/test_recovery.cpp) iterating catalog() provably reaches
// every site.
constexpr const char* kCatalog[] = {
    // util/mmap_file
    "mmap_open_read",
    "mmap_map",
    "mmap_allocate",
    "mmap_sync",
    // serve/wal
    "wal_open",
    "wal_append_write",
    "wal_fsync",
    "wal_replay_read",
    // serve/checkpoint
    "checkpoint_open",
    "checkpoint_write",
    "checkpoint_sync",
    "checkpoint_before_rename",
    "checkpoint_after_rename",
    // serve/connectivity_engine durability hooks
    "engine_after_wal_append",
    "engine_before_publish",
    "engine_after_checkpoint",
    // util/thread_pool
    "thread_pool_dispatch",
};

struct Armed {
  Action action = Action::kError;
  std::uint64_t skip_hits = 0;
  std::uint64_t delay_ms = 0;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Armed> armed;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives every user
  return *r;
}

bool in_catalog(const std::string& name) {
  for (const char* known : kCatalog)
    if (name == known) return true;
  return false;
}

[[noreturn]] void crash_now() {
  // The closest in-process stand-in for power loss: no atexit handlers, no
  // stream flushes, no stack unwinding. Data not yet in the page cache via
  // write(2) is lost exactly as a real kill -9 would lose it.
#if defined(__unix__) || defined(__APPLE__)
  ::kill(::getpid(), SIGKILL);
#endif
  std::abort();  // unreachable on POSIX; keeps non-POSIX builds honest
}

// Environment arming runs before main() so LOGCC_FAILPOINT=... affects a
// whole binary run (the CI crash-recovery smoke drives cc_serve this way).
const bool g_env_armed = [] {
  if (const char* spec = std::getenv("LOGCC_FAILPOINT")) {
    std::string error;
    if (!arm_from_spec(spec, &error)) {
      std::fprintf(stderr, "LOGCC_FAILPOINT: %s\n", error.c_str());
      std::abort();  // a typo'd injection spec must never pass silently
    }
  }
  return true;
}();

}  // namespace

std::atomic<int> g_armed_count{0};

std::span<const char* const> catalog() { return kCatalog; }

void arm(const std::string& name, Action action, std::uint64_t skip_hits,
         std::uint64_t delay_ms) {
  LOGCC_CHECK_MSG(in_catalog(name), "failpoint name not in the catalog");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const bool fresh = r.armed.find(name) == r.armed.end();
  r.armed[name] = Armed{action, skip_hits, delay_ms, 0};
  if (fresh) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.armed.erase(name) > 0)
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  g_armed_count.fetch_sub(static_cast<int>(r.armed.size()),
                          std::memory_order_relaxed);
  r.armed.clear();
}

bool is_armed(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.armed.find(name) != r.armed.end();
}

std::uint64_t hits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.armed.find(name);
  return it == r.armed.end() ? 0 : it->second.hits;
}

bool should_fail(const char* name) {
  Registry& r = registry();
  std::uint64_t delay_ms = 0;
  bool fail = false;
  bool crash = false;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.armed.find(name);
    if (it == r.armed.end()) return false;
    Armed& a = it->second;
    a.hits += 1;
    if (a.hits <= a.skip_hits) return false;
    switch (a.action) {
      case Action::kError:
        fail = true;
        break;
      case Action::kOnce:
        fail = true;
        r.armed.erase(it);
        g_armed_count.fetch_sub(1, std::memory_order_relaxed);
        break;
      case Action::kCrash:
        crash = true;
        break;
      case Action::kDelay:
        delay_ms = a.delay_ms;
        break;
    }
  }
  if (crash) crash_now();
  if (delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  return fail;
}

bool arm_from_spec(const std::string& spec, std::string* error) {
  // name:action[,name:action...]; action = error | once | crash | delay:MS
  // (an optional trailing :skip=N field delays the action to the N+1st hit).
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    std::vector<std::string> fields;
    std::size_t fpos = 0;
    while (true) {
      std::size_t colon = entry.find(':', fpos);
      if (colon == std::string::npos) {
        fields.push_back(entry.substr(fpos));
        break;
      }
      fields.push_back(entry.substr(fpos, colon - fpos));
      fpos = colon + 1;
    }
    if (fields.size() < 2 || !in_catalog(fields[0])) {
      if (error)
        *error = "bad failpoint entry '" + entry +
                 "' (want name:action with a cataloged name)";
      return false;
    }
    const std::string& name = fields[0];
    const std::string& action = fields[1];
    std::uint64_t delay_ms = 0;
    std::uint64_t skip = 0;
    std::size_t next_field = 2;
    Action a;
    if (action == "error") {
      a = Action::kError;
    } else if (action == "once") {
      a = Action::kOnce;
    } else if (action == "crash") {
      a = Action::kCrash;
    } else if (action == "delay") {
      a = Action::kDelay;
      if (fields.size() <= next_field) {
        if (error) *error = "delay action needs ':MS' in '" + entry + "'";
        return false;
      }
      delay_ms = std::strtoull(fields[next_field].c_str(), nullptr, 10);
      ++next_field;
    } else {
      if (error)
        *error = "unknown failpoint action '" + action + "' in '" + entry +
                 "' (want error|once|crash|delay:MS)";
      return false;
    }
    if (fields.size() > next_field) {
      const std::string& f = fields[next_field];
      if (f.rfind("skip=", 0) != 0) {
        if (error) *error = "unexpected trailing field '" + f + "'";
        return false;
      }
      skip = std::strtoull(f.c_str() + 5, nullptr, 10);
      ++next_field;
    }
    if (fields.size() > next_field) {
      if (error) *error = "too many fields in '" + entry + "'";
      return false;
    }
    arm(name, a, skip, delay_ms);
  }
  return true;
}

}  // namespace logcc::util::failpoint
