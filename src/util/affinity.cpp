#include "util/affinity.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace logcc::util {

namespace {

PinMode parse_pin_mode() {
  const char* env = std::getenv("LOGCC_PIN");
  if (!env || !*env || std::strcmp(env, "none") == 0) return PinMode::kNone;
  if (std::strcmp(env, "compact") == 0) return PinMode::kCompact;
  if (std::strcmp(env, "spread") == 0) return PinMode::kSpread;
  // A typo'd mode must not silently measure the wrong placement.
  std::fprintf(stderr,
               "logcc: unknown LOGCC_PIN '%s' (want none|compact|spread); "
               "not pinning\n",
               env);
  return PinMode::kNone;
}

int detect_numa_nodes() {
#if defined(__linux__)
  // Count /sys/devices/system/node/node<k> entries. Probing k in order is
  // enough: Linux numbers possible nodes densely from 0.
  int nodes = 0;
  for (;; ++nodes) {
    char path[64];
    std::snprintf(path, sizeof(path), "/sys/devices/system/node/node%d",
                  nodes);
    std::FILE* f = std::fopen(path, "r");
    if (!f) break;
    std::fclose(f);
    if (nodes >= 1024) break;  // defensive bound
  }
  return nodes > 0 ? nodes : 1;
#else
  return 1;
#endif
}

int ncpus() {
  static const int n =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  return n;
}

/// lane → CPU under `mode`. Spread round-robins lanes across nodes assuming
/// the common contiguous-per-node CPU numbering (node j owns CPUs
/// [j*ncpus/nodes, (j+1)*ncpus/nodes)); with one node it reduces to
/// compact's (lane mod ncpus).
int cpu_for_lane(PinMode mode, std::size_t lane) {
  const int cpus = ncpus();
  if (mode == PinMode::kCompact) return static_cast<int>(lane % cpus);
  const int nodes = numa_node_count();
  if (nodes <= 1) return static_cast<int>(lane % cpus);
  const int per_node = cpus / nodes > 0 ? cpus / nodes : 1;
  const int node = static_cast<int>(lane % nodes);
  const int slot = static_cast<int>(lane / nodes) % per_node;
  return (node * per_node + slot) % cpus;
}

}  // namespace

PinMode pin_mode() {
  static const PinMode mode = parse_pin_mode();
  return mode;
}

const char* pin_mode_name() {
  switch (pin_mode()) {
    case PinMode::kNone: return "none";
    case PinMode::kCompact: return "compact";
    case PinMode::kSpread: return "spread";
  }
  return "?";
}

int numa_node_count() {
  static const int nodes = detect_numa_nodes();
  return nodes;
}

void pin_current_thread(std::size_t lane) {
  const PinMode mode = pin_mode();
  if (mode == PinMode::kNone || lane == 0) return;
#if defined(__linux__)
  // Idempotent per thread: repeat dispatches on the same worker re-request
  // the same CPU; skip the syscall once it stuck.
  thread_local int pinned_cpu = -1;
  const int cpu = cpu_for_lane(mode, lane);
  if (cpu == pinned_cpu) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0)
    pinned_cpu = cpu;
#else
  (void)lane;
#endif
}

}  // namespace logcc::util
