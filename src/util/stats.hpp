// Descriptive statistics and tiny regressions for the bench harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace logcc::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1), 0 if count < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Summarises a sample; empty input yields an all-zero Summary.
Summary summarize(std::span<const double> xs);

/// p-th percentile (0 <= p <= 100) by linear interpolation on the sorted
/// sample; empty input yields 0.
double percentile(std::span<const double> xs, double p);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination
};

/// Ordinary least squares y ~ slope*x + intercept. Needs >= 2 points.
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fits y ~ a * log2(x) + b — used to verify "rounds grow like log d".
/// x values must be positive.
LinearFit log2_fit(std::span<const double> x, std::span<const double> y);

/// Convenience: collect doubles then summarize.
class Accumulator {
 public:
  void add(double x) { xs_.push_back(x); }
  Summary summary() const;
  std::span<const double> values() const { return xs_; }
  std::size_t size() const { return xs_.size(); }

 private:
  std::vector<double> xs_;
};

}  // namespace logcc::util
