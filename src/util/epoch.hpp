// Epoch-swapped snapshot publication: one writer produces immutable
// snapshots, any number of readers load the current one without ever
// blocking on the producer.
//
// The pattern (the serve layer's ownership rule, see docs/ARCHITECTURE.md
// "Serving layer"): the writer builds a fresh snapshot off to the side,
// wraps it in a shared_ptr<const T>, and store()s it; readers load() a
// shared_ptr copy and keep a consistent view for as long as they hold it —
// the old epoch's snapshot is freed when its last reader drops the
// reference. Snapshots must be immutable after publication; EpochPtr
// deliberately only traffics in pointers-to-const.
//
// Implementation: std::atomic<std::shared_ptr> where the standard library
// provides it (lock-free-ish refcount publication), a tiny mutex-guarded
// pointer copy otherwise. Either way load() costs a refcount bump, never a
// wait on snapshot *production* — the writer does all heavy work before
// touching the cell. The epoch counter increments on every store, so
// readers and tests can detect swaps without comparing pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <version>

namespace logcc::util {

template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  explicit EpochPtr(std::shared_ptr<const T> initial) { store(initial); }

  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  /// Current snapshot (may be null before the first store). Wait-free with
  /// respect to snapshot production; safe from any thread.
  std::shared_ptr<const T> load() const {
#if defined(__cpp_lib_atomic_shared_ptr)
    return ptr_.load(std::memory_order_acquire);
#else
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
#endif
  }

  /// Publishes `next` as the new epoch's snapshot and bumps the epoch
  /// counter. Single writer at a time; concurrent load()s are fine.
  void store(std::shared_ptr<const T> next) {
#if defined(__cpp_lib_atomic_shared_ptr)
    ptr_.store(std::move(next), std::memory_order_release);
#else
    {
      std::lock_guard<std::mutex> lock(mu_);
      ptr_ = std::move(next);
    }
#endif
    epoch_.fetch_add(1, std::memory_order_release);
  }

  /// Number of store()s so far — the published generation.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
#if defined(__cpp_lib_atomic_shared_ptr)
  std::atomic<std::shared_ptr<const T>> ptr_;
#else
  mutable std::mutex mu_;
  std::shared_ptr<const T> ptr_;
#endif
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace logcc::util
