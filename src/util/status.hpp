// Typed error returns for the durability layer (docs/ARCHITECTURE.md
// "Durability & fault tolerance").
//
// The library's LOGCC_CHECK macros are programmer-error guards: they abort,
// because a violated invariant means the process state is untrustworthy.
// I/O failures are different — a full disk, a failed fsync, or a torn log
// tail are *environment* errors a serving process must survive and report.
// Every fallible path in serve/wal, serve/checkpoint and the engine's
// durability hooks returns a Status instead of aborting.
//
// Transient vs permanent: a Status can be marked transient (EINTR/EAGAIN
// class failures, injected "once" failpoints). retry_with_backoff() retries
// exactly those; permanent errors (corruption, ENOSPC, failed fsync) are
// returned to the caller immediately — retrying a failed fsync would hide
// data loss, not fix it.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <utility>

namespace logcc::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // caller misuse detectable at the API boundary
  kIoError,          // open/read/write/fsync/rename failure (errno attached)
  kCorruption,       // checksum mismatch, bad magic, impossible field
  kNotFound,         // expected file absent (recovery treats as "start fresh")
  kFailedPrecondition,  // object state forbids the operation
  kResourceExhausted,   // out of memory / disk budget
};

const char* to_string(StatusCode code);

class Status {
 public:
  /// Default is OK — `return {};` reads as success.
  Status() = default;

  static Status ok() { return {}; }
  static Status invalid_argument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status io_error(std::string msg, bool transient = false) {
    return Status(StatusCode::kIoError, std::move(msg), transient);
  }
  static Status corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status not_found(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status failed_precondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status resource_exhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  /// True when a bounded retry is a sensible response (EINTR/EAGAIN class).
  bool transient() const { return transient_; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "IO_ERROR: short write on 'edges.wal'" — for logs and test output.
  std::string to_string() const {
    if (is_ok()) return "OK";
    std::string s = logcc::util::to_string(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  Status(StatusCode code, std::string message, bool transient = false)
      : code_(code), message_(std::move(message)), transient_(transient) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  bool transient_ = false;
};

inline const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "?";
}

/// Runs `fn` up to `attempts` times, sleeping `base_delay` doubled per
/// retry between attempts, while the returned Status is transient(). The
/// first OK or non-transient Status is returned as-is; a still-transient
/// final attempt's Status is returned after the budget runs out.
inline Status retry_with_backoff(
    const std::function<Status()>& fn, int attempts = 3,
    std::chrono::milliseconds base_delay = std::chrono::milliseconds(1)) {
  Status s;
  auto delay = base_delay;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    s = fn();
    if (s.is_ok() || !s.transient()) return s;
    if (attempt + 1 < attempts) {
      std::this_thread::sleep_for(delay);
      delay *= 2;
    }
  }
  return s;
}

}  // namespace logcc::util
