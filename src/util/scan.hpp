// Blocked data-parallel primitives on top of parallel_for: prefix sum,
// reduce, pack/filter, and an atomic min helper.
//
// Everything here is DETERMINISTIC regardless of thread count: work is split
// into blocks whose number depends only on the input size, per-block partials
// are combined in block order, and pack/filter preserve input order. That
// determinism is the contract the algorithm layer builds on — a PRAM step
// implemented with these primitives produces bit-identical output under
// OMP_NUM_THREADS=1 and =N (see tests/test_scan.cpp).
//
// Below `kSerialGrain` elements every primitive degrades to the obvious
// serial loop, so callers never pay threading overhead on small inputs.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/parallel.hpp"

namespace logcc::util {

/// Number of blocks a range of `n` elements is split into. Depends only on
/// `n` (never on the thread count) so blocked results are reproducible.
std::size_t scan_block_count(std::size_t n);

namespace detail {
inline std::size_t block_begin(std::size_t n, std::size_t blocks,
                               std::size_t b) {
  return n / blocks * b + std::min(b, n % blocks);
}
}  // namespace detail

/// Lock-free fetch-min on a plain integer slot. Relaxed ordering: callers
/// combine it with the parallel_for join for visibility.
template <typename T>
inline void atomic_min(T& slot, T value) {
  std::atomic_ref<T> ref(slot);
  T cur = ref.load(std::memory_order_relaxed);
  while (value < cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Reduction of map(i) over [begin, end) with the associative op `op`.
/// Per-block partials fold left-to-right and blocks combine in block order,
/// so the result is identical for every thread count (for associative ops).
template <typename T, typename Map, typename Op>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Map&& map,
                  Op&& op) {
  if (end <= begin) return identity;
  const std::size_t n = end - begin;
  if (n < kSerialGrain) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = op(acc, map(i));
    return acc;
  }
  const std::size_t blocks = scan_block_count(n);
  // Raw array, NOT std::vector<T>: with T=bool a vector would bit-pack the
  // partials and concurrent per-block writes become racy word RMWs.
  std::unique_ptr<T[]> partial(new T[blocks]());
  parallel_for_blocks(blocks, [&](std::size_t b) {
    T acc = identity;
    const std::size_t lo = begin + detail::block_begin(n, blocks, b);
    const std::size_t hi = begin + detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, map(i));
    partial[b] = acc;
  });
  T acc = identity;
  for (std::size_t b = 0; b < blocks; ++b) acc = op(acc, partial[b]);
  return acc;
}

/// Exclusive prefix sum in place; returns the total. Blocked three-phase
/// scan: per-block sums, serial scan over the (few) block sums, per-block
/// rescan with the block offset.
template <typename T>
T parallel_prefix_sum(T* data, std::size_t n) {
  if (n == 0) return T{0};
  if (n < kSerialGrain) {
    T run{0};
    for (std::size_t i = 0; i < n; ++i) {
      T next = run + data[i];
      data[i] = run;
      run = next;
    }
    return run;
  }
  const std::size_t blocks = scan_block_count(n);
  std::vector<T> sums(blocks);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    T acc{0};
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      acc += data[i];
    sums[b] = acc;
  });
  T total{0};
  for (std::size_t b = 0; b < blocks; ++b) {
    T next = total + sums[b];
    sums[b] = total;
    total = next;
  }
  parallel_for_blocks(blocks, [&](std::size_t b) {
    T run = sums[b];
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i) {
      T next = run + data[i];
      data[i] = run;
      run = next;
    }
  });
  return total;
}

template <typename T>
T parallel_prefix_sum(std::vector<T>& data) {
  return parallel_prefix_sum(data.data(), data.size());
}

/// Stable filter into a fresh vector (the non-destructive pack).
///
/// `keep` MUST be deterministic and side-effect free: it is evaluated twice
/// per element (count pass, then write pass), and a disagreement between
/// the passes overruns a block's reserved output range.
template <typename T, typename Pred>
std::vector<T> parallel_filter(const std::vector<T>& v, Pred&& keep) {
  const std::size_t n = v.size();
  std::vector<T> out;
  if (n < kSerialGrain) {
    for (std::size_t i = 0; i < n; ++i)
      if (keep(v[i])) out.push_back(v[i]);
    return out;
  }
  const std::size_t blocks = scan_block_count(n);
  std::vector<std::size_t> offset(blocks);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t count = 0;
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      count += keep(v[i]) ? 1 : 0;
    offset[b] = count;
  });
  const std::size_t kept = parallel_prefix_sum(offset.data(), blocks);
  out.resize(kept);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t w = offset[b];
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      if (keep(v[i])) out[w++] = v[i];
  });
  return out;
}

/// Stable pack: keeps exactly the elements with keep(v[i]) true, in their
/// original order, and shrinks `v`. Returns the number removed. Same
/// determinism requirement on `keep` as parallel_filter.
///
/// The parallel path scatters into a fresh buffer and moves it into `v`.
/// In-place scatter would race: when an early block keeps few elements, a
/// later block's write range [off_b, off_b + count_b) can land inside a
/// source region another block is still reading concurrently.
template <typename T, typename Pred>
std::size_t parallel_pack(std::vector<T>& v, Pred&& keep) {
  const std::size_t n = v.size();
  if (n < kSerialGrain) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (keep(v[i])) v[w++] = v[i];
    const std::size_t removed = n - w;
    v.resize(w);
    return removed;
  }
  std::vector<T> out = parallel_filter(v, keep);
  const std::size_t removed = n - out.size();
  v = std::move(out);
  return removed;
}


}  // namespace logcc::util
