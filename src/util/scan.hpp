// Blocked data-parallel primitives on top of parallel_for: prefix sum,
// reduce, pack/filter, and an atomic min helper.
//
// Everything here is DETERMINISTIC regardless of thread count: work is split
// into blocks whose number depends only on the input size, per-block partials
// are combined in block order, and pack/filter preserve input order. That
// determinism is the contract the algorithm layer builds on — a PRAM step
// implemented with these primitives produces bit-identical output under
// OMP_NUM_THREADS=1 and =N (see tests/test_scan.cpp) and under every
// dispatch backend (pool / OpenMP / serial, see parallel.hpp).
//
// Below `kSerialGrain` elements every primitive degrades to the obvious
// serial loop, so callers never pay threading overhead on small inputs.
//
// Internal temporaries (per-block partials, counting grids, pack staging)
// are util::ScratchBuffer: when a round-scratch arena is active (see
// util/arena.hpp and core/round_arena.hpp) they cost zero heap allocations
// in steady state; without one they fall back to the heap. The `_into`
// variants additionally let round loops supply the *result* storage, so a
// whole round can run allocation-free.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/arena.hpp"
#include "util/parallel.hpp"

namespace logcc::util {

/// Number of blocks a range of `n` elements is split into. Depends only on
/// `n` (never on the thread count) so blocked results are reproducible.
std::size_t scan_block_count(std::size_t n);

namespace detail {
inline std::size_t block_begin(std::size_t n, std::size_t blocks,
                               std::size_t b) {
  return n / blocks * b + std::min(b, n % blocks);
}
}  // namespace detail

/// Lock-free fetch-min on a plain integer slot. Relaxed ordering: callers
/// combine it with the parallel_for join for visibility. Precondition: the
/// slot outlives the parallel region and is only accessed through atomic
/// helpers within it. Postcondition (after the join): slot holds the min of
/// its prior value and every offered value — commutative, hence
/// thread-count invariant.
template <typename T>
inline void atomic_min(T& slot, T value) {
  std::atomic_ref<T> ref(slot);
  T cur = ref.load(std::memory_order_relaxed);
  while (value < cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Fetch-max counterpart of atomic_min. With keys packed as
/// (priority << k) | id, this realises the CRCW "maximum-priority write
/// wins" resolution deterministically.
template <typename T>
inline void atomic_max(T& slot, T value) {
  std::atomic_ref<T> ref(slot);
  T cur = ref.load(std::memory_order_relaxed);
  while (value > cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Relaxed atomic store for idempotent flag writes: every concurrent writer
/// stores the same value, so the result is thread-count invariant — the
/// atomic_ref only exists so the (benign) write race is race-free under
/// TSan.
template <typename T>
inline void relaxed_store(T& slot, T value) {
  std::atomic_ref<T>(slot).store(value, std::memory_order_relaxed);
}

/// Reduction of map(i) over [begin, end) with the associative op `op`.
/// Per-block partials fold left-to-right and blocks combine in block order,
/// so the result is identical for every thread count (for associative ops).
template <typename T, typename Map, typename Op>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Map&& map,
                  Op&& op) {
  if (end <= begin) return identity;
  const std::size_t n = end - begin;
  if (n < kSerialGrain) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = op(acc, map(i));
    return acc;
  }
  const std::size_t blocks = scan_block_count(n);
  // Raw storage, NOT std::vector<T>: with T=bool a vector would bit-pack
  // the partials and concurrent per-block writes become racy word RMWs.
  ScratchBuffer<T> partial(blocks);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    T acc = identity;
    const std::size_t lo = begin + detail::block_begin(n, blocks, b);
    const std::size_t hi = begin + detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, map(i));
    partial[b] = acc;
  });
  T acc = identity;
  for (std::size_t b = 0; b < blocks; ++b) acc = op(acc, partial[b]);
  return acc;
}

/// Exclusive prefix sum in place; returns the total. Blocked three-phase
/// scan: per-block sums, serial scan over the (few) block sums, per-block
/// rescan with the block offset. Postcondition: data[i] holds the sum of
/// the original data[0..i), exactly as the serial loop would produce (for
/// associative, commutative +; floating-point callers accept the blocked
/// association order, which is still thread-count invariant).
template <typename T>
T parallel_prefix_sum(T* data, std::size_t n) {
  if (n == 0) return T{0};
  if (n < kSerialGrain) {
    T run{0};
    for (std::size_t i = 0; i < n; ++i) {
      T next = run + data[i];
      data[i] = run;
      run = next;
    }
    return run;
  }
  const std::size_t blocks = scan_block_count(n);
  ScratchBuffer<T> sums(blocks);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    T acc{0};
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      acc += data[i];
    sums[b] = acc;
  });
  T total{0};
  for (std::size_t b = 0; b < blocks; ++b) {
    T next = total + sums[b];
    sums[b] = total;
    total = next;
  }
  parallel_for_blocks(blocks, [&](std::size_t b) {
    T run = sums[b];
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i) {
      T next = run + data[i];
      data[i] = run;
      run = next;
    }
  });
  return total;
}

template <typename T>
T parallel_prefix_sum(std::vector<T>& data) {
  return parallel_prefix_sum(data.data(), data.size());
}

/// Stable filter into a fresh vector (the non-destructive pack).
///
/// `keep` MUST be deterministic and side-effect free: it is evaluated twice
/// per element (count pass, then write pass), and a disagreement between
/// the passes overruns a block's reserved output range.
template <typename T, typename Pred>
std::vector<T> parallel_filter(const std::vector<T>& v, Pred&& keep) {
  const std::size_t n = v.size();
  std::vector<T> out;
  if (n < kSerialGrain) {
    for (std::size_t i = 0; i < n; ++i)
      if (keep(v[i])) out.push_back(v[i]);
    return out;
  }
  const std::size_t blocks = scan_block_count(n);
  ScratchBuffer<std::size_t> offset(blocks);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t count = 0;
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      count += keep(v[i]) ? 1 : 0;
    offset[b] = count;
  });
  const std::size_t kept = parallel_prefix_sum(offset.data(), blocks);
  out.resize(kept);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t w = offset[b];
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      if (keep(v[i])) out[w++] = v[i];
  });
  return out;
}

/// Stable pack: keeps exactly the elements with keep(v[i]) true, in their
/// original order, and shrinks `v`. Returns the number removed. Same
/// determinism requirement on `keep` as parallel_filter.
///
/// The parallel path scatters into a staging buffer and copies back.
/// In-place scatter would race: when an early block keeps few elements, a
/// later block's write range [off_b, off_b + count_b) can land inside a
/// source region another block is still reading concurrently. With an
/// active scratch arena the staging buffer is arena-backed, so a
/// steady-state pack allocates nothing; `v` only ever shrinks.
template <typename T, typename Pred>
std::size_t parallel_pack(std::vector<T>& v, Pred&& keep) {
  const std::size_t n = v.size();
  if (n < kSerialGrain) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (keep(v[i])) v[w++] = v[i];
    const std::size_t removed = n - w;
    v.resize(w);
    return removed;
  }
  const std::size_t blocks = scan_block_count(n);
  ScratchBuffer<std::size_t> offset(blocks);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t count = 0;
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      count += keep(v[i]) ? 1 : 0;
    offset[b] = count;
  });
  const std::size_t kept = parallel_prefix_sum(offset.data(), blocks);
  ScratchBuffer<T> staged(kept);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t w = offset[b];
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      if (keep(v[i])) staged[w++] = v[i];
  });
  v.resize(kept);
  T* dst = v.data();
  const T* src = staged.data();
  const std::size_t copy_blocks = scan_block_count(kept);
  parallel_for_blocks(copy_blocks, [&](std::size_t b) {
    const std::size_t lo = detail::block_begin(kept, copy_blocks, b);
    const std::size_t hi = detail::block_begin(kept, copy_blocks, b + 1);
    std::copy(src + lo, src + hi, dst + lo);
  });
  return n - kept;
}

/// Segmented pack ("multi-emit"): index i contributes count(i) items,
/// written by emit(i, dst) into dst[0 .. count(i)); the output concatenates
/// contributions in index order. Generalises parallel_filter from 0/1 items
/// per index to any per-index count — the shape of "every directed arc
/// yields its table-fill items".
///
/// `count` and `emit` MUST be deterministic and agree (emit writes exactly
/// count(i) items): they run in separate passes, and a disagreement
/// overruns a block's reserved output range.
template <typename T, typename CountFn, typename EmitFn>
void parallel_emit(std::size_t n, std::vector<T>& out, CountFn&& count,
                   EmitFn&& emit) {
  out.clear();
  if (n == 0) return;
  if (n < kSerialGrain) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = count(i);
      if (c == 0) continue;
      const std::size_t base = out.size();
      out.resize(base + c);
      emit(i, out.data() + base);
    }
    return;
  }
  const std::size_t blocks = scan_block_count(n);
  ScratchBuffer<std::size_t> offset(blocks);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t c = 0;
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      c += count(i);
    offset[b] = c;
  });
  const std::size_t total = parallel_prefix_sum(offset.data(), blocks);
  out.resize(total);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t w = offset[b];
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i) {
      const std::size_t c = count(i);
      if (c == 0) continue;
      emit(i, out.data() + w);
      w += c;
    }
  });
}

/// Deterministic histogram: returns counts where counts[k] = |{i : bin(i)
/// == k}|. Per-block tallies combine in block order (sums commute, so the
/// result is thread-count invariant either way). The counting grid is
/// blocks x bins words — keep `bins` modest (levels, buckets, ...), not
/// vertex-scale.
template <typename BinFn>
std::vector<std::uint64_t> parallel_histogram(std::size_t n, std::size_t bins,
                                              BinFn&& bin) {
  std::vector<std::uint64_t> counts(bins, 0);
  if (n == 0 || bins == 0) return counts;
  if (n < kSerialGrain) {
    for (std::size_t i = 0; i < n; ++i) ++counts[bin(i)];
    return counts;
  }
  const std::size_t blocks = scan_block_count(n);
  ScratchBuffer<std::uint64_t> grid(blocks * bins, /*zeroed=*/true);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::uint64_t* row = grid.data() + b * bins;
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      ++row[bin(i)];
  });
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t k = 0; k < bins; ++k) counts[k] += grid[b * bins + k];
  return counts;
}

/// Stable bucket partition, span form: scatters the n elements at `in` into
/// `out` (disjoint from `in`, at least n elements) so that bucket k
/// occupies [begin[k], begin[k+1]) of the caller-provided `begin` array
/// (buckets + 1 entries, fully overwritten), with input order preserved
/// inside every bucket. bucket(x) must be deterministic and < buckets; keep
/// `buckets` modest (the counting grid is blocks x buckets words). Round
/// loops use this form with arena/hoisted storage so a steady-state
/// partition allocates nothing.
template <typename T, typename BucketFn>
void parallel_bucket_partition_into(const T* in, std::size_t n, T* out,
                                    std::span<std::size_t> begin,
                                    std::size_t buckets, BucketFn&& bucket) {
  for (std::size_t k = 0; k <= buckets; ++k) begin[k] = 0;
  if (n == 0) return;
  if (n < kSerialGrain || buckets == 1) {
    for (std::size_t i = 0; i < n; ++i) ++begin[bucket(in[i]) + 1];
    for (std::size_t k = 0; k < buckets; ++k) begin[k + 1] += begin[k];
    ScratchBuffer<std::size_t> cur(buckets);
    std::copy(begin.data(), begin.data() + buckets, cur.data());
    for (std::size_t i = 0; i < n; ++i) out[cur[bucket(in[i])]++] = in[i];
    return;
  }
  const std::size_t blocks = scan_block_count(n);
  // counts[b * buckets + k]: elements of block b landing in bucket k.
  ScratchBuffer<std::size_t> counts(blocks * buckets, /*zeroed=*/true);
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t* row = counts.data() + b * buckets;
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      ++row[bucket(in[i])];
  });
  // Column-major exclusive scan: per-(block, bucket) write cursors, plus the
  // bucket boundaries. Earlier blocks write earlier inside a bucket, and a
  // block preserves input order, so the scatter is stable.
  std::size_t run = 0;
  for (std::size_t k = 0; k < buckets; ++k) {
    begin[k] = run;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t c = counts[b * buckets + k];
      counts[b * buckets + k] = run;
      run += c;
    }
  }
  begin[buckets] = run;
  parallel_for_blocks(blocks, [&](std::size_t b) {
    std::size_t* row = counts.data() + b * buckets;
    const std::size_t hi = detail::block_begin(n, blocks, b + 1);
    for (std::size_t i = detail::block_begin(n, blocks, b); i < hi; ++i)
      out[row[bucket(in[i])]++] = in[i];
  });
}

/// Vector-returning convenience wrapper over
/// parallel_bucket_partition_into (same semantics; `out` is resized).
template <typename T, typename BucketFn>
std::vector<std::size_t> parallel_bucket_partition(const std::vector<T>& in,
                                                   std::vector<T>& out,
                                                   std::size_t buckets,
                                                   BucketFn&& bucket) {
  std::vector<std::size_t> begin(buckets + 1);
  out.resize(in.size());
  parallel_bucket_partition_into(in.data(), in.size(), out.data(), begin,
                                 buckets, bucket);
  return begin;
}

/// Stable group-by for keys in [0, num_keys): fills `out` with the items of
/// `in` ordered by key, input-stable within each key, and returns the
/// num_keys + 1 segment offsets. Equivalent to a stable counting sort, but
/// two-level — a coarse stable partition over contiguous key ranges, then
/// an in-bucket counting sort — so the parallel counting grids stay small
/// even for vertex-scale key spaces. Output is canonical (sorted, stable),
/// hence identical for every thread count and for the serial path.
template <typename T, typename KeyFn>
void parallel_group_by_into(const std::vector<T>& in, std::vector<T>& out,
                            std::size_t num_keys, KeyFn&& key,
                            std::span<std::size_t> offsets) {
  const std::size_t n = in.size();
  out.resize(n);
  if (n == 0 || n < kSerialGrain) {
    for (std::size_t k = 0; k <= num_keys; ++k) offsets[k] = 0;
    if (n == 0) return;
    for (const T& x : in) ++offsets[key(x) + 1];
    for (std::size_t k = 0; k < num_keys; ++k) offsets[k + 1] += offsets[k];
    ScratchBuffer<std::size_t> cur(num_keys);
    std::copy(offsets.data(), offsets.data() + num_keys, cur.data());
    for (const T& x : in) out[cur[key(x)]++] = x;
    return;
  }
  // Coarse ranges of q consecutive keys per bucket.
  const std::size_t max_buckets = std::min<std::size_t>(num_keys, 512);
  const std::size_t q = (num_keys + max_buckets - 1) / max_buckets;
  const std::size_t buckets = (num_keys + q - 1) / q;
  ScratchBuffer<T> tmp(n);
  ScratchBuffer<std::size_t> bucket_begin(buckets + 1);
  parallel_bucket_partition_into(
      in.data(), n, tmp.data(), bucket_begin.span(), buckets,
      [&](const T& x) { return key(x) / q; });
  parallel_for_blocks(buckets, [&](std::size_t k) {
    const std::size_t lo_key = k * q;
    const std::size_t hi_key = std::min(num_keys, lo_key + q);
    const std::size_t lo = bucket_begin[k], hi = bucket_begin[k + 1];
    // Private count buffer, exclusive scan into the bucket's disjoint
    // offsets slice [lo_key, hi_key), stable scatter. Arena scratch: on the
    // dispatching thread this draws from the round arena, on worker threads
    // from the per-lane arena the runtime installs (util/arena.hpp) — no
    // heap in steady state on either.
    ScratchBuffer<std::size_t> cur(hi_key - lo_key, /*zeroed=*/true);
    for (std::size_t i = lo; i < hi; ++i) ++cur[key(tmp[i]) - lo_key];
    std::size_t acc = lo;
    for (std::size_t k2 = lo_key; k2 < hi_key; ++k2) {
      const std::size_t c = cur[k2 - lo_key];
      offsets[k2] = acc;
      cur[k2 - lo_key] = acc;
      acc += c;
    }
    for (std::size_t i = lo; i < hi; ++i)
      out[cur[key(tmp[i]) - lo_key]++] = tmp[i];
  });
  offsets[num_keys] = n;
}

/// Vector-returning convenience wrapper over parallel_group_by_into.
template <typename T, typename KeyFn>
std::vector<std::size_t> parallel_group_by(const std::vector<T>& in,
                                           std::vector<T>& out,
                                           std::size_t num_keys, KeyFn&& key) {
  std::vector<std::size_t> offsets(num_keys + 1);
  parallel_group_by_into(in, out, num_keys, key, offsets);
  return offsets;
}

}  // namespace logcc::util
