// Text table / series printers used by the bench harness to regenerate the
// experiment tables and "figures" (figures are emitted as aligned numeric
// series plus an ASCII sparkline, which is what a paper plot reduces to in a
// terminal).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace logcc::util {

/// Column-aligned table with a header row. Cells are strings; numeric helpers
/// format in place.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent add* calls fill it left to right.
  TextTable& row();
  TextTable& add(std::string cell);
  TextTable& add_int(long long v);
  TextTable& add_double(double v, int precision = 3);

  /// Renders with column padding, a rule under the header, to `out`
  /// (defaults to stdout).
  void print(std::FILE* out = stdout) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// ASCII sparkline: scales ys into levels " .:-=+*#%@" — enough to eyeball a
/// trend in a log file.
std::string sparkline(const std::vector<double>& ys);

/// Prints a named (x, y) series with a sparkline footer; the textual stand-in
/// for a figure panel.
void print_series(const std::string& name, const std::vector<double>& xs,
                  const std::vector<double>& ys, const std::string& xlabel,
                  const std::string& ylabel, std::FILE* out = stdout);

}  // namespace logcc::util
