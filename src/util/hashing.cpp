#include "util/hashing.hpp"

namespace logcc::util {

PairwiseHash PairwiseHash::sample(Xoshiro256& rng) {
  std::uint64_t a = 1 + rng.below(kPrime - 1);  // a in [1, p)
  std::uint64_t b = rng.below(kPrime);          // b in [0, p)
  return PairwiseHash(a, b);
}

PairwiseHash PairwiseHash::from_seed(std::uint64_t seed, std::uint64_t stream) {
  Xoshiro256 rng(mix64(seed, stream));
  return sample(rng);
}

}  // namespace logcc::util
