// Lightweight runtime-check macros used across logcc.
//
// LOGCC_CHECK is always on (programmer-error guard, aborts with a message);
// LOGCC_DCHECK compiles out in NDEBUG builds and is meant for hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace logcc::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "LOGCC_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace logcc::util

#define LOGCC_CHECK(cond)                                            \
  do {                                                               \
    if (!(cond)) ::logcc::util::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define LOGCC_CHECK_MSG(cond, msg)                                       \
  do {                                                                   \
    if (!(cond))                                                         \
      ::logcc::util::check_failed(#cond, __FILE__, __LINE__, msg);       \
  } while (0)

#ifdef NDEBUG
#define LOGCC_DCHECK(cond) ((void)0)
#else
#define LOGCC_DCHECK(cond) LOGCC_CHECK(cond)
#endif
