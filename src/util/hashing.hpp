// Hash families used by the paper's algorithms.
//
// The paper (§2.2, §B.3) requires pairwise-independent hash functions: `h`
// for the per-vertex tables H(v), `h_B` for mapping vertices to blocks and
// `h_V` for hashing into tables. PairwiseHash implements the classic
// (a·x + b) mod p construction over the Mersenne prime p = 2^61 − 1, which is
// exactly pairwise independent on [p] and cheap to evaluate (no division).
//
// A processor "reads two words" (a and b) to evaluate it — matching the
// paper's remark that each hashing processor needs only O(1) private memory.
#pragma once

#include <cstdint>

#include "util/random.hpp"

namespace logcc::util {

/// Pairwise-independent hash over the Mersenne prime 2^61 - 1, reduced to a
/// caller-chosen range.
class PairwiseHash {
 public:
  static constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

  PairwiseHash() : a_(1), b_(0) {}

  /// Draws a random function from the family (a != 0 ensures injective-ish
  /// behaviour before range reduction).
  static PairwiseHash sample(Xoshiro256& rng);

  /// Deterministically derives a function from (seed, stream); used so each
  /// round of an algorithm gets an independent hash without carrying state.
  static PairwiseHash from_seed(std::uint64_t seed, std::uint64_t stream = 0);

  /// Raw value in [0, kPrime).
  std::uint64_t raw(std::uint64_t x) const {
    // (a*x + b) mod (2^61-1) using 128-bit multiply and Mersenne folding.
    __uint128_t t = static_cast<__uint128_t>(a_) * mod_p(x) + b_;
    return fold(t);
  }

  /// Value reduced to [0, range) by the multiply-shift map (keeps pairwise
  /// independence up to the usual 1/range rounding slack).
  std::uint64_t operator()(std::uint64_t x, std::uint64_t range) const {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(raw(x)) * range) >> 61);
  }

  std::uint64_t a() const { return a_; }
  std::uint64_t b() const { return b_; }

 private:
  PairwiseHash(std::uint64_t a, std::uint64_t b) : a_(a), b_(b) {}

  static std::uint64_t mod_p(std::uint64_t x) {
    std::uint64_t r = (x & kPrime) + (x >> 61);
    return r >= kPrime ? r - kPrime : r;
  }
  static std::uint64_t fold(__uint128_t t) {
    std::uint64_t lo = static_cast<std::uint64_t>(t) & kPrime;
    std::uint64_t hi = static_cast<std::uint64_t>(t >> 61);
    std::uint64_t r = lo + hi;
    if (r >= kPrime) r -= kPrime;
    // One more fold covers the full 128-bit range.
    std::uint64_t r2 = (r & kPrime) + (r >> 61);
    return r2 >= kPrime ? r2 - kPrime : r2;
  }

  std::uint64_t a_, b_;
};

/// Adversarial hash used by failure-injection tests: maps everything to a
/// single cell, forcing the maximum possible collision rate.
struct ConstantHash {
  std::uint64_t value = 0;
  std::uint64_t operator()(std::uint64_t, std::uint64_t range) const {
    return range == 0 ? 0 : value % range;
  }
};

}  // namespace logcc::util
