#include "util/thread_pool.hpp"

#include <algorithm>
#include "util/affinity.hpp"
#include "util/arena.hpp"
#include "util/failpoint.hpp"
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

namespace logcc::util {

namespace {

// Lane-claim loop spin budget before parking on the condition variable.
// Long enough that back-to-back round dispatches (the hot case) never pay a
// futex wake, short enough that an idle pool costs nothing measurable.
constexpr int kSpinIterations = 1 << 14;

// Oversubscribed lanes (more lanes than hardware threads) must not spin:
// a spinning lane burns exactly the CPU the working lanes need. Parking
// immediately (and yielding while draining) is strictly better there.
int spin_budget(int lanes) {
  static const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  return lanes <= hw ? kSpinIterations : 0;
}

thread_local bool tl_in_region = false;

#if defined(__cpp_lib_hardware_interference_size)
constexpr std::size_t kCacheLine = std::hardware_destructive_interference_size;
#else
constexpr std::size_t kCacheLine = 64;
#endif

/// One lane's contiguous chunk segment. Padded: the claim counters are the
/// only cross-thread contended words in a dispatch.
struct alignas(kCacheLine) LaneSegment {
  std::atomic<std::size_t> next{0};  // next chunk index to claim
  std::size_t end = 0;               // one past the segment's last chunk
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv_work;  // workers park here between dispatches
  std::condition_variable cv_done;  // caller parks here while lanes drain
  std::vector<std::thread> workers;
  // set_lanes() value; workers restart to match. Atomic: nested dispatches
  // running on worker threads store it concurrently with the caller.
  std::atomic<int> target_lanes{0};
  bool stopping = false;
  std::atomic<std::uint64_t> starts{0};

  // The in-flight dispatch. Plain fields are published by the epoch bump
  // (written under mu before the release store, read after an acquire load).
  std::atomic<std::uint64_t> epoch{0};
  std::size_t job_begin = 0;
  std::size_t job_end = 0;
  std::size_t job_chunk = 1;    // indices per chunk
  std::size_t job_chunks = 0;   // total chunk count
  void* job_ctx = nullptr;
  ChunkFn job_fn = nullptr;
  std::vector<LaneSegment> segments;  // sized to lanes at start, reused
  std::atomic<int> lanes_left{0};     // worker lanes still draining
  std::atomic<bool> job_failed{false};
  std::exception_ptr job_error;  // guarded by mu
  // Serializes dispatches: a second thread calling run() concurrently
  // falls back to an inline serial loop instead of queueing.
  std::mutex dispatch_mu;

  // `seen` starts at the epoch current when the worker was spawned — a
  // fresh worker (after a resize restart) must NOT mistake an already-
  // consumed epoch for new work and run on stale segments.
  void worker_main(std::size_t lane, std::uint64_t seen) {
    pin_current_thread(lane);  // no-op unless LOGCC_PIN is set
    prewarm_worker_arena();
    for (;;) {
      // Spin briefly for the next epoch, then park.
      bool got = false;
      const int spin =
          spin_budget(target_lanes.load(std::memory_order_relaxed));
      for (int i = 0; i < spin; ++i) {
        if (epoch.load(std::memory_order_acquire) != seen) {
          got = true;
          break;
        }
      }
      if (!got) {
        std::unique_lock<std::mutex> lock(mu);
        cv_work.wait(lock, [&] {
          return stopping || epoch.load(std::memory_order_relaxed) != seen;
        });
      }
      if (stopping) return;
      seen = epoch.load(std::memory_order_acquire);
      tl_in_region = true;
      {
        // Lane-local scratch arena for the kernels this dispatch runs:
        // worker-side ScratchBuffers draw from memory this worker
        // first-touched and retains across dispatches (zero heap in steady
        // state). The scope resets the arena on exit — all scratch is dead
        // by LIFO once work() returns.
        WorkerArenaScope arena;
        work(lane);
      }
      tl_in_region = false;
      if (lanes_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv_done.notify_one();
      }
    }
  }

  void run_chunk(std::size_t c) noexcept {
    const std::size_t lo = job_begin + c * job_chunk;
    const std::size_t hi = std::min(job_end, lo + job_chunk);
    try {
      job_fn(job_ctx, lo, hi);
    } catch (...) {
      bool expected = false;
      if (job_failed.compare_exchange_strong(expected, true)) {
        std::lock_guard<std::mutex> lock(mu);
        job_error = std::current_exception();
      }
    }
  }

  /// Drains the lane's own segment, then steals chunks from later lanes
  /// (wrapping), so skewed chunks still balance across lanes.
  void work(std::size_t lane) {
    const std::size_t nlanes = segments.size();
    for (std::size_t probe = 0; probe < nlanes; ++probe) {
      LaneSegment& seg = segments[(lane + probe) % nlanes];
      for (;;) {
        if (job_failed.load(std::memory_order_relaxed)) return;
        const std::size_t c = seg.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= seg.end) break;
        run_chunk(c);
      }
    }
  }

  /// (Re)starts the worker set to `target_lanes - 1` threads. Called with
  /// no dispatch in flight.
  void ensure_workers() {
    const int lanes = target_lanes.load(std::memory_order_relaxed);
    const std::size_t want =
        lanes > 1 ? static_cast<std::size_t>(lanes - 1) : 0;
    if (workers.size() == want) return;
    stop_workers();
    if (want == 0) return;
    {
      std::lock_guard<std::mutex> lock(mu);
      stopping = false;
      starts.fetch_add(1, std::memory_order_relaxed);
    }
    segments = std::vector<LaneSegment>(want + 1);
    workers.reserve(want);
    const std::uint64_t seen = epoch.load(std::memory_order_relaxed);
    for (std::size_t w = 0; w < want; ++w)
      workers.emplace_back([this, w, seen] { worker_main(w + 1, seen); });
  }

  void stop_workers() {
    if (workers.empty()) return;
    {
      std::lock_guard<std::mutex> lock(mu);
      stopping = true;
    }
    cv_work.notify_all();
    for (auto& t : workers) t.join();
    workers.clear();
  }
};

ThreadPool& ThreadPool::instance() {
  // Magic-static: construction (and Impl creation) is thread-safe even when
  // the first dispatches race from unrelated threads.
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl()) {
  // Hardware default only: the dispatch layer (util/parallel.cpp) owns the
  // requested width — including the OMP_NUM_THREADS pinning — and calls
  // set_lanes() before every run().
  impl_->target_lanes.store(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())),
      std::memory_order_relaxed);
}

ThreadPool::Impl& ThreadPool::impl() { return *impl_; }

ThreadPool::~ThreadPool() {
  if (impl_) {
    impl_->stop_workers();
    delete impl_;
  }
}

void ThreadPool::set_lanes(int lanes) {
  if (lanes >= 1)
    impl().target_lanes.store(lanes, std::memory_order_relaxed);
}

int ThreadPool::lanes() const {
  return const_cast<ThreadPool*>(this)->impl().target_lanes.load(
      std::memory_order_relaxed);
}

bool ThreadPool::in_parallel_region() { return tl_in_region; }

std::uint64_t ThreadPool::starts() const {
  return const_cast<ThreadPool*>(this)->impl().starts.load(
      std::memory_order_relaxed);
}

void ThreadPool::shutdown() {
  if (impl_) impl_->stop_workers();
}

void ThreadPool::run(std::size_t begin, std::size_t end, std::size_t grain,
                     void* ctx, ChunkFn chunk) {
  if (end <= begin) return;
  // Jitter/crash site for the fault suite: dispatch has no error path, so
  // the useful actions are delay (scheduling skew that must not change any
  // deterministic result) and crash (die inside a parallel region). The
  // disarmed cost is the one relaxed load the serving bench pins.
  (void)LOGCC_FAILPOINT("thread_pool_dispatch");
  Impl& im = impl();
  // Reentrant (a body dispatching again) or contended (another thread is
  // mid-dispatch): run inline. Serial execution is always a correct
  // schedule, and never deadlocks the lanes.
  if (tl_in_region || !im.dispatch_mu.try_lock()) {
    chunk(ctx, begin, end);
    return;
  }
  std::lock_guard<std::mutex> dispatch(im.dispatch_mu, std::adopt_lock);

  im.ensure_workers();
  const std::size_t n = end - begin;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (n + g - 1) / g;
  if (im.workers.empty() || chunks <= 1) {
    // Single-chunk (or single-lane) dispatch runs inline — still "inside a
    // parallel region" as far as bodies can observe.
    tl_in_region = true;
    try {
      chunk(ctx, begin, end);
    } catch (...) {
      tl_in_region = false;
      throw;
    }
    tl_in_region = false;
    return;
  }

  const std::size_t nlanes = im.workers.size() + 1;
  im.job_begin = begin;
  im.job_end = end;
  im.job_chunk = g;
  im.job_chunks = chunks;
  im.job_ctx = ctx;
  im.job_fn = chunk;
  im.job_failed.store(false, std::memory_order_relaxed);
  // Contiguous chunk segments per lane (lane k's segment is the same for
  // the same (n, grain, lanes) every dispatch — the first-touch property).
  for (std::size_t k = 0; k < nlanes; ++k) {
    const std::size_t lo = chunks / nlanes * k + std::min(k, chunks % nlanes);
    const std::size_t hi =
        chunks / nlanes * (k + 1) + std::min(k + 1, chunks % nlanes);
    im.segments[k].next.store(lo, std::memory_order_relaxed);
    im.segments[k].end = hi;
  }
  im.lanes_left.store(static_cast<int>(im.workers.size()),
                      std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.epoch.fetch_add(1, std::memory_order_release);
  }
  im.cv_work.notify_all();

  // The caller is lane 0.
  tl_in_region = true;
  im.work(0);
  tl_in_region = false;

  // Wait for the worker lanes: spin (steady-state dispatches finish in the
  // spin window), then park. Oversubscribed: yield instead of spinning so
  // the still-working lanes get the CPU.
  bool drained = false;
  const int spin = spin_budget(static_cast<int>(nlanes));
  for (int i = 0; i < (spin ? spin : 64); ++i) {
    if (im.lanes_left.load(std::memory_order_acquire) == 0) {
      drained = true;
      break;
    }
    if (!spin) std::this_thread::yield();
  }
  if (!drained) {
    std::unique_lock<std::mutex> lock(im.mu);
    im.cv_done.wait(lock, [&] {
      return im.lanes_left.load(std::memory_order_acquire) == 0;
    });
  }

  if (im.job_failed.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(im.mu);
      err = im.job_error;
      im.job_error = nullptr;
    }
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace logcc::util
