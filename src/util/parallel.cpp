#include "util/parallel.hpp"

#ifdef LOGCC_HAVE_OPENMP
#include <omp.h>
#endif

namespace logcc::util {

int hardware_parallelism() {
#ifdef LOGCC_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_parallelism(int threads) {
#ifdef LOGCC_HAVE_OPENMP
  if (threads >= 1) omp_set_num_threads(threads);
#else
  (void)threads;
#endif
}

namespace detail {

void parallel_for_impl(std::size_t begin, std::size_t end, void* ctx,
                       void (*body)(void*, std::size_t)) {
#ifdef LOGCC_HAVE_OPENMP
  const std::int64_t b = static_cast<std::int64_t>(begin);
  const std::int64_t e = static_cast<std::int64_t>(end);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = b; i < e; ++i) body(ctx, static_cast<std::size_t>(i));
#else
  for (std::size_t i = begin; i < end; ++i) body(ctx, i);
#endif
}

}  // namespace detail
}  // namespace logcc::util
