#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/affinity.hpp"
#include "util/arena.hpp"
#include "util/thread_pool.hpp"

#ifdef LOGCC_HAVE_OPENMP
#include <omp.h>
#endif

// Under ThreadSanitizer force the pool backend: GCC's libgomp is not
// TSan-instrumented, so TSan cannot see the happens-before edges of the
// OpenMP fork/join barriers and reports false races between accesses in
// *different*, properly-synchronized parallel regions. The pool's
// mutex/condvar/atomic edges are fully modeled, so the TSan job race-checks
// exactly the library's own kernels.
#if defined(__SANITIZE_THREAD__)
#define LOGCC_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LOGCC_TSAN_BUILD 1
#endif
#endif

namespace logcc::util {

namespace {

int env_threads() {
  if (const char* env = std::getenv("OMP_NUM_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

ParallelBackend default_backend() {
  if (const char* env = std::getenv("LOGCC_BACKEND")) {
    if (std::strcmp(env, "serial") == 0) return ParallelBackend::kSerial;
    if (std::strcmp(env, "omp") == 0) {
#if defined(LOGCC_HAVE_OPENMP) && !defined(LOGCC_TSAN_BUILD)
      return ParallelBackend::kOpenMP;
#else
      return ParallelBackend::kPool;
#endif
    }
    if (std::strcmp(env, "pool") != 0) {
      // A typo'd backend must not silently measure the wrong thing.
      std::fprintf(stderr,
                   "logcc: unknown LOGCC_BACKEND '%s' "
                   "(want pool|omp|serial); using pool\n",
                   env);
    }
  }
  return ParallelBackend::kPool;
}

std::atomic<ParallelBackend> g_backend{default_backend()};
// Thread cap for the serial-unaware paths (OpenMP tracks its own; the pool
// tracks lanes). Kept so backend switches preserve the requested width.
std::atomic<int> g_threads{env_threads()};

constexpr std::size_t kDefaultGrain = 1024;
constexpr std::size_t kMinGrain = 256;
constexpr std::size_t kMaxGrain = 16384;

/// Measures the pool's empty-dispatch latency and derives a grain such that
/// one chunk's work (assuming on the order of a nanosecond per index)
/// amortises the dispatch. Purely a scheduling knob: results never depend
/// on it. LOGCC_GRAIN pins it instead.
std::size_t calibrate_grain() {
  if (const char* env = std::getenv("LOGCC_GRAIN")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  if (g_backend.load(std::memory_order_relaxed) != ParallelBackend::kPool ||
      g_threads.load(std::memory_order_relaxed) <= 1)
    return kDefaultGrain;
  ThreadPool& pool = ThreadPool::instance();
  pool.set_lanes(g_threads.load(std::memory_order_relaxed));
  auto noop = [](void*, std::size_t, std::size_t) {};
  // Warm the pool (starts workers), then time a handful of empty
  // dispatches.
  pool.run(0, 64, 1, nullptr, noop);
  constexpr int kReps = 32;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) pool.run(0, 64, 1, nullptr, noop);
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() /
      kReps;
  // Chunk work should dwarf the per-dispatch cost; at ~1ns/index, `ns`
  // indices per chunk puts the whole-dispatch overhead near 1/lanes of one
  // chunk.
  return std::clamp<std::size_t>(static_cast<std::size_t>(ns), kMinGrain,
                                 kMaxGrain);
}

std::atomic<std::size_t> g_grain{0};  // 0 = not yet calibrated

}  // namespace

ParallelBackend parallel_backend() {
  return g_backend.load(std::memory_order_relaxed);
}

void set_parallel_backend(ParallelBackend backend) {
#if !defined(LOGCC_HAVE_OPENMP) || defined(LOGCC_TSAN_BUILD)
  if (backend == ParallelBackend::kOpenMP) backend = ParallelBackend::kPool;
#endif
  g_backend.store(backend, std::memory_order_relaxed);
}

const char* parallel_backend_name() {
  switch (parallel_backend()) {
    case ParallelBackend::kSerial: return "serial";
    case ParallelBackend::kOpenMP: return "omp";
    case ParallelBackend::kPool: return "pool";
  }
  return "?";
}

int hardware_parallelism() {
  switch (parallel_backend()) {
    case ParallelBackend::kSerial:
      return 1;
    case ParallelBackend::kOpenMP:
#ifdef LOGCC_HAVE_OPENMP
      return omp_get_max_threads();
#else
      return 1;
#endif
    case ParallelBackend::kPool:
      return g_threads.load(std::memory_order_relaxed);
  }
  return 1;
}

void set_parallelism(int threads) {
  if (threads < 1) return;
  g_threads.store(threads, std::memory_order_relaxed);
#ifdef LOGCC_HAVE_OPENMP
  omp_set_num_threads(threads);
#endif
  ThreadPool::instance().set_lanes(threads);
}

std::size_t parallel_grain() {
  std::size_t g = g_grain.load(std::memory_order_relaxed);
  if (g == 0) {
    g = calibrate_grain();
    g_grain.store(g, std::memory_order_relaxed);
  }
  return g;
}

void set_parallel_grain(std::size_t grain) {
  g_grain.store(std::max<std::size_t>(1, grain), std::memory_order_relaxed);
}

namespace detail {

void parallel_run_impl(std::size_t begin, std::size_t end, std::size_t grain,
                       void* ctx,
                       void (*chunk)(void*, std::size_t, std::size_t)) {
  if (end <= begin) return;
  switch (parallel_backend()) {
    case ParallelBackend::kSerial:
      chunk(ctx, begin, end);
      return;
    case ParallelBackend::kOpenMP: {
#ifdef LOGCC_HAVE_OPENMP
      const std::size_t n = end - begin;
      const std::size_t g = std::max<std::size_t>(1, grain);
      const std::int64_t chunks =
          static_cast<std::int64_t>((n + g - 1) / g);
      // Explicit region (not `parallel for`) so each OMP thread gets a
      // lane-local scratch arena around its static chunk share — same
      // per-lane memory discipline as the pool backend. The master thread's
      // WorkerArenaScope no-ops (its RoundArena is already active), and
      // optional LOGCC_PIN placement applies once per region thread.
#pragma omp parallel
      {
        pin_current_thread(
            static_cast<std::size_t>(omp_get_thread_num()));
        WorkerArenaScope arena;
#pragma omp for schedule(static)
        for (std::int64_t c = 0; c < chunks; ++c) {
          const std::size_t lo = begin + static_cast<std::size_t>(c) * g;
          chunk(ctx, lo, std::min(end, lo + g));
        }
      }
#else
      chunk(ctx, begin, end);
#endif
      return;
    }
    case ParallelBackend::kPool: {
      ThreadPool& pool = ThreadPool::instance();
      pool.set_lanes(g_threads.load(std::memory_order_relaxed));
      pool.run(begin, end, grain, ctx, chunk);
      return;
    }
  }
}

}  // namespace detail
}  // namespace logcc::util
