#include "util/parallel.hpp"

#ifdef LOGCC_HAVE_OPENMP
#include <omp.h>
#endif

// Under ThreadSanitizer, route parallel_for through std::thread instead of
// OpenMP. GCC's libgomp is not TSan-instrumented, so TSan cannot see the
// happens-before edges of the fork/join barriers and reports false races
// between accesses in *different*, properly-joined parallel regions.
// pthread create/join edges are fully modeled, so the std::thread backend
// race-checks exactly the library's own kernels — which is what the TSan CI
// job is for. The work split is blocked and deterministic either way.
#if defined(__SANITIZE_THREAD__)
#define LOGCC_TSAN_BACKEND 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LOGCC_TSAN_BACKEND 1
#endif
#endif

#ifdef LOGCC_TSAN_BACKEND
#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>
#endif

namespace logcc::util {

#ifdef LOGCC_TSAN_BACKEND
namespace {
int tsan_initial_threads() {
  // Honour OMP_NUM_THREADS so the TSan CI job's pinning applies to this
  // backend too.
  if (const char* env = std::getenv("OMP_NUM_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}
int g_tsan_threads = tsan_initial_threads();
}  // namespace
#endif

int hardware_parallelism() {
#if defined(LOGCC_TSAN_BACKEND)
  return g_tsan_threads;
#elif defined(LOGCC_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_parallelism(int threads) {
#if defined(LOGCC_TSAN_BACKEND)
  if (threads >= 1) g_tsan_threads = threads;
#elif defined(LOGCC_HAVE_OPENMP)
  if (threads >= 1) omp_set_num_threads(threads);
#else
  (void)threads;
#endif
}

namespace detail {

void parallel_for_impl(std::size_t begin, std::size_t end, void* ctx,
                       void (*body)(void*, std::size_t)) {
#if defined(LOGCC_TSAN_BACKEND)
  const std::size_t n = end - begin;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(g_tsan_threads), n);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(ctx, i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + n / workers * w + std::min(w, n % workers);
    const std::size_t hi =
        begin + n / workers * (w + 1) + std::min(w + 1, n % workers);
    pool.emplace_back([ctx, body, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) body(ctx, i);
    });
  }
  for (auto& t : pool) t.join();
#elif defined(LOGCC_HAVE_OPENMP)
  const std::int64_t b = static_cast<std::int64_t>(begin);
  const std::int64_t e = static_cast<std::int64_t>(end);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = b; i < e; ++i) body(ctx, static_cast<std::size_t>(i));
#else
  for (std::size_t i = begin; i < end; ++i) body(ctx, i);
#endif
}

}  // namespace detail
}  // namespace logcc::util
