#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/failpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LOGCC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace logcc::util {

namespace {
void set_error(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}
/// Appends the errno string so "cannot open" distinguishes ENOENT from
/// EACCES from EMFILE — the difference between "wrong path" and "raise the
/// fd limit" when a serving process logs it.
void set_errno_error(std::string* error, const std::string& msg) {
  set_error(error, msg + " (" + std::strerror(errno) + ")");
}
}  // namespace

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    writable_ = std::exchange(other.writable_, false);
    opened_ = std::exchange(other.opened_, false);
  }
  return *this;
}

void MmapFile::reset() {
#ifdef LOGCC_HAVE_MMAP
  if (data_ && mapped_) {
    if (writable_) ::msync(data_, size_, MS_SYNC);
    ::munmap(data_, size_);
  }
#endif
  if (data_ && !mapped_) delete[] data_;
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  writable_ = false;
  opened_ = false;
}

bool MmapFile::sync() {
  if (LOGCC_FAILPOINT("mmap_sync")) return false;
#ifdef LOGCC_HAVE_MMAP
  if (data_ && mapped_ && writable_) return ::msync(data_, size_, MS_SYNC) == 0;
#endif
  return true;
}

const char* to_string(MmapPopulate populate) {
  switch (populate) {
    case MmapPopulate::kNone: return "none";
    case MmapPopulate::kWillNeed: return "willneed";
    case MmapPopulate::kPopulate: return "populate";
  }
  return "?";
}

MmapFile MmapFile::open_read(const std::string& path, std::string* error,
                             MmapPopulate populate, std::size_t min_size) {
  MmapFile f;
  if (LOGCC_FAILPOINT("mmap_open_read")) {
    set_error(error, "injected open failure for '" + path + "'");
    return f;
  }
#ifdef LOGCC_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    set_errno_error(error, "cannot open '" + path + "'");
    return f;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    set_errno_error(error, "cannot stat '" + path + "'");
    return f;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    set_error(error, "'" + path + "' is not a regular file");
    return f;
  }
  f.size_ = static_cast<std::size_t>(st.st_size);
  // Size gate BEFORE mapping: a file shorter than the caller's fixed
  // header would otherwise hand out a view whose header parse reads past
  // the end (SIGBUS on a really truncated mapping, garbage on a padded
  // one).
  if (f.size_ < min_size) {
    ::close(fd);
    f.size_ = 0;
    set_error(error, "'" + path + "' is truncated: " +
                         std::to_string(static_cast<std::size_t>(st.st_size)) +
                         " bytes, need at least " + std::to_string(min_size));
    return f;
  }
  f.opened_ = true;
  if (f.size_ == 0) {
    ::close(fd);
    return f;  // valid, empty
  }
  int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  if (populate == MmapPopulate::kPopulate) flags |= MAP_POPULATE;
#endif
  void* p = LOGCC_FAILPOINT("mmap_map")
                ? MAP_FAILED
                : ::mmap(nullptr, f.size_, PROT_READ, flags, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (p == MAP_FAILED) {
    f.size_ = 0;
    f.opened_ = false;
    set_errno_error(error, "mmap failed for '" + path + "'");
    return f;
  }
#ifdef MAP_POPULATE
  if (populate == MmapPopulate::kWillNeed)
    ::madvise(p, f.size_, MADV_WILLNEED);
#else
  // No MAP_POPULATE on this platform: both eager modes degrade to the
  // readahead hint (best effort; ignore failure).
  if (populate != MmapPopulate::kNone) ::madvise(p, f.size_, MADV_WILLNEED);
#endif
  f.data_ = static_cast<std::uint8_t*>(p);
  f.mapped_ = true;
  return f;
#else
  (void)populate;  // the heap fallback reads the whole file eagerly anyway
  // Heap fallback: correct but not zero-copy.
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (!fp) {
    set_errno_error(error, "cannot open '" + path + "'");
    return f;
  }
  std::fseek(fp, 0, SEEK_END);
  const long sz = std::ftell(fp);
  std::fseek(fp, 0, SEEK_SET);
  if (sz < 0) {
    std::fclose(fp);
    set_errno_error(error, "cannot size '" + path + "'");
    return f;
  }
  f.size_ = static_cast<std::size_t>(sz);
  if (f.size_ < min_size) {
    std::fclose(fp);
    f.size_ = 0;
    set_error(error, "'" + path + "' is truncated: " + std::to_string(sz) +
                         " bytes, need at least " + std::to_string(min_size));
    return f;
  }
  f.opened_ = true;
  if (f.size_ > 0) {
    f.data_ = new std::uint8_t[f.size_];
    if (std::fread(f.data_, 1, f.size_, fp) != f.size_) {
      std::fclose(fp);
      f.reset();
      set_error(error, "short read on '" + path + "'");
      return f;
    }
  }
  std::fclose(fp);
  return f;
#endif
}

MmapFile MmapFile::create_rw(const std::string& path, std::size_t size,
                             std::string* error) {
  MmapFile f;
  if (size == 0) {
    set_error(error, "create_rw needs size > 0");
    return f;
  }
#ifdef LOGCC_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_errno_error(error, "cannot create '" + path + "'");
    return f;
  }
  // posix_fallocate, not plain ftruncate: actually reserve the blocks now.
  // A sparse file would hand out the mapping fine and then kill the
  // process with SIGBUS on the first store the filesystem cannot back
  // (ENOSPC mid-write) — allocation failure must be a clean error return
  // instead. (macOS lacks posix_fallocate; it keeps the sparse-file
  // behaviour.)
  int rc;
  if (LOGCC_FAILPOINT("mmap_allocate")) {
    rc = ENOSPC;
  } else {
#ifdef __APPLE__
    rc = ::ftruncate(fd, static_cast<off_t>(size)) == 0 ? 0 : errno;
#else
    rc = ::posix_fallocate(fd, 0, static_cast<off_t>(size));
#endif
  }
  if (rc != 0) {
    ::close(fd);
    std::remove(path.c_str());
    // posix_fallocate returns the error instead of setting errno.
    set_error(error, "cannot allocate " + std::to_string(size) +
                         " bytes for '" + path + "' (" + std::strerror(rc) +
                         ")");
    return f;
  }
  void* p = LOGCC_FAILPOINT("mmap_map")
                ? MAP_FAILED
                : ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                         0);
  ::close(fd);
  if (p == MAP_FAILED) {
    std::remove(path.c_str());
    set_errno_error(error, "mmap (rw) failed for '" + path + "'");
    return f;
  }
  f.data_ = static_cast<std::uint8_t*>(p);
  f.size_ = size;
  f.mapped_ = true;
  f.writable_ = true;
  f.opened_ = true;
  return f;
#else
  set_error(error, "writeable mappings need mmap support on this platform");
  return f;
#endif
}

}  // namespace logcc::util
