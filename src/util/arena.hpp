// Monotonic round-scratch arena — the allocation backend for the blocked
// scan primitives' temporaries.
//
// The paper's algorithms are round loops: every round re-enters the same
// kernels, and every kernel needs a few short-lived buffers (per-block
// partials, counting grids, pack staging). Heap-allocating those per round
// caps scaling exactly where the rounds are small. A MonotonicArena hands
// the same retained memory back round after round:
//
//   - alloc<T>(n) bump-allocates an uninitialized span (alloc_zero<T>
//     memsets it); allocation is O(1) and, once the arena reached its
//     high-water size, touches the heap never again;
//   - ScratchBuffer<T> is the RAII shape kernels use: it draws from the
//     *active* arena when one is installed (heap otherwise) and rewinds the
//     arena on destruction (strict LIFO — guaranteed by C++ scoping as long
//     as buffers are function-local, which scratch by definition is);
//   - reset() rewinds everything and consolidates multi-block growth into
//     one block, so the steady state is a single allocation-free buffer.
//
// The active arena is a thread_local pointer installed by ScratchArenaScope
// (drivers install a core::RoundArena for the whole run; see
// core/round_arena.hpp for the ownership rule). Every arena is single-owner
// by design: only one thread ever allocates from a given arena, so it needs
// no synchronization. Worker threads get their own: the parallel runtimes
// (pool worker_main, the OpenMP region in util/parallel.cpp) wrap each
// lane's work in a WorkerArenaScope, which installs a thread_local per-lane
// arena when no arena is active. The lane arena is first-touched, grown,
// and reused entirely by its own worker — in-bucket sort staging and
// group-by counting grids stay in lane-local (first-touch NUMA-local)
// memory and stop heap-allocating once every lane reached its high-water
// size.
//
// Arena memory is raw storage: ScratchBuffer places only trivially
// destructible types there (anything else silently uses the heap path), and
// nothing that escapes a kernel call may live in the arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace logcc::util {

class MonotonicArena {
 public:
  /// Rewind token: the (block, offset) position at mark() time.
  struct Marker {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  explicit MonotonicArena(std::size_t first_block_bytes = 1 << 16)
      : first_block_bytes_(first_block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    if (count == 0) return {};
    void* p = raw_alloc(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  template <typename T>
  std::span<T> alloc_zero(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "alloc_zero memsets raw storage");
    std::span<T> s = alloc<T>(count);
    // void* cast: T may have a non-trivial default constructor (NSDMIs);
    // zero-filling trivially copyable storage is still well-defined.
    if (!s.empty())
      std::memset(static_cast<void*>(s.data()), 0, s.size_bytes());
    return s;
  }

  Marker mark() const {
    return {cur_, cur_ < blocks_.size() ? blocks_[cur_].used : 0};
  }

  /// Returns to a previous mark(). Only valid in LIFO order: everything
  /// allocated after the mark must already be dead.
  void rewind(Marker m) {
    for (std::size_t b = m.block + 1; b < blocks_.size(); ++b)
      blocks_[b].used = 0;
    if (m.block < blocks_.size()) blocks_[m.block].used = m.used;
    cur_ = m.block;
  }

  /// Rewinds everything and, after multi-block growth, consolidates into a
  /// single block sized to the high-water mark — from then on the arena is
  /// one allocation-free buffer. Round loops call this between rounds.
  void reset() {
    ++resets_;
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) total += b.capacity;
      blocks_.clear();
      add_block(total);
    }
    for (Block& b : blocks_) b.used = 0;
    cur_ = 0;
  }

  /// Total bytes of retained blocks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.capacity;
    return total;
  }
  /// Largest concurrently-live byte count ever observed.
  std::size_t high_water() const { return high_water_; }
  /// Heap allocations the arena itself ever made (stable in steady state).
  std::uint64_t block_allocations() const { return block_allocations_; }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> bytes;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  void add_block(std::size_t at_least) {
    std::size_t cap = std::max(first_block_bytes_, at_least);
    // Geometric growth keeps block count (and consolidation churn) O(log).
    if (!blocks_.empty()) cap = std::max(cap, 2 * blocks_.back().capacity);
    blocks_.push_back({std::make_unique<std::byte[]>(cap), cap, 0});
    ++block_allocations_;
  }

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    for (;;) {
      if (cur_ < blocks_.size()) {
        Block& b = blocks_[cur_];
        const std::size_t aligned = (b.used + align - 1) & ~(align - 1);
        if (aligned + bytes <= b.capacity) {
          b.used = aligned + bytes;
          track_high_water();
          return b.bytes.get() + aligned;
        }
        if (cur_ + 1 < blocks_.size()) {
          ++cur_;
          blocks_[cur_].used = 0;
          continue;
        }
      }
      add_block(bytes + align);
      cur_ = blocks_.size() - 1;
    }
  }

  void track_high_water() {
    std::size_t live = 0;
    for (std::size_t b = 0; b <= cur_ && b < blocks_.size(); ++b)
      live += blocks_[b].used;
    high_water_ = std::max(high_water_, live);
  }

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cur_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t block_allocations_ = 0;
  std::uint64_t resets_ = 0;
};

/// The arena scratch allocations on this thread currently draw from
/// (nullptr: plain heap). Installed by ScratchArenaScope.
MonotonicArena* active_scratch_arena();

/// Installs `arena` as this thread's active scratch arena for the scope's
/// lifetime, restoring the previous one on exit. Passing nullptr
/// temporarily disables arena scratch.
class ScratchArenaScope {
 public:
  explicit ScratchArenaScope(MonotonicArena* arena);
  ~ScratchArenaScope();
  ScratchArenaScope(const ScratchArenaScope&) = delete;
  ScratchArenaScope& operator=(const ScratchArenaScope&) = delete;

 private:
  MonotonicArena* previous_;
};

/// Resets the active scratch arena, if any. Round loops call this at the
/// top of every round; it requires that no ScratchBuffer is live on this
/// thread (true between kernel calls by construction).
void scratch_arena_round_reset();

/// Allocates this thread's per-lane arena's first block now. Worker threads
/// call it once at startup so lane-arena creation never lands inside a
/// steady-state round (whose zero-allocation property
/// tests/test_round_arena.cpp asserts with an operator-new counter).
void prewarm_worker_arena();

/// Installs this thread's per-lane arena as the active scratch arena — but
/// only when none is active (the dispatching thread keeps its RoundArena;
/// nested parallel regions keep the outer scope's arena). The parallel
/// runtimes wrap each lane's work in one of these: worker-side
/// ScratchBuffers then draw from memory the worker itself first-touched and
/// retains across dispatches. On exit the lane arena is reset (all scratch
/// is dead by LIFO) so the next dispatch starts from a rewound,
/// consolidated block.
class WorkerArenaScope {
 public:
  WorkerArenaScope();
  ~WorkerArenaScope();
  WorkerArenaScope(const WorkerArenaScope&) = delete;
  WorkerArenaScope& operator=(const WorkerArenaScope&) = delete;

 private:
  bool installed_;
};

/// RAII scratch span: arena-backed (with LIFO rewind on destruction) when
/// an arena is active and T is trivially destructible; heap-backed
/// otherwise. Contents are uninitialized unless `zeroed`.
template <typename T>
class ScratchBuffer {
 public:
  explicit ScratchBuffer(std::size_t count, bool zeroed = false) {
    if constexpr (std::is_trivially_destructible_v<T> &&
                  std::is_trivially_copyable_v<T>) {
      arena_ = active_scratch_arena();
      if (arena_) {
        mark_ = arena_->mark();
        span_ = zeroed ? arena_->alloc_zero<T>(count) : arena_->alloc<T>(count);
        return;
      }
    }
    owned_.reset(zeroed ? new T[count]() : new T[count]);
    span_ = {owned_.get(), count};
  }
  ~ScratchBuffer() {
    if (arena_) arena_->rewind(mark_);
  }
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  T* data() { return span_.data(); }
  const T* data() const { return span_.data(); }
  std::size_t size() const { return span_.size(); }
  T& operator[](std::size_t i) { return span_[i]; }
  const T& operator[](std::size_t i) const { return span_[i]; }
  std::span<T> span() { return span_; }

 private:
  MonotonicArena* arena_ = nullptr;
  MonotonicArena::Marker mark_{};
  std::span<T> span_{};
  std::unique_ptr<T[]> owned_;
};

}  // namespace logcc::util
