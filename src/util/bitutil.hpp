// Small integer helpers shared by the budget/level machinery and generators.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "util/check.hpp"

namespace logcc::util {

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x | 1));
}

/// ceil(log2(x)) for x >= 1 (0 for x == 1).
constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0 : floor_log2(x - 1) + 1;
}

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return x <= 1 ? 1 : (1ULL << ceil_log2(x));
}

constexpr bool is_pow2(std::uint64_t x) { return x && !(x & (x - 1)); }

/// log base `base` of x, for doubles; callers guard the domain.
inline double log_base(double x, double base) {
  LOGCC_CHECK(x > 0 && base > 1);
  return std::log(x) / std::log(base);
}

/// The paper's log log_{m/n} n term, made total: returns
/// max(1, log2(log_{beta}(n))) where beta = max(m/n, 2).
inline double loglog_density(std::uint64_t n, std::uint64_t m) {
  double beta = std::max(2.0, static_cast<double>(m) / std::max<std::uint64_t>(n, 1));
  double inner = log_base(std::max<double>(n, 4), beta);
  return std::max(1.0, std::log2(std::max(2.0, inner)));
}

/// Integer ceiling division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace logcc::util
