// Data-parallel loop primitive.
//
// One PRAM step over k processors maps to `parallel_for(0, k, fn)`. With
// OpenMP available the loop is work-shared across hardware threads; without
// it (or when the range is small) it degrades to a serial loop. Algorithms
// never depend on the execution order inside a step: all cross-processor
// communication goes through buffered writes resolved between steps (see
// pram/machine.hpp) or through commutative atomics-free patterns
// (idempotent writes / seeded arbitrary-winner resolution).
#pragma once

#include <cstddef>
#include <cstdint>

namespace logcc::util {

/// Number of worker threads parallel_for may use (1 when OpenMP is absent).
int hardware_parallelism();

/// Grain below which parallel_for always runs serially.
inline constexpr std::size_t kSerialGrain = 4096;

namespace detail {
void parallel_for_impl(std::size_t begin, std::size_t end, void* ctx,
                       void (*body)(void*, std::size_t));
}

template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  if (end <= begin) return;
  if (end - begin < kSerialGrain || hardware_parallelism() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  detail::parallel_for_impl(begin, end, &fn, [](void* ctx, std::size_t i) {
    (*static_cast<Fn*>(ctx))(i);
  });
}

}  // namespace logcc::util
