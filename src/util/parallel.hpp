// Data-parallel loop primitive over interchangeable backends.
//
// One PRAM step over k processors maps to `parallel_for(0, k, fn)`. The
// dispatch goes through one of three backends of the same executor API:
//
//   kPool   — the persistent parking worker pool (util/thread_pool.hpp).
//             The default: no per-dispatch thread creation or fork/join,
//             chunked work distribution with a calibrated grain, adaptive
//             spin before parking. Fully instrumented under TSan (plain
//             std::thread/std::mutex synchronization).
//   kOpenMP — `#pragma omp parallel for` over the same chunks, when built
//             with LOGCC_HAVE_OPENMP. Kept for comparison benches and as an
//             escape hatch; selecting it without OpenMP support falls back
//             to the pool.
//   kSerial — inline serial loop (also what sub-grain ranges always get).
//
// Selection: LOGCC_BACKEND=pool|omp|serial in the environment, or
// set_parallel_backend() from code. Under ThreadSanitizer the default is
// forced to the pool — GCC's libgomp is not TSan-instrumented, so OpenMP
// barriers would produce false races; the pool's pthread edges are fully
// modeled, which makes the TSan CI job race-check exactly this library's
// kernels.
//
// The backend choice NEVER affects results. Algorithms never depend on the
// execution order or placement inside a step: all cross-processor
// communication goes through buffered writes resolved between steps (see
// pram/machine.hpp) or through commutative atomics-free patterns
// (idempotent writes / fetch-min resolution), and the blocked primitives in
// scan.hpp fix their block structure as a function of input size alone.
// Every invariance suite runs bit-identically under all three backends.
#pragma once

#include <cstddef>
#include <cstdint>

namespace logcc::util {

enum class ParallelBackend {
  kSerial,
  kOpenMP,
  kPool,
};

/// The active backend (resolved: kOpenMP is only ever reported when the
/// build has OpenMP support).
ParallelBackend parallel_backend();

/// Switches the dispatch backend. kOpenMP without OpenMP support selects
/// the pool instead. Benches and tests use this to compare backends; the
/// LOGCC_BACKEND environment variable sets the process default.
void set_parallel_backend(ParallelBackend backend);

/// "pool" | "omp" | "serial" — for bench.json provenance records.
const char* parallel_backend_name();

/// Number of worker threads parallel_for may use under the active backend
/// (1 for kSerial).
int hardware_parallelism();

/// Caps the number of worker threads (no-op for kSerial). Benches and the
/// thread-invariance tests use this to pin the thread count from code; the
/// initial value honours OMP_NUM_THREADS for every backend.
void set_parallelism(int threads);

/// Grain below which parallel_for always runs serially.
inline constexpr std::size_t kSerialGrain = 4096;

/// Minimum indices per chunk handed to a lane in one claim. Calibrated
/// once, lazily, from the measured dispatch latency (LOGCC_GRAIN overrides;
/// see parallel.cpp). Affects scheduling only, never results.
std::size_t parallel_grain();
void set_parallel_grain(std::size_t grain);

namespace detail {
/// Dispatches chunk(ctx, lo, hi) covering [begin, end) on the active
/// backend; chunks hold at least `grain` indices.
void parallel_run_impl(std::size_t begin, std::size_t end, std::size_t grain,
                       void* ctx,
                       void (*chunk)(void*, std::size_t, std::size_t));
}  // namespace detail

template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  if (end <= begin) return;
  if (end - begin < kSerialGrain || hardware_parallelism() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  detail::parallel_run_impl(begin, end, parallel_grain(), &fn,
                            [](void* ctx, std::size_t lo, std::size_t hi) {
                              Fn& f = *static_cast<Fn*>(ctx);
                              for (std::size_t i = lo; i < hi; ++i) f(i);
                            });
}

/// Dispatches `blocks` coarse work items, each already covering at least a
/// grain of underlying work, so — unlike parallel_for — there is no
/// element-count threshold: any count above 1 work-shares (with chunk size
/// 1: each block is claimed individually). The blocked primitives in
/// scan.hpp dispatch through this (their block counts are far below
/// kSerialGrain by design).
template <typename Fn>
void parallel_for_blocks(std::size_t blocks, Fn&& fn) {
  if (blocks <= 1 || hardware_parallelism() == 1) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
    return;
  }
  detail::parallel_run_impl(0, blocks, 1, &fn,
                            [](void* ctx, std::size_t lo, std::size_t hi) {
                              Fn& f = *static_cast<Fn*>(ctx);
                              for (std::size_t b = lo; b < hi; ++b) f(b);
                            });
}

}  // namespace logcc::util
