// Data-parallel loop primitive.
//
// One PRAM step over k processors maps to `parallel_for(0, k, fn)`. With
// OpenMP available the loop is work-shared across hardware threads; without
// it (or when the range is small) it degrades to a serial loop. Under
// ThreadSanitizer the backend swaps to std::thread fork/join (see
// parallel.cpp) so TSan sees every synchronization edge and race-checks the
// library's own kernels without libgomp false positives. Algorithms never
// depend on the execution order inside a step: all cross-processor
// communication goes through buffered writes resolved between steps (see
// pram/machine.hpp) or through commutative atomics-free patterns
// (idempotent writes / seeded arbitrary-winner resolution).
#pragma once

#include <cstddef>
#include <cstdint>

namespace logcc::util {

/// Number of worker threads parallel_for may use (1 when OpenMP is absent).
int hardware_parallelism();

/// Caps the number of worker threads (no-op without OpenMP). Benches and the
/// thread-invariance tests use this to pin the thread count from code.
void set_parallelism(int threads);

/// Grain below which parallel_for always runs serially.
inline constexpr std::size_t kSerialGrain = 4096;

namespace detail {
void parallel_for_impl(std::size_t begin, std::size_t end, void* ctx,
                       void (*body)(void*, std::size_t));
}

template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  if (end <= begin) return;
  if (end - begin < kSerialGrain || hardware_parallelism() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  detail::parallel_for_impl(begin, end, &fn, [](void* ctx, std::size_t i) {
    (*static_cast<Fn*>(ctx))(i);
  });
}

/// Dispatches `blocks` coarse work items, each already covering at least a
/// grain of underlying work, so — unlike parallel_for — there is no
/// element-count threshold: any count above 1 work-shares. The blocked
/// primitives in scan.hpp dispatch through this (their block counts are
/// far below kSerialGrain by design).
template <typename Fn>
void parallel_for_blocks(std::size_t blocks, Fn&& fn) {
  if (blocks <= 1 || hardware_parallelism() == 1) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
    return;
  }
  detail::parallel_for_impl(0, blocks, &fn, [](void* ctx, std::size_t i) {
    (*static_cast<Fn*>(ctx))(i);
  });
}

}  // namespace logcc::util
