#include "util/table.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace logcc::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LOGCC_CHECK(!header_.empty());
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  LOGCC_CHECK_MSG(!rows_.empty(), "call row() before add()");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return add(buf);
}

TextTable& TextTable::add_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return add(buf);
}

void TextTable::print(std::FILE* out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      std::fprintf(out, "%-*s%s", static_cast<int>(width[c]), cell.c_str(),
                   c + 1 == width.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 == width.size() ? 0 : 2);
  std::fprintf(out, "%s\n", std::string(total, '-').c_str());
  for (const auto& r : rows_) print_row(r);
}

std::string sparkline(const std::vector<double>& ys) {
  static const char kLevels[] = " .:-=+*#%@";
  constexpr int kNumLevels = static_cast<int>(sizeof(kLevels)) - 2;
  if (ys.empty()) return "";
  double lo = ys[0], hi = ys[0];
  for (double y : ys) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  std::string s;
  s.reserve(ys.size());
  for (double y : ys) {
    int level = hi == lo ? kNumLevels / 2
                         : static_cast<int>(std::lround(
                               (y - lo) / (hi - lo) * kNumLevels));
    level = std::clamp(level, 0, kNumLevels);
    s.push_back(kLevels[level]);
  }
  return s;
}

void print_series(const std::string& name, const std::vector<double>& xs,
                  const std::vector<double>& ys, const std::string& xlabel,
                  const std::string& ylabel, std::FILE* out) {
  LOGCC_CHECK(xs.size() == ys.size());
  std::fprintf(out, "series: %s\n", name.c_str());
  TextTable t({xlabel, ylabel});
  for (std::size_t i = 0; i < xs.size(); ++i)
    t.row().add_double(xs[i], 2).add_double(ys[i], 3);
  t.print(out);
  std::fprintf(out, "trend: [%s]\n", sparkline(ys).c_str());
}

}  // namespace logcc::util
