// Failpoint registry: deterministic fault injection for the durability
// layer (docs/ARCHITECTURE.md "Durability & fault tolerance", failpoint
// catalog).
//
// A failpoint is a named site on an error path — "what if the write here
// was short / the fsync failed / the process died right now". Sites are
// spelled
//
//   if (LOGCC_FAILPOINT("wal_append_write")) return Status::io_error(...);
//
// and cost one relaxed atomic load + predictable branch when nothing is
// armed (the serving hot path carries them for free; bench_serving pins
// this against the baseline). Arming happens either programmatically
// (failpoint::arm, used by the fault-labelled test suites) or from the
// environment at process start:
//
//   LOGCC_FAILPOINT=name:action[,name:action...]
//
// Actions:
//   error      — the site takes its error path every hit.
//   once       — the site takes its error path on the first hit only, then
//                disarms (the Status it produces is marked transient by the
//                sites that retry, so this exercises retry_with_backoff).
//   crash      — raise(SIGKILL) at the site: the closest in-process stand-in
//                for power loss; nothing below the OS flushes or unwinds.
//                The kill-at-every-failpoint recovery suite iterates the
//                catalog with this action.
//   delay:MS   — sleep MS milliseconds, then continue normally (scheduling
//                jitter; the site does NOT take its error path).
//
// Every site name must be listed in the catalog (failpoint.cpp) — arm()
// LOGCC_CHECKs membership, so the recovery suite's "iterate the catalog"
// loop provably covers every site in the tree.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

namespace logcc::util::failpoint {

enum class Action {
  kError,  // take the error path on every hit
  kOnce,   // take the error path on the first hit, then disarm
  kCrash,  // SIGKILL the process at the site
  kDelay,  // sleep, then continue normally
};

/// Number of armed failpoints — the fast-path gate LOGCC_FAILPOINT reads.
/// (Extern atomic, not a function call, so the disarmed cost is exactly one
/// relaxed load.)
extern std::atomic<int> g_armed_count;

/// All registered site names, for suites that iterate the catalog.
std::span<const char* const> catalog();

/// Arms `name` with `action`. `skip_hits` hits pass through before the
/// action applies (0 = act on the first hit) — the recovery suite uses it
/// to crash at the Kth batch, not the first. `delay_ms` only matters for
/// kDelay. LOGCC_CHECKs that `name` is in the catalog.
void arm(const std::string& name, Action action, std::uint64_t skip_hits = 0,
         std::uint64_t delay_ms = 0);
void disarm(const std::string& name);
void disarm_all();

/// True when `name` is currently armed (test introspection).
bool is_armed(const std::string& name);
/// Total hits (armed or not is irrelevant — counts every evaluation that
/// reached the slow path) of `name` since the last arm().
std::uint64_t hits(const std::string& name);

/// Parses one LOGCC_FAILPOINT-style spec list and arms accordingly.
/// Returns false (arming nothing further) on a malformed entry. Exposed for
/// tests; process-env initialization runs automatically before main().
bool arm_from_spec(const std::string& spec, std::string* error = nullptr);

/// Slow path behind LOGCC_FAILPOINT: applies the armed action for `name`.
/// Returns true when the caller should take its error path.
bool should_fail(const char* name);

}  // namespace logcc::util::failpoint

/// True when the failpoint `name` is armed with error/once semantics (and
/// handles crash/delay actions internally). Disarmed cost: one relaxed
/// atomic load and a never-taken branch.
#define LOGCC_FAILPOINT(name)                                              \
  (::logcc::util::failpoint::g_armed_count.load(std::memory_order_relaxed) \
       > 0 &&                                                              \
   ::logcc::util::failpoint::should_fail(name))
