// Deterministic, fast pseudo-random generators.
//
// All randomness in logcc flows through these types so that every algorithm
// run is reproducible from a single 64-bit seed. SplitMix64 is used to seed
// and to hash seeds; Xoshiro256** is the general-purpose engine (it satisfies
// the C++ UniformRandomBitGenerator concept, so it composes with <random>).
#pragma once

#include <cstdint>
#include <limits>

namespace logcc::util {

/// SplitMix64: tiny, statistically solid, used for seeding and seed-mixing.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix: maps (seed, index) to a well-distributed 64-bit value.
/// Used to derive independent streams (one per round, per vertex, ...).
constexpr std::uint64_t mix64(std::uint64_t seed, std::uint64_t index = 0) {
  SplitMix64 s(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return s.next();
}

/// Counter-based two-index mix: (seed, a, b) -> 64 bits. Replaces sequential
/// RNG streams in data-parallel steps — every processor can evaluate its own
/// coin without ordering, so results are thread-count invariant.
constexpr std::uint64_t mix64(std::uint64_t seed, std::uint64_t a,
                              std::uint64_t b) {
  return mix64(mix64(seed, a), b);
}

/// Maps 64 random bits to a uniform double in [0, 1) — the counter-based
/// analogue of Xoshiro256::uniform for data-parallel coins
/// (counter_uniform(mix64(seed, phase, v)) < p is a per-vertex Bernoulli
/// trial with no cross-processor order).
constexpr double counter_uniform(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Xoshiro256**: the workhorse engine.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform() { return counter_uniform(next()); }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace logcc::util
