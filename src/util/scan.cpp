#include "util/scan.hpp"

#include <algorithm>

namespace logcc::util {

std::size_t scan_block_count(std::size_t n) {
  // Enough blocks that any realistic thread count load-balances, few enough
  // that the serial combine over block partials stays negligible. A pure
  // function of n: blocked results must not depend on the thread count.
  if (n < kSerialGrain) return 1;
  const std::size_t by_grain = n / (kSerialGrain / 4);
  return std::clamp<std::size_t>(by_grain, 1, 256);
}

}  // namespace logcc::util
