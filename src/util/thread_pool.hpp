// Persistent parking worker pool — the process-wide executor behind
// parallel_for / parallel_for_blocks (see parallel.hpp).
//
// Motivation: the paper's algorithms are round-based — O(log d) rounds of a
// handful of data-parallel steps each. A backend that creates (or even just
// fork/joins) threads per step pays its dispatch cost hundreds of times per
// run, which dominates small-to-medium rounds. This pool starts its workers
// once (lazily, on the first parallel dispatch), parks them on a condition
// variable between steps with a short adaptive spin, and hands out work in
// contiguous chunks, so a steady-state dispatch is one atomic epoch bump
// plus (usually) zero syscalls.
//
// Work distribution: the index range is cut into chunks of at least `grain`
// elements. Each lane (worker or the calling thread) owns a contiguous
// segment of chunks — deterministic, first-touch-friendly: lane k always
// starts on the same part of the range, so pages a lane faulted in one
// round are re-touched by the same lane the next round. When a lane drains
// its segment it steals whole chunks from other lanes' segments, so skewed
// chunk costs still balance. Every chunk executes exactly once; which lane
// runs it never affects results (the determinism contract in scan.hpp is
// about *what* is computed, never about placement).
//
// Semantics:
//   - run() returns after every chunk completed; the caller participates as
//     lane 0 (a pool of size 1 degenerates to an inline serial loop).
//   - Exceptions thrown by the body are caught, the remaining chunks are
//     abandoned (each lane stops at its next chunk boundary), and the first
//     exception is rethrown on the calling thread after the join.
//   - Reentrant dispatch (a body calling run() again, from any lane) runs
//     the nested range inline and serially — no deadlock, no oversplit.
//   - Concurrent dispatch from two unrelated threads is safe: one acquires
//     the pool, the other falls back to an inline serial loop.
//   - A steady-state dispatch performs no heap allocation (round loops
//     above rely on this for their zero-allocation property).
#pragma once

#include <cstddef>
#include <cstdint>

namespace logcc::util {

class ThreadPool {
 public:
  /// Chunk body: half-open index range [lo, hi).
  using ChunkFn = void (*)(void* ctx, std::size_t lo, std::size_t hi);

  /// The process-wide pool. Workers start on the first run() and are joined
  /// when the process exits (or on shutdown()).
  static ThreadPool& instance();

  /// Target lane count (worker threads + the calling thread). Takes effect
  /// at the next run(); shrinking or growing restarts the worker set.
  void set_lanes(int lanes);
  int lanes() const;

  /// True while the calling thread is inside a run() body (used by the
  /// reentrancy path and by tests).
  static bool in_parallel_region();

  /// Runs chunk(ctx, lo, hi) over [begin, end), cut into chunks of at least
  /// `grain` indices (grain 0 is treated as 1). Blocks until all chunks
  /// completed; rethrows the first body exception.
  void run(std::size_t begin, std::size_t end, std::size_t grain, void* ctx,
           ChunkFn chunk);

  /// Stops and joins all workers. The pool restarts lazily on the next
  /// run() — tests use this to exercise the start/stop cycle.
  void shutdown();

  /// Number of times the worker set was (re)started — observable pool
  /// lifecycle for tests.
  std::uint64_t starts() const;

  ~ThreadPool();

 private:
  ThreadPool();
  struct Impl;
  Impl* impl_;
  Impl& impl();
};

}  // namespace logcc::util
