// Optional worker-lane CPU pinning (LOGCC_PIN) — a scheduling knob for the
// memory hierarchy, never a correctness knob.
//
// The runtime's determinism contract means pinning can only change *where*
// a lane runs, never what it computes: lane k's contiguous chunk segment is
// a pure function of (n, grain, lanes), and the per-lane arenas
// (util/arena.hpp) make lane k's scratch memory lane-local. Pinning closes
// the loop: with stable lane→CPU placement, the pages a lane first-touched
// stay on the NUMA node (and in the L2) of the CPU that keeps touching
// them. Modes, parsed once from LOGCC_PIN:
//
//   none     (default) leave placement to the OS scheduler;
//   compact  lane k → CPU (k mod ncpus): fills cores in order, packing
//            lanes onto the first socket before spilling to the next —
//            best when lanes share data (small working sets);
//   spread   lane k → node (k mod nodes), round-robin: interleaves lanes
//            across NUMA nodes for maximum aggregate memory bandwidth —
//            best for streaming kernels. Degenerates to compact on
//            single-node machines.
//
// Pinning applies to pool worker threads (at spawn) and OpenMP region
// threads (once per thread); the caller's thread — lane 0 — is never
// pinned: the driver may have its own placement policy, and stealing its
// affinity would outlive the dispatch. Non-Linux builds and unknown
// LOGCC_PIN values are a diagnosed no-op.
#pragma once

#include <cstddef>

namespace logcc::util {

enum class PinMode { kNone, kCompact, kSpread };

/// The process-wide pin mode, parsed from LOGCC_PIN on first use.
PinMode pin_mode();
const char* pin_mode_name();

/// Pins the calling thread to the CPU chosen for `lane` under the active
/// mode. Idempotent per thread (repeat calls with the same lane are cheap
/// no-ops) and a no-op for kNone, lane 0, or non-Linux builds.
void pin_current_thread(std::size_t lane);

/// NUMA node count detected from /sys (1 when undetectable). Exposed for
/// the runtime banner and tests.
int numa_node_count();

}  // namespace logcc::util
