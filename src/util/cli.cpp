#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace logcc::util {

Cli::Cli(int argc, char** argv) : program_(argc > 0 ? argv[0] : "prog") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[body] = argv[++i];
      } else {
        values_[body] = "1";  // bare flag
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string Cli::get_string(const std::string& name, const std::string& def,
                            const std::string& help) {
  declared_[name] = {help, def};
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def,
                          const std::string& help) {
  declared_[name] = {help, std::to_string(def)};
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def,
                       const std::string& help) {
  declared_[name] = {help, std::to_string(def)};
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_flag(const std::string& name, const std::string& help) {
  declared_[name] = {help, "false"};
  auto it = values_.find(name);
  return it != values_.end() && it->second != "0" && it->second != "false";
}

void Cli::finish() {
  bool bad = false;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!declared_.count(name)) {
      std::fprintf(stderr, "%s: unknown option --%s\n", program_.c_str(),
                   name.c_str());
      bad = true;
    }
  }
  if (help_requested_ || bad) {
    std::fprintf(bad ? stderr : stdout, "usage: %s [options]\n",
                 program_.c_str());
    for (const auto& [name, decl] : declared_) {
      std::fprintf(bad ? stderr : stdout, "  --%-24s %s (default: %s)\n",
                   name.c_str(), decl.help.c_str(), decl.def.c_str());
    }
    std::exit(bad ? 2 : 0);
  }
}

}  // namespace logcc::util
