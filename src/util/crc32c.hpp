// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding the durability layer's on-disk records (serve/wal,
// serve/checkpoint).
//
// Why CRC32C and not the repo's mix64 hashes: a CRC detects *every* burst
// error up to 32 bits and all odd-bit-count corruptions — exactly the
// failure shapes of torn writes and bit rot — with a well-known, externally
// reproducible value (the same polynomial iSCSI, ext4 and LevelDB use), so
// a log written here can be validated by standard tooling.
//
// Implementation: slicing-by-4 table lookup, portable C++ (no SSE4.2
// dependency — the durability layer is cold-path I/O, not a hot kernel).
// Values match the reference test vectors (RFC 3720 appendix B.4).
#pragma once

#include <cstddef>
#include <cstdint>

namespace logcc::util {

/// CRC32C of `data[0, size)`. `seed` chains incremental computation:
/// crc32c(ab) == crc32c(b, n_b, crc32c(a, n_a)).
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace logcc::util
