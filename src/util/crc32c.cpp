#include "util/crc32c.hpp"

#include <array>

namespace logcc::util {

namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // t[k][b]: CRC of byte b followed by k zero bytes — slicing-by-4.
  std::uint32_t t[4][256];
};

constexpr Tables make_tables() {
  Tables out{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    out.t[0][b] = crc;
  }
  for (std::uint32_t b = 0; b < 256; ++b)
    for (int k = 1; k < 4; ++k)
      out.t[k][b] = (out.t[k - 1][b] >> 8) ^ out.t[0][out.t[k - 1][b] & 0xFFu];
  return out;
}

constexpr Tables kTables = make_tables();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFFu] ^ kTables.t[2][(crc >> 8) & 0xFFu] ^
          kTables.t[1][(crc >> 16) & 0xFFu] ^ kTables.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace logcc::util
