// Memory-mapped file helpers for the binary graph I/O layer.
//
// Two RAII shapes:
//   MmapFile::open_read(path)      — read-only zero-copy view of an existing
//                                    file (the loader path).
//   MmapFile::create_rw(path, sz)  — create/truncate a file of exactly `sz`
//                                    bytes and map it writeable (the
//                                    streaming-writer path: generators
//                                    scatter arcs straight into the mapping,
//                                    so no in-memory edge list ever exists).
//
// On POSIX these are real mmap(2) mappings. On platforms without mmap the
// read path falls back to a heap buffer (correct, not zero-copy) and the
// write path is unavailable; callers can query `is_mapped()`.
//
// Postconditions: a default-constructed or moved-from MmapFile is empty
// (`valid() == false`, `size() == 0`). Mappings are released (and rw
// mappings flushed) by the destructor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace logcc::util {

/// Page-population policy for read mappings. Default (kNone) faults pages
/// in lazily on first touch; the eager modes trade load latency for
/// first-sweep latency on large cold datasets (cc_bench --populate sweeps
/// this and records the mode in bench.json):
///   kWillNeed — madvise(MADV_WILLNEED): asynchronous readahead hint.
///   kPopulate — MAP_POPULATE (Linux): synchronously pre-fault every page
///               at mmap time (falls back to kWillNeed where unsupported).
enum class MmapPopulate { kNone, kWillNeed, kPopulate };

const char* to_string(MmapPopulate populate);

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { reset(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. On failure returns an invalid MmapFile and, if
  /// `error` is non-null, stores a human-readable reason (including the
  /// errno string for system-call failures). Empty files map as valid with
  /// size 0. `populate` selects eager page population (a no-op for the heap
  /// fallback, which is eager by nature). `min_size` rejects files smaller
  /// than the caller's fixed header BEFORE mapping — a truncated file never
  /// hands out a view the header parse would read past.
  static MmapFile open_read(const std::string& path,
                            std::string* error = nullptr,
                            MmapPopulate populate = MmapPopulate::kNone,
                            std::size_t min_size = 0);

  /// Creates (or truncates) `path`, sizes it to exactly `size` bytes, and
  /// maps it read-write. The mapping is flushed and unmapped on destruction
  /// or reset(). `size` must be > 0.
  static MmapFile create_rw(const std::string& path, std::size_t size,
                            std::string* error = nullptr);

  bool valid() const { return data_ != nullptr || (size_ == 0 && opened_); }
  /// True when the bytes come from a real mmap (zero-copy), false when the
  /// read fallback copied the file into a heap buffer.
  bool is_mapped() const { return mapped_; }
  bool writable() const { return writable_; }

  const std::uint8_t* data() const { return data_; }
  std::uint8_t* mutable_data() { return writable_ ? data_ : nullptr; }
  std::size_t size() const { return size_; }

  /// Flushes a writeable mapping to disk (msync). No-op for read-only or
  /// fallback buffers. Returns false if the flush failed.
  bool sync();

  /// Unmaps/frees and returns to the empty state.
  void reset();

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;    // real mmap vs heap fallback
  bool writable_ = false;
  bool opened_ = false;    // distinguishes "empty file" from "never opened"
};

}  // namespace logcc::util
