// Minimal command-line option parser for the examples and bench binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag`. Unknown
// options abort with a usage message so typos in bench sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace logcc::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Declares an option (for --help and unknown-option checking) and returns
  /// its value or the default.
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help = "");
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help = "");
  double get_double(const std::string& name, double def,
                    const std::string& help = "");
  bool get_flag(const std::string& name, const std::string& help = "");

  /// Call after all get_* declarations: exits(2) on unknown options, prints
  /// help and exits(0) if --help was passed.
  void finish();

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  struct Decl {
    std::string help;
    std::string def;
  };
  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, Decl> declared_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace logcc::util
