// Wall-clock timer for the bench harness.
#pragma once

#include <chrono>

namespace logcc::util {

class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace logcc::util
