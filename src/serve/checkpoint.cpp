#include "serve/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "graph/binary_io.hpp"  // kEndianTag
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"
#include "util/mmap_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LOGCC_CKP_POSIX 1
#include <fcntl.h>
#include <libgen.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace logcc::serve {

using util::Status;

namespace {

std::string errno_suffix() {
  return std::string(" (") + std::strerror(errno) + ")";
}

constexpr std::size_t kHeaderCrcSpan =
    sizeof(CheckpointHeader) - sizeof(std::uint32_t);

#ifdef LOGCC_CKP_POSIX
/// fsyncs the directory containing `path` so the rename itself is durable.
Status sync_parent_dir(const std::string& path) {
  std::string copy = path;
  const char* dir = ::dirname(copy.data());
  const int dfd = ::open(dir, O_RDONLY | O_DIRECTORY);
  if (dfd < 0)
    return Status::io_error("cannot open directory of '" + path +
                            "' for fsync" + errno_suffix());
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0)
    return Status::io_error("directory fsync failed for '" + path + "'" +
                            errno_suffix());
  return Status::ok();
}
#endif

}  // namespace

util::Status write_checkpoint(const std::string& path,
                              const CheckpointState& state) {
#ifdef LOGCC_CKP_POSIX
  if (state.labels.size() != state.n)
    return Status::invalid_argument(
        "checkpoint labels/n mismatch: " +
        std::to_string(state.labels.size()) + " labels for n=" +
        std::to_string(state.n));

  CheckpointHeader header{};
  std::memcpy(header.magic, kCheckpointMagic, sizeof kCheckpointMagic);
  header.version = kCheckpointVersion;
  header.endian = graph::kEndianTag;
  header.n = state.n;
  header.epoch = state.epoch;
  header.batches = state.batches;
  header.wal_offset = state.wal_offset;
  header.num_components = state.num_components;
  const std::uint64_t payload_bytes =
      state.n * sizeof(graph::VertexId);
  header.payload_crc = util::crc32c(state.labels.data(), payload_bytes);
  header.header_crc = util::crc32c(&header, kHeaderCrcSpan);

  const std::string tmp = path + ".tmp";
  if (LOGCC_FAILPOINT("checkpoint_open"))
    return Status::io_error("injected checkpoint open failure for '" + tmp +
                            "'");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return Status::io_error("cannot create checkpoint tmp '" + tmp + "'" +
                            errno_suffix());

  auto write_all = [&](const void* data, std::size_t size,
                       std::uint64_t at) -> Status {
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::size_t written = 0;
    while (written < size) {
      const ssize_t rc = ::pwrite(fd, p + written, size - written,
                                  static_cast<off_t>(at + written));
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::io_error("short write on checkpoint tmp '" + tmp +
                                "'" + errno_suffix());
      }
      written += static_cast<std::size_t>(rc);
    }
    return Status::ok();
  };

  Status s;
  if (LOGCC_FAILPOINT("checkpoint_write"))
    s = Status::io_error("injected checkpoint write failure for '" + tmp +
                         "'");
  if (s.is_ok()) s = write_all(&header, sizeof header, 0);
  if (s.is_ok() && payload_bytes > 0)
    s = write_all(state.labels.data(), payload_bytes, sizeof header);
  if (s.is_ok() && LOGCC_FAILPOINT("checkpoint_sync"))
    s = Status::io_error("injected checkpoint fsync failure for '" + tmp +
                         "'");
  if (s.is_ok() && ::fsync(fd) != 0)
    s = Status::io_error("fsync failed on checkpoint tmp '" + tmp + "'" +
                         errno_suffix());
  ::close(fd);
  if (!s.is_ok()) {
    std::remove(tmp.c_str());
    return s;
  }

  // The atomicity pivot: before this rename the live checkpoint is the old
  // one, after it the new one. The crash failpoints bracket it so the
  // recovery suite proves both sides restore a consistent state.
  if (LOGCC_FAILPOINT("checkpoint_before_rename")) {
    std::remove(tmp.c_str());
    return Status::io_error("injected failure before checkpoint rename of '" +
                            path + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rs = Status::io_error("cannot rename checkpoint '" + tmp +
                                       "' into place" + errno_suffix());
    std::remove(tmp.c_str());
    return rs;
  }
  if (LOGCC_FAILPOINT("checkpoint_after_rename"))
    return Status::io_error("injected failure after checkpoint rename of '" +
                            path + "'");
  return sync_parent_dir(path);
#else
  (void)path;
  (void)state;
  return Status::failed_precondition(
      "checkpoints need POSIX file I/O on this platform");
#endif
}

util::Status read_checkpoint(const std::string& path, CheckpointState* out) {
#ifdef LOGCC_CKP_POSIX
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT)
      return Status::not_found("no checkpoint at '" + path + "'");
    return Status::io_error("cannot stat checkpoint '" + path + "'" +
                            errno_suffix());
  }
  if (static_cast<std::size_t>(st.st_size) < sizeof(CheckpointHeader))
    return Status::corruption("checkpoint '" + path +
                              "' shorter than its header (" +
                              std::to_string(st.st_size) + " bytes)");
#endif
  std::string map_error;
  util::MmapFile map = util::MmapFile::open_read(
      path, &map_error, util::MmapPopulate::kNone, sizeof(CheckpointHeader));
  if (!map.valid())
    return Status::io_error("cannot read checkpoint '" + path +
                            "': " + map_error);
  CheckpointHeader header;
  std::memcpy(&header, map.data(), sizeof header);
  if (std::memcmp(header.magic, kCheckpointMagic, sizeof kCheckpointMagic) !=
      0)
    return Status::corruption("checkpoint '" + path + "' has a bad magic");
  if (header.version != kCheckpointVersion)
    return Status::corruption("checkpoint '" + path + "' has version " +
                              std::to_string(header.version));
  if (header.endian != graph::kEndianTag)
    return Status::corruption("checkpoint '" + path +
                              "' was written on a foreign-endian host");
  if (util::crc32c(&header, kHeaderCrcSpan) != header.header_crc)
    return Status::corruption("checkpoint '" + path +
                              "' header checksum mismatch");
  const std::uint64_t payload_bytes =
      header.n * sizeof(graph::VertexId);
  if (map.size() != sizeof(CheckpointHeader) + payload_bytes)
    return Status::corruption(
        "checkpoint '" + path + "' has " + std::to_string(map.size()) +
        " bytes, want " +
        std::to_string(sizeof(CheckpointHeader) + payload_bytes));
  const std::uint8_t* payload = map.data() + sizeof(CheckpointHeader);
  if (util::crc32c(payload, payload_bytes) != header.payload_crc)
    return Status::corruption("checkpoint '" + path +
                              "' payload checksum mismatch");

  CheckpointState state;
  state.n = header.n;
  state.epoch = header.epoch;
  state.batches = header.batches;
  state.wal_offset = header.wal_offset;
  state.num_components = header.num_components;
  state.labels.resize(header.n);
  if (payload_bytes > 0)
    std::memcpy(state.labels.data(), payload, payload_bytes);
  // Canonicity is part of validity: a checkpoint whose labels are not flat
  // min-id form would poison every later merge.
  for (std::uint64_t v = 0; v < header.n; ++v) {
    const graph::VertexId l = state.labels[v];
    if (l > v || state.labels[l] != l)
      return Status::corruption("checkpoint '" + path +
                                "' labels are not canonical at vertex " +
                                std::to_string(v));
  }
  *out = std::move(state);
  return Status::ok();
}

}  // namespace logcc::serve
