// Write-ahead edge log ("LOGCCWAL1"): the durability backbone of the
// serving layer (docs/ARCHITECTURE.md "Durability & fault tolerance";
// on-disk layout in docs/FILE_FORMATS.md).
//
// The ConnectivityEngine appends every edge batch here BEFORE merging it
// into the incremental forest, so the durable file is always a superset of
// the in-memory state and recovery is a deterministic replay: load the
// latest checkpoint, then re-apply the WAL suffix. Because every engine
// operation is bit-deterministic (the repo's determinism contract), the
// recovered ComponentIndex equals the never-crashed one *bitwise* — the
// invariant the fault-labelled test suite enforces at every failpoint.
//
// File layout (all fields native-endian, tagged):
//
//   [ 32-byte WalHeader ][ record ]*
//   record = u32 payload_bytes | u32 crc32c(payload) | payload
//   payload = batch edges as (u, v) u32 pairs (payload_bytes = 8 * edges)
//
// Torn tails: a crash mid-append leaves a record whose header or payload is
// short, or whose CRC does not match. replay() stops at the first invalid
// record and reports the valid prefix; open_for_append() truncates the file
// back to that prefix, so one torn batch is dropped exactly as if the crash
// had happened just before its append — never a half-applied batch.
//
// Fsync policy (WalOptions::fsync):
//   kNone    — never fsync (page cache only; survives process death, not
//              power loss). The bench default: durability off the hot path.
//   kBatch   — fsync after every append (every batch is power-loss safe).
//   kEveryN  — fsync after every N appends and on sync()/close.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "util/status.hpp"

namespace logcc::serve {

inline constexpr char kWalMagic[8] = {'L', 'O', 'G', 'C', 'C', 'W', 'A', 'L'};
inline constexpr std::uint32_t kWalVersion = 1;

/// 32-byte WAL file header ("LOGCCWAL1" = magic + version). Native-endian
/// with the shared endianness tag (graph/binary_io.hpp convention).
struct WalHeader {
  char magic[8];          // kWalMagic
  std::uint32_t version;  // kWalVersion
  std::uint32_t endian;   // graph::kEndianTag
  std::uint64_t n;        // vertex universe of the logged stream
  std::uint64_t reserved;
};
static_assert(sizeof(WalHeader) == 32, "WAL header must stay 32 bytes");

enum class WalFsync { kNone, kBatch, kEveryN };

const char* to_string(WalFsync fsync);
/// Parses "none" | "batch" | "every-n"; returns false on anything else.
bool wal_fsync_from_string(const std::string& name, WalFsync* out);

struct WalOptions {
  WalFsync fsync = WalFsync::kBatch;
  /// Appends between fsyncs under kEveryN (must be > 0 there).
  std::uint64_t every_n = 64;
};

/// What a replay scan of an existing WAL found.
struct WalScan {
  std::uint64_t n = 0;              // header vertex universe
  std::uint64_t records = 0;        // valid records (batches)
  std::uint64_t edges = 0;          // edges across valid records
  std::uint64_t valid_bytes = 0;    // offset just past the last valid record
  std::uint64_t torn_bytes = 0;     // trailing bytes past the valid prefix
};

/// Scans `path`, invoking `on_batch(record_start_offset, edges)` for every
/// valid record in order. Stops at the first torn/corrupt record (reported
/// via `scan->torn_bytes`; scanning NEVER fails on a torn tail — that is
/// the expected post-crash state). `on_batch` may be null (pure scan).
/// Returns kNotFound when the file does not exist, kCorruption when the
/// header itself is invalid.
util::Status wal_replay(
    const std::string& path,
    const std::function<void(std::uint64_t, std::span<const graph::Edge>)>&
        on_batch,
    WalScan* scan = nullptr);

/// Append handle on a WAL file. Single writer (the engine's writer thread);
/// not thread-safe.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { close(); }
  WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates (truncating) a fresh WAL for vertex universe [0, n).
  static util::Status create(const std::string& path, std::uint64_t n,
                             WalOptions options, WalWriter* out);

  /// Opens an existing WAL for appending: validates the header against `n`,
  /// truncates a torn tail back to the last valid record (reported in
  /// `scan` when non-null), and positions the write cursor at the end of
  /// the valid prefix. A missing file is created fresh (kNotFound is never
  /// returned — recovery treats "no log yet" as an empty log).
  static util::Status open_for_append(const std::string& path,
                                      std::uint64_t n, WalOptions options,
                                      WalWriter* out, WalScan* scan = nullptr);

  /// Appends one batch record (write-ahead: call BEFORE applying the batch)
  /// and applies the fsync policy. Transient write failures (EINTR/EAGAIN
  /// class) are retried with backoff internally; the returned error is
  /// already final. On error the file may hold a torn record — the next
  /// open_for_append truncates it.
  util::Status append(std::span<const graph::Edge> batch);

  /// Forces everything appended so far to durable storage (fsync),
  /// regardless of policy. The clean-shutdown path.
  util::Status sync();

  /// Byte offset one past the last appended record — what a checkpoint
  /// stores so recovery can replay exactly the suffix.
  std::uint64_t offset() const { return offset_; }
  std::uint64_t records() const { return records_; }
  bool is_open() const { return fd_ >= 0; }

  void close();

 private:
  util::Status open_fd(const std::string& path, bool truncate);
  util::Status write_header(std::uint64_t n);

  int fd_ = -1;
  std::string path_;
  WalOptions options_;
  std::uint64_t offset_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t unsynced_appends_ = 0;
};

}  // namespace logcc::serve
