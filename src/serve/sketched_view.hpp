// SketchedView: the serving layer's approximate tier — per-epoch sketch
// summaries built next to the exact core::ComponentIndex so queries can
// opt into cheap estimates (docs/ARCHITECTURE.md "Approximate tier").
//
// An exact ComponentIndex carries an O(n) sizes array; a SketchedView
// answers the same "how many components / how big is v's component"
// questions from a few KB of sketch state: a HyperLogLog over the label
// array (distinct labels == components) and a standard-mode CountMinSketch
// over it (label multiplicity == component size, overestimate-only by
// at most epsilon * n with the usual count-min probability).
//
// Like the index it summarizes, a view is an immutable snapshot: build()
// runs once per epoch (order-invariant parallel sketch fills — the result
// is bit-identical for every thread count and backend) and the engine
// swaps it behind an EpochPtr together with the exact snapshot it holds a
// reference to, so an approximate answer is always consistent with ONE
// epoch's labels, never a mix.
//
// Seed discipline: the two sketches derive their seeds from the same
// sub-seed streams as sketch::StreamStats::finish (kComponentHllStream /
// kSizeCmsStream), so the streaming one-pass path and the serving snapshot
// path produce bit-identical sketch state from identical labels — the
// cross-path differential check of tests/test_differential_sketch.cpp.
#pragma once

#include <cstdint>
#include <memory>

#include "core/component_index.hpp"
#include "sketch/count_min.hpp"
#include "sketch/hyperloglog.hpp"

namespace logcc::serve {

struct SketchedViewOptions {
  int hll_precision = 12;
  std::uint32_t cms_depth = 4;
  std::uint32_t cms_width = 1u << 14;
  std::uint64_t seed = 1;
};

class SketchedView {
 public:
  SketchedView() = default;

  /// Builds the sketch tier for one epoch's snapshot (non-null). The view
  /// keeps the shared_ptr, so its estimates always refer to exactly that
  /// epoch's labels.
  static SketchedView build(
      std::shared_ptr<const core::ComponentIndex> index,
      SketchedViewOptions options = {});

  /// HLL estimate of the component count; ±standard_error relative.
  double approx_component_count() const { return count_hll_.estimate(); }
  double count_standard_error() const { return count_hll_.standard_error(); }

  /// Count-min estimate of the size of v's component: never below the
  /// exact size, above by more than size_epsilon() * n only with
  /// probability e^-depth.
  std::uint64_t approx_component_size(graph::VertexId v) const {
    return size_cms_.estimate(index_->component_of(v));
  }
  double size_epsilon() const { return size_cms_.epsilon(); }

  /// The exact snapshot this view was built from (null only when default-
  /// constructed).
  const std::shared_ptr<const core::ComponentIndex>& index() const {
    return index_;
  }

  const sketch::HyperLogLog& count_hll() const { return count_hll_; }
  const sketch::CountMinSketch& size_cms() const { return size_cms_; }
  /// Sketch state only (the point: KBs against the index's O(n) arrays).
  std::uint64_t memory_bytes() const {
    return count_hll_.memory_bytes() + size_cms_.memory_bytes();
  }

 private:
  std::shared_ptr<const core::ComponentIndex> index_;
  sketch::HyperLogLog count_hll_;
  sketch::CountMinSketch size_cms_;
};

}  // namespace logcc::serve
