#include "serve/wal.hpp"

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "graph/binary_io.hpp"  // kEndianTag
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"
#include "util/mmap_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LOGCC_WAL_POSIX 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace logcc::serve {

using util::Status;

namespace {

std::string errno_suffix() {
  return std::string(" (") + std::strerror(errno) + ")";
}

/// Per-record on-disk prefix.
struct RecordHeader {
  std::uint32_t payload_bytes;
  std::uint32_t crc;
};
static_assert(sizeof(RecordHeader) == 8, "record header must stay 8 bytes");

constexpr std::uint64_t kMaxRecordPayload = 1ull << 30;  // 128M edges/batch

}  // namespace

const char* to_string(WalFsync fsync) {
  switch (fsync) {
    case WalFsync::kNone: return "none";
    case WalFsync::kBatch: return "batch";
    case WalFsync::kEveryN: return "every-n";
  }
  return "?";
}

bool wal_fsync_from_string(const std::string& name, WalFsync* out) {
  if (name == "none") *out = WalFsync::kNone;
  else if (name == "batch") *out = WalFsync::kBatch;
  else if (name == "every-n") *out = WalFsync::kEveryN;
  else return false;
  return true;
}

util::Status wal_replay(
    const std::string& path,
    const std::function<void(std::uint64_t, std::span<const graph::Edge>)>&
        on_batch,
    WalScan* scan) {
  WalScan local;
  WalScan& s = scan ? *scan : local;
  s = WalScan{};

#ifdef LOGCC_WAL_POSIX
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT)
      return Status::not_found("no WAL at '" + path + "'");
    return Status::io_error("cannot stat WAL '" + path + "'" +
                            errno_suffix());
  }
  if (static_cast<std::size_t>(st.st_size) < sizeof(WalHeader))
    return Status::corruption("WAL '" + path + "' shorter than its header (" +
                              std::to_string(st.st_size) + " bytes)");
#endif
  if (LOGCC_FAILPOINT("wal_replay_read"))
    return Status::io_error("injected WAL read failure for '" + path + "'");

  std::string map_error;
  util::MmapFile map = util::MmapFile::open_read(
      path, &map_error, util::MmapPopulate::kNone, sizeof(WalHeader));
  if (!map.valid())
    return Status::io_error("cannot read WAL '" + path + "': " + map_error);
  WalHeader header;
  std::memcpy(&header, map.data(), sizeof header);
  if (std::memcmp(header.magic, kWalMagic, sizeof kWalMagic) != 0)
    return Status::corruption("WAL '" + path + "' has a bad magic");
  if (header.version != kWalVersion)
    return Status::corruption("WAL '" + path + "' has version " +
                              std::to_string(header.version) + " (want " +
                              std::to_string(kWalVersion) + ")");
  if (header.endian != graph::kEndianTag)
    return Status::corruption("WAL '" + path +
                              "' was written on a foreign-endian host");
  s.n = header.n;

  // Record scan. The first record that does not fully parse is the torn
  // tail: stop there and report the valid prefix. (A record is 8-aligned by
  // construction — header 32B, record = 8B + 8B*edges — so the payload can
  // be viewed in place.)
  std::uint64_t off = sizeof(WalHeader);
  while (off < map.size()) {
    if (map.size() - off < sizeof(RecordHeader)) break;  // torn header
    RecordHeader rec;
    std::memcpy(&rec, map.data() + off, sizeof rec);
    if (rec.payload_bytes % sizeof(graph::Edge) != 0 ||
        rec.payload_bytes > kMaxRecordPayload)
      break;  // impossible length: treat as torn
    if (map.size() - off - sizeof(RecordHeader) < rec.payload_bytes)
      break;  // torn payload
    const std::uint8_t* payload = map.data() + off + sizeof(RecordHeader);
    if (util::crc32c(payload, rec.payload_bytes) != rec.crc) break;  // torn
    const auto* edges = reinterpret_cast<const graph::Edge*>(payload);
    const std::size_t count = rec.payload_bytes / sizeof(graph::Edge);
    // Endpoint validation is part of record validity: a CRC-clean record
    // with an out-of-universe id is corruption (or a foreign stream), and
    // stopping here keeps the replay callback's `endpoints < n` contract.
    bool in_range = true;
    for (std::size_t i = 0; i < count && in_range; ++i)
      in_range = edges[i].u < header.n && edges[i].v < header.n;
    if (!in_range) break;
    if (on_batch)
      on_batch(off, std::span<const graph::Edge>(edges, count));
    s.records += 1;
    s.edges += count;
    off += sizeof(RecordHeader) + rec.payload_bytes;
  }
  s.valid_bytes = off;
  s.torn_bytes = map.size() - off;
  return Status::ok();
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    options_ = other.options_;
    offset_ = std::exchange(other.offset_, 0);
    records_ = std::exchange(other.records_, 0);
    unsynced_appends_ = std::exchange(other.unsynced_appends_, 0);
  }
  return *this;
}

void WalWriter::close() {
#ifdef LOGCC_WAL_POSIX
  if (fd_ >= 0) {
    if (options_.fsync != WalFsync::kNone && unsynced_appends_ > 0)
      ::fsync(fd_);  // best effort; the Status-returning path is sync()
    ::close(fd_);
  }
#endif
  fd_ = -1;
  offset_ = 0;
  records_ = 0;
  unsynced_appends_ = 0;
}

util::Status WalWriter::open_fd(const std::string& path, bool truncate) {
#ifdef LOGCC_WAL_POSIX
  if (LOGCC_FAILPOINT("wal_open"))
    return Status::io_error("injected WAL open failure for '" + path + "'");
  const int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0)
    return Status::io_error("cannot open WAL '" + path + "'" +
                            errno_suffix());
  path_ = path;
  return Status::ok();
#else
  (void)path;
  (void)truncate;
  return Status::failed_precondition(
      "the WAL needs POSIX file I/O on this platform");
#endif
}

util::Status WalWriter::write_header(std::uint64_t n) {
#ifdef LOGCC_WAL_POSIX
  WalHeader header{};
  std::memcpy(header.magic, kWalMagic, sizeof kWalMagic);
  header.version = kWalVersion;
  header.endian = graph::kEndianTag;
  header.n = n;
  if (::pwrite(fd_, &header, sizeof header, 0) !=
      static_cast<ssize_t>(sizeof header))
    return Status::io_error("cannot write WAL header to '" + path_ + "'" +
                            errno_suffix());
  offset_ = sizeof header;
  return Status::ok();
#else
  (void)n;
  return Status::failed_precondition("no POSIX file I/O");
#endif
}

util::Status WalWriter::create(const std::string& path, std::uint64_t n,
                               WalOptions options, WalWriter* out) {
  if (options.fsync == WalFsync::kEveryN && options.every_n == 0)
    return Status::invalid_argument("WalFsync::kEveryN needs every_n > 0");
  WalWriter w;
  w.options_ = options;
  if (Status s = w.open_fd(path, /*truncate=*/true); !s.is_ok()) return s;
  if (Status s = w.write_header(n); !s.is_ok()) return s;
  *out = std::move(w);
  return Status::ok();
}

util::Status WalWriter::open_for_append(const std::string& path,
                                        std::uint64_t n, WalOptions options,
                                        WalWriter* out, WalScan* scan) {
  WalScan local;
  WalScan& s = scan ? *scan : local;
  Status st = wal_replay(path, nullptr, &s);
  if (st.code() == util::StatusCode::kNotFound)
    return create(path, n, options, out);
  if (!st.is_ok()) return st;
  if (s.n != n)
    return Status::corruption(
        "WAL '" + path + "' logs a stream over n=" + std::to_string(s.n) +
        ", engine expects n=" + std::to_string(n));

  WalWriter w;
  w.options_ = options;
  if (options.fsync == WalFsync::kEveryN && options.every_n == 0)
    return Status::invalid_argument("WalFsync::kEveryN needs every_n > 0");
  if (Status so = w.open_fd(path, /*truncate=*/false); !so.is_ok()) return so;
#ifdef LOGCC_WAL_POSIX
  // Drop the torn tail so the file ends exactly at the last valid record —
  // the crash happened "just before" the torn batch's append.
  if (s.torn_bytes > 0 &&
      ::ftruncate(w.fd_, static_cast<off_t>(s.valid_bytes)) != 0)
    return Status::io_error("cannot truncate torn WAL tail of '" + path +
                            "'" + errno_suffix());
#endif
  w.offset_ = s.valid_bytes;
  w.records_ = s.records;
  *out = std::move(w);
  return Status::ok();
}

util::Status WalWriter::append(std::span<const graph::Edge> batch) {
#ifdef LOGCC_WAL_POSIX
  if (fd_ < 0)
    return Status::failed_precondition("append on a closed WalWriter");
  const std::uint64_t payload_bytes = batch.size_bytes();
  if (payload_bytes > kMaxRecordPayload)
    return Status::invalid_argument("WAL batch larger than the record cap");

  // One contiguous buffer so a record hits the kernel in a single pwrite —
  // the only torn states a crash can leave are prefixes of one record.
  std::vector<std::uint8_t> buf(sizeof(RecordHeader) + payload_bytes);
  RecordHeader rec;
  rec.payload_bytes = static_cast<std::uint32_t>(payload_bytes);
  rec.crc = util::crc32c(batch.data(), payload_bytes);
  std::memcpy(buf.data(), &rec, sizeof rec);
  if (payload_bytes > 0)
    std::memcpy(buf.data() + sizeof rec, batch.data(), payload_bytes);

  const std::uint64_t start = offset_;
  // Transient failures (EINTR/EAGAIN, injected "once" faults) retry with
  // backoff after rewinding the file to the record start, so a retried
  // append never duplicates a partial prefix.
  Status s = util::retry_with_backoff([&]() -> Status {
    if (LOGCC_FAILPOINT("wal_append_write")) {
      // Model a short write: leave a torn prefix behind, then fail. A
      // "once"-armed site heals on the retry; "error" stays failed and the
      // next open_for_append truncates the tear.
      ::pwrite(fd_, buf.data(), buf.size() / 2, static_cast<off_t>(start));
      return Status::io_error("injected short write on '" + path_ + "'",
                              /*transient=*/true);
    }
    std::size_t written = 0;
    while (written < buf.size()) {
      const ssize_t rc =
          ::pwrite(fd_, buf.data() + written, buf.size() - written,
                   static_cast<off_t>(start + written));
      if (rc < 0) {
        if (errno == EINTR) continue;
        const bool transient = errno == EAGAIN;
        (void)::ftruncate(fd_, static_cast<off_t>(start));
        return Status::io_error("short write on WAL '" + path_ + "' at " +
                                    std::to_string(start + written) +
                                    errno_suffix(),
                                transient);
      }
      written += static_cast<std::size_t>(rc);
    }
    return Status::ok();
  });
  if (!s.is_ok()) {
    // Best-effort rewind; if even that fails the torn tail is dropped by
    // the next open_for_append.
    (void)::ftruncate(fd_, static_cast<off_t>(start));
    return s;
  }

  offset_ = start + buf.size();
  records_ += 1;
  unsynced_appends_ += 1;
  if (options_.fsync == WalFsync::kBatch ||
      (options_.fsync == WalFsync::kEveryN &&
       unsynced_appends_ >= options_.every_n))
    return sync();
  return Status::ok();
#else
  (void)batch;
  return Status::failed_precondition("no POSIX file I/O");
#endif
}

util::Status WalWriter::sync() {
#ifdef LOGCC_WAL_POSIX
  if (fd_ < 0)
    return Status::failed_precondition("sync on a closed WalWriter");
  if (LOGCC_FAILPOINT("wal_fsync"))
    return Status::io_error("injected fsync failure on '" + path_ + "'");
  if (::fsync(fd_) != 0)
    return Status::io_error("fsync failed on WAL '" + path_ + "'" +
                            errno_suffix());
  unsynced_appends_ = 0;
  return Status::ok();
#else
  return Status::failed_precondition("no POSIX file I/O");
#endif
}

}  // namespace logcc::serve
