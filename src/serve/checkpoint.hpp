// ComponentIndex checkpoints ("LOGCCKP1"): the fast-recovery half of the
// durability layer (serve/wal.hpp is the complete-history half; layout in
// docs/FILE_FORMATS.md).
//
// A checkpoint is one epoch's canonical min-id label array plus the WAL
// byte offset it corresponds to: recovery loads the labels, then replays
// only the WAL records past that offset instead of the whole stream. The
// sizes array and component count are NOT stored — they are recomputed
// from the canonical labels by ComponentIndex::from_canonical_labels, the
// same deterministic pass every publisher runs, so a checkpoint cannot
// smuggle in an inconsistent (labels, sizes) pair.
//
// Atomicity: the state is written to `path + ".tmp"`, fsynced, and renamed
// into place (then the directory is fsynced). A crash at ANY point leaves
// either the previous complete checkpoint or the new complete checkpoint —
// never a half-written file under the live name. Both header and payload
// carry CRC32C checksums; a checkpoint that fails validation is reported
// as corruption and recovery falls back to a full WAL replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/status.hpp"

namespace logcc::serve {

inline constexpr char kCheckpointMagic[8] = {'L', 'O', 'G', 'C',
                                             'C', 'K', 'P', '1'};
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// 64-byte checkpoint header. Native-endian, tagged; `header_crc` covers
/// the preceding 60 bytes, `payload_crc` the labels array that follows.
struct CheckpointHeader {
  char magic[8];                 // kCheckpointMagic
  std::uint32_t version;         // kCheckpointVersion
  std::uint32_t endian;          // graph::kEndianTag
  std::uint64_t n;               // vertices; payload is n u32 labels
  std::uint64_t epoch;           // engine epoch the snapshot was taken at
  std::uint64_t batches;         // batches applied up to this snapshot
  std::uint64_t wal_offset;      // replay the WAL from this byte offset
  std::uint64_t num_components;  // cross-checked against the rebuilt index
  std::uint32_t payload_crc;     // crc32c of the labels payload
  std::uint32_t header_crc;      // crc32c of header bytes [0, 60)
};
static_assert(sizeof(CheckpointHeader) == 64,
              "checkpoint header must stay 64 bytes");

/// One recoverable engine state: what write_checkpoint persists and
/// read_checkpoint returns.
struct CheckpointState {
  std::uint64_t n = 0;
  std::uint64_t epoch = 0;
  std::uint64_t batches = 0;
  std::uint64_t wal_offset = 0;
  std::uint64_t num_components = 0;
  /// Canonical min-id labels (labels[v] <= v, labels[labels[v]] ==
  /// labels[v]) — the engine's flat forest.
  std::vector<graph::VertexId> labels;
};

/// Atomically replaces the checkpoint at `path` (tmp + fsync + rename +
/// directory fsync). `state.labels.size()` must equal `state.n`.
util::Status write_checkpoint(const std::string& path,
                              const CheckpointState& state);

/// Loads and validates the checkpoint at `path`. kNotFound when absent
/// (recovery then replays the WAL from the start); kCorruption on any
/// checksum/size/canonicity violation — a corrupt checkpoint never yields
/// state.
util::Status read_checkpoint(const std::string& path, CheckpointState* out);

}  // namespace logcc::serve
