#include "serve/sketched_view.hpp"

#include <span>

#include "sketch/stream_stats.hpp"
#include "util/check.hpp"

namespace logcc::serve {

SketchedView SketchedView::build(
    std::shared_ptr<const core::ComponentIndex> index,
    SketchedViewOptions options) {
  LOGCC_CHECK_MSG(index != nullptr, "SketchedView::build: null index");
  SketchedView view;
  view.count_hll_ = sketch::HyperLogLog(
      options.hll_precision,
      util::mix64(options.seed, sketch::kComponentHllStream));
  view.size_cms_ = sketch::CountMinSketch(
      options.cms_depth, options.cms_width,
      util::mix64(options.seed, sketch::kSizeCmsStream),
      sketch::CmsUpdate::kStandard);
  const std::span<const graph::VertexId> labels(index->labels());
  view.count_hll_.add_parallel(labels);
  view.size_cms_.add_parallel(labels);
  view.index_ = std::move(index);
  return view;
}

}  // namespace logcc::serve
