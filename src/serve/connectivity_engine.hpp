// ConnectivityEngine: the long-running incremental side of the repo — the
// "millions of users, heavy traffic" scenario from ROADMAP item 1.
//
// One writer thread feeds batches of edge insertions into a live graph
// (graph::EdgeLog); each batch is merged into the maintained components by
// a multi-threaded min-combining hook + shortcut fixpoint over just the
// batch edges (the Liu–Tarjan machinery of baselines/lt_family.cpp,
// specialized to an always-flat forest), running on the repo's scan
// primitives and thread-pool runtime — deterministic per the bit-identity
// contract: for a given batch sequence the labels, rounds, and published
// snapshots are identical for every thread count and backend.
//
// Queries never see the merge: after every batch the engine builds an
// immutable core::ComponentIndex snapshot and swaps it in atomically
// (util::EpochPtr shared_ptr publish). connected / component_of /
// component_count / component_size read whatever epoch is current; a reader
// holding snapshot() keeps that epoch's view alive for as long as it
// wants.
//
// Trust, then verify: every `verify_every` batches (or on demand) the
// engine recomputes components from scratch through the batch
// connected_components() path on the accumulated edge set and cross-checks
// the incremental index against it — labels, sizes, and count must match
// exactly (both sides are canonical min-id, so equality is bitwise, not
// just partition-equal).
//
// Crash safety (docs/ARCHITECTURE.md "Durability & fault tolerance"): with
// DurabilityOptions::dir set, every batch is appended to a checksummed
// write-ahead log (serve/wal.hpp) BEFORE it is merged, and the flat forest
// is periodically checkpointed (serve/checkpoint.hpp, atomic
// rename-into-place). recover() = load checkpoint + replay the WAL suffix;
// because every merge is bit-deterministic, the recovered ComponentIndex
// equals the never-crashed engine's exactly — the invariant the
// fault-labelled suite enforces by killing the process at every registered
// failpoint.
//
// Graceful degradation (EngineOptions::max_resident_bytes): when the
// resident estimate crosses the cap the engine sheds the accumulated edge
// log (its only unbounded allocation) and freezes the exact snapshot tier;
// the SketchedView tier keeps advancing, so queries get stale exact
// answers or fresh approximate ones, both flagged `degraded`. Durability
// is unaffected — the WAL keeps the full history, and a recovered engine
// is un-degraded.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/component_index.hpp"
#include "core/connectivity.hpp"
#include "graph/edge_log.hpp"
#include "graph/graph.hpp"
#include "serve/checkpoint.hpp"
#include "serve/sketched_view.hpp"
#include "serve/wal.hpp"
#include "util/epoch.hpp"
#include "util/status.hpp"

namespace logcc::serve {

/// Crash-safety knobs. Durability is on iff `dir` is non-empty; durable
/// engines are constructed through ConnectivityEngine::recover (the plain
/// constructor LOGCC_CHECKs `dir` is empty, because construction can then
/// fail for I/O reasons a constructor cannot report).
struct DurabilityOptions {
  /// Directory holding `edges.wal` and `index.ckpt`. Created if missing.
  std::string dir;
  WalOptions wal;
  /// Write a checkpoint every this many batches (0 = only on
  /// flush_durable(), e.g. clean shutdown). Recovery replays the WAL
  /// suffix past the last checkpoint, so the cadence bounds recovery time,
  /// not durability.
  std::uint64_t checkpoint_every = 0;
};

struct EngineOptions {
  /// Rebuild/verify cadence: after every `verify_every` batches the engine
  /// runs a full recompute and cross-checks the incremental state
  /// (0 = only when verify_and_rebuild() is called explicitly).
  std::uint64_t verify_every = 0;
  /// Batch algorithm the rebuild path runs (any of the 9 entry points).
  Algorithm rebuild_algorithm = Algorithm::kFasterCC;
  std::uint64_t seed = 1;
  /// Attach the (flat) parent forest to published snapshots.
  bool publish_forest = false;
  /// Build a SketchedView next to every published snapshot: queries can
  /// opt into the approximate tier (approx component count / sizes from KBs
  /// of sketch state) via sketched(). Costs one extra O(n) parallel pass
  /// per publish.
  bool sketched_view = false;
  SketchedViewOptions sketch_options;
  /// Resident-memory budget in bytes (0 = unlimited). Crossing it trips
  /// the degradation ladder (see class comment). Implies sketched_view —
  /// the degraded engine needs a fresh tier to serve from.
  std::uint64_t max_resident_bytes = 0;
  DurabilityOptions durability;
};

/// What one apply_batch reports.
struct BatchResult {
  std::uint64_t batch = 0;   // 1-based index of this batch
  std::uint64_t edges = 0;   // edges in the batch (loops/duplicates included)
  std::uint64_t merges = 0;  // components removed by this batch
  std::uint64_t rounds = 0;  // hook+shortcut rounds to fixpoint
  double seconds = 0.0;      // merge + snapshot production (+ verify epoch)
  bool verify_ran = false;   // a rebuild/verify epoch ran after this batch
  bool verified = true;      // false iff it ran and disagreed
  /// False iff the write-ahead append failed before the record landed: the
  /// batch was NOT applied (memory and disk both exclude it — retry or drop
  /// it, the engine state is unchanged). `durability` then carries the
  /// reason. A record that reached the file but missed its fsync barrier
  /// still applies (replay would see it; retrying would duplicate it) with
  /// the error reported in `durability`.
  bool applied = true;
  /// The engine was in (or entered) degraded mode during this batch.
  bool degraded = false;
  /// First durability error of this call (WAL append/sync or checkpoint
  /// write). OK when durability is off. A checkpoint failure leaves the
  /// batch applied — recovery just replays a longer WAL suffix.
  util::Status durability;
};

/// Epoch/staleness metadata a point query can opt into.
struct QueryInfo {
  std::uint64_t epoch = 0;  // snapshot generation the answer came from
  /// True when the exact tier is frozen (degraded mode): the answer is
  /// correct for a past epoch, not necessarily the current stream position.
  bool degraded = false;
};

class ConnectivityEngine {
 public:
  /// Engine over the fixed vertex universe [0, n). Publishes the initial
  /// all-singletons snapshot immediately, so queries are valid before the
  /// first batch. Durable engines are built via recover() (LOGCC_CHECK:
  /// options.durability.dir must be empty here).
  explicit ConnectivityEngine(std::uint64_t n, EngineOptions options = {});

  /// Builds (or rebuilds after a crash) a durable engine from `dir`:
  /// creates the directory if needed, loads the checkpoint when one is
  /// present (a corrupt checkpoint is skipped — the WAL holds the full
  /// history), replays the WAL suffix past it, truncates any torn tail,
  /// and opens the WAL for appending. The recovered engine's published
  /// index is bit-identical to an uninterrupted engine fed the same
  /// durable batch prefix. `n` must match the on-disk stream when one
  /// exists.
  struct RecoveryInfo {
    bool used_checkpoint = false;
    util::Status checkpoint_status;   // why the checkpoint was not used
    std::uint64_t checkpoint_batches = 0;
    std::uint64_t replayed_records = 0;  // WAL records merged on top
    std::uint64_t torn_bytes = 0;        // truncated torn-tail bytes
  };
  static util::Status recover(const std::string& dir, std::uint64_t n,
                              EngineOptions options,
                              std::unique_ptr<ConnectivityEngine>* out,
                              RecoveryInfo* info = nullptr);

  // --- writer side (one thread at a time) --------------------------------
  /// Inserts a batch of edges and publishes the next snapshot epoch.
  /// Endpoints must be < n (LOGCC_CHECK). Self-loops and duplicates are
  /// tolerated. Runs a rebuild/verify epoch when the cadence says so.
  /// Durable engines append the batch to the WAL first; if that fails the
  /// batch is not applied (result.applied == false) and the engine state
  /// is unchanged.
  BatchResult apply_batch(std::span<const graph::Edge> batch);
  /// Full recompute through connected_components() on the accumulated edge
  /// set; cross-checks the incremental index (exact labels + sizes + count)
  /// and publishes the recomputed snapshot. Returns true when the
  /// incremental state matched. Unavailable after degradation shed the
  /// edge log (LOGCC_CHECK).
  bool verify_and_rebuild();
  /// Forces the durable state current: fsyncs the WAL and writes a
  /// checkpoint of the present forest. The clean-shutdown path (cc_serve's
  /// SIGTERM handler calls this). No-op returning OK when durability is
  /// off.
  util::Status flush_durable();

  // --- reader side (any number of threads, never blocked by the writer) --
  /// The current epoch's immutable snapshot (never null). In degraded mode
  /// this is the last pre-degradation epoch (stale; see degraded()).
  std::shared_ptr<const core::ComponentIndex> snapshot() const {
    return published_.load();
  }
  bool connected(graph::VertexId u, graph::VertexId v,
                 QueryInfo* info = nullptr) const;
  graph::VertexId component_of(graph::VertexId v,
                               QueryInfo* info = nullptr) const;
  std::uint64_t component_count() const { return snapshot()->num_components(); }
  std::uint64_t component_size(graph::VertexId v) const;

  // --- approximate tier (EngineOptions::sketched_view) -------------------
  /// The current epoch's sketch view (null unless sketched_view is on).
  /// The view pins the exact snapshot it was built from, so its estimates
  /// are epoch-consistent even while the writer publishes. In degraded
  /// mode this is the FRESH tier (it keeps advancing past the frozen exact
  /// snapshots).
  std::shared_ptr<const SketchedView> sketched() const {
    return sketched_.load();
  }
  /// Convenience forms of the two approximate queries; LOGCC_CHECK that
  /// the sketched view is enabled.
  double approx_component_count() const;
  std::uint64_t approx_component_size(graph::VertexId v) const;

  // --- introspection -----------------------------------------------------
  std::uint64_t num_vertices() const { return log_.num_vertices(); }
  std::uint64_t num_edges() const { return log_.num_edges(); }
  std::uint64_t num_batches() const { return log_.num_batches(); }
  /// Published snapshot generation (increments on every batch and rebuild).
  std::uint64_t epoch() const { return published_.epoch(); }
  const graph::EdgeLog& edges() const { return log_; }
  bool durable() const { return durable_; }
  /// True once the degradation ladder tripped (sticky for this engine's
  /// lifetime; recovery from the WAL yields an un-degraded engine).
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  /// Estimate of resident bytes (edge log + forest arrays + published
  /// snapshot tiers) — what max_resident_bytes is compared against.
  std::uint64_t resident_bytes() const;
  /// WAL byte offset of the durable stream position (0 when not durable).
  std::uint64_t wal_offset() const { return durable_ ? wal_.offset() : 0; }

 private:
  /// Hook+shortcut the batch into the flat forest; returns rounds.
  std::uint64_t merge_batch(std::span<const graph::Edge> batch);
  /// Builds and swaps in the next snapshot from the current flat forest.
  /// In degraded mode only the sketch tier advances.
  void publish();
  /// Shared publish tail: stores the index (and, when enabled, the
  /// SketchedView built from it) as the next epoch.
  void publish_index(std::shared_ptr<const core::ComponentIndex> next);
  /// Trips the ladder when the resident estimate crosses the cap.
  void maybe_degrade();
  /// Writes a checkpoint of the current forest at the current WAL offset.
  util::Status write_checkpoint_now();

  EngineOptions options_;
  graph::EdgeLog log_;
  // The incremental state: always flat between batches, parent_[v] is the
  // canonical (min-id) label of v's component. scratch_ is the shortcut
  // double buffer.
  std::vector<graph::VertexId> parent_;
  std::vector<graph::VertexId> scratch_;
  std::uint64_t last_count_ = 0;  // published count (writer-side bookkeeping)
  util::EpochPtr<core::ComponentIndex> published_;
  util::EpochPtr<SketchedView> sketched_;  // empty unless options say so
  WalWriter wal_;                          // open iff durable_
  bool durable_ = false;
  // Written by the writer thread, read by query threads via QueryInfo.
  std::atomic<bool> degraded_{false};
};

}  // namespace logcc::serve
