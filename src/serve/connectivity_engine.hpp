// ConnectivityEngine: the long-running incremental side of the repo — the
// "millions of users, heavy traffic" scenario from ROADMAP item 1.
//
// One writer thread feeds batches of edge insertions into a live graph
// (graph::EdgeLog); each batch is merged into the maintained components by
// a multi-threaded min-combining hook + shortcut fixpoint over just the
// batch edges (the Liu–Tarjan machinery of baselines/lt_family.cpp,
// specialized to an always-flat forest), running on the repo's scan
// primitives and thread-pool runtime — deterministic per the bit-identity
// contract: for a given batch sequence the labels, rounds, and published
// snapshots are identical for every thread count and backend.
//
// Queries never see the merge: after every batch the engine builds an
// immutable core::ComponentIndex snapshot and swaps it in atomically
// (util::EpochPtr shared_ptr publish). connected / component_of /
// component_count / component_size read whatever epoch is current; a reader
// holding snapshot() keeps that epoch's view alive for as long as it
// wants.
//
// Trust, then verify: every `verify_every` batches (or on demand) the
// engine recomputes components from scratch through the batch
// connected_components() path on the accumulated edge set and cross-checks
// the incremental index against it — labels, sizes, and count must match
// exactly (both sides are canonical min-id, so equality is bitwise, not
// just partition-equal).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/component_index.hpp"
#include "core/connectivity.hpp"
#include "graph/edge_log.hpp"
#include "graph/graph.hpp"
#include "serve/sketched_view.hpp"
#include "util/epoch.hpp"

namespace logcc::serve {

struct EngineOptions {
  /// Rebuild/verify cadence: after every `verify_every` batches the engine
  /// runs a full recompute and cross-checks the incremental state
  /// (0 = only when verify_and_rebuild() is called explicitly).
  std::uint64_t verify_every = 0;
  /// Batch algorithm the rebuild path runs (any of the 9 entry points).
  Algorithm rebuild_algorithm = Algorithm::kFasterCC;
  std::uint64_t seed = 1;
  /// Attach the (flat) parent forest to published snapshots.
  bool publish_forest = false;
  /// Build a SketchedView next to every published snapshot: queries can
  /// opt into the approximate tier (approx component count / sizes from KBs
  /// of sketch state) via sketched(). Costs one extra O(n) parallel pass
  /// per publish.
  bool sketched_view = false;
  SketchedViewOptions sketch_options;
};

/// What one apply_batch reports.
struct BatchResult {
  std::uint64_t batch = 0;   // 1-based index of this batch
  std::uint64_t edges = 0;   // edges in the batch (loops/duplicates included)
  std::uint64_t merges = 0;  // components removed by this batch
  std::uint64_t rounds = 0;  // hook+shortcut rounds to fixpoint
  double seconds = 0.0;      // merge + snapshot production (+ verify epoch)
  bool verify_ran = false;   // a rebuild/verify epoch ran after this batch
  bool verified = true;      // false iff it ran and disagreed
};

class ConnectivityEngine {
 public:
  /// Engine over the fixed vertex universe [0, n). Publishes the initial
  /// all-singletons snapshot immediately, so queries are valid before the
  /// first batch.
  explicit ConnectivityEngine(std::uint64_t n, EngineOptions options = {});

  // --- writer side (one thread at a time) --------------------------------
  /// Inserts a batch of edges and publishes the next snapshot epoch.
  /// Endpoints must be < n (LOGCC_CHECK). Self-loops and duplicates are
  /// tolerated. Runs a rebuild/verify epoch when the cadence says so.
  BatchResult apply_batch(std::span<const graph::Edge> batch);
  /// Full recompute through connected_components() on the accumulated edge
  /// set; cross-checks the incremental index (exact labels + sizes + count)
  /// and publishes the recomputed snapshot. Returns true when the
  /// incremental state matched.
  bool verify_and_rebuild();

  // --- reader side (any number of threads, never blocked by the writer) --
  /// The current epoch's immutable snapshot (never null).
  std::shared_ptr<const core::ComponentIndex> snapshot() const {
    return published_.load();
  }
  bool connected(graph::VertexId u, graph::VertexId v) const;
  graph::VertexId component_of(graph::VertexId v) const;
  std::uint64_t component_count() const { return snapshot()->num_components(); }
  std::uint64_t component_size(graph::VertexId v) const;

  // --- approximate tier (EngineOptions::sketched_view) -------------------
  /// The current epoch's sketch view (null unless sketched_view is on).
  /// The view pins the exact snapshot it was built from, so its estimates
  /// are epoch-consistent even while the writer publishes.
  std::shared_ptr<const SketchedView> sketched() const {
    return sketched_.load();
  }
  /// Convenience forms of the two approximate queries; LOGCC_CHECK that
  /// the sketched view is enabled.
  double approx_component_count() const;
  std::uint64_t approx_component_size(graph::VertexId v) const;

  // --- introspection -----------------------------------------------------
  std::uint64_t num_vertices() const { return log_.num_vertices(); }
  std::uint64_t num_edges() const { return log_.num_edges(); }
  std::uint64_t num_batches() const { return log_.num_batches(); }
  /// Published snapshot generation (increments on every batch and rebuild).
  std::uint64_t epoch() const { return published_.epoch(); }
  const graph::EdgeLog& edges() const { return log_; }

 private:
  /// Hook+shortcut the batch into the flat forest; returns rounds.
  std::uint64_t merge_batch(std::span<const graph::Edge> batch);
  /// Builds and swaps in the next snapshot from the current flat forest.
  void publish();
  /// Shared publish tail: stores the index (and, when enabled, the
  /// SketchedView built from it) as the next epoch.
  void publish_index(std::shared_ptr<const core::ComponentIndex> next);

  EngineOptions options_;
  graph::EdgeLog log_;
  // The incremental state: always flat between batches, parent_[v] is the
  // canonical (min-id) label of v's component. scratch_ is the shortcut
  // double buffer.
  std::vector<graph::VertexId> parent_;
  std::vector<graph::VertexId> scratch_;
  std::uint64_t last_count_ = 0;  // published count (writer-side bookkeeping)
  util::EpochPtr<core::ComponentIndex> published_;
  util::EpochPtr<SketchedView> sketched_;  // empty unless options say so
};

}  // namespace logcc::serve
