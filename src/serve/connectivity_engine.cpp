#include "serve/connectivity_engine.hpp"

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/scan.hpp"
#include "util/timer.hpp"

namespace logcc::serve {

using graph::Edge;
using graph::VertexId;

namespace {

/// One synchronous SHORTCUT step with a fused change flag (the lt_family
/// idiom): next[v] = p[p[v]], true iff anything moved.
bool shortcut_step(std::vector<VertexId>& p, std::vector<VertexId>& next) {
  const std::uint64_t n = p.size();
  const bool moved = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), false,
      [&](std::size_t v) {
        const VertexId t = p[p[v]];
        next[v] = t;
        return t != p[v];
      },
      [](bool a, bool b) { return a || b; });
  p.swap(next);
  return moved;
}

}  // namespace

ConnectivityEngine::ConnectivityEngine(std::uint64_t n, EngineOptions options)
    : options_(options), log_(n), parent_(n), scratch_(n) {
  util::parallel_for(
      0, n, [&](std::size_t v) { parent_[v] = static_cast<VertexId>(v); });
  publish();  // epoch 1: n singleton components
}

std::uint64_t ConnectivityEngine::merge_batch(std::span<const Edge> batch) {
  std::vector<VertexId>& p = parent_;
  std::vector<VertexId>& next = scratch_;
  const std::uint64_t n = p.size();
  std::uint64_t rounds = 0;
  while (true) {
    // Fixpoint probe first: a batch whose edges are all internal (the
    // heavy-traffic steady state) costs O(batch), not O(n).
    const bool crossing = util::parallel_reduce(
        std::size_t{0}, batch.size(), false,
        [&](std::size_t i) { return p[batch[i].u] != p[batch[i].v]; },
        [](bool a, bool b) { return a || b; });
    if (!crossing) break;
    ++rounds;
    // Hook: the larger of the two current roots adopts the smaller.
    // Offers read `p` (stable this round) and min-combine into `next`
    // via atomic_min — order-invariant, hence bit-identical labels and
    // round counts for every thread count and backend. Only root entries
    // receive offers, and every offered value is smaller than the target
    // root's id, so pointers strictly decrease: no cycles, and the
    // component minimum keeps parent_[m] == m — labels stay canonical.
    util::parallel_for(0, n, [&](std::size_t v) { next[v] = p[v]; });
    util::parallel_for(0, batch.size(), [&](std::size_t i) {
      const VertexId lu = p[batch[i].u];
      const VertexId lv = p[batch[i].v];
      if (lu == lv) return;
      const VertexId hi = lu > lv ? lu : lv;
      const VertexId lo = lu > lv ? lv : lu;
      util::atomic_min(next[hi], lo);
    });
    p.swap(next);
    // Shortcut to flat so the next round's p[v] reads are root labels
    // again (converges in O(log chain) steps; chains only merge roots).
    while (shortcut_step(p, next)) {
    }
    LOGCC_CHECK_MSG(rounds <= 1u << 20, "batch merge failed to converge");
  }
  return rounds;
}

void ConnectivityEngine::publish() {
  std::vector<VertexId> labels = parent_;  // flat == canonical min-id
  auto index = core::ComponentIndex::from_canonical_labels(std::move(labels));
  if (options_.publish_forest) index.attach_forest(parent_);
  publish_index(
      std::make_shared<const core::ComponentIndex>(std::move(index)));
}

void ConnectivityEngine::publish_index(
    std::shared_ptr<const core::ComponentIndex> next) {
  last_count_ = next->num_components();
  // The sketch tier is built BEFORE the exact snapshot swaps in, and the
  // view pins the index it summarizes — a reader combining sketched()
  // estimates with that view's index() is always epoch-consistent, even
  // though the two EpochPtr stores are not one atomic step.
  if (options_.sketched_view) {
    sketched_.store(std::make_shared<const SketchedView>(
        SketchedView::build(next, options_.sketch_options)));
  }
  published_.store(std::move(next));
}

BatchResult ConnectivityEngine::apply_batch(std::span<const Edge> batch) {
  util::Timer timer;
  BatchResult out;
  log_.append(batch);  // validates endpoints < n
  out.batch = log_.num_batches();
  out.edges = batch.size();
  const std::uint64_t before = last_count_;
  out.rounds = merge_batch(batch);
  publish();
  out.merges = before - last_count_;
  if (options_.verify_every != 0 &&
      out.batch % options_.verify_every == 0) {
    out.verify_ran = true;
    out.verified = verify_and_rebuild();
  }
  out.seconds = timer.seconds();
  return out;
}

bool ConnectivityEngine::verify_and_rebuild() {
  // Full recompute on the accumulated edge set through the batch path. The
  // EdgeLog view is only live inside this call (append invalidates it).
  Options opt;
  opt.seed = options_.seed;
  auto r = connected_components(log_.input(), options_.rebuild_algorithm, opt);
  // Both sides are canonical min-id snapshots: agreement is exact equality
  // of labels, sizes, and count — not merely the same partition.
  const auto current = published_.load();
  const bool ok = current && r.index == *current;
  // Roll the epoch forward with the recomputed index either way: on
  // disagreement readers now see the *recomputed* truth (self-healing),
  // and the caller learns the incremental state was bad. Re-seed the
  // incremental forest from the rebuild so later batches continue from
  // the verified labels.
  if (options_.publish_forest) r.index.attach_forest(r.index.labels());
  if (!ok) parent_ = r.index.labels();
  publish_index(
      std::make_shared<const core::ComponentIndex>(std::move(r.index)));
  return ok;
}

double ConnectivityEngine::approx_component_count() const {
  const auto view = sketched();
  LOGCC_CHECK_MSG(view != nullptr,
                  "approx_component_count: sketched_view not enabled");
  return view->approx_component_count();
}

std::uint64_t ConnectivityEngine::approx_component_size(VertexId v) const {
  const auto view = sketched();
  LOGCC_CHECK_MSG(view != nullptr,
                  "approx_component_size: sketched_view not enabled");
  LOGCC_CHECK_MSG(v < view->index()->num_vertices(),
                  "approx_component_size: vertex out of range");
  return view->approx_component_size(v);
}

bool ConnectivityEngine::connected(VertexId u, VertexId v) const {
  const auto s = snapshot();
  LOGCC_CHECK_MSG(u < s->num_vertices() && v < s->num_vertices(),
                  "connected: vertex out of range");
  return s->connected(u, v);
}

VertexId ConnectivityEngine::component_of(VertexId v) const {
  const auto s = snapshot();
  LOGCC_CHECK_MSG(v < s->num_vertices(), "component_of: vertex out of range");
  return s->component_of(v);
}

std::uint64_t ConnectivityEngine::component_size(VertexId v) const {
  const auto s = snapshot();
  LOGCC_CHECK_MSG(v < s->num_vertices(),
                  "component_size: vertex out of range");
  return s->component_size(v);
}

}  // namespace logcc::serve
