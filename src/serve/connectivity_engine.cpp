#include "serve/connectivity_engine.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>

#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/scan.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define LOGCC_ENGINE_POSIX 1
#include <sys/stat.h>
#include <sys/types.h>
#endif

namespace logcc::serve {

using graph::Edge;
using graph::VertexId;
using util::Status;

namespace {

/// One synchronous SHORTCUT step with a fused change flag (the lt_family
/// idiom): next[v] = p[p[v]], true iff anything moved.
bool shortcut_step(std::vector<VertexId>& p, std::vector<VertexId>& next) {
  const std::uint64_t n = p.size();
  const bool moved = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), false,
      [&](std::size_t v) {
        const VertexId t = p[p[v]];
        next[v] = t;
        return t != p[v];
      },
      [](bool a, bool b) { return a || b; });
  p.swap(next);
  return moved;
}

Status make_dir(const std::string& dir) {
#ifdef LOGCC_ENGINE_POSIX
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::ok();
  return Status::io_error("cannot create durability dir '" + dir + "' (" +
                          std::strerror(errno) + ")");
#else
  return Status::failed_precondition(
      "durable engines need POSIX file I/O on this platform");
#endif
}

std::string wal_path(const std::string& dir) { return dir + "/edges.wal"; }
std::string ckpt_path(const std::string& dir) { return dir + "/index.ckpt"; }

}  // namespace

ConnectivityEngine::ConnectivityEngine(std::uint64_t n, EngineOptions options)
    : options_(options), log_(n), parent_(n), scratch_(n) {
  LOGCC_CHECK_MSG(options_.durability.dir.empty(),
                  "durable engines are built via ConnectivityEngine::recover");
  // The degraded engine serves from the sketch tier, so a memory cap
  // without it would leave nothing fresh to answer from.
  if (options_.max_resident_bytes > 0) options_.sketched_view = true;
  util::parallel_for(
      0, n, [&](std::size_t v) { parent_[v] = static_cast<VertexId>(v); });
  publish();  // epoch 1: n singleton components
}

Status ConnectivityEngine::recover(const std::string& dir, std::uint64_t n,
                                   EngineOptions options,
                                   std::unique_ptr<ConnectivityEngine>* out,
                                   RecoveryInfo* info) {
  LOGCC_CHECK_MSG(!dir.empty(), "recover: durability dir must be non-empty");
  RecoveryInfo local;
  if (info == nullptr) info = &local;
  *info = RecoveryInfo{};

  Status s = make_dir(dir);
  if (!s.is_ok()) return s;

  // Build the in-memory engine first (the constructor path, minus
  // durability — that is attached below once the files are open).
  EngineOptions shell = options;
  shell.durability = DurabilityOptions{};
  auto engine = std::make_unique<ConnectivityEngine>(n, shell);

  // Checkpoint, when one is valid: seeds the forest so only the WAL
  // suffix past its offset needs merging. A corrupt checkpoint is NOT
  // fatal — the WAL holds the complete history, so recovery falls back to
  // a full replay and reports why in `info`.
  CheckpointState ckpt;
  std::uint64_t replay_from = 0;
  Status cs = read_checkpoint(ckpt_path(dir), &ckpt);
  info->checkpoint_status = cs;
  if (cs.is_ok()) {
    if (ckpt.n != n)
      return Status::corruption(
          "checkpoint in '" + dir + "' covers n=" + std::to_string(ckpt.n) +
          ", engine wants n=" + std::to_string(n));
    info->used_checkpoint = true;
    info->checkpoint_batches = ckpt.batches;
    engine->parent_ = std::move(ckpt.labels);
    replay_from = ckpt.wal_offset;
  } else if (cs.code() != util::StatusCode::kNotFound &&
             cs.code() != util::StatusCode::kCorruption) {
    return cs;  // I/O trouble reading it: do not guess, report
  }

  // Replay: every record re-enters the edge log (the stream's logical
  // position), but only records past the checkpoint offset are merged —
  // the checkpointed labels already reflect the prefix.
  std::uint64_t replayed = 0;
  WalScan scan;
  Status rs = wal_replay(
      wal_path(dir),
      [&](std::uint64_t record_offset, std::span<const Edge> batch) {
        engine->log_.append(batch);
        if (record_offset >= replay_from) {
          engine->merge_batch(batch);
          ++replayed;
        }
      },
      &scan);
  if (rs.code() == util::StatusCode::kNotFound) {
    // No WAL yet. Fine for a fresh dir; a checkpoint claiming batches
    // without its WAL means durable history was lost.
    if (info->used_checkpoint && ckpt.batches > 0)
      return Status::corruption("checkpoint in '" + dir +
                                "' has no WAL backing its " +
                                std::to_string(ckpt.batches) + " batches");
  } else if (!rs.is_ok()) {
    return rs;
  } else {
    if (scan.n != n)
      return Status::corruption(
          "WAL in '" + dir + "' covers n=" + std::to_string(scan.n) +
          ", engine wants n=" + std::to_string(n));
    if (info->used_checkpoint && scan.records < ckpt.batches)
      return Status::corruption(
          "WAL in '" + dir + "' holds " + std::to_string(scan.records) +
          " records but the checkpoint claims " +
          std::to_string(ckpt.batches) + " durable batches");
  }
  info->replayed_records = replayed;
  info->torn_bytes = scan.torn_bytes;

  // Open for appending — this also truncates any torn tail the scan found,
  // so the file ends exactly at the state the engine now holds.
  s = WalWriter::open_for_append(wal_path(dir), n, options.durability.wal,
                                 &engine->wal_, nullptr);
  if (!s.is_ok()) return s;
  engine->durable_ = true;
  engine->options_.durability = options.durability;

  // Publish the recovered epoch, then honor the memory cap against the
  // replayed history (a recovered engine starts un-degraded; it may
  // re-trip immediately if the stream alone exceeds the budget).
  engine->publish();
  engine->maybe_degrade();
  *out = std::move(engine);
  return Status::ok();
}

std::uint64_t ConnectivityEngine::merge_batch(std::span<const Edge> batch) {
  std::vector<VertexId>& p = parent_;
  std::vector<VertexId>& next = scratch_;
  const std::uint64_t n = p.size();
  std::uint64_t rounds = 0;
  while (true) {
    // Fixpoint probe first: a batch whose edges are all internal (the
    // heavy-traffic steady state) costs O(batch), not O(n).
    const bool crossing = util::parallel_reduce(
        std::size_t{0}, batch.size(), false,
        [&](std::size_t i) { return p[batch[i].u] != p[batch[i].v]; },
        [](bool a, bool b) { return a || b; });
    if (!crossing) break;
    ++rounds;
    // Hook: the larger of the two current roots adopts the smaller.
    // Offers read `p` (stable this round) and min-combine into `next`
    // via atomic_min — order-invariant, hence bit-identical labels and
    // round counts for every thread count and backend. Only root entries
    // receive offers, and every offered value is smaller than the target
    // root's id, so pointers strictly decrease: no cycles, and the
    // component minimum keeps parent_[m] == m — labels stay canonical.
    util::parallel_for(0, n, [&](std::size_t v) { next[v] = p[v]; });
    util::parallel_for(0, batch.size(), [&](std::size_t i) {
      const VertexId lu = p[batch[i].u];
      const VertexId lv = p[batch[i].v];
      if (lu == lv) return;
      const VertexId hi = lu > lv ? lu : lv;
      const VertexId lo = lu > lv ? lv : lu;
      util::atomic_min(next[hi], lo);
    });
    p.swap(next);
    // Shortcut to flat so the next round's p[v] reads are root labels
    // again (converges in O(log chain) steps; chains only merge roots).
    while (shortcut_step(p, next)) {
    }
    LOGCC_CHECK_MSG(rounds <= 1u << 20, "batch merge failed to converge");
  }
  return rounds;
}

void ConnectivityEngine::publish() {
  std::vector<VertexId> labels = parent_;  // flat == canonical min-id
  auto index = core::ComponentIndex::from_canonical_labels(std::move(labels));
  if (degraded()) {
    // Exact tier frozen: only the sketch advances. The view pins the
    // transient index it was built from (one epoch's worth, replaced on
    // the next publish), so sketch answers stay internally consistent.
    last_count_ = index.num_components();
    sketched_.store(std::make_shared<const SketchedView>(SketchedView::build(
        std::make_shared<const core::ComponentIndex>(std::move(index)),
        options_.sketch_options)));
    return;
  }
  if (options_.publish_forest) index.attach_forest(parent_);
  publish_index(
      std::make_shared<const core::ComponentIndex>(std::move(index)));
}

void ConnectivityEngine::publish_index(
    std::shared_ptr<const core::ComponentIndex> next) {
  last_count_ = next->num_components();
  // The sketch tier is built BEFORE the exact snapshot swaps in, and the
  // view pins the index it summarizes — a reader combining sketched()
  // estimates with that view's index() is always epoch-consistent, even
  // though the two EpochPtr stores are not one atomic step.
  if (options_.sketched_view) {
    sketched_.store(std::make_shared<const SketchedView>(
        SketchedView::build(next, options_.sketch_options)));
  }
  published_.store(std::move(next));
}

void ConnectivityEngine::maybe_degrade() {
  if (options_.max_resident_bytes == 0 || degraded()) return;
  if (resident_bytes() <= options_.max_resident_bytes) return;
  // The ladder's one rung: drop the O(m) edge vector, the only unbounded
  // allocation. Everything else the engine holds is O(n) and was accepted
  // when the engine was sized.
  log_.shed();
  degraded_.store(true, std::memory_order_release);
}

std::uint64_t ConnectivityEngine::resident_bytes() const {
  const std::uint64_t n = num_vertices();
  std::uint64_t bytes = log_.memory_bytes();
  bytes += (parent_.capacity() + scratch_.capacity()) * sizeof(VertexId);
  // Published exact tier (labels + sizes + root table) — estimated rather
  // than walked, since readers may be holding older epochs alive too.
  bytes += 12 * n;
  return bytes;
}

BatchResult ConnectivityEngine::apply_batch(std::span<const Edge> batch) {
  util::Timer timer;
  BatchResult out;
  out.batch = log_.num_batches() + 1;
  out.edges = batch.size();
  // Validate at the boundary BEFORE anything touches disk: the WAL must
  // never hold a record replay would reject.
  const std::uint64_t n = num_vertices();
  for (const Edge& e : batch)
    LOGCC_CHECK_MSG(e.u < n && e.v < n, "apply_batch: endpoint out of range");

  if (durable_) {
    // Write-ahead: the record is on disk (per the fsync policy) before the
    // merge starts. If the append fails before anything lands, the batch
    // simply never happened — memory and disk agree on excluding it. If the
    // record landed but its fsync barrier failed (offset advanced), the
    // batch MUST still apply: replay will see the record, and a retry would
    // duplicate it. The error is reported either way.
    const std::uint64_t wal_before = wal_.offset();
    out.durability = wal_.append(batch);
    if (!out.durability.is_ok() && wal_.offset() == wal_before) {
      out.applied = false;
      out.degraded = degraded();
      out.seconds = timer.seconds();
      return out;
    }
    // Crash/delay site for the fault suite: the record is durable but the
    // merge has not run — recovery must replay it. The `error` action is a
    // deliberate no-op here (failing now would desync the checkpoint
    // offset from a record that IS on disk).
    (void)LOGCC_FAILPOINT("engine_after_wal_append");
  }

  log_.append(batch);
  const std::uint64_t before = last_count_;
  out.rounds = merge_batch(batch);
  // Crash site: merged in memory, not yet published/checkpointed.
  (void)LOGCC_FAILPOINT("engine_before_publish");
  publish();
  out.merges = before - last_count_;
  maybe_degrade();
  out.degraded = degraded();

  // Verify cadence needs the full edge set — unavailable once shed.
  if (!degraded() && options_.verify_every != 0 &&
      out.batch % options_.verify_every == 0) {
    out.verify_ran = true;
    out.verified = verify_and_rebuild();
  }

  if (durable_ && options_.durability.checkpoint_every != 0 &&
      out.batch % options_.durability.checkpoint_every == 0) {
    // Sync before checkpointing: the checkpoint's wal_offset must never
    // point past data the disk could still lose.
    Status cs = wal_.sync();
    if (cs.is_ok()) cs = write_checkpoint_now();
    // A checkpoint failure is reported but NOT fatal: the batch is applied
    // and durable, recovery just replays a longer suffix.
    if (out.durability.is_ok()) out.durability = cs;
    (void)LOGCC_FAILPOINT("engine_after_checkpoint");
  }
  out.seconds = timer.seconds();
  return out;
}

util::Status ConnectivityEngine::write_checkpoint_now() {
  CheckpointState state;
  state.n = num_vertices();
  state.epoch = published_.epoch();
  state.batches = log_.num_batches();
  state.wal_offset = wal_.offset();
  state.num_components = last_count_;
  state.labels = parent_;
  return write_checkpoint(ckpt_path(options_.durability.dir), state);
}

util::Status ConnectivityEngine::flush_durable() {
  if (!durable_) return Status::ok();
  Status s = wal_.sync();
  if (!s.is_ok()) return s;
  return write_checkpoint_now();
}

bool ConnectivityEngine::verify_and_rebuild() {
  LOGCC_CHECK_MSG(!log_.is_shed(),
                  "verify_and_rebuild: edge log was shed (degraded mode)");
  // Full recompute on the accumulated edge set through the batch path. The
  // EdgeLog view is only live inside this call (append invalidates it).
  Options opt;
  opt.seed = options_.seed;
  auto r = connected_components(log_.input(), options_.rebuild_algorithm, opt);
  // Both sides are canonical min-id snapshots: agreement is exact equality
  // of labels, sizes, and count — not merely the same partition.
  const auto current = published_.load();
  const bool ok = current && r.index == *current;
  // Roll the epoch forward with the recomputed index either way: on
  // disagreement readers now see the *recomputed* truth (self-healing),
  // and the caller learns the incremental state was bad. Re-seed the
  // incremental forest from the rebuild so later batches continue from
  // the verified labels.
  if (options_.publish_forest) r.index.attach_forest(r.index.labels());
  if (!ok) parent_ = r.index.labels();
  publish_index(
      std::make_shared<const core::ComponentIndex>(std::move(r.index)));
  return ok;
}

double ConnectivityEngine::approx_component_count() const {
  const auto view = sketched();
  LOGCC_CHECK_MSG(view != nullptr,
                  "approx_component_count: sketched_view not enabled");
  return view->approx_component_count();
}

std::uint64_t ConnectivityEngine::approx_component_size(VertexId v) const {
  const auto view = sketched();
  LOGCC_CHECK_MSG(view != nullptr,
                  "approx_component_size: sketched_view not enabled");
  LOGCC_CHECK_MSG(v < view->index()->num_vertices(),
                  "approx_component_size: vertex out of range");
  return view->approx_component_size(v);
}

bool ConnectivityEngine::connected(VertexId u, VertexId v,
                                   QueryInfo* info) const {
  const auto s = snapshot();
  LOGCC_CHECK_MSG(u < s->num_vertices() && v < s->num_vertices(),
                  "connected: vertex out of range");
  if (info != nullptr) {
    info->epoch = published_.epoch();
    info->degraded = degraded();
  }
  return s->connected(u, v);
}

VertexId ConnectivityEngine::component_of(VertexId v, QueryInfo* info) const {
  const auto s = snapshot();
  LOGCC_CHECK_MSG(v < s->num_vertices(), "component_of: vertex out of range");
  if (info != nullptr) {
    info->epoch = published_.epoch();
    info->degraded = degraded();
  }
  return s->component_of(v);
}

std::uint64_t ConnectivityEngine::component_size(VertexId v) const {
  const auto s = snapshot();
  LOGCC_CHECK_MSG(v < s->num_vertices(),
                  "component_size: vertex out of range");
  return s->component_size(v);
}

}  // namespace logcc::serve
