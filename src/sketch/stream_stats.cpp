#include "sketch/stream_stats.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/scan.hpp"

namespace logcc::sketch {

using graph::VertexId;

StreamStats::StreamStats(std::uint64_t n, StreamStatsOptions options)
    : options_(options),
      parent_(n),
      // Independent streams off one seed, counter-based: stream 1 = edge
      // HLL, 2 = vertex HLL, 3 = degree CMS; finish() uses 4 (component
      // HLL) and 5 (size CMS) — serve::SketchedView derives the same two,
      // so the label-derived sketches match it bit for bit.
      hll_edges_(options.hll_precision, util::mix64(options.seed, 1)),
      hll_vertices_(options.hll_precision, util::mix64(options.seed, 2)),
      cms_degree_(options.cms_depth, options.cms_width,
                  util::mix64(options.seed, 3), CmsUpdate::kConservative) {
  candidates_.reserve(options_.heavy_hitters);
  util::parallel_for(
      0, n, [&](std::size_t v) { parent_[v] = static_cast<VertexId>(v); });
}

VertexId StreamStats::find(VertexId v) {
  // Path halving: every hop rewires v one level up, so repeated streams
  // keep the forest shallow without a rank array. Roots are always the
  // component minimum (see add_edge), so halving only ever lowers labels.
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];
    v = parent_[v];
  }
  return v;
}

void StreamStats::update_heavy_candidates(VertexId v, std::uint64_t estimate) {
  if (options_.heavy_hitters == 0) return;
  std::size_t min_at = 0;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].first == v) {
      candidates_[i].second = estimate;
      return;
    }
    if (candidates_[i].second < candidates_[min_at].second) min_at = i;
  }
  if (candidates_.size() < options_.heavy_hitters) {
    candidates_.emplace_back(v, estimate);
  } else if (estimate > candidates_[min_at].second) {
    candidates_[min_at] = {v, estimate};
  }
}

void StreamStats::add_edge(VertexId u, VertexId v) {
  LOGCC_CHECK_MSG(!finished_, "add_edge after finish()");
  LOGCC_CHECK_MSG(u < parent_.size() && v < parent_.size(),
                  "add_edge: endpoint out of range");
  ++edges_;
  const VertexId lo = u < v ? u : v;
  const VertexId hi = u < v ? v : u;
  hll_edges_.add((static_cast<std::uint64_t>(lo) << 32) | hi);
  hll_vertices_.add(u);
  cms_degree_.add(u);
  update_heavy_candidates(u, cms_degree_.estimate(u));
  if (u == v) {
    ++self_loops_;
    return;
  }
  hll_vertices_.add(v);
  cms_degree_.add(v);
  update_heavy_candidates(v, cms_degree_.estimate(v));
  // Union by min id: the larger root adopts the smaller, so every root is
  // its component's minimum and the flattened array is canonical.
  const VertexId ru = find(u);
  const VertexId rv = find(v);
  if (ru == rv) return;
  if (ru < rv)
    parent_[rv] = ru;
  else
    parent_[ru] = rv;
}

StreamSummary StreamStats::finish() {
  LOGCC_CHECK_MSG(!finished_, "finish() called twice");
  finished_ = true;
  const std::uint64_t n = parent_.size();

  // Flatten to labels via synchronous shortcut rounds (the serve engine's
  // idiom): deterministic for every thread count, O(log depth) rounds.
  {
    std::vector<VertexId> next(n);
    bool moved = true;
    while (moved) {
      moved = util::parallel_reduce(
          std::size_t{0}, static_cast<std::size_t>(n), false,
          [&](std::size_t v) {
            const VertexId t = parent_[parent_[v]];
            next[v] = t;
            return t != parent_[v];
          },
          [](bool a, bool b) { return a || b; });
      parent_.swap(next);
    }
  }

  // The label-derived sketches: distinct labels ~= component count; label
  // multiplicity ~= component size. Standard-mode parallel fills, so these
  // are bit-identical to serve::SketchedView built from the same labels.
  hll_components_ = HyperLogLog(
      options_.hll_precision, util::mix64(options_.seed, kComponentHllStream));
  cms_sizes_ = CountMinSketch(options_.cms_depth, options_.cms_width,
                              util::mix64(options_.seed, kSizeCmsStream),
                              CmsUpdate::kStandard);
  const std::span<const VertexId> labels(parent_);
  hll_components_.add_parallel(labels);
  cms_sizes_.add_parallel(labels);

  StreamSummary out;
  out.num_vertices = n;
  out.edges = edges_;
  out.self_loops = self_loops_;
  out.distinct_edges = hll_edges_.estimate();
  out.touched_vertices = hll_vertices_.estimate();
  out.hll_standard_error = hll_edges_.standard_error();
  out.approx_components = hll_components_.estimate();
  out.exact_components = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), std::uint64_t{0},
      [&](std::size_t v) {
        return static_cast<std::uint64_t>(parent_[v] == v);
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  out.size_epsilon = cms_sizes_.epsilon();
  out.sketch_bytes = hll_edges_.memory_bytes() + hll_vertices_.memory_bytes() +
                     cms_degree_.memory_bytes() +
                     hll_components_.memory_bytes() +
                     cms_sizes_.memory_bytes();
  out.state_bytes = n * sizeof(VertexId);

  // Resolve heavy-hitter candidates to components: per root keep the
  // heaviest member, then count exact sizes for just those few roots in
  // one pass over the labels.
  for (const auto& [v, est] : candidates_) {
    const VertexId root = parent_[v];
    auto it = std::find_if(out.heavy.begin(), out.heavy.end(),
                           [&](const HeavyComponent& h) {
                             return h.root == root;
                           });
    if (it == out.heavy.end()) {
      HeavyComponent h;
      h.root = root;
      h.hot_vertex = v;
      h.endpoint_mass = est;
      h.approx_size = cms_sizes_.estimate(root);
      out.heavy.push_back(h);
    } else if (est > it->endpoint_mass ||
               (est == it->endpoint_mass && v < it->hot_vertex)) {
      it->hot_vertex = v;
      it->endpoint_mass = est;
    }
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    for (HeavyComponent& h : out.heavy)
      if (parent_[v] == h.root) ++h.exact_size;
  }
  std::sort(out.heavy.begin(), out.heavy.end(),
            [](const HeavyComponent& a, const HeavyComponent& b) {
              if (a.endpoint_mass != b.endpoint_mass)
                return a.endpoint_mass > b.endpoint_mass;
              return a.root < b.root;
            });
  return out;
}

const std::vector<VertexId>& StreamStats::labels() const {
  LOGCC_CHECK_MSG(finished_, "labels() before finish()");
  return parent_;
}

}  // namespace logcc::sketch
