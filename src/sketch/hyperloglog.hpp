// HyperLogLog: fixed-seed, mergeable distinct-count sketch — the first
// citizen of the approximate tier (docs/ARCHITECTURE.md "Approximate
// tier").
//
// A sketch summarizes a multiset of 64-bit items in m = 2^precision
// one-byte registers: item -> h = mix64(seed, item); the top `precision`
// bits pick a register, the position of the first set bit in the rest is
// max-combined into it. estimate() is the classic bias-corrected harmonic
// mean with the linear-counting switch for small cardinalities; the
// standard error is 1.04 / sqrt(m) (what tests/test_sketch_accuracy.cpp
// verifies over seed sweeps).
//
// Determinism contract (same as the algorithm layer): all randomness is the
// counter-based mix64 of a caller-chosen seed — no global RNG, no
// per-process salt. Two sketches with the same (precision, seed) fed the
// same item *set* hold bit-identical registers regardless of insertion
// order, duplication, threading, or backend: add() is a pure register max,
// so add_parallel realises bulk insertion with util::atomic_max and is
// bit-identical to the serial loop at every thread count.
//
// The algebra the property suite (tests/test_sketch.cpp) pins:
//   merge(a, b) == merge(b, a)            (register-wise max commutes)
//   merge(merge(a, b), c) == merge(a, merge(b, c))
//   merge(a, a) == a                      (idempotent)
//   deserialize(serialize(s)) == s        (bit-identical round trip)
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/scan.hpp"

namespace logcc::sketch {

class HyperLogLog {
 public:
  static constexpr int kMinPrecision = 4;
  static constexpr int kMaxPrecision = 18;

  /// Empty sketch: precision() == 0, estimate() == 0, mergeable only with
  /// itself. Exists so containers can hold sketches before configuration.
  HyperLogLog() = default;

  /// m = 2^precision registers, all randomness derived from `seed`.
  HyperLogLog(int precision, std::uint64_t seed);

  /// Inserts one item (hashes with mix64(seed, item)).
  void add(std::uint64_t item) { add_hashed(util::mix64(seed_, item)); }

  /// Inserts a pre-mixed 64-bit hash (the caller already ran mix64 or an
  /// equally well-distributed function over its key).
  void add_hashed(std::uint64_t h) {
    const std::uint32_t idx = static_cast<std::uint32_t>(h >> (64 - precision_));
    const std::uint8_t rank = rank_of(h);
    if (rank > registers_[idx]) registers_[idx] = rank;
  }

  /// Bulk insertion via atomic register max — order-invariant, hence
  /// bit-identical to the serial loop for every thread count and backend.
  /// Accepts any integral key width (graph::VertexId spans widen to the
  /// same 64-bit keys add() would hash).
  template <typename T>
  void add_parallel(std::span<const T> items) {
    static_assert(std::is_integral_v<T> && sizeof(T) <= 8);
    LOGCC_CHECK_MSG(precision_ != 0, "add_parallel on an empty HyperLogLog");
    util::parallel_for(0, items.size(), [&](std::size_t i) {
      const std::uint64_t h =
          util::mix64(seed_, static_cast<std::uint64_t>(items[i]));
      const std::uint32_t idx =
          static_cast<std::uint32_t>(h >> (64 - precision_));
      util::atomic_max(registers_[idx], rank_of(h));
    });
  }

  /// Register-wise max. Both sides must have the same precision and seed
  /// (LOGCC_CHECK): sketches from different hash functions are not
  /// comparable, and silently merging them would estimate garbage.
  void merge(const HyperLogLog& other);

  /// Bias-corrected cardinality estimate (0 for the empty sketch).
  double estimate() const;

  /// The theoretical relative standard error 1.04/sqrt(m).
  double standard_error() const;

  int precision() const { return precision_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t num_registers() const { return registers_.size(); }
  const std::vector<std::uint8_t>& registers() const { return registers_; }
  std::uint64_t memory_bytes() const { return registers_.size(); }

  /// Fixed little-endian layout (precision, seed, registers); bit-identical
  /// round trip through deserialize. See docs/FILE_FORMATS.md.
  std::vector<std::uint8_t> serialize() const;
  /// Returns false (leaving *out untouched) on truncated or malformed
  /// input; never aborts on bad bytes.
  static bool deserialize(std::span<const std::uint8_t> bytes,
                          HyperLogLog* out);

  friend bool operator==(const HyperLogLog&, const HyperLogLog&) = default;

 private:
  /// 1 + number of leading zeros of the suffix left after the register
  /// index, in [1, 64 - precision + 1].
  std::uint8_t rank_of(std::uint64_t h) const;

  int precision_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::uint8_t> registers_;
};

}  // namespace logcc::sketch
