#include "sketch/count_min.hpp"

#include <cmath>

namespace logcc::sketch {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

CountMinSketch::CountMinSketch(std::uint32_t depth, std::uint32_t width,
                               std::uint64_t seed, CmsUpdate update)
    : depth_(depth),
      width_(width),
      seed_(seed),
      update_(update),
      counters_(static_cast<std::uint64_t>(depth) * width) {
  LOGCC_CHECK_MSG(depth >= 1 && width >= 2, "CountMinSketch shape too small");
}

void CountMinSketch::add(std::uint64_t key, std::uint64_t count) {
  LOGCC_CHECK_MSG(depth_ != 0, "add on an empty CountMinSketch");
  total_ += count;
  if (update_ == CmsUpdate::kStandard) {
    for (std::uint32_t r = 0; r < depth_; ++r)
      counters_[static_cast<std::uint64_t>(r) * width_ + cell_index(r, key)] +=
          count;
    return;
  }
  // Conservative update: raise each row cell only to (current estimate +
  // count) — cells already above carry mass from colliding keys and need
  // no more. Keeps estimate(key) >= true count (every increment of key
  // raises its row minimum by at least... exactly `count`).
  std::uint64_t est = ~std::uint64_t{0};
  for (std::uint32_t r = 0; r < depth_; ++r) {
    const std::uint64_t c =
        counters_[static_cast<std::uint64_t>(r) * width_ + cell_index(r, key)];
    if (c < est) est = c;
  }
  const std::uint64_t target = est + count;
  for (std::uint32_t r = 0; r < depth_; ++r) {
    std::uint64_t& c =
        counters_[static_cast<std::uint64_t>(r) * width_ + cell_index(r, key)];
    if (c < target) c = target;
  }
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const {
  if (depth_ == 0) return 0;
  std::uint64_t est = ~std::uint64_t{0};
  for (std::uint32_t r = 0; r < depth_; ++r) {
    const std::uint64_t c =
        counters_[static_cast<std::uint64_t>(r) * width_ + cell_index(r, key)];
    if (c < est) est = c;
  }
  return est;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  LOGCC_CHECK_MSG(depth_ == other.depth_ && width_ == other.width_ &&
                      seed_ == other.seed_ && update_ == other.update_,
                  "CountMinSketch merge: incompatible shape, seed, or mode");
  for (std::size_t i = 0; i < counters_.size(); ++i)
    counters_[i] += other.counters_[i];
  total_ += other.total_;
}

double CountMinSketch::epsilon() const {
  if (width_ == 0) return 0.0;
  return std::exp(1.0) / static_cast<double>(width_);
}

double CountMinSketch::delta() const {
  if (depth_ == 0) return 1.0;
  return std::exp(-static_cast<double>(depth_));
}

std::vector<std::uint8_t> CountMinSketch::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(40 + counters_.size() * 8);
  put_u64(out, depth_);
  put_u64(out, width_);
  put_u64(out, seed_);
  put_u64(out, static_cast<std::uint64_t>(update_));
  put_u64(out, total_);
  for (std::uint64_t c : counters_) put_u64(out, c);
  return out;
}

bool CountMinSketch::deserialize(std::span<const std::uint8_t> bytes,
                                 CountMinSketch* out) {
  if (bytes.size() < 40) return false;
  const std::uint64_t depth = get_u64(bytes.data());
  const std::uint64_t width = get_u64(bytes.data() + 8);
  const std::uint64_t seed = get_u64(bytes.data() + 16);
  const std::uint64_t mode = get_u64(bytes.data() + 24);
  const std::uint64_t total = get_u64(bytes.data() + 32);
  if (depth < 1 || depth > 64 || width < 2 || width > (1u << 30) || mode > 1)
    return false;
  const std::uint64_t cells = depth * width;
  if (bytes.size() != 40 + cells * 8) return false;
  CountMinSketch s(static_cast<std::uint32_t>(depth),
                   static_cast<std::uint32_t>(width), seed,
                   static_cast<CmsUpdate>(mode));
  s.total_ = total;
  for (std::uint64_t i = 0; i < cells; ++i)
    s.counters_[i] = get_u64(bytes.data() + 40 + i * 8);
  *out = std::move(s);
  return true;
}

}  // namespace logcc::sketch
