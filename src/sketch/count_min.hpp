// CountMinSketch: fixed-seed frequency sketch with an overestimate-only
// guarantee — the heavy-hitter half of the approximate tier.
//
// depth x width counters; row r hashes a key with the counter-based
// mix64(mix64(seed, r + 1), key), so a (depth, width, seed) triple fully
// determines the sketch function — no global RNG, no per-process salt.
// For every key, estimate(key) >= true count always, and
// estimate(key) <= true + (e / width) * N with probability 1 - e^-depth
// (N = total mass added) — the bounds tests/test_sketch_accuracy.cpp
// verifies over seed sweeps.
//
// Two update modes, chosen per use site:
//
//   kStandard     — every row cell gets += count. Counter addition
//                   commutes, so standard sketches are insert-order
//                   invariant, merge exactly (cell-wise +: merged sketch
//                   == one sketch fed both streams), and bulk-insert in
//                   parallel via atomic fetch-add (add_parallel) with
//                   bit-identical counters at every thread count and
//                   backend. The mode every parallel path uses.
//
//   kConservative — only cells at the current row minimum advance
//                   (conservative update): strictly tighter estimates,
//                   still overestimate-only, but inherently sequential —
//                   the update depends on the counters' current state, so
//                   it is neither insert-order invariant nor exactly
//                   mergeable. Used by the one-pass streaming consumers
//                   (sketch::StreamStats) that own their stream order.
//                   merge() still cell-wise-adds (the result keeps the
//                   overestimate-only guarantee: each side overestimates
//                   its substream, sums overestimate the union) and
//                   add_parallel LOGCC_CHECKs it is not called in this
//                   mode.
//
// The property suite (tests/test_sketch.cpp) pins the standard-mode
// algebra (merge commutativity/associativity, order invariance, serialize
// round trip) and that conservative estimates are pointwise <= standard
// ones on the same stream while never undershooting the truth.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace logcc::sketch {

enum class CmsUpdate : std::uint8_t {
  kStandard = 0,
  kConservative = 1,
};

class CountMinSketch {
 public:
  /// Empty sketch: depth() == 0, estimate() == 0. Exists so containers can
  /// hold sketches before configuration.
  CountMinSketch() = default;

  CountMinSketch(std::uint32_t depth, std::uint32_t width, std::uint64_t seed,
                 CmsUpdate update = CmsUpdate::kStandard);

  /// Adds `count` mass to `key` under the configured update mode.
  void add(std::uint64_t key, std::uint64_t count = 1);

  /// Bulk count-1 insertion via atomic fetch-add — order-invariant, hence
  /// bit-identical to the serial loop at every thread count and backend.
  /// Standard mode only (LOGCC_CHECK): conservative updates are stateful
  /// and have no order-invariant parallel form. Accepts any integral key
  /// width (graph::VertexId spans widen to the same 64-bit keys).
  template <typename T>
  void add_parallel(std::span<const T> keys) {
    static_assert(std::is_integral_v<T> && sizeof(T) <= 8);
    LOGCC_CHECK_MSG(depth_ != 0, "add_parallel on an empty CountMinSketch");
    LOGCC_CHECK_MSG(update_ == CmsUpdate::kStandard,
                    "add_parallel requires standard update mode");
    util::parallel_for(0, keys.size(), [&](std::size_t i) {
      const std::uint64_t key = static_cast<std::uint64_t>(keys[i]);
      for (std::uint32_t r = 0; r < depth_; ++r) {
        std::uint64_t& cell = counters_[static_cast<std::uint64_t>(r) * width_ +
                                        cell_index(r, key)];
        std::atomic_ref<std::uint64_t>(cell).fetch_add(
            1, std::memory_order_relaxed);
      }
    });
    total_ += keys.size();
  }

  /// Min over the key's row cells: >= the true count always; the e/width
  /// overestimate bound holds per add semantics (see header comment).
  std::uint64_t estimate(std::uint64_t key) const;

  /// Cell-wise +. Both sides must have the same shape, seed, and mode
  /// (LOGCC_CHECK). Standard mode: exact — merged == both streams into one
  /// sketch. Conservative mode: overestimate-only is preserved, exactness
  /// is not (documented above).
  void merge(const CountMinSketch& other);

  /// Total mass added (the N in the e/width * N bound).
  std::uint64_t total() const { return total_; }

  /// The epsilon of the (epsilon, delta) guarantee: e / width.
  double epsilon() const;
  /// The delta: e^-depth (per-key failure probability of the bound).
  double delta() const;

  std::uint32_t depth() const { return depth_; }
  std::uint32_t width() const { return width_; }
  std::uint64_t seed() const { return seed_; }
  CmsUpdate update_mode() const { return update_; }
  const std::vector<std::uint64_t>& counters() const { return counters_; }
  std::uint64_t memory_bytes() const { return counters_.size() * 8; }

  /// Fixed little-endian layout (shape, seed, mode, total, counters);
  /// bit-identical round trip through deserialize.
  std::vector<std::uint8_t> serialize() const;
  /// Returns false (leaving *out untouched) on truncated or malformed
  /// input; never aborts on bad bytes.
  static bool deserialize(std::span<const std::uint8_t> bytes,
                          CountMinSketch* out);

  friend bool operator==(const CountMinSketch&,
                         const CountMinSketch&) = default;

 private:
  std::uint64_t cell_index(std::uint32_t row, std::uint64_t key) const {
    // Counter-based row hash; the multiply-shift range reduction keeps the
    // full 64 mixed bits in play (no modulo bias worth caring about here,
    // but mostly: no division on the hot path).
    const std::uint64_t h = util::mix64(row_seed(row), key);
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(h) * width_) >> 64);
  }
  std::uint64_t row_seed(std::uint32_t row) const {
    return util::mix64(seed_, row + 1);
  }

  std::uint32_t depth_ = 0;
  std::uint32_t width_ = 0;
  std::uint64_t seed_ = 0;
  CmsUpdate update_ = CmsUpdate::kStandard;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counters_;  // depth_ rows of width_ cells
};

}  // namespace logcc::sketch
