// StreamStats: the one-pass streaming aggregator of the approximate tier —
// what `cc_tool --sketch` runs over a generator edge stream it never
// materializes (docs/ARCHITECTURE.md "Approximate tier").
//
// Memory model: O(n) vertex state + O(1) sketches, never O(m) edges. The
// vertex state is a min-rooted union-find label array (the same flat
// min-id forest invariant as serve::ConnectivityEngine), which makes the
// connectivity answers exact; everything edge-mass shaped — distinct
// edges under stream duplication, per-vertex degree mass, heavy hitters —
// is sketched, because answering it exactly would need the O(m) state the
// streaming mode exists to avoid:
//
//   hll_edges    distinct (deduplicated) edges:  HyperLogLog over the
//                canonical min<<32|max endpoint key.
//   hll_vertices distinct non-isolated vertices: HyperLogLog over both
//                endpoints.
//   cms_degree   per-vertex endpoint mass (degree with multiplicity):
//                conservative-update CountMinSketch + a bounded top-k
//                candidate list, the classic heavy-hitter loop.
//   hll_components / cms_sizes (built by finish()): component count and
//                per-component size estimated from the final label array —
//                the sketch-tier views the serving layer's SketchedView
//                shares bit-for-bit (same options => same registers).
//
// Determinism: add_edge is sequential (a stream has an order; generator
// enumeration is single-threaded by contract) and all hashing is seeded
// mix64, so a (stream, options) pair fully determines every sketch bit.
// finish() uses only order-invariant parallel steps (shortcut flatten,
// atomic-max/add bulk sketch fills), so its results are also bit-identical
// for every thread count and backend — pinned by tests/test_sketch.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sketch/count_min.hpp"
#include "sketch/hyperloglog.hpp"

namespace logcc::sketch {

/// Sub-seed streams (mix64(seed, stream)) for the label-derived sketches.
/// Shared by StreamStats::finish and serve::SketchedView so the two paths
/// produce bit-identical registers/counters from the same labels, seed,
/// and shape — what the sketch differential suite pins.
inline constexpr std::uint64_t kComponentHllStream = 4;
inline constexpr std::uint64_t kSizeCmsStream = 5;

struct StreamStatsOptions {
  /// Register-array size of every HyperLogLog: m = 2^hll_precision, one
  /// byte per register, standard error 1.04/sqrt(m) (~1.6% at 12).
  int hll_precision = 12;
  std::uint32_t cms_depth = 4;
  std::uint32_t cms_width = 1u << 14;
  /// Top-k candidate slots the heavy-hitter loop maintains.
  std::uint32_t heavy_hitters = 8;
  std::uint64_t seed = 1;
};

/// One heavy-hitter component of the finished stream: the component (by
/// canonical min-id root) of a vertex the degree sketch flagged as heavy.
struct HeavyComponent {
  graph::VertexId root = 0;        // canonical component label
  graph::VertexId hot_vertex = 0;  // the flagged member vertex
  std::uint64_t endpoint_mass = 0; // cms_degree estimate for hot_vertex
  std::uint64_t exact_size = 0;    // exact member count (from the labels)
  std::uint64_t approx_size = 0;   // cms_sizes estimate (overestimate-only)
};

/// Everything finish() reports. Estimates carry their a-priori error
/// bounds so consumers can print honest error bars without knowing sketch
/// internals.
struct StreamSummary {
  std::uint64_t num_vertices = 0;
  std::uint64_t edges = 0;       // exact, with multiplicity, incl. loops
  std::uint64_t self_loops = 0;  // exact
  double distinct_edges = 0.0;       // HLL estimate
  double touched_vertices = 0.0;     // HLL estimate (non-isolated vertices)
  double hll_standard_error = 0.0;   // 1.04/sqrt(m): ±1σ for the HLLs above
  std::uint64_t exact_components = 0;  // from the label array
  double approx_components = 0.0;      // HLL-over-labels estimate
  double size_epsilon = 0.0;  // cms_sizes bound: approx <= exact + eps*n
  std::uint64_t sketch_bytes = 0;  // all sketches together
  std::uint64_t state_bytes = 0;   // the O(n) label array
  std::vector<HeavyComponent> heavy;  // endpoint-mass-descending
};

class StreamStats {
 public:
  /// Aggregator over the fixed vertex universe [0, n).
  explicit StreamStats(std::uint64_t n, StreamStatsOptions options = {});

  /// Consumes one stream edge (endpoints < n, LOGCC_CHECK; self-loops and
  /// duplicates welcome — that is the point). Sequential by design.
  void add_edge(graph::VertexId u, graph::VertexId v);

  /// Flattens the label array to canonical min-id form, builds the
  /// component-count HLL and size CMS from it, resolves heavy-hitter
  /// candidates to components, and reports. Call once, after the stream;
  /// add_edge afterwards is a LOGCC_CHECK failure.
  StreamSummary finish();

  /// Canonical min-id labels — exact, identical to what the batch
  /// algorithms produce on the accumulated edge set (valid after finish).
  const std::vector<graph::VertexId>& labels() const;

  // --- sketch access (for tests, benches, and serialization) -------------
  const HyperLogLog& edge_hll() const { return hll_edges_; }
  const HyperLogLog& vertex_hll() const { return hll_vertices_; }
  const CountMinSketch& degree_cms() const { return cms_degree_; }
  /// Valid after finish().
  const HyperLogLog& component_hll() const { return hll_components_; }
  const CountMinSketch& size_cms() const { return cms_sizes_; }

  std::uint64_t num_vertices() const { return parent_.size(); }
  std::uint64_t num_edges() const { return edges_; }
  const StreamStatsOptions& options() const { return options_; }

 private:
  graph::VertexId find(graph::VertexId v);
  void update_heavy_candidates(graph::VertexId v, std::uint64_t estimate);

  StreamStatsOptions options_;
  std::vector<graph::VertexId> parent_;  // min-rooted union-find
  std::uint64_t edges_ = 0;
  std::uint64_t self_loops_ = 0;
  bool finished_ = false;

  HyperLogLog hll_edges_;
  HyperLogLog hll_vertices_;
  CountMinSketch cms_degree_;  // conservative: sequential stream owns order
  // Built by finish() from the final labels (standard mode, parallel fill
  // — bit-identical to serve::SketchedView over the same labels/options).
  HyperLogLog hll_components_;
  CountMinSketch cms_sizes_;

  // Bounded heavy-hitter candidates: (vertex, last cms_degree estimate).
  std::vector<std::pair<graph::VertexId, std::uint64_t>> candidates_;
};

}  // namespace logcc::sketch
