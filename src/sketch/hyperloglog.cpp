#include "sketch/hyperloglog.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace logcc::sketch {

namespace {

/// Bias-correction constant alpha_m for the raw harmonic-mean estimator
/// (Flajolet et al. 2007, Fig. 3).
double alpha(std::uint64_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

HyperLogLog::HyperLogLog(int precision, std::uint64_t seed)
    : precision_(precision),
      seed_(seed),
      registers_(std::uint64_t{1} << precision) {
  LOGCC_CHECK_MSG(precision >= kMinPrecision && precision <= kMaxPrecision,
                  "HyperLogLog precision out of [4, 18]");
}

std::uint8_t HyperLogLog::rank_of(std::uint64_t h) const {
  // The suffix left after the register index, shifted to the top. All-zero
  // suffix gets the maximum rank 64 - p + 1 (countl_zero of 0 is 64, so the
  // min against 64 - p handles it without a branch).
  const std::uint64_t suffix = h << precision_;
  const int zeros = std::min(std::countl_zero(suffix), 64 - precision_);
  return static_cast<std::uint8_t>(zeros + 1);
}

void HyperLogLog::merge(const HyperLogLog& other) {
  LOGCC_CHECK_MSG(precision_ == other.precision_ && seed_ == other.seed_,
                  "HyperLogLog merge: incompatible precision or seed");
  for (std::size_t i = 0; i < registers_.size(); ++i)
    if (other.registers_[i] > registers_[i])
      registers_[i] = other.registers_[i];
}

double HyperLogLog::estimate() const {
  if (precision_ == 0) return 0.0;
  const std::uint64_t m = registers_.size();
  double inv_sum = 0.0;
  std::uint64_t zeros = 0;
  for (std::uint8_t r : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    zeros += r == 0;
  }
  const double md = static_cast<double>(m);
  const double raw = alpha(m) * md * md / inv_sum;
  // Small-range correction: below 2.5m the raw estimator is biased; linear
  // counting on the empty-register fraction is near-exact there. With a
  // 64-bit hash no large-range correction is needed.
  if (raw <= 2.5 * md && zeros > 0)
    return md * std::log(md / static_cast<double>(zeros));
  return raw;
}

double HyperLogLog::standard_error() const {
  if (precision_ == 0) return 0.0;
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

std::vector<std::uint8_t> HyperLogLog::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(16 + registers_.size());
  put_u64(out, static_cast<std::uint64_t>(precision_));
  put_u64(out, seed_);
  out.insert(out.end(), registers_.begin(), registers_.end());
  return out;
}

bool HyperLogLog::deserialize(std::span<const std::uint8_t> bytes,
                              HyperLogLog* out) {
  if (bytes.size() < 16) return false;
  const std::uint64_t precision = get_u64(bytes.data());
  const std::uint64_t seed = get_u64(bytes.data() + 8);
  if (precision < kMinPrecision || precision > kMaxPrecision) return false;
  const std::uint64_t m = std::uint64_t{1} << precision;
  if (bytes.size() != 16 + m) return false;
  HyperLogLog h(static_cast<int>(precision), seed);
  const std::uint8_t kMaxRank = static_cast<std::uint8_t>(64 - precision + 1);
  for (std::uint64_t i = 0; i < m; ++i) {
    if (bytes[16 + i] > kMaxRank) return false;
    h.registers_[i] = bytes[16 + i];
  }
  *out = std::move(h);
  return true;
}

}  // namespace logcc::sketch
