#include "graph/graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace logcc::graph {

void EdgeList::canonicalize() {
  for (auto& e : edges)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
}

Graph Graph::from_edges(std::uint64_t n, std::span<const Edge> edges,
                        bool dedup) {
  if (dedup) {
    EdgeList copy;
    copy.n = n;
    copy.edges.assign(edges.begin(), edges.end());
    copy.canonicalize();
    return from_edges(copy.n, copy.edges, /*dedup=*/false);
  }
  for (const Edge& e : edges) {
    LOGCC_CHECK_MSG(e.u < n && e.v < n, "edge endpoint out of range");
  }

  Graph g;
  g.offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++g.offsets_[e.u + 1];
    if (e.u != e.v)
      ++g.offsets_[e.v + 1];
    else
      ++g.self_loops_;
  }
  for (std::uint64_t i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.adj_.resize(g.offsets_[n]);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adj_[cursor[e.u]++] = e.v;
    if (e.u != e.v) g.adj_[cursor[e.v]++] = e.u;
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    auto* begin = g.adj_.data() + g.offsets_[v];
    auto* end = g.adj_.data() + g.offsets_[v + 1];
    std::sort(begin, end);
  }
  return g;
}

Graph Graph::from_edges(const EdgeList& el, bool dedup) {
  return from_edges(el.n, el.edges, dedup);
}

EdgeList Graph::to_edges() const {
  EdgeList el;
  el.n = num_vertices();
  el.edges.reserve(num_edges());
  for (VertexId v = 0; v < el.n; ++v) {
    for (VertexId w : neighbors(v)) {
      if (v <= w) el.add(v, w);
    }
  }
  return el;
}

}  // namespace logcc::graph
