#include "graph/graph.hpp"

// Explicit instantiations of both index widths, so every translation unit
// that only consumes Graph/Graph64 links against these instead of
// re-instantiating the CSR builder.
namespace logcc::graph {

template struct BasicEdgeList<VertexId>;
template struct BasicEdgeList<VertexId64>;
template class BasicGraph<VertexId>;
template class BasicGraph<VertexId64>;

}  // namespace logcc::graph
