// Edge-list text I/O: `n m` header line, then one `u v` pair per line.
// Lines starting with '#' or '%' are comments (covers SNAP and Matrix Market
// edge dumps after trivial preprocessing).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace logcc::graph {

/// Writes `n m` then the edges.
void write_edge_list(std::ostream& os, const EdgeList& el);
bool write_edge_list_file(const std::string& path, const EdgeList& el);

/// Parses an edge list; if no header line is present, n is inferred as
/// max endpoint + 1. Returns false (and leaves `out` empty) on malformed
/// input.
bool read_edge_list(std::istream& is, EdgeList& out);
bool read_edge_list_file(const std::string& path, EdgeList& out);

}  // namespace logcc::graph
