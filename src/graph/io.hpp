// Edge-list text I/O: `n m` header line, then one `u v` pair per line.
// Lines starting with '#' or '%' are comments (covers SNAP and Matrix Market
// edge dumps after trivial preprocessing). The exact grammar is documented
// in docs/FILE_FORMATS.md; for large graphs prefer the binary CSR format
// (graph/binary_io.hpp) — parse once, mmap forever.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace logcc::graph {

/// Writes `n m` then the edges, in list order (no canonicalization — a
/// read-back yields the identical EdgeList).
void write_edge_list(std::ostream& os, const EdgeList& el);
bool write_edge_list_file(const std::string& path, const EdgeList& el);

/// Parses an edge list; if no header line is present, n is inferred as
/// max endpoint + 1. Self-loops and parallel edges are preserved. Returns
/// false (and leaves `out` empty) on malformed input — any unparsable data
/// line fails the whole read, there is no partial recovery.
bool read_edge_list(std::istream& is, EdgeList& out);
bool read_edge_list_file(const std::string& path, EdgeList& out);

}  // namespace logcc::graph
