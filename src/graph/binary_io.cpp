#include "graph/binary_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/parallel.hpp"
#include "util/scan.hpp"
#include "util/timer.hpp"

namespace logcc::graph {

namespace {

void set_error(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

std::uint32_t byteswap32(std::uint32_t x) {
  return ((x & 0xFFu) << 24) | ((x & 0xFF00u) << 8) | ((x >> 8) & 0xFF00u) |
         (x >> 24);
}

// A header's offsets array starts right after the fixed header; the arc
// array right after the offsets. Both are naturally aligned: the mapping is
// page-aligned, the header is 64 bytes, and (n+1)*8 keeps 4-byte (v1) /
// 8-byte (v2) alignment.
constexpr std::size_t kHeaderBytes = sizeof(BinaryCsrHeader);

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

constexpr std::uint64_t kNarrowCap = std::numeric_limits<std::uint32_t>::max();

// Shared two-pass writer core: A is the on-disk arc width (uint32 for
// LOGCCSR1, uint64 for LOGCCSR2). The count caps for the chosen format have
// already been checked by the entry point.
template <typename A>
bool write_csr_streaming_impl(const std::string& path, std::uint64_t n,
                              std::uint64_t edges, std::uint64_t arcs,
                              std::vector<std::uint64_t>& cursor,
                              const EdgeEnumerator& enumerate,
                              std::string* error) {
  const std::uint64_t file_size =
      kHeaderBytes + (n + 1) * 8 + arcs * sizeof(A);
  util::MmapFile map = util::MmapFile::create_rw(
      path, static_cast<std::size_t>(file_size), error);
  if (!map.valid()) return false;

  std::uint8_t* base = map.mutable_data();
  BinaryCsrHeader h{};
  if constexpr (sizeof(A) == 4) {
    std::memcpy(h.magic, kBinaryCsrMagic, sizeof(h.magic));
    h.version = kBinaryCsrVersion;
  } else {
    std::memcpy(h.magic, kBinaryCsrMagicV2, sizeof(h.magic));
    h.version = kBinaryCsrVersionV2;
  }
  h.endian = kEndianTag;
  h.n = n;
  h.num_arcs = arcs;
  h.num_edges = edges;
  std::memcpy(base, &h, kHeaderBytes);

  auto* offsets = reinterpret_cast<std::uint64_t*>(base + kHeaderBytes);
  auto* adj = reinterpret_cast<A*>(base + kHeaderBytes + (n + 1) * 8);
  std::uint64_t run = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t deg = cursor[v];
    offsets[v] = run;
    cursor[v] = run;  // becomes the scatter cursor for pass 2
    run += deg;
  }
  offsets[n] = run;

  // Pass 2: scatter arcs straight into the mapping. A cursor passing its
  // vertex's segment end means the enumerator did not replay the same
  // sequence — fail instead of corrupting the file.
  bool replay_mismatch = false;
  std::uint64_t edges2 = 0;
  enumerate([&](std::uint64_t u, std::uint64_t v) {
    if (u >= n || v >= n) {
      replay_mismatch = true;
      return;
    }
    ++edges2;
    if (cursor[u] >= offsets[u + 1] ||
        (u != v && cursor[v] >= offsets[v + 1])) {
      replay_mismatch = true;
      return;
    }
    adj[cursor[u]++] = static_cast<A>(v);
    if (u != v) adj[cursor[v]++] = static_cast<A>(u);
  });
  // On any failure past create_rw, remove the half-written file: it already
  // carries a valid magic + header, so leaving it behind would let a later
  // sniff/open accept garbage adjacency as a real dataset.
  auto discard = [&map, &path] {
    map.reset();
    std::remove(path.c_str());
  };
  if (replay_mismatch || edges2 != edges) {
    discard();
    set_error(error, "edge enumerator did not replay the same sequence");
    return false;
  }

  // Canonical form: each neighbor list sorted ascending, independent of
  // enumeration order (and of thread count — the segments are disjoint).
  util::parallel_for(0, n, [&](std::size_t v) {
    std::sort(adj + offsets[v], adj + offsets[v + 1]);
  });
  if (!map.sync()) {
    discard();
    set_error(error, "msync failed for '" + path + "'");
    return false;
  }
  return true;
}

}  // namespace

bool write_binary_csr_streaming(const std::string& path, std::uint64_t n,
                                const EdgeEnumerator& enumerate,
                                std::string* error, BinaryCsrFormat format) {
  // Strict bounds, checked on the full 64-bit values before any output file
  // exists. Narrow: ids are < n, and id 0xFFFFFFFF is kInvalidVertex — a
  // sentinel the algorithms compare against — so it must never be a real
  // vertex. Wide: same rule one width up.
  if (format == BinaryCsrFormat::kNarrow && n > kNarrowCap) {
    set_error(error,
              "vertex count " + std::to_string(n) +
                  " exceeds the 32-bit id space of LOGCCSR1; use the "
                  "LOGCCSR2 (wide) format");
    return false;
  }
  if (n == std::numeric_limits<std::uint64_t>::max()) {
    set_error(error, "vertex count exceeds the 64-bit id space");
    return false;
  }
  // Pass 1: degree count. O(n) memory — this is the whole point of the
  // streaming writer; the edge list itself never exists in memory. Degrees
  // and the arc total stay uint64 throughout: one vertex's degree (and
  // certainly the 2*edges arc total) can exceed uint32 even for files that
  // satisfy the v1 edge cap.
  std::vector<std::uint64_t> cursor(n, 0);
  std::uint64_t edges = 0;
  bool out_of_range = false;
  enumerate([&](std::uint64_t u, std::uint64_t v) {
    if (u >= n || v >= n) {
      out_of_range = true;
      return;
    }
    ++edges;
    ++cursor[u];
    if (u != v) ++cursor[v];
  });
  if (out_of_range) {
    set_error(error, "edge endpoint out of range for n");
    return false;
  }
  // The narrow format's other 64-bit cap: `orig` edge indices are dense
  // uint32 on the 32-bit execution path. Rejecting here (before the file is
  // created) is what makes the failure actionable — the old behavior wrote
  // a well-formed v1 file that every later load refused.
  if (format == BinaryCsrFormat::kNarrow && edges > kNarrowCap) {
    set_error(error,
              "edge count " + std::to_string(edges) +
                  " exceeds the 32-bit edge-index space of LOGCCSR1; use "
                  "the LOGCCSR2 (wide) format");
    return false;
  }
  std::uint64_t arcs = 0;
  for (std::uint64_t v = 0; v < n; ++v) arcs += cursor[v];

  if (format == BinaryCsrFormat::kNarrow)
    return write_csr_streaming_impl<std::uint32_t>(path, n, edges, arcs,
                                                   cursor, enumerate, error);
  return write_csr_streaming_impl<std::uint64_t>(path, n, edges, arcs,
                                                 cursor, enumerate, error);
}

bool write_binary_csr(const std::string& path, const EdgeList& el,
                      std::string* error) {
  return write_binary_csr_streaming(
      path, el.n,
      [&el](const EdgeSink& sink) {
        for (const Edge& e : el.edges) sink(e.u, e.v);
      },
      error, BinaryCsrFormat::kNarrow);
}

bool write_binary_csr(const std::string& path, const EdgeList64& el,
                      std::string* error) {
  return write_binary_csr_streaming(
      path, el.n,
      [&el](const EdgeSink& sink) {
        for (const Edge64& e : el.edges) sink(e.u, e.v);
      },
      error, BinaryCsrFormat::kWide);
}

bool stream_family_to_binary(const std::string& family, std::uint64_t n,
                             std::uint64_t seed, const std::string& path,
                             std::string* error, BinaryCsrFormat format) {
  FamilyStream fs = make_family_stream(family, n, seed);
  return write_binary_csr_streaming(path, fs.num_vertices, fs.enumerate,
                                    error, format);
}

bool convert_text_to_binary(const std::string& text_path,
                            const std::string& bin_path, std::string* error) {
  EdgeList el;
  if (!read_edge_list_file(text_path, el)) {
    set_error(error, "cannot parse text edge list '" + text_path + "'");
    return false;
  }
  return write_binary_csr(bin_path, el, error);
}

bool sniff_binary_csr(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (!fp) return false;
  char magic[8];
  const bool got = std::fread(magic, 1, sizeof(magic), fp) == sizeof(magic);
  std::fclose(fp);
  return got &&
         (std::memcmp(magic, kBinaryCsrMagic, sizeof(magic)) == 0 ||
          std::memcmp(magic, kBinaryCsrMagicV2, sizeof(magic)) == 0);
}

bool BinaryGraph::open(const std::string& path, std::string* error,
                       util::MmapPopulate populate) {
  // min_size: reject header-truncated files before mapping them at all.
  map_ = util::MmapFile::open_read(path, error, populate, kHeaderBytes);
  view_ = CsrView{};
  view64_ = CsrView64{};
  wide_ = false;
  if (!map_.valid()) return false;
  if (map_.size() < kHeaderBytes) {
    set_error(error, "truncated file: smaller than the 64-byte header");
    return false;
  }
  BinaryCsrHeader h;
  std::memcpy(&h, map_.data(), kHeaderBytes);
  const bool v1 = std::memcmp(h.magic, kBinaryCsrMagic, sizeof(h.magic)) == 0;
  const bool v2 =
      std::memcmp(h.magic, kBinaryCsrMagicV2, sizeof(h.magic)) == 0;
  if (!v1 && !v2) {
    set_error(error, "bad magic: not a LOGCCSR1/LOGCCSR2 file");
    return false;
  }
  if (h.endian == byteswap32(kEndianTag)) {
    set_error(error, "foreign-endian file (written on an incompatible host)");
    return false;
  }
  if (h.endian != kEndianTag) {
    set_error(error, "corrupt endianness tag");
    return false;
  }
  // The magic IS the format: a v2-magic file whose version field says 1 (or
  // anything else) is a chimera, not a v1 file that happens to start with
  // the wrong string.
  const std::uint32_t want_version = v1 ? kBinaryCsrVersion : kBinaryCsrVersionV2;
  if (h.version != want_version) {
    set_error(error, "unsupported format version " + std::to_string(h.version) +
                         (v1 ? " for LOGCCSR1" : " for LOGCCSR2"));
    return false;
  }
  // Count caps, straight off the 64-bit header fields — before the size
  // arithmetic and long before anything narrows. For v1 both n and the
  // edge count must fit uint32 (id 0xFFFFFFFF is the kInvalidVertex
  // sentinel and `orig` edge indices are dense uint32); a violating file
  // gets an error that names the fix. For v2 only the one-below-sentinel
  // rule applies.
  if (v1) {
    if (h.n > kNarrowCap) {
      set_error(error,
                "vertex count " + std::to_string(h.n) +
                    " exceeds the 32-bit id space of LOGCCSR1 (convert to "
                    "LOGCCSR2 for wide graphs)");
      return false;
    }
    if (h.num_edges > kNarrowCap) {
      set_error(error,
                "edge count " + std::to_string(h.num_edges) +
                    " exceeds the 32-bit edge-index space of LOGCCSR1 "
                    "(convert to LOGCCSR2 for wide graphs)");
      return false;
    }
  } else if (h.n == std::numeric_limits<std::uint64_t>::max()) {
    set_error(error, "vertex count exceeds the 64-bit id space");
    return false;
  }
  // 128-bit arithmetic: a corrupt num_arcs must not wrap the expected size
  // back onto the real file size and sneak past this check.
  const std::size_t arc_width = v1 ? sizeof(std::uint32_t) : sizeof(std::uint64_t);
  const unsigned __int128 expected =
      static_cast<unsigned __int128>(kHeaderBytes) +
      static_cast<unsigned __int128>(h.n + 1) * 8 +
      static_cast<unsigned __int128>(h.num_arcs) * arc_width;
  if (expected != static_cast<unsigned __int128>(map_.size())) {
    set_error(error, "file size mismatch: header (n=" + std::to_string(h.n) +
                         ", arcs=" + std::to_string(h.num_arcs) +
                         ") does not fit the " + std::to_string(map_.size()) +
                         "-byte file");
    return false;
  }
  const auto* offsets =
      reinterpret_cast<const std::uint64_t*>(map_.data() + kHeaderBytes);
  if (offsets[0] != 0 || offsets[h.n] != h.num_arcs) {
    set_error(error, "corrupt offsets envelope");
    return false;
  }
  const std::uint8_t* adj_base = map_.data() + kHeaderBytes + (h.n + 1) * 8;
  if (v1) {
    view_.n = h.n;
    view_.edges = h.num_edges;
    view_.offsets = offsets;
    view_.adj = reinterpret_cast<const VertexId*>(adj_base);
  } else {
    wide_ = true;
    view64_.n = h.n;
    view64_.edges = h.num_edges;
    view64_.offsets = offsets;
    view64_.adj = reinterpret_cast<const VertexId64*>(adj_base);
  }
  return true;
}

namespace {

template <typename V>
bool validate_csr_structure_impl(const BasicCsrView<V>& v,
                                 std::string* error) {
  const std::uint64_t n = v.n;
  // Monotonicity first, alone: neighbors(u) computes a span from
  // offsets[u]..offsets[u+1], so the other checks may only run once every
  // segment is known to be well-formed and within the arc array.
  const bool monotone = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), true,
      [&](std::size_t u) {
        return v.offsets[u] <= v.offsets[u + 1] &&
               v.offsets[u + 1] <= v.offsets[n];
      },
      [](bool a, bool b) { return a && b; });
  if (!monotone) {
    set_error(error, "offsets not monotone");
    return false;
  }
  const bool shape_ok = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), true,
      [&](std::size_t u) {
        auto nb = v.neighbors(static_cast<V>(u));
        if (!std::is_sorted(nb.begin(), nb.end())) return false;
        for (V w : nb)
          if (w >= n) return false;
        return true;
      },
      [](bool a, bool b) { return a && b; });
  if (!shape_ok) {
    set_error(error, "adjacency list unsorted or id out of range");
    return false;
  }
  return true;
}

template <typename V>
bool validate_csr_impl(const BasicCsrView<V>& v, std::string* error) {
  if (!validate_csr_structure_impl(v, error)) return false;
  const std::uint64_t n = v.n;
  // Arc symmetry with *multiplicity*: for every distinct neighbor w of u,
  // the number of (u, w) arcs must equal the number of (w, u) arcs — a
  // membership-only check would accept e.g. adj(0)=[1,1,1], adj(1)=[0],
  // whose canonical edge enumeration then disagrees with the header count
  // (and with everything sized from it). Lists are sorted, so runs and
  // equal_range do it in O(m log deg). Self-loops are their own reverse.
  const bool symmetric = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), true,
      [&](std::size_t u) {
        auto nb = v.neighbors(static_cast<V>(u));
        for (std::size_t i = 0; i < nb.size();) {
          const V w = nb[i];
          std::size_t j = i;
          while (j < nb.size() && nb[j] == w) ++j;  // multiplicity at u
          if (w != static_cast<V>(u)) {
            auto back = v.neighbors(w);
            auto range =
                std::equal_range(back.begin(), back.end(), static_cast<V>(u));
            if (static_cast<std::size_t>(range.second - range.first) != j - i)
              return false;
          }
          i = j;
        }
        return true;
      },
      [](bool a, bool b) { return a && b; });
  if (!symmetric) {
    set_error(error,
              "asymmetric adjacency: arc multiplicities disagree between "
              "endpoint lists");
    return false;
  }
  // Self-loop count (sums commute: thread-count-invariant reduction).
  const std::uint64_t self_loops = util::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(n), std::uint64_t{0},
      [&](std::size_t u) {
        auto nb = v.neighbors(static_cast<V>(u));
        auto range =
            std::equal_range(nb.begin(), nb.end(), static_cast<V>(u));
        return static_cast<std::uint64_t>(range.second - range.first);
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  // Together with multiplicity symmetry above, this pins the header edge
  // count to the canonical smaller-endpoint enumeration: every non-loop
  // pair {u, w} of multiplicity k contributes k arcs at each endpoint and
  // is counted once from the smaller, so the canonical count is exactly
  // (num_arcs + self_loops) / 2. Buffers sized from num_edges (e.g. the
  // spanning-forest in_forest marks, indexed by `orig`) can therefore
  // never be overrun by the enumerators.
  if ((v.num_arcs() + self_loops) / 2 != v.edges ||
      (v.num_arcs() + self_loops) % 2 != 0) {
    set_error(error, "edge count in header disagrees with arc count");
    return false;
  }
  // The narrow algorithms index edges with dense uint32 `orig` ids; reject
  // the ceiling here so an oversized (but well-formed) view is a clean
  // validation error instead of a LOGCC_CHECK abort at first use. Wide
  // views carry uint64 orig ids — no cap.
  if constexpr (sizeof(V) == 4) {
    if (v.edges > kNarrowCap) {
      set_error(error, "edge count exceeds the 32-bit edge-index space");
      return false;
    }
  }
  return true;
}

}  // namespace

bool validate_csr_structure(const CsrView& v, std::string* error) {
  return validate_csr_structure_impl(v, error);
}
bool validate_csr_structure(const CsrView64& v, std::string* error) {
  return validate_csr_structure_impl(v, error);
}

bool validate_csr(const CsrView& v, std::string* error) {
  return validate_csr_impl(v, error);
}
bool validate_csr(const CsrView64& v, std::string* error) {
  return validate_csr_impl(v, error);
}

namespace {

template <typename V>
BasicEdgeList<V> edge_list_from_csr_impl(const BasicCsrView<V>& v) {
  BasicEdgeList<V> out;
  out.n = v.n;
  // Canonical smaller-endpoint order via the shared csr_suffix_begin
  // (arcs_input.hpp) — the same sequence the CSR-native ingestion
  // (core::arcs_from_input) and ArcsInput::for_each_edge emit, which is
  // what makes the materializing and zero-copy paths bit-identical.
  util::parallel_emit<BasicEdge<V>>(
      static_cast<std::size_t>(v.n), out.edges,
      [&](std::size_t u) { return csr_suffix(v, static_cast<V>(u)).size(); },
      [&](std::size_t u, BasicEdge<V>* dst) {
        for (V w : csr_suffix(v, static_cast<V>(u)))
          *dst++ = BasicEdge<V>{static_cast<V>(u), w};
      });
  return out;
}

}  // namespace

EdgeList edge_list_from_csr(const CsrView& v) {
  return edge_list_from_csr_impl(v);
}
EdgeList64 edge_list_from_csr(const CsrView64& v) {
  return edge_list_from_csr_impl(v);
}

namespace {

// Strict decimal parse: the whole token must be digits ("1e6", "5,300,000",
// "0x7" all fail rather than silently truncating at the first non-digit).
bool parse_u64_strict(const std::string& token, std::uint64_t& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  if (token[0] == '-' || token[0] == '+') return false;
  out = v;
  return true;
}

}  // namespace

bool parse_generator_spec(const std::string& spec, std::string& family,
                          std::uint64_t& n, std::uint64_t& seed) {
  const auto c1 = spec.find(':');
  if (c1 == std::string::npos) return false;
  family = spec.substr(0, c1);
  std::string rest = spec.substr(c1 + 1);
  const auto c2 = rest.find(':');
  if (c2 != std::string::npos) {
    if (!parse_u64_strict(rest.substr(c2 + 1), seed)) return false;
    rest = rest.substr(0, c2);
  }
  return parse_u64_strict(rest, n) && n > 0;
}

const EdgeList& DatasetHandle::edges() {
  LOGCC_CHECK_MSG(!wide_, "edges(): wide datasets have no narrow EdgeList");
  if (input_.csr_backed() && !materialized_) {
    util::Timer timer;
    el_ = edge_list_from_csr(bg_.view());
    info_.materialize_seconds += timer.seconds();
    materialized_ = true;
  }
  return el_;
}

bool load_dataset_zero_copy(const std::string& spec, DatasetHandle& out,
                            std::string* error, util::MmapPopulate populate) {
  util::Timer timer;
  out = DatasetHandle{};
  DatasetInfo& info = out.info_;
  info.name = spec;
  if (spec.rfind("gen:", 0) == 0) {
    std::string family;
    std::uint64_t n = 0;
    std::uint64_t seed = 1;
    if (!parse_generator_spec(spec.substr(4), family, n, seed)) {
      set_error(error, "bad generator spec '" + spec +
                           "' (want gen:family:n[:seed])");
      return false;
    }
    out.el_ = make_family(family, n, seed);
    out.input_ = ArcsInput::from_edges(out.el_);
    info.source = "generator";
  } else if (sniff_binary_csr(spec)) {
    if (!out.bg_.open(spec, error, populate)) return false;
    info.populate = populate;
    // Deep validation before any accessor dereferences interior offsets: a
    // corrupt (but envelope-consistent) file must be a clean error, not an
    // out-of-bounds read — and the symmetry check matters doubly here,
    // because the CSR-native ingestion (core::arcs_from_input) and
    // edge_list_from_csr both emit from smaller-endpoint arc suffixes, so
    // an asymmetric file would silently drop edges rather than crash.
    const bool valid = out.bg_.wide() ? validate_csr(out.bg_.view64(), error)
                                      : validate_csr(out.bg_.view(), error);
    if (!valid) {
      if (error) *error = "corrupt binary CSR '" + spec + "': " + *error;
      return false;
    }
    if (out.bg_.wide()) {
      out.wide_ = true;
      out.input64_ = ArcsInput64::from_csr(out.bg_.view64());
    } else {
      out.input_ = ArcsInput::from_csr(out.bg_.view());
    }
    info.name = basename_of(spec);
    info.source = out.bg_.zero_copy() ? "binary-mmap" : "binary-copy";
    info.file_bytes = out.bg_.file_bytes();
  } else {
    if (!read_edge_list_file(spec, out.el_)) {
      set_error(error,
                "cannot read '" + spec +
                    "' as a text edge list (and it is not LOGCCSR1/LOGCCSR2)");
      return false;
    }
    out.input_ = ArcsInput::from_edges(out.el_);
    info.name = basename_of(spec);
    info.source = "text";
  }
  info.load_seconds = timer.seconds();
  return true;
}

bool load_dataset(const std::string& spec, EdgeList& out, DatasetInfo* info,
                  std::string* error) {
  DatasetHandle h;
  if (!load_dataset_zero_copy(spec, h, error)) return false;
  if (h.wide()) {
    // A wide file whose counts fit the narrow caps can still serve a
    // narrow-EdgeList consumer; a genuinely wide one cannot — be explicit
    // about which.
    const CsrView64& v = h.bg_.view64();
    if (v.n > kNarrowCap || v.edges > kNarrowCap) {
      set_error(error, "'" + spec +
                           "' is a wide LOGCCSR2 dataset; it exceeds the "
                           "32-bit EdgeList path (use the wide input)");
      return false;
    }
    util::Timer timer;
    out = EdgeList{};
    out.n = v.n;
    out.edges.reserve(v.edges);
    for (std::uint64_t u = 0; u < v.n; ++u) {
      for (VertexId64 w : csr_suffix(v, u))
        out.add(static_cast<VertexId>(u), static_cast<VertexId>(w));
    }
    h.info_.materialize_seconds += timer.seconds();
    if (info) *info = h.info();
    return true;
  }
  h.edges();  // materialize CSR-backed inputs (timed into the info record)
  out = std::move(h.el_);
  if (info) *info = h.info();
  return true;
}

}  // namespace logcc::graph
