// Workload generators. These realise the graph families the paper's analysis
// distinguishes: small-diameter dense graphs (where the m/n density term
// dominates) vs. large-diameter sparse graphs (where log d dominates), plus
// the skewed-degree families that motivate the work ("many graphs in
// applications have components of small diameter").
//
// All generators are deterministic in (parameters, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace logcc::graph {

/// Path 0-1-2-...-(n-1): diameter n-1, the log d stress test.
EdgeList make_path(std::uint64_t n);

/// Cycle over n vertices: diameter floor(n/2).
EdgeList make_cycle(std::uint64_t n);

/// Star centred at 0: diameter 2.
EdgeList make_star(std::uint64_t n);

/// Complete graph K_n (n small): diameter 1, maximum density.
EdgeList make_complete(std::uint64_t n);

/// rows x cols grid: diameter rows+cols-2 — the "road network" family.
EdgeList make_grid(std::uint64_t rows, std::uint64_t cols);

/// Complete binary tree on n vertices: diameter ~2 log2 n.
EdgeList make_binary_tree(std::uint64_t n);

/// Hypercube on 2^dim vertices: diameter dim.
EdgeList make_hypercube(std::uint32_t dim);

/// Erdos–Renyi G(n, m): m edges sampled uniformly without replacement
/// (rejection on duplicates/self-loops). Diameter O(log n) once m ≳ n.
EdgeList make_gnm(std::uint64_t n, std::uint64_t m, std::uint64_t seed);

/// Approximately k-regular random graph (union of k/2 random perfect
/// matchings plus a Hamilton cycle for connectivity when `connected`).
EdgeList make_random_regular(std::uint64_t n, std::uint32_t k,
                             std::uint64_t seed, bool connected = true);

/// RMAT / Kronecker-style skewed graph (a=0.57,b=c=0.19,d=0.05 defaults):
/// the social-network family with heavy-tailed degrees, tiny diameter.
EdgeList make_rmat(std::uint32_t scale, std::uint64_t m, std::uint64_t seed,
                   double a = 0.57, double b = 0.19, double c = 0.19);

/// Preferential attachment (Barabasi–Albert), k edges per arriving vertex.
EdgeList make_preferential(std::uint64_t n, std::uint32_t k,
                           std::uint64_t seed);

/// Caterpillar: a spine path of length `spine` with `legs` pendant vertices
/// per spine vertex. Large diameter *and* many low-degree vertices — stresses
/// the dormant/level machinery.
EdgeList make_caterpillar(std::uint64_t spine, std::uint32_t legs);

/// "Lollipop": clique of size k joined to a path of length tail. Mixes a
/// dense core with a long sparse tail; crossover stress test.
EdgeList make_lollipop(std::uint64_t k, std::uint64_t tail);

/// Disjoint union: relabels each part into its own id range. The result has
/// one component per connected input part; component diameters are
/// inherited. Used to build multi-component workloads with known structure.
EdgeList disjoint_union(const std::vector<EdgeList>& parts);

/// Union of `count` disjoint paths each of length `len` — many components,
/// all with the same known diameter.
EdgeList make_path_forest(std::uint64_t count, std::uint64_t len);

/// Named registry used by benches/examples: family in {path, cycle, grid,
/// tree, hypercube, gnm2 (m=2n), gnm8 (m=8n), rmat, pref, caterpillar,
/// lollipop, star}. `n` is the approximate vertex count (the exact count is
/// family-dependent, e.g. grid rounds to side^2 — make_family_stream reports
/// it without generating). Deterministic in (family, n, seed); aborts via
/// LOGCC_CHECK on unknown names.
EdgeList make_family(const std::string& family, std::uint64_t n,
                     std::uint64_t seed);

/// All registry names (for sweeps).
std::vector<std::string> family_names();

/// Streaming access to the family registry, for workloads too large to
/// materialize: `enumerate(sink)` calls sink(u, v) once per undirected edge.
///
/// Contract: `enumerate` is RE-RUNNABLE — every invocation emits the
/// identical edge sequence (the two-pass binary CSR writer depends on this)
/// — and all endpoints are < num_vertices. The edge *multiset* equals
/// make_family(family, n, seed) for the same arguments (where the
/// materializer's 32-bit caps allow it to run at all).
///
/// The sink takes uint64 endpoints end-to-end: streamed families whose ids
/// exceed the 32-bit space (rmat past scale 32, >2^32-arc runs) enumerate
/// without wrapping, and the LOGCCSR2 writer consumes them directly. The
/// LOGCCSR1 writer range-checks against its 32-bit caps, so a too-wide
/// stream is a clean error there, never a silently wrapped id.
///
/// `streams` is true for the structured families and rmat, whose enumeration
/// uses O(1) extra memory (counter-based RNG replay for rmat). The families
/// that fundamentally need global state to generate (gnm2/gnm8's
/// rejection-sampling dedup set, pref's attachment array) materialize once
/// inside the returned closure and replay from memory; they work, but do
/// not reduce peak memory.
struct FamilyStream {
  std::uint64_t num_vertices = 0;
  bool streams = false;
  std::function<void(const std::function<void(std::uint64_t, std::uint64_t)>&)>
      enumerate;
};
FamilyStream make_family_stream(const std::string& family, std::uint64_t n,
                                std::uint64_t seed);

}  // namespace logcc::graph
