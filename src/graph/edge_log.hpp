// EdgeLog: the live graph of the serve layer — an append-only undirected
// edge store over a fixed vertex universe [0, n).
//
// The incremental engine grows it one batch at a time and, on rebuild
// epochs, hands the accumulated edges to the batch algorithms as an
// ArcsInput view. Storage is one contiguous vector so the view is a plain
// span; append() may reallocate, so any previously taken input() views are
// invalidated by growth (the engine only takes a view inside a rebuild,
// never across batches — the serving layer's ownership rule).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"
#include "util/check.hpp"

namespace logcc::graph {

class EdgeLog {
 public:
  explicit EdgeLog(std::uint64_t n) : n_(n) {}

  std::uint64_t num_vertices() const { return n_; }
  std::uint64_t num_edges() const { return edges_.size(); }
  std::uint64_t num_batches() const { return batches_; }

  /// Appends one batch. Endpoints must be < n (LOGCC_CHECK — the serve
  /// layer validates at the boundary so algorithms never see a bad id).
  void append(std::span<const Edge> batch) {
    for (const Edge& e : batch)
      LOGCC_CHECK_MSG(e.u < n_ && e.v < n_, "EdgeLog: endpoint out of range");
    edges_.insert(edges_.end(), batch.begin(), batch.end());
    ++batches_;
  }

  /// All accumulated edges, in arrival order.
  std::span<const Edge> edges() const { return edges_; }

  /// Non-owning algorithm input over the accumulated edges. Valid until the
  /// next append() (growth may reallocate the backing vector).
  ArcsInput input() const { return ArcsInput::from_edges(n_, edges_); }

 private:
  std::uint64_t n_ = 0;
  std::vector<Edge> edges_;
  std::uint64_t batches_ = 0;
};

}  // namespace logcc::graph
