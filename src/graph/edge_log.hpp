// EdgeLog: the live graph of the serve layer — an append-only undirected
// edge store over a fixed vertex universe [0, n).
//
// The incremental engine grows it one batch at a time and, on rebuild
// epochs, hands the accumulated edges to the batch algorithms as an
// ArcsInput view. Storage is one contiguous vector so the view is a plain
// span; append() may reallocate, so any previously taken input() views are
// invalidated by growth (the engine only takes a view inside a rebuild,
// never across batches — the serving layer's ownership rule).
//
// Degradation (EngineOptions::max_resident_bytes): the accumulated edge
// vector is the engine's only unbounded allocation, so the graceful-
// degradation ladder sheds exactly it. After shed() the log keeps counting
// batches and edges (the stream's logical position, which recovery and the
// WAL rely on) but stores nothing — input()/edges() are then forbidden
// (LOGCC_CHECK), which is what makes the rebuild/verify path unavailable
// in degraded mode.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"
#include "util/check.hpp"

namespace logcc::graph {

class EdgeLog {
 public:
  explicit EdgeLog(std::uint64_t n) : n_(n) {}

  std::uint64_t num_vertices() const { return n_; }
  std::uint64_t num_edges() const { return dropped_edges_ + edges_.size(); }
  std::uint64_t num_batches() const { return batches_; }

  /// Appends one batch. Endpoints must be < n (LOGCC_CHECK — the serve
  /// layer validates at the boundary so algorithms never see a bad id).
  /// After shed(), the batch is counted but not stored.
  void append(std::span<const Edge> batch) {
    for (const Edge& e : batch)
      LOGCC_CHECK_MSG(e.u < n_ && e.v < n_, "EdgeLog: endpoint out of range");
    if (shed_)
      dropped_edges_ += batch.size();
    else
      edges_.insert(edges_.end(), batch.begin(), batch.end());
    ++batches_;
  }

  /// Drops the stored edges (the O(m) allocation) while keeping the
  /// logical counters. Irreversible for this log; the WAL retains the full
  /// history, so a recovered engine is un-degraded.
  void shed() {
    dropped_edges_ += edges_.size();
    std::vector<Edge>().swap(edges_);
    shed_ = true;
  }
  bool is_shed() const { return shed_; }

  /// Bytes held by the edge storage (capacity, not size — what the
  /// degradation ladder actually frees).
  std::uint64_t memory_bytes() const {
    return edges_.capacity() * sizeof(Edge);
  }

  /// All accumulated edges, in arrival order. Forbidden after shed().
  std::span<const Edge> edges() const {
    LOGCC_CHECK_MSG(!shed_, "EdgeLog: edges() after shed()");
    return edges_;
  }

  /// Non-owning algorithm input over the accumulated edges. Valid until the
  /// next append() (growth may reallocate the backing vector). Forbidden
  /// after shed().
  ArcsInput input() const {
    LOGCC_CHECK_MSG(!shed_, "EdgeLog: input() after shed()");
    return ArcsInput::from_edges(n_, edges_);
  }

 private:
  std::uint64_t n_ = 0;
  std::vector<Edge> edges_;
  std::uint64_t batches_ = 0;
  std::uint64_t dropped_edges_ = 0;
  bool shed_ = false;
};

}  // namespace logcc::graph
