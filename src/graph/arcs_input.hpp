// ArcsInput: the one input type every CC/SF entry point consumes.
//
// Algorithms in src/core/ and src/baselines/ are arc-list machines: they
// need the undirected edges of the input, in a deterministic order, with a
// stable per-edge index (`orig`) for spanning-forest output. Historically
// that meant `EdgeList` — and mmap-loaded binary CSR datasets paid a full
// re-materialization (edge_list_from_csr) before the first round could run.
//
// ArcsInput is the non-owning fix: a `{n, span-of-edges | CsrView}` sum
// type. Edge-list-backed inputs view the caller's vector; CSR-backed inputs
// alias the mmap pages (or a Graph's arrays) directly, and the algorithms'
// ingestion path (core::arcs_from_input) scatters arcs straight from the
// CSR into their caller-owned scratch — no intermediate EdgeList ever
// exists.
//
// Canonical edge order — the determinism keystone: a CSR-backed input
// enumerates each undirected edge from its smaller endpoint, vertices
// ascending, neighbor suffixes in sorted order. This is *exactly* the order
// edge_list_from_csr materializes, so for the same dataset the CSR-native
// and EdgeList paths feed algorithms identical (u, v, orig) sequences and
// the results are bit-identical (tests/test_differential_cc.cpp pins this).
//
// Ownership rule: ArcsInput owns nothing. The backing storage — the
// EdgeList vector, the graph::BinaryGraph mmap handle, or the Graph — must
// outlive every use of the input (see docs/ARCHITECTURE.md, "Zero-copy
// ownership rule").
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace logcc::graph {

/// Non-owning CSR adjacency view (what the mmap loader hands out). Valid
/// exactly as long as its backing storage (BinaryGraph or Graph). Each
/// undirected edge appears as two arcs (a self-loop as one); neighbor lists
/// are sorted ascending — the conventions of the LOGCCSR1 on-disk format
/// (graph/binary_io.hpp) and of Graph::from_edges(el, /*dedup=*/false).
struct CsrView {
  std::uint64_t n = 0;
  std::uint64_t edges = 0;                 // undirected count
  const std::uint64_t* offsets = nullptr;  // n+1 entries, offsets[0] == 0
  const VertexId* adj = nullptr;           // offsets[n] entries

  std::uint64_t num_vertices() const { return n; }
  std::uint64_t num_edges() const { return edges; }
  std::uint64_t num_arcs() const { return offsets ? offsets[n] : 0; }
  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj + offsets[v], adj + offsets[v + 1]};
  }
};

/// Start of the w >= u suffix of u's sorted neighbor list — the arcs whose
/// undirected edge u is the smaller endpoint of (self-loops once, parallel
/// copies kept). THE definition of the canonical edge order: every
/// canonical enumerator (ArcsInput::for_each_edge, edge_list_from_csr,
/// core::arcs_from_input) walks these suffixes with vertices ascending, so
/// the order is specified in exactly one place.
inline const VertexId* csr_suffix_begin(const CsrView& v, VertexId u) {
  auto nb = v.neighbors(u);
  return std::lower_bound(nb.data(), nb.data() + nb.size(), u);
}

/// The suffix itself, as a span — use this (not a hand-rolled
/// begin/end pair) wherever the canonical order is enumerated or counted.
inline std::span<const VertexId> csr_suffix(const CsrView& v, VertexId u) {
  auto nb = v.neighbors(u);
  return {csr_suffix_begin(v, u), nb.data() + nb.size()};
}

/// CSR view of a Graph's adjacency arrays (zero-copy; valid while the Graph
/// is alive). The edge count follows the canonical convention: parallel
/// copies counted, self-loops once.
inline CsrView csr_view(const Graph& g) {
  CsrView v;
  v.n = g.num_vertices();
  v.edges = (g.num_arcs() + g.num_self_loops()) / 2;
  v.offsets = g.raw_offsets().data();
  v.adj = g.raw_adj().data();
  return v;
}

/// Non-owning algorithm input: n vertices plus undirected edges, backed by
/// either an edge span or a CSR view. See the file comment for the
/// canonical order and ownership rules. CSR-backed inputs must satisfy the
/// validate_csr invariants (sorted symmetric adjacency, consistent edge
/// count) — load_dataset-produced views always do.
class ArcsInput {
 public:
  ArcsInput() = default;

  static ArcsInput from_edges(const EdgeList& el) {
    return from_edges(el.n, el.edges);
  }
  static ArcsInput from_edges(std::uint64_t n, std::span<const Edge> edges) {
    ArcsInput in;
    in.n_ = n;
    in.edges_ = edges;
    return in;
  }
  static ArcsInput from_csr(const CsrView& v) {
    ArcsInput in;
    in.n_ = v.n;
    in.csr_ = v;  // copies the (pointer-sized) view, not the arrays
    return in;
  }

  std::uint64_t num_vertices() const { return n_; }
  std::uint64_t num_edges() const {
    return csr_backed() ? csr_.edges : edges_.size();
  }
  bool csr_backed() const { return csr_.offsets != nullptr; }

  /// Edge-backed storage (empty span when CSR-backed).
  std::span<const Edge> edge_span() const { return edges_; }
  /// CSR-backed storage (null view when edge-backed).
  const CsrView& csr() const { return csr_; }

  /// Enumerates every undirected edge once, as fn(u, v, orig), in the
  /// canonical order (see file comment); `orig` is the dense edge index the
  /// spanning-forest results refer to. Serial — the round-loop baselines
  /// (SV, AS, label-prop) sweep edges through this every round instead of
  /// materializing them.
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    // Same bound core::arcs_from_input enforces: `orig` indices are dense
    // uint32 (id 2^32-1 would alias nothing, but a wrapped counter would
    // silently duplicate indices — or never terminate the edge loop).
    LOGCC_CHECK_MSG(
        num_edges() <= std::numeric_limits<std::uint32_t>::max(),
        "edge count exceeds the 32-bit orig-index space");
    if (!csr_backed()) {
      for (std::uint32_t i = 0; i < edges_.size(); ++i)
        fn(edges_[i].u, edges_[i].v, i);
      return;
    }
    std::uint32_t orig = 0;
    for (std::uint64_t u = 0; u < n_; ++u) {
      for (VertexId w : csr_suffix(csr_, static_cast<VertexId>(u)))
        fn(static_cast<VertexId>(u), w, orig++);
    }
  }

 private:
  std::uint64_t n_ = 0;
  std::span<const Edge> edges_{};
  CsrView csr_{};
};

}  // namespace logcc::graph
