// ArcsInput: the one input type every CC/SF entry point consumes.
//
// Algorithms in src/core/ and src/baselines/ are arc-list machines: they
// need the undirected edges of the input, in a deterministic order, with a
// stable per-edge index (`orig`) for spanning-forest output. Historically
// that meant `EdgeList` — and mmap-loaded binary CSR datasets paid a full
// re-materialization (edge_list_from_csr) before the first round could run.
//
// ArcsInput is the non-owning fix: a `{n, span-of-edges | CsrView}` sum
// type. Edge-list-backed inputs view the caller's vector; CSR-backed inputs
// alias the mmap pages (or a Graph's arrays) directly, and the algorithms'
// ingestion path (core::arcs_from_input) scatters arcs straight from the
// CSR into their caller-owned scratch — no intermediate EdgeList ever
// exists.
//
// Canonical edge order — the determinism keystone: a CSR-backed input
// enumerates each undirected edge from its smaller endpoint, vertices
// ascending, neighbor suffixes in sorted order. This is *exactly* the order
// edge_list_from_csr materializes, so for the same dataset the CSR-native
// and EdgeList paths feed algorithms identical (u, v, orig) sequences and
// the results are bit-identical (tests/test_differential_cc.cpp pins this).
//
// Index-type contract: CsrView and ArcsInput are templates over the vertex
// width V, like the graph.hpp types. The narrow aliases (CsrView, ArcsInput)
// keep dense uint32 `orig` indices; the wide aliases (CsrView64, ArcsInput64)
// use uint64 for both ids and orig, so >2^32-edge LOGCCSR2 datasets
// enumerate without the narrow cap. The canonical edge order is defined once,
// width-generically, by csr_suffix below.
//
// Ownership rule: ArcsInput owns nothing. The backing storage — the
// EdgeList vector, the graph::BinaryGraph mmap handle, or the Graph — must
// outlive every use of the input (see docs/ARCHITECTURE.md, "Zero-copy
// ownership rule").
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <type_traits>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace logcc::graph {

/// Non-owning CSR adjacency view (what the mmap loader hands out). Valid
/// exactly as long as its backing storage (BinaryGraph or Graph). Each
/// undirected edge appears as two arcs (a self-loop as one); neighbor lists
/// are sorted ascending — the conventions of the LOGCCSR1/LOGCCSR2 on-disk
/// formats (graph/binary_io.hpp) and of Graph::from_edges(el,
/// /*dedup=*/false).
template <typename V>
struct BasicCsrView {
  std::uint64_t n = 0;
  std::uint64_t edges = 0;                 // undirected count
  const std::uint64_t* offsets = nullptr;  // n+1 entries, offsets[0] == 0
  const V* adj = nullptr;                  // offsets[n] entries

  std::uint64_t num_vertices() const { return n; }
  std::uint64_t num_edges() const { return edges; }
  std::uint64_t num_arcs() const { return offsets ? offsets[n] : 0; }
  /// uint64 even on the narrow view: v1 files legally hold up to ~2^33
  /// arcs, so one vertex's arc range can exceed uint32.
  std::uint64_t degree(V v) const { return offsets[v + 1] - offsets[v]; }
  std::span<const V> neighbors(V v) const {
    return {adj + offsets[v], adj + offsets[v + 1]};
  }
};

using CsrView = BasicCsrView<VertexId>;
using CsrView64 = BasicCsrView<VertexId64>;

/// Start of the w >= u suffix of u's sorted neighbor list — the arcs whose
/// undirected edge u is the smaller endpoint of (self-loops once, parallel
/// copies kept). THE definition of the canonical edge order: every
/// canonical enumerator (ArcsInput::for_each_edge, edge_list_from_csr,
/// core::arcs_from_input) walks these suffixes with vertices ascending, so
/// the order is specified in exactly one place.
template <typename V>
inline const V* csr_suffix_begin(const BasicCsrView<V>& v, V u) {
  auto nb = v.neighbors(u);
  return std::lower_bound(nb.data(), nb.data() + nb.size(), u);
}

/// The suffix itself, as a span — use this (not a hand-rolled
/// begin/end pair) wherever the canonical order is enumerated or counted.
template <typename V>
inline std::span<const V> csr_suffix(const BasicCsrView<V>& v, V u) {
  auto nb = v.neighbors(u);
  return {csr_suffix_begin(v, u), nb.data() + nb.size()};
}

/// CSR view of a Graph's adjacency arrays (zero-copy; valid while the Graph
/// is alive). The edge count follows the canonical convention: parallel
/// copies counted, self-loops once.
template <typename V>
inline BasicCsrView<V> csr_view(const BasicGraph<V>& g) {
  BasicCsrView<V> v;
  v.n = g.num_vertices();
  v.edges = (g.num_arcs() + g.num_self_loops()) / 2;
  v.offsets = g.raw_offsets().data();
  v.adj = g.raw_adj().data();
  return v;
}

/// Non-owning algorithm input: n vertices plus undirected edges, backed by
/// either an edge span or a CSR view. See the file comment for the
/// canonical order and ownership rules. CSR-backed inputs must satisfy the
/// validate_csr invariants (sorted symmetric adjacency, consistent edge
/// count) — load_dataset-produced views always do.
template <typename V>
class BasicArcsInput {
 public:
  /// Dense per-edge index type: uint32 on the narrow path (what the core
  /// algorithms' scratch assumes), uint64 on the wide path.
  using OrigId =
      std::conditional_t<sizeof(V) == 4, std::uint32_t, std::uint64_t>;

  BasicArcsInput() = default;

  static BasicArcsInput from_edges(const BasicEdgeList<V>& el) {
    return from_edges(el.n, el.edges);
  }
  static BasicArcsInput from_edges(std::uint64_t n,
                                   std::span<const BasicEdge<V>> edges) {
    BasicArcsInput in;
    in.n_ = n;
    in.edges_ = edges;
    return in;
  }
  static BasicArcsInput from_csr(const BasicCsrView<V>& v) {
    BasicArcsInput in;
    in.n_ = v.n;
    in.csr_ = v;  // copies the (pointer-sized) view, not the arrays
    return in;
  }

  std::uint64_t num_vertices() const { return n_; }
  std::uint64_t num_edges() const {
    return csr_backed() ? csr_.edges : edges_.size();
  }
  bool csr_backed() const { return csr_.offsets != nullptr; }

  /// Edge-backed storage (empty span when CSR-backed).
  std::span<const BasicEdge<V>> edge_span() const { return edges_; }
  /// CSR-backed storage (null view when edge-backed).
  const BasicCsrView<V>& csr() const { return csr_; }

  /// Enumerates every undirected edge once, as fn(u, v, orig), in the
  /// canonical order (see file comment); `orig` is the dense edge index the
  /// spanning-forest results refer to. Serial — the round-loop baselines
  /// (SV, AS, label-prop) sweep edges through this every round instead of
  /// materializing them.
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    // Same bound core::arcs_from_input enforces: `orig` indices are dense
    // in OrigId (id OrigId(-1) would alias nothing, but a wrapped counter
    // would silently duplicate indices — or never terminate the edge loop).
    LOGCC_CHECK_MSG(num_edges() <= std::numeric_limits<OrigId>::max(),
                    "edge count exceeds the orig-index space");
    if (!csr_backed()) {
      for (OrigId i = 0; i < edges_.size(); ++i)
        fn(edges_[i].u, edges_[i].v, i);
      return;
    }
    OrigId orig = 0;
    for (std::uint64_t u = 0; u < n_; ++u) {
      for (V w : csr_suffix(csr_, static_cast<V>(u)))
        fn(static_cast<V>(u), w, orig++);
    }
  }

 private:
  std::uint64_t n_ = 0;
  std::span<const BasicEdge<V>> edges_{};
  BasicCsrView<V> csr_{};
};

using ArcsInput = BasicArcsInput<VertexId>;
using ArcsInput64 = BasicArcsInput<VertexId64>;

}  // namespace logcc::graph
