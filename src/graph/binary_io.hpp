// Binary CSR graph formats ("LOGCCSR1"/"LOGCCSR2") + mmap-backed zero-copy
// loading.
//
// This is the large-graph workload layer: text edge lists and generator
// output are converted once into a compact binary CSR file, and every later
// run maps it read-only in O(1) — no parsing, no CSR rebuild, no copy. The
// formats are documented in docs/FILE_FORMATS.md; the layout is
//
//   [ 64-byte BinaryCsrHeader ][ offsets: (n+1) x u64 ][ adj: num_arcs x uW ]
//
// where the arc width W is 32 bits for LOGCCSR1 and 64 bits for LOGCCSR2 —
// the two formats share the header struct byte-for-byte (only the magic and
// version differ), so one sniff reads either. Files are written in the
// *native* byte order with an endianness tag in the header so a
// foreign-endian file is rejected instead of misread. Neighbor lists are
// sorted ascending; parallel edges are preserved (each undirected copy
// contributes an arc in both endpoint lists) and a self-loop contributes a
// single arc — the same conventions as `Graph::from_edges(el, /*dedup=*/false)`.
//
// Version rule: LOGCCSR1 iff n and num_edges both fit uint32 (dense 32-bit
// ids and `orig` indices); anything larger must be LOGCCSR2. The writers
// enforce it with an actionable error, the loaders re-check it from the
// 64-bit header fields *before* any narrowing arithmetic.
//
// Writers come in two shapes:
//   - write_binary_csr_streaming: two-pass, O(n)-memory. The caller provides
//     a *re-runnable* edge enumerator; pass 1 counts degrees, pass 2
//     scatters arcs directly into the writeable mapping. This is how the
//     generator families scale to 10^7–10^8 edges without ever holding an
//     edge list in memory.
//   - convert_text_to_binary / write_binary_csr: materialized convenience
//     wrappers for files and in-memory graphs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"
#include "util/mmap_file.hpp"

namespace logcc::graph {

inline constexpr char kBinaryCsrMagic[8] = {'L', 'O', 'G', 'C',
                                            'C', 'S', 'R', '1'};
inline constexpr char kBinaryCsrMagicV2[8] = {'L', 'O', 'G', 'C',
                                              'C', 'S', 'R', '2'};
inline constexpr std::uint32_t kBinaryCsrVersion = 1;
inline constexpr std::uint32_t kBinaryCsrVersionV2 = 2;
/// Written natively; reads back as 0x04030201 on a foreign-endian host.
inline constexpr std::uint32_t kEndianTag = 0x01020304;

/// On-disk format selector for the writers. kNarrow is LOGCCSR1 (uint32
/// arcs); kWide is LOGCCSR2 (uint64 arcs). The loaders sniff the magic, so
/// readers never pass this.
enum class BinaryCsrFormat { kNarrow, kWide };

/// Fixed 64-byte file header, shared by both format versions. All
/// multi-byte fields are native-endian; the `endian` tag proves it on load.
struct BinaryCsrHeader {
  char magic[8];            // kBinaryCsrMagic / kBinaryCsrMagicV2
  std::uint32_t version;    // kBinaryCsrVersion / kBinaryCsrVersionV2
  std::uint32_t endian;     // kEndianTag
  std::uint64_t n;          // vertices; offsets array has n+1 entries
  std::uint64_t num_arcs;   // length of adj (2*edges - self_loops)
  std::uint64_t num_edges;  // undirected edges incl. parallel copies
  std::uint64_t reserved[3];
};
static_assert(sizeof(BinaryCsrHeader) == 64, "header must stay 64 bytes");

// CsrView itself lives in graph/arcs_input.hpp (it is a graph type, not an
// I/O type); this header provides its on-disk incarnation.

/// A binary CSR file opened for reading — either format. On POSIX the view
/// aliases the mmap pages (zero-copy); elsewhere a heap fallback buffer
/// backs it. Exactly one of view()/view64() is populated, per wide().
class BinaryGraph {
 public:
  /// Validates the header (magic, version, endianness, the 64-bit count
  /// caps for the format version, exact file size) and the offsets envelope
  /// (offsets[0] == 0, offsets[n] == num_arcs). Count caps are checked on
  /// the raw uint64 header fields before any size arithmetic or narrowing,
  /// so an oversized v1 file is a clean "use LOGCCSR2" error — never a
  /// wrapped computation. Returns false with a reason in `error` on any
  /// mismatch — truncated or foreign files never yield a view. `populate`
  /// selects eager page population of the mapping (util/mmap_file.hpp).
  bool open(const std::string& path, std::string* error = nullptr,
            util::MmapPopulate populate = util::MmapPopulate::kNone);

  /// True when the file was LOGCCSR2 (64-bit arcs -> use view64()).
  bool wide() const { return wide_; }
  const CsrView& view() const { return view_; }
  const CsrView64& view64() const { return view64_; }
  bool zero_copy() const { return map_.is_mapped(); }
  std::size_t file_bytes() const { return map_.size(); }

 private:
  util::MmapFile map_;
  CsrView view_;
  CsrView64 view64_;
  bool wide_ = false;
};

/// Structural O(n + m) validation (parallel): monotone offsets, in-range
/// neighbor ids, sorted adjacency lists. This is exactly what makes every
/// CsrView accessor and edge_list_from_csr memory-safe and well-defined on
/// the view. BinaryGraph::open intentionally checks only the O(1) envelope
/// — callers consuming untrusted files through the raw view must validate
/// themselves.
bool validate_csr_structure(const CsrView& v, std::string* error = nullptr);
bool validate_csr_structure(const CsrView64& v, std::string* error = nullptr);

/// Deep validation: validate_csr_structure plus arc symmetry (every arc has
/// its reverse) and header edge-count consistency. O(n + m log deg).
/// load_dataset runs this on every binary file before handing the graph to
/// an algorithm (structure alone would let an asymmetric file silently
/// drop edges); tests and `cc_tool --convert` run it after writing. The
/// narrow overload additionally enforces the 32-bit orig-index cap.
bool validate_csr(const CsrView& v, std::string* error = nullptr);
bool validate_csr(const CsrView64& v, std::string* error = nullptr);

/// Edge callback: receives each undirected edge once. Endpoints are uint64
/// at the interface regardless of output format — the narrow writer range-
/// checks against its n (< 2^32) before narrowing to the on-disk width, so
/// generator streams can enumerate wide ids through one sink type.
using EdgeSink = std::function<void(std::uint64_t, std::uint64_t)>;
/// Re-runnable edge enumeration. MUST emit the identical (u, v) sequence on
/// every invocation (it is run twice: degree count, then scatter) and only
/// endpoints < n. Enumeration order does not affect the output file —
/// neighbor lists are sorted after the scatter — so any deterministic order
/// works.
using EdgeEnumerator = std::function<void(const EdgeSink&)>;

/// Two-pass streaming writer: O(n) memory regardless of edge count. Arcs are
/// scattered straight into the writeable mapping of the destination file.
/// With kNarrow, n and the enumerated edge count must both fit uint32 (the
/// LOGCCSR1 caps) — violations fail with an actionable "use LOGCCSR2"
/// error before the output file is created.
bool write_binary_csr_streaming(const std::string& path, std::uint64_t n,
                                const EdgeEnumerator& enumerate,
                                std::string* error = nullptr,
                                BinaryCsrFormat format =
                                    BinaryCsrFormat::kNarrow);

/// Writes an in-memory edge list (parallel edges and self-loops preserved).
/// The narrow overload emits LOGCCSR1; the wide overload emits LOGCCSR2.
bool write_binary_csr(const std::string& path, const EdgeList& el,
                      std::string* error = nullptr);
bool write_binary_csr(const std::string& path, const EdgeList64& el,
                      std::string* error = nullptr);

/// Streams a named generator family (see make_family_stream) to disk.
bool stream_family_to_binary(const std::string& family, std::uint64_t n,
                             std::uint64_t seed, const std::string& path,
                             std::string* error = nullptr,
                             BinaryCsrFormat format =
                                 BinaryCsrFormat::kNarrow);

/// Text edge list file -> binary CSR file (LOGCCSR1).
bool convert_text_to_binary(const std::string& text_path,
                            const std::string& bin_path,
                            std::string* error = nullptr);

/// True iff the file starts with either binary CSR magic (cheap sniff used
/// to auto-detect binary vs text inputs).
bool sniff_binary_csr(const std::string& path);

/// Re-materializes the undirected edge list of a CSR view, in (u, v)-sorted
/// order with u <= v, one entry per undirected edge (parallel copies kept,
/// self-loops once). Parallel over vertices; deterministic for every thread
/// count. This is what hands an mmap-loaded dataset to the PRAM algorithms,
/// which need a mutable arc array of their own anyway.
EdgeList edge_list_from_csr(const CsrView& v);
EdgeList64 edge_list_from_csr(const CsrView64& v);

/// How load_dataset obtained the graph, for bench provenance records.
struct DatasetInfo {
  std::string name;       // basename or generator spec
  std::string source;     // "binary-mmap" | "binary-copy" | "text" | "generator"
  /// Open + validate (and, for text/generator sources, parse/build) time.
  double load_seconds = 0.0;
  /// CSR -> EdgeList re-materialization time (edge_list_from_csr), reported
  /// separately from load so bench.json never folds a format conversion
  /// into either the load or the algorithm column. Exactly 0 on the
  /// zero-copy path — the CI bench smoke asserts this for binary inputs.
  double materialize_seconds = 0.0;
  std::uint64_t file_bytes = 0;  // 0 for generators
  /// Page-population mode the mapping was opened with (binary sources).
  util::MmapPopulate populate = util::MmapPopulate::kNone;
};

/// Parses a "family:n[:seed]" generator spec (what load_dataset accepts
/// after "gen:" and what cc_tool/cc_bench take via --generate). Returns
/// false on a missing ':' or when n parses to 0, so a typo'd number can
/// never silently become a tiny dataset. `seed` keeps its incoming value
/// (the caller's default) when the spec has no seed field.
bool parse_generator_spec(const std::string& spec, std::string& family,
                          std::uint64_t& n, std::uint64_t& seed);

/// Unified dataset resolution shared by cc_tool and cc_bench:
///   "gen:family:n[:seed]"   -> in-memory generator output
///   path to LOGCCSR1/2 file -> mmap load + edge list re-materialization
///   any other path          -> text edge-list parse
/// Returns false with a reason on unreadable/invalid input. A LOGCCSR2
/// file whose counts fit the 32-bit caps materializes into the narrow
/// EdgeList; a genuinely wide one is a clean error naming the wide path.
bool load_dataset(const std::string& spec, EdgeList& out,
                  DatasetInfo* info = nullptr, std::string* error = nullptr);

/// A resolved dataset that OWNS its backing storage and hands out a
/// non-owning ArcsInput over it. This is the zero-copy counterpart of
/// load_dataset: for binary files the input aliases the mmap pages and no
/// EdgeList is ever materialized; for text/generator sources the handle
/// owns the edge vector the input views. Move-only (it may hold an mmap).
/// LOGCCSR2 files resolve to the wide input (wide() == true, use
/// input64()); every other source resolves narrow.
///
/// Ownership rule (docs/ARCHITECTURE.md): the handle must outlive every
/// use of input()/input64() — the ArcsInput dangles the moment the handle
/// dies.
class DatasetHandle {
 public:
  DatasetHandle() = default;
  DatasetHandle(DatasetHandle&&) = default;
  DatasetHandle& operator=(DatasetHandle&&) = default;

  /// True when the dataset resolved onto the wide (64-bit) path.
  bool wide() const { return wide_; }
  const ArcsInput& input() const { return input_; }
  const ArcsInput64& input64() const { return input64_; }
  const DatasetInfo& info() const { return info_; }

  /// Materializes (and caches) the canonical EdgeList — only for consumers
  /// that genuinely need indexed edge storage (e.g. spanning-forest edge
  /// output). Records the conversion cost in info().materialize_seconds.
  /// The returned reference lives as long as the handle. For edge-backed
  /// sources this is the already-owned list (no cost recorded). Narrow
  /// path only (LOGCC_CHECK).
  const EdgeList& edges();

 private:
  friend bool load_dataset_zero_copy(const std::string&, DatasetHandle&,
                                     std::string*, util::MmapPopulate);
  friend bool load_dataset(const std::string&, EdgeList&, DatasetInfo*,
                           std::string*);
  BinaryGraph bg_;   // keeps the mmap alive for CSR-backed inputs
  EdgeList el_;      // backing for text/generator (or materialized) edges
  bool materialized_ = false;
  bool wide_ = false;
  ArcsInput input_;
  ArcsInput64 input64_;
  DatasetInfo info_;
};

/// Zero-copy variant of load_dataset — same spec grammar, same validation,
/// but binary files stay in their mmap'd CSR form: info().load_seconds
/// covers open + deep validate only and materialize_seconds stays 0 unless
/// the caller asks for edges(). cc_bench/cc_tool run algorithms straight
/// off handle.input(). `populate` selects eager page population for binary
/// (mmap) sources and is recorded in info().populate (cc_bench
/// --populate).
bool load_dataset_zero_copy(const std::string& spec, DatasetHandle& out,
                            std::string* error = nullptr,
                            util::MmapPopulate populate =
                                util::MmapPopulate::kNone);

}  // namespace logcc::graph
