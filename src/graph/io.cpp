#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

namespace logcc::graph {

void write_edge_list(std::ostream& os, const EdgeList& el) {
  os << el.n << ' ' << el.edges.size() << '\n';
  for (const Edge& e : el.edges) os << e.u << ' ' << e.v << '\n';
}

bool write_edge_list_file(const std::string& path, const EdgeList& el) {
  std::ofstream os(path);
  if (!os) return false;
  write_edge_list(os, el);
  return static_cast<bool>(os);
}

bool read_edge_list(std::istream& is, EdgeList& out) {
  out = EdgeList{};
  std::string line;
  bool saw_first = false;
  std::uint64_t first_a = 0, first_b = 0;
  std::uint64_t max_vertex = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) return false;
    if (!saw_first) {
      // Tentatively treat the first data line as the `n m` header; if a
      // later endpoint is >= n the file had no header and this line was an
      // edge — resolved after the loop.
      first_a = a;
      first_b = b;
      saw_first = true;
      continue;
    }
    out.add(static_cast<VertexId>(a), static_cast<VertexId>(b));
    max_vertex = std::max({max_vertex, a, b});
  }
  if (!saw_first) return false;  // no data at all
  const bool header_plausible =
      first_a > max_vertex && first_b == out.edges.size();
  if (header_plausible) {
    out.n = first_a;
  } else {
    out.edges.insert(out.edges.begin(),
                     Edge{static_cast<VertexId>(first_a),
                          static_cast<VertexId>(first_b)});
    max_vertex = std::max({max_vertex, first_a, first_b});
    out.n = max_vertex + 1;
  }
  return true;
}

bool read_edge_list_file(const std::string& path, EdgeList& out) {
  std::ifstream is(path);
  if (!is) return false;
  return read_edge_list(is, out);
}

}  // namespace logcc::graph
