#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

namespace logcc::graph {

void write_edge_list(std::ostream& os, const EdgeList& el) {
  os << el.n << ' ' << el.edges.size() << '\n';
  for (const Edge& e : el.edges) os << e.u << ' ' << e.v << '\n';
}

bool write_edge_list_file(const std::string& path, const EdgeList& el) {
  std::ofstream os(path);
  if (!os) return false;
  write_edge_list(os, el);
  return static_cast<bool>(os);
}

bool read_edge_list(std::istream& is, EdgeList& out) {
  out = EdgeList{};
  std::string line;
  bool saw_first = false;
  std::uint64_t first_a = 0, first_b = 0;
  std::uint64_t max_vertex = 0;
  // Ids are parsed as uint64 and must fit the narrow EdgeList: anything at
  // or above the kInvalidVertex sentinel is a parse failure, not a silent
  // wrap onto a small id (wide datasets go through LOGCCSR2, not text).
  constexpr std::uint64_t kMaxId =
      static_cast<std::uint64_t>(kInvalidVertex) - 1;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) return false;
    if (saw_first && (a > kMaxId || b > kMaxId)) return false;
    if (!saw_first) {
      // Tentatively treat the first data line as the `n m` header; if a
      // later endpoint is >= n the file had no header and this line was an
      // edge — resolved after the loop.
      first_a = a;
      first_b = b;
      saw_first = true;
      continue;
    }
    out.add(static_cast<VertexId>(a), static_cast<VertexId>(b));
    max_vertex = std::max({max_vertex, a, b});
  }
  if (!saw_first) return false;  // no data at all
  const bool header_plausible =
      first_a > max_vertex && first_b == out.edges.size();
  if (header_plausible) {
    // The declared n is a count, so it may reach one past the max id — but
    // no further, or VertexId loops over [0, n) would wrap.
    if (first_a > static_cast<std::uint64_t>(kInvalidVertex)) return false;
    out.n = first_a;
  } else {
    if (first_a > kMaxId || first_b > kMaxId) return false;
    out.edges.insert(out.edges.begin(),
                     Edge{static_cast<VertexId>(first_a),
                          static_cast<VertexId>(first_b)});
    max_vertex = std::max({max_vertex, first_a, first_b});
    out.n = max_vertex + 1;
  }
  return true;
}

bool read_edge_list_file(const std::string& path, EdgeList& out) {
  std::ifstream is(path);
  if (!is) return false;
  return read_edge_list(is, out);
}

}  // namespace logcc::graph
