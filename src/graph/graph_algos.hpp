// Sequential graph oracles: the ground truth every parallel algorithm is
// validated against, plus diameter measurement used to parameterise the
// log-diameter experiments.
//
// Everything here is single-threaded and deterministic — these functions
// sit *outside* the determinism contract's parallel machinery on purpose,
// so a contract violation in the parallel kernels cannot mask itself by
// corrupting its own oracle. Label-vector arguments must have exactly n
// entries (one per vertex of the graph they describe).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/arcs_input.hpp"
#include "graph/graph.hpp"

namespace logcc::graph {

/// Connected components by BFS. Returns, for each vertex, the *minimum vertex
/// id* in its component — the canonical labeling all algorithms are compared
/// through. The CsrView overload is the implementation (it runs zero-copy
/// over mmap'd datasets); the Graph overload forwards through csr_view.
std::vector<VertexId> bfs_components(const CsrView& v);
std::vector<VertexId> bfs_components(const Graph& g);

/// Number of distinct components given any labeling.
std::uint64_t count_components(const std::vector<VertexId>& labels);

/// True iff the two labelings induce the same partition of [0, n).
bool same_partition(const std::vector<VertexId>& a,
                    const std::vector<VertexId>& b);

/// Canonicalises a labeling to min-id-per-component form (for direct
/// comparison against bfs_components).
std::vector<VertexId> canonical_labels(const std::vector<VertexId>& labels);

/// Eccentricity of `source` within its component (longest BFS distance).
std::uint64_t eccentricity(const Graph& g, VertexId source);

/// Maximum component diameter, exact (one BFS per vertex — small graphs only).
std::uint64_t exact_max_diameter(const Graph& g);

/// Double-sweep lower bound on the max component diameter: BFS from an
/// arbitrary vertex per component, then BFS from the farthest vertex found.
/// Exact on trees; a good estimate elsewhere. O(n + m).
std::uint64_t pseudo_diameter(const Graph& g);

struct ForestCheck {
  bool ok = false;
  std::string error;  // empty when ok
};

/// Validates that `forest_edges` (indices into `el.edges`) forms a spanning
/// forest of `el`: acyclic, spans every component (|F| = n - #components),
/// and connects only vertices of the same component. Precondition: every
/// index < el.edges.size(). On failure `error` names the first violated
/// property.
ForestCheck validate_spanning_forest(const EdgeList& el,
                                     const std::vector<std::uint64_t>& forest_edges);

/// Component size histogram (sorted descending).
std::vector<std::uint64_t> component_sizes(const std::vector<VertexId>& labels);

}  // namespace logcc::graph
