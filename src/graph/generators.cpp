#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/bitutil.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace logcc::graph {

using util::Xoshiro256;

EdgeList make_path(std::uint64_t n) {
  EdgeList el;
  el.n = n;
  for (std::uint64_t i = 0; i + 1 < n; ++i)
    el.add(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  return el;
}

EdgeList make_cycle(std::uint64_t n) {
  EdgeList el = make_path(n);
  if (n >= 3) el.add(static_cast<VertexId>(n - 1), 0);
  return el;
}

EdgeList make_star(std::uint64_t n) {
  EdgeList el;
  el.n = n;
  for (std::uint64_t i = 1; i < n; ++i) el.add(0, static_cast<VertexId>(i));
  return el;
}

EdgeList make_complete(std::uint64_t n) {
  LOGCC_CHECK_MSG(n <= 4096, "complete graph too large");
  EdgeList el;
  el.n = n;
  for (std::uint64_t i = 0; i < n; ++i)
    for (std::uint64_t j = i + 1; j < n; ++j)
      el.add(static_cast<VertexId>(i), static_cast<VertexId>(j));
  return el;
}

EdgeList make_grid(std::uint64_t rows, std::uint64_t cols) {
  EdgeList el;
  el.n = rows * cols;
  auto id = [cols](std::uint64_t r, std::uint64_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) el.add(id(r, c), id(r, c + 1));
      if (r + 1 < rows) el.add(id(r, c), id(r + 1, c));
    }
  }
  return el;
}

EdgeList make_binary_tree(std::uint64_t n) {
  EdgeList el;
  el.n = n;
  for (std::uint64_t i = 1; i < n; ++i)
    el.add(static_cast<VertexId>((i - 1) / 2), static_cast<VertexId>(i));
  return el;
}

EdgeList make_hypercube(std::uint32_t dim) {
  LOGCC_CHECK(dim <= 24);
  EdgeList el;
  el.n = 1ULL << dim;
  for (std::uint64_t v = 0; v < el.n; ++v)
    for (std::uint32_t b = 0; b < dim; ++b)
      if ((v & (1ULL << b)) == 0)
        el.add(static_cast<VertexId>(v), static_cast<VertexId>(v | (1ULL << b)));
  return el;
}

namespace {
std::uint64_t edge_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}
}  // namespace

EdgeList make_gnm(std::uint64_t n, std::uint64_t m, std::uint64_t seed) {
  LOGCC_CHECK(n >= 2);
  const std::uint64_t max_edges = n * (n - 1) / 2;
  LOGCC_CHECK_MSG(m <= max_edges / 2 || n <= 4096,
                  "G(n,m) rejection sampling needs m well below n^2/2");
  EdgeList el;
  el.n = n;
  el.edges.reserve(m);
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (el.edges.size() < std::min(m, max_edges)) {
    VertexId u = static_cast<VertexId>(rng.below(n));
    VertexId v = static_cast<VertexId>(rng.below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) el.add(u, v);
  }
  return el;
}

EdgeList make_random_regular(std::uint64_t n, std::uint32_t k,
                             std::uint64_t seed, bool connected) {
  EdgeList el;
  el.n = n;
  Xoshiro256 rng(seed);
  std::vector<VertexId> perm(n);
  for (std::uint64_t i = 0; i < n; ++i) perm[i] = static_cast<VertexId>(i);
  std::uint32_t matchings = std::max<std::uint32_t>(1, k / 2);
  for (std::uint32_t t = 0; t < matchings; ++t) {
    // Fisher–Yates shuffle, then pair up consecutive entries.
    for (std::uint64_t i = n - 1; i > 0; --i)
      std::swap(perm[i], perm[rng.below(i + 1)]);
    for (std::uint64_t i = 0; i + 1 < n; i += 2) el.add(perm[i], perm[i + 1]);
  }
  if (connected && n >= 3) {
    for (std::uint64_t i = 0; i + 1 < n; ++i)
      el.add(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
    el.add(static_cast<VertexId>(n - 1), 0);
  }
  el.canonicalize();
  return el;
}

EdgeList make_rmat(std::uint32_t scale, std::uint64_t m, std::uint64_t seed,
                   double a, double b, double c) {
  LOGCC_CHECK(scale <= 28);
  LOGCC_CHECK(a + b + c < 1.0);
  const std::uint64_t n = 1ULL << scale;
  EdgeList el;
  el.n = n;
  el.edges.reserve(m);
  Xoshiro256 rng(seed);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t u = 0, v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.uniform();
      std::uint64_t du = 0, dv = 0;
      if (r < a) {
      } else if (r < a + b) {
        dv = 1;
      } else if (r < a + b + c) {
        du = 1;
      } else {
        du = 1;
        dv = 1;
      }
      u = (u << 1) | du;
      v = (v << 1) | dv;
    }
    if (u != v) el.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return el;
}

EdgeList make_preferential(std::uint64_t n, std::uint32_t k,
                           std::uint64_t seed) {
  LOGCC_CHECK(n >= 2 && k >= 1);
  EdgeList el;
  el.n = n;
  Xoshiro256 rng(seed);
  // `targets` holds one entry per arc endpoint; sampling uniformly from it
  // realises degree-proportional attachment.
  std::vector<VertexId> targets;
  targets.reserve(2 * n * k);
  el.add(0, 1);
  targets.push_back(0);
  targets.push_back(1);
  for (std::uint64_t v = 2; v < n; ++v) {
    std::uint32_t added = 0;
    std::unordered_set<VertexId> picked;
    while (added < k && picked.size() < v) {
      VertexId t = targets[rng.below(targets.size())];
      if (t == v || !picked.insert(t).second) continue;
      el.add(static_cast<VertexId>(v), t);
      ++added;
    }
    for (VertexId t : picked) {
      targets.push_back(t);
      targets.push_back(static_cast<VertexId>(v));
    }
  }
  return el;
}

EdgeList make_caterpillar(std::uint64_t spine, std::uint32_t legs) {
  EdgeList el;
  el.n = spine * (1 + legs);
  for (std::uint64_t i = 0; i + 1 < spine; ++i)
    el.add(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  std::uint64_t next = spine;
  for (std::uint64_t i = 0; i < spine; ++i)
    for (std::uint32_t l = 0; l < legs; ++l)
      el.add(static_cast<VertexId>(i), static_cast<VertexId>(next++));
  return el;
}

EdgeList make_lollipop(std::uint64_t k, std::uint64_t tail) {
  EdgeList el = make_complete(k);
  el.n = k + tail;
  VertexId prev = static_cast<VertexId>(k - 1);
  for (std::uint64_t i = 0; i < tail; ++i) {
    VertexId next = static_cast<VertexId>(k + i);
    el.add(prev, next);
    prev = next;
  }
  return el;
}

EdgeList disjoint_union(const std::vector<EdgeList>& parts) {
  EdgeList out;
  std::uint64_t base = 0;
  for (const EdgeList& p : parts) {
    for (const Edge& e : p.edges)
      out.add(static_cast<VertexId>(base + e.u),
              static_cast<VertexId>(base + e.v));
    base += p.n;
  }
  out.n = base;
  return out;
}

EdgeList make_path_forest(std::uint64_t count, std::uint64_t len) {
  std::vector<EdgeList> parts(count, make_path(len + 1));
  return disjoint_union(parts);
}

EdgeList make_family(const std::string& family, std::uint64_t n,
                     std::uint64_t seed) {
  if (family == "path") return make_path(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "star") return make_star(n);
  if (family == "grid") {
    std::uint64_t side = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n))));
    return make_grid(side, side);
  }
  if (family == "tree") return make_binary_tree(n);
  if (family == "hypercube")
    return make_hypercube(std::max<std::uint32_t>(1, util::floor_log2(n)));
  if (family == "gnm2") return make_gnm(n, 2 * n, seed);
  if (family == "gnm8") return make_gnm(n, 8 * n, seed);
  if (family == "rmat") {
    std::uint32_t scale = std::max<std::uint32_t>(4, util::ceil_log2(n));
    return make_rmat(scale, 8 * n, seed);
  }
  if (family == "pref") return make_preferential(n, 4, seed);
  if (family == "caterpillar")
    return make_caterpillar(std::max<std::uint64_t>(2, n / 4), 3);
  if (family == "lollipop")
    return make_lollipop(std::min<std::uint64_t>(256, std::max<std::uint64_t>(4, n / 8)),
                         n - std::min<std::uint64_t>(256, std::max<std::uint64_t>(4, n / 8)));
  LOGCC_CHECK_MSG(false, "unknown graph family");
  return {};
}

std::vector<std::string> family_names() {
  return {"path",      "cycle", "star",       "grid",     "tree", "hypercube",
          "gnm2",      "gnm8",  "rmat",       "pref",     "caterpillar",
          "lollipop"};
}

}  // namespace logcc::graph
