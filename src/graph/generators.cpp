#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_set>

#include "util/bitutil.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace logcc::graph {

using util::Xoshiro256;

// The structured families are written as sink-based enumeration cores so the
// materializing make_* entry points and the streaming registry
// (make_family_stream -> binary CSR writer) share one edge sequence by
// construction. Every core is deterministic in its arguments: re-running it
// replays the identical sequence, which the two-pass streaming writer
// requires.
//
// Cores emit uint64 endpoints with no narrowing anywhere — the wide
// (LOGCCSR2) streaming path counts on it. The materializing entry points
// narrow at their EdgeList boundary, after checking n fits the 32-bit space.
namespace {

template <typename Sink>
void path_edges(std::uint64_t n, Sink&& sink) {
  for (std::uint64_t i = 0; i + 1 < n; ++i) sink(i, i + 1);
}

template <typename Sink>
void cycle_edges(std::uint64_t n, Sink&& sink) {
  path_edges(n, sink);
  if (n >= 3) sink(n - 1, std::uint64_t{0});
}

template <typename Sink>
void star_edges(std::uint64_t n, Sink&& sink) {
  for (std::uint64_t i = 1; i < n; ++i) sink(std::uint64_t{0}, i);
}

template <typename Sink>
void complete_edges(std::uint64_t n, Sink&& sink) {
  for (std::uint64_t i = 0; i < n; ++i)
    for (std::uint64_t j = i + 1; j < n; ++j) sink(i, j);
}

template <typename Sink>
void grid_edges(std::uint64_t rows, std::uint64_t cols, Sink&& sink) {
  auto id = [cols](std::uint64_t r, std::uint64_t c) { return r * cols + c; };
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) sink(id(r, c), id(r, c + 1));
      if (r + 1 < rows) sink(id(r, c), id(r + 1, c));
    }
  }
}

template <typename Sink>
void binary_tree_edges(std::uint64_t n, Sink&& sink) {
  for (std::uint64_t i = 1; i < n; ++i) sink((i - 1) / 2, i);
}

template <typename Sink>
void hypercube_edges(std::uint32_t dim, Sink&& sink) {
  const std::uint64_t n = 1ULL << dim;
  for (std::uint64_t v = 0; v < n; ++v)
    for (std::uint32_t b = 0; b < dim; ++b)
      if ((v & (1ULL << b)) == 0) sink(v, v | (1ULL << b));
}

// Streams by re-running the seeded RNG — O(1) state, so a 10^8-edge rmat
// never exists as an in-memory list. Self-loop draws are skipped (the draw
// still advances the RNG, keeping replays aligned). Vertex ids stay uint64
// from the bit rolls to the sink: past scale 32 the old VertexId narrowing
// silently folded the id space back onto 2^32 (tests/test_wide_index.cpp
// pins the fix).
template <typename Sink>
void rmat_edges(std::uint32_t scale, std::uint64_t m, std::uint64_t seed,
                double a, double b, double c, Sink&& sink) {
  Xoshiro256 rng(seed);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t u = 0, v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.uniform();
      std::uint64_t du = 0, dv = 0;
      if (r < a) {
      } else if (r < a + b) {
        dv = 1;
      } else if (r < a + b + c) {
        du = 1;
      } else {
        du = 1;
        dv = 1;
      }
      u = (u << 1) | du;
      v = (v << 1) | dv;
    }
    if (u != v) sink(u, v);
  }
}

template <typename Sink>
void caterpillar_edges(std::uint64_t spine, std::uint32_t legs, Sink&& sink) {
  for (std::uint64_t i = 0; i + 1 < spine; ++i) sink(i, i + 1);
  std::uint64_t next = spine;
  for (std::uint64_t i = 0; i < spine; ++i)
    for (std::uint32_t l = 0; l < legs; ++l) sink(i, next++);
}

template <typename Sink>
void lollipop_edges(std::uint64_t k, std::uint64_t tail, Sink&& sink) {
  complete_edges(k, sink);
  std::uint64_t prev = k - 1;
  for (std::uint64_t i = 0; i < tail; ++i) {
    std::uint64_t next = k + i;
    sink(prev, next);
    prev = next;
  }
}

// The registry's family -> parameter mapping, shared by make_family and
// make_family_stream so the two can never drift.
std::uint64_t grid_side(std::uint64_t n) {
  return std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n))));
}
std::uint32_t hypercube_dim(std::uint64_t n) {
  return std::max<std::uint32_t>(1, util::floor_log2(n));
}
std::uint32_t rmat_scale(std::uint64_t n) {
  return std::max<std::uint32_t>(4, util::ceil_log2(n));
}
std::uint64_t caterpillar_spine(std::uint64_t n) {
  return std::max<std::uint64_t>(2, n / 4);
}
std::uint64_t lollipop_clique(std::uint64_t n) {
  return std::min<std::uint64_t>(256, std::max<std::uint64_t>(4, n / 8));
}

// Materializing boundary: ids must fit the narrow EdgeList (kInvalidVertex
// = 2^32-1 is a sentinel, so n itself may be at most 2^32-1).
void check_narrow(std::uint64_t n) {
  LOGCC_CHECK_MSG(n <= std::numeric_limits<VertexId>::max(),
                  "materialized generator exceeds the 32-bit id space; "
                  "stream to LOGCCSR2 instead");
}

// Sink adapter for the materializers: cores emit uint64, the EdgeList
// stores uint32 — safe because check_narrow bounded n and cores only emit
// ids < n.
auto narrow_into(EdgeList& el) {
  return [&el](std::uint64_t u, std::uint64_t v) {
    el.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
  };
}

}  // namespace

EdgeList make_path(std::uint64_t n) {
  check_narrow(n);
  EdgeList el;
  el.n = n;
  path_edges(n, narrow_into(el));
  return el;
}

EdgeList make_cycle(std::uint64_t n) {
  check_narrow(n);
  EdgeList el;
  el.n = n;
  cycle_edges(n, narrow_into(el));
  return el;
}

EdgeList make_star(std::uint64_t n) {
  check_narrow(n);
  EdgeList el;
  el.n = n;
  star_edges(n, narrow_into(el));
  return el;
}

EdgeList make_complete(std::uint64_t n) {
  LOGCC_CHECK_MSG(n <= 4096, "complete graph too large");
  EdgeList el;
  el.n = n;
  complete_edges(n, narrow_into(el));
  return el;
}

EdgeList make_grid(std::uint64_t rows, std::uint64_t cols) {
  check_narrow(rows * cols);
  EdgeList el;
  el.n = rows * cols;
  grid_edges(rows, cols, narrow_into(el));
  return el;
}

EdgeList make_binary_tree(std::uint64_t n) {
  check_narrow(n);
  EdgeList el;
  el.n = n;
  binary_tree_edges(n, narrow_into(el));
  return el;
}

EdgeList make_hypercube(std::uint32_t dim) {
  LOGCC_CHECK(dim <= 24);
  EdgeList el;
  el.n = 1ULL << dim;
  hypercube_edges(dim, narrow_into(el));
  return el;
}

namespace {
std::uint64_t edge_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}
}  // namespace

EdgeList make_gnm(std::uint64_t n, std::uint64_t m, std::uint64_t seed) {
  LOGCC_CHECK(n >= 2);
  check_narrow(n);
  const std::uint64_t max_edges = n * (n - 1) / 2;
  LOGCC_CHECK_MSG(m <= max_edges / 2 || n <= 4096,
                  "G(n,m) rejection sampling needs m well below n^2/2");
  EdgeList el;
  el.n = n;
  el.edges.reserve(m);
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (el.edges.size() < std::min(m, max_edges)) {
    // below(n) is a uint64 draw; narrowing is safe only because
    // check_narrow bounded n — the draw itself must never be truncated
    // before the bound is applied.
    VertexId u = static_cast<VertexId>(rng.below(n));
    VertexId v = static_cast<VertexId>(rng.below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) el.add(u, v);
  }
  return el;
}

EdgeList make_random_regular(std::uint64_t n, std::uint32_t k,
                             std::uint64_t seed, bool connected) {
  check_narrow(n);
  EdgeList el;
  el.n = n;
  Xoshiro256 rng(seed);
  std::vector<VertexId> perm(n);
  for (std::uint64_t i = 0; i < n; ++i) perm[i] = static_cast<VertexId>(i);
  std::uint32_t matchings = std::max<std::uint32_t>(1, k / 2);
  for (std::uint32_t t = 0; t < matchings; ++t) {
    // Fisher–Yates shuffle, then pair up consecutive entries.
    for (std::uint64_t i = n - 1; i > 0; --i)
      std::swap(perm[i], perm[rng.below(i + 1)]);
    for (std::uint64_t i = 0; i + 1 < n; i += 2) el.add(perm[i], perm[i + 1]);
  }
  if (connected && n >= 3) {
    for (std::uint64_t i = 0; i + 1 < n; ++i)
      el.add(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
    el.add(static_cast<VertexId>(n - 1), 0);
  }
  el.canonicalize();
  return el;
}

EdgeList make_rmat(std::uint32_t scale, std::uint64_t m, std::uint64_t seed,
                   double a, double b, double c) {
  LOGCC_CHECK(scale <= 28);
  LOGCC_CHECK(a + b + c < 1.0);
  EdgeList el;
  el.n = 1ULL << scale;
  el.edges.reserve(m);
  rmat_edges(scale, m, seed, a, b, c, narrow_into(el));
  return el;
}

EdgeList make_preferential(std::uint64_t n, std::uint32_t k,
                           std::uint64_t seed) {
  LOGCC_CHECK(n >= 2 && k >= 1);
  check_narrow(n);
  EdgeList el;
  el.n = n;
  Xoshiro256 rng(seed);
  // `targets` holds one entry per arc endpoint; sampling uniformly from it
  // realises degree-proportional attachment.
  std::vector<VertexId> targets;
  targets.reserve(2 * n * k);
  el.add(0, 1);
  targets.push_back(0);
  targets.push_back(1);
  for (std::uint64_t v = 2; v < n; ++v) {
    std::uint32_t added = 0;
    std::unordered_set<VertexId> picked;
    while (added < k && picked.size() < v) {
      VertexId t = targets[rng.below(targets.size())];
      if (t == v || !picked.insert(t).second) continue;
      el.add(static_cast<VertexId>(v), t);
      ++added;
    }
    for (VertexId t : picked) {
      targets.push_back(t);
      targets.push_back(static_cast<VertexId>(v));
    }
  }
  return el;
}

EdgeList make_caterpillar(std::uint64_t spine, std::uint32_t legs) {
  check_narrow(spine * (1 + legs));
  EdgeList el;
  el.n = spine * (1 + legs);
  caterpillar_edges(spine, legs, narrow_into(el));
  return el;
}

EdgeList make_lollipop(std::uint64_t k, std::uint64_t tail) {
  LOGCC_CHECK_MSG(k >= 1 && k <= 4096, "lollipop clique too large");
  check_narrow(k + tail);
  EdgeList el;
  el.n = k + tail;
  lollipop_edges(k, tail, narrow_into(el));
  return el;
}

EdgeList disjoint_union(const std::vector<EdgeList>& parts) {
  EdgeList out;
  std::uint64_t base = 0;
  for (const EdgeList& p : parts) {
    for (const Edge& e : p.edges)
      out.add(static_cast<VertexId>(base + e.u),
              static_cast<VertexId>(base + e.v));
    base += p.n;
  }
  check_narrow(base);
  out.n = base;
  return out;
}

EdgeList make_path_forest(std::uint64_t count, std::uint64_t len) {
  std::vector<EdgeList> parts(count, make_path(len + 1));
  return disjoint_union(parts);
}

EdgeList make_family(const std::string& family, std::uint64_t n,
                     std::uint64_t seed) {
  if (family == "path") return make_path(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "star") return make_star(n);
  if (family == "grid") {
    const std::uint64_t side = grid_side(n);
    return make_grid(side, side);
  }
  if (family == "tree") return make_binary_tree(n);
  if (family == "hypercube") return make_hypercube(hypercube_dim(n));
  if (family == "gnm2") return make_gnm(n, 2 * n, seed);
  if (family == "gnm8") return make_gnm(n, 8 * n, seed);
  if (family == "rmat") return make_rmat(rmat_scale(n), 8 * n, seed);
  if (family == "pref") return make_preferential(n, 4, seed);
  if (family == "caterpillar") return make_caterpillar(caterpillar_spine(n), 3);
  if (family == "lollipop") {
    const std::uint64_t k = lollipop_clique(n);
    return make_lollipop(k, n - k);
  }
  LOGCC_CHECK_MSG(false, "unknown graph family");
  return {};
}

std::vector<std::string> family_names() {
  return {"path",      "cycle", "star",       "grid",     "tree", "hypercube",
          "gnm2",      "gnm8",  "rmat",       "pref",     "caterpillar",
          "lollipop"};
}

FamilyStream make_family_stream(const std::string& family, std::uint64_t n,
                                std::uint64_t seed) {
  FamilyStream fs;
  using SinkF = std::function<void(std::uint64_t, std::uint64_t)>;
  auto streaming = [&fs](std::uint64_t nv, auto&& core) {
    fs.num_vertices = nv;
    fs.streams = true;
    fs.enumerate = [core](const SinkF& sink) { core(sink); };
  };
  if (family == "path") {
    streaming(n, [n](const SinkF& s) { path_edges(n, s); });
  } else if (family == "cycle") {
    streaming(n, [n](const SinkF& s) { cycle_edges(n, s); });
  } else if (family == "star") {
    streaming(n, [n](const SinkF& s) { star_edges(n, s); });
  } else if (family == "grid") {
    const std::uint64_t side = grid_side(n);
    streaming(side * side,
              [side](const SinkF& s) { grid_edges(side, side, s); });
  } else if (family == "tree") {
    streaming(n, [n](const SinkF& s) { binary_tree_edges(n, s); });
  } else if (family == "hypercube") {
    const std::uint32_t dim = hypercube_dim(n);
    LOGCC_CHECK(dim <= 40);
    streaming(1ULL << dim, [dim](const SinkF& s) { hypercube_edges(dim, s); });
  } else if (family == "rmat") {
    // Streaming rmat runs past the materializer's scale-28 cap: ids are
    // uint64 end-to-end, so wide (LOGCCSR2) targets can stream >2^32-vertex
    // families. The narrow writer still rejects n > 2^32 with its own
    // actionable error.
    const std::uint32_t scale = rmat_scale(n);
    LOGCC_CHECK(scale <= 48);
    const std::uint64_t m = 8 * n;
    streaming(1ULL << scale, [scale, m, seed](const SinkF& s) {
      rmat_edges(scale, m, seed, 0.57, 0.19, 0.19, s);
    });
  } else if (family == "caterpillar") {
    const std::uint64_t spine = caterpillar_spine(n);
    streaming(spine * 4,
              [spine](const SinkF& s) { caterpillar_edges(spine, 3, s); });
  } else if (family == "lollipop") {
    const std::uint64_t k = lollipop_clique(n);
    const std::uint64_t tail = n - k;
    streaming(k + tail,
              [k, tail](const SinkF& s) { lollipop_edges(k, tail, s); });
  } else {
    // gnm2/gnm8/pref need global state (dedup set, attachment array) to
    // generate, so they materialize once and replay — correct, not
    // memory-reducing (documented in the header).
    auto cache =
        std::make_shared<const EdgeList>(make_family(family, n, seed));
    fs.num_vertices = cache->n;
    fs.streams = false;
    fs.enumerate = [cache](const SinkF& sink) {
      for (const Edge& e : cache->edges) sink(e.u, e.v);
    };
  }
  return fs;
}

}  // namespace logcc::graph
