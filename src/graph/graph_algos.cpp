#include "graph/graph_algos.hpp"

#include <algorithm>
#include <queue>
#include <string>
#include <unordered_map>

#include "util/check.hpp"

namespace logcc::graph {

std::vector<VertexId> bfs_components(const CsrView& view) {
  const std::uint64_t n = view.n;
  std::vector<VertexId> label(n, kInvalidVertex);
  std::vector<VertexId> queue;
  for (std::uint64_t s = 0; s < n; ++s) {
    if (label[s] != kInvalidVertex) continue;
    VertexId root = static_cast<VertexId>(s);
    label[s] = root;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      VertexId v = queue[head];
      for (VertexId w : view.neighbors(v)) {
        if (label[w] == kInvalidVertex) {
          label[w] = root;
          queue.push_back(w);
        }
      }
    }
  }
  return label;  // min-id labels because s scans upward
}

std::vector<VertexId> bfs_components(const Graph& g) {
  return bfs_components(csr_view(g));
}

std::uint64_t count_components(const std::vector<VertexId>& labels) {
  std::vector<VertexId> uniq(labels);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  return uniq.size();
}

std::vector<VertexId> canonical_labels(const std::vector<VertexId>& labels) {
  // Map each label to the min vertex id carrying it.
  std::unordered_map<VertexId, VertexId> min_of;
  min_of.reserve(labels.size());
  for (std::size_t v = 0; v < labels.size(); ++v) {
    auto [it, inserted] = min_of.try_emplace(labels[v], static_cast<VertexId>(v));
    if (!inserted) it->second = std::min(it->second, static_cast<VertexId>(v));
  }
  std::vector<VertexId> out(labels.size());
  for (std::size_t v = 0; v < labels.size(); ++v) out[v] = min_of[labels[v]];
  return out;
}

bool same_partition(const std::vector<VertexId>& a,
                    const std::vector<VertexId>& b) {
  if (a.size() != b.size()) return false;
  return canonical_labels(a) == canonical_labels(b);
}

namespace {
/// BFS from `source`; returns (farthest vertex, distance).
std::pair<VertexId, std::uint64_t> bfs_far(const Graph& g, VertexId source,
                                           std::vector<std::uint32_t>& dist) {
  dist.assign(g.num_vertices(), static_cast<std::uint32_t>(-1));
  std::vector<VertexId> queue{source};
  dist[source] = 0;
  VertexId far = source;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    VertexId v = queue[head];
    for (VertexId w : g.neighbors(v)) {
      if (dist[w] == static_cast<std::uint32_t>(-1)) {
        dist[w] = dist[v] + 1;
        if (dist[w] > dist[far]) far = w;
        queue.push_back(w);
      }
    }
  }
  return {far, dist[far]};
}
}  // namespace

std::uint64_t eccentricity(const Graph& g, VertexId source) {
  std::vector<std::uint32_t> dist;
  return bfs_far(g, source, dist).second;
}

std::uint64_t exact_max_diameter(const Graph& g) {
  std::uint64_t best = 0;
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v)
    best = std::max(best, eccentricity(g, static_cast<VertexId>(v)));
  return best;
}

std::uint64_t pseudo_diameter(const Graph& g) {
  const std::uint64_t n = g.num_vertices();
  std::vector<bool> seen(n, false);
  std::vector<std::uint32_t> dist;
  std::uint64_t best = 0;
  for (std::uint64_t s = 0; s < n; ++s) {
    if (seen[s]) continue;
    auto [far, _] = bfs_far(g, static_cast<VertexId>(s), dist);
    for (std::uint64_t v = 0; v < n; ++v)
      if (dist[v] != static_cast<std::uint32_t>(-1)) seen[v] = true;
    auto [far2, d2] = bfs_far(g, far, dist);
    (void)far2;
    best = std::max(best, d2);
  }
  return best;
}

ForestCheck validate_spanning_forest(
    const EdgeList& el, const std::vector<std::uint64_t>& forest_edges) {
  ForestCheck out;
  const std::uint64_t n = el.n;
  // Union-find over forest edges detects cycles.
  std::vector<VertexId> parent(n);
  for (std::uint64_t v = 0; v < n; ++v) parent[v] = static_cast<VertexId>(v);
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (std::uint64_t idx : forest_edges) {
    if (idx >= el.edges.size()) {
      out.error = "forest edge index out of range";
      return out;
    }
    const Edge& e = el.edges[idx];
    VertexId ru = find(e.u), rv = find(e.v);
    if (ru == rv) {
      out.error = "forest contains a cycle (or duplicate edge)";
      return out;
    }
    parent[ru] = rv;
  }
  // Spanning: number of forest edges must equal n - #components of el.
  Graph g = Graph::from_edges(el);
  std::uint64_t comps = count_components(bfs_components(g));
  if (forest_edges.size() != n - comps) {
    out.error = "forest has " + std::to_string(forest_edges.size()) +
                " edges, expected " + std::to_string(n - comps);
    return out;
  }
  out.ok = true;
  return out;
}

std::vector<std::uint64_t> component_sizes(const std::vector<VertexId>& labels) {
  std::unordered_map<VertexId, std::uint64_t> count;
  for (VertexId l : labels) ++count[l];
  std::vector<std::uint64_t> sizes;
  sizes.reserve(count.size());
  for (const auto& [l, c] : count) {
    (void)l;
    sizes.push_back(c);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

}  // namespace logcc::graph
