// Graph types: EdgeList (what the PRAM algorithms consume — one processor per
// arc) and Graph (CSR adjacency, used by sequential oracles and generators).
//
// Vertices are dense ids in [0, n). Graphs are undirected and may contain
// isolated vertices; self-loops and parallel edges are allowed in EdgeList
// (the paper's ALTER creates both) but the CSR builder can deduplicate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace logcc::graph {

using VertexId = std::uint32_t;
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Flat list of undirected edges over n vertices.
///
/// Invariant expected by every consumer: all endpoints < n. The PRAM
/// algorithms and Graph::from_edges enforce it with LOGCC_CHECK; the file
/// loaders (graph/io.hpp, graph/binary_io.hpp) reject violating input
/// instead of constructing an invalid list.
struct EdgeList {
  std::uint64_t n = 0;
  std::vector<Edge> edges;

  std::uint64_t num_vertices() const { return n; }
  std::uint64_t num_edges() const { return edges.size(); }

  void add(VertexId u, VertexId v) { edges.push_back({u, v}); }

  /// Removes self-loops and duplicate {u,v}/{v,u} pairs (keeps the graph's
  /// connectivity structure; used before handing workloads to algorithms that
  /// expect simple graphs). Postcondition: edges are (u,v)-sorted with
  /// u < v and strictly increasing — a canonical form, so two lists with
  /// the same connectivity-relevant edge set compare equal afterwards.
  void canonicalize();
};

/// Compressed sparse row adjacency. Each undirected edge appears as two arcs
/// (a self-loop as one); neighbor lists are sorted ascending. The same
/// conventions as the on-disk binary CSR format (graph/binary_io.hpp), whose
/// CsrView is the non-owning counterpart of this class.
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list; if `dedup` removes self-loops and parallel
  /// edges first. Precondition: all endpoints < n (LOGCC_CHECK).
  /// Deterministic: the result depends only on the edge multiset. The span
  /// overload builds straight from borrowed edges (no EdgeList copy when
  /// `dedup` is false) — what ArcsInput-driven callers use.
  static Graph from_edges(const EdgeList& el, bool dedup = true);
  static Graph from_edges(std::uint64_t n, std::span<const Edge> edges,
                          bool dedup = true);

  std::uint64_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  /// Number of undirected edges (arcs / 2).
  std::uint64_t num_edges() const { return adj_.size() / 2; }
  std::uint64_t num_arcs() const { return adj_.size(); }

  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted ascending. Valid while the Graph is alive; v must be < n.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Re-exports as an edge list (one entry per undirected edge, u <= v,
  /// sorted — the inverse of from_edges up to canonical order).
  EdgeList to_edges() const;

  /// Self-loop arcs in the adjacency (each loop is a single arc). Together
  /// with num_arcs this recovers the canonical undirected edge count
  /// (arcs + loops) / 2 — what graph::csr_view (arcs_input.hpp) exposes.
  std::uint64_t num_self_loops() const { return self_loops_; }

  /// Raw CSR arrays, for zero-copy views (graph::csr_view). Valid while
  /// the Graph is alive.
  std::span<const std::uint64_t> raw_offsets() const { return offsets_; }
  std::span<const VertexId> raw_adj() const { return adj_; }

 private:
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<VertexId> adj_;           // size 2m
  std::uint64_t self_loops_ = 0;
};

}  // namespace logcc::graph
