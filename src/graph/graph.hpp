// Graph types: EdgeList (what the PRAM algorithms consume — one processor per
// arc) and Graph (CSR adjacency, used by sequential oracles and generators).
//
// Vertices are dense ids in [0, n). Graphs are undirected and may contain
// isolated vertices; self-loops and parallel edges are allowed in EdgeList
// (the paper's ALTER creates both) but the CSR builder can deduplicate.
//
// Index-type contract: every type here is a template over the vertex-id
// width V (std::uint32_t or std::uint64_t). The unsuffixed aliases (Edge,
// EdgeList, Graph) are the narrow 32-bit instantiation — the default the
// whole execution stack runs on — and the `64`-suffixed aliases are the wide
// path LOGCCSR2 datasets load into (see docs/ARCHITECTURE.md, "Index-type
// contract"). Offsets and counts are uint64 at *both* widths; only the
// per-arc adjacency entries and edge endpoints narrow.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace logcc::graph {

using VertexId = std::uint32_t;
using VertexId64 = std::uint64_t;
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);
inline constexpr VertexId64 kInvalidVertex64 = static_cast<VertexId64>(-1);

template <typename V>
struct BasicEdge {
  V u = 0;
  V v = 0;
  friend bool operator==(const BasicEdge&, const BasicEdge&) = default;
};

using Edge = BasicEdge<VertexId>;
using Edge64 = BasicEdge<VertexId64>;

/// Flat list of undirected edges over n vertices.
///
/// Invariant expected by every consumer: all endpoints < n. The PRAM
/// algorithms and Graph::from_edges enforce it with LOGCC_CHECK; the file
/// loaders (graph/io.hpp, graph/binary_io.hpp) reject violating input
/// instead of constructing an invalid list.
template <typename V>
struct BasicEdgeList {
  std::uint64_t n = 0;
  std::vector<BasicEdge<V>> edges;

  std::uint64_t num_vertices() const { return n; }
  std::uint64_t num_edges() const { return edges.size(); }

  void add(V u, V v) { edges.push_back({u, v}); }

  /// Removes self-loops and duplicate {u,v}/{v,u} pairs (keeps the graph's
  /// connectivity structure; used before handing workloads to algorithms that
  /// expect simple graphs). Postcondition: edges are (u,v)-sorted with
  /// u < v and strictly increasing — a canonical form, so two lists with
  /// the same connectivity-relevant edge set compare equal afterwards.
  void canonicalize();
};

using EdgeList = BasicEdgeList<VertexId>;
using EdgeList64 = BasicEdgeList<VertexId64>;

/// Compressed sparse row adjacency. Each undirected edge appears as two arcs
/// (a self-loop as one); neighbor lists are sorted ascending. The same
/// conventions as the on-disk binary CSR formats (graph/binary_io.hpp), whose
/// CsrView is the non-owning counterpart of this class.
template <typename V>
class BasicGraph {
 public:
  BasicGraph() = default;

  /// Builds from an edge list; if `dedup` removes self-loops and parallel
  /// edges first. Precondition: all endpoints < n (LOGCC_CHECK).
  /// Deterministic: the result depends only on the edge multiset. The span
  /// overload builds straight from borrowed edges (no EdgeList copy when
  /// `dedup` is false) — what ArcsInput-driven callers use.
  static BasicGraph from_edges(const BasicEdgeList<V>& el, bool dedup = true);
  static BasicGraph from_edges(std::uint64_t n,
                               std::span<const BasicEdge<V>> edges,
                               bool dedup = true);

  std::uint64_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of undirected edges (arcs / 2).
  std::uint64_t num_edges() const { return adj_.size() / 2; }
  std::uint64_t num_arcs() const { return adj_.size(); }

  /// uint64 on both widths: v1 files legally hold up to ~2^33 arcs, so a
  /// uint32 return could silently wrap even on the narrow path.
  std::uint64_t degree(V v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Sorted ascending. Valid while the Graph is alive; v must be < n.
  std::span<const V> neighbors(V v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Re-exports as an edge list (one entry per undirected edge, u <= v,
  /// sorted — the inverse of from_edges up to canonical order).
  BasicEdgeList<V> to_edges() const;

  /// Self-loop arcs in the adjacency (each loop is a single arc). Together
  /// with num_arcs this recovers the canonical undirected edge count
  /// (arcs + loops) / 2 — what graph::csr_view (arcs_input.hpp) exposes.
  std::uint64_t num_self_loops() const { return self_loops_; }

  /// Raw CSR arrays, for zero-copy views (graph::csr_view). Valid while
  /// the Graph is alive.
  std::span<const std::uint64_t> raw_offsets() const { return offsets_; }
  std::span<const V> raw_adj() const { return adj_; }

 private:
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<V> adj_;                  // size 2m
  std::uint64_t self_loops_ = 0;
};

using Graph = BasicGraph<VertexId>;
using Graph64 = BasicGraph<VertexId64>;

// --------------------------------------------------------------------------
// Template definitions (both instantiations are explicit, in graph.cpp).

template <typename V>
void BasicEdgeList<V>::canonicalize() {
  for (auto& e : edges)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(edges.begin(), edges.end(),
            [](const BasicEdge<V>& a, const BasicEdge<V>& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::erase_if(edges, [](const BasicEdge<V>& e) { return e.u == e.v; });
}

template <typename V>
BasicGraph<V> BasicGraph<V>::from_edges(std::uint64_t n,
                                        std::span<const BasicEdge<V>> edges,
                                        bool dedup) {
  if (dedup) {
    BasicEdgeList<V> copy;
    copy.n = n;
    copy.edges.assign(edges.begin(), edges.end());
    copy.canonicalize();
    return from_edges(copy.n, copy.edges, /*dedup=*/false);
  }
  for (const BasicEdge<V>& e : edges) {
    LOGCC_CHECK_MSG(e.u < n && e.v < n, "edge endpoint out of range");
  }

  BasicGraph g;
  g.offsets_.assign(n + 1, 0);
  for (const BasicEdge<V>& e : edges) {
    ++g.offsets_[e.u + 1];
    if (e.u != e.v)
      ++g.offsets_[e.v + 1];
    else
      ++g.self_loops_;
  }
  for (std::uint64_t i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.adj_.resize(g.offsets_[n]);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const BasicEdge<V>& e : edges) {
    g.adj_[cursor[e.u]++] = e.v;
    if (e.u != e.v) g.adj_[cursor[e.v]++] = e.u;
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    auto* begin = g.adj_.data() + g.offsets_[v];
    auto* end = g.adj_.data() + g.offsets_[v + 1];
    std::sort(begin, end);
  }
  return g;
}

template <typename V>
BasicGraph<V> BasicGraph<V>::from_edges(const BasicEdgeList<V>& el,
                                        bool dedup) {
  return from_edges(el.n, el.edges, dedup);
}

template <typename V>
BasicEdgeList<V> BasicGraph<V>::to_edges() const {
  BasicEdgeList<V> el;
  el.n = num_vertices();
  el.edges.reserve(num_edges());
  for (V v = 0; v < el.n; ++v) {
    for (V w : neighbors(v)) {
      if (v <= w) el.add(v, w);
    }
  }
  return el;
}

extern template struct BasicEdgeList<VertexId>;
extern template struct BasicEdgeList<VertexId64>;
extern template class BasicGraph<VertexId>;
extern template class BasicGraph<VertexId64>;

}  // namespace logcc::graph
