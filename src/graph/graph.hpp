// Graph types: EdgeList (what the PRAM algorithms consume — one processor per
// arc) and Graph (CSR adjacency, used by sequential oracles and generators).
//
// Vertices are dense ids in [0, n). Graphs are undirected and may contain
// isolated vertices; self-loops and parallel edges are allowed in EdgeList
// (the paper's ALTER creates both) but the CSR builder can deduplicate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace logcc::graph {

using VertexId = std::uint32_t;
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Flat list of undirected edges over n vertices.
struct EdgeList {
  std::uint64_t n = 0;
  std::vector<Edge> edges;

  std::uint64_t num_vertices() const { return n; }
  std::uint64_t num_edges() const { return edges.size(); }

  void add(VertexId u, VertexId v) { edges.push_back({u, v}); }

  /// Removes self-loops and duplicate {u,v}/{v,u} pairs (keeps the graph's
  /// connectivity structure; used before handing workloads to algorithms that
  /// expect simple graphs).
  void canonicalize();
};

/// Compressed sparse row adjacency. Each undirected edge appears as two arcs.
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list; if `dedup` removes self-loops and parallel
  /// edges first.
  static Graph from_edges(const EdgeList& el, bool dedup = true);

  std::uint64_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  /// Number of undirected edges (arcs / 2).
  std::uint64_t num_edges() const { return adj_.size() / 2; }
  std::uint64_t num_arcs() const { return adj_.size(); }

  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Re-exports as an edge list (one entry per undirected edge, u <= v).
  EdgeList to_edges() const;

 private:
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<VertexId> adj_;           // size 2m
};

}  // namespace logcc::graph
