// The labeled digraph (§2.1): every vertex carries a parent pointer v.p; the
// digraph's only cycles are self-loops, so it is a forest of rooted trees.
// ParentForest owns the pointer array plus the operations and invariant
// checks every algorithm in the paper shares.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace logcc::core {

using graph::VertexId;

class ParentForest {
 public:
  ParentForest() = default;
  explicit ParentForest(std::uint64_t n) { reset(n); }

  void reset(std::uint64_t n) {
    parent_.resize(n);
    for (std::uint64_t v = 0; v < n; ++v)
      parent_[v] = static_cast<VertexId>(v);
  }

  std::uint64_t size() const { return parent_.size(); }

  VertexId parent(VertexId v) const { return parent_[v]; }
  void set_parent(VertexId v, VertexId p) { parent_[v] = p; }

  bool is_root(VertexId v) const { return parent_[v] == v; }

  /// One synchronous SHORTCUT step: v.p := v.p.p for all v (reads the old
  /// pointers). Returns true if any pointer changed.
  bool shortcut();

  /// Repeats SHORTCUT until every tree is flat; returns the number of steps
  /// (<= ceil(log2 height) + 1).
  std::uint64_t flatten();

  /// Root of v's tree by pointer chasing (no mutation).
  VertexId find_root(VertexId v) const;

  bool all_flat() const;

  /// Invariant check (§2.1): the only cycles are self-loops.
  bool acyclic() const;

  const std::vector<VertexId>& raw() const { return parent_; }
  std::vector<VertexId>& raw() { return parent_; }

  /// Labels vector where every vertex maps to its root.
  std::vector<VertexId> root_labels() const;

 private:
  std::vector<VertexId> parent_;
  // Double buffer for shortcut(); persists across calls so flatten() and the
  // phase loops allocate once per forest instead of once per step.
  std::vector<VertexId> scratch_;
};

/// Lemma 3.2 / D.4 invariant: every non-root has level strictly below its
/// parent's level. Returns true when it holds.
bool level_invariant_holds(const ParentForest& forest,
                           const std::vector<std::uint32_t>& level);

}  // namespace logcc::core
