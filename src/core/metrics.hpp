// Per-run cost metrics. The paper's theorems bound *rounds/steps*, *number of
// processors* and *success probability*; RunStats captures the measured
// counterparts so benches can print paper-claim vs. measured directly.
#pragma once

#include <cstdint>
#include <vector>

namespace logcc::core {

struct RunStats {
  // Outer progress counters.
  std::uint64_t rounds = 0;          // Thm 3: EXPAND-MAXLINK rounds
  std::uint64_t phases = 0;          // Thm 1/2 & Vanilla: phase count
  std::uint64_t prepare_phases = 0;  // PREPARE/COMPACT densification phases
  std::uint64_t expand_rounds = 0;   // inner EXPAND doubling rounds (total)

  // Modeled PRAM cost: every O(1)-time step of the algorithm adds 1. This is
  // what the theorems' time bounds refer to.
  std::uint64_t pram_steps = 0;

  // Space/processor accounting (words). peak = max over rounds of
  // (arc processors + block space in use); total_block = sum of all blocks
  // ever allocated (the paper's zone ledger, Lemma 3.10/D.13 bounds it O(m)).
  std::uint64_t peak_space_words = 0;
  std::uint64_t total_block_words = 0;

  // Hashing behaviour.
  std::uint64_t hash_collisions = 0;
  std::uint64_t level_raises = 0;     // random (Step 2) + forced (Step 7)
  std::uint32_t max_level = 0;        // Lemma 3.19/D.23 bound target
  std::vector<std::uint64_t> level_histogram;  // vertices that reached level i

  // Robustness.
  bool finisher_used = false;   // guaranteed-convergent fallback fired
  bool prepare_used = false;    // PREPARE/COMPACT densification ran

  void bump_level_histogram(std::uint32_t level) {
    if (level_histogram.size() <= level) level_histogram.resize(level + 1, 0);
    ++level_histogram[level];
  }

  /// Merges counters from a sub-run (e.g. Thm 3's Thm-1 postprocess).
  void absorb(const RunStats& other) {
    rounds += other.rounds;
    phases += other.phases;
    prepare_phases += other.prepare_phases;
    expand_rounds += other.expand_rounds;
    pram_steps += other.pram_steps;
    peak_space_words = std::max(peak_space_words, other.peak_space_words);
    total_block_words += other.total_block_words;
    hash_collisions += other.hash_collisions;
    level_raises += other.level_raises;
    max_level = std::max(max_level, other.max_level);
    finisher_used = finisher_used || other.finisher_used;
    prepare_used = prepare_used || other.prepare_used;
    for (std::size_t i = 0; i < other.level_histogram.size(); ++i) {
      if (level_histogram.size() <= i) level_histogram.resize(i + 1, 0);
      level_histogram[i] += other.level_histogram[i];
    }
  }
};

}  // namespace logcc::core
