// Fixed-capacity vertex hash table H(v) with CRCW-style collision semantics
// (§2.2 "Hashing", §3.3): a vertex w is written into cell h(w); a *collision*
// is a cell already holding a different vertex. Re-inserting a vertex already
// present is not a collision (concurrent equal writes are harmless on a
// CRCW machine) — this is exactly how hashing deduplicates neighbours.
//
// The table never resolves collisions: the algorithms react to them (mark
// dormant, raise level), so the table just records that one happened.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace logcc::core {

class VertexTable {
 public:
  enum class Insert { kNew, kPresent, kCollision };

  VertexTable() = default;
  explicit VertexTable(std::uint32_t capacity) { reset(capacity); }

  void reset(std::uint32_t capacity) {
    cells_.assign(capacity, graph::kInvalidVertex);
    count_ = 0;
    collided_ = false;
  }

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(cells_.size());
  }
  std::uint32_t count() const { return count_; }
  bool collided() const { return collided_; }
  void mark_collided() { collided_ = true; }

  /// Writes `w` into `cell`; the caller computes cell = h(w, capacity()).
  Insert insert_at(std::uint32_t cell, graph::VertexId w) {
    LOGCC_DCHECK(cell < cells_.size());
    graph::VertexId& slot = cells_[cell];
    if (slot == w) return Insert::kPresent;
    if (slot == graph::kInvalidVertex) {
      slot = w;
      ++count_;
      return Insert::kNew;
    }
    collided_ = true;
    return Insert::kCollision;
  }

  /// True iff `w` sits in `cell` (the paper's collision *detection*: write,
  /// then re-read the same location).
  bool contains_at(std::uint32_t cell, graph::VertexId w) const {
    return cell < cells_.size() && cells_[cell] == w;
  }

  /// Iterates occupied cells.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (graph::VertexId w : cells_)
      if (w != graph::kInvalidVertex) fn(w);
  }

  std::vector<graph::VertexId> items() const {
    std::vector<graph::VertexId> out;
    out.reserve(count_);
    for_each([&](graph::VertexId w) { out.push_back(w); });
    return out;
  }

  const std::vector<graph::VertexId>& cells() const { return cells_; }

 private:
  std::vector<graph::VertexId> cells_;
  std::uint32_t count_ = 0;
  bool collided_ = false;
};

}  // namespace logcc::core
