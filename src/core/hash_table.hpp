// Fixed-capacity vertex hash table H(v) with CRCW-style collision semantics
// (§2.2 "Hashing", §3.3): a vertex w is written into cell h(w); a *collision*
// is a cell already holding a different vertex. Re-inserting a vertex already
// present is not a collision (concurrent equal writes are harmless on a
// CRCW machine) — this is exactly how hashing deduplicates neighbours.
//
// The table never resolves collisions: the algorithms react to them (mark
// dormant, raise level), so the table just records that one happened.
//
// reset() at an unchanged capacity is O(1): every cell carries a generation
// stamp and a cell is occupied only when its stamp matches the table's
// current generation, so clearing the table is one counter bump instead of
// an O(capacity) re-fill (bench_micro BM_TableReset* measures the gap).
// The bulk EXPAND paths use the slab-backed layout in core/table_slab.hpp;
// this class remains the single-table form (TREE-LINK's per-slot Q' tables,
// tests, and the differential reference for the slab).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace logcc::core {

class VertexTable {
 public:
  enum class Insert { kNew, kPresent, kCollision };

  VertexTable() = default;
  explicit VertexTable(std::uint32_t capacity) { reset(capacity); }

  void reset(std::uint32_t capacity) {
    if (capacity == cells_.size()) {
      // Same backing storage, new generation: every cell is logically
      // empty again without touching it. Generation 0 is reserved as
      // "never written", so a wrap re-zeroes before reuse.
      if (++gen_ == 0) {
        std::fill(stamp_.begin(), stamp_.end(), 0u);
        gen_ = 1;
      }
    } else {
      cells_.assign(capacity, graph::kInvalidVertex);
      stamp_.assign(capacity, 0u);
      gen_ = 1;
    }
    count_ = 0;
    collided_ = false;
  }

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(cells_.size());
  }
  std::uint32_t count() const { return count_; }
  bool collided() const { return collided_; }
  void mark_collided() { collided_ = true; }

  /// Writes `w` into `cell`; the caller computes cell = h(w, capacity()).
  Insert insert_at(std::uint32_t cell, graph::VertexId w) {
    LOGCC_DCHECK(cell < cells_.size());
    if (stamp_[cell] != gen_) {
      cells_[cell] = w;
      stamp_[cell] = gen_;
      ++count_;
      return Insert::kNew;
    }
    if (cells_[cell] == w) return Insert::kPresent;
    collided_ = true;
    return Insert::kCollision;
  }

  /// True iff `w` sits in `cell` (the paper's collision *detection*: write,
  /// then re-read the same location).
  bool contains_at(std::uint32_t cell, graph::VertexId w) const {
    return cell < cells_.size() && stamp_[cell] == gen_ && cells_[cell] == w;
  }

  /// Iterates occupied cells.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t c = 0; c < cells_.size(); ++c)
      if (stamp_[c] == gen_) fn(cells_[c]);
  }

  std::vector<graph::VertexId> items() const {
    std::vector<graph::VertexId> out;
    out.reserve(count_);
    for_each([&](graph::VertexId w) { out.push_back(w); });
    return out;
  }

  /// Cell image of the current generation: kInvalidVertex in empty cells.
  std::vector<graph::VertexId> cells() const {
    std::vector<graph::VertexId> out(cells_.size(), graph::kInvalidVertex);
    for (std::uint32_t c = 0; c < cells_.size(); ++c)
      if (stamp_[c] == gen_) out[c] = cells_[c];
    return out;
  }

 private:
  std::vector<graph::VertexId> cells_;
  std::vector<std::uint32_t> stamp_;  // cell live iff stamp_[c] == gen_
  std::uint32_t gen_ = 0;
  std::uint32_t count_ = 0;
  bool collided_ = false;
};

}  // namespace logcc::core
