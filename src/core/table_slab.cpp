#include "core/table_slab.hpp"

#include <bit>

#include "util/parallel.hpp"
#include "util/scan.hpp"

namespace logcc::core {

namespace {

constexpr std::size_t kLineWords = 8;  // 64B line / 8B slot words

/// Uniform-mode stride: power-of-two for sub-line tables (so consecutive
/// buckets pack a line without ever straddling it), whole lines above.
std::size_t uniform_stride(std::uint32_t cap) {
  if (cap <= kLineWords) return std::bit_ceil(std::max<std::uint32_t>(cap, 1));
  return (cap + kLineWords - 1) & ~(kLineWords - 1);
}

/// Variable-mode stride: whole lines (0 stays 0). Mixed capacities make
/// sub-line packing alignment-unsound, so every present table starts on its
/// own line.
std::size_t variable_stride(std::uint32_t cap) {
  return (static_cast<std::size_t>(cap) + kLineWords - 1) &
         ~(kLineWords - 1);
}

}  // namespace

void TableSlab::ensure_words(std::size_t total) {
  words_size_ = total;
  if (total <= words_cap_) return;
  // Grow geometrically; fresh memory is zeroed *in parallel* so (a) stale
  // bytes can never alias a live epoch tag and (b) the pages are first-
  // touched under the same contiguous lane segmentation the fill and sweep
  // loops use.
  const std::size_t cap = std::max(total, words_cap_ * 2);
  storage_.reset(new std::uint64_t[cap + kLineWords - 1]);
  ++slab_allocations_;
  auto addr = reinterpret_cast<std::uintptr_t>(storage_.get());
  const std::uintptr_t aligned = (addr + 63) & ~std::uintptr_t{63};
  words_ = storage_.get() + (aligned - addr) / sizeof(std::uint64_t);
  words_cap_ = cap;
  std::uint64_t* w = words_;
  util::parallel_for(0, cap, [w](std::size_t i) { w[i] = 0; });
  epoch_ = 1;
  tag_ = std::uint64_t{1} << 32;
}

void TableSlab::bump_epoch() {
  if (++epoch_ == 0) {
    // Wrap after 2^32 generations: stale stamps could alias again, so pay
    // one full re-zero and restart the epoch sequence.
    std::uint64_t* w = words_;
    util::parallel_for(0, words_cap_, [w](std::size_t i) { w[i] = 0; });
    epoch_ = 1;
  }
  tag_ = static_cast<std::uint64_t>(epoch_) << 32;
}

void TableSlab::reset_uniform(std::uint32_t num, std::uint32_t capacity) {
  uniform_ = true;
  num_ = num;
  ucap_ = capacity;
  stride_ = uniform_stride(capacity);
  ensure_words(static_cast<std::size_t>(num) * stride_);
  bump_epoch();
  count_.resize(num);
  collided_.resize(num);
  util::parallel_for(0, num, [&](std::size_t t) {
    count_[t] = 0;
    collided_[t] = 0;
  });
}

void TableSlab::reset_variable(std::span<const std::uint32_t> caps) {
  uniform_ = false;
  num_ = static_cast<std::uint32_t>(caps.size());
  cap_.resize(num_);
  offset_.resize(static_cast<std::size_t>(num_) + 1);
  count_.resize(num_);
  collided_.resize(num_);
  util::parallel_for(0, num_, [&](std::size_t t) {
    cap_[t] = caps[t];
    offset_[t] = variable_stride(caps[t]);
    count_[t] = 0;
    collided_[t] = 0;
  });
  const std::size_t total = util::parallel_prefix_sum(offset_.data(), num_);
  offset_[num_] = total;
  ensure_words(total);
  bump_epoch();
}

void TableSlab::snapshot_into(std::vector<std::uint64_t>& snap) const {
  snap.resize(words_size_);
  const std::uint64_t* src = words_;
  std::uint64_t* dst = snap.data();
  util::parallel_for(0, words_size_,
                     [src, dst](std::size_t i) { dst[i] = src[i]; });
}

}  // namespace logcc::core
