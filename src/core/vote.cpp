#include "core/vote.hpp"

#include "util/random.hpp"

namespace logcc::core {

std::vector<std::uint8_t> vote(const ExpandEngine& expand,
                               const VoteParams& params, RunStats& stats) {
  const std::uint32_t num = expand.num_slots();
  std::vector<std::uint8_t> leader(num, 1);
  util::Xoshiro256 rng(params.seed);
  for (std::uint32_t s = 0; s < num; ++s) {
    VertexId u = expand.vertex_of(s);
    if (expand.live_after(s)) {
      // Deterministic: the minimum id in the (complete) table wins.
      expand.table(s).for_each([&](VertexId v) {
        if (v < u) leader[s] = 0;
      });
    } else {
      if (!rng.bernoulli(params.dormant_leader_prob)) leader[s] = 0;
    }
  }
  stats.pram_steps += 1;
  return leader;
}

}  // namespace logcc::core
