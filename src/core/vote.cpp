#include "core/vote.hpp"

#include "util/parallel.hpp"
#include "util/random.hpp"

namespace logcc::core {

std::vector<std::uint8_t> vote(const ExpandEngine& expand,
                               const VoteParams& params, RunStats& stats) {
  std::vector<std::uint8_t> leader;
  vote(expand, params, stats, leader);
  return leader;
}

void vote(const ExpandEngine& expand, const VoteParams& params,
          RunStats& stats, std::vector<std::uint8_t>& leader) {
  const std::uint32_t num = expand.num_slots();
  leader.resize(num);
  // Fused map + min pass sharing Vanilla's kernel style: every slot scans
  // its own table (live: the deterministic min-id rule) or draws a
  // counter-based coin keyed on its vertex id (dormant) — no shared RNG
  // stream and no cross-slot writes, so one parallel map realises the whole
  // step with thread-count-invariant output.
  util::parallel_for(0, num, [&](std::size_t s) {
    const VertexId u = expand.vertex_of(static_cast<std::uint32_t>(s));
    std::uint8_t lead = 1;
    if (expand.live_after(static_cast<std::uint32_t>(s))) {
      // Deterministic: the minimum id in the (complete) table wins.
      expand.table(static_cast<std::uint32_t>(s)).for_each([&](VertexId v) {
        if (v < u) lead = 0;
      });
    } else {
      const double coin =
          util::counter_uniform(util::mix64(params.seed, 0xD07E, u));
      if (!(coin < params.dormant_leader_prob)) lead = 0;
    }
    leader[s] = lead;
  });
  stats.pram_steps += 1;
}

}  // namespace logcc::core
