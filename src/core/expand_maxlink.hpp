// EXPAND-MAXLINK (§3.1 / §D.1): one round of the Theorem-3 algorithm.
//
// Per round, on the (renamed) compact graph:
//   (1) MAXLINK (2 iterations of parent links towards the highest-level
//       neighbouring parent) then ALTER;
//   (2) every root raises its level with probability ~ 1/b^{0.1} — the
//       pre-emptive raise that keeps collision-triggered raises rare enough
//       for the O(m) space bound (Lemma 3.9/D.12);
//   (3) every root hashes its *equal-budget* root neighbours into H(v);
//   (4) collisions mark vertices dormant; dormancy propagates one hop
//       through tables;
//   (5) one doubling step: H(v) ∪= H(w) for w ∈ H(v) (collision ⇒ dormant);
//       the table contents become added edges of the graph;
//   (6) MAXLINK; SHORTCUT; ALTER;
//   (7) dormant roots that did not raise in (2) raise now;
//   (8) roots are (re)assigned blocks of size b_{ℓ(v)}.
//
// The class owns all round state; FasterCc (faster_cc.hpp) drives it and
// applies the paper's break condition.
//
// Every step is data-parallel and thread-count invariant: MAXLINK resolves
// the "highest (level, id) parent wins" write with a packed fetch-max, the
// random raises draw counter-based coins (mix64(seed, round, v)), the table
// fills group (root, neighbour) items per root with a stable group-by, and
// the occupancy/budget ledgers are parallel reduces
// (tests/test_expand_maxlink.cpp asserts the invariance end-to-end).
#pragma once

#include <cstdint>
#include <vector>

#include "core/budget.hpp"
#include "core/building_blocks.hpp"
#include "core/labels.hpp"
#include "core/table_slab.hpp"
#include "core/metrics.hpp"
#include "graph/graph.hpp"

namespace logcc::core {

/// Per-round aggregate snapshot, recorded after Step (8); the raw series
/// behind the convergence-trace experiment (bench T5).
struct RoundTrace {
  std::uint64_t round = 0;
  std::uint64_t roots = 0;           // roots among existing vertices
  std::uint64_t active_roots = 0;    // roots with a non-loop edge
  std::uint64_t arcs = 0;            // original (altered) arcs
  std::uint64_t added_edges = 0;     // accumulated added edges
  std::uint64_t collisions = 0;      // hash collisions this round
  std::uint64_t raises = 0;          // level raises this round
  std::uint32_t max_level = 0;
};

class ExpandMaxlink {
 public:
  /// `exists[v]` masks ghost ids created by approximate compaction (the
  /// renamed id space has length 2k but only k live vertices).
  ExpandMaxlink(std::uint64_t n, std::vector<Arc> arcs,
                std::vector<std::uint8_t> exists, const ParamPolicy& policy,
                std::uint64_t seed, RunStats& stats);

  /// Executes one round. Returns true when the paper's break condition
  /// holds: no parent or level changed and Step (5) reached closure
  /// (diameter ≤ 1 and all trees flat).
  bool round();

  std::uint64_t rounds_run() const { return round_; }

  ParentForest& forest() { return forest_; }
  const ParentForest& forest() const { return forest_; }
  const std::vector<std::uint32_t>& levels() const { return level_; }
  const std::vector<std::uint64_t>& budgets() const { return budget_; }

  /// Current graph arcs + added edges, non-loop, deduplicated — the
  /// "remaining graph" handed to the Theorem-1 postprocess.
  std::vector<Arc> remaining_arcs() const;

  /// Enables per-round trace recording (off by default: it costs an O(n)
  /// scan per round).
  void enable_trace() { trace_enabled_ = true; }
  const std::vector<RoundTrace>& trace() const { return trace_; }

 private:
  void maxlink(int iterations, bool& parent_changed);
  void alter_all();
  void mark_endpoints(std::vector<std::uint8_t>& flags) const;
  std::uint64_t tally_raises(const std::vector<std::uint8_t>& flags);

  std::uint64_t n_;
  std::vector<Arc> arcs_;            // altered original edges (orig kept)
  std::vector<Arc> added_;           // altered added edges (accumulated)
  std::vector<std::uint8_t> exists_;
  ParentForest forest_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint64_t> budget_;
  ParamPolicy policy_;
  std::uint64_t seed_;
  RunStats& stats_;
  std::uint64_t round_ = 0;
  bool trace_enabled_ = false;
  std::vector<RoundTrace> trace_;

  // Round-hoisted scratch (the engine persists across rounds, so these
  // allocate once): packed (level, id) fetch-max cells for MAXLINK, the
  // per-round table slab (variable per-root capacities, epoch-reset each
  // round) with its flat snapshot, the group-by buffers, and per-vertex
  // tallies.
  std::vector<std::uint64_t> best_;
  TableSlab table_;
  std::vector<std::uint32_t> caps_;        // per-vertex table capacity
  std::vector<std::uint64_t> snap_words_;  // Step-(5) synchronous snapshot
  std::vector<std::pair<VertexId, VertexId>> fill_items_, fill_grouped_;
  std::vector<std::uint8_t> active_, raised_, forced_, dormant_, dormant0_;
  std::vector<std::uint8_t> closure_;
  std::vector<std::uint64_t> coll_, new_words_;
  std::vector<Arc> emit_tmp_;
};

}  // namespace logcc::core
